package repro

import (
	"testing"
	"time"

	"repro/internal/ablation"
	"repro/internal/biglittle"
	"repro/internal/cluster"
	"repro/internal/coord"
	"repro/internal/core"
	"repro/internal/dyncoord"
	"repro/internal/evalpool"
	"repro/internal/experiments"
	"repro/internal/hw"
	"repro/internal/profile"
	"repro/internal/roofline"
	"repro/internal/sim"
	"repro/internal/sweep"
	"repro/internal/trace"
	"repro/internal/units"
	"repro/internal/validate"
	"repro/internal/workload"
)

// Each paper artifact has a bench that regenerates it end to end, so
// "go test -bench=Fig3" reproduces Figure 3 and reports how long the
// regeneration takes. The micro-benches below time the simulator
// building blocks.

func benchArtifact(b *testing.B, id string) {
	b.Helper()
	r, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out, err := r.Run()
		if err != nil {
			b.Fatal(err)
		}
		if !out.Passed() {
			for _, f := range out.Findings {
				if !f.Pass {
					b.Fatalf("%s claim failed: %s", id, f)
				}
			}
		}
	}
}

func BenchmarkFig1(b *testing.B)     { benchArtifact(b, "fig1") }
func BenchmarkFig2(b *testing.B)     { benchArtifact(b, "fig2") }
func BenchmarkFig3(b *testing.B)     { benchArtifact(b, "fig3") }
func BenchmarkFig4(b *testing.B)     { benchArtifact(b, "fig4") }
func BenchmarkFig5(b *testing.B)     { benchArtifact(b, "fig5") }
func BenchmarkTable1(b *testing.B)   { benchArtifact(b, "table1") }
func BenchmarkTable2(b *testing.B)   { benchArtifact(b, "table2") }
func BenchmarkTable3(b *testing.B)   { benchArtifact(b, "table3") }
func BenchmarkFig6(b *testing.B)     { benchArtifact(b, "fig6") }
func BenchmarkFig7(b *testing.B)     { benchArtifact(b, "fig7") }
func BenchmarkFig8(b *testing.B)     { benchArtifact(b, "fig8") }
func BenchmarkFig9(b *testing.B)     { benchArtifact(b, "fig9") }
func BenchmarkInsights(b *testing.B) { benchArtifact(b, "insights") }

// ----- micro-benches on the simulator building blocks -----

func BenchmarkSimRunCPU(b *testing.B) {
	p, err := hw.PlatformByName("ivybridge")
	if err != nil {
		b.Fatal(err)
	}
	w, err := workload.ByName("mg")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sim.RunCPU(p, &w, 130, 110); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimRunGPU(b *testing.B) {
	p, err := hw.PlatformByName("titanxp")
	if err != nil {
		b.Fatal(err)
	}
	w, err := workload.ByName("sgemm")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sim.RunGPU(p, &w, 200, p.GPU.Mem.ClockNom); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkProfileCPU(b *testing.B) {
	p, err := hw.PlatformByName("ivybridge")
	if err != nil {
		b.Fatal(err)
	}
	w, err := workload.ByName("sra")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := profile.ProfileCPU(p, w); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCoordDecision(b *testing.B) {
	p, err := hw.PlatformByName("ivybridge")
	if err != nil {
		b.Fatal(err)
	}
	w, err := workload.ByName("sra")
	if err != nil {
		b.Fatal(err)
	}
	prof, err := profile.ProfileCPU(p, w)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := coord.CPU(prof, units.Power(160+i%120))
		_ = d
	}
}

func BenchmarkExhaustiveSweep(b *testing.B) {
	p, err := hw.PlatformByName("ivybridge")
	if err != nil {
		b.Fatal(err)
	}
	w, err := workload.ByName("stream")
	if err != nil {
		b.Fatal(err)
	}
	pb := core.NewProblem(p, w, 208)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := pb.Sweep(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepSerialVsParallel compares the three evaluation-engine
// configurations on the same work: full budget sweeps for three CPU
// workloads (the BenchmarkFig1/Fig2 evaluation pattern). The cached
// variant reflects steady-state experiment runs, where repeated passes
// over overlapping allocation grids are served from the memo cache.
func BenchmarkSweepSerialVsParallel(b *testing.B) {
	p, err := hw.PlatformByName("ivybridge")
	if err != nil {
		b.Fatal(err)
	}
	var wls []workload.Workload
	for _, name := range []string{"stream", "dgemm", "mg"} {
		w, err := workload.ByName(name)
		if err != nil {
			b.Fatal(err)
		}
		wls = append(wls, w)
	}
	sweepAll := func(b *testing.B, e *evalpool.Engine) {
		b.Helper()
		for _, w := range wls {
			pb := core.NewProblem(p, w, 208)
			pb.Engine = e
			evals, err := pb.Sweep()
			if err != nil {
				b.Fatal(err)
			}
			if len(evals) == 0 {
				b.Fatal("empty sweep")
			}
		}
	}
	b.Run("serial", func(b *testing.B) {
		e := evalpool.Serial()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sweepAll(b, e)
		}
	})
	b.Run("parallel-nocache", func(b *testing.B) {
		e := evalpool.New(evalpool.Options{CacheSize: -1})
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sweepAll(b, e)
		}
	})
	b.Run("parallel-cached", func(b *testing.B) {
		e := evalpool.New(evalpool.Options{})
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sweepAll(b, e)
		}
		s := e.Stats()
		b.ReportMetric(100*s.HitRate(), "hit%")
	})
}

func BenchmarkBudgetCurve(b *testing.B) {
	p, err := hw.PlatformByName("ivybridge")
	if err != nil {
		b.Fatal(err)
	}
	w, err := workload.ByName("dgemm")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sweep.BudgetCurve(p, w, 130, 300, 18); err != nil {
			b.Fatal(err)
		}
	}
}

// ----- extension benches -----

func BenchmarkAblationDutyGating(b *testing.B) {
	r, err := ablation.ByID("duty-gating")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := r.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDynamicCoordination(b *testing.B) {
	p, err := hw.PlatformByName("ivybridge")
	if err != nil {
		b.Fatal(err)
	}
	w, err := workload.ByName("ft")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := dyncoord.Compare(p, w, 200); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBigLittleCoordinate(b *testing.B) {
	n := biglittle.Reference()
	w, err := workload.ByName("stream")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := biglittle.Coordinate(n, w, 90); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkClusterQueue(b *testing.B) {
	p, err := hw.PlatformByName("ivybridge")
	if err != nil {
		b.Fatal(err)
	}
	var nodes []cluster.Node
	for i := 0; i < 4; i++ {
		nodes = append(nodes, cluster.Node{ID: string(rune('a' + i)), Platform: p})
	}
	mkJobs := func() []cluster.TimedJob {
		var jobs []cluster.TimedJob
		for i, name := range []string{"dgemm", "stream", "mg", "ep", "cg", "bt"} {
			w, err := workload.ByName(name)
			if err != nil {
				b.Fatal(err)
			}
			jobs = append(jobs, cluster.TimedJob{
				Job:   cluster.Job{ID: name + string(rune('0'+i)), Workload: w},
				Units: 1e13,
			})
		}
		return jobs
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := cluster.NewScheduler(700, nodes)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.RunQueue(mkJobs(), cluster.PolicyCoord); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTraceRun(b *testing.B) {
	p, err := hw.PlatformByName("ivybridge")
	if err != nil {
		b.Fatal(err)
	}
	w, err := workload.ByName("bt")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := trace.RunCPU(p, &w, 140, 110, 1e13, 50*time.Millisecond); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRooflineAllocator(b *testing.B) {
	p, err := hw.PlatformByName("ivybridge")
	if err != nil {
		b.Fatal(err)
	}
	w, err := workload.ByName("mg")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := roofline.BalancedAllocation(p, &w, 208, 4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkValidateBattery(b *testing.B) {
	p, err := hw.PlatformByName("haswell")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if issues := validate.Platform(p); len(issues) != 0 {
			b.Fatalf("issues: %v", issues)
		}
	}
}
