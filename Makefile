# Standard developer entry points. `make check` is the full gate:
# static analysis, a clean build, and the test suite under the race
# detector.

GO ?= go

.PHONY: all build test vet race check fuzz bench benchsmoke loadsmoke chaossmoke dessmoke treesmoke recoordsmoke verify-invariants cover telemetry-alloc fastpath-alloc

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration of the engine comparison bench under the race detector:
# catches data races in the parallel evaluation path that unit tests
# with small inputs might miss.
benchsmoke:
	$(GO) test -race -run=^$$ -bench=BenchmarkSweepSerialVsParallel -benchtime=1x .

# Concurrency smoke for the allocation service under the race
# detector: many clients over all three API routes against a small
# worker pool, asserting consistent responses and balanced counters.
loadsmoke:
	$(GO) test -race -run TestLoadSmoke -count=1 -v ./internal/allocsvc

# Seeded chaos suite for the resilient sharded client under the race
# detector: kill/restart schedules, 429 storms, dropped connections,
# and stalls against a 3-shard topology. TestChaosSingleShardDeathZeroLoss
# enforces the >= 99% availability-during-single-shard-death gate, and
# TestChaosSeededGoldenTrace pins breaker transitions to a golden trace.
chaossmoke:
	$(GO) test -race -run TestChaos -count=1 -v ./internal/allocclient

# Discrete-event simulator gate under the race detector: the golden
# round-loop equivalence (exact engine == RunQueue/RunQueueFaulty, byte
# for byte) and replay determinism (same seed, same trace hash), then a
# seeded DES run through the pbc CLI with a replay check.
dessmoke:
	$(GO) test -race -run 'TestGoldenEquivalence|TestReplayDeterminism' -count=1 ./internal/des
	$(GO) run -race ./cmd/pbc des -nodes 64 -horizon 600 -seed 7 \
		-arrival-spec "rate=0.2,burst=2,units=2e12" \
		-fault-spec "shock.mtbs=120,shock.frac=0.25,shock.len=20" -replay-check

# Hierarchical budget-tree gate under the race detector: conservation,
# monotonicity, shed minimality, the metamorphic suite (sibling
# permutation, rack splitting, demand scaling), and the serial-vs-
# parallel golden byte identity of tree solves.
treesmoke:
	$(GO) test -race -run 'TestSolve|TestMetamorphic|TestGolden|TestWaterFilling|TestRackCap|TestGreedy|TestResultString' -count=1 ./internal/powertree

# Online re-coordination gate under the race detector: the controller's
# never-worse-than-static guarantee across phased ML workloads on the
# H100-class platforms, byte-identical determinism, the typed sub-floor
# rejection, and the recoord shard-death chaos case; then one CLI run.
recoordsmoke:
	$(GO) test -race -run 'TestOnlineNeverWorseThanStatic|TestDeterministicRepeat|TestBudgetBelowCapFloorTypedRejection' -count=1 ./internal/recoord
	$(GO) test -race -run TestChaosRecoordShardDeathFailover -count=1 ./internal/allocclient
	$(GO) run ./cmd/pbc recoord -platform h100 -workload llmbatch -budget 300 >/dev/null

# Cross-implementation invariant harness: the full catalog sweep under
# the race detector, then the pbc verify CLI gate.
verify-invariants:
	$(GO) test -race -run TestInvariant ./internal/invariant
	$(GO) run ./cmd/pbc verify

# The disabled-telemetry hot path must stay allocation-free: run the
# benchmark once and fail if it reports any allocs/op.
telemetry-alloc:
	$(GO) test -run=^$$ -bench=BenchmarkTelemetryDisabled -benchtime=100000x -benchmem ./internal/telemetry | \
		awk '/BenchmarkTelemetryDisabled/ { if ($$(NF-1)+0 != 0) { print "FAIL: disabled telemetry allocates:", $$0; exit 1 } found=1 } \
		END { if (!found) { print "FAIL: BenchmarkTelemetryDisabled did not run"; exit 1 } }'

# The binary serving hot path (frame decode -> decision-table lookup ->
# frame encode) must stay allocation-free on table hits: run the
# benchmark once and fail if it reports any allocs/op.
fastpath-alloc:
	$(GO) test -run=^$$ -bench=BenchmarkBinaryFastPath -benchtime=100000x -benchmem ./internal/decisiontable | \
		awk '/BenchmarkBinaryFastPath/ { if ($$(NF-1)+0 != 0) { print "FAIL: binary fast path allocates:", $$0; exit 1 } found=1 } \
		END { if (!found) { print "FAIL: BenchmarkBinaryFastPath did not run"; exit 1 } }'

check: vet build race benchsmoke loadsmoke chaossmoke dessmoke treesmoke recoordsmoke verify-invariants telemetry-alloc fastpath-alloc

# Coverage gates: internal/telemetry must keep at least 70% statement
# coverage, and internal/powertree (the budget-tree solver) and
# internal/recoord (the online controller) at least 80% each.
COVER_FLOOR ?= 70.0
TREE_COVER_FLOOR ?= 80.0
RECOORD_COVER_FLOOR ?= 80.0

cover:
	$(GO) test -coverprofile=cover.out ./internal/telemetry/...
	$(GO) tool cover -func=cover.out | tail -1
	@$(GO) tool cover -func=cover.out | awk -v floor=$(COVER_FLOOR) \
		'/^total:/ { sub(/%/, "", $$3); if ($$3+0 < floor) { print "FAIL: coverage", $$3"% below floor", floor"%"; exit 1 } \
		else { print "coverage OK:", $$3"% >= "floor"%" } }'
	$(GO) test -coverprofile=cover_tree.out ./internal/powertree/...
	$(GO) tool cover -func=cover_tree.out | tail -1
	@$(GO) tool cover -func=cover_tree.out | awk -v floor=$(TREE_COVER_FLOOR) \
		'/^total:/ { sub(/%/, "", $$3); if ($$3+0 < floor) { print "FAIL: powertree coverage", $$3"% below floor", floor"%"; exit 1 } \
		else { print "powertree coverage OK:", $$3"% >= "floor"%" } }'
	$(GO) test -coverprofile=cover_recoord.out ./internal/recoord/...
	$(GO) tool cover -func=cover_recoord.out | tail -1
	@$(GO) tool cover -func=cover_recoord.out | awk -v floor=$(RECOORD_COVER_FLOOR) \
		'/^total:/ { sub(/%/, "", $$3); if ($$3+0 < floor) { print "FAIL: recoord coverage", $$3"% below floor", floor"%"; exit 1 } \
		else { print "recoord coverage OK:", $$3"% >= "floor"%" } }'

# Short fuzz passes over the input parsers (fault specs, arrival specs,
# tree specs, phase specs, power units), the Prometheus exposition
# encoder, and the binary wire codec (both a round-trip property fuzzer
# and a malformed-frame decoder fuzzer).
fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzParseSpec -fuzztime=10s ./internal/faults
	$(GO) test -run=^$$ -fuzz=FuzzParsePhaseSpec -fuzztime=10s ./internal/workload
	$(GO) test -run=^$$ -fuzz=FuzzParseArrivalSpec -fuzztime=10s ./internal/des
	$(GO) test -run=^$$ -fuzz=FuzzTreeSpec -fuzztime=10s ./internal/powertree
	$(GO) test -run=^$$ -fuzz=FuzzParsePower -fuzztime=10s ./internal/units
	$(GO) test -run=^$$ -fuzz=FuzzPromText -fuzztime=10s ./internal/telemetry
	$(GO) test -run=^$$ -fuzz=FuzzWireRoundTrip -fuzztime=10s ./internal/wire
	$(GO) test -run=^$$ -fuzz=FuzzWireMalformed -fuzztime=10s ./internal/wire

bench:
	$(GO) test -bench=. -benchmem ./...
	$(GO) run ./cmd/benchsweep
	$(GO) run ./cmd/benchserve
	$(GO) run ./cmd/benchdes
