# Standard developer entry points. `make check` is the full gate:
# static analysis, a clean build, and the test suite under the race
# detector.

GO ?= go

.PHONY: all build test vet race check fuzz bench benchsmoke verify-invariants

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration of the engine comparison bench under the race detector:
# catches data races in the parallel evaluation path that unit tests
# with small inputs might miss.
benchsmoke:
	$(GO) test -race -run=^$$ -bench=BenchmarkSweepSerialVsParallel -benchtime=1x .

# Cross-implementation invariant harness: the full catalog sweep under
# the race detector, then the pbc verify CLI gate.
verify-invariants:
	$(GO) test -race -run TestInvariant ./internal/invariant
	$(GO) run ./cmd/pbc verify

check: vet build race benchsmoke verify-invariants

# Short fuzz passes over the input parsers (fault specs, power units).
fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzParseSpec -fuzztime=10s ./internal/faults
	$(GO) test -run=^$$ -fuzz=FuzzParsePower -fuzztime=10s ./internal/units

bench:
	$(GO) test -bench=. -benchmem ./...
	$(GO) run ./cmd/benchsweep
