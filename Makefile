# Standard developer entry points. `make check` is the full gate:
# static analysis, a clean build, and the test suite under the race
# detector.

GO ?= go

.PHONY: all build test vet race check fuzz bench

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

check: vet build race

# Short fuzz passes over the input parsers (fault specs, power units).
fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzParseSpec -fuzztime=10s ./internal/faults
	$(GO) test -run=^$$ -fuzz=FuzzParsePower -fuzztime=10s ./internal/units

bench:
	$(GO) test -bench=. -benchmem ./...
