package trace

import (
	"fmt"
	"time"

	"repro/internal/hw"
	"repro/internal/rapl"
	"repro/internal/sim"
	"repro/internal/units"
	"repro/internal/workload"
)

// RunGPU traces the execution of totalUnits work units of a GPU workload
// under a board cap and memory clock, sampling every dt. The board
// governor settles in microseconds, so within a phase the steady state
// holds; the trace exposes the phase-to-phase power swing a node-level
// monitor would log.
func RunGPU(p hw.Platform, w *workload.Workload, cap units.Power, memClock units.Frequency, totalUnits float64, dt time.Duration) (Trace, error) {
	if totalUnits <= 0 {
		return Trace{}, fmt.Errorf("trace: non-positive work amount %v", totalUnits)
	}
	if dt <= 0 {
		return Trace{}, fmt.Errorf("trace: non-positive time step %v", dt)
	}
	steady, err := sim.RunGPU(p, w, cap, memClock)
	if err != nil {
		return Trace{}, err
	}
	window := rapl.NewWindow(time.Second)

	var tr Trace
	elapsed := time.Duration(0)
	var procJ, memJ float64
	for _, ph := range steady.Phases {
		unitsLeft := ph.Weight * totalUnits
		rate := ph.Rate.OpsPerSecond()
		if rate <= 0 {
			return Trace{}, fmt.Errorf("trace: phase %q made no progress", ph.Phase)
		}
		for unitsLeft > 1e-12 {
			stepUnits := rate * dt.Seconds()
			stepDt := dt
			if stepUnits > unitsLeft {
				stepDt = time.Duration(float64(time.Second) * unitsLeft / rate)
				stepUnits = unitsLeft
				if stepDt <= 0 {
					stepDt = time.Nanosecond
				}
			}
			unitsLeft -= stepUnits
			tr.WorkDone += stepUnits
			elapsed += stepDt
			total := ph.ProcPower + ph.MemPower
			window.Add(total, stepDt)
			procJ += ph.ProcPower.Watts() * stepDt.Seconds()
			memJ += ph.MemPower.Watts() * stepDt.Seconds()
			avg := window.Average()
			if avg > tr.PeakWindowAvg {
				tr.PeakWindowAvg = avg
			}
			tr.Samples = append(tr.Samples, Sample{
				Time:      elapsed,
				Phase:     ph.Phase,
				ProcPower: ph.ProcPower,
				MemPower:  ph.MemPower,
				Rate:      ph.Rate,
				WindowAvg: avg,
			})
		}
	}
	tr.Elapsed = elapsed
	tr.ProcEnergy = units.Energy(procJ)
	tr.MemEnergy = units.Energy(memJ)
	if elapsed > 0 {
		tr.AvgTotalPower = units.Power((procJ + memJ) / elapsed.Seconds())
	}
	return tr, nil
}
