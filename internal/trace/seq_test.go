package trace

import (
	"fmt"
	"sync"
	"testing"
)

// TestEventLogConcurrentSeq is the regression test for the old
// unsynchronized EventLog: recording from many goroutines must lose
// nothing, and the resulting sequence numbers must be ordered and
// gap-free (Events()[i].Seq == i).
func TestEventLogConcurrentSeq(t *testing.T) {
	var log EventLog
	const workers, per = 8, 250
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				log.Recordf(float64(i), "tick", fmt.Sprintf("w%d", w), "event %d", i)
			}
		}()
	}
	wg.Wait()

	events := log.Events()
	if len(events) != workers*per {
		t.Fatalf("recorded %d events, want %d (lost records)", len(events), workers*per)
	}
	if log.Len() != workers*per {
		t.Fatalf("Len() = %d, want %d", log.Len(), workers*per)
	}
	perWorker := map[string]int{}
	for i, e := range events {
		if e.Seq != uint64(i) {
			t.Fatalf("event %d has seq %d: sequence not gap-free", i, e.Seq)
		}
		perWorker[e.Subject]++
	}
	for w := 0; w < workers; w++ {
		if n := perWorker[fmt.Sprintf("w%d", w)]; n != per {
			t.Fatalf("worker %d has %d events, want %d", w, n, per)
		}
	}
	if n := log.Count("tick"); n != workers*per {
		t.Fatalf("Count(tick) = %d, want %d", n, workers*per)
	}
}

// TestEventLogTracerAttachment checks the telemetry integration path: a
// registry that attaches the log's tracer sees its transitions as spans.
func TestEventLogTracerAttachment(t *testing.T) {
	var log EventLog
	log.Record(1.5, "node-fail", "node0", "node lost")
	tr := log.Tracer()
	if tr == nil {
		t.Fatal("non-nil log returned nil tracer")
	}
	spans := tr.Spans()
	if len(spans) != 1 {
		t.Fatalf("spans = %d, want 1", len(spans))
	}
	sp := spans[0]
	if sp.Name != "node-fail" || sp.Scope != "node0" || sp.SimTime != 1.5 || sp.Note != "node lost" {
		t.Fatalf("span fields wrong: %+v", sp)
	}
	var nilLog *EventLog
	if nilLog.Tracer() != nil {
		t.Fatal("nil log should return nil tracer")
	}
}
