// Package trace runs a workload through time rather than in steady state:
// it walks the workload's phases in order, samples component power on a
// fixed time step, accumulates energy through the RAPL-style wrapping
// counters, and verifies that the running-average power (the quantity
// RAPL actually limits) stays within the programmed caps.
//
// The steady-state simulator (package sim) answers "how fast and at what
// power"; this package answers "what does the power meter see over the
// course of a run" — the view a cluster-level power monitor has.
package trace

import (
	"fmt"
	"time"

	"repro/internal/hw"
	"repro/internal/rapl"
	"repro/internal/sim"
	"repro/internal/units"
	"repro/internal/workload"
)

// Sample is one time step of a traced run.
type Sample struct {
	// Time is the elapsed time at the end of the step.
	Time time.Duration
	// Phase names the workload phase executing during the step.
	Phase string
	// ProcPower and MemPower are the component draws during the step.
	ProcPower, MemPower units.Power
	// Rate is the instantaneous work-unit rate.
	Rate units.Rate
	// WindowAvg is the running-average total power over the RAPL window.
	WindowAvg units.Power
}

// Trace is the result of a timed run.
type Trace struct {
	// Samples is the time series.
	Samples []Sample
	// Elapsed is the total wall time.
	Elapsed time.Duration
	// ProcEnergy and MemEnergy are the accumulated energies as read back
	// from the emulated RAPL counters.
	ProcEnergy, MemEnergy units.Energy
	// AvgTotalPower is total energy over elapsed time.
	AvgTotalPower units.Power
	// PeakWindowAvg is the highest running-average total power observed —
	// the number a RAPL-style limiter would compare against the cap.
	PeakWindowAvg units.Power
	// WorkDone is the number of work units completed.
	WorkDone float64
}

// RunCPU traces the execution of totalUnits work units of workload w on a
// CPU platform under the given caps, sampling every dt. Phases execute
// sequentially, splitting the work by their weights; within a phase the
// steady-state operating point holds (RAPL settles in milliseconds,
// orders of magnitude faster than phases).
func RunCPU(p hw.Platform, w *workload.Workload, procCap, memCap units.Power, totalUnits float64, dt time.Duration) (Trace, error) {
	if totalUnits <= 0 {
		return Trace{}, fmt.Errorf("trace: non-positive work amount %v", totalUnits)
	}
	if dt <= 0 {
		return Trace{}, fmt.Errorf("trace: non-positive time step %v", dt)
	}
	steady, err := sim.RunCPU(p, w, procCap, memCap)
	if err != nil {
		return Trace{}, err
	}
	ctrl := rapl.NewController(p.CPU, p.DRAM)
	window := rapl.NewWindow(time.Second)

	var tr Trace
	elapsed := time.Duration(0)
	for _, ph := range steady.Phases {
		unitsLeft := ph.Weight * totalUnits
		rate := ph.Rate.OpsPerSecond()
		if rate <= 0 {
			return Trace{}, fmt.Errorf("trace: phase %q made no progress", ph.Phase)
		}
		for unitsLeft > 1e-12 {
			stepUnits := rate * dt.Seconds()
			stepDt := dt
			if stepUnits > unitsLeft {
				// Final partial step of the phase.
				stepDt = time.Duration(float64(time.Second) * unitsLeft / rate)
				stepUnits = unitsLeft
				if stepDt <= 0 {
					stepDt = time.Nanosecond
				}
			}
			unitsLeft -= stepUnits
			tr.WorkDone += stepUnits
			elapsed += stepDt
			total := ph.ProcPower + ph.MemPower
			window.Add(total, stepDt)
			ctrl.AccumulateEnergy(ph.ProcPower, ph.MemPower, stepDt)
			avg := window.Average()
			if avg > tr.PeakWindowAvg {
				tr.PeakWindowAvg = avg
			}
			tr.Samples = append(tr.Samples, Sample{
				Time:      elapsed,
				Phase:     ph.Phase,
				ProcPower: ph.ProcPower,
				MemPower:  ph.MemPower,
				Rate:      ph.Rate,
				WindowAvg: avg,
			})
		}
	}
	tr.Elapsed = elapsed
	tr.ProcEnergy = ctrl.Energy(rapl.DomainPackage)
	tr.MemEnergy = ctrl.Energy(rapl.DomainDRAM)
	if elapsed > 0 {
		tr.AvgTotalPower = units.Power((tr.ProcEnergy + tr.MemEnergy).Joules() / elapsed.Seconds())
	}
	return tr, nil
}

// CapRespected reports whether the peak running-average total power
// stayed within the given node bound (with slack for actuator
// quantization).
func (t *Trace) CapRespected(bound units.Power) bool {
	return t.PeakWindowAvg <= bound+1
}

// PhaseBreakdown returns per-phase wall time shares, for inspecting how
// capping shifts the balance between compute-heavy and memory-heavy
// phases.
func (t *Trace) PhaseBreakdown() map[string]time.Duration {
	out := map[string]time.Duration{}
	var prev time.Duration
	for _, s := range t.Samples {
		out[s.Phase] += s.Time - prev
		prev = s.Time
	}
	return out
}
