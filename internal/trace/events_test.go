package trace

import (
	"strings"
	"testing"
)

func TestEventLogNilSafety(t *testing.T) {
	var l *EventLog
	l.Record(1, "node-fail", "n0", "gone")
	l.Recordf(2, "node-recover", "n0", "back after %ds", 30)
	if l.Len() != 0 || l.Count("node-fail") != 0 {
		t.Fatal("nil log counted events")
	}
	if l.Events() != nil {
		t.Fatal("nil log returned events")
	}
	if l.String() != "" {
		t.Fatal("nil log rendered output")
	}
}

func TestEventLogRecordAndCount(t *testing.T) {
	l := &EventLog{}
	l.Record(0.5, "node-fail", "a-node", "node lost")
	l.Recordf(1.25, "budget-reclaim", "j1", "%d W returned", 180)
	l.Record(2, "node-fail", "b-node", "node lost")
	if l.Len() != 3 {
		t.Fatalf("Len = %d, want 3", l.Len())
	}
	if l.Count("node-fail") != 2 || l.Count("budget-reclaim") != 1 || l.Count("missing") != 0 {
		t.Fatal("Count miscounted")
	}
	ev := l.Events()
	if ev[1].Detail != "180 W returned" {
		t.Fatalf("Recordf detail = %q", ev[1].Detail)
	}
	if ev[0].Time != 0.5 || ev[0].Kind != "node-fail" || ev[0].Subject != "a-node" {
		t.Fatalf("event 0 = %+v", ev[0])
	}
}

func TestEventLogStringStable(t *testing.T) {
	mk := func() *EventLog {
		l := &EventLog{}
		l.Record(0.123456, "watchdog-engage", "node", "clamped")
		l.Record(10, "watchdog-release", "node", "released")
		return l
	}
	a, b := mk().String(), mk().String()
	if a != b {
		t.Fatal("identical logs render differently")
	}
	lines := strings.Split(strings.TrimRight(a, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("%d lines, want 2", len(lines))
	}
	if !strings.Contains(lines[0], "0.123s") || !strings.Contains(lines[0], "watchdog-engage") {
		t.Fatalf("line 0 = %q", lines[0])
	}
	// Fixed-width columns: both lines align their kind field.
	if strings.Index(lines[0], "watchdog-engage") != strings.Index(lines[1], "watchdog-release") {
		t.Fatal("columns not aligned")
	}
}
