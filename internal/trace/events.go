package trace

import (
	"fmt"
	"strings"

	"repro/internal/telemetry"
)

// TransitionEvent is one recorded state transition of the coordination
// stack: a node failing or recovering, a job being re-admitted, a budget
// shock arriving, a watchdog engaging. Where Sample answers "what does
// the power meter see", TransitionEvent answers "what did the control
// plane do and why".
type TransitionEvent struct {
	// Seq is the event's record-order sequence number: ordered and
	// gap-free (Events()[i].Seq == i) even when producers record from
	// multiple goroutines.
	Seq uint64
	// Time is the simulation time of the transition in seconds.
	Time float64
	// Kind classifies the transition, e.g. "node-fail", "node-recover",
	// "job-readmit", "budget-reclaim", "budget-shock", "budget-restore",
	// "watchdog-engage", "watchdog-release".
	Kind string
	// Subject names the affected entity (node ID, job ID, ...).
	Subject string
	// Detail is free-form context, e.g. the power amount reclaimed.
	Detail string
}

// EventLog is an append-only log of transitions, backed by a telemetry
// tracer: every record is an instant telemetry span, which is what
// gives events atomic sequence numbers and safe concurrent recording —
// the log used to append without a lock and without sequencing, so
// concurrent producers could interleave or lose transitions. Every
// method is nil-safe so producers can unconditionally record into an
// optional log. Producers emit events in simulation-time order, so the
// log is a deterministic replay record.
type EventLog struct {
	tr telemetry.Tracer
}

// Tracer exposes the log's backing tracer, so a telemetry.Registry can
// include the log's transitions in its snapshots
// (reg.AttachTracer(log.Tracer())) and tests can inject a fake clock.
// Returns nil for a nil log (the nil tracer is a no-op).
func (l *EventLog) Tracer() *telemetry.Tracer {
	if l == nil {
		return nil
	}
	return &l.tr
}

// Record appends a transition. A nil log ignores the call.
func (l *EventLog) Record(t float64, kind, subject, detail string) {
	if l == nil {
		return
	}
	l.tr.EventAt(t, kind, subject, detail)
}

// Recordf appends a transition with a formatted detail string.
func (l *EventLog) Recordf(t float64, kind, subject, format string, args ...any) {
	if l == nil {
		return
	}
	l.Record(t, kind, subject, fmt.Sprintf(format, args...))
}

// Events returns the recorded transitions in sequence order.
func (l *EventLog) Events() []TransitionEvent {
	if l == nil {
		return nil
	}
	spans := l.tr.Spans()
	if len(spans) == 0 {
		return nil
	}
	out := make([]TransitionEvent, len(spans))
	for i, sp := range spans {
		out[i] = TransitionEvent{
			Seq: sp.Seq, Time: sp.SimTime,
			Kind: sp.Name, Subject: sp.Scope, Detail: sp.Note,
		}
	}
	return out
}

// Len returns the number of recorded transitions.
func (l *EventLog) Len() int {
	if l == nil {
		return 0
	}
	return l.tr.Len()
}

// Count returns the number of transitions of the given kind.
func (l *EventLog) Count(kind string) int {
	if l == nil {
		return 0
	}
	return l.tr.Count(kind)
}

// String renders the log one transition per line with stable formatting,
// so two identical replays produce byte-identical logs.
func (l *EventLog) String() string {
	events := l.Events()
	if len(events) == 0 {
		return ""
	}
	var b strings.Builder
	for _, e := range events {
		fmt.Fprintf(&b, "%10.3fs  %-16s %-10s %s\n", e.Time, e.Kind, e.Subject, e.Detail)
	}
	return b.String()
}
