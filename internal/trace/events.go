package trace

import (
	"fmt"
	"strings"
)

// TransitionEvent is one recorded state transition of the coordination
// stack: a node failing or recovering, a job being re-admitted, a budget
// shock arriving, a watchdog engaging. Where Sample answers "what does
// the power meter see", TransitionEvent answers "what did the control
// plane do and why".
type TransitionEvent struct {
	// Time is the simulation time of the transition in seconds.
	Time float64
	// Kind classifies the transition, e.g. "node-fail", "node-recover",
	// "job-readmit", "budget-reclaim", "budget-shock", "budget-restore",
	// "watchdog-engage", "watchdog-release".
	Kind string
	// Subject names the affected entity (node ID, job ID, ...).
	Subject string
	// Detail is free-form context, e.g. the power amount reclaimed.
	Detail string
}

// EventLog is an append-only log of transitions. Every method is
// nil-safe so producers can unconditionally record into an optional log.
// Events are kept in insertion order; producers emit them in
// simulation-time order, so the log is a deterministic replay record.
type EventLog struct {
	events []TransitionEvent
}

// Record appends a transition. A nil log ignores the call.
func (l *EventLog) Record(t float64, kind, subject, detail string) {
	if l == nil {
		return
	}
	l.events = append(l.events, TransitionEvent{Time: t, Kind: kind, Subject: subject, Detail: detail})
}

// Recordf appends a transition with a formatted detail string.
func (l *EventLog) Recordf(t float64, kind, subject, format string, args ...any) {
	if l == nil {
		return
	}
	l.Record(t, kind, subject, fmt.Sprintf(format, args...))
}

// Events returns the recorded transitions in insertion order.
func (l *EventLog) Events() []TransitionEvent {
	if l == nil {
		return nil
	}
	return l.events
}

// Len returns the number of recorded transitions.
func (l *EventLog) Len() int {
	if l == nil {
		return 0
	}
	return len(l.events)
}

// Count returns the number of transitions of the given kind.
func (l *EventLog) Count(kind string) int {
	if l == nil {
		return 0
	}
	n := 0
	for _, e := range l.events {
		if e.Kind == kind {
			n++
		}
	}
	return n
}

// String renders the log one transition per line with stable formatting,
// so two identical replays produce byte-identical logs.
func (l *EventLog) String() string {
	if l == nil || len(l.events) == 0 {
		return ""
	}
	var b strings.Builder
	for _, e := range l.events {
		fmt.Fprintf(&b, "%10.3fs  %-16s %-10s %s\n", e.Time, e.Kind, e.Subject, e.Detail)
	}
	return b.String()
}
