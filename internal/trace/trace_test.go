package trace

import (
	"math"
	"testing"
	"time"

	"repro/internal/hw"
	"repro/internal/sim"
	"repro/internal/workload"
)

func TestTraceInputValidation(t *testing.T) {
	p, _ := hw.PlatformByName("ivybridge")
	w, _ := workload.ByName("stream")
	if _, err := RunCPU(p, &w, 0, 0, -1, time.Millisecond); err == nil {
		t.Error("negative work accepted")
	}
	if _, err := RunCPU(p, &w, 0, 0, 1e9, 0); err == nil {
		t.Error("zero step accepted")
	}
	gw, _ := workload.ByName("sgemm")
	if _, err := RunCPU(p, &gw, 0, 0, 1e9, time.Millisecond); err == nil {
		t.Error("GPU workload accepted")
	}
}

func TestTraceCompletesAllWork(t *testing.T) {
	p, _ := hw.PlatformByName("ivybridge")
	w, _ := workload.ByName("stream")
	totalUnits := 50e9 // 50 GB of triad traffic
	tr, err := RunCPU(p, &w, 130, 120, totalUnits, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tr.WorkDone-totalUnits) > totalUnits*1e-6 {
		t.Errorf("work done = %v, want %v", tr.WorkDone, totalUnits)
	}
	if tr.Elapsed <= 0 || len(tr.Samples) == 0 {
		t.Error("no time advanced")
	}
	// Elapsed should match steady-state rate.
	steady, err := sim.RunCPU(p, &w, 130, 120)
	if err != nil {
		t.Fatal(err)
	}
	want := totalUnits / steady.UnitRate.OpsPerSecond()
	if math.Abs(tr.Elapsed.Seconds()-want) > want*0.01 {
		t.Errorf("elapsed = %v s, want %v s", tr.Elapsed.Seconds(), want)
	}
}

func TestTraceEnergyConsistency(t *testing.T) {
	p, _ := hw.PlatformByName("ivybridge")
	w, _ := workload.ByName("dgemm")
	tr, err := RunCPU(p, &w, 150, 100, 500e9, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	// Energy from the RAPL counters matches power x time within counter
	// quantization.
	var expect float64
	var prev time.Duration
	for _, s := range tr.Samples {
		dt := (s.Time - prev).Seconds()
		expect += (s.ProcPower + s.MemPower).Watts() * dt
		prev = s.Time
	}
	got := (tr.ProcEnergy + tr.MemEnergy).Joules()
	if math.Abs(got-expect) > expect*0.01+1 {
		t.Errorf("counter energy = %v J, integral = %v J", got, expect)
	}
	if tr.AvgTotalPower <= 0 {
		t.Error("average power missing")
	}
}

func TestTraceCapRespected(t *testing.T) {
	p, _ := hw.PlatformByName("ivybridge")
	w, _ := workload.ByName("sra")
	tr, err := RunCPU(p, &w, 100, 110, 5e9, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.CapRespected(210) {
		t.Errorf("peak window average %v exceeds the 210 W bound", tr.PeakWindowAvg)
	}
	if tr.CapRespected(tr.PeakWindowAvg - 5) {
		t.Error("CapRespected should fail below the observed peak")
	}
}

func TestTraceMultiPhaseBreakdown(t *testing.T) {
	p, _ := hw.PlatformByName("ivybridge")
	w, _ := workload.ByName("bt") // four phases
	tr, err := RunCPU(p, &w, 140, 110, 500e9, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	bd := tr.PhaseBreakdown()
	if len(bd) != 4 {
		t.Fatalf("phase breakdown has %d phases, want 4: %v", len(bd), bd)
	}
	var sum time.Duration
	for _, d := range bd {
		if d <= 0 {
			t.Errorf("non-positive phase duration: %v", bd)
		}
		sum += d
	}
	if math.Abs((sum - tr.Elapsed).Seconds()) > 0.001 {
		t.Errorf("breakdown sums to %v, elapsed %v", sum, tr.Elapsed)
	}
	// Phase transitions appear in sample order: rhs before z-solve.
	firstZ := -1
	lastRhs := -1
	for i, s := range tr.Samples {
		if s.Phase == "z-solve" && firstZ == -1 {
			firstZ = i
		}
		if s.Phase == "rhs" {
			lastRhs = i
		}
	}
	if firstZ != -1 && lastRhs > firstZ {
		t.Error("phases interleaved; expected sequential execution")
	}
}

func TestTraceWindowAverageSmoothing(t *testing.T) {
	p, _ := hw.PlatformByName("ivybridge")
	w, _ := workload.ByName("ft") // two phases with different powers
	tr, err := RunCPU(p, &w, 150, 110, 200e9, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	// The running average never exceeds the maximum instantaneous power.
	var maxInstant float64
	for _, s := range tr.Samples {
		maxInstant = math.Max(maxInstant, (s.ProcPower + s.MemPower).Watts())
	}
	if tr.PeakWindowAvg.Watts() > maxInstant+0.5 {
		t.Errorf("window peak %v exceeds instantaneous max %v", tr.PeakWindowAvg, maxInstant)
	}
}

func TestGPUTraceBasics(t *testing.T) {
	p, _ := hw.PlatformByName("titanxp")
	w, _ := workload.ByName("sgemm")
	totalUnits := 1e13 // 10 TFLOPs
	tr, err := RunGPU(p, &w, 200, p.GPU.Mem.ClockNom, totalUnits, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tr.WorkDone-totalUnits) > totalUnits*1e-6 {
		t.Errorf("work done = %v", tr.WorkDone)
	}
	if tr.Elapsed <= 0 || len(tr.Samples) == 0 {
		t.Error("no time advanced")
	}
	// Board power respects the cap (reclaim keeps it near the cap for
	// power-hungry SGEMM).
	if tr.PeakWindowAvg.Watts() > 212 {
		t.Errorf("peak window average %v over the 200 W cap", tr.PeakWindowAvg)
	}
	if tr.AvgTotalPower.Watts() < 150 {
		t.Errorf("average power %v implausibly low for SGEMM at 200 W", tr.AvgTotalPower)
	}
	// Energy splits into SM-side and memory-side components.
	if tr.ProcEnergy <= 0 || tr.MemEnergy <= 0 {
		t.Error("energy components missing")
	}
}

func TestGPUTraceValidation(t *testing.T) {
	p, _ := hw.PlatformByName("titanxp")
	w, _ := workload.ByName("sgemm")
	if _, err := RunGPU(p, &w, 200, p.GPU.Mem.ClockNom, 0, time.Millisecond); err == nil {
		t.Error("zero work accepted")
	}
	if _, err := RunGPU(p, &w, 200, p.GPU.Mem.ClockNom, 1e12, 0); err == nil {
		t.Error("zero step accepted")
	}
	cw, _ := workload.ByName("stream")
	if _, err := RunGPU(p, &cw, 200, p.GPU.Mem.ClockNom, 1e12, time.Millisecond); err == nil {
		t.Error("CPU workload accepted")
	}
}
