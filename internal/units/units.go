// Package units defines the physical quantities used throughout the
// power-bounded computing simulator: power, energy, frequency, bandwidth,
// and compute rate. All quantities are thin float64 wrappers in SI base
// units so arithmetic stays explicit and unit confusion (watts vs
// milliwatts, GB/s vs bytes/s) is caught by the type system.
package units

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Power is electrical power in watts.
type Power float64

// Common power constants.
const (
	Watt     Power = 1
	Kilowatt Power = 1000
	Megawatt Power = 1e6
)

// Watts returns p as a plain float64 number of watts.
func (p Power) Watts() float64 { return float64(p) }

// String formats the power with a unit suffix, e.g. "208.0 W".
// Nonzero magnitudes below 0.1 W render in milliwatts so small values
// survive a round trip through ParsePower instead of collapsing to
// "0.0 W" (exact zero still renders as "0.0 W").
func (p Power) String() string {
	switch {
	case math.Abs(float64(p)) >= 1e6:
		return fmt.Sprintf("%.2f MW", float64(p)/1e6)
	case math.Abs(float64(p)) >= 1e3:
		return fmt.Sprintf("%.2f kW", float64(p)/1e3)
	case p != 0 && math.Abs(float64(p)) < 0.1:
		return fmt.Sprintf("%.2f mW", float64(p)*1e3)
	default:
		return fmt.Sprintf("%.1f W", float64(p))
	}
}

// Clamp limits p to the inclusive range [lo, hi].
func (p Power) Clamp(lo, hi Power) Power {
	if p < lo {
		return lo
	}
	if p > hi {
		return hi
	}
	return p
}

// Energy is electrical energy in joules.
type Energy float64

// Common energy constants.
const (
	Joule        Energy = 1
	Kilojoule    Energy = 1000
	WattHour     Energy = 3600
	KilowattHour Energy = 3.6e6
)

// Joules returns e as a plain float64 number of joules.
func (e Energy) Joules() float64 { return float64(e) }

// String formats the energy with a unit suffix.
func (e Energy) String() string {
	switch {
	case math.Abs(float64(e)) >= 1e6:
		return fmt.Sprintf("%.2f MJ", float64(e)/1e6)
	case math.Abs(float64(e)) >= 1e3:
		return fmt.Sprintf("%.2f kJ", float64(e)/1e3)
	default:
		return fmt.Sprintf("%.2f J", float64(e))
	}
}

// Frequency is a clock frequency in hertz.
type Frequency float64

// Common frequency constants.
const (
	Hertz     Frequency = 1
	Kilohertz Frequency = 1e3
	Megahertz Frequency = 1e6
	Gigahertz Frequency = 1e9
)

// Hz returns f as a plain float64 number of hertz.
func (f Frequency) Hz() float64 { return float64(f) }

// GHz returns f in gigahertz.
func (f Frequency) GHz() float64 { return float64(f) / 1e9 }

// MHz returns f in megahertz.
func (f Frequency) MHz() float64 { return float64(f) / 1e6 }

// String formats the frequency with a unit suffix, e.g. "2.50 GHz".
func (f Frequency) String() string {
	switch {
	case math.Abs(float64(f)) >= 1e9:
		return fmt.Sprintf("%.2f GHz", float64(f)/1e9)
	case math.Abs(float64(f)) >= 1e6:
		return fmt.Sprintf("%.0f MHz", float64(f)/1e6)
	default:
		return fmt.Sprintf("%.0f Hz", float64(f))
	}
}

// Clamp limits f to the inclusive range [lo, hi].
func (f Frequency) Clamp(lo, hi Frequency) Frequency {
	if f < lo {
		return lo
	}
	if f > hi {
		return hi
	}
	return f
}

// Bandwidth is a data-movement rate in bytes per second.
type Bandwidth float64

// Common bandwidth constants.
const (
	BytePerSecond Bandwidth = 1
	KBps          Bandwidth = 1e3
	MBps          Bandwidth = 1e6
	GBps          Bandwidth = 1e9
)

// BytesPerSecond returns b as a plain float64.
func (b Bandwidth) BytesPerSecond() float64 { return float64(b) }

// GBPerSecond returns b in gigabytes per second.
func (b Bandwidth) GBPerSecond() float64 { return float64(b) / 1e9 }

// String formats the bandwidth with a unit suffix, e.g. "82.3 GB/s".
func (b Bandwidth) String() string {
	switch {
	case math.Abs(float64(b)) >= 1e9:
		return fmt.Sprintf("%.1f GB/s", float64(b)/1e9)
	case math.Abs(float64(b)) >= 1e6:
		return fmt.Sprintf("%.1f MB/s", float64(b)/1e6)
	default:
		return fmt.Sprintf("%.0f B/s", float64(b))
	}
}

// Rate is a computational throughput in operations per second. For
// floating-point workloads one op is one FLOP; for integer workloads
// (e.g. RandomAccess updates) one op is one update.
type Rate float64

// Common rate constants.
const (
	OpPerSecond Rate = 1
	MOPS        Rate = 1e6
	GOPS        Rate = 1e9
	TOPS        Rate = 1e12
)

// OpsPerSecond returns r as a plain float64.
func (r Rate) OpsPerSecond() float64 { return float64(r) }

// GOPSValue returns r in giga-operations per second.
func (r Rate) GOPSValue() float64 { return float64(r) / 1e9 }

// String formats the rate with a unit suffix, e.g. "360.0 GOP/s".
func (r Rate) String() string {
	switch {
	case math.Abs(float64(r)) >= 1e12:
		return fmt.Sprintf("%.2f TOP/s", float64(r)/1e12)
	case math.Abs(float64(r)) >= 1e9:
		return fmt.Sprintf("%.1f GOP/s", float64(r)/1e9)
	case math.Abs(float64(r)) >= 1e6:
		return fmt.Sprintf("%.1f MOP/s", float64(r)/1e6)
	default:
		return fmt.Sprintf("%.0f op/s", float64(r))
	}
}

// ParsePower parses strings like "208W", "208 W", "1.5kW", "2 MW",
// "250 mW". A bare number is interpreted as watts. The exact spelling
// "mW" is milliwatts (the SI prefix is case sensitive there and
// Power.String emits it for small values); every other casing,
// including the legacy lowercase "mw", keeps its historical megawatt
// meaning.
func ParsePower(s string) (Power, error) {
	v, unit, err := splitValueUnit(s)
	if err != nil {
		return 0, fmt.Errorf("parse power %q: %w", s, err)
	}
	if unit == "mW" {
		return Power(v * 1e-3), nil
	}
	switch strings.ToLower(unit) {
	case "", "w":
		return Power(v), nil
	case "kw":
		return Power(v * 1e3), nil
	case "mw":
		return Power(v * 1e6), nil
	default:
		return 0, fmt.Errorf("parse power %q: unknown unit %q", s, unit)
	}
}

// ParseFrequency parses strings like "2.5GHz", "1600 MHz", "850mhz".
// A bare number is interpreted as hertz.
func ParseFrequency(s string) (Frequency, error) {
	v, unit, err := splitValueUnit(s)
	if err != nil {
		return 0, fmt.Errorf("parse frequency %q: %w", s, err)
	}
	switch strings.ToLower(unit) {
	case "", "hz":
		return Frequency(v), nil
	case "khz":
		return Frequency(v * 1e3), nil
	case "mhz":
		return Frequency(v * 1e6), nil
	case "ghz":
		return Frequency(v * 1e9), nil
	default:
		return 0, fmt.Errorf("parse frequency %q: unknown unit %q", s, unit)
	}
}

// splitValueUnit splits "2.5GHz" into (2.5, "GHz"). Whitespace between the
// number and unit is permitted.
func splitValueUnit(s string) (float64, string, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, "", fmt.Errorf("empty string")
	}
	i := 0
	for i < len(s) {
		c := s[i]
		if (c >= '0' && c <= '9') || c == '.' || c == '-' || c == '+' || c == 'e' || c == 'E' {
			// Bare 'e'/'E' may begin a unit ("E" is not one we use, so the
			// exponent heuristic only consumes e/E followed by a digit or sign.
			if c == 'e' || c == 'E' {
				if i+1 >= len(s) || !(s[i+1] >= '0' && s[i+1] <= '9') && s[i+1] != '-' && s[i+1] != '+' {
					break
				}
			}
			i++
			continue
		}
		break
	}
	numPart := s[:i]
	unitPart := strings.TrimSpace(s[i:])
	v, err := strconv.ParseFloat(numPart, 64)
	if err != nil {
		return 0, "", fmt.Errorf("bad number %q", numPart)
	}
	return v, unitPart, nil
}

// Lerp linearly interpolates between a and b by t in [0,1].
func Lerp(a, b, t float64) float64 { return a + (b-a)*t }

// InvLerp returns the t in [0,1] such that Lerp(a,b,t)==v, clamped.
func InvLerp(a, b, v float64) float64 {
	if a == b {
		return 0
	}
	t := (v - a) / (b - a)
	if t < 0 {
		return 0
	}
	if t > 1 {
		return 1
	}
	return t
}

// AlmostEqual reports whether a and b agree to within tol (absolute) or a
// relative tolerance of tol when the magnitudes are large.
func AlmostEqual(a, b, tol float64) bool {
	d := math.Abs(a - b)
	if d <= tol {
		return true
	}
	m := math.Max(math.Abs(a), math.Abs(b))
	return d <= tol*m
}
