package units

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPowerString(t *testing.T) {
	cases := []struct {
		p    Power
		want string
	}{
		{208, "208.0 W"},
		{48.5, "48.5 W"},
		{1500, "1.50 kW"},
		{2.8e3, "2.80 kW"},
		{20e6, "20.00 MW"},
		{0, "0.0 W"},
		// Sub-0.1 W magnitudes render in milliwatts so they survive the
		// ParsePower round trip (regression: these collapsed to "0.0 W").
		{0.0004, "0.40 mW"},
		{-0.0075, "-7.50 mW"},
		{0.0999, "99.90 mW"},
	}
	for _, c := range cases {
		if got := c.p.String(); got != c.want {
			t.Errorf("Power(%v).String() = %q, want %q", float64(c.p), got, c.want)
		}
	}
}

// TestParsePowerMilliwattCase pins the milli/mega disambiguation: the
// exact spelling "mW" is milliwatts, while "MW" and the legacy
// lowercase "mw" remain megawatts. Before the fix ParsePower lowercased
// every unit, so "0.40 mW" read back as 400 kW — six orders of
// magnitude off.
func TestParsePowerMilliwattCase(t *testing.T) {
	cases := []struct {
		in   string
		want Power
	}{
		{"250 mW", 0.25},
		{"-0.4mW", -0.0004},
		{"2 MW", 2e6},
		{"2 mw", 2e6}, // legacy lowercase keeps the megawatt meaning
		{"2 Mw", 2e6},
	}
	for _, c := range cases {
		got, err := ParsePower(c.in)
		if err != nil {
			t.Errorf("ParsePower(%q): %v", c.in, err)
			continue
		}
		if math.Abs(float64(got-c.want)) > 1e-12*math.Abs(float64(c.want)) {
			t.Errorf("ParsePower(%q) = %v, want %v", c.in, float64(got), float64(c.want))
		}
	}
}

func TestEnergyString(t *testing.T) {
	cases := []struct {
		e    Energy
		want string
	}{
		{1, "1.00 J"},
		{2500, "2.50 kJ"},
		{KilowattHour, "3.60 MJ"},
	}
	for _, c := range cases {
		if got := c.e.String(); got != c.want {
			t.Errorf("Energy(%v).String() = %q, want %q", float64(c.e), got, c.want)
		}
	}
}

func TestFrequencyString(t *testing.T) {
	cases := []struct {
		f    Frequency
		want string
	}{
		{2.5 * Gigahertz, "2.50 GHz"},
		{1600 * Megahertz, "1.60 GHz"},
		{850 * Megahertz, "850 MHz"},
		{60, "60 Hz"},
	}
	for _, c := range cases {
		if got := c.f.String(); got != c.want {
			t.Errorf("Frequency.String() = %q, want %q", got, c.want)
		}
	}
}

func TestBandwidthString(t *testing.T) {
	if got := (82.3 * GBps).String(); got != "82.3 GB/s" {
		t.Errorf("got %q", got)
	}
	if got := (5 * MBps).String(); got != "5.0 MB/s" {
		t.Errorf("got %q", got)
	}
}

func TestRateString(t *testing.T) {
	if got := (360 * GOPS).String(); got != "360.0 GOP/s" {
		t.Errorf("got %q", got)
	}
	if got := (1.5 * TOPS).String(); got != "1.50 TOP/s" {
		t.Errorf("got %q", got)
	}
}

func TestParsePower(t *testing.T) {
	cases := []struct {
		in      string
		want    Power
		wantErr bool
	}{
		{"208W", 208, false},
		{"208 W", 208, false},
		{"208", 208, false},
		{"1.5kW", 1500, false},
		{"2 MW", 2e6, false},
		{"-10W", -10, false},
		{"", 0, true},
		{"abc", 0, true},
		{"10 volts", 0, true},
	}
	for _, c := range cases {
		got, err := ParsePower(c.in)
		if (err != nil) != c.wantErr {
			t.Errorf("ParsePower(%q) error = %v, wantErr %v", c.in, err, c.wantErr)
			continue
		}
		if err == nil && got != c.want {
			t.Errorf("ParsePower(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestParseFrequency(t *testing.T) {
	cases := []struct {
		in      string
		want    Frequency
		wantErr bool
	}{
		{"2.5GHz", 2.5e9, false},
		{"1600 MHz", 1.6e9, false},
		{"850mhz", 850e6, false},
		{"100", 100, false},
		{"1e9", 1e9, false},
		{"fast", 0, true},
	}
	for _, c := range cases {
		got, err := ParseFrequency(c.in)
		if (err != nil) != c.wantErr {
			t.Errorf("ParseFrequency(%q) error = %v, wantErr %v", c.in, err, c.wantErr)
			continue
		}
		if err == nil && math.Abs(float64(got-c.want)) > 1e-6 {
			t.Errorf("ParseFrequency(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestPowerClamp(t *testing.T) {
	if got := Power(300).Clamp(48, 250); got != 250 {
		t.Errorf("clamp high: got %v", got)
	}
	if got := Power(10).Clamp(48, 250); got != 48 {
		t.Errorf("clamp low: got %v", got)
	}
	if got := Power(100).Clamp(48, 250); got != 100 {
		t.Errorf("clamp mid: got %v", got)
	}
}

func TestFrequencyClamp(t *testing.T) {
	lo, hi := 1.2*Gigahertz, 2.5*Gigahertz
	if got := Frequency(3e9).Clamp(lo, hi); got != hi {
		t.Errorf("clamp high: got %v", got)
	}
	if got := Frequency(1e9).Clamp(lo, hi); got != lo {
		t.Errorf("clamp low: got %v", got)
	}
}

func TestLerpInvLerpRoundTrip(t *testing.T) {
	f := func(a, b, tRaw float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		if math.Abs(a) > 1e12 || math.Abs(b) > 1e12 || math.Abs(a-b) < 1e-9 {
			return true
		}
		tt := math.Mod(math.Abs(tRaw), 1.0)
		v := Lerp(a, b, tt)
		got := InvLerp(a, b, v)
		return AlmostEqual(got, tt, 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInvLerpClampsAndDegenerate(t *testing.T) {
	if got := InvLerp(0, 10, -5); got != 0 {
		t.Errorf("below range: got %v", got)
	}
	if got := InvLerp(0, 10, 25); got != 1 {
		t.Errorf("above range: got %v", got)
	}
	if got := InvLerp(5, 5, 7); got != 0 {
		t.Errorf("degenerate: got %v", got)
	}
}

func TestAlmostEqual(t *testing.T) {
	if !AlmostEqual(1.0, 1.0+1e-12, 1e-9) {
		t.Error("tiny diff should be equal")
	}
	if AlmostEqual(1.0, 2.0, 1e-9) {
		t.Error("1 vs 2 should differ")
	}
	if !AlmostEqual(1e12, 1e12*(1+1e-10), 1e-9) {
		t.Error("relative tolerance should apply at large magnitude")
	}
}

func TestClampProperty(t *testing.T) {
	f := func(p, lo, hi float64) bool {
		if math.IsNaN(p) || math.IsNaN(lo) || math.IsNaN(hi) {
			return true
		}
		if lo > hi {
			lo, hi = hi, lo
		}
		got := Power(p).Clamp(Power(lo), Power(hi))
		return float64(got) >= lo && float64(got) <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUnitConversions(t *testing.T) {
	if (2.5 * Gigahertz).GHz() != 2.5 {
		t.Error("GHz conversion")
	}
	if (1600 * Megahertz).MHz() != 1600 {
		t.Error("MHz conversion")
	}
	if (82 * GBps).GBPerSecond() != 82 {
		t.Error("GB/s conversion")
	}
	if (360 * GOPS).GOPSValue() != 360 {
		t.Error("GOPS conversion")
	}
	if Power(208).Watts() != 208 {
		t.Error("Watts conversion")
	}
	if Energy(42).Joules() != 42 {
		t.Error("Joules conversion")
	}
}

func TestRemainingConversionsAndClamps(t *testing.T) {
	if (2 * GBps).BytesPerSecond() != 2e9 {
		t.Error("Bandwidth.BytesPerSecond")
	}
	if (3 * GOPS).OpsPerSecond() != 3e9 {
		t.Error("Rate.OpsPerSecond")
	}
	if got := Power(100).Clamp(48, 250); got != 100 {
		t.Errorf("in-range clamp = %v", got)
	}
	if Lerp(10, 20, 0.5) != 15 {
		t.Error("Lerp midpoint")
	}
	// Bandwidth and Rate formatting at every magnitude.
	if got := Bandwidth(500).String(); got != "500 B/s" {
		t.Errorf("bytes string = %q", got)
	}
	if got := Rate(500).String(); got != "500 op/s" {
		t.Errorf("ops string = %q", got)
	}
	if got := (2 * MOPS).String(); got != "2.0 MOP/s" {
		t.Errorf("mops string = %q", got)
	}
}

func TestParseFrequencyExponentEdge(t *testing.T) {
	// 'e' followed by a unit letter must not be eaten as an exponent.
	if _, err := ParseFrequency("2eGHz"); err == nil {
		t.Error("malformed exponent accepted")
	}
	v, err := ParseFrequency("1e+3")
	if err != nil || v != 1000 {
		t.Errorf("1e+3 = %v, %v", v, err)
	}
}
