package units

import (
	"math"
	"strings"
	"testing"
)

func FuzzParsePower(f *testing.F) {
	for _, seed := range []string{"208W", "208 W", "1.5kW", "2 MW", "-10W", "", "abc", "1e3", "++5W", "5 kw extra"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		p, err := ParsePower(s)
		if err != nil {
			return
		}
		// Successful parses must produce a finite value whose formatting
		// does not panic.
		if math.IsNaN(p.Watts()) {
			t.Fatalf("ParsePower(%q) = NaN without error", s)
		}
		_ = p.String()
	})
}

func FuzzParseFrequency(f *testing.F) {
	for _, seed := range []string{"2.5GHz", "1600 MHz", "850mhz", "100", "1e9", "fast", "-3kHz"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		v, err := ParseFrequency(s)
		if err != nil {
			return
		}
		if math.IsNaN(v.Hz()) {
			t.Fatalf("ParseFrequency(%q) = NaN without error", s)
		}
		_ = v.String()
	})
}

func FuzzPowerRoundTrip(f *testing.F) {
	f.Add(208.0)
	f.Add(0.0)
	f.Add(48.5)
	f.Fuzz(func(t *testing.T, w float64) {
		if math.IsNaN(w) || math.IsInf(w, 0) || math.Abs(w) > 1e12 {
			return
		}
		p := Power(w)
		s := p.String()
		if !strings.HasSuffix(s, "W") {
			t.Fatalf("Power(%v).String() = %q lacks unit", w, s)
		}
		// A formatted power must parse back to a nearby value.
		back, err := ParsePower(s)
		if err != nil {
			t.Fatalf("cannot re-parse %q: %v", s, err)
		}
		if !AlmostEqual(back.Watts(), w, 0.06) {
			t.Fatalf("round trip %v -> %q -> %v", w, s, back.Watts())
		}
	})
}
