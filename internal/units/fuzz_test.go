package units

import (
	"math"
	"strings"
	"testing"
)

func FuzzParsePower(f *testing.F) {
	for _, seed := range []string{"208W", "208 W", "1.5kW", "2 MW", "-10W", "", "abc", "1e3", "++5W", "5 kw extra", "250 mW", "-0.25mW"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		p, err := ParsePower(s)
		if err != nil {
			return
		}
		// Successful parses must produce a finite value whose formatting
		// does not panic.
		if math.IsNaN(p.Watts()) {
			t.Fatalf("ParsePower(%q) = NaN without error", s)
		}
		_ = p.String()
	})
}

func FuzzParseFrequency(f *testing.F) {
	for _, seed := range []string{"2.5GHz", "1600 MHz", "850mhz", "100", "1e9", "fast", "-3kHz"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		v, err := ParseFrequency(s)
		if err != nil {
			return
		}
		if math.IsNaN(v.Hz()) {
			t.Fatalf("ParseFrequency(%q) = NaN without error", s)
		}
		_ = v.String()
	})
}

// powerStringTolerance is the precision Power.String guarantees: half a
// unit of the last rendered digit in the displayed unit, plus a relative
// sliver for decimal round trips of very large float64 values.
func powerStringTolerance(w float64) float64 {
	abs := math.Abs(w)
	half := 0.05 // "%.1f W"
	switch {
	case abs >= 1e6:
		half = 0.005 * 1e6 // "%.2f MW"
	case abs >= 1e3:
		half = 0.005 * 1e3 // "%.2f kW"
	case w != 0 && abs < 0.1:
		half = 0.005 * 1e-3 // "%.2f mW"
	}
	// The relative sliver absorbs binary/decimal conversion error (e.g.
	// 9.25 rendering as "9.2" via round-half-to-even, 5e-16 past the
	// half-digit bound, and long decimal expansions of huge values).
	return half + 1e-9*abs
}

// FuzzPowerRoundTrip checks ParsePower(p.String()) stays within the
// formatting precision for the whole finite range: negative,
// sub-milliwatt, and very large values included.
func FuzzPowerRoundTrip(f *testing.F) {
	for _, seed := range []float64{208, 0, 48.5, -10, 4e-4, -7.5e-3, 2.5e-5, 1e9, 3.7e300, -1.2e15} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, w float64) {
		if math.IsNaN(w) || math.IsInf(w, 0) {
			return
		}
		p := Power(w)
		s := p.String()
		if !strings.HasSuffix(s, "W") {
			t.Fatalf("Power(%v).String() = %q lacks unit", w, s)
		}
		back, err := ParsePower(s)
		if err != nil {
			t.Fatalf("cannot re-parse %q: %v", s, err)
		}
		if math.Abs(back.Watts()-w) > powerStringTolerance(w) {
			t.Fatalf("round trip %v -> %q -> %v (tolerance %v)", w, s, back.Watts(), powerStringTolerance(w))
		}
		if w != 0 && math.Signbit(back.Watts()) != math.Signbit(w) && back.Watts() != 0 {
			t.Fatalf("round trip %v -> %q -> %v flipped sign", w, s, back.Watts())
		}
	})
}

// frequencyStringTolerance mirrors powerStringTolerance for
// Frequency.String's three rendering bands.
func frequencyStringTolerance(hz float64) float64 {
	abs := math.Abs(hz)
	half := 0.5 // "%.0f Hz"
	switch {
	case abs >= 1e9:
		half = 0.005 * 1e9 // "%.2f GHz"
	case abs >= 1e6:
		half = 0.5 * 1e6 // "%.0f MHz"
	}
	return half + 1e-9*abs
}

// FuzzFrequencyRoundTrip checks ParseFrequency(f.String()) stays within
// the formatting precision across negative, fractional, and very large
// values.
func FuzzFrequencyRoundTrip(f *testing.F) {
	for _, seed := range []float64{2.5e9, 1600e6, 850e6, 60, 0, -3e3, 0.4, 1.4e6, 9.9e14, 2e300} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, hz float64) {
		if math.IsNaN(hz) || math.IsInf(hz, 0) {
			return
		}
		v := Frequency(hz)
		s := v.String()
		if !strings.HasSuffix(s, "Hz") {
			t.Fatalf("Frequency(%v).String() = %q lacks unit", hz, s)
		}
		back, err := ParseFrequency(s)
		if err != nil {
			t.Fatalf("cannot re-parse %q: %v", s, err)
		}
		if math.Abs(back.Hz()-hz) > frequencyStringTolerance(hz) {
			t.Fatalf("round trip %v -> %q -> %v (tolerance %v)", hz, s, back.Hz(), frequencyStringTolerance(hz))
		}
	})
}
