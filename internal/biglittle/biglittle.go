// Package biglittle extends power-bounded computing to heterogeneous
// big.LITTLE nodes — the extension the paper's conclusion names as future
// work. A node carries two core clusters sharing one memory system: a
// big cluster (wide, fast, power hungry) and a LITTLE cluster (narrow,
// slow, efficient). The allocation tuple grows to three members,
// (P_big, P_little, P_mem), and a new decision appears that homogeneous
// nodes do not have: which clusters to power at all.
//
// This realizes the paper's "activate components judiciously" insight for
// over-provisioned hardware: under a small budget it can be better to
// power a cluster off entirely — its idle floor buys more performance
// when spent elsewhere — than to run everything throttled.
package biglittle

import (
	"fmt"
	"math"

	"repro/internal/hw"
	"repro/internal/perfmodel"
	"repro/internal/rapl"
	"repro/internal/units"
	"repro/internal/workload"
)

// Node is a heterogeneous compute node: two core clusters and shared
// DRAM.
type Node struct {
	// Name identifies the node model.
	Name string
	// Big and Little are the two core clusters.
	Big, Little *hw.CPUSpec
	// DRAM is the shared memory system.
	DRAM *hw.DRAMSpec
	// OffPower is the residual draw of a power-gated cluster.
	OffPower units.Power
}

// Validate checks the component specs.
func (n *Node) Validate() error {
	if n.Big == nil || n.Little == nil || n.DRAM == nil {
		return fmt.Errorf("biglittle: node %q missing components", n.Name)
	}
	if err := n.Big.Validate(); err != nil {
		return err
	}
	if err := n.Little.Validate(); err != nil {
		return err
	}
	if err := n.DRAM.Validate(); err != nil {
		return err
	}
	if n.OffPower < 0 {
		return fmt.Errorf("biglittle: negative off power")
	}
	return nil
}

// Reference returns the reference big.LITTLE node used in tests and
// examples: an 8-wide-core big cluster and an 8-efficiency-core LITTLE
// cluster sharing 64 GB of DDR4.
func Reference() Node {
	return Node{
		Name: "biglittle-ref",
		Big: &hw.CPUSpec{
			Name: "8-core big cluster", Sockets: 1, CoresPerSocket: 8,
			FMin: 1.2 * units.Gigahertz, FNom: 2.5 * units.Gigahertz,
			PStateStep: 100 * units.Megahertz,
			VMin:       0.78, VNom: 1.05,
			OpsPerCyclePerCore: 8,
			IdlePower:          18, UncorePower: 6, MaxDynPower: 58,
			TStateSteps: 8, MinDuty: 0.125,
		},
		Little: &hw.CPUSpec{
			Name: "8-core LITTLE cluster", Sockets: 1, CoresPerSocket: 8,
			FMin: 0.6 * units.Gigahertz, FNom: 1.6 * units.Gigahertz,
			PStateStep: 100 * units.Megahertz,
			VMin:       0.70, VNom: 0.92,
			OpsPerCyclePerCore: 4,
			IdlePower:          5, UncorePower: 2.5, MaxDynPower: 16,
			TStateSteps: 8, MinDuty: 0.125,
		},
		DRAM: &hw.DRAMSpec{
			Name: "64 GB DDR4-2400", TotalGB: 64, Channels: 4,
			TransferRate: 2400 * units.Megahertz, BytesPerTransfer: 8,
			BackgroundPower:     14,
			EnergyPerByteStream: 0.5e-9, EnergyPerByteRandom: 4.5e-9,
			MinThrottleHeadroom: 1,
		},
		OffPower: 1.5,
	}
}

// Allocation is the three-member power tuple. A cluster cap of zero means
// the cluster is powered off (not uncapped — the heterogeneous problem is
// about activation).
type Allocation struct {
	Big, Little, Mem units.Power
}

// Total returns the tuple sum.
func (a Allocation) Total() units.Power { return a.Big + a.Little + a.Mem }

// String formats the tuple.
func (a Allocation) String() string {
	return fmt.Sprintf("(big %s, little %s, mem %s)", a.Big, a.Little, a.Mem)
}

// Result is the simulated outcome on a heterogeneous node.
type Result struct {
	// Perf is performance in the workload's unit.
	Perf float64
	// BigPower, LittlePower and MemPower are actual draws.
	BigPower, LittlePower, MemPower units.Power
	// TotalPower is their sum.
	TotalPower units.Power
	// BigShare is the fraction of compute capacity the big cluster
	// contributed (0 when off).
	BigShare float64
}

// mlpFloor mirrors the homogeneous simulator's weak frequency dependence
// of achievable bandwidth.
const mlpFloor = 0.7

// Run simulates workload w on node n under allocation a. Work divides
// across the active clusters in proportion to their compute capacities
// (perfect intra-node balance); the memory system is shared.
func Run(n Node, w *workload.Workload, a Allocation) (Result, error) {
	if err := n.Validate(); err != nil {
		return Result{}, err
	}
	if err := w.Validate(); err != nil {
		return Result{}, err
	}
	if w.Kind != hw.KindCPU {
		return Result{}, fmt.Errorf("biglittle: workload %q is not a CPU workload", w.Name)
	}
	if a.Big < 0 || a.Little < 0 || a.Mem <= 0 {
		return Result{}, fmt.Errorf("biglittle: invalid allocation %v", a)
	}
	if a.Big == 0 && a.Little == 0 {
		return Result{}, fmt.Errorf("biglittle: both clusters powered off")
	}

	bigCtl := rapl.NewController(n.Big, n.DRAM)
	littleCtl := rapl.NewController(n.Little, n.DRAM)
	if a.Big > 0 {
		if err := bigCtl.SetLimit(rapl.DomainPackage, a.Big); err != nil {
			return Result{}, err
		}
	}
	if a.Little > 0 {
		if err := littleCtl.SetLimit(rapl.DomainPackage, a.Little); err != nil {
			return Result{}, err
		}
	}
	if err := bigCtl.SetLimit(rapl.DomainDRAM, a.Mem); err != nil {
		return Result{}, err
	}

	var res Result
	totalTime := 0.0
	for i := range w.Phases {
		ph := &w.Phases[i]
		pr := solvePhase(n, bigCtl, littleCtl, a, ph)
		if pr.rate <= 0 {
			return Result{}, fmt.Errorf("biglittle: phase %q made no progress", ph.Name)
		}
		t := ph.Weight / pr.rate
		totalTime += t
		res.BigPower += units.Power(t * pr.bigPower.Watts())
		res.LittlePower += units.Power(t * pr.littlePower.Watts())
		res.MemPower += units.Power(t * pr.memPower.Watts())
		res.BigShare += t * pr.bigShare
	}
	if totalTime <= 0 {
		return Result{}, fmt.Errorf("biglittle: zero total time")
	}
	res.Perf = w.PerfPerUnitRate / totalTime
	res.BigPower = units.Power(res.BigPower.Watts() / totalTime)
	res.LittlePower = units.Power(res.LittlePower.Watts() / totalTime)
	res.MemPower = units.Power(res.MemPower.Watts() / totalTime)
	res.BigShare /= totalTime
	res.TotalPower = res.BigPower + res.LittlePower + res.MemPower
	return res, nil
}

type phaseOutcome struct {
	rate                            float64
	bigPower, littlePower, memPower units.Power
	bigShare                        float64
}

// solvePhase runs the coupled fixed point across both clusters and the
// shared memory system.
func solvePhase(n Node, bigCtl, littleCtl *rapl.Controller, a Allocation, ph *workload.Phase) phaseOutcome {
	act := ph.Activity(0.5)
	var out phaseOutcome
	for i := 0; i < 60; i++ {
		bigCap, bigIssue, bigState := clusterCapacity(n.Big, bigCtl, a.Big > 0, act, ph)
		litCap, litIssue, litState := clusterCapacity(n.Little, littleCtl, a.Little > 0, act, ph)
		computeCap := bigCap + litCap
		issue := math.Max(bigIssue, litIssue)
		patternBW := units.Bandwidth(n.DRAM.PeakBandwidth().BytesPerSecond() * ph.BandwidthEff * issue)
		ceiling := bigCtl.DRAMBandwidthCeiling(ph.RandomFrac)
		op := perfmodel.SolveThrottled(ph, units.Rate(computeCap), patternBW, ceiling)

		next := ph.Activity(op.StallFrac)
		converged := math.Abs(next-act) < 1e-4
		act += 0.5 * (next - act)

		out.rate = op.Rate.OpsPerSecond()
		if computeCap > 0 {
			out.bigShare = bigCap / computeCap
		}
		out.bigPower = clusterPower(n, n.Big, bigCtl, a.Big > 0, bigState, act)
		out.littlePower = clusterPower(n, n.Little, littleCtl, a.Little > 0, litState, act)
		out.memPower = n.DRAM.Power(op.BandwidthUsed, ph.RandomFrac)
		if converged {
			break
		}
	}
	return out
}

// clusterCapacity returns the effective compute capacity, issue factor,
// and actuator state for one cluster (zero capacity when powered off).
func clusterCapacity(spec *hw.CPUSpec, ctl *rapl.Controller, on bool, act float64, ph *workload.Phase) (float64, float64, rapl.PackageState) {
	if !on {
		return 0, 0, rapl.PackageState{}
	}
	state := ctl.ActuatePackage(act)
	cap := spec.PeakComputeRate(state.Freq, state.Duty).OpsPerSecond() * ph.ComputeEff
	fRatio := state.Freq.Hz() / spec.FNom.Hz()
	issue := state.Duty * (mlpFloor + (1-mlpFloor)*fRatio)
	return cap, issue, state
}

func clusterPower(n Node, spec *hw.CPUSpec, ctl *rapl.Controller, on bool, state rapl.PackageState, act float64) units.Power {
	if !on {
		return n.OffPower
	}
	return ctl.PackagePower(state, act)
}
