package biglittle

import (
	"fmt"

	"repro/internal/units"
	"repro/internal/workload"
)

// Mode is a cluster-activation choice.
type Mode int

// Activation modes.
const (
	ModeBigOnly Mode = iota
	ModeLittleOnly
	ModeBoth
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeBigOnly:
		return "big-only"
	case ModeLittleOnly:
		return "little-only"
	case ModeBoth:
		return "both"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Decision is the heterogeneous coordinator's output.
type Decision struct {
	Mode  Mode
	Alloc Allocation
	// PredictedPerf is the simulated performance of the chosen
	// allocation.
	PredictedPerf float64
	// Rejected reports that no mode fits the budget productively.
	Rejected bool
}

// Coordinate extends COORD to the three-component node: it profiles each
// activation mode with one uncapped run (maximum demands), derives a
// candidate allocation per mode — memory warranted first, remainder split
// across the active clusters in proportion to their dynamic power ranges —
// and picks the mode with the best simulated performance under the
// budget. The candidate evaluation costs three simulator runs; no
// allocation sweep is involved.
func Coordinate(n Node, w workload.Workload, budget units.Power) (Decision, error) {
	if err := n.Validate(); err != nil {
		return Decision{}, err
	}
	best := Decision{Rejected: true}
	for _, mode := range []Mode{ModeBigOnly, ModeLittleOnly, ModeBoth} {
		alloc, ok, err := candidate(n, &w, mode, budget)
		if err != nil {
			return Decision{}, err
		}
		if !ok {
			continue
		}
		res, err := Run(n, &w, alloc)
		if err != nil {
			continue // infeasible candidate (e.g. cluster floor unmet)
		}
		if best.Rejected || res.Perf > best.PredictedPerf {
			best = Decision{Mode: mode, Alloc: alloc, PredictedPerf: res.Perf}
		}
	}
	return best, nil
}

// candidate derives a mode's allocation from its uncapped demands.
func candidate(n Node, w *workload.Workload, mode Mode, budget units.Power) (Allocation, bool, error) {
	// Uncapped demands for the mode (generous caps).
	probe := Allocation{Mem: 500}
	switch mode {
	case ModeBigOnly:
		probe.Big = 500
	case ModeLittleOnly:
		probe.Little = 500
	case ModeBoth:
		probe.Big, probe.Little = 500, 500
	}
	free, err := Run(n, w, probe)
	if err != nil {
		return Allocation{}, false, err
	}

	// Floors for the mode.
	floor := n.DRAM.BackgroundPower + n.OffPower*2
	var bigFloor, littleFloor units.Power
	if mode != ModeLittleOnly {
		bigFloor = n.Big.IdlePower
		floor += bigFloor - n.OffPower
	}
	if mode != ModeBigOnly {
		littleFloor = n.Little.IdlePower
		floor += littleFloor - n.OffPower
	}
	if budget < floor+4 {
		return Allocation{}, false, nil
	}

	// Warrant memory its demand (with margin), capped to leave the
	// cluster floors covered.
	mem := units.Power(free.MemPower.Watts()*1.02 + 1)
	maxMem := budget - bigFloor - littleFloor - n.OffPower
	if mem > maxMem {
		mem = maxMem
	}
	if mem < n.DRAM.BackgroundPower {
		return Allocation{}, false, nil
	}
	remaining := budget - mem

	alloc := Allocation{Mem: mem}
	bigDemand := units.Power(free.BigPower.Watts()*1.02 + 1)
	littleDemand := units.Power(free.LittlePower.Watts()*1.02 + 1)
	switch mode {
	case ModeBigOnly:
		alloc.Big = minP(remaining-n.OffPower, bigDemand)
		if alloc.Big < bigFloor {
			return Allocation{}, false, nil
		}
	case ModeLittleOnly:
		alloc.Little = minP(remaining-n.OffPower, littleDemand)
		if alloc.Little < littleFloor {
			return Allocation{}, false, nil
		}
	case ModeBoth:
		// Split the remainder in proportion to the clusters' dynamic
		// ranges above their floors.
		bigRange := (bigDemand - bigFloor).Watts()
		littleRange := (littleDemand - littleFloor).Watts()
		if bigRange < 0 {
			bigRange = 0
		}
		if littleRange < 0 {
			littleRange = 0
		}
		frac := 0.5
		if bigRange+littleRange > 0 {
			frac = bigRange / (bigRange + littleRange)
		}
		spare := remaining - bigFloor - littleFloor
		if spare < 0 {
			return Allocation{}, false, nil
		}
		alloc.Big = minP(bigFloor+units.Power(frac*spare.Watts()), bigDemand)
		alloc.Little = minP(remaining-alloc.Big, littleDemand)
		if alloc.Little < littleFloor {
			alloc.Little = littleFloor
		}
	}
	return alloc, true, nil
}

func minP(a, b units.Power) units.Power {
	if a < b {
		return a
	}
	return b
}
