package biglittle

import (
	"testing"

	"repro/internal/units"
	"repro/internal/workload"
)

func wl(t *testing.T, name string) workload.Workload {
	t.Helper()
	w, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestReferenceNodeValid(t *testing.T) {
	n := Reference()
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	// big must out-compute little at nominal clocks.
	bigPeak := n.Big.PeakComputeRate(n.Big.FNom, 1)
	littlePeak := n.Little.PeakComputeRate(n.Little.FNom, 1)
	if bigPeak <= littlePeak {
		t.Errorf("big peak %v should exceed little %v", bigPeak, littlePeak)
	}
	// little must be more efficient: more ops per watt at full tilt.
	bigEff := bigPeak.OpsPerSecond() / n.Big.MaxPower(1).Watts()
	littleEff := littlePeak.OpsPerSecond() / n.Little.MaxPower(1).Watts()
	if littleEff <= bigEff {
		t.Errorf("little efficiency %.2e should exceed big %.2e", littleEff, bigEff)
	}
}

func TestRunInputValidation(t *testing.T) {
	n := Reference()
	w := wl(t, "dgemm")
	if _, err := Run(n, &w, Allocation{Big: 0, Little: 0, Mem: 30}); err == nil {
		t.Error("both clusters off accepted")
	}
	if _, err := Run(n, &w, Allocation{Big: 40, Little: 0, Mem: 0}); err == nil {
		t.Error("zero memory accepted")
	}
	gw := wl(t, "sgemm")
	if _, err := Run(n, &gw, Allocation{Big: 40, Mem: 30}); err == nil {
		t.Error("GPU workload accepted")
	}
	bad := n
	bad.Big = nil
	if _, err := Run(bad, &w, Allocation{Big: 40, Mem: 30}); err == nil {
		t.Error("invalid node accepted")
	}
}

func TestBothClustersBeatEitherAloneUncapped(t *testing.T) {
	n := Reference()
	w := wl(t, "dgemm")
	both, err := Run(n, &w, Allocation{Big: 200, Little: 200, Mem: 200})
	if err != nil {
		t.Fatal(err)
	}
	bigOnly, err := Run(n, &w, Allocation{Big: 200, Mem: 200})
	if err != nil {
		t.Fatal(err)
	}
	littleOnly, err := Run(n, &w, Allocation{Little: 200, Mem: 200})
	if err != nil {
		t.Fatal(err)
	}
	if both.Perf <= bigOnly.Perf || both.Perf <= littleOnly.Perf {
		t.Errorf("both %v should beat big-only %v and little-only %v",
			both.Perf, bigOnly.Perf, littleOnly.Perf)
	}
	if bigOnly.Perf <= littleOnly.Perf {
		t.Errorf("big-only %v should beat little-only %v for compute-bound DGEMM",
			bigOnly.Perf, littleOnly.Perf)
	}
	// Powered-off cluster draws only the off power.
	if bigOnly.LittlePower != n.OffPower {
		t.Errorf("off cluster draws %v, want %v", bigOnly.LittlePower, n.OffPower)
	}
	// Work split tracks capacity: big dominates when both run.
	if both.BigShare < 0.6 {
		t.Errorf("big share %v, want > 0.6", both.BigShare)
	}
}

func TestRunRespectsClusterCaps(t *testing.T) {
	n := Reference()
	w := wl(t, "dgemm")
	res, err := Run(n, &w, Allocation{Big: 40, Little: 12, Mem: 40})
	if err != nil {
		t.Fatal(err)
	}
	if res.BigPower.Watts() > 41 {
		t.Errorf("big power %v over its 40 W cap", res.BigPower)
	}
	if res.LittlePower.Watts() > 13 {
		t.Errorf("little power %v over its 12 W cap", res.LittlePower)
	}
}

func TestLittleOnlyWinsAtTinyBudgets(t *testing.T) {
	// Memory-bound STREAM under a tight budget: the LITTLE cluster can
	// drive the memory system at a fraction of the big cluster's idle
	// cost, so little-only outperforms big-only.
	n := Reference()
	w := wl(t, "stream")
	budget := units.Power(45)
	mem := units.Power(22)
	littleOnly, err := Run(n, &w, Allocation{Little: budget - mem - n.OffPower, Mem: mem})
	if err != nil {
		t.Fatal(err)
	}
	bigOnly, err := Run(n, &w, Allocation{Big: budget - mem - n.OffPower, Mem: mem})
	if err != nil {
		t.Fatal(err)
	}
	if littleOnly.Perf <= bigOnly.Perf {
		t.Errorf("at %v: little-only %.1f should beat big-only %.1f GB/s",
			budget, littleOnly.Perf, bigOnly.Perf)
	}
}

func TestCoordinatePicksModeByBudget(t *testing.T) {
	n := Reference()
	stream := wl(t, "stream")
	// Large budget: both clusters (or at least not rejected, with perf at
	// the memory roof).
	d, err := Coordinate(n, stream, 160)
	if err != nil {
		t.Fatal(err)
	}
	if d.Rejected {
		t.Fatal("160 W rejected")
	}
	largePerf := d.PredictedPerf

	// Small budget (enough for the LITTLE cluster to run unthrottled but
	// far below the big cluster's appetite): must pick little-only for
	// the memory-bound workload.
	d, err = Coordinate(n, stream, 55)
	if err != nil {
		t.Fatal(err)
	}
	if d.Rejected {
		t.Fatal("55 W rejected")
	}
	if d.Mode != ModeLittleOnly {
		t.Errorf("55 W mode = %v, want little-only", d.Mode)
	}
	if d.PredictedPerf >= largePerf {
		t.Error("tiny budget should not beat large budget")
	}

	// Compute-bound DGEMM at a mid budget: big participates.
	dgemm := wl(t, "dgemm")
	d, err = Coordinate(n, dgemm, 100)
	if err != nil {
		t.Fatal(err)
	}
	if d.Rejected {
		t.Fatal("100 W rejected")
	}
	if d.Mode == ModeLittleOnly {
		t.Errorf("DGEMM at 100 W picked %v; big cluster should participate", d.Mode)
	}
}

func TestCoordinateRespectsBudget(t *testing.T) {
	n := Reference()
	for _, name := range []string{"stream", "dgemm", "mg", "sra"} {
		w := wl(t, name)
		for _, budget := range []units.Power{45, 70, 100, 140, 200} {
			d, err := Coordinate(n, w, budget)
			if err != nil {
				t.Fatal(err)
			}
			if d.Rejected {
				continue
			}
			if d.Alloc.Total() > budget+0.01 {
				t.Errorf("%s at %v: allocation %v exceeds budget", name, budget, d.Alloc)
			}
			res, err := Run(n, &w, d.Alloc)
			if err != nil {
				t.Fatal(err)
			}
			if res.TotalPower > budget+2 {
				t.Errorf("%s at %v: actual draw %v exceeds budget", name, budget, res.TotalPower)
			}
		}
	}
}

func TestCoordinateBeatsNaiveBothAlways(t *testing.T) {
	// A naive policy always powers both clusters with an even split.
	// Mode selection must never lose to it (and should win at small
	// budgets).
	n := Reference()
	wins := 0
	for _, name := range []string{"stream", "dgemm", "mg"} {
		w := wl(t, name)
		for _, budget := range []units.Power{50, 70, 100} {
			d, err := Coordinate(n, w, budget)
			if err != nil {
				t.Fatal(err)
			}
			if d.Rejected {
				continue
			}
			memNaive := units.Power(budget.Watts() * 0.3)
			rest := budget - memNaive
			naive, err := Run(n, &w, Allocation{Big: rest / 2, Little: rest / 2, Mem: memNaive})
			if err != nil {
				continue
			}
			if d.PredictedPerf < naive.Perf*0.98 {
				t.Errorf("%s at %v: coordinate %.1f below naive-both %.1f",
					name, budget, d.PredictedPerf, naive.Perf)
			}
			if d.PredictedPerf > naive.Perf*1.02 {
				wins++
			}
		}
	}
	if wins == 0 {
		t.Error("mode selection should clearly win somewhere")
	}
}

func TestModeAndAllocationStrings(t *testing.T) {
	if ModeBigOnly.String() != "big-only" || ModeLittleOnly.String() != "little-only" || ModeBoth.String() != "both" {
		t.Error("mode names")
	}
	if Mode(9).String() == "" {
		t.Error("unknown mode should format")
	}
	a := Allocation{Big: 40, Little: 10, Mem: 20}
	if a.Total() != 70 {
		t.Error("total")
	}
	if a.String() == "" {
		t.Error("string")
	}
}
