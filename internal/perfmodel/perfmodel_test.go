package perfmodel

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/units"
	"repro/internal/workload"
)

func phase(ops, bytes, overlap float64) *workload.Phase {
	return &workload.Phase{
		Name: "test", Weight: 1,
		OpsPerUnit: ops, BytesPerUnit: bytes,
		BandwidthEff: 1, ComputeEff: 1, Overlap: overlap,
		ActivityBase: 0.8, StallActivity: 0.4,
	}
}

func TestSolveComputeBound(t *testing.T) {
	// 10 ops and 1 byte per unit, plentiful bandwidth: compute dominates.
	p := phase(10, 1, 8)
	op := Solve(p, 100*units.GOPS, 1000*units.GBps)
	wantRate := 100e9 / 10 // 10 GU/s
	if math.Abs(op.Rate.OpsPerSecond()-wantRate) > wantRate*0.01 {
		t.Errorf("rate = %v, want ~%v", op.Rate.OpsPerSecond(), wantRate)
	}
	if op.ComputeUtil < 0.99 {
		t.Errorf("compute util = %v, want ~1", op.ComputeUtil)
	}
	if op.StallFrac > 0.05 {
		t.Errorf("stall fraction = %v, want ~0", op.StallFrac)
	}
}

func TestSolveMemoryBound(t *testing.T) {
	// 1 op and 100 bytes per unit, modest bandwidth: memory dominates.
	p := phase(1, 100, 8)
	op := Solve(p, 1000*units.GOPS, 10*units.GBps)
	wantRate := 10e9 / 100 // 0.1 GU/s
	if math.Abs(op.Rate.OpsPerSecond()-wantRate) > wantRate*0.01 {
		t.Errorf("rate = %v, want ~%v", op.Rate.OpsPerSecond(), wantRate)
	}
	if op.MemUtil < 0.99 {
		t.Errorf("mem util = %v, want ~1", op.MemUtil)
	}
	if op.StallFrac < 0.9 {
		t.Errorf("stall fraction = %v, want ~1", op.StallFrac)
	}
}

func TestSolveSerialVsOverlapped(t *testing.T) {
	// With equal compute and memory time, serial execution (p=1) is twice
	// as slow as perfect overlap (p→∞).
	serial := Solve(phase(10, 10, 1), 10*units.GOPS, 10*units.GBps)
	overlapped := Solve(phase(10, 10, 100), 10*units.GOPS, 10*units.GBps)
	ratio := overlapped.Rate.OpsPerSecond() / serial.Rate.OpsPerSecond()
	if math.Abs(ratio-2) > 0.01 {
		t.Errorf("overlap speedup = %v, want 2", ratio)
	}
}

func TestSolveRateMonotoneInCapacities(t *testing.T) {
	p := phase(5, 20, 2)
	f := func(c1, c2, b1, b2 float64) bool {
		cLo := units.Rate(1e9 + math.Abs(math.Mod(c1, 1e11)))
		cHi := cLo + units.Rate(math.Abs(math.Mod(c2, 1e11)))
		bLo := units.Bandwidth(1e9 + math.Abs(math.Mod(b1, 1e11)))
		bHi := bLo + units.Bandwidth(math.Abs(math.Mod(b2, 1e11)))
		r1 := Solve(p, cLo, bLo).Rate
		r2 := Solve(p, cHi, bLo).Rate
		r3 := Solve(p, cLo, bHi).Rate
		return r2 >= r1-1e-9 && r3 >= r1-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSolveUtilizationsConsistent(t *testing.T) {
	p := phase(3, 7, 2.5)
	op := Solve(p, 50*units.GOPS, 40*units.GBps)
	// Utilization equals demand time over total time.
	if got, want := op.ComputeUtil, op.ComputeTime/op.UnitTime; math.Abs(got-want) > 1e-9 {
		t.Errorf("compute util = %v, want %v", got, want)
	}
	if got, want := op.MemUtil, op.MemTime/op.UnitTime; math.Abs(got-want) > 1e-9 {
		t.Errorf("mem util = %v, want %v", got, want)
	}
	// Achieved throughputs match utilization times capacity.
	wantOps := op.ComputeUtil * 50e9
	if math.Abs(op.OpsRate.OpsPerSecond()-wantOps) > wantOps*1e-9 {
		t.Errorf("ops rate = %v, want %v", op.OpsRate.OpsPerSecond(), wantOps)
	}
	wantBW := op.MemUtil * 40e9
	if math.Abs(op.BandwidthUsed.BytesPerSecond()-wantBW) > wantBW*1e-9 {
		t.Errorf("bandwidth = %v, want %v", op.BandwidthUsed.BytesPerSecond(), wantBW)
	}
}

func TestSolveStallFracComplementsComputeUtil(t *testing.T) {
	f := func(opsRaw, bytesRaw, pRaw float64) bool {
		ops := 0.1 + math.Abs(math.Mod(opsRaw, 100))
		bytes := 0.1 + math.Abs(math.Mod(bytesRaw, 100))
		pexp := 1 + math.Abs(math.Mod(pRaw, 8))
		op := Solve(phase(ops, bytes, pexp), 10*units.GOPS, 10*units.GBps)
		return math.Abs(op.StallFrac-(1-op.ComputeUtil)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSolveDegenerateCapacities(t *testing.T) {
	p := phase(10, 10, 2)
	op := Solve(p, 0, 0)
	if op.Rate <= 0 || math.IsInf(float64(op.Rate), 0) {
		t.Errorf("zero capacities should yield tiny positive rate, got %v", op.Rate)
	}
	if op.Rate > 1 {
		t.Errorf("halted rate should be near zero, got %v", op.Rate)
	}
}

func TestSolvePureComputePhase(t *testing.T) {
	p := phase(10, 0, 2)
	op := Solve(p, 10*units.GOPS, 10*units.GBps)
	if op.StallFrac != 0 {
		t.Errorf("pure compute phase stalls: %v", op.StallFrac)
	}
	if op.MemUtil != 0 {
		t.Errorf("pure compute phase uses memory: %v", op.MemUtil)
	}
	if op.ComputeUtil < 0.999 {
		t.Errorf("pure compute util = %v", op.ComputeUtil)
	}
}

func TestSolvePureMemoryPhase(t *testing.T) {
	p := phase(0, 10, 2)
	op := Solve(p, 10*units.GOPS, 10*units.GBps)
	if op.StallFrac < 0.999 {
		t.Errorf("pure memory phase stall = %v", op.StallFrac)
	}
	if op.ComputeUtil != 0 {
		t.Errorf("pure memory phase computes: %v", op.ComputeUtil)
	}
}

func TestSolveNoWorkPhase(t *testing.T) {
	p := phase(0, 0, 2)
	op := Solve(p, 10*units.GOPS, 10*units.GBps)
	if !math.IsInf(float64(op.Rate), 1) {
		t.Errorf("no-work phase rate = %v, want +Inf", op.Rate)
	}
}

func TestPNormProperties(t *testing.T) {
	f := func(aRaw, bRaw, pRaw float64) bool {
		a := math.Abs(math.Mod(aRaw, 1e3))
		b := math.Abs(math.Mod(bRaw, 1e3))
		p := 1 + math.Abs(math.Mod(pRaw, 100))
		n := pNorm(a, b, p)
		// p-norm lies between max and sum.
		mx := math.Max(a, b)
		return n >= mx-1e-9 && n <= a+b+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Tiny magnitudes must not underflow.
	n := pNorm(1e-13, 2e-13, 3)
	if n < 2e-13 || n > 3e-13 {
		t.Errorf("tiny p-norm = %v", n)
	}
	// Huge p behaves as max.
	if got := pNorm(3, 4, 1e9); got != 4 {
		t.Errorf("pNorm with huge p = %v, want 4", got)
	}
}

func TestBalance(t *testing.T) {
	if got := Balance(OperatingPoint{ComputeUtil: 0.5, MemUtil: 0.5}); got != 1 {
		t.Errorf("balanced point = %v, want 1", got)
	}
	if got := Balance(OperatingPoint{ComputeUtil: 1, MemUtil: 0}); got != 0 {
		t.Errorf("one-sided point = %v, want 0", got)
	}
	if got := Balance(OperatingPoint{}); got != 0 {
		t.Errorf("empty point = %v, want 0", got)
	}
	b := Balance(OperatingPoint{ComputeUtil: 0.8, MemUtil: 0.4})
	if math.Abs(b-0.5) > 1e-9 {
		t.Errorf("balance = %v, want 0.5", b)
	}
}

func TestSolveThrottledCeilingBinds(t *testing.T) {
	// 1 op, 10 bytes per unit; plentiful pattern bandwidth but a tight
	// throttle ceiling: throughput is exactly ceiling/bytes.
	p := phase(1, 10, 4)
	op := SolveThrottled(p, 100*units.GOPS, 100*units.GBps, 5*units.GBps)
	wantRate := 5e9 / 10
	if math.Abs(op.Rate.OpsPerSecond()-wantRate) > wantRate*1e-9 {
		t.Errorf("throttled rate = %v, want %v", op.Rate.OpsPerSecond(), wantRate)
	}
	if op.BandwidthUsed != 5*units.GBps {
		t.Errorf("bandwidth = %v, want the ceiling", op.BandwidthUsed)
	}
	if op.MemUtil != 1 {
		t.Errorf("throttled mem util = %v, want 1", op.MemUtil)
	}
	if op.StallFrac <= 0.9 {
		t.Errorf("stall = %v, want ~1 (memory is the binding resource)", op.StallFrac)
	}
}

func TestSolveThrottledCeilingSlackIsLossless(t *testing.T) {
	// A ceiling above the demanded traffic must not change the solution —
	// the property that makes capping DRAM at demand harmless.
	p := phase(10, 1, 3)
	free := Solve(p, 10*units.GOPS, 50*units.GBps)
	capped := SolveThrottled(p, 10*units.GOPS, 50*units.GBps, free.BandwidthUsed+1*units.GBps)
	if capped.Rate != free.Rate {
		t.Errorf("slack ceiling changed the rate: %v vs %v", capped.Rate, free.Rate)
	}
	// Zero/negative ceilings mean "no throttle".
	un := SolveThrottled(p, 10*units.GOPS, 50*units.GBps, 0)
	if un.Rate != free.Rate {
		t.Error("zero ceiling should disable throttling")
	}
}

func TestSolveThrottledPureComputeUnaffected(t *testing.T) {
	p := phase(10, 0, 2)
	op := SolveThrottled(p, 10*units.GOPS, 10*units.GBps, 1) // 1 B/s ceiling
	if op.StallFrac != 0 || op.ComputeUtil < 0.999 {
		t.Errorf("pure compute phase affected by memory throttle: %+v", op)
	}
}

func TestSolveThrottledMonotoneInCeiling(t *testing.T) {
	p := phase(1, 10, 2)
	prev := units.Rate(-1)
	for c := 1; c <= 100; c += 3 {
		op := SolveThrottled(p, 100*units.GOPS, 100*units.GBps, units.Bandwidth(c)*units.GBps)
		if op.Rate < prev {
			t.Fatalf("rate not monotone in ceiling at %d GB/s", c)
		}
		prev = op.Rate
	}
}

func TestClamp01NaN(t *testing.T) {
	if clamp01(math.NaN()) != 0 {
		t.Error("NaN should clamp to 0")
	}
	if clamp01(-0.5) != 0 || clamp01(1.5) != 1 || clamp01(0.25) != 0.25 {
		t.Error("clamp01 bounds")
	}
}
