// Package perfmodel implements the roofline-with-overlap performance model
// at the heart of the simulator. Given a phase's work parameters and the
// compute and memory capacities currently available (after power capping),
// it solves for the operating point: achieved rate, time split between
// compute and memory, stall fraction, and component utilizations.
//
// The model generalizes the classic roofline. Per work unit the phase
// needs compute time Tc = ops/C and memory time Tm = bytes/B; the total
// time combines them with a p-norm, T = (Tc^p + Tm^p)^(1/p), where the
// overlap exponent p interpolates between fully serialized access (p=1,
// T = Tc+Tm) and perfect overlap (p→∞, T = max(Tc,Tm)). This single knob
// captures the difference between latency-bound irregular codes (low p)
// and software-pipelined streaming kernels (high p).
package perfmodel

import (
	"math"

	"repro/internal/units"
	"repro/internal/workload"
)

// OperatingPoint is the solved steady-state execution point of one phase
// under given compute and memory capacities.
type OperatingPoint struct {
	// Rate is the achieved work-unit completion rate.
	Rate units.Rate
	// UnitTime is the seconds per work unit (1/Rate).
	UnitTime float64
	// ComputeTime and MemTime are the per-unit compute and memory service
	// times before overlap.
	ComputeTime, MemTime float64
	// StallFrac is the fraction of wall time the processor waits on
	// memory and cannot retire instructions; it feeds the activity factor
	// (and hence power) of the processor.
	StallFrac float64
	// ComputeUtil and MemUtil are the fractions of the available compute
	// and memory capacity actually consumed — the utilizations plotted in
	// Figure 5 of the paper.
	ComputeUtil, MemUtil float64
	// OpsRate is the achieved operation throughput.
	OpsRate units.Rate
	// BandwidthUsed is the achieved memory traffic rate; it determines
	// the memory component's actual power draw.
	BandwidthUsed units.Bandwidth
}

// Solve computes the operating point for phase p when the processor can
// deliver computeCap operations per second and the memory system can
// deliver memCap bytes per second. Capacities must already include
// efficiency and capping effects.
//
// Phases with zero demand on one side degenerate gracefully: a pure
// compute phase never stalls, a pure copy phase is all stall.
func Solve(p *workload.Phase, computeCap units.Rate, memCap units.Bandwidth) OperatingPoint {
	var op OperatingPoint
	if computeCap <= 0 {
		computeCap = 1 // 1 op/s floor avoids division blowups; effectively halted
	}
	if memCap <= 0 {
		memCap = 1
	}
	tc := p.OpsPerUnit / computeCap.OpsPerSecond()
	tm := p.BytesPerUnit / memCap.BytesPerSecond()
	op.ComputeTime, op.MemTime = tc, tm

	t := pNorm(tc, tm, p.Overlap)
	if t <= 0 {
		// No work in this phase; treat as infinitely fast.
		op.Rate = units.Rate(math.Inf(1))
		return op
	}
	op.UnitTime = t
	op.Rate = units.Rate(1 / t)
	op.OpsRate = units.Rate(p.OpsPerUnit / t)
	op.BandwidthUsed = units.Bandwidth(p.BytesPerUnit / t)
	op.ComputeUtil = clamp01(tc / t)
	op.MemUtil = clamp01(tm / t)
	// The processor is busy for the compute portion of each unit and
	// stalled for the remainder.
	op.StallFrac = clamp01((t - tc) / t)
	return op
}

// SolveThrottled is Solve with an additional hard bandwidth ceiling, the
// form RAPL's DRAM throttling takes: the pattern-limited capacity memCap
// still sets the contention (p-norm) behaviour, but achieved traffic can
// never exceed ceiling. When the unconstrained solution would move more
// bytes than the ceiling permits, execution becomes throughput limited at
// exactly the ceiling and the per-unit time stretches accordingly.
//
// Separating the two matters: capping DRAM slightly above a workload's
// actual traffic demand must not slow it down (the throttle never
// engages), whereas folding the ceiling into the p-norm capacity would
// charge a spurious contention penalty for running near it.
func SolveThrottled(p *workload.Phase, computeCap units.Rate, memCap units.Bandwidth, ceiling units.Bandwidth) OperatingPoint {
	op := Solve(p, computeCap, memCap)
	if ceiling <= 0 || op.BandwidthUsed <= ceiling || p.BytesPerUnit == 0 {
		return op
	}
	// Throughput limited by the throttle: the unit time stretches to move
	// BytesPerUnit at exactly the ceiling rate.
	t := p.BytesPerUnit / ceiling.BytesPerSecond()
	if t <= op.UnitTime {
		return op
	}
	op.UnitTime = t
	op.Rate = units.Rate(1 / t)
	op.OpsRate = units.Rate(p.OpsPerUnit / t)
	op.BandwidthUsed = ceiling
	op.MemTime = t // the memory system is the binding resource
	op.ComputeUtil = clamp01(op.ComputeTime / t)
	op.MemUtil = 1
	op.StallFrac = clamp01((t - op.ComputeTime) / t)
	return op
}

// pNorm returns (a^p + b^p)^(1/p), computed in a normalized form to avoid
// overflow/underflow for the tiny per-unit times involved. For p beyond
// practical precision it returns max(a,b).
func pNorm(a, b, p float64) float64 {
	if a < 0 {
		a = 0
	}
	if b < 0 {
		b = 0
	}
	if a == 0 {
		return b
	}
	if b == 0 {
		return a
	}
	if p < 1 {
		p = 1
	}
	m := math.Max(a, b)
	if p > 64 {
		return m
	}
	ra, rb := a/m, b/m
	return m * math.Pow(math.Pow(ra, p)+math.Pow(rb, p), 1/p)
}

// Balance summarizes how far an operating point is from the balanced
// compute/memory interaction the paper identifies as optimal: 1 means
// compute and memory utilization are equal, 0 means one side is idle.
func Balance(op OperatingPoint) float64 {
	hi := math.Max(op.ComputeUtil, op.MemUtil)
	lo := math.Min(op.ComputeUtil, op.MemUtil)
	if hi == 0 {
		return 0
	}
	return lo / hi
}

func clamp01(x float64) float64 {
	if x < 0 || math.IsNaN(x) {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
