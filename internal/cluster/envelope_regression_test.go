package cluster

import (
	"math"
	"testing"

	"repro/internal/faults"
	"repro/internal/hw"
	"repro/internal/units"
)

// TestScheduleGPUJobBelowCapFloor is the regression test for the
// inverted GPU envelope found by the pool-conservation audit: on a card
// whose minimum settable cap exceeds a job's maximum board demand
// (titanv MinCap 100 W vs gpustream P_tot_max 82.4 W), the seed
// scheduler admitted the job with a grant of maxTotal < MinCap and then
// failed the round with "COORD rejected admitted budget". The envelope
// must clamp the maximum useful grant up to the cap floor; the excess
// comes back as reclaimed surplus.
func TestScheduleGPUJobBelowCapFloor(t *testing.T) {
	gpu, err := hw.PlatformByName("titanv")
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewScheduler(150, []Node{{ID: "g1", Platform: gpu}})
	if err != nil {
		t.Fatal(err)
	}
	w := mustWorkload(t, "gpustream")
	out, err := s.Schedule([]Job{{ID: "j1", Workload: w}})
	if err != nil {
		t.Fatalf("Schedule: %v (seed bug: admitted budget rejected by split)", err)
	}
	if len(out.Placements) != 1 {
		t.Fatalf("placements = %d, want 1 (deferred %v)", len(out.Placements), out.Deferred)
	}
	pl := out.Placements[0]
	if pl.Budget <= 0 {
		t.Errorf("placement budget %v, want > 0", pl.Budget)
	}
	if out.PoolLeft < 0 {
		t.Errorf("PoolLeft %v negative", out.PoolLeft)
	}
	if dev := math.Abs((pl.Budget + out.PoolLeft - s.Budget).Watts()); dev > 1e-6 {
		t.Errorf("conservation: budget %v + pool %v deviates from %v by %.3g W",
			pl.Budget, out.PoolLeft, s.Budget, dev)
	}
	if err := s.Validate(out); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

// TestRunQueueFaultyPoolConservation pins the fault-path accounting the
// audit added: under a shock- and failure-heavy schedule that evicts
// and re-admits jobs repeatedly, the identity pool + committed grants +
// shock-held power == cluster budget holds at every event boundary, and
// the whole budget is back in the pool once the queue drains.
func TestRunQueueFaultyPoolConservation(t *testing.T) {
	cpu, err := hw.PlatformByName("ivybridge")
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewScheduler(450, []Node{
		{ID: "n1", Platform: cpu},
		{ID: "n2", Platform: cpu},
	})
	if err != nil {
		t.Fatal(err)
	}
	spec, err := faults.ParseSpec("node.mtbf=30,node.mttr=10,shock.mtbs=25,shock.frac=0.5,shock.len=10")
	if err != nil {
		t.Fatal(err)
	}
	jobs := []TimedJob{
		{Job: Job{ID: "a", Workload: mustWorkload(t, "stream")}, Units: 5e11},
		{Job: Job{ID: "b", Workload: mustWorkload(t, "dgemm")}, Units: 3e11},
		{Job: Job{ID: "c", Workload: mustWorkload(t, "bt")}, Units: 4e11},
	}
	res, err := s.RunQueueFaulty(jobs, PolicyCoord, DisciplineBackfill,
		faults.NewInjector(spec, 7), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults.Readmissions == 0 {
		t.Error("spec produced no readmissions; the conservation check exercised nothing")
	}
	if res.Faults.MaxConservationError > 1e-6 {
		t.Errorf("MaxConservationError = %.3g W, want <= 1e-6 (power leaked or minted)",
			res.Faults.MaxConservationError.Watts())
	}
	if dev := math.Abs((res.Faults.PoolLeft - s.Budget).Watts()); dev > 1e-6 {
		t.Errorf("final pool %v != budget %v (Δ %.3g W)", res.Faults.PoolLeft, s.Budget, dev)
	}
	var _ units.Power = res.Faults.BudgetReclaimed
}
