package cluster

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/units"
)

// BudgetPhase is one segment of a time-varying facility budget — the
// demand-response setting where the utility (or a datacenter-level
// manager) raises and lowers the cluster's power bound over the day.
type BudgetPhase struct {
	// Until is the end time of the segment in seconds; the last segment
	// should extend past any plausible makespan.
	Until float64
	// Budget is the cluster power bound during the segment.
	Budget units.Power
}

// DemandResult extends QueueResult with budget-tracking detail.
type DemandResult struct {
	QueueResult
	// Violations counts instants where granted power exceeded the
	// then-current budget (only possible at downward budget steps, and
	// only until enough jobs finish — real systems would throttle; this
	// simulation instead suspends jobs, so it must stay zero).
	Violations int
	// Suspensions counts job suspensions forced by budget drops.
	Suspensions int
}

// RunDemandResponse executes timed jobs under a time-varying budget. At
// each downward budget step, running jobs are suspended (most recently
// started first) until the granted power fits; suspended jobs resume —
// with their remaining work — when power returns. At each upward step,
// waiting and suspended jobs are reconsidered.
//
// Jobs keep their per-job grant (COORD split) across suspensions: RAPL
// caps are per-node state, so re-programming them on resume is free.
func (s *Scheduler) RunDemandResponse(jobs []TimedJob, phases []BudgetPhase) (DemandResult, error) {
	var res DemandResult
	res.Stats = map[string]JobStat{}
	if len(phases) == 0 {
		return res, fmt.Errorf("cluster: no budget phases")
	}
	for i := 1; i < len(phases); i++ {
		if phases[i].Until <= phases[i-1].Until {
			return res, fmt.Errorf("cluster: budget phases not strictly ordered at %d", i)
		}
	}
	for _, j := range jobs {
		if j.Units <= 0 {
			return res, fmt.Errorf("cluster: job %q has non-positive work", j.ID)
		}
	}

	type task struct {
		job       TimedJob
		node      Node
		remaining float64
		rate      float64
		power     units.Power
		budget    units.Power
		started   float64
		haveGrant bool
	}

	budgetAt := func(t float64) units.Power {
		for _, ph := range phases {
			if t < ph.Until {
				return ph.Budget
			}
		}
		return phases[len(phases)-1].Budget
	}

	now := 0.0
	var active []*task
	var paused []*task
	waiting := append([]TimedJob(nil), jobs...)
	freeNodes := append([]Node(nil), s.Nodes...)
	granted := units.Power(0)

	// start moves a task into the active set, computing its grant on
	// first start.
	start := func(tk *task) error {
		if !tk.haveGrant {
			_, maxTotal, err := s.envelope(tk.node, tk.job.Workload)
			if err != nil {
				return err
			}
			grant := budgetAt(now) - granted
			if grant > maxTotal {
				grant = maxTotal
			}
			alloc, surplus, ok, err := s.split(tk.node, tk.job.Workload, grant)
			if err != nil {
				return err
			}
			if !ok {
				return errTooSmall
			}
			if surplus > 0 {
				grant -= surplus
			}
			w := tk.job.Workload
			simRes, err := s.simulate(tk.node, &w, alloc)
			if err != nil {
				return err
			}
			if simRes.UnitRate <= 0 {
				return fmt.Errorf("cluster: job %q makes no progress", tk.job.ID)
			}
			tk.rate = simRes.UnitRate.OpsPerSecond()
			tk.power = simRes.TotalPower
			tk.budget = grant
			tk.started = now
			tk.haveGrant = true
		}
		if tk.budget > budgetAt(now)-granted {
			return errTooSmall
		}
		granted += tk.budget
		active = append(active, tk)
		res.Events = append(res.Events, Event{Time: now, Kind: "start", JobID: tk.job.ID, NodeID: tk.node.ID})
		return nil
	}

	admit := func() error {
		// Resume paused tasks first (they hold nodes), then fresh jobs.
		var stillPaused []*task
		for _, tk := range paused {
			if err := start(tk); err == errTooSmall {
				stillPaused = append(stillPaused, tk)
			} else if err != nil {
				return err
			}
		}
		paused = stillPaused
		var stillWaiting []TimedJob
		for _, j := range waiting {
			if len(freeNodes) == 0 {
				stillWaiting = append(stillWaiting, j)
				continue
			}
			tk := &task{job: j, node: freeNodes[0], remaining: j.Units}
			if err := start(tk); err == errTooSmall {
				stillWaiting = append(stillWaiting, j)
				continue
			} else if err != nil {
				return err
			}
			freeNodes = freeNodes[1:]
		}
		waiting = stillWaiting
		return nil
	}

	// shed suspends tasks (latest started first) until granted power fits
	// the current budget.
	shed := func() {
		sort.SliceStable(active, func(i, j int) bool { return active[i].started < active[j].started })
		for granted > budgetAt(now) && len(active) > 0 {
			tk := active[len(active)-1]
			active = active[:len(active)-1]
			granted -= tk.budget
			paused = append(paused, tk)
			res.Suspensions++
			res.Events = append(res.Events, Event{Time: now, Kind: "suspend", JobID: tk.job.ID, NodeID: tk.node.ID})
		}
		if granted > budgetAt(now) {
			res.Violations++
		}
	}

	if err := admit(); err != nil {
		return res, err
	}
	if len(active) == 0 && len(waiting)+len(paused) > 0 {
		return res, fmt.Errorf("cluster: no job can start under the initial budget")
	}

	phaseIdx := 0
	for len(active)+len(paused) > 0 || len(waiting) > 0 {
		// Next event: a completion or a budget-phase boundary.
		nextDone, idx := math.Inf(1), -1
		for i, tk := range active {
			t := tk.remaining / tk.rate
			if t < nextDone {
				nextDone, idx = t, i
			}
		}
		nextBoundary := math.Inf(1)
		if phaseIdx < len(phases)-1 {
			nextBoundary = phases[phaseIdx].Until - now
		}
		if idx == -1 && math.IsInf(nextBoundary, 1) {
			return res, fmt.Errorf("cluster: deadlock — %d job(s) can never run", len(waiting)+len(paused))
		}

		step := math.Min(nextDone, nextBoundary)
		now += step
		for _, tk := range active {
			tk.remaining -= step * tk.rate
			res.Energy += units.Energy(tk.power.Watts() * step)
		}

		if nextBoundary <= nextDone {
			// Budget phase change.
			phaseIdx++
			shed()
			if err := admit(); err != nil {
				return res, err
			}
			continue
		}

		// Completion.
		done := active[idx]
		active = append(active[:idx], active[idx+1:]...)
		granted -= done.budget
		res.Stats[done.job.ID] = JobStat{
			Start: done.started, End: now,
			Budget: done.budget, Power: done.power, Rate: done.rate,
		}
		res.Events = append(res.Events, Event{Time: now, Kind: "finish", JobID: done.job.ID, NodeID: done.node.ID})
		freeNodes = append(freeNodes, done.node)
		if err := admit(); err != nil {
			return res, err
		}
		if len(active) == 0 && len(waiting)+len(paused) > 0 && phaseIdx >= len(phases)-1 {
			return res, fmt.Errorf("cluster: %d job(s) can never run in the final budget phase",
				len(waiting)+len(paused))
		}
	}
	res.Makespan = now
	return res, nil
}

// errTooSmall is the internal signal that a task cannot receive a
// productive grant right now.
var errTooSmall = fmt.Errorf("cluster: grant too small")
