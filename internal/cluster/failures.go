package cluster

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/faults"
	"repro/internal/trace"
	"repro/internal/units"
)

// FaultSummary counts what the fault-aware queue engine handled.
type FaultSummary struct {
	// NodeFailures and NodeRecoveries count node outage transitions.
	NodeFailures, NodeRecoveries int
	// Readmissions counts jobs returned to the queue because their node
	// failed or a budget shock evicted them; each re-admission reclaims
	// the job's grant into the pool.
	Readmissions int
	// Shocks counts facility budget shocks applied.
	Shocks int
	// BudgetReclaimed is the total power returned to the pool by
	// failure- and shock-driven evictions.
	BudgetReclaimed units.Power
	// PoolLeft is the shock-adjusted uncommitted power at the end of the
	// run: the free pool plus any power still held back by unexpired
	// budget shocks. With every job complete it must equal the cluster
	// budget (up to float accumulation) — the pool-conservation
	// invariant `pbc verify` asserts.
	PoolLeft units.Power
	// MaxConservationError is the largest absolute deviation of
	// (pool + committed grants + shock-held power) from the cluster
	// budget observed at any event boundary. A non-trivial value means
	// re-admission accounting leaked or minted power.
	MaxConservationError units.Power
}

// FaultyQueueResult extends QueueResult with fault accounting.
type FaultyQueueResult struct {
	QueueResult
	Faults FaultSummary
}

// maxEngineEvents bounds the fault-aware event loop. Under any sane
// spec the loop terminates long before this; the bound converts a
// pathological spec (e.g. MTBF far below every job runtime) into an
// error instead of an unbounded spin.
const maxEngineEvents = 1_000_000

// RunQueueFaulty executes timed jobs to completion like RunQueueOpts
// while the injector disturbs the cluster: nodes fail and recover on the
// injector's deterministic schedule, and facility budget shocks shrink
// the pool for their duration. The engine keeps the paper's admission
// rules intact and adds the recovery semantics the issue demands:
//
//   - when a node fails, its job's grant is reclaimed into the pool, the
//     job re-enters the queue head with its remaining work, and the
//     admission pass re-runs immediately (surplus redistribution included,
//     since admission re-splits with COORD and reclaims surplus);
//   - when a budget shock arrives, the pool shrinks by the shock
//     fraction of the cluster budget; if committed grants no longer fit,
//     the most recently started jobs are evicted (grant reclaimed, job
//     re-queued) until they do — the bound is never knowingly exceeded;
//   - when a node recovers or a shock ends, waiting jobs are
//     reconsidered at once.
//
// Transitions are recorded into log (nil is fine). With the same jobs,
// spec, and seed, two runs produce identical results, event for event.
func (s *Scheduler) RunQueueFaulty(jobs []TimedJob, policy SplitPolicy, disc Discipline,
	inj *faults.Injector, log *trace.EventLog) (FaultyQueueResult, error) {

	res := FaultyQueueResult{QueueResult: QueueResult{Stats: map[string]JobStat{}}}
	for _, j := range jobs {
		if j.Units <= 0 {
			return res, fmt.Errorf("cluster: job %q has non-positive work", j.ID)
		}
	}

	// Fault schedules are precomputed over a horizon scaled from the
	// total work so they cover any plausible makespan; outages beyond
	// the finish time simply never fire.
	horizon := s.faultHorizon(jobs)

	type outageEvent struct {
		at     float64
		nodeID string
		up     bool // false = failure, true = recovery
	}
	var outages []outageEvent
	nodeIDs := make([]string, 0, len(s.Nodes))
	for _, n := range s.Nodes {
		nodeIDs = append(nodeIDs, n.ID)
	}
	sort.Strings(nodeIDs)
	for _, id := range nodeIDs {
		for _, o := range inj.NodeOutages(id, horizon) {
			outages = append(outages, outageEvent{at: o.At, nodeID: id, up: false})
			if !math.IsInf(o.Duration, 1) {
				outages = append(outages, outageEvent{at: o.At + o.Duration, nodeID: id, up: true})
			}
		}
	}
	sort.SliceStable(outages, func(i, j int) bool {
		if outages[i].at != outages[j].at {
			return outages[i].at < outages[j].at
		}
		// Recoveries before failures at equal times; then by node ID.
		if outages[i].up != outages[j].up {
			return outages[i].up
		}
		return outages[i].nodeID < outages[j].nodeID
	})

	type shockEvent struct {
		at    float64
		delta units.Power // pool change: negative at shock start
	}
	var shocks []shockEvent
	for _, sh := range inj.BudgetShocks(horizon) {
		delta := units.Power(s.Budget.Watts() * sh.Frac)
		shocks = append(shocks, shockEvent{at: sh.At, delta: -delta})
		shocks = append(shocks, shockEvent{at: sh.At + sh.Duration, delta: delta})
	}

	pool := s.Budget
	freeNodes := append([]Node(nil), s.Nodes...)
	waiting := append([]TimedJob(nil), jobs...)
	var active []*RunningJob
	down := map[string]bool{}
	firstStart := map[string]float64{}
	now := 0.0

	// shockHeld is the power currently withheld from the pool by active
	// budget shocks. At every event boundary the engine audits the
	// conservation identity pool + Σ(committed grants) + shockHeld ==
	// Budget; eviction/re-admission bugs that leak or mint power show up
	// as a growing deviation.
	shockHeld := units.Power(0)
	conserve := func() {
		var committed units.Power
		for _, r := range active {
			committed += r.Budget
		}
		dev := pool + committed + shockHeld - s.Budget
		if dev < 0 {
			dev = -dev
		}
		if dev > res.Faults.MaxConservationError {
			res.Faults.MaxConservationError = dev
		}
	}

	admit := func() error {
		var err error
		active, waiting, freeNodes, pool, err = s.AdmitWaiting(
			&res.QueueResult, active, waiting, freeNodes, pool, now, policy, disc)
		if err != nil {
			return err
		}
		for _, r := range active {
			if first, ok := firstStart[r.Job.ID]; ok {
				r.FirstStart = first
			} else {
				firstStart[r.Job.ID] = r.FirstStart
			}
		}
		return nil
	}

	// evict kills a RunningJob job, reclaims its grant, and re-queues it at
	// the head with its remaining work. keepNode returns the node to the
	// free pool (budget-shock evictions: the node is healthy, only the
	// power is gone); node-failure evictions lose the node until its
	// recovery event.
	evict := func(idx int, kind string, keepNode bool) {
		r := active[idx]
		active = append(active[:idx], active[idx+1:]...)
		runtime := now - r.Started
		res.Energy += units.Energy(r.Power.Watts() * runtime)
		pool += r.Budget
		if keepNode {
			freeNodes = append(freeNodes, r.Node)
		}
		res.Faults.BudgetReclaimed += r.Budget
		res.Faults.Readmissions++
		if keepNode {
			mEvictShock.Inc()
		} else {
			mEvictNodeFail.Inc()
		}
		mReadmissions.Inc()
		mReclaimedWatts.Add(r.Budget.Watts())
		j := r.Job
		j.Units = r.Remaining
		waiting = append([]TimedJob{j}, waiting...)
		res.Events = append(res.Events, Event{Time: now, Kind: "suspend", JobID: j.ID, NodeID: r.Node.ID})
		log.Recordf(now, "budget-reclaim", j.ID, "%s returned to pool (%s)", r.Budget, kind)
		log.Recordf(now, "job-readmit", j.ID, "re-queued with %.3g work units left", j.Units)
	}

	advance := func(dt float64) {
		now += dt
		for _, r := range active {
			r.Remaining -= dt * r.Rate
			if r.Remaining < 0 {
				r.Remaining = 0
			}
		}
	}

	if err := admit(); err != nil {
		return res, err
	}
	conserve()
	// At t=0 every node is up and the budget is unshocked, so a queue
	// that cannot start now can never start: faults only remove capacity.
	if len(active) == 0 && len(waiting) > 0 {
		return res, fmt.Errorf("cluster: no job can start (budget %v too small for every job): %w",
			s.Budget, ErrStarved)
	}

	oi, si := 0, 0 // next outage / shock event indices
	for steps := 0; len(active) > 0 || len(waiting) > 0; steps++ {
		conserve()
		if steps >= maxEngineEvents {
			return res, fmt.Errorf("cluster: fault engine exceeded %d events (spec too hostile?)", maxEngineEvents)
		}
		// Next event: completion, outage transition, or shock edge.
		nextDone, di := math.Inf(1), -1
		for i, r := range active {
			t := r.Remaining / r.Rate
			if t < nextDone {
				nextDone, di = t, i
			}
		}
		nextOutage := math.Inf(1)
		if oi < len(outages) {
			nextOutage = outages[oi].at - now
		}
		nextShock := math.Inf(1)
		if si < len(shocks) {
			nextShock = shocks[si].at - now
		}

		if math.IsInf(nextDone, 1) && math.IsInf(nextOutage, 1) && math.IsInf(nextShock, 1) {
			return res, fmt.Errorf("cluster: %d job(s) can never start (%d node(s) down, pool %v): %w",
				len(waiting), len(down), pool, ErrStarved)
		}
		// Nothing RunningJob and no recovery/shock edge can change that:
		// starved even though events remain.
		if di == -1 && len(waiting) > 0 && math.IsInf(nextOutage, 1) && math.IsInf(nextShock, 1) {
			return res, fmt.Errorf("cluster: %d job(s) can never start under budget %v: %w",
				len(waiting), s.Budget, ErrStarved)
		}

		switch {
		case nextOutage <= nextDone && nextOutage <= nextShock:
			ev := outages[oi]
			oi++
			advance(nextOutage)
			if ev.up {
				if !down[ev.nodeID] {
					continue // node was never taken down (e.g. duplicate)
				}
				delete(down, ev.nodeID)
				node, ok := s.nodeByID(ev.nodeID)
				if !ok {
					continue
				}
				freeNodes = append(freeNodes, node)
				res.Faults.NodeRecoveries++
				mNodeRecoveries.Inc()
				res.Events = append(res.Events, Event{Time: now, Kind: "recover", NodeID: ev.nodeID})
				log.Record(now, "node-recover", ev.nodeID, "node back in service")
				if err := admit(); err != nil {
					return res, err
				}
				continue
			}
			if down[ev.nodeID] {
				continue
			}
			down[ev.nodeID] = true
			res.Faults.NodeFailures++
			mNodeFailures.Inc()
			res.Events = append(res.Events, Event{Time: now, Kind: "fail", NodeID: ev.nodeID})
			log.Record(now, "node-fail", ev.nodeID, "node lost")
			// Remove from the free pool if idle, or evict its job.
			removed := false
			for i, n := range freeNodes {
				if n.ID == ev.nodeID {
					freeNodes = append(freeNodes[:i], freeNodes[i+1:]...)
					removed = true
					break
				}
			}
			if !removed {
				for i, r := range active {
					if r.Node.ID == ev.nodeID {
						evict(i, "node failure", false)
						break
					}
				}
			}
			// Re-admission + surplus redistribution happen here: the
			// evicted job is reconsidered immediately on surviving nodes.
			if err := admit(); err != nil {
				return res, err
			}

		case nextShock <= nextDone:
			ev := shocks[si]
			si++
			advance(nextShock)
			pool += ev.delta
			shockHeld -= ev.delta
			if ev.delta < 0 {
				res.Faults.Shocks++
				mShocks.Inc()
				log.Recordf(now, "budget-shock", "facility", "pool reduced by %v", -ev.delta)
				// Evict most recently started jobs until the committed
				// grants fit the shrunken budget again.
				for pool < 0 && len(active) > 0 {
					latest := 0
					for i, r := range active {
						if r.Started > active[latest].Started {
							latest = i
						}
					}
					evict(latest, "budget shock", true)
				}
			} else {
				log.Recordf(now, "budget-restore", "facility", "pool restored by %v", ev.delta)
			}
			if err := admit(); err != nil {
				return res, err
			}

		default:
			advance(nextDone)
			done := active[di]
			active = append(active[:di], active[di+1:]...)
			runtime := now - done.Started
			res.Energy += units.Energy(done.Power.Watts() * runtime)
			res.Stats[done.Job.ID] = JobStat{
				Start: done.FirstStart, End: now,
				Budget: done.Budget, Power: done.Power, Rate: done.Rate,
			}
			res.Events = append(res.Events, Event{Time: now, Kind: "finish", JobID: done.Job.ID, NodeID: done.Node.ID})
			pool += done.Budget
			freeNodes = append(freeNodes, done.Node)
			if err := admit(); err != nil {
				return res, err
			}
		}
	}
	conserve()
	res.Faults.PoolLeft = pool + shockHeld
	res.Makespan = now
	sort.SliceStable(res.Events, func(i, j int) bool { return res.Events[i].Time < res.Events[j].Time })
	return res, nil
}

// nodeByID finds a scheduler node.
func (s *Scheduler) nodeByID(id string) (Node, bool) {
	for _, n := range s.Nodes {
		if n.ID == id {
			return n, true
		}
	}
	return Node{}, false
}

// faultHorizon estimates an upper bound on the makespan for fault
// scheduling: total work at the slowest plausible rate, padded 4x, with
// a floor of one hour. Deterministic in the inputs.
func (s *Scheduler) faultHorizon(jobs []TimedJob) float64 {
	var totalUnits float64
	for _, j := range jobs {
		totalUnits += j.Units
	}
	// A conservative rate guess: 1e9 units/s. Catalog workloads run at
	// 1e10-1e11 units/s even under tight grants, so the 4x-padded horizon
	// comfortably covers the makespan without precomputing millions of
	// fault events the run will never reach.
	h := 4 * totalUnits / 1e9
	if h < 3600 {
		h = 3600
	}
	return h
}
