package cluster

import (
	"testing"

	"repro/internal/hw"
	"repro/internal/units"
	"repro/internal/workload"
)

// admitFixture builds a 2-node Ivy Bridge scheduler and a stream job
// factory for driving AdmitWaiting directly, the way the DES engines
// do.
func admitFixture(t *testing.T, budget units.Power) (*Scheduler, func(id string) TimedJob) {
	t.Helper()
	p, err := hw.PlatformByName("ivybridge")
	if err != nil {
		t.Fatal(err)
	}
	w, err := workload.ByName("stream")
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewScheduler(budget, []Node{
		{ID: "n1", Platform: p},
		{ID: "n2", Platform: p},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s, func(id string) TimedJob {
		return TimedJob{Job: Job{ID: id, Workload: w}, Units: 1e12}
	}
}

// TestAdmitWaitingEmptyQueue: an empty queue is a no-op — state passes
// through untouched and no events are recorded.
func TestAdmitWaitingEmptyQueue(t *testing.T) {
	s, _ := admitFixture(t, 500)
	free := append([]Node(nil), s.Nodes...)
	var res QueueResult
	for _, disc := range []Discipline{DisciplineFIFO, DisciplineBackfill} {
		active, waiting, freeOut, pool, err := s.AdmitWaiting(
			&res, nil, nil, free, s.Budget, 0, PolicyCoord, disc)
		if err != nil {
			t.Fatalf("disc %v: %v", disc, err)
		}
		if len(active) != 0 || len(waiting) != 0 {
			t.Fatalf("disc %v: active %d waiting %d, want 0/0", disc, len(active), len(waiting))
		}
		if pool != s.Budget {
			t.Fatalf("disc %v: pool %v, want untouched %v", disc, pool, s.Budget)
		}
		if len(freeOut) != len(free) {
			t.Fatalf("disc %v: free nodes %d, want %d", disc, len(freeOut), len(free))
		}
		if len(res.Events) != 0 {
			t.Fatalf("disc %v: %d events from an empty queue", disc, len(res.Events))
		}
	}
}

// TestAdmitWaitingAllRejected: a pool below every job's productive
// threshold admits nothing — all jobs stay queued in order, and the
// pool and node list come back unchanged.
func TestAdmitWaitingAllRejected(t *testing.T) {
	s, job := admitFixture(t, 10) // far below stream's productive threshold
	free := append([]Node(nil), s.Nodes...)
	jobs := []TimedJob{job("j1"), job("j2"), job("j3")}
	var res QueueResult
	active, waiting, freeOut, pool, err := s.AdmitWaiting(
		&res, nil, jobs, free, s.Budget, 0, PolicyCoord, DisciplineBackfill)
	if err != nil {
		t.Fatal(err)
	}
	if len(active) != 0 {
		t.Fatalf("admitted %d jobs under a starvation pool", len(active))
	}
	if len(waiting) != 3 {
		t.Fatalf("waiting %d, want all 3 retained", len(waiting))
	}
	for i, j := range jobs {
		if waiting[i].ID != j.ID {
			t.Fatalf("queue order changed: waiting[%d] = %q, want %q", i, waiting[i].ID, j.ID)
		}
	}
	if pool != s.Budget || len(freeOut) != 2 || len(res.Events) != 0 {
		t.Fatalf("rejection mutated state: pool %v free %d events %d", pool, len(freeOut), len(res.Events))
	}
}

// TestAdmitWaitingPoolExhausted: a pool that covers one grant but not
// two admits exactly the head job; the second is blocked on budget,
// not on nodes. Under FIFO a blocked head also blocks juniors even
// when a node is free.
func TestAdmitWaitingPoolExhausted(t *testing.T) {
	s, job := admitFixture(t, 200)
	free := append([]Node(nil), s.Nodes...)
	jobs := []TimedJob{job("j1"), job("j2")}
	var res QueueResult
	active, waiting, freeOut, pool, err := s.AdmitWaiting(
		&res, nil, jobs, free, s.Budget, 0, PolicyCoord, DisciplineBackfill)
	if err != nil {
		t.Fatal(err)
	}
	if len(active) != 1 || active[0].Job.ID != "j1" {
		t.Fatalf("active %d, want exactly the head job admitted", len(active))
	}
	if len(waiting) != 1 || waiting[0].ID != "j2" {
		t.Fatalf("waiting %v, want j2 blocked on pool", waiting)
	}
	if active[0].Budget <= 0 || active[0].Budget > s.Budget {
		t.Fatalf("grant %v outside (0, %v]", active[0].Budget, s.Budget)
	}
	if want := s.Budget - active[0].Budget; pool != want {
		t.Fatalf("pool %v, want budget minus grant %v", pool, want)
	}
	if len(freeOut) != 1 {
		t.Fatalf("free nodes %d, want 1 (one consumed, one idle but unaffordable)", len(freeOut))
	}
	if len(res.Events) != 1 || res.Events[0].Kind != "start" || res.Events[0].JobID != "j1" {
		t.Fatalf("events %+v, want a single start for j1", res.Events)
	}

	// Nodes exhausted instead: plenty of pool, one free node, FIFO must
	// block the whole queue behind the node-starved head.
	s2, job2 := admitFixture(t, 1000)
	var res2 QueueResult
	active2, waiting2, free2, pool2, err := s2.AdmitWaiting(
		&res2, nil, []TimedJob{job2("a"), job2("b"), job2("c")},
		s2.Nodes[:1], s2.Budget, 0, PolicyCoord, DisciplineFIFO)
	if err != nil {
		t.Fatal(err)
	}
	if len(active2) != 1 || len(waiting2) != 2 || len(free2) != 0 {
		t.Fatalf("active %d waiting %d free %d, want 1/2/0", len(active2), len(waiting2), len(free2))
	}
	if pool2 >= s2.Budget {
		t.Fatalf("pool %v did not shrink", pool2)
	}
}
