package cluster

import "repro/internal/telemetry"

// Scheduler instrument handles; nil (no-op) until Instrument is called.
var (
	mAdmissions     *telemetry.Counter
	mEvictNodeFail  *telemetry.Counter
	mEvictShock     *telemetry.Counter
	mReadmissions   *telemetry.Counter
	mReclaimedWatts *telemetry.Counter
	mNodeFailures   *telemetry.Counter
	mNodeRecoveries *telemetry.Counter
	mShocks         *telemetry.Counter
	mQueueDepth     *telemetry.Gauge
	mActiveJobs     *telemetry.Gauge
)

// Instrument registers the cluster scheduler metrics on r and activates
// the admission- and fault-path counters. Passing nil disables them.
// Call before running queue simulations concurrently.
func Instrument(r *telemetry.Registry) {
	mAdmissions = r.Counter("cluster_admissions_total",
		"Jobs admitted onto nodes (re-admissions after eviction included).")
	const evHelp = "Running jobs evicted by the fault engine, by cause."
	mEvictNodeFail = r.Counter("cluster_evictions_total", evHelp, "cause", "node-failure")
	mEvictShock = r.Counter("cluster_evictions_total", evHelp, "cause", "budget-shock")
	mReadmissions = r.Counter("cluster_readmissions_total",
		"Evicted jobs returned to the queue head with remaining work.")
	mReclaimedWatts = r.Counter("cluster_budget_reclaimed_watts_total",
		"Power reclaimed into the pool by fault-driven evictions.")
	mNodeFailures = r.Counter("cluster_node_failures_total",
		"Node outage events applied by the fault engine.")
	mNodeRecoveries = r.Counter("cluster_node_recoveries_total",
		"Node recovery events applied by the fault engine.")
	mShocks = r.Counter("cluster_budget_shocks_total",
		"Facility budget shocks applied by the fault engine.")
	mQueueDepth = r.Gauge("cluster_queue_depth",
		"Jobs still waiting after the latest admission pass.")
	mActiveJobs = r.Gauge("cluster_active_jobs",
		"Jobs running after the latest admission pass.")
}
