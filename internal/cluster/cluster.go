// Package cluster extends node-level power coordination to a
// power-bounded cluster, the setting the paper's introduction motivates:
// a fixed facility power budget must be divided among nodes so that every
// watt contributes to throughput.
//
// The scheduler applies the paper's insights directly:
//   - jobs are admitted only if they can receive at least their productive
//     threshold (P_cpu_L2 + P_mem_L2) — "small power budgets should not be
//     allocated to run new jobs";
//   - no job receives more than its maximum demand — "power over-budgeting
//     wastes power without increasing performance";
//   - within a node, COORD splits the budget across components;
//   - surplus reported by COORD is reclaimed into the pool and used to
//     boost already-admitted jobs toward their maximum demand.
package cluster

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/coord"
	"repro/internal/core"
	"repro/internal/evalpool"
	"repro/internal/flight"
	"repro/internal/hw"
	"repro/internal/profile"
	"repro/internal/sim"
	"repro/internal/units"
	"repro/internal/workload"
)

// Node is one compute node of the cluster: a CPU server or a GPU card
// host. Jobs are placed only on nodes whose kind matches their workload.
type Node struct {
	// ID names the node, e.g. "node03".
	ID string
	// Platform is the node's hardware.
	Platform hw.Platform
}

// Job is a unit of queued work.
type Job struct {
	// ID names the job.
	ID string
	// Workload is the job's benchmark model.
	Workload workload.Workload
}

// Placement is the scheduler's decision for one admitted job.
type Placement struct {
	JobID  string
	NodeID string
	// Budget is the node power budget granted to the job.
	Budget units.Power
	// Alloc is COORD's cross-component split of the budget.
	Alloc core.Allocation
	// ExpectedPerf is the simulated performance under the allocation.
	ExpectedPerf float64
	// ExpectedPower is the simulated actual power draw.
	ExpectedPower units.Power
}

// Outcome is the result of one scheduling round.
type Outcome struct {
	// Placements lists admitted jobs in placement order.
	Placements []Placement
	// Deferred lists job IDs that could not receive a productive budget
	// (or found no free node) and should wait for the next round.
	Deferred []string
	// PoolLeft is the unallocated cluster power remaining.
	PoolLeft units.Power
	// TotalExpectedPower is the sum of simulated actual draws.
	TotalExpectedPower units.Power
}

// Scheduler owns a cluster power budget and a set of nodes. Its
// scheduling entry points (Schedule, RunQueue, RunQueueOpts,
// RunQueueFaulty) are safe for concurrent use: the lazily populated
// profile caches are guarded by a mutex and a singleflight group, so
// concurrent rounds neither race on the maps nor stampede the profiler
// for the same (platform, workload) key.
type Scheduler struct {
	// Budget is the total cluster power bound.
	Budget units.Power
	// Nodes is the machine pool.
	Nodes []Node

	// profMu guards the two profile maps. Profiling itself runs outside
	// the lock, deduplicated by the flight groups: the first caller for
	// a key profiles while every concurrent duplicate waits for its
	// result instead of re-running the profiler.
	profMu      sync.Mutex
	profiles    map[string]profile.CPUProfile
	gpuProfiles map[string]profile.GPUProfile
	cpuFlight   flight.Group[string, profile.CPUProfile]
	gpuFlight   flight.Group[string, profile.GPUProfile]
}

// NewScheduler returns a scheduler for the given budget and nodes.
func NewScheduler(budget units.Power, nodes []Node) (*Scheduler, error) {
	if budget <= 0 {
		return nil, fmt.Errorf("cluster: non-positive budget %v", budget)
	}
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: no nodes")
	}
	ids := map[string]bool{}
	for _, n := range nodes {
		if n.ID == "" {
			return nil, fmt.Errorf("cluster: node with empty ID")
		}
		if ids[n.ID] {
			return nil, fmt.Errorf("cluster: duplicate node ID %q", n.ID)
		}
		ids[n.ID] = true
		if err := n.Platform.Validate(); err != nil {
			return nil, fmt.Errorf("cluster: node %q: %w", n.ID, err)
		}
	}
	return &Scheduler{
		Budget:      budget,
		Nodes:       nodes,
		profiles:    map[string]profile.CPUProfile{},
		gpuProfiles: map[string]profile.GPUProfile{},
	}, nil
}

// profileFor returns (and caches) the job profile on a CPU platform.
// Concurrent callers for the same key share one profiler run.
func (s *Scheduler) profileFor(p hw.Platform, w workload.Workload) (profile.CPUProfile, error) {
	key := p.Name + "/" + w.Name
	s.profMu.Lock()
	if prof, ok := s.profiles[key]; ok {
		s.profMu.Unlock()
		return prof, nil
	}
	s.profMu.Unlock()
	prof, err, _ := s.cpuFlight.Do(key, func() (profile.CPUProfile, error) {
		prof, err := profile.ProfileCPU(p, w)
		if err != nil {
			return profile.CPUProfile{}, err
		}
		s.profMu.Lock()
		s.profiles[key] = prof
		s.profMu.Unlock()
		return prof, nil
	})
	return prof, err
}

// gpuProfileFor returns (and caches) the job profile on a GPU platform.
// Concurrent callers for the same key share one profiler run.
func (s *Scheduler) gpuProfileFor(p hw.Platform, w workload.Workload) (profile.GPUProfile, error) {
	key := p.Name + "/" + w.Name
	s.profMu.Lock()
	if prof, ok := s.gpuProfiles[key]; ok {
		s.profMu.Unlock()
		return prof, nil
	}
	s.profMu.Unlock()
	prof, err, _ := s.gpuFlight.Do(key, func() (profile.GPUProfile, error) {
		prof, err := profile.ProfileGPU(p, w)
		if err != nil {
			return profile.GPUProfile{}, err
		}
		s.profMu.Lock()
		s.gpuProfiles[key] = prof
		s.profMu.Unlock()
		return prof, nil
	})
	return prof, err
}

// envelope returns the job's power envelope on a node: the smallest
// productive grant and the largest useful one. On GPU nodes the card's
// settable cap range bounds both ends.
func (s *Scheduler) envelope(node Node, w workload.Workload) (threshold, maxTotal units.Power, err error) {
	switch node.Platform.Kind {
	case hw.KindCPU:
		prof, err := s.profileFor(node.Platform, w)
		if err != nil {
			return 0, 0, err
		}
		return prof.Critical.ProductiveThreshold(), prof.Critical.CPUMax + prof.Critical.MemMax, nil
	case hw.KindGPU:
		prof, err := s.gpuProfileFor(node.Platform, w)
		if err != nil {
			return 0, 0, err
		}
		maxTotal := prof.TotMax
		if maxTotal > node.Platform.GPU.MaxCap {
			maxTotal = node.Platform.GPU.MaxCap
		}
		// A job whose maximum board demand sits below the card's lowest
		// settable cap still needs a grant of at least MinCap — the
		// card cannot be capped lower. Without this clamp the envelope
		// inverts (maxTotal < threshold): admission grants maxTotal,
		// the split pass rejects it as below the cap floor, and the
		// round fails on a budget the scheduler itself admitted. COORD
		// returns the unneeded excess as surplus, so the extra watts go
		// back to the pool rather than being wasted.
		if maxTotal < node.Platform.GPU.MinCap {
			maxTotal = node.Platform.GPU.MinCap
		}
		return node.Platform.GPU.MinCap, maxTotal, nil
	default:
		return 0, 0, fmt.Errorf("cluster: node %q: unknown kind", node.ID)
	}
}

// split divides a grant across the node's components with COORD and
// reports any surplus to return to the pool. ok is false when the grant
// is below the job's productive threshold.
func (s *Scheduler) split(node Node, w workload.Workload, grant units.Power) (alloc core.Allocation, surplus units.Power, ok bool, err error) {
	switch node.Platform.Kind {
	case hw.KindCPU:
		prof, err := s.profileFor(node.Platform, w)
		if err != nil {
			return core.Allocation{}, 0, false, err
		}
		d := coord.CPU(prof, grant)
		if d.Status == coord.StatusTooSmall {
			return core.Allocation{}, 0, false, nil
		}
		if d.Status == coord.StatusSurplus {
			surplus = d.Surplus
		}
		return d.Alloc, surplus, true, nil
	case hw.KindGPU:
		if grant < node.Platform.GPU.MinCap {
			return core.Allocation{}, 0, false, nil
		}
		prof, err := s.gpuProfileFor(node.Platform, w)
		if err != nil {
			return core.Allocation{}, 0, false, err
		}
		d := coord.GPU(prof, grant, coord.DefaultGamma)
		if d.Status == coord.StatusTooSmall {
			// Algorithm 2 rejects budgets at or below the memory power
			// floor; surface that as a non-productive grant instead of
			// returning a zero allocation as if it were admitted.
			return core.Allocation{}, 0, false, nil
		}
		if d.Status == coord.StatusSurplus {
			surplus = d.Surplus
		}
		return d.Alloc, surplus, true, nil
	default:
		return core.Allocation{}, 0, false, fmt.Errorf("cluster: node %q: unknown kind", node.ID)
	}
}

// simulate runs the job under its allocation on the node. Planning goes
// through the shared evaluation engine: re-planning rounds and repeated
// job mixes re-simulate nothing the cache already holds. (Fault-mode
// execution — RunQueueFaulty — bypasses this path by design: injected
// faults make the simulator impure, so those runs must not be memoized.)
func (s *Scheduler) simulate(node Node, w *workload.Workload, alloc core.Allocation) (sim.Result, error) {
	pr := evalpool.Problem{Platform: node.Platform, Workload: *w}
	switch node.Platform.Kind {
	case hw.KindCPU:
		return evalpool.Default().Evaluate(pr, evalpool.Request{
			Op: evalpool.OpCPU, Proc: alloc.Proc, Mem: alloc.Mem})
	case hw.KindGPU:
		// The card cannot be capped below its floor: a job whose demand
		// sits under MinCap still runs with the cap register at MinCap
		// and simply draws less.
		cap := alloc.Total()
		if cap < node.Platform.GPU.MinCap {
			cap = node.Platform.GPU.MinCap
		}
		return evalpool.Default().Evaluate(pr, evalpool.Request{
			Op: evalpool.OpGPUMemPower, Proc: cap, Mem: alloc.Mem})
	default:
		return sim.Result{}, fmt.Errorf("cluster: node %q: unknown kind", node.ID)
	}
}

// takeNode removes and returns the first free node whose kind matches the
// workload; found is false when none exists.
func takeNode(free []Node, kind hw.Kind) (Node, []Node, bool) {
	for i, n := range free {
		if n.Platform.Kind == kind {
			return n, append(append([]Node(nil), free[:i]...), free[i+1:]...), true
		}
	}
	return Node{}, free, false
}

// Schedule runs one scheduling round over the queued jobs. Jobs are
// considered in queue order; each takes the next free node. A job is
// admitted if the pool can cover at least its productive threshold; it is
// granted up to its maximum demand. After the admission pass, leftover
// pool power is distributed to admitted jobs still below their maximum
// demand (largest marginal headroom first).
func (s *Scheduler) Schedule(jobs []Job) (Outcome, error) {
	out := Outcome{PoolLeft: s.Budget}
	freeNodes := append([]Node(nil), s.Nodes...)

	type admitted struct {
		idx      int
		node     Node
		maxTotal units.Power
	}
	var adm []admitted

	for _, job := range jobs {
		node, rest, found := takeNode(freeNodes, job.Workload.Kind)
		if !found {
			out.Deferred = append(out.Deferred, job.ID)
			continue
		}
		threshold, maxTotal, err := s.envelope(node, job.Workload)
		if err != nil {
			return Outcome{}, fmt.Errorf("cluster: job %q: %w", job.ID, err)
		}
		if out.PoolLeft < threshold {
			// Paper: a budget this small delivers unacceptable performance
			// and efficiency; defer rather than waste the power.
			out.Deferred = append(out.Deferred, job.ID)
			continue
		}
		grant := out.PoolLeft
		if grant > maxTotal {
			grant = maxTotal
		}
		out.PoolLeft -= grant
		freeNodes = rest
		out.Placements = append(out.Placements, Placement{
			JobID:  job.ID,
			NodeID: node.ID,
			Budget: grant,
		})
		adm = append(adm, admitted{
			idx: len(out.Placements) - 1, node: node, maxTotal: maxTotal,
		})
	}

	// Boost pass: hand leftover power to admitted jobs below their
	// maximum demand, largest gap first.
	sort.SliceStable(adm, func(i, j int) bool {
		gapI := adm[i].maxTotal - out.Placements[adm[i].idx].Budget
		gapJ := adm[j].maxTotal - out.Placements[adm[j].idx].Budget
		return gapI > gapJ
	})
	for _, a := range adm {
		if out.PoolLeft <= 0 {
			break
		}
		pl := &out.Placements[a.idx]
		gap := a.maxTotal - pl.Budget
		if gap <= 0 {
			continue
		}
		boost := gap
		if boost > out.PoolLeft {
			boost = out.PoolLeft
		}
		pl.Budget += boost
		out.PoolLeft -= boost
	}

	// Split each grant with COORD, reclaim surplus, and simulate.
	for _, a := range adm {
		pl := &out.Placements[a.idx]
		w := jobWorkload(jobs, pl.JobID)
		alloc, surplus, ok, err := s.split(a.node, *w, pl.Budget)
		if err != nil {
			return Outcome{}, err
		}
		if !ok {
			// Cannot happen given the admission check, but keep the
			// invariant explicit.
			return Outcome{}, fmt.Errorf("cluster: job %q: COORD rejected admitted budget %v",
				pl.JobID, pl.Budget)
		}
		if surplus > 0 {
			out.PoolLeft += surplus
			pl.Budget -= surplus
		}
		pl.Alloc = alloc
		res, err := s.simulate(a.node, w, alloc)
		if err != nil {
			return Outcome{}, err
		}
		pl.ExpectedPerf = res.Perf
		pl.ExpectedPower = res.TotalPower
		out.TotalExpectedPower += res.TotalPower
	}
	return out, nil
}

func jobWorkload(jobs []Job, id string) *workload.Workload {
	for i := range jobs {
		if jobs[i].ID == id {
			return &jobs[i].Workload
		}
	}
	return nil
}

// Validate checks an outcome against the cluster bound: the sum of
// granted budgets never exceeds the scheduler's budget, and the simulated
// actual power respects it too.
func (s *Scheduler) Validate(out Outcome) error {
	var granted units.Power
	for _, pl := range out.Placements {
		granted += pl.Budget
	}
	if granted > s.Budget+0.01 {
		return fmt.Errorf("cluster: granted %v exceeds budget %v", granted, s.Budget)
	}
	if out.TotalExpectedPower > s.Budget+units.Power(len(out.Placements)) {
		return fmt.Errorf("cluster: expected power %v exceeds budget %v",
			out.TotalExpectedPower, s.Budget)
	}
	return nil
}
