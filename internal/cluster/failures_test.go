package cluster

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/faults"
	"repro/internal/trace"
)

func TestRunQueueFaultyNoFaultsMatchesBaseline(t *testing.T) {
	mk := func() (*Scheduler, []TimedJob) {
		s, err := NewScheduler(500, nodes(t, 2))
		if err != nil {
			t.Fatal(err)
		}
		return s, []TimedJob{
			timedJob(t, "j1", "stream", 5e12),
			timedJob(t, "j2", "dgemm", 1e14),
			timedJob(t, "j3", "mg", 5e12),
		}
	}
	s1, q1 := mk()
	base, err := s1.RunQueue(q1, PolicyCoord)
	if err != nil {
		t.Fatal(err)
	}
	s2, q2 := mk()
	faulty, err := s2.RunQueueFaulty(q2, PolicyCoord, DisciplineBackfill, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if faulty.Makespan != base.Makespan {
		t.Fatalf("fault-free faulty engine makespan %v != baseline %v", faulty.Makespan, base.Makespan)
	}
	if len(faulty.Stats) != len(base.Stats) {
		t.Fatalf("stats count %d != %d", len(faulty.Stats), len(base.Stats))
	}
	for id, st := range base.Stats {
		if faulty.Stats[id] != st {
			t.Fatalf("job %s stats diverge: %+v vs %+v", id, faulty.Stats[id], st)
		}
	}
	// Fault event counters must all be zero; the accounting fields the
	// conservation audit added report a clean drain instead.
	want := FaultSummary{PoolLeft: s2.Budget}
	if faulty.Faults != want {
		t.Fatalf("fault-free run reported faults: %+v, want %+v", faulty.Faults, want)
	}
}

func TestRunQueueFaultyNodeFailureReadmitsJobs(t *testing.T) {
	s, err := NewScheduler(500, nodes(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	jobs := []TimedJob{
		timedJob(t, "j1", "stream", 5e12),
		timedJob(t, "j2", "dgemm", 1e14),
		timedJob(t, "j3", "mg", 5e12),
		timedJob(t, "j4", "ep", 2e13),
	}
	// MTBF far below the makespan so failures certainly strike; repairs
	// arrive so the run can finish even if both nodes go down.
	spec, err := faults.ParseSpec("node.mtbf=60,node.mttr=30")
	if err != nil {
		t.Fatal(err)
	}
	log := &trace.EventLog{}
	res, err := s.RunQueueFaulty(jobs, PolicyCoord, DisciplineBackfill, faults.NewInjector(spec, 7), log)
	if err != nil {
		t.Fatal(err)
	}
	// Every job still completes.
	if len(res.Stats) != len(jobs) {
		t.Fatalf("completed %d of %d jobs", len(res.Stats), len(jobs))
	}
	if res.Faults.NodeFailures == 0 {
		t.Fatal("no node failures fired — test proves nothing")
	}
	if res.Faults.Readmissions == 0 {
		t.Fatal("node failures struck but no job was re-admitted")
	}
	if res.Faults.BudgetReclaimed <= 0 {
		t.Fatal("evictions reclaimed no budget")
	}
	// The transition log tells the story: every eviction pairs a
	// budget-reclaim with a job-readmit.
	if log.Count("node-fail") != res.Faults.NodeFailures {
		t.Fatalf("log has %d node-fail records for %d failures", log.Count("node-fail"), res.Faults.NodeFailures)
	}
	if log.Count("job-readmit") != res.Faults.Readmissions {
		t.Fatalf("log has %d job-readmit records for %d readmissions", log.Count("job-readmit"), res.Faults.Readmissions)
	}
	if log.Count("budget-reclaim") != res.Faults.Readmissions {
		t.Fatalf("log has %d budget-reclaim records for %d readmissions", log.Count("budget-reclaim"), res.Faults.Readmissions)
	}
	// Suspended jobs show start → suspend → start → ... → finish, and
	// each job's event sequence is well-formed.
	verifyEventGrammar(t, res.Events)
	// Re-admitted jobs keep their first start time in the stats.
	for id, st := range res.Stats {
		if st.End <= st.Start {
			t.Fatalf("job %s has end %v <= start %v", id, st.End, st.Start)
		}
	}
}

// verifyEventGrammar checks per-job event sequences: start before
// suspend/finish, exactly one finish, no activity after it.
func verifyEventGrammar(t *testing.T, events []Event) {
	t.Helper()
	state := map[string]string{} // job -> last event kind
	for _, e := range events {
		if e.JobID == "" {
			continue // node fail/recover events
		}
		prev := state[e.JobID]
		switch e.Kind {
		case "start":
			if prev == "start" {
				t.Fatalf("job %s started twice without suspend/finish", e.JobID)
			}
			if prev == "finish" {
				t.Fatalf("job %s restarted after finishing", e.JobID)
			}
		case "suspend", "finish":
			if prev != "start" {
				t.Fatalf("job %s got %s while %q", e.JobID, e.Kind, prev)
			}
		}
		state[e.JobID] = e.Kind
	}
	for job, last := range state {
		if last != "finish" {
			t.Fatalf("job %s ended in state %q", job, last)
		}
	}
}

func TestRunQueueFaultyDeterministicReplay(t *testing.T) {
	spec, err := faults.ParseSpec("node.mtbf=80,node.mttr=40,shock.mtbs=120,shock.frac=0.3,shock.len=25")
	if err != nil {
		t.Fatal(err)
	}
	run := func() (FaultyQueueResult, string) {
		s, err := NewScheduler(500, nodes(t, 3))
		if err != nil {
			t.Fatal(err)
		}
		jobs := []TimedJob{
			timedJob(t, "j1", "stream", 5e12),
			timedJob(t, "j2", "dgemm", 1e14),
			timedJob(t, "j3", "mg", 5e12),
			timedJob(t, "j4", "ep", 2e13),
			timedJob(t, "j5", "stream", 3e12),
		}
		log := &trace.EventLog{}
		res, err := s.RunQueueFaulty(jobs, PolicyCoord, DisciplineBackfill, faults.NewInjector(spec, 21), log)
		if err != nil {
			t.Fatal(err)
		}
		return res, log.String()
	}
	r1, l1 := run()
	r2, l2 := run()
	if l1 != l2 {
		t.Fatalf("transition logs diverged:\n%s\nvs\n%s", l1, l2)
	}
	if r1.Makespan != r2.Makespan || r1.Energy != r2.Energy || r1.Faults != r2.Faults {
		t.Fatalf("results diverged: %+v vs %+v", r1, r2)
	}
	if len(r1.Events) != len(r2.Events) {
		t.Fatalf("event counts diverged: %d vs %d", len(r1.Events), len(r2.Events))
	}
	for i := range r1.Events {
		if r1.Events[i] != r2.Events[i] {
			t.Fatalf("event %d diverged: %+v vs %+v", i, r1.Events[i], r2.Events[i])
		}
	}
	// Aggregates are byte-for-byte identical too (sorted-key accumulation).
	f1 := fmt.Sprintf("%.17g %.17g %.17g", r1.AvgWait(), r1.AvgTurnaround(), r1.MaxSlowdown())
	f2 := fmt.Sprintf("%.17g %.17g %.17g", r2.AvgWait(), r2.AvgTurnaround(), r2.MaxSlowdown())
	if f1 != f2 {
		t.Fatalf("aggregates diverged: %s vs %s", f1, f2)
	}
}

func TestRunQueueFaultyBudgetShocksEvict(t *testing.T) {
	s, err := NewScheduler(500, nodes(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	jobs := []TimedJob{
		timedJob(t, "j1", "stream", 5e12),
		timedJob(t, "j2", "dgemm", 1e14),
		timedJob(t, "j3", "mg", 5e12),
	}
	// Frequent deep shocks: losing 60% of a 500 W pool forces evictions
	// whenever both nodes hold grants.
	spec, err := faults.ParseSpec("shock.mtbs=40,shock.frac=0.6,shock.len=20")
	if err != nil {
		t.Fatal(err)
	}
	log := &trace.EventLog{}
	res, err := s.RunQueueFaulty(jobs, PolicyCoord, DisciplineBackfill, faults.NewInjector(spec, 5), log)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stats) != len(jobs) {
		t.Fatalf("completed %d of %d jobs", len(res.Stats), len(jobs))
	}
	if res.Faults.Shocks == 0 {
		t.Fatal("no shocks fired — test proves nothing")
	}
	verifyEventGrammar(t, res.Events)
	if strings.Count(log.String(), "budget-shock") != res.Faults.Shocks {
		t.Fatalf("log shock count mismatch")
	}
}

func TestRunQueueFaultyStarvationWrapsErrStarved(t *testing.T) {
	// Budget below every productive threshold: starved immediately.
	s, err := NewScheduler(150, nodes(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	jobs := []TimedJob{timedJob(t, "j", "mg", 1e12)}
	_, err = s.RunQueueFaulty(jobs, PolicyCoord, DisciplineBackfill, nil, nil)
	if err == nil {
		t.Fatal("impossible budget accepted")
	}
	if !errors.Is(err, ErrStarved) {
		t.Fatalf("error %v does not wrap ErrStarved", err)
	}
	// The fault-free engine reports the same sentinel.
	s2, _ := NewScheduler(150, nodes(t, 2))
	_, err = s2.RunQueue(jobs, PolicyCoord)
	if !errors.Is(err, ErrStarved) {
		t.Fatalf("baseline error %v does not wrap ErrStarved", err)
	}
}

func TestRunQueueFaultyPermanentFailureStillFinishesOnSurvivors(t *testing.T) {
	// No repair (mttr=0): failed nodes never return. With several nodes
	// and a long MTBF relative to job length, survivors finish the queue.
	s, err := NewScheduler(900, nodes(t, 4))
	if err != nil {
		t.Fatal(err)
	}
	jobs := []TimedJob{
		timedJob(t, "j1", "stream", 3e12),
		timedJob(t, "j2", "mg", 3e12),
		timedJob(t, "j3", "ep", 1e13),
	}
	spec, err := faults.ParseSpec("node.mtbf=120")
	if err != nil {
		t.Fatal(err)
	}
	log := &trace.EventLog{}
	res, err := s.RunQueueFaulty(jobs, PolicyCoord, DisciplineBackfill, faults.NewInjector(spec, 2), log)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stats) != len(jobs) {
		t.Fatalf("completed %d of %d jobs", len(res.Stats), len(jobs))
	}
	if res.Faults.NodeRecoveries != 0 {
		t.Fatalf("mttr=0 but %d recoveries", res.Faults.NodeRecoveries)
	}
	verifyEventGrammar(t, res.Events)
}

func TestRunQueueFaultyEventsSortedByTime(t *testing.T) {
	s, err := NewScheduler(500, nodes(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	jobs := []TimedJob{
		timedJob(t, "j1", "stream", 5e12),
		timedJob(t, "j2", "dgemm", 1e14),
	}
	spec, _ := faults.ParseSpec("node.mtbf=90,node.mttr=30")
	res, err := s.RunQueueFaulty(jobs, PolicyCoord, DisciplineBackfill, faults.NewInjector(spec, 13), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !sort.SliceIsSorted(res.Events, func(i, j int) bool { return res.Events[i].Time < res.Events[j].Time }) {
		t.Fatal("event log not time-sorted")
	}
}
