package cluster

import (
	"testing"

	"repro/internal/hw"
	"repro/internal/profile"
	"repro/internal/units"
	"repro/internal/workload"
)

func mustW(t *testing.T, name string) workload.Workload {
	t.Helper()
	w, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func timedJob(t *testing.T, id, wl string, work float64) TimedJob {
	t.Helper()
	return TimedJob{Job: job(t, id, wl), Units: work}
}

func TestRunQueueCompletesAllJobs(t *testing.T) {
	s, err := NewScheduler(500, nodes(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	jobs := []TimedJob{
		timedJob(t, "j1", "stream", 5e12), // 5 TB of triad traffic
		timedJob(t, "j2", "dgemm", 1e14),  // 100 TFLOPs
		timedJob(t, "j3", "mg", 5e12),
		timedJob(t, "j4", "ep", 2e13),
	}
	res, err := s.RunQueue(jobs, PolicyCoord)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stats) != 4 {
		t.Fatalf("completed %d of 4 jobs", len(res.Stats))
	}
	if res.Makespan <= 0 {
		t.Error("zero makespan")
	}
	if res.Energy <= 0 {
		t.Error("zero energy")
	}
	// Events pair up: one start and one finish per job, in time order.
	starts, finishes := 0, 0
	prev := -1.0
	for _, e := range res.Events {
		if e.Time < prev {
			t.Error("events out of order")
		}
		prev = e.Time
		switch e.Kind {
		case "start":
			starts++
		case "finish":
			finishes++
		}
	}
	if starts != 4 || finishes != 4 {
		t.Errorf("events: %d starts, %d finishes", starts, finishes)
	}
	// Every job's stats are self-consistent.
	for id, st := range res.Stats {
		if st.End <= st.Start {
			t.Errorf("%s: end before start", id)
		}
		if st.Rate <= 0 || st.Power <= 0 || st.Budget <= 0 {
			t.Errorf("%s: bad stats %+v", id, st)
		}
	}
}

func TestRunQueueSerializesWhenPoolIsTight(t *testing.T) {
	// 260 W can productively run roughly one job at a time: completions
	// must release power for waiting jobs and the makespan must exceed
	// any single job's runtime.
	s, err := NewScheduler(260, nodes(t, 4))
	if err != nil {
		t.Fatal(err)
	}
	jobs := []TimedJob{
		timedJob(t, "a", "dgemm", 5e13),
		timedJob(t, "b", "stream", 2e12),
		timedJob(t, "c", "ep", 1e13),
	}
	res, err := s.RunQueue(jobs, PolicyCoord)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stats) != 3 {
		t.Fatalf("completed %d of 3", len(res.Stats))
	}
	// At least one job had to wait: its start time is after time zero.
	waited := 0
	for _, st := range res.Stats {
		if st.Start > 0 {
			waited++
		}
	}
	if waited == 0 {
		t.Error("tight pool should force some job to wait")
	}
}

func TestRunQueueCoordBeatsEvenSplit(t *testing.T) {
	// The same queue under the same facility budget: COORD's splits give
	// each job more performance per granted watt, so the makespan must
	// not be worse than the even-split policy's (and should be better).
	mk := func() (*Scheduler, []TimedJob) {
		s, err := NewScheduler(450, nodes(t, 2))
		if err != nil {
			t.Fatal(err)
		}
		return s, []TimedJob{
			timedJob(t, "j1", "dgemm", 5e13),
			timedJob(t, "j2", "mg", 4e12),
			timedJob(t, "j3", "stream", 4e12),
			timedJob(t, "j4", "cg", 1.5e12),
		}
	}
	s1, q1 := mk()
	coordRes, err := s1.RunQueue(q1, PolicyCoord)
	if err != nil {
		t.Fatal(err)
	}
	s2, q2 := mk()
	evenRes, err := s2.RunQueue(q2, PolicyEvenSplit)
	if err != nil {
		t.Fatal(err)
	}
	if coordRes.Makespan > evenRes.Makespan*1.001 {
		t.Errorf("COORD makespan %.1f s worse than even-split %.1f s",
			coordRes.Makespan, evenRes.Makespan)
	}
	if coordRes.Makespan > evenRes.Makespan*0.98 {
		t.Logf("note: COORD %.1f s vs even-split %.1f s (small margin)",
			coordRes.Makespan, evenRes.Makespan)
	}
}

func TestRunQueueRejectsImpossibleBudget(t *testing.T) {
	s, err := NewScheduler(150, nodes(t, 2)) // below every productive threshold
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.RunQueue([]TimedJob{timedJob(t, "j", "mg", 1e12)}, PolicyCoord)
	if err == nil {
		t.Error("impossible budget accepted")
	}
}

func TestRunQueueValidatesWork(t *testing.T) {
	s, err := NewScheduler(400, nodes(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.RunQueue([]TimedJob{timedJob(t, "j", "stream", 0)}, PolicyCoord)
	if err == nil {
		t.Error("zero work accepted")
	}
	_, err = s.RunQueue([]TimedJob{timedJob(t, "j", "stream", 1e12)}, SplitPolicy(99))
	if err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestRunQueuePowerNeverExceedsBudget(t *testing.T) {
	s, err := NewScheduler(420, nodes(t, 3))
	if err != nil {
		t.Fatal(err)
	}
	jobs := []TimedJob{
		timedJob(t, "j1", "stream", 3e12),
		timedJob(t, "j2", "sra", 2e9),
		timedJob(t, "j3", "bt", 2e13),
	}
	res, err := s.RunQueue(jobs, PolicyCoord)
	if err != nil {
		t.Fatal(err)
	}
	// Reconstruct concurrent power at each event boundary from the stats.
	for _, e := range res.Events {
		var inUse units.Power
		for _, st := range res.Stats {
			if st.Start <= e.Time && e.Time < st.End {
				inUse += st.Budget
			}
		}
		if inUse > s.Budget+0.01 {
			t.Errorf("at t=%.1f: %v granted exceeds %v budget", e.Time, inUse, s.Budget)
		}
	}
}

func TestSplitPolicyString(t *testing.T) {
	if PolicyCoord.String() != "coord" || PolicyEvenSplit.String() != "even-split" {
		t.Error("policy names")
	}
	if SplitPolicy(9).String() == "" {
		t.Error("unknown policy should format")
	}
}

func TestBackfillBeatsFIFO(t *testing.T) {
	// Head-of-line blocking: after the first job takes its full demand,
	// the leftover power sits between the small job's threshold and the
	// blocked head job's threshold. Backfill lets the small job through;
	// FIFO makes it wait. The budget is derived from the profiles so the
	// window is exact.
	p, err := hw.PlatformByName("ivybridge")
	if err != nil {
		t.Fatal(err)
	}
	dgemmProf, err := profile.ProfileCPU(p, mustW(t, "dgemm"))
	if err != nil {
		t.Fatal(err)
	}
	mgProf, err := profile.ProfileCPU(p, mustW(t, "mg"))
	if err != nil {
		t.Fatal(err)
	}
	epProf, err := profile.ProfileCPU(p, mustW(t, "ep"))
	if err != nil {
		t.Fatal(err)
	}
	dgemmDemand := dgemmProf.Critical.CPUMax + dgemmProf.Critical.MemMax
	epThresh := epProf.Critical.ProductiveThreshold()
	mgThresh := mgProf.Critical.ProductiveThreshold()
	if epThresh >= mgThresh {
		t.Fatalf("test premise broken: ep threshold %v not below mg %v", epThresh, mgThresh)
	}
	budget := dgemmDemand + (epThresh+mgThresh)/2

	mk := func() (*Scheduler, []TimedJob) {
		s, err := NewScheduler(budget, nodes(t, 3))
		if err != nil {
			t.Fatal(err)
		}
		return s, []TimedJob{
			timedJob(t, "big1", "dgemm", 8e13), // takes its full demand
			timedJob(t, "big2", "mg", 8e12),    // blocked head: leftover below its threshold
			timedJob(t, "small", "ep", 5e12),   // fits the leftover power
		}
	}
	s1, q1 := mk()
	backfill, err := s1.RunQueueOpts(q1, PolicyCoord, DisciplineBackfill)
	if err != nil {
		t.Fatal(err)
	}
	s2, q2 := mk()
	fifo, err := s2.RunQueueOpts(q2, PolicyCoord, DisciplineFIFO)
	if err != nil {
		t.Fatal(err)
	}
	// Both complete all jobs.
	if len(backfill.Stats) != 3 || len(fifo.Stats) != 3 {
		t.Fatalf("completions: backfill %d, fifo %d", len(backfill.Stats), len(fifo.Stats))
	}
	// FIFO preserves start order strictly.
	if fifo.Stats["small"].Start < fifo.Stats["big2"].Start {
		t.Error("FIFO let the small job jump the queue")
	}
	// Backfill must not be worse, and the small job should start earlier
	// under backfill.
	if backfill.Makespan > fifo.Makespan*1.001 {
		t.Errorf("backfill makespan %.1f worse than FIFO %.1f",
			backfill.Makespan, fifo.Makespan)
	}
	if backfill.Stats["small"].Start >= fifo.Stats["small"].Start {
		t.Errorf("backfill small start %.1f not earlier than FIFO %.1f",
			backfill.Stats["small"].Start, fifo.Stats["small"].Start)
	}
}

func TestDisciplineString(t *testing.T) {
	if DisciplineBackfill.String() != "backfill" || DisciplineFIFO.String() != "fifo" {
		t.Error("discipline names")
	}
	if Discipline(7).String() == "" {
		t.Error("unknown discipline should format")
	}
}

func TestQueueFairnessMetrics(t *testing.T) {
	s, err := NewScheduler(260, nodes(t, 3))
	if err != nil {
		t.Fatal(err)
	}
	jobs := []TimedJob{
		timedJob(t, "a", "dgemm", 5e13),
		timedJob(t, "b", "stream", 2e12),
		timedJob(t, "c", "ep", 1e13),
	}
	res, err := s.RunQueue(jobs, PolicyCoord)
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgWait() <= 0 {
		t.Error("serialized queue should have positive average wait")
	}
	if res.AvgTurnaround() < res.AvgWait() {
		t.Error("turnaround below wait")
	}
	if res.MaxSlowdown() <= 1 {
		t.Error("some job must be slowed down by queueing")
	}
	// Empty result degenerates to zeros/one.
	var empty QueueResult
	if empty.AvgWait() != 0 || empty.AvgTurnaround() != 0 || empty.MaxSlowdown() != 1 {
		t.Error("empty-result metrics")
	}
}
