package cluster

import (
	"math"
	"testing"
)

func TestDemandResponseSteadyBudgetMatchesQueue(t *testing.T) {
	// A single never-changing budget phase must reproduce RunQueue.
	mk := func() (*Scheduler, []TimedJob) {
		s, err := NewScheduler(500, nodes(t, 2))
		if err != nil {
			t.Fatal(err)
		}
		return s, []TimedJob{
			timedJob(t, "j1", "dgemm", 5e13),
			timedJob(t, "j2", "stream", 3e12),
			timedJob(t, "j3", "mg", 3e12),
		}
	}
	s1, q1 := mk()
	queue, err := s1.RunQueue(q1, PolicyCoord)
	if err != nil {
		t.Fatal(err)
	}
	s2, q2 := mk()
	dr, err := s2.RunDemandResponse(q2, []BudgetPhase{{Until: 1e12, Budget: 500}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dr.Makespan-queue.Makespan) > 0.01*queue.Makespan {
		t.Errorf("steady demand-response makespan %.1f vs queue %.1f", dr.Makespan, queue.Makespan)
	}
	if dr.Suspensions != 0 || dr.Violations != 0 {
		t.Errorf("steady budget caused suspensions=%d violations=%d", dr.Suspensions, dr.Violations)
	}
}

func TestDemandResponseShedsOnBudgetDrop(t *testing.T) {
	s, err := NewScheduler(500, nodes(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	jobs := []TimedJob{
		timedJob(t, "long1", "dgemm", 3e14),
		timedJob(t, "long2", "stream", 2e13),
	}
	// Budget drops to 240 W after 100 s, recovers at 400 s.
	phases := []BudgetPhase{
		{Until: 100, Budget: 500},
		{Until: 400, Budget: 240},
		{Until: 1e12, Budget: 500},
	}
	res, err := s.RunDemandResponse(jobs, phases)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stats) != 2 {
		t.Fatalf("completed %d of 2", len(res.Stats))
	}
	if res.Suspensions == 0 {
		t.Error("the budget drop should suspend a job")
	}
	if res.Violations != 0 {
		t.Errorf("shedding left %d violations", res.Violations)
	}
	// A suspend event exists between 100 and 400 seconds.
	sawSuspend := false
	for _, e := range res.Events {
		if e.Kind == "suspend" {
			sawSuspend = true
			if e.Time < 99.99 || e.Time > 400.01 {
				t.Errorf("suspend at %.1f, expected inside the low-budget window", e.Time)
			}
		}
	}
	if !sawSuspend {
		t.Error("no suspend event logged")
	}
}

func TestDemandResponseSuspendedWorkResumes(t *testing.T) {
	// A job suspended by the drop must finish after the budget recovers,
	// and its total executed work is conserved (it completes).
	s, err := NewScheduler(460, nodes(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	jobs := []TimedJob{
		timedJob(t, "a", "dgemm", 1e14),
		timedJob(t, "b", "mg", 1e13),
	}
	phases := []BudgetPhase{
		{Until: 50, Budget: 460},
		{Until: 200, Budget: 230},
		{Until: 1e12, Budget: 460},
	}
	res, err := s.RunDemandResponse(jobs, phases)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stats) != 2 {
		t.Fatalf("completed %d of 2", len(res.Stats))
	}
	// Events for a suspended job: start, suspend, start, finish.
	counts := map[string]int{}
	for _, e := range res.Events {
		counts[e.JobID+"/"+e.Kind]++
	}
	for _, id := range []string{"a", "b"} {
		if counts[id+"/finish"] != 1 {
			t.Errorf("job %s finished %d times", id, counts[id+"/finish"])
		}
		if counts[id+"/start"] != counts[id+"/suspend"]+1 {
			t.Errorf("job %s: %d starts vs %d suspends", id,
				counts[id+"/start"], counts[id+"/suspend"])
		}
	}
}

func TestDemandResponseValidation(t *testing.T) {
	s, err := NewScheduler(400, nodes(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	j := []TimedJob{timedJob(t, "j", "stream", 1e12)}
	if _, err := s.RunDemandResponse(j, nil); err == nil {
		t.Error("empty phases accepted")
	}
	bad := []BudgetPhase{{Until: 100, Budget: 400}, {Until: 50, Budget: 300}}
	if _, err := s.RunDemandResponse(j, bad); err == nil {
		t.Error("unordered phases accepted")
	}
	if _, err := s.RunDemandResponse(
		[]TimedJob{timedJob(t, "z", "stream", -1)},
		[]BudgetPhase{{Until: 1e12, Budget: 400}}); err == nil {
		t.Error("negative work accepted")
	}
	// A final budget below every threshold deadlocks and must error.
	if _, err := s.RunDemandResponse(j, []BudgetPhase{{Until: 1e12, Budget: 100}}); err == nil {
		t.Error("impossible final budget accepted")
	}
}

func TestDemandResponseEnergyAccounting(t *testing.T) {
	s, err := NewScheduler(500, nodes(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	jobs := []TimedJob{timedJob(t, "j", "stream", 5e12)}
	res, err := s.RunDemandResponse(jobs, []BudgetPhase{{Until: 1e12, Budget: 500}})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats["j"]
	wantEnergy := st.Power.Watts() * (st.End - st.Start)
	if math.Abs(res.Energy.Joules()-wantEnergy) > wantEnergy*0.01 {
		t.Errorf("energy %v, want %v", res.Energy.Joules(), wantEnergy)
	}
}
