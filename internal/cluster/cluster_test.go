package cluster

import (
	"testing"

	"repro/internal/hw"
	"repro/internal/units"
	"repro/internal/workload"
)

func nodes(t *testing.T, n int) []Node {
	t.Helper()
	p, err := hw.PlatformByName("ivybridge")
	if err != nil {
		t.Fatal(err)
	}
	var out []Node
	for i := 0; i < n; i++ {
		out = append(out, Node{ID: nodeID(i), Platform: p})
	}
	return out
}

func nodeID(i int) string { return string(rune('a'+i)) + "-node" }

func job(t *testing.T, id, wl string) Job {
	t.Helper()
	w, err := workload.ByName(wl)
	if err != nil {
		t.Fatal(err)
	}
	return Job{ID: id, Workload: w}
}

func TestNewSchedulerValidation(t *testing.T) {
	ns := nodes(t, 2)
	if _, err := NewScheduler(0, ns); err == nil {
		t.Error("zero budget accepted")
	}
	if _, err := NewScheduler(500, nil); err == nil {
		t.Error("no nodes accepted")
	}
	dup := []Node{ns[0], ns[0]}
	if _, err := NewScheduler(500, dup); err == nil {
		t.Error("duplicate node IDs accepted")
	}
	bad := ns
	bad[0].ID = ""
	if _, err := NewScheduler(500, bad); err == nil {
		t.Error("empty node ID accepted")
	}
	invalid := hw.IvyBridge()
	invalid.DRAM = nil
	if _, err := NewScheduler(500, []Node{{ID: "x", Platform: invalid}}); err == nil {
		t.Error("invalid platform accepted")
	}
}

func TestScheduleMixedCPUAndGPUNodes(t *testing.T) {
	ivy, _ := hw.PlatformByName("ivybridge")
	xp, _ := hw.PlatformByName("titanxp")
	s, err := NewScheduler(700, []Node{
		{ID: "cpu0", Platform: ivy},
		{ID: "gpu0", Platform: xp},
	})
	if err != nil {
		t.Fatal(err)
	}
	gw, _ := workload.ByName("sgemm")
	jobs := []Job{job(t, "cpu-job", "stream"), {ID: "gpu-job", Workload: gw}}
	out, err := s.Schedule(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(out); err != nil {
		t.Fatal(err)
	}
	if len(out.Placements) != 2 {
		t.Fatalf("placements = %d, want 2: %+v", len(out.Placements), out)
	}
	byJob := map[string]Placement{}
	for _, pl := range out.Placements {
		byJob[pl.JobID] = pl
	}
	// Kind matching: the GPU job lands on the GPU node.
	if byJob["gpu-job"].NodeID != "gpu0" {
		t.Errorf("GPU job placed on %s", byJob["gpu-job"].NodeID)
	}
	if byJob["cpu-job"].NodeID != "cpu0" {
		t.Errorf("CPU job placed on %s", byJob["cpu-job"].NodeID)
	}
	// The GPU grant respects the card's settable cap range.
	if b := byJob["gpu-job"].Budget; b < xp.GPU.MinCap || b > xp.GPU.MaxCap {
		t.Errorf("GPU grant %v outside card range", b)
	}
	if byJob["gpu-job"].ExpectedPerf <= 0 {
		t.Error("GPU job has no performance")
	}
}

func TestScheduleDefersKindMismatch(t *testing.T) {
	// A GPU job with only CPU nodes available must defer, not crash.
	s, err := NewScheduler(500, nodes(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	gw, _ := workload.ByName("minife")
	out, err := s.Schedule([]Job{{ID: "g", Workload: gw}})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Deferred) != 1 || out.Deferred[0] != "g" {
		t.Errorf("kind-mismatched job not deferred: %+v", out)
	}
}

func TestRunQueueGPUNodes(t *testing.T) {
	xp, _ := hw.PlatformByName("titanxp")
	s, err := NewScheduler(500, []Node{{ID: "g0", Platform: xp}, {ID: "g1", Platform: xp}})
	if err != nil {
		t.Fatal(err)
	}
	sgemm, _ := workload.ByName("sgemm")
	minife, _ := workload.ByName("minife")
	jobs := []TimedJob{
		{Job: Job{ID: "a", Workload: sgemm}, Units: 1e15},
		{Job: Job{ID: "b", Workload: minife}, Units: 1e14},
	}
	res, err := s.RunQueue(jobs, PolicyCoord)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stats) != 2 {
		t.Fatalf("completed %d of 2 GPU jobs", len(res.Stats))
	}
	// Even-split policy is CPU-only and must error on GPU nodes.
	s2, _ := NewScheduler(500, []Node{{ID: "g0", Platform: xp}})
	if _, err := s2.RunQueue(jobs[:1], PolicyEvenSplit); err == nil {
		t.Error("even-split accepted GPU nodes")
	}
}

func TestScheduleAdmitsWithinBudget(t *testing.T) {
	s, err := NewScheduler(600, nodes(t, 3))
	if err != nil {
		t.Fatal(err)
	}
	jobs := []Job{job(t, "j1", "dgemm"), job(t, "j2", "stream"), job(t, "j3", "sra")}
	out, err := s.Schedule(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(out); err != nil {
		t.Fatal(err)
	}
	if len(out.Placements)+len(out.Deferred) != 3 {
		t.Fatalf("jobs lost: %+v", out)
	}
	// 600 W over three jobs whose demands are ~180-260 W each: at least
	// two admissions.
	if len(out.Placements) < 2 {
		t.Errorf("only %d jobs admitted at 600 W", len(out.Placements))
	}
	for _, pl := range out.Placements {
		if pl.ExpectedPerf <= 0 {
			t.Errorf("placement %s has no performance", pl.JobID)
		}
		if pl.Alloc.Total() > pl.Budget+0.01 {
			t.Errorf("placement %s allocation exceeds its budget", pl.JobID)
		}
	}
}

func TestScheduleDefersWhenPoolExhausted(t *testing.T) {
	s, err := NewScheduler(250, nodes(t, 3))
	if err != nil {
		t.Fatal(err)
	}
	jobs := []Job{job(t, "j1", "dgemm"), job(t, "j2", "mg"), job(t, "j3", "sra")}
	out, err := s.Schedule(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Deferred) == 0 {
		t.Error("250 W cannot productively run three jobs; some must defer")
	}
	if err := s.Validate(out); err != nil {
		t.Fatal(err)
	}
}

func TestScheduleDefersWhenNodesExhausted(t *testing.T) {
	s, err := NewScheduler(2000, nodes(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	jobs := []Job{job(t, "j1", "stream"), job(t, "j2", "stream")}
	out, err := s.Schedule(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Placements) != 1 || len(out.Deferred) != 1 {
		t.Errorf("1 node, 2 jobs: placements=%d deferred=%d",
			len(out.Placements), len(out.Deferred))
	}
}

func TestScheduleNeverOverAllocates(t *testing.T) {
	for _, budget := range []units.Power{200, 300, 450, 700, 1200} {
		s, err := NewScheduler(budget, nodes(t, 4))
		if err != nil {
			t.Fatal(err)
		}
		jobs := []Job{
			job(t, "j1", "dgemm"), job(t, "j2", "stream"),
			job(t, "j3", "mg"), job(t, "j4", "ep"),
		}
		out, err := s.Schedule(jobs)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Validate(out); err != nil {
			t.Errorf("budget %v: %v", budget, err)
		}
	}
}

func TestScheduleCapsGrantsAtMaxDemand(t *testing.T) {
	// A huge budget must not be dumped on a single job: grants cap at the
	// job's maximum demand and the rest stays in the pool.
	s, err := NewScheduler(5000, nodes(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	out, err := s.Schedule([]Job{job(t, "j1", "sra")})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Placements) != 1 {
		t.Fatal("job not placed")
	}
	pl := out.Placements[0]
	if pl.Budget.Watts() > 300 {
		t.Errorf("grant %v exceeds any plausible SRA demand", pl.Budget)
	}
	if out.PoolLeft.Watts() < 4600 {
		t.Errorf("pool should retain the surplus: %v", out.PoolLeft)
	}
}

func TestScheduleBoostsConstrainedJobs(t *testing.T) {
	// With two jobs and a budget between one and two full demands, the
	// boost pass should spread leftover power instead of leaving it idle
	// while a job runs constrained.
	s, err := NewScheduler(460, nodes(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	out, err := s.Schedule([]Job{job(t, "j1", "dgemm"), job(t, "j2", "dgemm")})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Placements) != 2 {
		t.Fatalf("want both jobs admitted, got %d", len(out.Placements))
	}
	// Nearly all power should be granted (what remains is below a single
	// watt-scale boost or reclaimed surplus).
	var granted units.Power
	for _, pl := range out.Placements {
		granted += pl.Budget
	}
	if granted.Watts() < 420 {
		t.Errorf("granted only %v of 460 W", granted)
	}
}

func TestProfileCaching(t *testing.T) {
	s, err := NewScheduler(600, nodes(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	jobs := []Job{job(t, "j1", "stream"), job(t, "j2", "stream")}
	if _, err := s.Schedule(jobs); err != nil {
		t.Fatal(err)
	}
	if len(s.profiles) != 1 {
		t.Errorf("profile cache has %d entries, want 1 (same platform+workload)", len(s.profiles))
	}
}
