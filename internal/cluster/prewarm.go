package cluster

import (
	"repro/internal/hw"
	"repro/internal/workload"
)

// Prewarm fills the scheduler's profile caches for every (node
// platform, workload) pair ahead of the first round, so scheduling
// never profiles on the request path. It is the cluster-side table
// builder: the envelope and split passes consume exactly these
// profiles, and with them precomputed a round reduces to arithmetic
// over cached state plus memoized simulation.
//
// Workloads whose kind matches no node are skipped; the first
// profiling error is returned after attempting every pair, so one
// damaged profile does not block warming the rest (the scheduler
// degrades to lazy profiling for that pair, surfacing the error on
// first use as before).
func (s *Scheduler) Prewarm(workloads []workload.Workload) error {
	var firstErr error
	seen := map[string]bool{}
	for _, n := range s.Nodes {
		for _, w := range workloads {
			if w.Kind != n.Platform.Kind || seen[n.Platform.Name+"/"+w.Name] {
				continue
			}
			seen[n.Platform.Name+"/"+w.Name] = true
			var err error
			if n.Platform.Kind == hw.KindCPU {
				_, err = s.profileFor(n.Platform, w)
			} else {
				_, err = s.gpuProfileFor(n.Platform, w)
			}
			if err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	return firstErr
}
