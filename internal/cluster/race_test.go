package cluster

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/hw"
	"repro/internal/workload"
)

// TestScheduleConcurrentRounds is the regression test for the
// unsynchronized scheduler profile cache: two Schedule rounds running
// concurrently on one Scheduler must neither race on the lazily
// populated profiles/gpuProfiles maps nor diverge from a serial round.
// On the seed code this fails under -race (concurrent map read/write in
// profileFor); with the mutex+singleflight cache it passes.
func TestScheduleConcurrentRounds(t *testing.T) {
	cpu, err := hw.PlatformByName("ivybridge")
	if err != nil {
		t.Fatal(err)
	}
	gpu, err := hw.PlatformByName("titanxp")
	if err != nil {
		t.Fatal(err)
	}
	nodes := []Node{
		{ID: "n1", Platform: cpu},
		{ID: "n2", Platform: cpu},
		{ID: "g1", Platform: gpu},
	}
	s, err := NewScheduler(500, nodes)
	if err != nil {
		t.Fatal(err)
	}
	stream := mustWorkload(t, "stream")
	dgemm := mustWorkload(t, "dgemm")
	sgemm := mustWorkload(t, "sgemm")
	jobs := []Job{
		{ID: "j1", Workload: stream},
		{ID: "j2", Workload: dgemm},
		{ID: "j3", Workload: sgemm},
	}

	want, err := s.Schedule(jobs)
	if err != nil {
		t.Fatal(err)
	}
	wantStr := outcomeString(want)

	// Fresh scheduler with cold caches: every concurrent round profiles
	// lazily, so the first touch of each cache key races on seed code.
	s2, err := NewScheduler(500, nodes)
	if err != nil {
		t.Fatal(err)
	}
	const rounds = 8
	outs := make([]Outcome, rounds)
	errs := make([]error, rounds)
	var wg sync.WaitGroup
	for i := 0; i < rounds; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outs[i], errs[i] = s2.Schedule(jobs)
		}(i)
	}
	wg.Wait()
	for i := 0; i < rounds; i++ {
		if errs[i] != nil {
			t.Fatalf("round %d: %v", i, errs[i])
		}
		if got := outcomeString(outs[i]); got != wantStr {
			t.Errorf("round %d diverged from serial outcome:\ngot  %s\nwant %s", i, got, wantStr)
		}
	}
}

// TestQueueRunsConcurrent exercises the shared profile cache through the
// event-driven queue engines running concurrently on one scheduler.
func TestQueueRunsConcurrent(t *testing.T) {
	cpu, err := hw.PlatformByName("ivybridge")
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewScheduler(400, []Node{
		{ID: "n1", Platform: cpu},
		{ID: "n2", Platform: cpu},
	})
	if err != nil {
		t.Fatal(err)
	}
	jobs := []TimedJob{
		{Job: Job{ID: "a", Workload: mustWorkload(t, "stream")}, Units: 2e11},
		{Job: Job{ID: "b", Workload: mustWorkload(t, "dgemm")}, Units: 2e11},
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := s.RunQueue(jobs, PolicyCoord); err != nil {
				t.Errorf("RunQueue: %v", err)
			}
		}()
	}
	wg.Wait()
}

func mustWorkload(t *testing.T, name string) workload.Workload {
	t.Helper()
	w, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// outcomeString renders an outcome deterministically for comparison.
func outcomeString(o Outcome) string {
	s := fmt.Sprintf("pool=%.9f total=%.9f deferred=%v", o.PoolLeft.Watts(),
		o.TotalExpectedPower.Watts(), o.Deferred)
	for _, pl := range o.Placements {
		s += fmt.Sprintf(" [%s@%s %.9f %v perf=%.9f pow=%.9f]",
			pl.JobID, pl.NodeID, pl.Budget.Watts(), pl.Alloc, pl.ExpectedPerf,
			pl.ExpectedPower.Watts())
	}
	return s
}
