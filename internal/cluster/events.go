package cluster

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/coord"
	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/units"
)

// ErrStarved is wrapped by queue-run errors when waiting jobs can never
// receive a productive grant (no future completion, recovery, or budget
// restoration can unblock them). Match with errors.Is.
var ErrStarved = errors.New("cluster: starved")

// TimedJob is a job with a finite amount of work, for the event-driven
// queue simulation.
type TimedJob struct {
	Job
	// Units is the total work to execute, in the workload's work units
	// (bytes for STREAM, FLOPs for DGEMM, ...).
	Units float64
}

// SplitPolicy selects how an admitted job's budget is divided across its
// node's components.
type SplitPolicy int

// Split policies for the queue simulation.
const (
	// PolicyCoord uses COORD (Algorithm 1) — the repository default.
	PolicyCoord SplitPolicy = iota
	// PolicyEvenSplit divides the grant equally between processor and
	// memory, the application-oblivious baseline.
	PolicyEvenSplit
)

// String names the policy.
func (p SplitPolicy) String() string {
	switch p {
	case PolicyCoord:
		return "coord"
	case PolicyEvenSplit:
		return "even-split"
	default:
		return fmt.Sprintf("SplitPolicy(%d)", int(p))
	}
}

// Discipline selects the queueing order semantics.
type Discipline int

// Queue disciplines.
const (
	// DisciplineBackfill lets any waiting job start when a node and a
	// productive grant are available, even if an earlier job is still
	// blocked — power-aware backfilling.
	DisciplineBackfill Discipline = iota
	// DisciplineFIFO enforces strict queue order: when the head job
	// cannot start, nothing behind it may either.
	DisciplineFIFO
)

// String names the discipline.
func (d Discipline) String() string {
	switch d {
	case DisciplineBackfill:
		return "backfill"
	case DisciplineFIFO:
		return "fifo"
	default:
		return fmt.Sprintf("Discipline(%d)", int(d))
	}
}

// Event is one entry of the queue simulation's event log.
type Event struct {
	// Time is the simulation time in seconds.
	Time float64
	// Kind is "start" or "finish".
	Kind string
	// JobID and NodeID identify the affected job and node.
	JobID, NodeID string
}

// JobStat summarizes one job's execution.
type JobStat struct {
	Start, End float64
	Budget     units.Power
	Power      units.Power
	Rate       float64 // work units per second
}

// QueueResult is the outcome of an event-driven queue run.
type QueueResult struct {
	// Makespan is the completion time of the last job.
	Makespan float64
	// Events is the chronological start/finish log.
	Events []Event
	// Stats maps job IDs to their execution summaries.
	Stats map[string]JobStat
	// Energy is the total cluster energy (sum of power x runtime).
	Energy units.Energy
}

// sortedJobIDs returns the stat keys in sorted order. Every aggregate
// below iterates in this order rather than map order, so floating-point
// accumulation — and therefore replay output — is byte-for-byte
// reproducible.
func (r *QueueResult) sortedJobIDs() []string {
	ids := make([]string, 0, len(r.Stats))
	for id := range r.Stats {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// AvgWait returns the mean time jobs spent queued before starting.
func (r *QueueResult) AvgWait() float64 {
	if len(r.Stats) == 0 {
		return 0
	}
	var sum float64
	for _, id := range r.sortedJobIDs() {
		sum += r.Stats[id].Start
	}
	return sum / float64(len(r.Stats))
}

// AvgTurnaround returns the mean completion time (queue entry at t=0).
func (r *QueueResult) AvgTurnaround() float64 {
	if len(r.Stats) == 0 {
		return 0
	}
	var sum float64
	for _, id := range r.sortedJobIDs() {
		sum += r.Stats[id].End
	}
	return sum / float64(len(r.Stats))
}

// MaxSlowdown returns the worst ratio of turnaround to pure runtime
// across jobs — the fairness metric batch schedulers report.
func (r *QueueResult) MaxSlowdown() float64 {
	worst := 1.0
	for _, id := range r.sortedJobIDs() {
		st := r.Stats[id]
		run := st.End - st.Start
		if run <= 0 {
			continue
		}
		if s := st.End / run; s > worst {
			worst = s
		}
	}
	return worst
}

// RunQueue simulates the cluster executing timed jobs to completion: jobs
// start when both a node and a productive power grant are available,
// power returns to the pool when a job finishes, and waiting jobs are
// reconsidered at every completion. Grants are fixed for a job's lifetime
// (RAPL caps are programmed once per job, as in the paper's dedicated
// environment), and capped at the job's maximum demand.
func (s *Scheduler) RunQueue(jobs []TimedJob, policy SplitPolicy) (QueueResult, error) {
	return s.RunQueueOpts(jobs, policy, DisciplineBackfill)
}

// RunQueueOpts is RunQueue with an explicit queue discipline.
func (s *Scheduler) RunQueueOpts(jobs []TimedJob, policy SplitPolicy, disc Discipline) (QueueResult, error) {
	res := QueueResult{Stats: map[string]JobStat{}}
	for _, j := range jobs {
		if j.Units <= 0 {
			return res, fmt.Errorf("cluster: job %q has non-positive work", j.ID)
		}
	}

	pool := s.Budget
	freeNodes := append([]Node(nil), s.Nodes...)
	waiting := append([]TimedJob(nil), jobs...)
	var active []*RunningJob
	now := 0.0

	// admit starts every waiting job that can receive a productive grant
	// on a free node, in queue order.
	admit := func() error {
		var err error
		active, waiting, freeNodes, pool, err = s.AdmitWaiting(
			&res, active, waiting, freeNodes, pool, now, policy, disc)
		return err
	}

	if err := admit(); err != nil {
		return res, err
	}
	if len(active) == 0 && len(waiting) > 0 {
		return res, fmt.Errorf("cluster: no job can start (budget %v too small for every job): %w",
			s.Budget, ErrStarved)
	}

	for len(active) > 0 {
		// Next completion.
		next, idx := math.Inf(1), -1
		for i, r := range active {
			t := r.Remaining / r.Rate
			if t < next {
				next, idx = t, i
			}
		}
		now += next
		for _, r := range active {
			r.Remaining -= next * r.Rate
		}
		done := active[idx]
		active = append(active[:idx], active[idx+1:]...)
		runtime := now - done.Started
		res.Energy += units.Energy(done.Power.Watts() * runtime)
		res.Stats[done.Job.ID] = JobStat{
			Start: done.FirstStart, End: now,
			Budget: done.Budget, Power: done.Power, Rate: done.Rate,
		}
		res.Events = append(res.Events, Event{Time: now, Kind: "finish", JobID: done.Job.ID, NodeID: done.Node.ID})
		pool += done.Budget
		freeNodes = append(freeNodes, done.Node)

		if err := admit(); err != nil {
			return res, err
		}
		if len(active) == 0 && len(waiting) > 0 {
			return res, fmt.Errorf("cluster: %d job(s) can never start under budget %v: %w",
				len(waiting), s.Budget, ErrStarved)
		}
	}
	res.Makespan = now
	sort.SliceStable(res.Events, func(i, j int) bool { return res.Events[i].Time < res.Events[j].Time })
	return res, nil
}

// RunningJob is one in-flight job of an event-driven queue run. It is
// exported so the discrete-event simulator (internal/des) can drive
// the same admission and progress state the round loop uses — the two
// engines share this struct and AdmitWaiting, which is what makes
// their outputs byte-identical on the same inputs.
type RunningJob struct {
	Job       TimedJob
	Node      Node
	Remaining float64
	Rate      float64
	Power     units.Power
	Budget    units.Power
	Started   float64
	// FirstStart is the job's first admission time, preserved across
	// fault-driven re-admissions so wait-time stats stay meaningful.
	FirstStart float64
}

// AdmitWaiting starts every waiting job that can receive a productive
// grant on a free node, in queue order, and returns the updated
// scheduler state. It is shared by the fault-free and fault-injected
// queue engines — and, exported, by the discrete-event simulator — so
// the engines cannot drift apart.
func (s *Scheduler) AdmitWaiting(res *QueueResult, active []*RunningJob, waiting []TimedJob,
	freeNodes []Node, pool units.Power, now float64,
	policy SplitPolicy, disc Discipline) ([]*RunningJob, []TimedJob, []Node, units.Power, error) {

	var still []TimedJob
	blocked := false
	for _, j := range waiting {
		if blocked && disc == DisciplineFIFO {
			still = append(still, j)
			continue
		}
		node, rest, found := takeNode(freeNodes, j.Workload.Kind)
		if !found {
			still = append(still, j)
			blocked = true
			continue
		}
		threshold, maxTotal, err := s.envelope(node, j.Workload)
		if err != nil {
			return active, waiting, freeNodes, pool, err
		}
		if pool < threshold {
			still = append(still, j)
			blocked = true
			continue
		}
		grant := pool
		if grant > maxTotal {
			grant = maxTotal
		}
		var alloc core.Allocation
		var surplus units.Power
		switch policy {
		case PolicyCoord:
			var ok bool
			alloc, surplus, ok, err = s.split(node, j.Workload, grant)
			if err != nil {
				return active, waiting, freeNodes, pool, err
			}
			if !ok {
				still = append(still, j)
				blocked = true
				continue
			}
		case PolicyEvenSplit:
			if node.Platform.Kind != hw.KindCPU {
				return active, waiting, freeNodes, pool,
					fmt.Errorf("cluster: even-split policy supports CPU nodes only")
			}
			prof, err := s.profileFor(node.Platform, j.Workload)
			if err != nil {
				return active, waiting, freeNodes, pool, err
			}
			d := coord.EvenSplit(prof, grant)
			if d.Status == coord.StatusTooSmall {
				still = append(still, j)
				blocked = true
				continue
			}
			alloc = d.Alloc
		default:
			return active, waiting, freeNodes, pool,
				fmt.Errorf("cluster: unknown split policy %v", policy)
		}
		if surplus > 0 {
			grant -= surplus
		}
		w := j.Workload
		simRes, err := s.simulate(node, &w, alloc)
		if err != nil {
			return active, waiting, freeNodes, pool, err
		}
		rate := simRes.UnitRate.OpsPerSecond()
		if rate <= 0 {
			return active, waiting, freeNodes, pool,
				fmt.Errorf("cluster: job %q makes no progress", j.ID)
		}
		pool -= grant
		freeNodes = rest
		active = append(active, &RunningJob{
			Job: j, Node: node, Remaining: j.Units,
			Rate: rate, Power: simRes.TotalPower, Budget: grant,
			Started: now, FirstStart: now,
		})
		res.Events = append(res.Events, Event{Time: now, Kind: "start", JobID: j.ID, NodeID: node.ID})
		mAdmissions.Inc()
	}
	mQueueDepth.Set(float64(len(still)))
	mActiveJobs.Set(float64(len(active)))
	return active, still, freeNodes, pool, nil
}
