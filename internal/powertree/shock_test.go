package powertree

import (
	"math"
	"strings"
	"testing"

	"repro/internal/faults"
	"repro/internal/units"
)

// TestApplyShockCappedRack: shocking a capped rack scales its cap by
// (1-frac) and leaves every other rack untouched; the original spec is
// not mutated.
func TestApplyShockCappedRack(t *testing.T) {
	spec, cs := hetero(t)
	shocked, err := ApplyShock(cs, spec, "gpu", 0.4)
	if err != nil {
		t.Fatal(err)
	}
	var orig, cut units.Power
	for _, r := range spec.Racks {
		if r.ID == "gpu" {
			orig = r.Cap
		}
	}
	for _, r := range shocked.Racks {
		switch r.ID {
		case "gpu":
			cut = r.Cap
		default:
			for _, or := range spec.Racks {
				if or.ID == r.ID && or.Cap != r.Cap {
					t.Errorf("rack %s cap changed by a shock aimed at gpu: %v -> %v", r.ID, or.Cap, r.Cap)
				}
			}
		}
	}
	if want := units.Power(orig.Watts() * 0.6); math.Abs(cut.Watts()-want.Watts()) > 1e-9 {
		t.Errorf("shocked cap %v, want %v", cut, want)
	}
	// The shocked solve must shed or shrink, never grow.
	full, err := SolveCurves(cs, spec, 1200)
	if err != nil {
		t.Fatal(err)
	}
	after, err := SolveCurves(cs, shocked, 1200)
	if err != nil {
		t.Fatal(err)
	}
	if after.GrantedQuanta > full.GrantedQuanta {
		t.Errorf("shock increased granted power: %d -> %d quanta", full.GrantedQuanta, after.GrantedQuanta)
	}
}

// TestApplyShockUncappedRack: an uncapped rack's shock base is its
// aggregate leaf demand, so the new cap binds proportionally.
func TestApplyShockUncappedRack(t *testing.T) {
	spec, cs := hetero(t)
	shocked, err := ApplyShock(cs, spec, "cpu", 0.5)
	if err != nil {
		t.Fatal(err)
	}
	var cap units.Power
	for _, r := range shocked.Racks {
		if r.ID == "cpu" {
			cap = r.Cap
		}
	}
	if cap <= 0 {
		t.Fatalf("uncapped rack shock produced no binding cap: %v", cap)
	}
	var demandQ int64
	for _, r := range spec.Racks {
		if r.ID != "cpu" {
			continue
		}
		for i := range r.Nodes {
			c, err := cs.curveFor(&r.Nodes[i])
			if err != nil {
				t.Fatal(err)
			}
			demandQ += c.maxQ
		}
	}
	if want := units.Power(watts(demandQ).Watts() * 0.5); math.Abs(cap.Watts()-want.Watts()) > 1e-9 {
		t.Errorf("shocked cap %v, want half the leaf demand %v", cap, want)
	}
}

// TestApplyShockErrors pins the argument validation.
func TestApplyShockErrors(t *testing.T) {
	spec, cs := hetero(t)
	for _, frac := range []float64{-0.1, 1, 1.5, math.NaN()} {
		if _, err := ApplyShock(cs, spec, "gpu", frac); err == nil {
			t.Errorf("frac %v: want error", frac)
		}
	}
	if _, err := ApplyShock(cs, spec, "nope", 0.3); err == nil || !strings.Contains(err.Error(), "nope") {
		t.Errorf("unknown rack: err %v, want it named", err)
	}
}

// TestShockPlanDeterministicTimeline: the seeded plan alternates full
// and depressed budgets, covers the horizon exactly, conserves power
// at every step, and replays identically from the same seed.
func TestShockPlanDeterministicTimeline(t *testing.T) {
	spec, cs := hetero(t)
	mk := func() []ShockStep {
		sp, err := faults.ParseSpec("shock.mtbs=30,shock.frac=0.35,shock.len=10")
		if err != nil {
			t.Fatal(err)
		}
		steps, err := ShockPlan(cs, spec, 1000, faults.NewInjector(sp, 9), 120)
		if err != nil {
			t.Fatal(err)
		}
		return steps
	}
	steps := mk()
	if len(steps) < 2 {
		t.Fatalf("seed 9 horizon 120: %d steps, want a shocked timeline", len(steps))
	}
	shocked := 0
	var covered float64
	for i, st := range steps {
		if st.Shocked {
			shocked++
			if st.Budget >= 1000 {
				t.Errorf("step %d marked shocked at full budget %v", i, st.Budget)
			}
		}
		if st.Duration < 0 {
			t.Errorf("step %d: negative duration %g", i, st.Duration)
		}
		covered += st.Duration
		if i > 0 && st.At < steps[i-1].At {
			t.Errorf("steps out of order: %g after %g", st.At, steps[i-1].At)
		}
		if total := st.Granted + st.Surplus; toQuanta(total) != toQuanta(st.Budget) {
			t.Errorf("step %d: granted %v + surplus %v != budget %v", i, st.Granted, st.Surplus, st.Budget)
		}
	}
	if shocked == 0 {
		t.Fatal("no shocked steps; spec should fire within the horizon")
	}
	if math.Abs(covered-120) > 1e-9 {
		t.Errorf("durations cover %g s, want the 120 s horizon", covered)
	}
	again := mk()
	if len(again) != len(steps) {
		t.Fatalf("replay produced %d steps, want %d", len(again), len(steps))
	}
	for i := range steps {
		if steps[i] != again[i] {
			t.Errorf("step %d replayed differently: %+v vs %+v", i, steps[i], again[i])
		}
	}

	// A nil injector yields the single unshocked step.
	single, err := ShockPlan(cs, spec, 1000, nil, 120)
	if err != nil {
		t.Fatal(err)
	}
	if len(single) != 1 || single[0].Shocked || single[0].Duration != 120 {
		t.Fatalf("nil injector: %+v, want one unshocked 120 s step", single)
	}
}

// TestDemandAndPairs covers the CurveSet introspection helpers used by
// the CLI and the invariant harness.
func TestDemandAndPairs(t *testing.T) {
	spec, cs := hetero(t)
	floor, max, err := cs.Demand(spec)
	if err != nil {
		t.Fatal(err)
	}
	if floor <= 0 || max < floor {
		t.Fatalf("demand floor %v max %v, want 0 < floor <= max", floor, max)
	}
	wantFloor, wantMax := specFloors(t, spec, cs)
	if toQuanta(floor) != wantFloor || toQuanta(max) != wantMax {
		t.Errorf("demand (%v, %v), want quanta (%d, %d)", floor, max, wantFloor, wantMax)
	}
	pairs := cs.Pairs()
	if len(pairs) != 4 {
		t.Fatalf("pairs %v, want the 4 distinct hetero pairs", pairs)
	}
	for i := 1; i < len(pairs); i++ {
		if pairs[i-1] >= pairs[i] {
			t.Fatalf("pairs not sorted: %v", pairs)
		}
	}

	// Solve is the BuildCurves+SolveCurves convenience; it must agree
	// with the split calls exactly.
	direct, err := Solve(spec, 800)
	if err != nil {
		t.Fatal(err)
	}
	split, err := SolveCurves(cs, spec, 800)
	if err != nil {
		t.Fatal(err)
	}
	if direct.String() != split.String() {
		t.Errorf("Solve and SolveCurves disagree:\n%s\nvs\n%s", direct.String(), split.String())
	}
}
