package powertree

import (
	"testing"
)

// grantsByNode flattens a result to node → quanta.
func grantsByNode(res *Result) map[string]int64 {
	m := make(map[string]int64, len(res.Grants))
	for _, g := range res.Grants {
		m[g.Node] = g.Quanta
	}
	return m
}

func shedByNode(res *Result) map[string]bool {
	m := make(map[string]bool, len(res.Shed))
	for _, s := range res.Shed {
		m[s.Node] = true
	}
	return m
}

// sameAllocation asserts two results agree leaf by leaf, exactly
// (ε = 0 in quanta: tie-breaking is by node ID, never spec position).
func sameAllocation(t *testing.T, label string, a, b *Result) {
	t.Helper()
	ga, gb := grantsByNode(a), grantsByNode(b)
	if len(ga) != len(gb) {
		t.Errorf("%s: kept %d vs %d leaves at budget %v", label, len(ga), len(gb), a.Budget)
	}
	for id, q := range ga {
		if gb[id] != q {
			t.Errorf("%s: leaf %s granted %d vs %d at budget %v", label, id, q, gb[id], a.Budget)
		}
	}
	sa, sb := shedByNode(a), shedByNode(b)
	if len(sa) != len(sb) {
		t.Errorf("%s: shed %d vs %d leaves at budget %v", label, len(sa), len(sb), a.Budget)
	}
	for id := range sa {
		if !sb[id] {
			t.Errorf("%s: leaf %s shed in one solve only at budget %v", label, id, a.Budget)
		}
	}
	if a.TotalPerf != b.TotalPerf {
		t.Errorf("%s: perf %g vs %g at budget %v", label, a.TotalPerf, b.TotalPerf, a.Budget)
	}
}

// TestMetamorphicPermute: reversing rack order and each rack's node
// order must not change any leaf's grant.
func TestMetamorphicPermute(t *testing.T) {
	spec, cs := hetero(t)
	perm := Spec{Racks: make([]Rack, len(spec.Racks))}
	for i := range spec.Racks {
		r := spec.Racks[len(spec.Racks)-1-i]
		nodes := make([]Node, len(r.Nodes))
		for j := range r.Nodes {
			nodes[j] = r.Nodes[len(r.Nodes)-1-j]
		}
		perm.Racks[i] = Rack{ID: r.ID, Cap: r.Cap, Nodes: nodes}
	}
	_, maxQ := specFloors(t, spec, cs)
	for _, b := range budgetGrid(maxQ, 17) {
		orig, err := SolveCurves(cs, spec, b)
		if err != nil {
			t.Fatal(err)
		}
		swapped, err := SolveCurves(cs, perm, b)
		if err != nil {
			t.Fatal(err)
		}
		sameAllocation(t, "permute", orig, swapped)
	}
}

// TestMetamorphicSplitRack: splitting an uncapped rack in two (same
// leaves, same IDs) must not change any leaf's grant — uncapped rack
// boundaries are administrative, not physical.
func TestMetamorphicSplitRack(t *testing.T) {
	spec, cs := hetero(t)
	// Split the uncapped CPU rack; keep the capped GPU rack intact.
	var split Spec
	for _, r := range spec.Racks {
		if r.Cap == 0 && len(r.Nodes) >= 2 {
			mid := len(r.Nodes) / 2
			split.Racks = append(split.Racks,
				Rack{ID: r.ID + "-a", Nodes: append([]Node(nil), r.Nodes[:mid]...)},
				Rack{ID: r.ID + "-b", Nodes: append([]Node(nil), r.Nodes[mid:]...)})
		} else {
			split.Racks = append(split.Racks, r)
		}
	}
	if len(split.Racks) == len(spec.Racks) {
		t.Fatal("fixture has no uncapped rack to split")
	}
	_, maxQ := specFloors(t, spec, cs)
	for _, b := range budgetGrid(maxQ, 17) {
		orig, err := SolveCurves(cs, spec, b)
		if err != nil {
			t.Fatal(err)
		}
		halved, err := SolveCurves(cs, split, b)
		if err != nil {
			t.Fatal(err)
		}
		sameAllocation(t, "split-rack", orig, halved)
	}
}

// TestMetamorphicScale: scaling every leaf's curve by k (floors and
// widths ×k, slopes ÷k — same total performance surface, stretched
// k-fold in power) and the budget by k must scale every grant exactly
// ×k.
func TestMetamorphicScale(t *testing.T) {
	const k = 3
	build := func(scale int64) (*CurveSet, Spec) {
		b := newSynth(t)
		mk := func(id string, prio int, floorQ int64, segs []segment) Node {
			sc := make([]segment, len(segs))
			for i, s := range segs {
				sc[i] = segment{width: s.width * scale, slope: s.slope / float64(scale)}
			}
			return b.leaf(id, prio, curve{floorQ: floorQ * scale, segs: sc})
		}
		nodes1 := []Node{
			mk("a", 2, 10, []segment{{width: 8, slope: 4}, {width: 8, slope: 2}}),
			mk("b", 0, 6, []segment{{width: 12, slope: 3}}),
		}
		nodes2 := []Node{
			mk("c", 1, 8, []segment{{width: 10, slope: 3.5}, {width: 4, slope: 1}}),
		}
		spec := Spec{Racks: []Rack{
			{ID: "r1", Nodes: nodes1},
			{ID: "r2", Cap: watts(20 * scale), Nodes: nodes2},
		}}
		return b.cs, spec
	}
	cs1, spec1 := build(1)
	csk, speck := build(k)
	for rootQ := int64(0); rootQ <= 60; rootQ += 2 {
		r1, err := SolveCurves(cs1, spec1, watts(rootQ))
		if err != nil {
			t.Fatal(err)
		}
		rk, err := SolveCurves(csk, speck, watts(rootQ*k))
		if err != nil {
			t.Fatal(err)
		}
		g1, gk := grantsByNode(r1), grantsByNode(rk)
		if len(g1) != len(gk) {
			t.Fatalf("rootQ %d: kept %d vs %d leaves under ×%d scaling", rootQ, len(g1), len(gk), k)
		}
		for id, q := range g1 {
			if gk[id] != q*k {
				t.Errorf("rootQ %d: leaf %s granted %d, scaled solve granted %d (want %d)",
					rootQ, id, q, gk[id], q*k)
			}
		}
		if r1.GrantedQuanta*k != rk.GrantedQuanta {
			t.Errorf("rootQ %d: granted %d vs scaled %d", rootQ, r1.GrantedQuanta, rk.GrantedQuanta)
		}
	}
}
