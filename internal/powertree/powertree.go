// Package powertree carries the paper's cross-component coordination up
// the facility hierarchy: a budget tree (datacenter → rack → node →
// component) that divides one datacenter power bound fairly and
// performance-aware at every level.
//
// The division algorithm is water-filling in the FastCap style, driven
// by per-child marginal-performance curves derived from the existing
// coord/core models:
//
//   - every leaf (a node running one workload) gets a concave
//     piecewise-linear performance curve, sampled from COORD decisions
//     evaluated through the shared evalpool engine over the node's
//     productive envelope [threshold, max demand];
//   - an interior node's curve is the slope-ordered merge of its
//     children's segments (truncated at the rack cap), so dividing a
//     budget at the datacenter level and re-dividing each rack's share
//     among its nodes are one and the same greedy fill;
//   - the fill hands each marginal quantum of power to the child with
//     the highest marginal performance per watt, which is exactly
//     optimal for concave curves.
//
// All accounting is done in integer quanta of quantumWatts, so budget
// conservation at every interior node — children sum ≤ parent with the
// surplus accounted exactly — is an integer identity, not a
// floating-point approximation.
//
// Oversubscription is admission-controlled: the datacenter budget may
// be provisioned below the fleet's aggregate demand (Result reports the
// ratio), the fill never grants a leaf more than its measured demand
// (the excess is reclaimed for siblings), and when even the productive
// floors do not fit — a rack budget shock, an oversubscribed admission
// wave — leaves are shed in SLA-priority order, lowest priority first,
// keeping the shed set minimal (no shed leaf could be re-admitted).
package powertree

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/hw"
	"repro/internal/units"
	"repro/internal/workload"
)

// quantumWatts is the allocation granularity. Every budget, floor, and
// grant is rounded onto this grid; conservation checks compare integer
// quantum counts exactly.
const quantumWatts = 0.25

// maxLeaves bounds a tree's total node count, converting hostile specs
// into diagnostics instead of unbounded work.
const maxLeaves = 4096

// maxPriority bounds SLA priorities (higher = more protected).
const maxPriority = 1_000_000

// Node is one leaf of the tree: a compute node running one workload,
// with an SLA priority deciding who is shed first under pressure.
type Node struct {
	// ID names the node; unique across the whole tree.
	ID string
	// Platform is the node's hardware (CPU server or GPU card host).
	Platform hw.Platform
	// Workload is the benchmark model the node runs.
	Workload workload.Workload
	// Priority is the SLA priority: higher values are shed later. The
	// zero value is the lowest (best-effort) class.
	Priority int
}

// Rack is one interior node of the tree: a set of compute nodes behind
// an optional local power cap (busbar or PDU limit).
type Rack struct {
	// ID names the rack; unique across the tree.
	ID string
	// Cap is the rack-local power bound; 0 means uncapped (only the
	// datacenter budget constrains the rack).
	Cap units.Power
	// Nodes is the rack's machine list.
	Nodes []Node
}

// Spec is a full tree topology: the datacenter's racks.
type Spec struct {
	Racks []Rack
}

// Leaves counts the tree's nodes.
func (s *Spec) Leaves() int {
	n := 0
	for i := range s.Racks {
		n += len(s.Racks[i].Nodes)
	}
	return n
}

// idOK reports whether an identifier sticks to the spec-string-safe
// charset (letters, digits, '.', '_', '-', and '/' for generated node
// IDs).
func idOK(id string) bool {
	if id == "" {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '.' || c == '_' || c == '-' || c == '/':
		default:
			return false
		}
	}
	return true
}

// Validate checks the topology: non-empty unique identifiers, known
// platforms and workloads with matching kinds, finite caps, bounded
// priorities and size.
func (s *Spec) Validate() error {
	if len(s.Racks) == 0 {
		return fmt.Errorf("powertree: spec has no racks")
	}
	if n := s.Leaves(); n == 0 {
		return fmt.Errorf("powertree: spec has no nodes")
	} else if n > maxLeaves {
		return fmt.Errorf("powertree: %d nodes exceeds the %d-node cap", n, maxLeaves)
	}
	rackIDs := map[string]bool{}
	nodeIDs := map[string]bool{}
	for ri := range s.Racks {
		r := &s.Racks[ri]
		if !idOK(r.ID) || strings.ContainsRune(r.ID, '/') {
			return fmt.Errorf("powertree: rack %d: bad ID %q (letters, digits, '.', '_', '-')", ri, r.ID)
		}
		if rackIDs[r.ID] {
			return fmt.Errorf("powertree: duplicate rack ID %q", r.ID)
		}
		rackIDs[r.ID] = true
		if math.IsNaN(r.Cap.Watts()) || math.IsInf(r.Cap.Watts(), 0) || r.Cap < 0 {
			return fmt.Errorf("powertree: rack %q: cap %v is not a non-negative finite power", r.ID, r.Cap)
		}
		if len(r.Nodes) == 0 {
			return fmt.Errorf("powertree: rack %q has no nodes", r.ID)
		}
		for ni := range r.Nodes {
			n := &r.Nodes[ni]
			if !idOK(n.ID) {
				return fmt.Errorf("powertree: rack %q node %d: bad ID %q", r.ID, ni, n.ID)
			}
			if nodeIDs[n.ID] {
				return fmt.Errorf("powertree: duplicate node ID %q", n.ID)
			}
			nodeIDs[n.ID] = true
			if err := n.Platform.Validate(); err != nil {
				return fmt.Errorf("powertree: node %q: %w", n.ID, err)
			}
			if _, err := workload.ByName(n.Workload.Name); err != nil {
				return fmt.Errorf("powertree: node %q: %w", n.ID, err)
			}
			if n.Workload.Kind != n.Platform.Kind {
				return fmt.Errorf("powertree: node %q: workload %q is a %s workload but platform %q is a %s platform",
					n.ID, n.Workload.Name, n.Workload.Kind, n.Platform.Name, n.Platform.Kind)
			}
			if n.Priority < 0 || n.Priority > maxPriority {
				return fmt.Errorf("powertree: node %q: priority %d outside [0, %d]", n.ID, n.Priority, maxPriority)
			}
		}
	}
	return nil
}

// toQuanta floors a power onto the quantum grid (a budget of b watts
// buys floor(b/quantum) whole quanta).
func toQuanta(p units.Power) int64 {
	return int64(math.Floor(p.Watts()/quantumWatts + 1e-9))
}

// ceilQuanta rounds a power up onto the quantum grid (a floor of f
// watts needs ceil(f/quantum) quanta to be met).
func ceilQuanta(p units.Power) int64 {
	return int64(math.Ceil(p.Watts()/quantumWatts - 1e-9))
}

// watts converts a quantum count back to power; exact, because the
// quantum is a dyadic fraction of a watt.
func watts(q int64) units.Power {
	return units.Power(float64(q) * quantumWatts)
}
