package powertree

import (
	"strings"
	"testing"

	"repro/internal/evalpool"
)

// TestGoldenSerialParallel pins byte-identity of full tree solves
// across engine configurations: curves built and solved through a
// parallel, memoized engine (cold and warm) must render exactly the
// bytes of the serial, uncached reference. This is the same
// engine-identical discipline the invariant harness enforces for the
// single-node artifacts, extended to the tree.
func TestGoldenSerialParallel(t *testing.T) {
	spec, err := ParseTreeSpec(heteroSpecString)
	if err != nil {
		t.Fatal(err)
	}

	render := func(e *evalpool.Engine) string {
		prev := evalpool.SetDefault(e)
		defer evalpool.SetDefault(prev)
		cs, err := BuildCurves(spec)
		if err != nil {
			t.Fatalf("BuildCurves: %v", err)
		}
		var b strings.Builder
		_, maxQ := specFloors(t, spec, cs)
		for _, budget := range budgetGrid(maxQ, 9) {
			res, err := SolveCurves(cs, spec, budget)
			if err != nil {
				t.Fatalf("SolveCurves(%v): %v", budget, err)
			}
			b.WriteString(res.String())
		}
		return b.String()
	}

	serial := render(evalpool.Serial())
	par := evalpool.New(evalpool.Options{})
	cold := render(par)
	warm := render(par)
	if cold != serial {
		t.Errorf("cold parallel solve diverges from serial reference:\nserial:\n%s\nparallel:\n%s",
			serial, cold)
	}
	if warm != serial {
		t.Errorf("warm (memoized) parallel solve diverges from serial reference")
	}
	if serial == "" {
		t.Fatal("empty render")
	}
}

// TestResultStringDeterministic pins that two identical solves render
// identical bytes (map iteration must never leak into the output).
func TestResultStringDeterministic(t *testing.T) {
	spec, cs := hetero(t)
	_, maxQ := specFloors(t, spec, cs)
	for _, b := range budgetGrid(maxQ, 5) {
		r1, err := SolveCurves(cs, spec, b)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := SolveCurves(cs, spec, b)
		if err != nil {
			t.Fatal(err)
		}
		if r1.String() != r2.String() {
			t.Errorf("budget %v: repeated solve rendered different bytes", b)
		}
	}
}
