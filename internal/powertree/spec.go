package powertree

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/hw"
	"repro/internal/units"
	"repro/internal/workload"
)

// maxNodeCount bounds one node group's '*count' multiplier.
const maxNodeCount = 1024

// ParseTreeSpec parses a compact tree-topology string:
//
//	spec := rack (';' rack)*
//	rack := id ['@' capWatts] '=' group (',' group)*
//	group := platform '/' workload ['*' count] ['^' priority]
//
// For example, a 2-rack heterogeneous datacenter:
//
//	"rackA=ivybridge/stream*2,haswell/dgemm^1;rackB@450=titanxp/sgemm^1,titanv/gpustream"
//
// Each group expands to count nodes (default 1) at the given SLA
// priority (default 0, the best-effort class); node IDs are generated
// positionally as "<rack>/<index>". Unknown platforms or workloads,
// kind mismatches, duplicate rack IDs, and malformed numbers are
// errors. ParseTreeSpec(s.String()) reproduces s exactly for any spec
// this parser produced.
func ParseTreeSpec(s string) (Spec, error) {
	var sp Spec
	s = strings.TrimSpace(s)
	if s == "" {
		return Spec{}, fmt.Errorf("powertree: empty tree spec")
	}
	for _, rackPart := range strings.Split(s, ";") {
		rackPart = strings.TrimSpace(rackPart)
		if rackPart == "" {
			return Spec{}, fmt.Errorf("powertree: empty rack entry in spec %q", s)
		}
		head, nodesPart, ok := strings.Cut(rackPart, "=")
		if !ok {
			return Spec{}, fmt.Errorf("powertree: rack entry %q is not id[@cap]=nodes", rackPart)
		}
		head = strings.TrimSpace(head)
		rack := Rack{}
		if id, capStr, hasCap := strings.Cut(head, "@"); hasCap {
			rack.ID = strings.TrimSpace(id)
			capW, err := strconv.ParseFloat(strings.TrimSpace(capStr), 64)
			if err != nil {
				return Spec{}, fmt.Errorf("powertree: rack %q: bad cap %q: %v", rack.ID, capStr, err)
			}
			if capW <= 0 {
				return Spec{}, fmt.Errorf("powertree: rack %q: cap must be positive, got %g", rack.ID, capW)
			}
			rack.Cap = units.Power(capW)
		} else {
			rack.ID = head
		}
		for _, groupPart := range strings.Split(nodesPart, ",") {
			groupPart = strings.TrimSpace(groupPart)
			if groupPart == "" {
				return Spec{}, fmt.Errorf("powertree: rack %q: empty node entry", rack.ID)
			}
			nodes, err := parseGroup(rack.ID, len(rack.Nodes), groupPart)
			if err != nil {
				return Spec{}, err
			}
			rack.Nodes = append(rack.Nodes, nodes...)
		}
		sp.Racks = append(sp.Racks, rack)
	}
	if err := sp.Validate(); err != nil {
		return Spec{}, err
	}
	return sp, nil
}

// parseGroup expands one "platform/workload[*count][^priority]" entry
// into nodes with positional IDs starting at index base.
func parseGroup(rackID string, base int, s string) ([]Node, error) {
	prio := 0
	if body, prioStr, ok := strings.Cut(s, "^"); ok {
		v, err := strconv.Atoi(strings.TrimSpace(prioStr))
		if err != nil {
			return nil, fmt.Errorf("powertree: rack %q: bad priority %q: %v", rackID, prioStr, err)
		}
		prio = v
		s = body
	}
	count := 1
	if body, countStr, ok := strings.Cut(s, "*"); ok {
		v, err := strconv.Atoi(strings.TrimSpace(countStr))
		if err != nil {
			return nil, fmt.Errorf("powertree: rack %q: bad count %q: %v", rackID, countStr, err)
		}
		if v < 1 || v > maxNodeCount {
			return nil, fmt.Errorf("powertree: rack %q: count %d outside [1, %d]", rackID, v, maxNodeCount)
		}
		count = v
		s = body
	}
	platName, wlName, ok := strings.Cut(s, "/")
	if !ok {
		return nil, fmt.Errorf("powertree: rack %q: node entry %q is not platform/workload", rackID, s)
	}
	p, err := hw.PlatformByName(strings.TrimSpace(platName))
	if err != nil {
		return nil, fmt.Errorf("powertree: rack %q: %w", rackID, err)
	}
	w, err := workload.ByName(strings.TrimSpace(wlName))
	if err != nil {
		return nil, fmt.Errorf("powertree: rack %q: %w", rackID, err)
	}
	out := make([]Node, count)
	for i := range out {
		out[i] = Node{
			ID:       fmt.Sprintf("%s/%d", rackID, base+i),
			Platform: p,
			Workload: w,
			Priority: prio,
		}
	}
	return out, nil
}

// String renders the spec canonically: racks in order, consecutive
// nodes with identical (platform, workload, priority) compressed into
// one '*count' group. ParseTreeSpec(s.String()) reproduces s exactly
// when s came from ParseTreeSpec (node IDs are positional).
func (s Spec) String() string {
	var b strings.Builder
	for ri, r := range s.Racks {
		if ri > 0 {
			b.WriteByte(';')
		}
		b.WriteString(r.ID)
		if r.Cap > 0 {
			b.WriteByte('@')
			b.WriteString(strconv.FormatFloat(r.Cap.Watts(), 'g', -1, 64))
		}
		b.WriteByte('=')
		for ni := 0; ni < len(r.Nodes); {
			n := r.Nodes[ni]
			run := 1
			for ni+run < len(r.Nodes) && sameGroup(r.Nodes[ni+run], n) {
				run++
			}
			if ni > 0 {
				b.WriteByte(',')
			}
			b.WriteString(n.Platform.Name)
			b.WriteByte('/')
			b.WriteString(n.Workload.Name)
			if run > 1 {
				b.WriteByte('*')
				b.WriteString(strconv.Itoa(run))
			}
			if n.Priority != 0 {
				b.WriteByte('^')
				b.WriteString(strconv.Itoa(n.Priority))
			}
			ni += run
		}
	}
	return b.String()
}

func sameGroup(a, b Node) bool {
	return a.Platform.Name == b.Platform.Name &&
		a.Workload.Name == b.Workload.Name &&
		a.Priority == b.Priority
}
