package powertree

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/coord"
	"repro/internal/core"
	"repro/internal/units"
)

// Grant is one leaf's share of the solved tree: the power grant in
// quanta and watts, the component split COORD makes at that grant, and
// the modeled performance.
type Grant struct {
	Node     string
	Rack     string
	Platform string
	Workload string
	Priority int
	// Quanta is the grant in integer quanta; Budget is the same grant
	// in watts (exact: the quantum is dyadic). FloorQuanta is the
	// leaf's productive floor, always ≤ Quanta.
	Quanta      int64
	FloorQuanta int64
	Budget      units.Power
	// Alloc/Status/Surplus are COORD's component-level split of the
	// grant (zero for synthetic test curves).
	Alloc   core.Allocation
	Status  coord.Status
	Surplus units.Power
	// Perf is the concave-model performance at the grant.
	Perf float64
}

// ShedLeaf records one leaf dropped by admission control and why.
type ShedLeaf struct {
	Node     string
	Rack     string
	Priority int
	// FloorQuanta/Floor is the productive floor the budget could not
	// cover.
	FloorQuanta int64
	Floor       units.Power
	// Reason is "budget" (datacenter budget exhausted) or "rack-cap"
	// (the leaf's rack cap exhausted).
	Reason string
}

// RackResult aggregates one rack's share.
type RackResult struct {
	Rack string
	// Cap is the rack's local bound (0 = uncapped); CapQuanta is its
	// quantum count (0 when uncapped).
	Cap       units.Power
	CapQuanta int64
	// FloorQuanta is the sum of kept leaves' floors; Quanta/Budget the
	// rack's total grant.
	FloorQuanta int64
	Quanta      int64
	Budget      units.Power
	Kept        int
	Shed        int
}

// Result is a solved tree. Conservation holds exactly in quanta:
// GrantedQuanta + SurplusQuanta == Quanta, each rack's Quanta is the
// sum of its leaves' grants, and GrantedQuanta is the sum over racks.
type Result struct {
	// Budget is the datacenter budget; Quanta its quantum count.
	Budget units.Power
	Quanta int64
	// GrantedQuanta/Granted is the power handed down to leaves;
	// SurplusQuanta/Surplus is the root-level remainder.
	GrantedQuanta int64
	Granted       units.Power
	SurplusQuanta int64
	Surplus       units.Power
	// TotalPerf is the summed modeled performance of kept leaves.
	TotalPerf float64
	// Oversubscription is aggregate leaf demand over the budget
	// (0 when the budget is zero): > 1 means the fleet is provisioned
	// above the bound and relies on reclaim/shedding.
	Oversubscription float64
	// Grants lists kept leaves in spec order; Racks the per-rack
	// aggregates in spec order; Shed the dropped leaves in shed order
	// (lowest priority first).
	Grants []Grant
	Racks  []RackResult
	Shed   []ShedLeaf
}

// leafState is the solver's working record for one leaf.
type leafState struct {
	node   *Node
	rack   int
	curve  *curve
	kept   bool
	reason string
	takeQ  int64 // quanta granted beyond the floor
}

// fillItem is one curve segment in a fill queue. Ordering is (slope
// desc, leaf ID asc, segment index asc): ties never depend on spec
// position, so sibling permutation and rack splitting cannot change
// the fill.
type fillItem struct {
	leaf  int
	seg   int
	width int64
	slope float64
	id    string
}

func sortFill(items []fillItem) {
	sort.Slice(items, func(i, j int) bool {
		a, b := items[i], items[j]
		if a.slope != b.slope {
			return a.slope > b.slope
		}
		if a.id != b.id {
			return a.id < b.id
		}
		return a.seg < b.seg
	})
}

// Solve builds the spec's curves and divides the datacenter budget down
// the tree. Use BuildCurves + SolveCurves to amortize curve
// construction across many budgets.
func Solve(spec Spec, budget units.Power) (*Result, error) {
	cs, err := BuildCurves(spec)
	if err != nil {
		return nil, err
	}
	return SolveCurves(cs, spec, budget)
}

// SolveCurves divides budget down the tree using prebuilt curves. The
// algorithm is water-filling per FastCap, run as one global greedy fill
// over slope-sorted marginal segments:
//
//  1. Shedding (admission control): walk leaves in (priority desc,
//     node ID asc) order and keep each whose productive floor still
//     fits under both the remaining datacenter budget and its rack's
//     remaining cap. The shed set is minimal — no shed leaf's floor
//     fits in what is left.
//  2. Rack truncation: each rack contributes its kept leaves' marginal
//     segments, slope-sorted and truncated at cap − rackFloor, so a
//     rack-capped watt is never granted.
//  3. Global fill: merge all racks' segments by the same order and
//     spend the budget beyond the kept floors greedily. For concave
//     curves the greedy fill is exactly optimal, and because the merge
//     preserves each leaf's own segment order, every leaf's taken set
//     is a prefix of its curve.
//
// All arithmetic is in integer quanta; the returned Result conserves
// the budget exactly at every interior node.
func SolveCurves(cs *CurveSet, spec Spec, budget units.Power) (*Result, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	w := budget.Watts()
	if math.IsNaN(w) || math.IsInf(w, 0) || w < 0 {
		return nil, fmt.Errorf("powertree: budget %v is not a non-negative finite power", budget)
	}
	rootQ := toQuanta(budget)

	// Collect leaves and per-rack caps.
	var leaves []leafState
	capQ := make([]int64, len(spec.Racks))
	for ri := range spec.Racks {
		r := &spec.Racks[ri]
		if r.Cap > 0 {
			capQ[ri] = toQuanta(r.Cap)
		} else {
			capQ[ri] = -1 // uncapped
		}
		for ni := range r.Nodes {
			c, err := cs.curveFor(&r.Nodes[ni])
			if err != nil {
				return nil, err
			}
			leaves = append(leaves, leafState{node: &r.Nodes[ni], rack: ri, curve: c})
		}
	}

	// Pass 1 — shedding. Priority desc, node ID asc; a leaf is kept iff
	// its floor fits in both remaining pools at its turn.
	order := make([]int, len(leaves))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := &leaves[order[i]], &leaves[order[j]]
		if a.node.Priority != b.node.Priority {
			return a.node.Priority > b.node.Priority
		}
		return a.node.ID < b.node.ID
	})
	keptGlobalQ := int64(0)
	keptRackQ := make([]int64, len(spec.Racks))
	var shedOrder []int
	for _, li := range order {
		l := &leaves[li]
		fq := l.curve.floorQ
		switch {
		case keptGlobalQ+fq > rootQ:
			l.reason = "budget"
		case capQ[l.rack] >= 0 && keptRackQ[l.rack]+fq > capQ[l.rack]:
			l.reason = "rack-cap"
		default:
			l.kept = true
			keptGlobalQ += fq
			keptRackQ[l.rack] += fq
		}
		if !l.kept {
			shedOrder = append(shedOrder, li)
		}
	}

	// Pass 2 — per-rack segment queues, truncated at the rack cap.
	var global []fillItem
	for ri := range spec.Racks {
		var items []fillItem
		for li := range leaves {
			l := &leaves[li]
			if l.rack != ri || !l.kept {
				continue
			}
			for si, s := range l.curve.segs {
				items = append(items, fillItem{leaf: li, seg: si, width: s.width, slope: s.slope, id: l.node.ID})
			}
		}
		sortFill(items)
		if capQ[ri] >= 0 {
			room := capQ[ri] - keptRackQ[ri]
			kept := items[:0]
			for _, it := range items {
				if room <= 0 {
					break
				}
				if it.width > room {
					it.width = room
				}
				room -= it.width
				kept = append(kept, it)
			}
			items = kept
		}
		global = append(global, items...)
	}

	// Pass 3 — global greedy fill of the budget beyond the floors.
	sortFill(global)
	spend := rootQ - keptGlobalQ
	for _, it := range global {
		if spend <= 0 {
			break
		}
		take := it.width
		if take > spend {
			take = spend
		}
		leaves[it.leaf].takeQ += take
		spend -= take
	}

	// Assemble the result in spec order.
	res := &Result{Budget: budget, Quanta: rootQ}
	res.Racks = make([]RackResult, len(spec.Racks))
	demandQ := int64(0)
	for ri := range spec.Racks {
		rr := &res.Racks[ri]
		rr.Rack = spec.Racks[ri].ID
		rr.Cap = spec.Racks[ri].Cap
		if capQ[ri] >= 0 {
			rr.CapQuanta = capQ[ri]
		}
	}
	for li := range leaves {
		l := &leaves[li]
		demandQ += l.curve.maxQ
		if !l.kept {
			continue
		}
		grantQ := l.curve.floorQ + l.takeQ
		g := Grant{
			Node:        l.node.ID,
			Rack:        spec.Racks[l.rack].ID,
			Platform:    l.node.Platform.Name,
			Workload:    l.node.Workload.Name,
			Priority:    l.node.Priority,
			Quanta:      grantQ,
			FloorQuanta: l.curve.floorQ,
			Budget:      watts(grantQ),
			Perf:        l.curve.perfAt(grantQ),
		}
		switch {
		case l.curve.cpuProf != nil:
			d := coord.CPU(*l.curve.cpuProf, g.Budget)
			g.Alloc, g.Status, g.Surplus = d.Alloc, d.Status, d.Surplus
		case l.curve.gpuProf != nil:
			d := coord.GPU(*l.curve.gpuProf, g.Budget, coord.DefaultGamma)
			g.Alloc, g.Status, g.Surplus = d.Alloc, d.Status, d.Surplus
		}
		res.Grants = append(res.Grants, g)
		rr := &res.Racks[l.rack]
		rr.FloorQuanta += l.curve.floorQ
		rr.Quanta += grantQ
		rr.Kept++
		res.GrantedQuanta += grantQ
	}
	// Sum performance in node-ID order so the float total is identical
	// under sibling permutation (addition order independence).
	perfOrder := make([]int, len(res.Grants))
	for i := range perfOrder {
		perfOrder[i] = i
	}
	sort.Slice(perfOrder, func(i, j int) bool {
		return res.Grants[perfOrder[i]].Node < res.Grants[perfOrder[j]].Node
	})
	for _, gi := range perfOrder {
		res.TotalPerf += res.Grants[gi].Perf
	}
	for ri := range res.Racks {
		res.Racks[ri].Budget = watts(res.Racks[ri].Quanta)
	}
	for _, li := range shedOrder {
		l := &leaves[li]
		res.Shed = append(res.Shed, ShedLeaf{
			Node:        l.node.ID,
			Rack:        spec.Racks[l.rack].ID,
			Priority:    l.node.Priority,
			FloorQuanta: l.curve.floorQ,
			Floor:       watts(l.curve.floorQ),
			Reason:      l.reason,
		})
		res.Racks[l.rack].Shed++
	}
	res.Granted = watts(res.GrantedQuanta)
	res.SurplusQuanta = rootQ - res.GrantedQuanta
	res.Surplus = watts(res.SurplusQuanta)
	if rootQ > 0 {
		res.Oversubscription = float64(demandQ) / float64(rootQ)
	}
	return res, nil
}

// g formats a float canonically for golden comparisons.
func gfmt(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// String renders the result canonically and deterministically — the
// same solve always produces the same bytes, which the golden
// serial-vs-parallel identity tests compare directly.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "tree budget=%sW quanta=%d granted=%d surplus=%d perf=%s oversub=%s\n",
		gfmt(r.Budget.Watts()), r.Quanta, r.GrantedQuanta, r.SurplusQuanta,
		gfmt(r.TotalPerf), gfmt(r.Oversubscription))
	for i := range r.Racks {
		rr := &r.Racks[i]
		cap := "none"
		if rr.Cap > 0 {
			cap = gfmt(rr.Cap.Watts()) + "W"
		}
		fmt.Fprintf(&b, "rack %s cap=%s floorq=%d quanta=%d kept=%d shed=%d\n",
			rr.Rack, cap, rr.FloorQuanta, rr.Quanta, rr.Kept, rr.Shed)
	}
	for i := range r.Grants {
		g := &r.Grants[i]
		fmt.Fprintf(&b, "grant %s rack=%s prio=%d q=%d budget=%sW proc=%sW mem=%sW status=%s surplus=%sW perf=%s\n",
			g.Node, g.Rack, g.Priority, g.Quanta, gfmt(g.Budget.Watts()),
			gfmt(g.Alloc.Proc.Watts()), gfmt(g.Alloc.Mem.Watts()),
			g.Status, gfmt(g.Surplus.Watts()), gfmt(g.Perf))
	}
	for i := range r.Shed {
		s := &r.Shed[i]
		fmt.Fprintf(&b, "shed %s rack=%s prio=%d floorq=%d reason=%s\n",
			s.Node, s.Rack, s.Priority, s.FloorQuanta, s.Reason)
	}
	return b.String()
}
