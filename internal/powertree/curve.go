package powertree

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/coord"
	"repro/internal/evalpool"
	"repro/internal/hw"
	"repro/internal/profile"
	"repro/internal/units"
	"repro/internal/workload"
)

// curvePoints is the number of budget samples per leaf curve. The
// samples land on the quantum grid across the leaf's productive
// envelope; the concave upper envelope of the sampled (budget, perf)
// points is what the water-filling fill consumes.
const curvePoints = 25

// segment is one linear piece of a concave performance curve: width
// quanta at slope model-performance per quantum. A curve's segments
// have non-increasing slopes by construction.
type segment struct {
	width int64
	slope float64
}

// curve is a leaf's concave piecewise-linear performance model over its
// productive envelope [floorQ, maxQ] (in quanta). base is the model
// performance at the floor; segments carry the marginal gains beyond
// it. Synthetic curves (tests) leave the profile fields nil.
type curve struct {
	floorQ int64
	maxQ   int64
	base   float64
	segs   []segment

	kind    hw.Kind
	cpuProf *profile.CPUProfile
	gpuProf *profile.GPUProfile
	minCap  units.Power // GPU cap floor; 0 on CPU curves
}

// perfAt evaluates the model performance at a grant of q quanta
// (q ≥ floorQ; grants beyond maxQ add nothing).
func (c *curve) perfAt(q int64) float64 {
	perf := c.base
	left := q - c.floorQ
	for _, s := range c.segs {
		if left <= 0 {
			break
		}
		take := s.width
		if take > left {
			take = left
		}
		perf += float64(take) * s.slope
		left -= take
	}
	return perf
}

// CurveSet holds the built leaf curves of a tree, keyed by
// platform/workload (two leaves running the same pair share a curve).
type CurveSet struct {
	curves map[string]*curve
}

func pairKey(p hw.Platform, w workload.Workload) string {
	return p.Name + "/" + w.Name
}

// BuildCurves profiles every distinct (platform, workload) pair of the
// spec and samples its performance curve through the current default
// evaluation engine: COORD splits each sampled budget across the
// node's components and the shared evalpool engine simulates the
// result, exactly the pipeline the cluster scheduler admits jobs with.
// Curve construction is deterministic for a fixed engine configuration,
// and serial and parallel engines produce byte-identical curves (the
// engine-identity guarantee the golden tests pin).
func BuildCurves(spec Spec) (*CurveSet, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	cs := &CurveSet{curves: map[string]*curve{}}
	for ri := range spec.Racks {
		for ni := range spec.Racks[ri].Nodes {
			n := &spec.Racks[ri].Nodes[ni]
			key := pairKey(n.Platform, n.Workload)
			if cs.curves[key] != nil {
				continue
			}
			c, err := buildLeafCurve(n.Platform, n.Workload)
			if err != nil {
				return nil, fmt.Errorf("powertree: curve for %s: %w", key, err)
			}
			cs.curves[key] = c
		}
	}
	return cs, nil
}

// curveFor returns the curve for a node's pair.
func (cs *CurveSet) curveFor(n *Node) (*curve, error) {
	c := cs.curves[pairKey(n.Platform, n.Workload)]
	if c == nil {
		return nil, fmt.Errorf("powertree: no curve built for %s/%s", n.Platform.Name, n.Workload.Name)
	}
	return c, nil
}

// buildLeafCurve samples one (platform, workload) performance curve
// over its productive envelope and takes the concave upper envelope.
func buildLeafCurve(p hw.Platform, w workload.Workload) (*curve, error) {
	c := &curve{kind: p.Kind}
	var lo, hi units.Power
	switch p.Kind {
	case hw.KindCPU:
		prof, err := profile.ProfileCPU(p, w)
		if err != nil {
			return nil, err
		}
		c.cpuProf = &prof
		lo = prof.Critical.ProductiveThreshold()
		hi = prof.Critical.CPUMax + prof.Critical.MemMax
	case hw.KindGPU:
		prof, err := profile.ProfileGPU(p, w)
		if err != nil {
			return nil, err
		}
		c.gpuProf = &prof
		c.minCap = p.GPU.MinCap
		lo = p.GPU.MinCap
		hi = prof.TotMax
		if hi > p.GPU.MaxCap {
			hi = p.GPU.MaxCap
		}
		// The card cannot be capped below its floor; a demand under
		// MinCap still needs a MinCap grant (cluster envelope rule).
		if hi < lo {
			hi = lo
		}
	default:
		return nil, fmt.Errorf("unknown platform kind %v", p.Kind)
	}
	c.floorQ = ceilQuanta(lo)
	c.maxQ = toQuanta(hi)
	if c.maxQ < c.floorQ {
		c.maxQ = c.floorQ
	}

	qs := sampleQuanta(c.floorQ, c.maxQ)
	perfs, err := measurePerf(p, w, c, qs)
	if err != nil {
		return nil, err
	}
	c.base, c.segs = concaveEnvelope(qs, perfs)
	return c, nil
}

// sampleQuanta spreads curvePoints samples (deduplicated) across
// [floorQ, maxQ] on the quantum grid, endpoints included.
func sampleQuanta(floorQ, maxQ int64) []int64 {
	if maxQ <= floorQ {
		return []int64{floorQ}
	}
	span := maxQ - floorQ
	qs := make([]int64, 0, curvePoints)
	for i := 0; i < curvePoints; i++ {
		q := floorQ + span*int64(i)/int64(curvePoints-1)
		if len(qs) == 0 || q > qs[len(qs)-1] {
			qs = append(qs, q)
		}
	}
	return qs
}

// measurePerf evaluates the pair's simulated performance at each
// sampled grant: COORD splits the grant, the shared engine simulates
// the split — the same admission pipeline internal/cluster uses.
func measurePerf(p hw.Platform, w workload.Workload, c *curve, qs []int64) ([]float64, error) {
	reqs := make([]evalpool.Request, len(qs))
	rejected := make([]bool, len(qs))
	for i, q := range qs {
		grant := watts(q)
		switch p.Kind {
		case hw.KindCPU:
			d := coord.CPU(*c.cpuProf, grant)
			if d.Status == coord.StatusTooSmall {
				rejected[i] = true
				continue
			}
			reqs[i] = evalpool.Request{Op: evalpool.OpCPU, Proc: d.Alloc.Proc, Mem: d.Alloc.Mem}
		case hw.KindGPU:
			d := coord.GPU(*c.gpuProf, grant, coord.DefaultGamma)
			if d.Status == coord.StatusTooSmall {
				rejected[i] = true
				continue
			}
			cap := d.Alloc.Total()
			if cap < c.minCap {
				cap = c.minCap
			}
			reqs[i] = evalpool.Request{Op: evalpool.OpGPUMemPower, Proc: cap, Mem: d.Alloc.Mem}
		}
	}
	results, err := evalpool.Default().EvaluateAll(context.Background(),
		evalpool.Problem{Platform: p, Workload: w}, reqs)
	if err != nil {
		return nil, err
	}
	perfs := make([]float64, len(qs))
	for i := range qs {
		if !rejected[i] {
			perfs[i] = results[i].Perf
		}
	}
	return perfs, nil
}

// concaveEnvelope turns sampled (quanta, perf) points into a concave
// piecewise-linear curve: first a running maximum (more power never
// hurts the model — the perfmax-monotone discipline), then the upper
// concave hull, then per-gap segments with non-increasing slopes.
func concaveEnvelope(qs []int64, perfs []float64) (base float64, segs []segment) {
	pts := make([]struct {
		q int64
		p float64
	}, len(qs))
	run := perfs[0]
	for i := range qs {
		if perfs[i] > run {
			run = perfs[i]
		}
		pts[i].q, pts[i].p = qs[i], run
	}
	// Upper concave hull via a monotone chain over x-sorted points:
	// pop the middle point while the incoming slope does not decrease.
	hull := pts[:1]
	hull = append([]struct {
		q int64
		p float64
	}{}, pts[0])
	for _, pt := range pts[1:] {
		for len(hull) >= 2 {
			a, b := hull[len(hull)-2], hull[len(hull)-1]
			// slope(a,b) <= slope(b,pt) means b sags below the chord.
			if (b.p-a.p)*float64(pt.q-b.q) <= (pt.p-b.p)*float64(b.q-a.q) {
				hull = hull[:len(hull)-1]
				continue
			}
			break
		}
		hull = append(hull, pt)
	}
	base = hull[0].p
	for i := 1; i < len(hull); i++ {
		w := hull[i].q - hull[i-1].q
		if w <= 0 {
			continue
		}
		slope := (hull[i].p - hull[i-1].p) / float64(w)
		if slope < 0 {
			slope = 0
		}
		segs = append(segs, segment{width: w, slope: slope})
	}
	return base, segs
}

// Demand sums the spec's productive floors and maximum demands (in
// watts, quantum-aligned). A budget at or above floor sheds nothing; a
// budget at or above max leaves surplus at the root.
func (cs *CurveSet) Demand(spec Spec) (floor, max units.Power, err error) {
	var floorQ, maxQ int64
	for ri := range spec.Racks {
		for ni := range spec.Racks[ri].Nodes {
			c, err := cs.curveFor(&spec.Racks[ri].Nodes[ni])
			if err != nil {
				return 0, 0, err
			}
			floorQ += c.floorQ
			maxQ += c.maxQ
		}
	}
	return watts(floorQ), watts(maxQ), nil
}

// Pairs lists the built pair keys in sorted order (diagnostics).
func (cs *CurveSet) Pairs() []string {
	keys := make([]string, 0, len(cs.curves))
	for k := range cs.curves {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
