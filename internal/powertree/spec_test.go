package powertree

import (
	"strings"
	"testing"

	"repro/internal/units"
)

func TestParseTreeSpecRoundTrip(t *testing.T) {
	cases := []string{
		"rackA=ivybridge/stream*2,haswell/dgemm^1;rackB@450=titanxp/sgemm^1,titanv/gpustream",
		"r0=ivybridge/stream",
		"r0@120.5=haswell/lu*3^2",
		"a=ivybridge/ep;b=haswell/cg^5;c@999=titanv/hpcg*2",
	}
	for _, in := range cases {
		sp, err := ParseTreeSpec(in)
		if err != nil {
			t.Fatalf("ParseTreeSpec(%q): %v", in, err)
		}
		canon := sp.String()
		back, err := ParseTreeSpec(canon)
		if err != nil {
			t.Fatalf("reparse of canonical %q: %v", canon, err)
		}
		if back.String() != canon {
			t.Errorf("canonical form unstable: %q -> %q", canon, back.String())
		}
		if len(back.Racks) != len(sp.Racks) {
			t.Fatalf("rack count changed on round-trip of %q", in)
		}
		for ri := range sp.Racks {
			a, b := sp.Racks[ri], back.Racks[ri]
			if a.ID != b.ID || a.Cap != b.Cap || len(a.Nodes) != len(b.Nodes) {
				t.Errorf("rack %d changed on round-trip of %q", ri, in)
			}
			for ni := range a.Nodes {
				if a.Nodes[ni].ID != b.Nodes[ni].ID ||
					a.Nodes[ni].Platform.Name != b.Nodes[ni].Platform.Name ||
					a.Nodes[ni].Workload.Name != b.Nodes[ni].Workload.Name ||
					a.Nodes[ni].Priority != b.Nodes[ni].Priority {
					t.Errorf("node %d/%d changed on round-trip of %q", ri, ni, in)
				}
			}
		}
	}
}

func TestParseTreeSpecExpansion(t *testing.T) {
	sp, err := ParseTreeSpec("r=ivybridge/stream*3^2,haswell/dgemm")
	if err != nil {
		t.Fatal(err)
	}
	if got := sp.Leaves(); got != 4 {
		t.Fatalf("Leaves() = %d, want 4", got)
	}
	wantIDs := []string{"r/0", "r/1", "r/2", "r/3"}
	for i, id := range wantIDs {
		if sp.Racks[0].Nodes[i].ID != id {
			t.Errorf("node %d ID = %q, want %q", i, sp.Racks[0].Nodes[i].ID, id)
		}
	}
	for i := 0; i < 3; i++ {
		if sp.Racks[0].Nodes[i].Priority != 2 {
			t.Errorf("node %d priority = %d, want 2", i, sp.Racks[0].Nodes[i].Priority)
		}
	}
	if sp.Racks[0].Nodes[3].Priority != 0 {
		t.Errorf("node 3 priority = %d, want 0", sp.Racks[0].Nodes[3].Priority)
	}
}

func TestParseTreeSpecErrors(t *testing.T) {
	cases := []struct {
		in   string
		frag string
	}{
		{"", "empty"},
		{"r=", "empty node entry"},
		{"=ivybridge/stream", "bad id"},
		{"r=nosuch/stream", "platform"},
		{"r=ivybridge/nosuch", "workload"},
		{"r=ivybridge/sgemm", "workload"},           // kind mismatch: sgemm is GPU
		{"r=titanxp/stream", "workload"},            // kind mismatch: stream is CPU
		{"r@-5=ivybridge/stream", "cap"},            // negative cap
		{"r@x=ivybridge/stream", "cap"},             // malformed cap
		{"r=ivybridge/stream*0", "count"},           // zero count
		{"r=ivybridge/stream*9999", "count"},        // over maxNodeCount
		{"r=ivybridge/stream^-1", "priority"},       // negative priority
		{"r=ivybridge/stream;r=haswell/dgemm", "duplicate"},
		{"r=ivybridge/stream^x", "priority"},        // malformed priority
		{"r=ivybridge", "platform/workload"},        // missing slash
	}
	for _, c := range cases {
		_, err := ParseTreeSpec(c.in)
		if err == nil {
			t.Errorf("ParseTreeSpec(%q): want error containing %q, got nil", c.in, c.frag)
			continue
		}
		if !strings.Contains(strings.ToLower(err.Error()), c.frag) {
			t.Errorf("ParseTreeSpec(%q) = %v, want error containing %q", c.in, err, c.frag)
		}
	}
}

func TestValidateRejectsDuplicateNodeIDs(t *testing.T) {
	sp, err := ParseTreeSpec("a=ivybridge/stream;b=haswell/dgemm")
	if err != nil {
		t.Fatal(err)
	}
	sp.Racks[1].Nodes[0].ID = sp.Racks[0].Nodes[0].ID
	if err := sp.Validate(); err == nil || !strings.Contains(err.Error(), "duplicate node") {
		t.Fatalf("Validate() = %v, want duplicate node error", err)
	}
}

func TestQuantaHelpers(t *testing.T) {
	// 0.25 W quanta are dyadic: conversions must be exact.
	for _, q := range []int64{0, 1, 3, 4, 1000, 831} {
		if got := toQuanta(watts(q)); got != q {
			t.Errorf("toQuanta(watts(%d)) = %d", q, got)
		}
		if got := ceilQuanta(watts(q)); got != q {
			t.Errorf("ceilQuanta(watts(%d)) = %d", q, got)
		}
	}
	if got := toQuanta(units.Power(3.1)); got != 12 {
		t.Errorf("toQuanta(3.1W) = %d, want 12 (floor)", got)
	}
	if got := ceilQuanta(units.Power(3.1)); got != 13 {
		t.Errorf("ceilQuanta(3.1W) = %d, want 13 (ceil)", got)
	}
}
