package powertree

import (
	"sync"
	"testing"

	"repro/internal/hw"
	"repro/internal/units"
	"repro/internal/workload"
)

// heteroSpecString is the canonical 2-rack heterogeneous topology the
// issue's acceptance criteria name: IvyBridge + Haswell CPUs beside a
// capped GPU rack mixing two card generations.
const heteroSpecString = "cpu=ivybridge/stream*2^2,haswell/dgemm^1;gpu@450=titanxp/sgemm^1,titanv/gpustream"

var heteroOnce struct {
	sync.Once
	spec Spec
	cs   *CurveSet
	err  error
}

// hetero builds (once) the shared heterogeneous spec and its curves.
func hetero(t *testing.T) (Spec, *CurveSet) {
	t.Helper()
	heteroOnce.Do(func() {
		heteroOnce.spec, heteroOnce.err = ParseTreeSpec(heteroSpecString)
		if heteroOnce.err != nil {
			return
		}
		heteroOnce.cs, heteroOnce.err = BuildCurves(heteroOnce.spec)
	})
	if heteroOnce.err != nil {
		t.Fatalf("hetero fixture: %v", heteroOnce.err)
	}
	return heteroOnce.spec, heteroOnce.cs
}

// specFloors sums floor and max quanta over all leaves.
func specFloors(t *testing.T, spec Spec, cs *CurveSet) (floorQ, maxQ int64) {
	t.Helper()
	for ri := range spec.Racks {
		for ni := range spec.Racks[ri].Nodes {
			c, err := cs.curveFor(&spec.Racks[ri].Nodes[ni])
			if err != nil {
				t.Fatal(err)
			}
			floorQ += c.floorQ
			maxQ += c.maxQ
		}
	}
	return floorQ, maxQ
}

// budgetGrid spans 0 → beyond aggregate demand in n steps.
func budgetGrid(maxQ int64, n int) []units.Power {
	grid := make([]units.Power, 0, n)
	top := maxQ + maxQ/5 + 8
	for i := 0; i < n; i++ {
		grid = append(grid, watts(top*int64(i)/int64(n-1)))
	}
	return grid
}

// checkConservation asserts the integer conservation identities of one
// solved tree; shared with the invariant harness's logic.
func checkConservation(t *testing.T, spec Spec, cs *CurveSet, res *Result) {
	t.Helper()
	if res.GrantedQuanta+res.SurplusQuanta != res.Quanta {
		t.Errorf("budget %v: granted %d + surplus %d != root %d",
			res.Budget, res.GrantedQuanta, res.SurplusQuanta, res.Quanta)
	}
	if res.SurplusQuanta < 0 {
		t.Errorf("budget %v: negative surplus %d", res.Budget, res.SurplusQuanta)
	}
	rackSum := int64(0)
	perRack := map[string]int64{}
	for _, g := range res.Grants {
		perRack[g.Rack] += g.Quanta
	}
	for _, rr := range res.Racks {
		if perRack[rr.Rack] != rr.Quanta {
			t.Errorf("budget %v: rack %s quanta %d != leaf sum %d",
				res.Budget, rr.Rack, rr.Quanta, perRack[rr.Rack])
		}
		if rr.CapQuanta > 0 && rr.Quanta > rr.CapQuanta {
			t.Errorf("budget %v: rack %s granted %d over cap %d",
				res.Budget, rr.Rack, rr.Quanta, rr.CapQuanta)
		}
		rackSum += rr.Quanta
	}
	if rackSum != res.GrantedQuanta {
		t.Errorf("budget %v: rack sum %d != granted %d", res.Budget, rackSum, res.GrantedQuanta)
	}
	// Per-leaf bounds: every grant within [floor, max] of its curve.
	byID := map[string]*Node{}
	for ri := range spec.Racks {
		for ni := range spec.Racks[ri].Nodes {
			byID[spec.Racks[ri].Nodes[ni].ID] = &spec.Racks[ri].Nodes[ni]
		}
	}
	if len(res.Grants)+len(res.Shed) != len(byID) {
		t.Errorf("budget %v: %d grants + %d shed != %d leaves",
			res.Budget, len(res.Grants), len(res.Shed), len(byID))
	}
	for _, g := range res.Grants {
		c, err := cs.curveFor(byID[g.Node])
		if err != nil {
			t.Fatal(err)
		}
		if g.Quanta < c.floorQ || g.Quanta > c.maxQ {
			t.Errorf("budget %v: grant %s q=%d outside [%d, %d]",
				res.Budget, g.Node, g.Quanta, c.floorQ, c.maxQ)
		}
	}
}

// checkShedMinimal asserts no shed leaf could be re-admitted: its floor
// exceeds the remaining global headroom over kept floors, or its rack's
// remaining cap headroom.
func checkShedMinimal(t *testing.T, spec Spec, cs *CurveSet, res *Result) {
	t.Helper()
	keptFloorQ := int64(0)
	rackFloorQ := map[string]int64{}
	for _, rr := range res.Racks {
		keptFloorQ += rr.FloorQuanta
		rackFloorQ[rr.Rack] = rr.FloorQuanta
	}
	capQ := map[string]int64{}
	for _, rr := range res.Racks {
		if rr.Cap > 0 {
			capQ[rr.Rack] = rr.CapQuanta
		} else {
			capQ[rr.Rack] = -1
		}
	}
	for _, s := range res.Shed {
		overBudget := keptFloorQ+s.FloorQuanta > res.Quanta
		overRack := capQ[s.Rack] >= 0 && rackFloorQ[s.Rack]+s.FloorQuanta > capQ[s.Rack]
		if !overBudget && !overRack {
			t.Errorf("budget %v: shed leaf %s (floor %d) is re-admissible: kept floors %d, root %d, rack floors %d, cap %d",
				res.Budget, s.Node, s.FloorQuanta, keptFloorQ, res.Quanta, rackFloorQ[s.Rack], capQ[s.Rack])
		}
	}
}

func TestSolveConservationHetero(t *testing.T) {
	spec, cs := hetero(t)
	_, maxQ := specFloors(t, spec, cs)
	for _, b := range budgetGrid(maxQ, 33) {
		res, err := SolveCurves(cs, spec, b)
		if err != nil {
			t.Fatalf("SolveCurves(%v): %v", b, err)
		}
		checkConservation(t, spec, cs, res)
		checkShedMinimal(t, spec, cs, res)
	}
}

func TestSolveMonotoneHetero(t *testing.T) {
	spec, cs := hetero(t)
	floorQ, maxQ := specFloors(t, spec, cs)
	prevGranted := int64(-1)
	prevPerf := -1.0
	for _, b := range budgetGrid(maxQ, 65) {
		res, err := SolveCurves(cs, spec, b)
		if err != nil {
			t.Fatal(err)
		}
		if res.GrantedQuanta < prevGranted {
			t.Errorf("granted power not monotone: %d quanta after %d at budget %v",
				res.GrantedQuanta, prevGranted, b)
		}
		prevGranted = res.GrantedQuanta
		if res.Quanta >= floorQ {
			// Shed-free regime: total performance must be monotone.
			if len(res.Shed) != 0 {
				t.Errorf("budget %v covers all floors (%d >= %d) but shed %d leaves",
					b, res.Quanta, floorQ, len(res.Shed))
			}
			if res.TotalPerf < prevPerf {
				t.Errorf("perf not monotone in shed-free regime: %g after %g at budget %v",
					res.TotalPerf, prevPerf, b)
			}
			prevPerf = res.TotalPerf
		}
	}
}

func TestSolveShedPriorities(t *testing.T) {
	spec, cs := hetero(t)
	floorQ, _ := specFloors(t, spec, cs)
	// Just below the aggregate floor: someone must be shed, and every
	// budget-shed leaf must be blocked by its seniors' floors (greedy
	// admission order: priority desc, node ID asc) — never skipped in
	// favor of a junior.
	res, err := SolveCurves(cs, spec, watts(floorQ-1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Shed) == 0 {
		t.Fatal("budget below aggregate floor shed nothing")
	}
	for _, s := range res.Shed {
		if s.Reason != "budget" {
			continue
		}
		blockQ := int64(0)
		for _, g := range res.Grants {
			if g.Priority > s.Priority || (g.Priority == s.Priority && g.Node < s.Node) {
				blockQ += g.FloorQuanta
			}
		}
		if blockQ+s.FloorQuanta <= res.Quanta {
			t.Errorf("budget-shed leaf %s (prio %d, floor %d) fits after its seniors' floors (%d of %d quanta)",
				s.Node, s.Priority, s.FloorQuanta, blockQ, res.Quanta)
		}
	}
}

func TestSolveZeroBudget(t *testing.T) {
	spec, cs := hetero(t)
	res, err := SolveCurves(cs, spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Grants) != 0 || res.GrantedQuanta != 0 {
		t.Fatalf("zero budget granted %d quanta to %d leaves", res.GrantedQuanta, len(res.Grants))
	}
	if len(res.Shed) != spec.Leaves() {
		t.Fatalf("zero budget shed %d of %d leaves", len(res.Shed), spec.Leaves())
	}
	for _, s := range res.Shed {
		if s.Reason != "budget" {
			t.Errorf("zero-budget shed reason %q, want budget", s.Reason)
		}
	}
	if res.Oversubscription != 0 {
		t.Errorf("zero budget oversubscription = %g, want 0", res.Oversubscription)
	}
}

func TestSolveSurplus(t *testing.T) {
	spec, cs := hetero(t)
	_, maxQ := specFloors(t, spec, cs)
	// Note the GPU rack cap binds before leaf demand: compute the
	// capped capacity instead of raw demand.
	res, err := SolveCurves(cs, spec, watts(maxQ+400))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Shed) != 0 {
		t.Fatalf("abundant budget shed %d leaves", len(res.Shed))
	}
	if res.SurplusQuanta < 400 {
		t.Errorf("surplus %d quanta, want >= 400 (budget exceeds demand by 100W)", res.SurplusQuanta)
	}
	if res.Oversubscription >= 1 {
		t.Errorf("oversubscription %g at abundant budget, want < 1", res.Oversubscription)
	}
	// The capped rack must respect its cap even under abundance.
	for _, rr := range res.Racks {
		if rr.CapQuanta > 0 && rr.Quanta > rr.CapQuanta {
			t.Errorf("rack %s granted %d over cap %d", rr.Rack, rr.Quanta, rr.CapQuanta)
		}
	}
}

// synthBuilder hands out distinct (platform, workload) pairs so tests
// can attach a private hand-made curve to each leaf.
type synthBuilder struct {
	t    *testing.T
	cs   *CurveSet
	next int
}

var synthPairs = []string{"stream", "dgemm", "bt", "sp", "lu", "ep", "is", "cg", "ft", "mg", "sra"}

func newSynth(t *testing.T) *synthBuilder {
	return &synthBuilder{t: t, cs: &CurveSet{curves: map[string]*curve{}}}
}

func (b *synthBuilder) leaf(id string, prio int, c curve) Node {
	b.t.Helper()
	if b.next >= len(synthPairs) {
		b.t.Fatal("synthBuilder out of distinct workloads")
	}
	p, err := hw.PlatformByName("ivybridge")
	if err != nil {
		b.t.Fatal(err)
	}
	w, err := workload.ByName(synthPairs[b.next])
	if err != nil {
		b.t.Fatal(err)
	}
	b.next++
	c.kind = hw.KindCPU
	c.maxQ = c.floorQ
	for _, s := range c.segs {
		c.maxQ += s.width
	}
	b.cs.curves[pairKey(p, w)] = &c
	return Node{ID: id, Platform: p, Workload: w, Priority: prio}
}

func TestWaterFillingKnownAnswer(t *testing.T) {
	b := newSynth(t)
	// A: floor 10, 20 quanta at slope 2. B: floor 5, 20 quanta at
	// slope 1. Budget 40 → floors 15, spend 25 → A fills fully (20),
	// B gets the remaining 5.
	a := b.leaf("a", 0, curve{floorQ: 10, base: 1, segs: []segment{{width: 20, slope: 2}}})
	bb := b.leaf("b", 0, curve{floorQ: 5, base: 1, segs: []segment{{width: 20, slope: 1}}})
	spec := Spec{Racks: []Rack{{ID: "r", Nodes: []Node{a, bb}}}}
	res, err := SolveCurves(b.cs, spec, watts(40))
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]int64{}
	for _, g := range res.Grants {
		got[g.Node] = g.Quanta
	}
	if got["a"] != 30 || got["b"] != 10 {
		t.Fatalf("grants = %v, want a=30 b=10", got)
	}
	if res.SurplusQuanta != 0 {
		t.Errorf("surplus = %d, want 0", res.SurplusQuanta)
	}
	wantPerf := 1.0 + 20*2 + 1.0 + 5*1
	if res.TotalPerf != wantPerf {
		t.Errorf("perf = %g, want %g", res.TotalPerf, wantPerf)
	}
}

func TestRackCapTruncation(t *testing.T) {
	b := newSynth(t)
	// Rack capped at 18 quanta (4.5 W): floors 10+5, leaving 3 quanta
	// of headroom even though the budget could fill 40.
	a := b.leaf("a", 0, curve{floorQ: 10, segs: []segment{{width: 20, slope: 2}}})
	bb := b.leaf("b", 0, curve{floorQ: 5, segs: []segment{{width: 20, slope: 1}}})
	spec := Spec{Racks: []Rack{{ID: "r", Cap: watts(18), Nodes: []Node{a, bb}}}}
	res, err := SolveCurves(b.cs, spec, watts(40))
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]int64{}
	for _, g := range res.Grants {
		got[g.Node] = g.Quanta
	}
	// All 3 headroom quanta go to the steeper curve a.
	if got["a"] != 13 || got["b"] != 5 {
		t.Fatalf("grants = %v, want a=13 b=5", got)
	}
	if res.GrantedQuanta != 18 || res.SurplusQuanta != 22 {
		t.Errorf("granted/surplus = %d/%d, want 18/22", res.GrantedQuanta, res.SurplusQuanta)
	}
}

func TestGreedyMatchesBruteForce(t *testing.T) {
	b := newSynth(t)
	// Three small concave curves; exhaustive search over the quanta
	// grid must not beat the water-filling fill at any budget.
	nodes := []Node{
		b.leaf("a", 0, curve{floorQ: 3, base: 5, segs: []segment{{width: 4, slope: 3}, {width: 5, slope: 1}}}),
		b.leaf("b", 0, curve{floorQ: 2, base: 2, segs: []segment{{width: 6, slope: 2.5}, {width: 2, slope: 0.5}}}),
		b.leaf("c", 0, curve{floorQ: 4, base: 7, segs: []segment{{width: 3, slope: 2}}}),
	}
	spec := Spec{Racks: []Rack{{ID: "r", Nodes: nodes}}}
	curves := make([]*curve, len(nodes))
	for i := range nodes {
		c, err := b.cs.curveFor(&nodes[i])
		if err != nil {
			t.Fatal(err)
		}
		curves[i] = c
	}
	for rootQ := int64(9); rootQ <= 30; rootQ++ {
		res, err := SolveCurves(b.cs, spec, watts(rootQ))
		if err != nil {
			t.Fatal(err)
		}
		best := 0.0
		for qa := curves[0].floorQ; qa <= curves[0].maxQ; qa++ {
			for qb := curves[1].floorQ; qb <= curves[1].maxQ; qb++ {
				for qc := curves[2].floorQ; qc <= curves[2].maxQ; qc++ {
					if qa+qb+qc > rootQ {
						continue
					}
					perf := curves[0].perfAt(qa) + curves[1].perfAt(qb) + curves[2].perfAt(qc)
					if perf > best {
						best = perf
					}
				}
			}
		}
		if len(res.Shed) > 0 {
			continue // brute force above assumes all kept
		}
		if res.TotalPerf < best-1e-9 {
			t.Errorf("rootQ %d: greedy perf %g below brute-force optimum %g", rootQ, res.TotalPerf, best)
		}
	}
}

func TestSolveRejectsBadBudget(t *testing.T) {
	spec, cs := hetero(t)
	for _, b := range []units.Power{units.Power(-1), units.Power(nan()), units.Power(inf())} {
		if _, err := SolveCurves(cs, spec, b); err == nil {
			t.Errorf("SolveCurves(%v): want error", b)
		}
	}
}

func nan() float64 { return f64div(0, 0) }
func inf() float64 { return f64div(1, 0) }

// f64div defeats constant folding errors for 0/0 and 1/0.
func f64div(a, b float64) float64 { return a / b }

// TestPhasedMLCurveSampling threads the H100-class platforms and the
// phased ML-inference workloads through curve sampling and the
// water-fill: an H100/H200 serving rack must build concave curves with
// the settable cap floor as its quantum floor, conserve quanta across
// the budget grid, and grant monotonically increasing performance.
func TestPhasedMLCurveSampling(t *testing.T) {
	spec, err := ParseTreeSpec("serve=h100/llmserve*2^2,h100/llmbatch^1;chat@900=h200/llmchat*2")
	if err != nil {
		t.Fatalf("spec: %v", err)
	}
	cs, err := BuildCurves(spec)
	if err != nil {
		t.Fatalf("BuildCurves: %v", err)
	}

	// Each leaf curve must floor at the card's settable cap, not the
	// memory floor: an H100 cannot be capped below 200 W.
	for ri := range spec.Racks {
		for ni := range spec.Racks[ri].Nodes {
			n := &spec.Racks[ri].Nodes[ni]
			c, err := cs.curveFor(n)
			if err != nil {
				t.Fatal(err)
			}
			if got, want := c.floorQ, ceilQuanta(n.Platform.GPU.MinCap); got != want {
				t.Errorf("%s/%s floor %d quanta, want the cap floor %d",
					n.Platform.Name, n.Workload.Name, got, want)
			}
			if c.maxQ <= c.floorQ {
				t.Errorf("%s/%s has a degenerate curve (max %d <= floor %d)",
					n.Platform.Name, n.Workload.Name, c.maxQ, c.floorQ)
			}
			if !(c.perfAt(c.maxQ) > c.perfAt(c.floorQ)) {
				t.Errorf("%s/%s curve is flat: perf %g at floor, %g at max",
					n.Platform.Name, n.Workload.Name, c.perfAt(c.floorQ), c.perfAt(c.maxQ))
			}
		}
	}

	floorQ, maxQ := specFloors(t, spec, cs)
	prevPerf := -1.0
	for _, b := range budgetGrid(maxQ, 33) {
		res, err := SolveCurves(cs, spec, b)
		if err != nil {
			t.Fatalf("SolveCurves(%v): %v", b, err)
		}
		checkConservation(t, spec, cs, res)
		if res.Quanta >= floorQ {
			if len(res.Shed) != 0 {
				t.Errorf("budget %v covers all floors but shed %d leaves", b, len(res.Shed))
			}
			if res.TotalPerf < prevPerf {
				t.Errorf("perf not monotone: %g after %g at budget %v", res.TotalPerf, prevPerf, b)
			}
			prevPerf = res.TotalPerf
		}
	}
	if !(prevPerf > 0) {
		t.Fatalf("phased ML tree never produced positive performance (last %g)", prevPerf)
	}
}
