package powertree

import (
	"testing"
)

// FuzzTreeSpec fuzzes the tree-topology parser with the same
// round-trip discipline as faults.FuzzParseSpec and
// des.FuzzParseArrivalSpec: anything that parses must validate, render
// canonically, and reparse to an identical spec.
func FuzzTreeSpec(f *testing.F) {
	seeds := []string{
		"rackA=ivybridge/stream*2,haswell/dgemm^1;rackB@450=titanxp/sgemm^1,titanv/gpustream",
		"r0=ivybridge/stream",
		"r0@120.5=haswell/lu*3^2",
		"a=ivybridge/ep;b=haswell/cg^5",
		"",
		"r=",
		"r=nosuch/stream",
		"r=ivybridge/sgemm",
		"r@-1=ivybridge/stream",
		"r=ivybridge/stream*0",
		"r=ivybridge/stream^-3",
		"r;r",
		"@=;@=",
		"r=ivybridge/stream*99999",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, in string) {
		sp, err := ParseTreeSpec(in)
		if err != nil {
			return
		}
		if err := sp.Validate(); err != nil {
			t.Fatalf("parsed spec fails Validate: %v (input %q)", err, in)
		}
		canon := sp.String()
		back, err := ParseTreeSpec(canon)
		if err != nil {
			t.Fatalf("canonical form %q does not reparse: %v (input %q)", canon, err, in)
		}
		if back.String() != canon {
			t.Fatalf("canonical form unstable: %q -> %q (input %q)", canon, back.String(), in)
		}
		if back.Leaves() != sp.Leaves() {
			t.Fatalf("leaf count changed on round-trip: %d -> %d (input %q)",
				sp.Leaves(), back.Leaves(), in)
		}
		for ri := range sp.Racks {
			a, b := sp.Racks[ri], back.Racks[ri]
			if a.ID != b.ID || a.Cap != b.Cap || len(a.Nodes) != len(b.Nodes) {
				t.Fatalf("rack %d changed on round-trip (input %q)", ri, in)
			}
			for ni := range a.Nodes {
				an, bn := a.Nodes[ni], b.Nodes[ni]
				if an.ID != bn.ID || an.Platform.Name != bn.Platform.Name ||
					an.Workload.Name != bn.Workload.Name || an.Priority != bn.Priority {
					t.Fatalf("node %d/%d changed on round-trip (input %q)", ri, ni, in)
				}
			}
		}
	})
}
