package powertree

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/faults"
	"repro/internal/units"
)

// ApplyShock returns a copy of the spec with rackID's effective cap
// reduced by frac (0 ≤ frac < 1). An uncapped rack's base is its
// aggregate leaf demand (the cap that would not bind), so a shock
// always produces a binding constraint proportional to the rack's
// size. The curves are needed to price an uncapped rack's demand.
func ApplyShock(cs *CurveSet, spec Spec, rackID string, frac float64) (Spec, error) {
	if math.IsNaN(frac) || frac < 0 || frac >= 1 {
		return Spec{}, fmt.Errorf("powertree: shock fraction %g outside [0, 1)", frac)
	}
	out := Spec{Racks: make([]Rack, len(spec.Racks))}
	found := false
	for ri := range spec.Racks {
		r := spec.Racks[ri]
		r.Nodes = append([]Node(nil), r.Nodes...)
		if r.ID == rackID {
			found = true
			base := r.Cap
			if base <= 0 {
				demandQ := int64(0)
				for ni := range r.Nodes {
					c, err := cs.curveFor(&r.Nodes[ni])
					if err != nil {
						return Spec{}, err
					}
					demandQ += c.maxQ
				}
				base = watts(demandQ)
			}
			r.Cap = units.Power(base.Watts() * (1 - frac))
		}
		out.Racks[ri] = r
	}
	if !found {
		return Spec{}, fmt.Errorf("powertree: shock target rack %q not in spec", rackID)
	}
	return out, nil
}

// ShockStep is one edge of a shocked-budget timeline: the tree
// re-solved at time At under Budget.
type ShockStep struct {
	// At is the edge time; Duration is how long this budget holds
	// (until the next edge, or the horizon for the last one).
	At       float64
	Duration float64
	// Budget is the effective datacenter budget over the step;
	// Shocked marks the depressed steps.
	Budget  units.Power
	Shocked bool
	// Granted/Surplus/Shed/TotalPerf summarize the re-solve.
	Granted   units.Power
	Surplus   units.Power
	Shed      int
	TotalPerf float64
}

// ShockPlan drives a faults budget-shock schedule down the tree: each
// shock edge depresses the datacenter budget to budget×(1−frac) and
// the tree is re-solved; at the shock's end the full budget is
// restored and re-solved again. The schedule is the injector's
// deterministic seeded one, so the same seed always yields the same
// plan. A nil injector (or a spec without shocks) yields the single
// unshocked step.
func ShockPlan(cs *CurveSet, spec Spec, budget units.Power, inj *faults.Injector, horizon float64) ([]ShockStep, error) {
	type edge struct {
		at      float64
		budget  units.Power
		shocked bool
	}
	edges := []edge{{at: 0, budget: budget}}
	if inj != nil {
		for _, sh := range inj.BudgetShocks(horizon) {
			depressed := units.Power(budget.Watts() * (1 - sh.Frac))
			if depressed < 0 {
				depressed = 0
			}
			edges = append(edges, edge{at: sh.At, budget: depressed, shocked: true})
			if end := sh.At + sh.Duration; end < horizon {
				edges = append(edges, edge{at: end, budget: budget})
			}
		}
	}
	sort.SliceStable(edges, func(i, j int) bool { return edges[i].at < edges[j].at })
	steps := make([]ShockStep, 0, len(edges))
	for i, e := range edges {
		res, err := SolveCurves(cs, spec, e.budget)
		if err != nil {
			return nil, err
		}
		dur := horizon - e.at
		if i+1 < len(edges) {
			dur = edges[i+1].at - e.at
		}
		steps = append(steps, ShockStep{
			At:        e.at,
			Duration:  dur,
			Budget:    e.budget,
			Shocked:   e.shocked,
			Granted:   res.Granted,
			Surplus:   res.Surplus,
			Shed:      len(res.Shed),
			TotalPerf: res.TotalPerf,
		})
	}
	return steps, nil
}
