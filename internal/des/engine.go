package des

import (
	"fmt"
	"math"

	"repro/internal/cluster"
	"repro/internal/faults"
	"repro/internal/units"
	"repro/internal/workload"
)

// Mode selects the simulation engine.
type Mode int

// Engines.
const (
	// ModeExact mirrors the cluster round loop operation for operation.
	// A run whose jobs all arrive at t=0 is byte-identical to
	// Scheduler.RunQueueOpts / RunQueueFaulty. O(active) per event.
	ModeExact Mode = iota
	// ModeFast indexes completions in a min-heap keyed by absolute
	// virtual time and caches admission decisions; built for 10k-node,
	// million-job traces with streaming stats. Deterministic, but not
	// byte-identical to the round loop.
	ModeFast
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeExact:
		return "exact"
	case ModeFast:
		return "fast"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// ParseMode parses "exact" or "fast".
func ParseMode(s string) (Mode, error) {
	switch s {
	case "exact":
		return ModeExact, nil
	case "fast":
		return ModeFast, nil
	default:
		return 0, fmt.Errorf("des: unknown mode %q (valid: exact fast)", s)
	}
}

// Default engine bounds. Exact mode mirrors the round loop's event cap;
// fast mode gets headroom for million-job traces.
const (
	defaultMaxEventsExact = 1_000_000
	defaultMaxEventsFast  = 1 << 25
	defaultMaxJobs        = 1 << 22
)

// Config describes one simulation run.
type Config struct {
	// Sched is the cluster under simulation (budget + nodes).
	Sched *cluster.Scheduler
	// Workload is the job workload; every generated job runs it.
	Workload workload.Workload
	// Policy and Discipline select the admission semantics, exactly as
	// in the round-loop engines.
	Policy     cluster.SplitPolicy
	Discipline cluster.Discipline

	// Jobs arrive round-synchronously at t=0 ahead of any generated
	// traffic — the round-loop compatibility input.
	Jobs []cluster.TimedJob
	// Arrivals seeds the open-arrival process over [0, Horizon).
	Arrivals ArrivalSpec
	// Seed drives the arrival process. Same seed, same traffic.
	Seed uint64
	// Horizon closes the arrival window, in simulated seconds. The run
	// itself continues until every admitted job completes.
	Horizon float64

	// Injector, when non-nil, disturbs the run with node outages and
	// budget shocks on its deterministic schedule (see internal/faults).
	Injector *faults.Injector

	// Mode selects the engine; the zero value is ModeExact.
	Mode Mode
	// MaxEvents bounds the event loop (0 = per-mode default). Exceeding
	// it is an error, converting hostile configs into diagnostics
	// instead of unbounded spins.
	MaxEvents int
	// MaxJobs bounds the generated arrival trace (0 = default 4Mi).
	MaxJobs int
}

// Result summarizes one run with streaming aggregates.
type Result struct {
	Mode Mode
	// Arrived counts jobs entering the system (t=0 jobs + generated).
	Arrived int
	// Completed counts jobs that ran to completion.
	Completed int
	// EngineEvents counts discrete events processed (arrivals,
	// completions, outage transitions, shock edges).
	EngineEvents int
	// Makespan is the completion time of the last job, in simulated
	// seconds.
	Makespan float64
	// Energy is the total cluster energy over the run.
	Energy units.Energy
	// AvgWait and AvgTurnaround are per-completed-job means measured
	// from each job's arrival time. MaxSlowdown is the worst ratio of
	// turnaround to time-in-service.
	AvgWait, AvgTurnaround, MaxSlowdown float64
	// Faults carries the fault accounting (zero without an injector).
	Faults cluster.FaultSummary
	// TraceHash fingerprints the full event trace (FNV-1a over every
	// event's time bits, kind, job and node). Two runs of the same
	// config are byte-reproducible iff their hashes match.
	TraceHash uint64
	// Queue is the full round-loop-compatible per-job result. Exact
	// mode only; nil in fast mode (per-job maps don't scale).
	Queue *cluster.FaultyQueueResult
}

// Run executes the configured simulation.
func Run(cfg Config) (Result, error) {
	if cfg.Sched == nil {
		return Result{}, fmt.Errorf("des: nil scheduler")
	}
	if len(cfg.Sched.Nodes) == 0 {
		return Result{}, fmt.Errorf("des: scheduler has no nodes")
	}
	if err := cfg.Arrivals.Validate(); err != nil {
		return Result{}, err
	}
	if !cfg.Arrivals.Zero() && cfg.Horizon <= 0 {
		return Result{}, fmt.Errorf("des: arrival spec %q needs a positive horizon", cfg.Arrivals)
	}
	if cfg.MaxJobs == 0 {
		cfg.MaxJobs = defaultMaxJobs
	}
	if cfg.MaxEvents == 0 {
		if cfg.Mode == ModeFast {
			cfg.MaxEvents = defaultMaxEventsFast
		} else {
			cfg.MaxEvents = defaultMaxEventsExact
		}
	}
	arrivals := generateArrivals(cfg.Arrivals, cfg.Seed, cfg.Horizon, cfg.MaxJobs)
	switch cfg.Mode {
	case ModeExact:
		return runExact(cfg, arrivals)
	case ModeFast:
		return runFast(cfg, arrivals)
	default:
		return Result{}, fmt.Errorf("des: unknown mode %v", cfg.Mode)
	}
}

// Trace-event kinds, one byte each, folded into the trace hash.
const (
	evArrive   = 'a'
	evStart    = 's'
	evFinish   = 'f'
	evSuspend  = 'v'
	evNodeFail = 'F'
	evNodeUp   = 'R'
	evShock    = 'S'
	evRestore  = 'r'
)

// traceHash accumulates an FNV-1a fingerprint of the event stream. Jobs
// and nodes are identified by dense indices so both engines hash without
// allocating; -1 marks "no job"/"no node".
type traceHash struct {
	h uint64
}

func newTraceHash() traceHash {
	return traceHash{h: 0xCBF29CE484222325}
}

func (t *traceHash) word(v uint64) {
	for i := 0; i < 8; i++ {
		t.h ^= v & 0xFF
		t.h *= 0x100000001B3
		v >>= 8
	}
}

func (t *traceHash) event(at float64, kind byte, job, node int32) {
	t.word(math.Float64bits(at))
	t.h ^= uint64(kind)
	t.h *= 0x100000001B3
	t.word(uint64(uint32(job)))
	t.word(uint64(uint32(node)))
}

// agg holds the streaming per-completion statistics both engines share.
type agg struct {
	completed          int
	waitSum, turnSum   float64
	maxSlowdown        float64
}

// finish folds one job completion into the aggregates.
func (a *agg) finish(arrival, firstStart, end float64) {
	a.completed++
	a.waitSum += firstStart - arrival
	a.turnSum += end - arrival
	if run := end - firstStart; run > 0 {
		if s := (end - arrival) / run; s > a.maxSlowdown {
			a.maxSlowdown = s
		}
	}
}

// fill writes the aggregates into a Result.
func (a *agg) fill(res *Result) {
	res.Completed = a.completed
	if a.completed > 0 {
		res.AvgWait = a.waitSum / float64(a.completed)
		res.AvgTurnaround = a.turnSum / float64(a.completed)
	}
	res.MaxSlowdown = a.maxSlowdown
	if res.MaxSlowdown < 1 && a.completed > 0 {
		res.MaxSlowdown = 1
	}
}

// faultHorizon mirrors Scheduler.faultHorizon: total work at a
// conservative 1e9 units/s, padded 4x, floored at one hour. The exact
// engine must reproduce the round loop's fault schedules, so the
// formula — including the accumulation order — matches failures.go.
func faultHorizon(totalUnits float64) float64 {
	h := 4 * totalUnits / 1e9
	if h < 3600 {
		h = 3600
	}
	return h
}
