// Package des is a deterministic discrete-event traffic simulator for
// power-bounded clusters. It drives the same admission machinery the
// round-loop queue engines in internal/cluster use (Scheduler.AdmitWaiting
// and the RunningJob progress state), adds a seeded open-arrival process
// (bursty, optionally diurnal), time-varying budget shocks and node
// outages reused from internal/faults, and scales to tens of thousands
// of nodes and millions of jobs with streaming statistics.
//
// The simulator has two engines:
//
//   - the exact engine mirrors the cluster round loop operation for
//     operation, so a run whose jobs all arrive at t=0 reproduces
//     Scheduler.RunQueueOpts / RunQueueFaulty byte for byte (the golden
//     equivalence the tests pin);
//   - the fast engine indexes completions in a binary heap keyed by
//     absolute virtual time with lazy deletion and caches admission
//     decisions, trading byte-identity with the round loop for
//     event-throughput at scale. It is still fully deterministic: the
//     same seed replays the same trace hash, bit for bit.
package des

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/faults"
)

// defaultUnits is the mean work per job when the spec leaves units
// unset: 2e12 work units, the same default the pbc cluster demos use.
const defaultUnits = 2e12

// defaultPeriod is the diurnal period when the spec enables diurnal
// modulation without naming one: a 24-hour day in seconds.
const defaultPeriod = 86400.0

// ArrivalSpec describes a seeded open-arrival process. Arrival events
// form a (possibly nonhomogeneous) Poisson process; each event carries a
// geometric burst of jobs; each job draws its work size independently.
// Everything the process does is a pure function of (ArrivalSpec, seed):
// two runs with equal specs and seeds generate identical traffic.
type ArrivalSpec struct {
	// Rate is the mean arrival-event rate in events per simulated
	// second. Zero disables arrivals.
	Rate float64
	// Burst is the mean number of jobs per arrival event (geometric,
	// always at least 1). Values at or below 1 mean single-job events.
	Burst float64
	// Diurnal in [0, 1] modulates the rate sinusoidally:
	// rate(t) = Rate * (1 + Diurnal*sin(2*pi*t/Period)).
	Diurnal float64
	// Period is the diurnal period in seconds. Zero defaults to a
	// 24-hour day when Diurnal is non-zero.
	Period float64
	// Units is the mean work per job in workload units. Zero defaults
	// to 2e12.
	Units float64
	// Spread in [0, 1) sizes jobs uniformly in Units*[1-Spread,
	// 1+Spread]. Zero means every job carries exactly Units work.
	Spread float64
}

// arrivalFields maps spec-string keys to accessors, in the canonical
// (sorted) order used by String.
var arrivalFields = []struct {
	key string
	get func(*ArrivalSpec) *float64
}{
	{"burst", func(s *ArrivalSpec) *float64 { return &s.Burst }},
	{"diurnal", func(s *ArrivalSpec) *float64 { return &s.Diurnal }},
	{"period", func(s *ArrivalSpec) *float64 { return &s.Period }},
	{"rate", func(s *ArrivalSpec) *float64 { return &s.Rate }},
	{"spread", func(s *ArrivalSpec) *float64 { return &s.Spread }},
	{"units", func(s *ArrivalSpec) *float64 { return &s.Units }},
}

// ParseArrivalSpec parses a comma-separated key=value list, e.g.
//
//	"rate=2,burst=1.5,diurnal=0.3,period=3600,units=2e12"
//
// Unknown keys, repeated keys, and malformed values are errors. The
// empty string parses to the zero ArrivalSpec (no arrivals).
func ParseArrivalSpec(s string) (ArrivalSpec, error) {
	var sp ArrivalSpec
	s = strings.TrimSpace(s)
	if s == "" {
		return sp, nil
	}
	seen := map[string]bool{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			return ArrivalSpec{}, fmt.Errorf("des: empty entry in arrival spec %q", s)
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return ArrivalSpec{}, fmt.Errorf("des: entry %q is not key=value", part)
		}
		key = strings.TrimSpace(key)
		val = strings.TrimSpace(val)
		if seen[key] {
			return ArrivalSpec{}, fmt.Errorf("des: duplicate key %q", key)
		}
		seen[key] = true
		dst := arrivalFieldByKey(&sp, key)
		if dst == nil {
			return ArrivalSpec{}, fmt.Errorf("des: unknown key %q (valid: %s)", key, strings.Join(arrivalKeys(), " "))
		}
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return ArrivalSpec{}, fmt.Errorf("des: key %q: bad value %q: %w", key, val, err)
		}
		*dst = f
	}
	if err := sp.Validate(); err != nil {
		return ArrivalSpec{}, err
	}
	return sp, nil
}

func arrivalFieldByKey(sp *ArrivalSpec, key string) *float64 {
	for _, f := range arrivalFields {
		if f.key == key {
			return f.get(sp)
		}
	}
	return nil
}

func arrivalKeys() []string {
	keys := make([]string, len(arrivalFields))
	for i, f := range arrivalFields {
		keys[i] = f.key
	}
	sort.Strings(keys)
	return keys
}

// String renders the spec canonically: non-zero fields only, sorted by
// key. ParseArrivalSpec(s.String()) reproduces s exactly.
func (sp ArrivalSpec) String() string {
	var parts []string
	for _, f := range arrivalFields {
		if v := *f.get(&sp); v != 0 {
			parts = append(parts, fmt.Sprintf("%s=%s", f.key, strconv.FormatFloat(v, 'g', -1, 64)))
		}
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, ",")
}

// Validate rejects out-of-range rates and magnitudes.
func (sp ArrivalSpec) Validate() error {
	for _, f := range arrivalFields {
		if v := *f.get(&sp); math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("des: %s=%v is not finite", f.key, v)
		}
		if v := *f.get(&sp); v < 0 {
			return fmt.Errorf("des: %s=%v is negative", f.key, v)
		}
	}
	if sp.Diurnal > 1 {
		return fmt.Errorf("des: diurnal=%v exceeds 1 (rate would go negative)", sp.Diurnal)
	}
	if sp.Spread >= 1 {
		return fmt.Errorf("des: spread=%v must be below 1 (jobs would carry zero work)", sp.Spread)
	}
	return nil
}

// Zero reports whether the spec generates no arrivals.
func (sp ArrivalSpec) Zero() bool { return sp.Rate == 0 }

// period returns the effective diurnal period.
func (sp ArrivalSpec) period() float64 {
	if sp.Period > 0 {
		return sp.Period
	}
	return defaultPeriod
}

// meanUnits returns the effective mean job size.
func (sp ArrivalSpec) meanUnits() float64 {
	if sp.Units > 0 {
		return sp.Units
	}
	return defaultUnits
}

// rateAt is the instantaneous arrival rate at simulated time t.
func (sp ArrivalSpec) rateAt(t float64) float64 {
	if sp.Diurnal == 0 {
		return sp.Rate
	}
	return sp.Rate * (1 + sp.Diurnal*math.Sin(2*math.Pi*t/sp.period()))
}

// jobArrival is one generated job: when it enters the queue and how
// much work it carries.
type jobArrival struct {
	at    float64
	units float64
}

// generateArrivals materializes the arrival trace for [0, horizon):
// nonhomogeneous Poisson event times by thinning against the peak rate
// Rate*(1+Diurnal), geometric burst sizes, and uniform job sizing. Each
// random dimension consumes its own forked stream keyed off seed, so
// e.g. changing the burst mean cannot shift event times. maxJobs bounds
// the trace; generation stops (without error) once reached.
func generateArrivals(sp ArrivalSpec, seed uint64, horizon float64, maxJobs int) []jobArrival {
	if sp.Zero() || horizon <= 0 || maxJobs <= 0 {
		return nil
	}
	root := faults.NewRNG(seed)
	times := root.Fork("des.arrival.time")
	thin := root.Fork("des.arrival.thin")
	burst := root.Fork("des.arrival.burst")
	sizes := root.Fork("des.arrival.size")

	lamMax := sp.Rate * (1 + sp.Diurnal)
	mean := sp.meanUnits()
	var out []jobArrival
	t := 0.0
	for len(out) < maxJobs {
		t += times.Exp(1 / lamMax)
		if t >= horizon {
			break
		}
		if sp.Diurnal > 0 && thin.Float64()*lamMax > sp.rateAt(t) {
			continue // thinned: the modulated rate is below the peak here
		}
		n := burst.Geometric(sp.Burst)
		for i := 0; i < n && len(out) < maxJobs; i++ {
			u := mean
			if sp.Spread > 0 {
				u = mean * (1 - sp.Spread + 2*sp.Spread*sizes.Float64())
			}
			out = append(out, jobArrival{at: t, units: u})
		}
	}
	return out
}
