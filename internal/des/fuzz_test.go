package des

import "testing"

// FuzzParseArrivalSpec asserts the parser's contract on arbitrary
// input: accepted specs validate, render canonically, and round-trip
// through String exactly; everything else errors instead of panicking.
func FuzzParseArrivalSpec(f *testing.F) {
	seeds := []string{
		"",
		"none",
		"rate=2",
		"rate=2,burst=1.5",
		"rate=0.05,burst=1.5,diurnal=0.4,period=900,units=2e12,spread=0.5",
		"burst=3,rate=1",
		"rate=1e300",
		"rate=-1",
		"rate=NaN",
		"rate=Inf",
		"diurnal=1.5",
		"spread=1",
		"rate=1,rate=2",
		"rate=",
		"=2",
		"rate=1,,",
		"  rate = 2  ",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		sp, err := ParseArrivalSpec(s)
		if err != nil {
			return
		}
		if verr := sp.Validate(); verr != nil {
			t.Fatalf("ParseArrivalSpec(%q) accepted a spec that fails Validate: %v", s, verr)
		}
		rendered := sp.String()
		if rendered == "none" {
			if sp != (ArrivalSpec{}) {
				t.Fatalf("non-zero spec %+v rendered as none", sp)
			}
			return
		}
		back, err := ParseArrivalSpec(rendered)
		if err != nil {
			t.Fatalf("canonical form %q does not re-parse: %v", rendered, err)
		}
		if back != sp {
			t.Fatalf("round trip %q -> %+v -> %q -> %+v", s, sp, rendered, back)
		}
		if again := back.String(); again != rendered {
			t.Fatalf("String not idempotent: %q vs %q", rendered, again)
		}
		// Accepted specs must generate a bounded, deterministic trace
		// without panicking.
		a := generateArrivals(sp, 1, 10, 100)
		b := generateArrivals(sp, 1, 10, 100)
		if len(a) != len(b) {
			t.Fatalf("generateArrivals not deterministic: %d vs %d jobs", len(a), len(b))
		}
		if len(a) > 100 {
			t.Fatalf("generateArrivals ignored maxJobs: %d", len(a))
		}
	})
}
