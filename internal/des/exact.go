package des

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/cluster"
	"repro/internal/units"
)

// runExact executes the simulation by mirroring the cluster round loop
// (Scheduler.RunQueueOpts / RunQueueFaulty) operation for operation —
// the same AdmitWaiting calls, the same advance arithmetic, the same
// event ordering and accumulation order — with job arrivals layered in
// as one more event class. When every job arrives at t=0 (cfg.Jobs set,
// no arrival spec), the result is byte-identical to the round loop's:
// the golden equivalence the tests pin. Do not "simplify" float
// expressions here; their shape is the contract.
func runExact(cfg Config, arrs []jobArrival) (Result, error) {
	out := Result{Mode: ModeExact}
	res := cluster.FaultyQueueResult{QueueResult: cluster.QueueResult{Stats: map[string]cluster.JobStat{}}}
	s := cfg.Sched

	for _, j := range cfg.Jobs {
		if j.Units <= 0 {
			return out, fmt.Errorf("cluster: job %q has non-positive work", j.ID)
		}
	}

	// Dense indices for the trace hash, and arrival times for the
	// streaming stats. Generated jobs are named a%06d; t=0 jobs keep
	// their caller-assigned IDs.
	jobIndex := make(map[string]int32, len(cfg.Jobs)+len(arrs))
	arrivalAt := make(map[string]float64, len(arrs))
	for _, j := range cfg.Jobs {
		jobIndex[j.ID] = int32(len(jobIndex))
	}
	arrJobs := make([]cluster.TimedJob, len(arrs))
	for i, a := range arrs {
		id := fmt.Sprintf("a%06d", i)
		arrJobs[i] = cluster.TimedJob{
			Job:   cluster.Job{ID: id, Workload: cfg.Workload},
			Units: a.units,
		}
		jobIndex[id] = int32(len(jobIndex))
		arrivalAt[id] = a.at
	}
	nodeIndex := make(map[string]int32, len(s.Nodes))
	for i, n := range s.Nodes {
		nodeIndex[n.ID] = int32(i)
	}
	hash := newTraceHash()
	var stats agg

	// Fault schedules, precomputed exactly as the round loop does: the
	// horizon accumulates total work in input order (t=0 jobs first,
	// then the generated trace).
	var totalUnits float64
	for _, j := range cfg.Jobs {
		totalUnits += j.Units
	}
	for _, a := range arrs {
		totalUnits += a.units
	}
	horizon := faultHorizon(totalUnits)

	type outageEvent struct {
		at     float64
		nodeID string
		up     bool
	}
	var outages []outageEvent
	type shockEvent struct {
		at    float64
		delta units.Power
	}
	var shocks []shockEvent
	if cfg.Injector != nil {
		nodeIDs := make([]string, 0, len(s.Nodes))
		for _, n := range s.Nodes {
			nodeIDs = append(nodeIDs, n.ID)
		}
		sort.Strings(nodeIDs)
		for _, id := range nodeIDs {
			for _, o := range cfg.Injector.NodeOutages(id, horizon) {
				outages = append(outages, outageEvent{at: o.At, nodeID: id, up: false})
				if !math.IsInf(o.Duration, 1) {
					outages = append(outages, outageEvent{at: o.At + o.Duration, nodeID: id, up: true})
				}
			}
		}
		sort.SliceStable(outages, func(i, j int) bool {
			if outages[i].at != outages[j].at {
				return outages[i].at < outages[j].at
			}
			if outages[i].up != outages[j].up {
				return outages[i].up
			}
			return outages[i].nodeID < outages[j].nodeID
		})
		for _, sh := range cfg.Injector.BudgetShocks(horizon) {
			delta := units.Power(s.Budget.Watts() * sh.Frac)
			shocks = append(shocks, shockEvent{at: sh.At, delta: -delta})
			shocks = append(shocks, shockEvent{at: sh.At + sh.Duration, delta: delta})
		}
	}

	pool := s.Budget
	freeNodes := append([]cluster.Node(nil), s.Nodes...)
	waiting := append([]cluster.TimedJob(nil), cfg.Jobs...)
	var active []*cluster.RunningJob
	down := map[string]bool{}
	firstStart := map[string]float64{}
	now := 0.0

	shockHeld := units.Power(0)
	conserve := func() {
		var committed units.Power
		for _, r := range active {
			committed += r.Budget
		}
		dev := pool + committed + shockHeld - s.Budget
		if dev < 0 {
			dev = -dev
		}
		if dev > res.Faults.MaxConservationError {
			res.Faults.MaxConservationError = dev
		}
	}

	// admit wraps AdmitWaiting like the round loop does, preserving
	// each job's first admission time across re-admissions, and folds
	// the newly appended "start" events into the trace hash.
	admit := func() error {
		before := len(res.Events)
		var err error
		active, waiting, freeNodes, pool, err = s.AdmitWaiting(
			&res.QueueResult, active, waiting, freeNodes, pool, now, cfg.Policy, cfg.Discipline)
		if err != nil {
			return err
		}
		for _, r := range active {
			if first, ok := firstStart[r.Job.ID]; ok {
				r.FirstStart = first
			} else {
				firstStart[r.Job.ID] = r.FirstStart
			}
		}
		for _, ev := range res.Events[before:] {
			hash.event(ev.Time, evStart, jobIndex[ev.JobID], nodeIndex[ev.NodeID])
		}
		return nil
	}

	evict := func(idx int, keepNode bool) {
		r := active[idx]
		active = append(active[:idx], active[idx+1:]...)
		runtime := now - r.Started
		res.Energy += units.Energy(r.Power.Watts() * runtime)
		pool += r.Budget
		if keepNode {
			freeNodes = append(freeNodes, r.Node)
		}
		res.Faults.BudgetReclaimed += r.Budget
		res.Faults.Readmissions++
		j := r.Job
		j.Units = r.Remaining
		waiting = append([]cluster.TimedJob{j}, waiting...)
		res.Events = append(res.Events, cluster.Event{Time: now, Kind: "suspend", JobID: j.ID, NodeID: r.Node.ID})
		hash.event(now, evSuspend, jobIndex[j.ID], nodeIndex[r.Node.ID])
	}

	advance := func(dt float64) {
		now += dt
		for _, r := range active {
			r.Remaining -= dt * r.Rate
			if r.Remaining < 0 {
				r.Remaining = 0
			}
		}
	}

	if err := admit(); err != nil {
		return out, err
	}
	conserve()
	if len(active) == 0 && len(waiting) > 0 {
		return out, fmt.Errorf("cluster: no job can start (budget %v too small for every job): %w",
			s.Budget, cluster.ErrStarved)
	}

	oi, si, ai := 0, 0, 0 // next outage / shock / arrival indices
	steps := 0
	for ; len(active) > 0 || len(waiting) > 0 || ai < len(arrs); steps++ {
		conserve()
		if steps >= cfg.MaxEvents {
			return out, fmt.Errorf("cluster: fault engine exceeded %d events (spec too hostile?)", cfg.MaxEvents)
		}
		nextDone, di := math.Inf(1), -1
		for i, r := range active {
			t := r.Remaining / r.Rate
			if t < nextDone {
				nextDone, di = t, i
			}
		}
		nextOutage := math.Inf(1)
		if oi < len(outages) {
			nextOutage = outages[oi].at - now
		}
		nextShock := math.Inf(1)
		if si < len(shocks) {
			nextShock = shocks[si].at - now
		}
		nextArr := math.Inf(1)
		if ai < len(arrs) {
			nextArr = arrs[ai].at - now
			if nextArr < 0 {
				nextArr = 0
			}
		}

		if math.IsInf(nextDone, 1) && math.IsInf(nextOutage, 1) && math.IsInf(nextShock, 1) && math.IsInf(nextArr, 1) {
			return out, fmt.Errorf("cluster: %d job(s) can never start (%d node(s) down, pool %v): %w",
				len(waiting), len(down), pool, cluster.ErrStarved)
		}
		if di == -1 && len(waiting) > 0 &&
			math.IsInf(nextOutage, 1) && math.IsInf(nextShock, 1) && math.IsInf(nextArr, 1) {
			return out, fmt.Errorf("cluster: %d job(s) can never start under budget %v: %w",
				len(waiting), s.Budget, cluster.ErrStarved)
		}

		switch {
		case nextOutage <= nextDone && nextOutage <= nextShock && nextOutage <= nextArr:
			ev := outages[oi]
			oi++
			advance(nextOutage)
			if ev.up {
				if !down[ev.nodeID] {
					continue
				}
				delete(down, ev.nodeID)
				node, ok := nodeByID(s, ev.nodeID)
				if !ok {
					continue
				}
				freeNodes = append(freeNodes, node)
				res.Faults.NodeRecoveries++
				res.Events = append(res.Events, cluster.Event{Time: now, Kind: "recover", NodeID: ev.nodeID})
				hash.event(now, evNodeUp, -1, nodeIndex[ev.nodeID])
				if err := admit(); err != nil {
					return out, err
				}
				continue
			}
			if down[ev.nodeID] {
				continue
			}
			down[ev.nodeID] = true
			res.Faults.NodeFailures++
			res.Events = append(res.Events, cluster.Event{Time: now, Kind: "fail", NodeID: ev.nodeID})
			hash.event(now, evNodeFail, -1, nodeIndex[ev.nodeID])
			removed := false
			for i, n := range freeNodes {
				if n.ID == ev.nodeID {
					freeNodes = append(freeNodes[:i], freeNodes[i+1:]...)
					removed = true
					break
				}
			}
			if !removed {
				for i, r := range active {
					if r.Node.ID == ev.nodeID {
						evict(i, false)
						break
					}
				}
			}
			if err := admit(); err != nil {
				return out, err
			}

		case nextShock <= nextDone && nextShock <= nextArr:
			ev := shocks[si]
			si++
			advance(nextShock)
			pool += ev.delta
			shockHeld -= ev.delta
			if ev.delta < 0 {
				res.Faults.Shocks++
				hash.event(now, evShock, -1, -1)
				for pool < 0 && len(active) > 0 {
					latest := 0
					for i, r := range active {
						if r.Started > active[latest].Started {
							latest = i
						}
					}
					evict(latest, true)
				}
			} else {
				hash.event(now, evRestore, -1, -1)
			}
			if err := admit(); err != nil {
				return out, err
			}

		case nextArr <= nextDone:
			advance(nextArr)
			at := arrs[ai].at
			for ai < len(arrs) && arrs[ai].at == at {
				j := arrJobs[ai]
				waiting = append(waiting, j)
				hash.event(now, evArrive, jobIndex[j.ID], -1)
				ai++
			}
			if err := admit(); err != nil {
				return out, err
			}

		default:
			advance(nextDone)
			done := active[di]
			active = append(active[:di], active[di+1:]...)
			runtime := now - done.Started
			res.Energy += units.Energy(done.Power.Watts() * runtime)
			res.Stats[done.Job.ID] = cluster.JobStat{
				Start: done.FirstStart, End: now,
				Budget: done.Budget, Power: done.Power, Rate: done.Rate,
			}
			res.Events = append(res.Events, cluster.Event{Time: now, Kind: "finish", JobID: done.Job.ID, NodeID: done.Node.ID})
			hash.event(now, evFinish, jobIndex[done.Job.ID], nodeIndex[done.Node.ID])
			stats.finish(arrivalAt[done.Job.ID], done.FirstStart, now)
			pool += done.Budget
			freeNodes = append(freeNodes, done.Node)
			if err := admit(); err != nil {
				return out, err
			}
		}
	}
	conserve()
	res.Faults.PoolLeft = pool + shockHeld
	res.Makespan = now
	sort.SliceStable(res.Events, func(i, j int) bool { return res.Events[i].Time < res.Events[j].Time })

	out.Arrived = len(cfg.Jobs) + len(arrs)
	out.EngineEvents = steps
	out.Makespan = res.Makespan
	out.Energy = res.Energy
	out.Faults = res.Faults
	out.TraceHash = hash.h
	out.Queue = &res
	stats.fill(&out)
	return out, nil
}

// nodeByID finds a scheduler node, mirroring the round loop's lookup.
func nodeByID(s *cluster.Scheduler, id string) (cluster.Node, bool) {
	for _, n := range s.Nodes {
		if n.ID == id {
			return n, true
		}
	}
	return cluster.Node{}, false
}
