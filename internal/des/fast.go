package des

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/cluster"
	"repro/internal/units"
)

// Job states in the fast engine.
const (
	stateWaiting = iota
	stateActive
	stateDone
)

// fastJob is one job's compact record: no strings, no per-job maps, so
// million-job traces stay cache- and memory-friendly.
type fastJob struct {
	units      float64 // remaining work as of the last (re)admission
	arrival    float64
	firstStart float64 // -1 until first admission
	started    float64
	doneT      float64 // absolute completion time while active
	budget     units.Power
	power      units.Power
	rate       float64
	node       int32
	gen        uint32 // bumped on eviction; stale heap/order entries miss
	state      uint8
}

// heapItem is one pending completion, keyed by absolute virtual time
// with an insertion sequence as the deterministic tiebreak.
type heapItem struct {
	t   float64
	seq uint64
	job int32
	gen uint32
}

type doneHeap []heapItem

func (h doneHeap) less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}

func (h *doneHeap) push(it heapItem) {
	*h = append(*h, it)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		(*h)[i], (*h)[parent] = (*h)[parent], (*h)[i]
		i = parent
	}
}

func (h *doneHeap) pop() heapItem {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	*h = old[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && (*h).less(l, small) {
			small = l
		}
		if r < n && (*h).less(r, small) {
			small = r
		}
		if small == i {
			break
		}
		(*h)[i], (*h)[small] = (*h)[small], (*h)[i]
		i = small
	}
	return top
}

// probeVal is one cached admission decision: what a single job of the
// run's workload receives on a node of a given platform at a given pool.
type probeVal struct {
	ok     bool
	budget units.Power
	power  units.Power
	rate   float64
}

type probeKey struct {
	plat int
	pool uint64 // float64 bits of the pool at probe time
}

// maxProbeCache bounds the admission cache; past it the cache resets
// (pathological pool-value churn) rather than growing without bound.
const maxProbeCache = 1 << 16

// admEntry is one admission, in order, for most-recently-started
// eviction scans. Entries whose job was since completed or evicted are
// skipped lazily via the state/gen check.
type admEntry struct {
	job int32
	gen uint32
}

// runFast executes the simulation with a completion heap and admission
// caching. It keeps the round loop's semantics — admission through the
// shared Scheduler.AdmitWaiting, grant-for-lifetime, evict-latest under
// shocks, re-queue at the head — but indexes state for scale instead of
// rescanning it, so its float operation order (and therefore its exact
// event times) can differ from the exact engine in the last ulps.
// Deterministic: one seed, one trace hash.
func runFast(cfg Config, arrs []jobArrival) (Result, error) {
	out := Result{Mode: ModeFast}
	s := cfg.Sched

	// Platform classes: nodes grouped by platform name, in first-seen
	// order. Admission probes once per (class, pool) and reuses the
	// decision for every node of the class.
	classOf := make([]int, len(s.Nodes))
	classIdx := map[string]int{}
	var protoNodes []cluster.Node
	for i, n := range s.Nodes {
		ci, ok := classIdx[n.Platform.Name]
		if !ok {
			ci = len(protoNodes)
			classIdx[n.Platform.Name] = ci
			protoNodes = append(protoNodes, n)
		}
		classOf[i] = ci
	}
	free := make([][]int32, len(protoNodes))
	for i := len(s.Nodes) - 1; i >= 0; i-- {
		// Reverse push so class stacks pop nodes in scheduler order.
		free[classOf[i]] = append(free[classOf[i]], int32(i))
	}
	down := make([]bool, len(s.Nodes))
	nodeJob := make([]int32, len(s.Nodes))
	for i := range nodeJob {
		nodeJob[i] = -1
	}

	// Jobs: cfg.Jobs arrive at t=0 ahead of the generated trace, so job
	// index order IS arrival order and the FIFO queue can be an index
	// cursor instead of a deque.
	jobs := make([]fastJob, 0, len(cfg.Jobs)+len(arrs))
	for _, j := range cfg.Jobs {
		if j.Units <= 0 {
			return out, fmt.Errorf("cluster: job %q has non-positive work", j.ID)
		}
		jobs = append(jobs, fastJob{units: j.Units, firstStart: -1, node: -1})
	}
	for _, a := range arrs {
		jobs = append(jobs, fastJob{units: a.units, arrival: a.at, firstStart: -1, node: -1})
	}
	out.Arrived = len(jobs)
	qHead, qArrived := 0, len(cfg.Jobs) // FIFO window [qHead, qArrived)
	var readmit []int32                 // evictions re-enter here, LIFO like the round loop's head prepend

	// Fault schedules over the same horizon formula as the round loop,
	// pre-resolved to node indices.
	var totalUnits float64
	for i := range jobs {
		totalUnits += jobs[i].units
	}
	horizon := faultHorizon(totalUnits)
	type outageEvent struct {
		at   float64
		node int32
		up   bool
	}
	var outages []outageEvent
	type shockEvent struct {
		at    float64
		delta units.Power
	}
	var shocks []shockEvent
	if cfg.Injector != nil {
		ids := make([]string, 0, len(s.Nodes))
		byID := make(map[string]int32, len(s.Nodes))
		for i, n := range s.Nodes {
			ids = append(ids, n.ID)
			byID[n.ID] = int32(i)
		}
		sort.Strings(ids)
		for _, id := range ids {
			for _, o := range cfg.Injector.NodeOutages(id, horizon) {
				outages = append(outages, outageEvent{at: o.At, node: byID[id], up: false})
				if !math.IsInf(o.Duration, 1) {
					outages = append(outages, outageEvent{at: o.At + o.Duration, node: byID[id], up: true})
				}
			}
		}
		sort.SliceStable(outages, func(i, j int) bool {
			if outages[i].at != outages[j].at {
				return outages[i].at < outages[j].at
			}
			if outages[i].up != outages[j].up {
				return outages[i].up
			}
			return outages[i].node < outages[j].node
		})
		for _, sh := range cfg.Injector.BudgetShocks(horizon) {
			delta := units.Power(s.Budget.Watts() * sh.Frac)
			shocks = append(shocks, shockEvent{at: sh.At, delta: -delta})
			shocks = append(shocks, shockEvent{at: sh.At + sh.Duration, delta: delta})
		}
	}

	pool := s.Budget
	committed := units.Power(0)
	shockHeld := units.Power(0)
	var faultSum cluster.FaultSummary
	conserve := func() {
		dev := pool + committed + shockHeld - s.Budget
		if dev < 0 {
			dev = -dev
		}
		if dev > faultSum.MaxConservationError {
			faultSum.MaxConservationError = dev
		}
	}

	probeCache := map[probeKey]probeVal{}
	probeJob := []cluster.TimedJob{{Job: cluster.Job{ID: "probe", Workload: cfg.Workload}, Units: 1}}
	probe := func(class int, pool units.Power) (probeVal, error) {
		key := probeKey{plat: class, pool: math.Float64bits(pool.Watts())}
		if v, ok := probeCache[key]; ok {
			return v, nil
		}
		var scratch cluster.QueueResult
		active, _, _, _, err := s.AdmitWaiting(&scratch, nil, probeJob,
			[]cluster.Node{protoNodes[class]}, pool, 0, cfg.Policy, cfg.Discipline)
		if err != nil {
			return probeVal{}, err
		}
		var v probeVal
		if len(active) == 1 {
			r := active[0]
			v = probeVal{ok: true, budget: r.Budget, power: r.Power, rate: r.Rate}
		}
		if len(probeCache) >= maxProbeCache {
			probeCache = map[probeKey]probeVal{}
		}
		probeCache[key] = v
		return v, nil
	}

	var heap doneHeap
	var seq uint64
	var admOrder []admEntry
	activeCount := 0
	hash := newTraceHash()
	var stats agg
	var energy units.Energy
	now := 0.0

	// peekDone drops stale heap entries and returns the next real
	// completion time (Inf when none).
	peekDone := func() float64 {
		for len(heap) > 0 {
			top := heap[0]
			jb := &jobs[top.job]
			if jb.state == stateActive && jb.gen == top.gen {
				return top.t
			}
			heap.pop()
		}
		return math.Inf(1)
	}

	queued := func() int { return len(readmit) + (qArrived - qHead) }

	removeFree := func(node int32) {
		st := free[classOf[node]]
		for i, n := range st {
			if n == node {
				free[classOf[node]] = append(st[:i], st[i+1:]...)
				return
			}
		}
	}

	// admitOne seats the next queued job on some free node, probing each
	// platform class in order. Every queued job runs the same workload,
	// so if the head job cannot start now, none behind it can either —
	// the admission pass is O(classes), not O(queue).
	admitOne := func() (bool, error) {
		var j int32
		fromReadmit := false
		if n := len(readmit); n > 0 {
			j = readmit[n-1]
			fromReadmit = true
		} else if qHead < qArrived {
			j = int32(qHead)
		} else {
			return false, nil
		}
		for class := range free {
			st := free[class]
			// Drop downed nodes that failure handling missed.
			for len(st) > 0 && down[st[len(st)-1]] {
				st = st[:len(st)-1]
			}
			free[class] = st
			if len(st) == 0 {
				continue
			}
			v, err := probe(class, pool)
			if err != nil {
				return false, err
			}
			if !v.ok {
				continue
			}
			node := st[len(st)-1]
			free[class] = st[:len(st)-1]
			if fromReadmit {
				readmit = readmit[:len(readmit)-1]
			} else {
				qHead++
			}
			jb := &jobs[j]
			jb.state = stateActive
			jb.node = node
			jb.started = now
			if jb.firstStart < 0 {
				jb.firstStart = now
			}
			jb.budget, jb.power, jb.rate = v.budget, v.power, v.rate
			jb.doneT = now + jb.units/v.rate
			pool -= v.budget
			committed += v.budget
			nodeJob[node] = j
			seq++
			heap.push(heapItem{t: jb.doneT, seq: seq, job: j, gen: jb.gen})
			admOrder = append(admOrder, admEntry{job: j, gen: jb.gen})
			activeCount++
			hash.event(now, evStart, j, node)
			return true, nil
		}
		return false, nil
	}
	admit := func() error {
		for {
			ok, err := admitOne()
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
		}
	}

	evictJob := func(j int32, keepNode bool) {
		jb := &jobs[j]
		rem := (jb.doneT - now) * jb.rate
		if rem < 0 {
			rem = 0
		}
		jb.units = rem
		energy += units.Energy(jb.power.Watts() * (now - jb.started))
		pool += jb.budget
		committed -= jb.budget
		faultSum.BudgetReclaimed += jb.budget
		faultSum.Readmissions++
		node := jb.node
		nodeJob[node] = -1
		if keepNode {
			free[classOf[node]] = append(free[classOf[node]], node)
		}
		jb.state = stateWaiting
		jb.gen++
		jb.node = -1
		activeCount--
		readmit = append(readmit, j)
		hash.event(now, evSuspend, j, node)
	}

	// t=0 admission, mirroring the round loop's pre-loop pass: a queue
	// that cannot start on a full budget and healthy nodes never will.
	if err := admit(); err != nil {
		return out, err
	}
	conserve()
	if activeCount == 0 && queued() > 0 {
		return out, fmt.Errorf("cluster: no job can start (budget %v too small for every job): %w",
			s.Budget, cluster.ErrStarved)
	}

	oi, si, ai := 0, 0, 0
	steps := 0
	for ; activeCount > 0 || queued() > 0 || ai < len(arrs); steps++ {
		conserve()
		if steps >= cfg.MaxEvents {
			return out, fmt.Errorf("des: fast engine exceeded %d events (spec too hostile?)", cfg.MaxEvents)
		}
		nextDone := peekDone()
		nextOutage := math.Inf(1)
		if oi < len(outages) {
			nextOutage = outages[oi].at
		}
		nextShock := math.Inf(1)
		if si < len(shocks) {
			nextShock = shocks[si].at
		}
		nextArr := math.Inf(1)
		if ai < len(arrs) {
			nextArr = arrs[ai].at
		}

		if math.IsInf(nextDone, 1) && math.IsInf(nextOutage, 1) && math.IsInf(nextShock, 1) && math.IsInf(nextArr, 1) {
			return out, fmt.Errorf("cluster: %d job(s) can never start (pool %v): %w",
				queued(), pool, cluster.ErrStarved)
		}

		switch {
		case nextOutage <= nextDone && nextOutage <= nextShock && nextOutage <= nextArr:
			ev := outages[oi]
			oi++
			if ev.at > now {
				now = ev.at
			}
			if ev.up {
				if !down[ev.node] {
					continue
				}
				down[ev.node] = false
				free[classOf[ev.node]] = append(free[classOf[ev.node]], ev.node)
				faultSum.NodeRecoveries++
				hash.event(now, evNodeUp, -1, ev.node)
				if err := admit(); err != nil {
					return out, err
				}
				continue
			}
			if down[ev.node] {
				continue
			}
			down[ev.node] = true
			faultSum.NodeFailures++
			hash.event(now, evNodeFail, -1, ev.node)
			if j := nodeJob[ev.node]; j >= 0 {
				evictJob(j, false)
			} else {
				removeFree(ev.node)
			}
			if err := admit(); err != nil {
				return out, err
			}

		case nextShock <= nextDone && nextShock <= nextArr:
			ev := shocks[si]
			si++
			if ev.at > now {
				now = ev.at
			}
			pool += ev.delta
			shockHeld -= ev.delta
			if ev.delta < 0 {
				faultSum.Shocks++
				hash.event(now, evShock, -1, -1)
				// Evict most recently started jobs until committed grants
				// fit again. Admission order is started order, so scan the
				// order log from the tail, skipping stale entries.
				for pool < 0 && activeCount > 0 {
					for len(admOrder) > 0 {
						e := admOrder[len(admOrder)-1]
						jb := &jobs[e.job]
						if jb.state == stateActive && jb.gen == e.gen {
							break
						}
						admOrder = admOrder[:len(admOrder)-1]
					}
					if len(admOrder) == 0 {
						break
					}
					e := admOrder[len(admOrder)-1]
					admOrder = admOrder[:len(admOrder)-1]
					evictJob(e.job, true)
				}
			} else {
				hash.event(now, evRestore, -1, -1)
			}
			if err := admit(); err != nil {
				return out, err
			}

		case nextArr <= nextDone:
			if nextArr > now {
				now = nextArr
			}
			at := arrs[ai].at
			for ai < len(arrs) && arrs[ai].at == at {
				hash.event(now, evArrive, int32(qArrived), -1)
				qArrived++
				ai++
			}
			if err := admit(); err != nil {
				return out, err
			}

		default:
			it := heap.pop()
			jb := &jobs[it.job]
			if it.t > now {
				now = it.t
			}
			jb.state = stateDone
			energy += units.Energy(jb.power.Watts() * (now - jb.started))
			stats.finish(jb.arrival, jb.firstStart, now)
			pool += jb.budget
			committed -= jb.budget
			node := jb.node
			nodeJob[node] = -1
			jb.node = -1
			free[classOf[node]] = append(free[classOf[node]], node)
			activeCount--
			hash.event(now, evFinish, it.job, node)
			if err := admit(); err != nil {
				return out, err
			}
		}
	}
	conserve()
	faultSum.PoolLeft = pool + shockHeld

	out.EngineEvents = steps
	out.Makespan = now
	out.Energy = energy
	out.Faults = faultSum
	out.TraceHash = hash.h
	stats.fill(&out)
	return out, nil
}
