package des

import (
	"fmt"
	"math"
	"reflect"
	"testing"

	"repro/internal/cluster"
	"repro/internal/faults"
	"repro/internal/hw"
	"repro/internal/units"
	"repro/internal/workload"
)

// goldenFaultSpec exercises node outages, recoveries, and budget shocks
// in the golden-equivalence runs — the same scenario the pbc faults
// cluster demo uses.
const goldenFaultSpec = "node.mtbf=45,node.mttr=30,shock.mtbs=60,shock.frac=0.25,shock.len=10"

func testSched(t *testing.T, n int) (*cluster.Scheduler, workload.Workload) {
	t.Helper()
	p, err := hw.PlatformByName("ivybridge")
	if err != nil {
		t.Fatalf("platform: %v", err)
	}
	w, err := workload.ByName("stream")
	if err != nil {
		t.Fatalf("workload: %v", err)
	}
	nodes := make([]cluster.Node, n)
	for i := range nodes {
		nodes[i] = cluster.Node{ID: fmt.Sprintf("node%02d", i), Platform: p}
	}
	sched, err := cluster.NewScheduler(units.Power(208*float64(n)), nodes)
	if err != nil {
		t.Fatalf("scheduler: %v", err)
	}
	return sched, w
}

func testJobs(w workload.Workload, n int, unitsPer float64) []cluster.TimedJob {
	jobs := make([]cluster.TimedJob, n)
	for i := range jobs {
		jobs[i] = cluster.TimedJob{
			Job:   cluster.Job{ID: fmt.Sprintf("job%02d", i), Workload: w},
			Units: unitsPer,
		}
	}
	return jobs
}

// TestGoldenEquivalenceFaultFree pins the tentpole contract: a 1-shot
// DES run whose jobs all arrive round-synchronously at t=0 reproduces
// the round loop's output byte for byte — same events, same stats, same
// makespan and energy bits — across policies and disciplines.
func TestGoldenEquivalenceFaultFree(t *testing.T) {
	cases := []struct {
		name   string
		policy cluster.SplitPolicy
		disc   cluster.Discipline
	}{
		{"coord-backfill", cluster.PolicyCoord, cluster.DisciplineBackfill},
		{"coord-fifo", cluster.PolicyCoord, cluster.DisciplineFIFO},
		{"evensplit-backfill", cluster.PolicyEvenSplit, cluster.DisciplineBackfill},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sched, w := testSched(t, 3)
			jobs := testJobs(w, 7, 2e12)
			want, err := sched.RunQueueOpts(jobs, tc.policy, tc.disc)
			if err != nil {
				t.Fatalf("RunQueueOpts: %v", err)
			}
			got, err := Run(Config{
				Sched: sched, Workload: w,
				Policy: tc.policy, Discipline: tc.disc,
				Jobs: jobs, Mode: ModeExact,
			})
			if err != nil {
				t.Fatalf("des.Run: %v", err)
			}
			if got.Queue == nil {
				t.Fatal("exact mode returned no queue result")
			}
			if !reflect.DeepEqual(got.Queue.QueueResult, want) {
				t.Errorf("DES output diverges from RunQueueOpts:\n des: %+v\nloop: %+v",
					got.Queue.QueueResult, want)
			}
			if got.Completed != len(jobs) || got.Arrived != len(jobs) {
				t.Errorf("completed %d arrived %d, want %d", got.Completed, got.Arrived, len(jobs))
			}
			if math.Float64bits(got.Makespan) != math.Float64bits(want.Makespan) {
				t.Errorf("makespan bits differ: %v vs %v", got.Makespan, want.Makespan)
			}
		})
	}
}

// TestGoldenEquivalenceFaulty is the same contract against the
// fault-aware round loop: identical injector schedules must produce an
// identical FaultyQueueResult — fault accounting included.
func TestGoldenEquivalenceFaulty(t *testing.T) {
	sp, err := faults.ParseSpec(goldenFaultSpec)
	if err != nil {
		t.Fatalf("spec: %v", err)
	}
	for _, seed := range []uint64{1, 7, 42} {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			sched, w := testSched(t, 3)
			jobs := testJobs(w, 6, 2e12)
			want, err := sched.RunQueueFaulty(jobs, cluster.PolicyCoord, cluster.DisciplineBackfill,
				faults.NewInjector(sp, seed), nil)
			if err != nil {
				t.Fatalf("RunQueueFaulty: %v", err)
			}
			got, err := Run(Config{
				Sched: sched, Workload: w,
				Policy: cluster.PolicyCoord, Discipline: cluster.DisciplineBackfill,
				Jobs: jobs, Injector: faults.NewInjector(sp, seed), Mode: ModeExact,
			})
			if err != nil {
				t.Fatalf("des.Run: %v", err)
			}
			if !reflect.DeepEqual(*got.Queue, want) {
				t.Errorf("DES output diverges from RunQueueFaulty:\n des: %+v\nloop: %+v",
					*got.Queue, want)
			}
			if got.Faults != want.Faults {
				t.Errorf("fault summaries differ:\n des: %+v\nloop: %+v", got.Faults, want.Faults)
			}
		})
	}
}

// TestGoldenEquivalenceNilInjector: the exact engine with no injector
// matches RunQueueFaulty driven with a nil injector (the fault-free
// path through the fault-aware loop, clamped advance included).
func TestGoldenEquivalenceNilInjector(t *testing.T) {
	sched, w := testSched(t, 3)
	jobs := testJobs(w, 6, 2e12)
	want, err := sched.RunQueueFaulty(jobs, cluster.PolicyCoord, cluster.DisciplineBackfill, nil, nil)
	if err != nil {
		t.Fatalf("RunQueueFaulty: %v", err)
	}
	got, err := Run(Config{
		Sched: sched, Workload: w,
		Policy: cluster.PolicyCoord, Discipline: cluster.DisciplineBackfill,
		Jobs: jobs, Mode: ModeExact,
	})
	if err != nil {
		t.Fatalf("des.Run: %v", err)
	}
	if !reflect.DeepEqual(*got.Queue, want) {
		t.Errorf("DES output diverges from nil-injector RunQueueFaulty:\n des: %+v\nloop: %+v",
			*got.Queue, want)
	}
}

func replayCfg(t *testing.T, mode Mode, seed uint64) Config {
	t.Helper()
	sched, w := testSched(t, 4)
	arr, err := ParseArrivalSpec("rate=0.05,burst=1.5,diurnal=0.4,period=900,units=2e12,spread=0.5")
	if err != nil {
		t.Fatalf("arrival spec: %v", err)
	}
	sp, err := faults.ParseSpec(goldenFaultSpec)
	if err != nil {
		t.Fatalf("fault spec: %v", err)
	}
	return Config{
		Sched: sched, Workload: w,
		Policy: cluster.PolicyCoord, Discipline: cluster.DisciplineBackfill,
		Arrivals: arr, Seed: seed, Horizon: 1200,
		Injector: faults.NewInjector(sp, seed),
		Mode:     mode,
	}
}

// TestReplayDeterminism: the same seed replays byte-identically — equal
// trace hashes, equal makespan bits, equal aggregates — in both modes.
func TestReplayDeterminism(t *testing.T) {
	for _, mode := range []Mode{ModeExact, ModeFast} {
		t.Run(mode.String(), func(t *testing.T) {
			a, err := Run(replayCfg(t, mode, 11))
			if err != nil {
				t.Fatalf("first run: %v", err)
			}
			b, err := Run(replayCfg(t, mode, 11))
			if err != nil {
				t.Fatalf("second run: %v", err)
			}
			if a.TraceHash != b.TraceHash {
				t.Errorf("trace hashes differ: %016x vs %016x", a.TraceHash, b.TraceHash)
			}
			if math.Float64bits(a.Makespan) != math.Float64bits(b.Makespan) {
				t.Errorf("makespan bits differ: %v vs %v", a.Makespan, b.Makespan)
			}
			if a.Arrived != b.Arrived || a.Completed != b.Completed || a.EngineEvents != b.EngineEvents {
				t.Errorf("counts differ: %+v vs %+v", a, b)
			}
			if a.Arrived == 0 || a.Completed != a.Arrived {
				t.Errorf("replay run did not complete all jobs: %+v", a)
			}
			// A different seed must not replay the same trace.
			c, err := Run(replayCfg(t, mode, 12))
			if err != nil {
				t.Fatalf("third run: %v", err)
			}
			if c.TraceHash == a.TraceHash {
				t.Errorf("different seeds produced the same trace hash %016x", a.TraceHash)
			}
		})
	}
}

// TestCrossModeConsistency: the fast engine is not byte-identical to
// the exact one (different float operation order), but on the same
// traffic it must complete the same jobs with closely matching
// aggregate behavior.
func TestCrossModeConsistency(t *testing.T) {
	mk := func(mode Mode) Config {
		sched, w := testSched(t, 4)
		arr, err := ParseArrivalSpec("rate=0.05,burst=2,units=1e12,spread=0.5")
		if err != nil {
			t.Fatalf("arrival spec: %v", err)
		}
		return Config{
			Sched: sched, Workload: w,
			Policy: cluster.PolicyCoord, Discipline: cluster.DisciplineBackfill,
			Arrivals: arr, Seed: 5, Horizon: 1500, Mode: mode,
		}
	}
	exact, err := Run(mk(ModeExact))
	if err != nil {
		t.Fatalf("exact: %v", err)
	}
	fast, err := Run(mk(ModeFast))
	if err != nil {
		t.Fatalf("fast: %v", err)
	}
	if exact.Arrived != fast.Arrived || exact.Completed != fast.Completed {
		t.Errorf("job counts diverge: exact %d/%d fast %d/%d",
			exact.Completed, exact.Arrived, fast.Completed, fast.Arrived)
	}
	relClose := func(name string, a, b, tol float64) {
		if a == 0 && b == 0 {
			return
		}
		if d := math.Abs(a-b) / math.Max(math.Abs(a), math.Abs(b)); d > tol {
			t.Errorf("%s diverges: exact %g fast %g (rel %g > %g)", name, a, b, d, tol)
		}
	}
	relClose("makespan", exact.Makespan, fast.Makespan, 0.05)
	relClose("energy", exact.Energy.Joules(), fast.Energy.Joules(), 0.05)
	relClose("avg turnaround", exact.AvgTurnaround, fast.AvgTurnaround, 0.10)
}

// TestScaleSmokeFast drives a deliberately oversubscribed burst of
// thousands of jobs through a few hundred nodes — small enough for CI,
// shaped like the million-job bench — and checks the run drains fully
// and deterministically.
func TestScaleSmokeFast(t *testing.T) {
	mk := func() Config {
		sched, w := testSched(t, 200)
		arr, err := ParseArrivalSpec("rate=20,burst=2,units=5e11,spread=0.8")
		if err != nil {
			t.Fatalf("arrival spec: %v", err)
		}
		return Config{
			Sched: sched, Workload: w,
			Policy: cluster.PolicyCoord, Discipline: cluster.DisciplineBackfill,
			Arrivals: arr, Seed: 3, Horizon: 300, Mode: ModeFast,
		}
	}
	a, err := Run(mk())
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if a.Arrived < 5000 {
		t.Fatalf("scale smoke generated only %d jobs", a.Arrived)
	}
	if a.Completed != a.Arrived {
		t.Fatalf("completed %d of %d jobs", a.Completed, a.Arrived)
	}
	if a.Makespan <= 300 {
		t.Errorf("oversubscribed run should drain past the horizon, makespan %g", a.Makespan)
	}
	b, err := Run(mk())
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if a.TraceHash != b.TraceHash {
		t.Errorf("scale run is not replay-deterministic: %016x vs %016x", a.TraceHash, b.TraceHash)
	}
}

// TestFastEngineFaultAccounting: the fast engine's fault counters move
// under an injector and the pool-conservation invariant holds.
func TestFastEngineFaultAccounting(t *testing.T) {
	res, err := Run(replayCfg(t, ModeFast, 11))
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Faults.Shocks == 0 || res.Faults.NodeFailures == 0 || res.Faults.Readmissions == 0 {
		t.Fatalf("fault run should exercise shocks, outages, and evictions: %+v", res.Faults)
	}
	if res.Completed != res.Arrived {
		t.Errorf("faulty run lost jobs: %d of %d", res.Completed, res.Arrived)
	}
	if res.Faults.MaxConservationError > units.Power(1e-6) {
		t.Errorf("pool conservation error %v too large", res.Faults.MaxConservationError)
	}
	// With every job complete and every shock expired, the shock-adjusted
	// pool must equal the cluster budget — the invariant pbc verify pins
	// for the round loop, held here by the fast engine too.
	if diff := math.Abs(res.Faults.PoolLeft.Watts() - 832); diff > 1e-6 {
		t.Errorf("PoolLeft %v != budget 832 W", res.Faults.PoolLeft)
	}
}

func TestParseArrivalSpec(t *testing.T) {
	sp, err := ParseArrivalSpec(" rate = 2 , burst=1.5, diurnal=0.3 ,period=3600,units=2e12,spread=0.25")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	want := ArrivalSpec{Rate: 2, Burst: 1.5, Diurnal: 0.3, Period: 3600, Units: 2e12, Spread: 0.25}
	if sp != want {
		t.Fatalf("got %+v want %+v", sp, want)
	}
	if back, err := ParseArrivalSpec(sp.String()); err != nil || back != sp {
		t.Fatalf("round trip %q -> %+v (%v)", sp.String(), back, err)
	}
	if got := (ArrivalSpec{}).String(); got != "none" {
		t.Errorf("zero spec renders %q", got)
	}
	for _, bad := range []string{
		"rate",            // not key=value
		"bogus=1",         // unknown key
		"rate=1,rate=2",   // duplicate
		"rate=xyz",        // malformed value
		"rate=-1",         // negative
		"diurnal=1.5",     // amplitude above 1
		"spread=1",        // spread must stay below 1
		"rate=Inf",        // not finite
		"rate=1,,units=2", // empty entry
	} {
		if _, err := ParseArrivalSpec(bad); err == nil {
			t.Errorf("ParseArrivalSpec(%q) accepted invalid spec", bad)
		}
	}
}

// TestGenerateArrivals covers the process shape: determinism, horizon
// clipping, burst expansion, and spread bounds.
func TestGenerateArrivals(t *testing.T) {
	sp := ArrivalSpec{Rate: 1, Burst: 3, Diurnal: 0.5, Period: 100, Units: 1e12, Spread: 0.5}
	a := generateArrivals(sp, 9, 500, 1<<20)
	b := generateArrivals(sp, 9, 500, 1<<20)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("generateArrivals is not deterministic")
	}
	if len(a) < 300 {
		t.Fatalf("expected a few hundred jobs, got %d", len(a))
	}
	last := 0.0
	for _, j := range a {
		if j.at < last || j.at >= 500 {
			t.Fatalf("arrival time %g out of order or past horizon", j.at)
		}
		last = j.at
		if j.units < 0.5e12 || j.units > 1.5e12 {
			t.Fatalf("job units %g outside spread envelope", j.units)
		}
	}
	if got := generateArrivals(ArrivalSpec{}, 9, 500, 1<<20); got != nil {
		t.Errorf("zero spec generated %d jobs", len(got))
	}
	if got := generateArrivals(sp, 9, 500, 10); len(got) != 10 {
		t.Errorf("maxJobs cap generated %d jobs", len(got))
	}
}

// TestPhasedGPUJobs runs phased ML-inference jobs on an H100-class
// cluster through both engines: exact mode must reproduce the round
// loop byte for byte — phased workloads and GPU platforms included —
// and each engine's trace hash must be stable across repeat runs.
func TestPhasedGPUJobs(t *testing.T) {
	p, err := hw.PlatformByName("h100")
	if err != nil {
		t.Fatalf("platform: %v", err)
	}
	w, err := workload.ByName("llmserve")
	if err != nil {
		t.Fatalf("workload: %v", err)
	}
	nodes := make([]cluster.Node, 3)
	for i := range nodes {
		nodes[i] = cluster.Node{ID: fmt.Sprintf("gpu%02d", i), Platform: p}
	}
	sched, err := cluster.NewScheduler(units.Power(400*len(nodes)), nodes)
	if err != nil {
		t.Fatalf("scheduler: %v", err)
	}
	jobs := testJobs(w, 7, 2e12)

	want, err := sched.RunQueueOpts(jobs, cluster.PolicyCoord, cluster.DisciplineBackfill)
	if err != nil {
		t.Fatalf("RunQueueOpts: %v", err)
	}
	run := func(mode Mode) Result {
		got, err := Run(Config{
			Sched: sched, Workload: w,
			Policy: cluster.PolicyCoord, Discipline: cluster.DisciplineBackfill,
			Jobs: jobs, Mode: mode,
		})
		if err != nil {
			t.Fatalf("des.Run mode %v: %v", mode, err)
		}
		return got
	}

	exact := run(ModeExact)
	if exact.Queue == nil || !reflect.DeepEqual(exact.Queue.QueueResult, want) {
		t.Errorf("phased DES run diverges from round loop:\n des: %+v\nloop: %+v",
			exact.Queue, want)
	}
	if exact.Completed != len(jobs) {
		t.Errorf("completed %d of %d phased jobs", exact.Completed, len(jobs))
	}
	if exact.TraceHash != run(ModeExact).TraceHash {
		t.Error("exact-mode trace hash unstable across repeat runs")
	}

	fast := run(ModeFast)
	if fast.Completed != len(jobs) || !(fast.Makespan > 0) {
		t.Errorf("fast mode: completed %d, makespan %v", fast.Completed, fast.Makespan)
	}
	if fast.TraceHash != run(ModeFast).TraceHash {
		t.Error("fast-mode trace hash unstable across repeat runs")
	}
}
