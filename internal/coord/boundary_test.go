package coord

import (
	"math"
	"testing"

	"repro/internal/units"
)

// TestCPURegimeBoundaries probes Algorithm 1 within ±1e-9 W of each
// regime-boundary budget (the paper's critical-power sums) and checks
// that the case selection flips exactly at the boundary, never
// off-by-epsilon, and that every decision keeps the allocation
// invariants: total ≤ budget, memory never above its maximum demand,
// the processor never below its lowest P-state power while status is
// OK, and surplus accounting balancing the budget.
func TestCPURegimeBoundaries(t *testing.T) {
	const eps = units.Power(1e-9)
	for _, wl := range []string{"sra", "stream", "dgemm", "bt"} {
		_, _, prof := cpuProfile(t, "ivybridge", wl)
		cp := prof.Critical

		boundaries := []struct {
			name   string
			budget units.Power
			// below/atOrAbove are the statuses expected strictly under
			// and at-or-over the boundary.
			below, atOrAbove Status
		}{
			{"A: CPUMax+MemMax", cp.CPUMax + cp.MemMax, StatusOK, StatusSurplus},
			{"B: CPULowPState+MemMax", cp.CPULowPState + cp.MemMax, StatusOK, StatusOK},
			{"C: CPULowPState+MemAtCPULow", cp.ProductiveThreshold(), StatusTooSmall, StatusOK},
		}
		for _, b := range boundaries {
			for _, probe := range []struct {
				off  units.Power
				want Status
			}{
				{-eps, b.below}, {0, b.atOrAbove}, {+eps, b.atOrAbove},
			} {
				budget := b.budget + probe.off
				d := CPU(prof, budget)
				if d.Status != probe.want {
					t.Errorf("%s, %s%+g: status = %v, want %v",
						wl, b.name, probe.off.Watts(), d.Status, probe.want)
				}
				if d.Status == StatusTooSmall {
					continue
				}
				if d.Alloc.Total() > budget+eps {
					t.Errorf("%s, %s%+g: allocation %v exceeds budget %v",
						wl, b.name, probe.off.Watts(), d.Alloc, budget)
				}
				if d.Alloc.Mem > cp.MemMax+eps {
					t.Errorf("%s, %s%+g: mem %v above max demand %v",
						wl, b.name, probe.off.Watts(), d.Alloc.Mem, cp.MemMax)
				}
				if d.Alloc.Proc < cp.CPULowPState-eps {
					t.Errorf("%s, %s%+g: proc %v below lowest P-state power %v",
						wl, b.name, probe.off.Watts(), d.Alloc.Proc, cp.CPULowPState)
				}
				if d.Status == StatusSurplus {
					if bal := d.Alloc.Total() + d.Surplus; math.Abs((bal - budget).Watts()) > 1e-6 {
						t.Errorf("%s, %s%+g: alloc+surplus = %v, want %v",
							wl, b.name, probe.off.Watts(), bal, budget)
					}
				}
			}
		}
	}
}

// TestCPUExactThresholdAllocatesRegimeBase pins the exact lower edge of
// case (C): at precisely P_cpu_L2 + P_mem_L2 the proportional surplus
// is zero, so both components must receive exactly their regime base.
func TestCPUExactThresholdAllocatesRegimeBase(t *testing.T) {
	_, _, prof := cpuProfile(t, "ivybridge", "sra")
	cp := prof.Critical
	d := CPU(prof, cp.ProductiveThreshold())
	if d.Status != StatusOK {
		t.Fatalf("status = %v at the productive threshold, want ok", d.Status)
	}
	if math.Abs((d.Alloc.Proc - cp.CPULowPState).Watts()) > 1e-9 {
		t.Errorf("proc = %v, want L2 base %v", d.Alloc.Proc, cp.CPULowPState)
	}
	if math.Abs((d.Alloc.Mem - cp.MemAtCPULow).Watts()) > 1e-9 {
		t.Errorf("mem = %v, want L2m base %v", d.Alloc.Mem, cp.MemAtCPULow)
	}
}

// TestCPUNonFiniteBudget documents Algorithm 1's behavior on degenerate
// budgets: NaN compares false everywhere and falls through to the
// reject case rather than fabricating an allocation.
func TestCPUNonFiniteBudget(t *testing.T) {
	_, _, prof := cpuProfile(t, "ivybridge", "stream")
	if d := CPU(prof, units.Power(math.NaN())); d.Status != StatusTooSmall {
		t.Errorf("NaN budget: status = %v, want too-small", d.Status)
	}
	if d := CPU(prof, units.Power(math.Inf(-1))); d.Status != StatusTooSmall {
		t.Errorf("-Inf budget: status = %v, want too-small", d.Status)
	}
}

// TestCPUAllocationContinuityWithinRegimes steps each regime's interior
// finely and checks the allocation moves continuously with the budget
// (no jumps larger than the step itself): a discontinuity inside a
// regime would betray a boundary misclassification.
func TestCPUAllocationContinuityWithinRegimes(t *testing.T) {
	_, _, prof := cpuProfile(t, "ivybridge", "bt")
	cp := prof.Critical
	regimes := []struct {
		name   string
		lo, hi units.Power
	}{
		{"C", cp.ProductiveThreshold(), cp.CPULowPState + cp.MemMax},
		{"B", cp.CPULowPState + cp.MemMax, cp.CPUMax + cp.MemMax},
	}
	const step = units.Power(0.25)
	for _, r := range regimes {
		prev := CPU(prof, r.lo)
		for b := r.lo + step; b < r.hi; b += step {
			d := CPU(prof, b)
			if d.Status != StatusOK {
				t.Fatalf("regime %s at %v: status %v", r.name, b, d.Status)
			}
			dProc := math.Abs((d.Alloc.Proc - prev.Alloc.Proc).Watts())
			dMem := math.Abs((d.Alloc.Mem - prev.Alloc.Mem).Watts())
			if dProc > step.Watts()+1e-9 || dMem > step.Watts()+1e-9 {
				t.Errorf("regime %s at %v: allocation jumped by (%.3g, %.3g) W for a %.3g W budget step",
					r.name, b, dProc, dMem, step.Watts())
			}
			prev = d
		}
	}
}
