package coord

import "repro/internal/telemetry"

// Per-regime decision handles. Each Algorithm 1 regime and Algorithm 2
// case gets its own counter so regime mix is visible without sampling;
// all are nil (free no-ops) until Instrument is called.
var (
	mCPUSurplus      *telemetry.Counter // regime A: both demands covered
	mCPUMemAdequate  *telemetry.Counter // regime B: memory warranted first
	mCPUProportional *telemetry.Counter // regime C: proportional split
	mCPURejected     *telemetry.Counter // regime D: below threshold
	mGPURejected     *telemetry.Counter
	mGPUComputeInt   *telemetry.Counter
	mGPUMemAdequate  *telemetry.Counter
	mGPUBalanced     *telemetry.Counter
	mGapRatio        *telemetry.Histogram
)

// Instrument registers the coordination metrics on r and activates the
// decision counters inside CPU and GPU. Passing nil disables them.
// Call before any concurrent use of the algorithms.
func Instrument(r *telemetry.Registry) {
	const name = "coord_decisions_total"
	const help = "COORD decisions by algorithm and budget regime."
	mCPUSurplus = r.Counter(name, help, "alg", "cpu", "regime", "surplus")
	mCPUMemAdequate = r.Counter(name, help, "alg", "cpu", "regime", "mem-adequate")
	mCPUProportional = r.Counter(name, help, "alg", "cpu", "regime", "proportional")
	mCPURejected = r.Counter(name, help, "alg", "cpu", "regime", "rejected")
	mGPURejected = r.Counter(name, help, "alg", "gpu", "regime", "rejected")
	mGPUComputeInt = r.Counter(name, help, "alg", "gpu", "regime", "compute-intensive")
	mGPUMemAdequate = r.Counter(name, help, "alg", "gpu", "regime", "mem-adequate")
	mGPUBalanced = r.Counter(name, help, "alg", "gpu", "regime", "balanced")
	mGapRatio = r.Histogram("coord_best_gap_ratio",
		"COORD performance over the exhaustive-sweep best, per comparison.",
		telemetry.RatioBuckets)
}

// ObserveGapRatio records one COORD-over-best performance ratio into
// the gap histogram. Call sites are wherever both the heuristic and the
// exhaustive best are computed (pbc coord, the invariant harness).
func ObserveGapRatio(ratio float64) { mGapRatio.Observe(ratio) }
