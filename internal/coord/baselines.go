package coord

import (
	"repro/internal/core"
	"repro/internal/profile"
	"repro/internal/units"
)

// MemoryFirst implements the memory-first strategy of the paper's
// reference [19], the CPU baseline COORD is compared against in
// Figure 9: conservatively warrant the memory's maximum demand first
// (capped so the CPU keeps at least its floor) and give the CPU whatever
// remains. It avoids the catastrophic memory-under-budget cliff but
// over-provisions memory at small budgets.
func MemoryFirst(prof profile.CPUProfile, budget units.Power) Decision {
	cp := prof.Critical
	if budget < cp.CPUFloor+cp.MemFloor {
		return Decision{Status: StatusTooSmall}
	}
	mem := cp.MemMax
	if budget-mem < cp.CPUFloor {
		mem = budget - cp.CPUFloor
	}
	if mem < cp.MemFloor {
		mem = cp.MemFloor
	}
	return Decision{
		Alloc:  core.Allocation{Proc: budget - mem, Mem: mem},
		Status: StatusOK,
	}
}

// CPUFirst is the mirror baseline: warrant the CPU's maximum demand
// first. The paper's Section 3.4.2 predicts this loses badly when memory
// is the critical component.
func CPUFirst(prof profile.CPUProfile, budget units.Power) Decision {
	cp := prof.Critical
	if budget < cp.CPUFloor+cp.MemFloor {
		return Decision{Status: StatusTooSmall}
	}
	proc := cp.CPUMax
	if budget-proc < cp.MemFloor {
		proc = budget - cp.MemFloor
	}
	if proc < cp.CPUFloor {
		proc = cp.CPUFloor
	}
	return Decision{
		Alloc:  core.Allocation{Proc: proc, Mem: budget - proc},
		Status: StatusOK,
	}
}

// EvenSplit divides the budget equally between the components — the
// naive application-oblivious policy.
func EvenSplit(prof profile.CPUProfile, budget units.Power) Decision {
	cp := prof.Critical
	if budget < cp.CPUFloor+cp.MemFloor {
		return Decision{Status: StatusTooSmall}
	}
	half := budget / 2
	return Decision{
		Alloc:  core.Allocation{Proc: half, Mem: budget - half},
		Status: StatusOK,
	}
}

// NvidiaDefault models the default GPU capping policy the paper measures
// against in Section 6.3: the memory always runs at its nominal clock
// regardless of the imposed cap or the application, and the governor
// throttles only the SMs. COORD beats it by up to ~33% because it adapts
// the memory clock to the application's demand.
func NvidiaDefault(prof profile.GPUProfile, budget units.Power) Decision {
	return Decision{
		Alloc:  core.Allocation{Proc: budget - prof.MemNom, Mem: prof.MemNom},
		Status: StatusOK,
	}
}

// CPUStrategy is a named CPU allocation policy, used by the comparison
// harness for Figure 9.
type CPUStrategy struct {
	Name   string
	Decide func(profile.CPUProfile, units.Power) Decision
}

// GPUStrategy is a named GPU allocation policy.
type GPUStrategy struct {
	Name   string
	Decide func(profile.GPUProfile, units.Power) Decision
}

// CPUStrategies returns the CPU policies Figure 9 compares, COORD first.
func CPUStrategies() []CPUStrategy {
	return []CPUStrategy{
		{Name: "coord", Decide: CPU},
		{Name: "memory-first", Decide: MemoryFirst},
		{Name: "cpu-first", Decide: CPUFirst},
		{Name: "even-split", Decide: EvenSplit},
	}
}

// GPUStrategies returns the GPU policies Figure 9 compares, COORD first.
func GPUStrategies() []GPUStrategy {
	return []GPUStrategy{
		{Name: "coord", Decide: func(p profile.GPUProfile, b units.Power) Decision {
			return GPU(p, b, DefaultGamma)
		}},
		{Name: "nvidia-default", Decide: NvidiaDefault},
	}
}
