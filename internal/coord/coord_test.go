package coord

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/profile"
	"repro/internal/units"
	"repro/internal/workload"
)

func cpuProfile(t *testing.T, platform, wl string) (hw.Platform, workload.Workload, profile.CPUProfile) {
	t.Helper()
	p, err := hw.PlatformByName(platform)
	if err != nil {
		t.Fatal(err)
	}
	w, err := workload.ByName(wl)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := profile.ProfileCPU(p, w)
	if err != nil {
		t.Fatal(err)
	}
	return p, w, prof
}

func gpuProfile(t *testing.T, platform, wl string) (hw.Platform, workload.Workload, profile.GPUProfile) {
	t.Helper()
	p, err := hw.PlatformByName(platform)
	if err != nil {
		t.Fatal(err)
	}
	w, err := workload.ByName(wl)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := profile.ProfileGPU(p, w)
	if err != nil {
		t.Fatal(err)
	}
	return p, w, prof
}

func TestCPUSurplusRegime(t *testing.T) {
	_, _, prof := cpuProfile(t, "ivybridge", "sra")
	cp := prof.Critical
	budget := cp.CPUMax + cp.MemMax + 50
	d := CPU(prof, budget)
	if d.Status != StatusSurplus {
		t.Fatalf("status = %v, want surplus", d.Status)
	}
	if math.Abs(d.Surplus.Watts()-50) > 0.01 {
		t.Errorf("surplus = %v, want 50", d.Surplus)
	}
	// Allocation pins exactly the maximum demands.
	if d.Alloc.Proc != cp.CPUMax || d.Alloc.Mem != cp.MemMax {
		t.Errorf("allocation %v, want demands (%v, %v)", d.Alloc, cp.CPUMax, cp.MemMax)
	}
}

func TestCPUMemoryWarrantRegime(t *testing.T) {
	_, _, prof := cpuProfile(t, "ivybridge", "sra")
	cp := prof.Critical
	budget := cp.CPULowPState + cp.MemMax + 10
	d := CPU(prof, budget)
	if d.Status != StatusOK {
		t.Fatalf("status = %v", d.Status)
	}
	if d.Alloc.Mem != cp.MemMax {
		t.Errorf("memory not warranted its max demand: %v", d.Alloc.Mem)
	}
	if math.Abs((d.Alloc.Total() - budget).Watts()) > 0.01 {
		t.Errorf("allocation %v does not exhaust budget %v", d.Alloc, budget)
	}
}

func TestCPUProportionalRegime(t *testing.T) {
	_, _, prof := cpuProfile(t, "ivybridge", "sra")
	cp := prof.Critical
	budget := cp.CPULowPState + cp.MemAtCPULow + 20
	d := CPU(prof, budget)
	if d.Status != StatusOK {
		t.Fatalf("status = %v", d.Status)
	}
	// Both components get at least their regime base.
	if d.Alloc.Proc < cp.CPULowPState-0.01 {
		t.Errorf("proc %v below L2 base %v", d.Alloc.Proc, cp.CPULowPState)
	}
	if d.Alloc.Mem < cp.MemAtCPULow-0.01 {
		t.Errorf("mem %v below L2m base %v", d.Alloc.Mem, cp.MemAtCPULow)
	}
	if math.Abs((d.Alloc.Total() - budget).Watts()) > 0.01 {
		t.Errorf("budget not exhausted: %v vs %v", d.Alloc.Total(), budget)
	}
}

func TestCPURejectsTinyBudget(t *testing.T) {
	_, _, prof := cpuProfile(t, "ivybridge", "sra")
	d := CPU(prof, prof.Critical.ProductiveThreshold()-5)
	if d.Status != StatusTooSmall {
		t.Errorf("status = %v, want too-small", d.Status)
	}
}

func TestCPUBudgetNeverExceeded(t *testing.T) {
	for _, wl := range []string{"sra", "stream", "dgemm", "mg", "bt", "cg"} {
		_, _, prof := cpuProfile(t, "ivybridge", wl)
		for budget := units.Power(140); budget <= 320; budget += 10 {
			d := CPU(prof, budget)
			if d.Status == StatusTooSmall {
				continue
			}
			if d.Alloc.Total() > budget+0.01 {
				t.Errorf("%s at %v: allocation %v exceeds budget", wl, budget, d.Alloc)
			}
		}
	}
}

func TestCPUNearOptimalAccuracy(t *testing.T) {
	// Section 6.3: COORD within ~5% of the sweep best for large caps and
	// within ~10% on average across caps. Check a representative set.
	workloads := []string{"sra", "stream", "dgemm", "mg", "cg"}
	var totalGap, n float64
	for _, wl := range workloads {
		p, w, prof := cpuProfile(t, "ivybridge", wl)
		for _, budget := range []units.Power{170, 200, 230, 260} {
			d := CPU(prof, budget)
			if d.Status == StatusTooSmall {
				continue
			}
			pb := core.NewProblem(p, w, budget)
			ev, err := pb.Evaluate(d.Alloc)
			if err != nil {
				t.Fatal(err)
			}
			best, err := pb.PerfMax()
			if err != nil {
				t.Fatal(err)
			}
			gap := 1 - ev.Result.Perf/best.Result.Perf
			if gap < -0.05 {
				// COORD may slightly beat the 4 W-stepped sweep (the paper
				// observes the same for NPB LU); a large negative gap would
				// mean the sweep is broken.
				t.Errorf("%s at %v: COORD beats sweep by %.1f%%, suspicious", wl, budget, -gap*100)
			}
			if gap > 0.30 {
				t.Errorf("%s at %v: COORD %.1f%% below best (perf %.1f vs %.1f)",
					wl, budget, gap*100, ev.Result.Perf, best.Result.Perf)
			}
			totalGap += math.Max(gap, 0)
			n++
		}
	}
	if avg := totalGap / n; avg > 0.10 {
		t.Errorf("average COORD gap = %.1f%%, want <= ~10%%", avg*100)
	}
}

func TestCPULargeBudgetMatchesBest(t *testing.T) {
	// With a budget above the max demand, COORD should be within 5% of
	// the best while allocating less power.
	p, w, prof := cpuProfile(t, "ivybridge", "dgemm")
	budget := prof.Critical.CPUMax + prof.Critical.MemMax + 30
	d := CPU(prof, budget)
	pb := core.NewProblem(p, w, budget)
	ev, err := pb.Evaluate(d.Alloc)
	if err != nil {
		t.Fatal(err)
	}
	best, err := pb.PerfMax()
	if err != nil {
		t.Fatal(err)
	}
	if ev.Result.Perf < 0.95*best.Result.Perf {
		t.Errorf("COORD at surplus budget %.1f vs best %.1f", ev.Result.Perf, best.Result.Perf)
	}
	if d.Alloc.Total() >= budget {
		t.Error("surplus regime should allocate less than the budget")
	}
}

func TestCPUBeatsMemoryFirstAtSmallBudgets(t *testing.T) {
	// Section 6.3: COORD generally outperforms memory-first for small
	// power budgets. Compare summed performance across small budgets for
	// compute-leaning workloads.
	var coordSum, memFirstSum float64
	for _, wl := range []string{"dgemm", "bt", "ep"} {
		p, w, prof := cpuProfile(t, "ivybridge", wl)
		thresh := prof.Critical.ProductiveThreshold()
		for _, budget := range []units.Power{thresh + 5, thresh + 20, thresh + 35} {
			pb := core.NewProblem(p, w, budget)
			if d := CPU(prof, budget); d.Status != StatusTooSmall {
				if ev, err := pb.Evaluate(d.Alloc); err == nil {
					coordSum += ev.Result.Perf / prof.UncappedPerf
				}
			}
			if d := MemoryFirst(prof, budget); d.Status != StatusTooSmall {
				if ev, err := pb.Evaluate(d.Alloc); err == nil {
					memFirstSum += ev.Result.Perf / prof.UncappedPerf
				}
			}
		}
	}
	if coordSum <= memFirstSum {
		t.Errorf("COORD (%.3f) should beat memory-first (%.3f) at small budgets",
			coordSum, memFirstSum)
	}
}

func TestGPUComputeIntensiveGetsMinMemory(t *testing.T) {
	_, _, prof := gpuProfile(t, "titanxp", "sgemm")
	d := GPU(prof, 200, DefaultGamma)
	if d.Alloc.Mem != prof.MemMin {
		t.Errorf("SGEMM memory budget = %v, want card minimum %v", d.Alloc.Mem, prof.MemMin)
	}
}

func TestGPUMemoryIntensiveGetsMaxMemory(t *testing.T) {
	_, _, prof := gpuProfile(t, "titanxp", "gpustream")
	d := GPU(prof, 250, DefaultGamma)
	if d.Alloc.Mem != prof.MemMax {
		t.Errorf("STREAM memory budget = %v, want card maximum %v", d.Alloc.Mem, prof.MemMax)
	}
}

func TestGPUBalancedRegimeBelowRef(t *testing.T) {
	_, _, prof := gpuProfile(t, "titanxp", "cloverleaf")
	if prof.ComputeIntensive {
		t.Skip("cloverleaf unexpectedly compute intensive")
	}
	budget := prof.TotRef - 15
	d := GPU(prof, budget, DefaultGamma)
	if d.Alloc.Mem <= prof.MemMin || d.Alloc.Mem >= prof.MemMax {
		t.Errorf("balanced regime memory = %v, want strictly inside (%v, %v)",
			d.Alloc.Mem, prof.MemMin, prof.MemMax)
	}
}

func TestGPUSurplusHint(t *testing.T) {
	_, _, prof := gpuProfile(t, "titanxp", "minife")
	d := GPU(prof, 250, DefaultGamma)
	if d.Status != StatusSurplus {
		t.Errorf("MiniFE at 250 W: status = %v, want surplus (demand ~180)", d.Status)
	}
	if d.Surplus <= 0 {
		t.Error("surplus should be positive")
	}
}

func TestGPUGammaValidation(t *testing.T) {
	_, _, prof := gpuProfile(t, "titanxp", "cloverleaf")
	budget := prof.TotRef - 15
	bad := GPU(prof, budget, -1)
	good := GPU(prof, budget, DefaultGamma)
	if bad.Alloc != good.Alloc {
		t.Error("invalid gamma should fall back to the default")
	}
}

func TestGPUCoordBeatsNvidiaDefaultForSGEMM(t *testing.T) {
	// Section 6.3: COORD outperforms the default capping by up to ~33%
	// because the default pins memory at the nominal clock.
	p, w, prof := gpuProfile(t, "titanxp", "sgemm")
	for _, budget := range []units.Power{140, 160, 180} {
		pb := core.NewProblem(p, w, budget)
		dc := GPU(prof, budget, DefaultGamma)
		dn := NvidiaDefault(prof, budget)
		evC, err := pb.Evaluate(dc.Alloc)
		if err != nil {
			t.Fatal(err)
		}
		evN, err := pb.Evaluate(dn.Alloc)
		if err != nil {
			t.Fatal(err)
		}
		if evC.Result.Perf <= evN.Result.Perf {
			t.Errorf("budget %v: COORD %.0f should beat default %.0f",
				budget, evC.Result.Perf, evN.Result.Perf)
		}
	}
}

func TestGPUNearOptimalAccuracy(t *testing.T) {
	// Section 6.3: COORD within ~2% of best for GPU benchmarks.
	for _, wl := range []string{"sgemm", "gpustream", "minife", "cloverleaf", "cufft", "hpcg"} {
		p, w, prof := gpuProfile(t, "titanxp", wl)
		for _, budget := range []units.Power{150, 200, 250} {
			pb := core.NewProblem(p, w, budget)
			d := GPU(prof, budget, DefaultGamma)
			ev, err := pb.Evaluate(d.Alloc)
			if err != nil {
				t.Fatal(err)
			}
			best, err := pb.PerfMax()
			if err != nil {
				t.Fatal(err)
			}
			if gap := 1 - ev.Result.Perf/best.Result.Perf; gap > 0.05 {
				t.Errorf("%s at %v: COORD %.1f%% below GPU best", wl, budget, gap*100)
			}
		}
	}
}

func TestStrategyListsLeadWithCoord(t *testing.T) {
	cs := CPUStrategies()
	if len(cs) < 3 || cs[0].Name != "coord" {
		t.Errorf("CPU strategies = %v", cs)
	}
	gs := GPUStrategies()
	if len(gs) < 2 || gs[0].Name != "coord" {
		t.Errorf("GPU strategies = %v", gs)
	}
	for _, s := range cs {
		if s.Decide == nil {
			t.Errorf("strategy %s has nil Decide", s.Name)
		}
	}
	for _, s := range gs {
		if s.Decide == nil {
			t.Errorf("strategy %s has nil Decide", s.Name)
		}
	}
}

func TestBaselineFloorHandling(t *testing.T) {
	_, _, prof := cpuProfile(t, "ivybridge", "sra")
	cp := prof.Critical
	// Budgets below the floors are rejected by all baselines.
	tiny := cp.CPUFloor + cp.MemFloor - 5
	for _, s := range CPUStrategies() {
		d := s.Decide(prof, tiny)
		if s.Name == "coord" {
			continue // already tested
		}
		if d.Status != StatusTooSmall {
			t.Errorf("%s accepted a %v budget", s.Name, tiny)
		}
	}
	// Memory-first with a budget that cannot cover MemMax leaves the CPU
	// its floor.
	budget := cp.CPUFloor + cp.MemMax - 10
	d := MemoryFirst(prof, budget)
	if d.Status != StatusOK {
		t.Fatalf("memory-first status = %v", d.Status)
	}
	if d.Alloc.Proc < cp.CPUFloor-0.01 {
		t.Errorf("memory-first starved the CPU below its floor: %v", d.Alloc.Proc)
	}
	// CPU-first mirror.
	d = CPUFirst(prof, cp.MemFloor+cp.CPUMax-10)
	if d.Status != StatusOK || d.Alloc.Mem < cp.MemFloor-0.01 {
		t.Errorf("cpu-first starved memory: %+v", d)
	}
}

func TestStatusString(t *testing.T) {
	if StatusOK.String() != "ok" || StatusSurplus.String() != "surplus" || StatusTooSmall.String() != "too-small" {
		t.Error("status names")
	}
	if Status(42).String() == "" {
		t.Error("unknown status should format")
	}
}
