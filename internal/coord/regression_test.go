package coord

import (
	"math"
	"testing"

	"repro/internal/units"
)

// TestGPUGammaNonFiniteRejected pins the fix for the gamma validation
// hole: NaN compares false against both halves of `gamma <= 0 ||
// gamma > 1`, so a non-finite gamma used to sail through the guard and
// poison the balanced split with NaN allocations.
func TestGPUGammaNonFiniteRejected(t *testing.T) {
	_, _, prof := gpuProfile(t, "titanxp", "gpustream")
	if prof.ComputeIntensive {
		t.Fatalf("gpustream profiled compute intensive; the balanced case is never reached")
	}
	// A budget strictly between the board minimum and TotRef lands in the
	// gamma-balanced case where the bad value is actually used.
	budget := prof.TotRef - 10
	want := GPU(prof, budget, DefaultGamma)
	for _, gamma := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		d := GPU(prof, budget, gamma)
		if math.IsNaN(d.Alloc.Proc.Watts()) || math.IsNaN(d.Alloc.Mem.Watts()) {
			t.Fatalf("gamma=%v produced NaN allocation %v", gamma, d.Alloc)
		}
		if d.Alloc != want.Alloc || d.Status != want.Status {
			t.Errorf("gamma=%v: decision %+v, want default-gamma decision %+v", gamma, d, want)
		}
	}
}

// TestGPUSurplusAccountingBalances pins the surplus-balance invariant of
// Algorithm 2: when the budget exceeds the application's maximum board
// demand, the allocation must be capped at that demand so that
// Alloc.Total() + Surplus == budget. The pre-fix code allocated the full
// budget and reported a surplus on top, double-counting the excess.
func TestGPUSurplusAccountingBalances(t *testing.T) {
	for _, wl := range []string{"gpustream", "sgemm", "minife"} {
		_, _, prof := gpuProfile(t, "titanxp", wl)
		budget := prof.TotMax + 20
		d := GPU(prof, budget, DefaultGamma)
		if d.Status != StatusSurplus {
			t.Fatalf("%s: status = %v at budget %v (TotMax %v), want surplus",
				wl, d.Status, budget, prof.TotMax)
		}
		if math.Abs(d.Surplus.Watts()-20) > 1e-6 {
			t.Errorf("%s: surplus = %v, want 20 W", wl, d.Surplus)
		}
		if got := d.Alloc.Total() + d.Surplus; math.Abs((got - budget).Watts()) > 1e-6 {
			t.Errorf("%s: Alloc.Total()+Surplus = %v, want budget %v (alloc %v)",
				wl, got, budget, d.Alloc)
		}
		if math.Abs((d.Alloc.Total() - prof.TotMax).Watts()) > 1e-6 {
			t.Errorf("%s: surplus allocation %v does not pin the maximum demand %v",
				wl, d.Alloc, prof.TotMax)
		}
	}
}

// TestGPUTinyBudgetRejected pins the lower boundary of Algorithm 2: a
// budget at or below the memory power floor leaves nothing for the SMs
// and must be rejected, mirroring Algorithm 1's productive threshold.
// The pre-fix code returned StatusOK with a negative Proc member.
func TestGPUTinyBudgetRejected(t *testing.T) {
	_, _, prof := gpuProfile(t, "titanxp", "gpustream")
	for _, budget := range []units.Power{0, prof.MemMin / 2, prof.MemMin} {
		d := GPU(prof, budget, DefaultGamma)
		if d.Status != StatusTooSmall {
			t.Errorf("budget %v (mem floor %v): status = %v, alloc %v; want too-small",
				budget, prof.MemMin, d.Status, d.Alloc)
		}
	}
}

// TestGPUSurplusThresholdBoundary probes Algorithm 2 within ±1e-9 W of
// P_tot_max: the surplus verdict must flip exactly at the boundary and
// the allocation must stay continuous (no budget jump from an
// off-by-epsilon misclassification).
func TestGPUSurplusThresholdBoundary(t *testing.T) {
	_, _, prof := gpuProfile(t, "titanxp", "sgemm")
	const eps = 1e-9
	below := GPU(prof, prof.TotMax-eps, DefaultGamma)
	at := GPU(prof, prof.TotMax, DefaultGamma)
	above := GPU(prof, prof.TotMax+eps, DefaultGamma)
	if below.Status != StatusOK {
		t.Errorf("TotMax-eps: status %v, want ok", below.Status)
	}
	if at.Status != StatusSurplus || at.Surplus != 0 {
		t.Errorf("TotMax: status %v surplus %v, want surplus 0", at.Status, at.Surplus)
	}
	if above.Status != StatusSurplus {
		t.Errorf("TotMax+eps: status %v, want surplus", above.Status)
	}
	if d := math.Abs((above.Alloc.Total() - below.Alloc.Total()).Watts()); d > 1e-6 {
		t.Errorf("allocation discontinuity %v W across the TotMax boundary", d)
	}
}
