// Package coord implements the paper's category-based heuristic power
// coordination method COORD: Algorithm 1 for CPU computing and
// Algorithm 2 for GPU computing, plus the baselines it is evaluated
// against in Section 6.3 (the exhaustive-sweep best lives in core; the
// memory-first strategy of the paper's reference [19] and the default
// Nvidia capping policy live here).
//
// COORD eliminates exhaustive or fine-grained profiling: from the
// lightweight profile of package profile it pinpoints a near-optimal
// cross-component allocation for any budget in O(1).
package coord

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/profile"
	"repro/internal/units"
)

// Status classifies COORD's verdict on a budget.
type Status int

// COORD statuses.
const (
	// StatusOK: the budget was distributed normally.
	StatusOK Status = iota
	// StatusSurplus: the budget exceeds the application's maximum demand;
	// the surplus should be returned to the higher-level scheduler.
	StatusSurplus
	// StatusTooSmall: the budget cannot run the job productively (below
	// P_cpu_L2 + P_mem_L2); COORD rejects the allocation.
	StatusTooSmall
)

// String names the status.
func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusSurplus:
		return "surplus"
	case StatusTooSmall:
		return "too-small"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Decision is COORD's output: an allocation tuple plus the status hint
// the algorithm returns to its caller.
type Decision struct {
	Alloc  core.Allocation
	Status Status
	// Surplus is the unused budget to return upstream when Status is
	// StatusSurplus.
	Surplus units.Power
}

// CPU implements Algorithm 1, the category-based heuristic for CPU
// computing. It splits the budget space into four regimes:
//
//	(A) adequate for both components at their highest state — allocate
//	    exactly the maximum demands and report the surplus;
//	(B) adequate for one — warrant the memory budget first (memory
//	    under-powering costs more performance, Section 3.4.2) and give
//	    the CPU the remainder;
//	(C) neither adequate — split the surplus above (L2c+L2m)
//	    proportionally to the components' power dynamic ranges;
//	(D) below the productive threshold — reject.
func CPU(prof profile.CPUProfile, budget units.Power) Decision {
	cp := prof.Critical
	switch {
	case budget >= cp.CPUMax+cp.MemMax:
		mCPUSurplus.Inc()
		return Decision{
			Alloc:   core.Allocation{Proc: cp.CPUMax, Mem: cp.MemMax},
			Status:  StatusSurplus,
			Surplus: budget - (cp.CPUMax + cp.MemMax),
		}
	case budget >= cp.CPULowPState+cp.MemMax:
		mCPUMemAdequate.Inc()
		mem := cp.MemMax
		return Decision{
			Alloc:  core.Allocation{Proc: budget - mem, Mem: mem},
			Status: StatusOK,
		}
	case budget >= cp.CPULowPState+cp.MemAtCPULow:
		mCPUProportional.Inc()
		pdCPU := (cp.CPUMax - cp.CPULowPState).Watts()
		pdMem := (cp.MemMax - cp.MemAtCPULow).Watts()
		pctCPU := 0.5
		if pdCPU+pdMem > 0 {
			pctCPU = pdCPU / (pdCPU + pdMem)
		}
		prop := budget - (cp.CPULowPState + cp.MemAtCPULow)
		proc := cp.CPULowPState + units.Power(pctCPU*prop.Watts())
		return Decision{
			Alloc:  core.Allocation{Proc: proc, Mem: budget - proc},
			Status: StatusOK,
		}
	default:
		mCPURejected.Inc()
		return Decision{Status: StatusTooSmall}
	}
}

// DefaultGamma is the balance parameter for Algorithm 2's in-between
// case; the paper sets it empirically to 0.5.
const DefaultGamma = 0.5

// GPU implements Algorithm 2, the simplified heuristic for GPU computing.
// The allocation's Mem member is the memory power budget (programmed as
// the highest memory clock whose estimated power fits); Proc is the
// remainder of the board cap, which the board governor enforces jointly.
//
// Cases: compute-intensive applications get minimum memory power (every
// spare watt goes to the SMs); other applications get maximum memory
// power when the budget covers the reference total P_tot_ref, and a
// gamma-balanced split between the extremes otherwise.
//
// Budgets at or below the card's memory power floor leave nothing for
// the SMs and are rejected, mirroring Algorithm 1's productive
// threshold. Above the application's maximum board demand P_tot_max the
// allocation pins the demand and the excess is reported as Surplus, so
// Alloc.Total() + Surplus always balances the budget.
func GPU(prof profile.GPUProfile, budget units.Power, gamma float64) Decision {
	// NaN compares false against every bound, so the guard must be
	// phrased positively: anything that is not a finite value in (0, 1]
	// — including NaN and both infinities — falls back to the paper's
	// empirical default.
	if !(gamma > 0 && gamma <= 1) {
		gamma = DefaultGamma
	}
	if budget <= prof.MemMin {
		mGPURejected.Inc()
		return Decision{Status: StatusTooSmall}
	}
	d := Decision{Status: StatusOK}
	effective := budget
	if budget >= prof.TotMax {
		d.Status = StatusSurplus
		d.Surplus = budget - prof.TotMax
		effective = prof.TotMax
	}
	var mem units.Power
	switch {
	case prof.ComputeIntensive:
		mGPUComputeInt.Inc()
		mem = prof.MemMin
	case effective >= prof.TotRef:
		mGPUMemAdequate.Inc()
		mem = prof.MemMax
	default:
		mGPUBalanced.Inc()
		// TotMin is the board total with both domains at their minimum
		// clocks: TotRef minus the memory's nominal-to-minimum drop.
		totMin := prof.TotRef - (prof.MemNom - prof.MemMin)
		mem = prof.MemMin + units.Power(gamma*(effective-totMin).Watts())
	}
	mem = mem.Clamp(prof.MemMin, prof.MemMax)
	d.Alloc = core.Allocation{Proc: effective - mem, Mem: mem}
	return d
}
