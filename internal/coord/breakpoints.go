package coord

import (
	"repro/internal/profile"
	"repro/internal/units"
)

// The breakpoint helpers below expose the budget values where each
// policy's allocation changes regime or slope. Between two adjacent
// breakpoints every policy in this package is linear in the budget, so
// a decision table whose grid contains the breakpoints can reconstruct
// the allocation exactly by linear interpolation — the foundation of
// internal/decisiontable's exactness contract.

// CPUBreakpoints returns Algorithm 1's regime boundaries for a profile,
// in ascending order: the productive threshold (reject → proportional),
// the memory-adequate boundary (proportional → memory-first remainder),
// and the surplus boundary (allocation pins at maximum demand).
func CPUBreakpoints(prof profile.CPUProfile) []units.Power {
	cp := prof.Critical
	return []units.Power{
		cp.ProductiveThreshold(),
		cp.CPULowPState + cp.MemMax,
		cp.CPUMax + cp.MemMax,
	}
}

// MemoryFirstBreakpoints returns the memory-first baseline's kinks: the
// reject bound (below the component floors) and the budget where the
// memory grant stops being clamped by the CPU floor.
func MemoryFirstBreakpoints(prof profile.CPUProfile) []units.Power {
	cp := prof.Critical
	return []units.Power{
		cp.CPUFloor + cp.MemFloor,
		cp.CPUFloor + cp.MemMax,
	}
}

// GPUBreakpoints returns Algorithm 2's regime boundaries for a profile
// under the given gamma (non-positive or >1 falls back to DefaultGamma,
// mirroring GPU): the reject bound at the memory floor, the budget
// where the balanced split's low clamp releases, where its high clamp
// engages, the reference total (balanced → memory-adequate), and the
// surplus boundary. Values may repeat or sit outside the productive
// range; table builders sort, deduplicate, and clip them.
func GPUBreakpoints(prof profile.GPUProfile, gamma float64) []units.Power {
	if !(gamma > 0 && gamma <= 1) {
		gamma = DefaultGamma
	}
	totMin := prof.TotRef - (prof.MemNom - prof.MemMin)
	return []units.Power{
		prof.MemMin,
		totMin,
		totMin + units.Power((prof.MemMax-prof.MemMin).Watts()/gamma),
		prof.TotRef,
		prof.TotMax,
	}
}
