package report

import (
	"strings"
	"testing"
)

func FuzzTableRendering(f *testing.F) {
	f.Add("title", "a,b", `cell "quoted"`, "plain")
	f.Add("", "", "", "")
	f.Add("t", "h1|h2", "x\ny", "z")
	f.Fuzz(func(t *testing.T, title, header, c1, c2 string) {
		tb := NewTable(title, header)
		tb.AddRow(c1, c2)
		tb.AddRow(c2)
		// Rendering must not panic and must contain the cells it was
		// given (String pads, CSV escapes).
		out := tb.String()
		if title != "" && !strings.Contains(out, title) {
			t.Fatalf("title lost: %q", out)
		}
		csv := tb.CSV()
		// CSV must have one line per row plus the header.
		lines := strings.Count(csv, "\n")
		wantLines := 3 + strings.Count(header, "\n") + strings.Count(c1, "\n") +
			2*strings.Count(c2, "\n")
		if lines != wantLines {
			t.Fatalf("CSV line count %d, want %d: %q", lines, wantLines, csv)
		}
	})
}

func FuzzSparkline(f *testing.F) {
	f.Add(1.0, 2.0, 3.0)
	f.Add(0.0, 0.0, 0.0)
	f.Add(-1e300, 1e300, 0.0)
	f.Fuzz(func(t *testing.T, a, b, c float64) {
		s := Sparkline([]float64{a, b, c})
		if n := len([]rune(s)); n != 3 {
			t.Fatalf("sparkline length %d, want 3", n)
		}
	})
}
