// Package report renders experiment output for terminals and files:
// aligned ASCII tables, CSV, unicode sparklines, and simple scatter/line
// charts. The experiment harness uses it to print the same rows and
// series the paper's tables and figures report.
package report

import (
	"fmt"
	"math"
	"strings"
)

// Table is a titled grid of cells with a header row.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends one row; missing cells render empty, extra cells are
// kept (the widest row defines the column count).
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddRowf appends one row built from format/value pairs: each argument is
// rendered with %v unless it is a float64, which renders with 4
// significant digits.
func (t *Table) AddRowf(values ...interface{}) {
	row := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			row[i] = FormatFloat(x)
		case fmt.Stringer:
			row[i] = x.String()
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// columns returns the column count across headers and rows.
func (t *Table) columns() int {
	n := len(t.Headers)
	for _, r := range t.Rows {
		if len(r) > n {
			n = len(r)
		}
	}
	return n
}

// String renders the table with aligned columns and a rule under the
// header.
func (t *Table) String() string {
	n := t.columns()
	if n == 0 {
		return t.Title + "\n"
	}
	widths := make([]int, n)
	measure := func(row []string) {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.Headers)
	for _, r := range t.Rows {
		measure(r)
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(row []string) {
		for i := 0; i < n; i++ {
			c := ""
			if i < len(row) {
				c = row[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(pad(c, widths[i]))
		}
		b.WriteByte('\n')
	}
	if len(t.Headers) > 0 {
		writeRow(t.Headers)
		for i := 0; i < n; i++ {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(strings.Repeat("-", widths[i]))
		}
		b.WriteByte('\n')
	}
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// CSV renders the table as RFC-4180-style CSV (quoting cells that contain
// commas, quotes, or newlines).
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(row []string) {
		for i, c := range row {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(csvEscape(c))
		}
		b.WriteByte('\n')
	}
	if len(t.Headers) > 0 {
		writeRow(t.Headers)
	}
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// FormatFloat renders a float with four significant digits, dropping
// scientific notation for the magnitudes experiments produce.
func FormatFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 0):
		return "Inf"
	case v == 0:
		return "0"
	case math.Abs(v) >= 1000:
		return fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 10:
		return fmt.Sprintf("%.1f", v)
	case math.Abs(v) >= 0.01:
		return fmt.Sprintf("%.3f", v)
	default:
		return fmt.Sprintf("%.3g", v)
	}
}

// sparkRunes are the eight block heights of a unicode sparkline.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders values as a one-line unicode bar series, scaled to
// the data range. Empty input yields an empty string; a constant series
// renders mid-height.
func Sparkline(ys []float64) string {
	if len(ys) == 0 {
		return ""
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, y := range ys {
		lo = math.Min(lo, y)
		hi = math.Max(hi, y)
	}
	var b strings.Builder
	for _, y := range ys {
		idx := len(sparkRunes) / 2
		if hi > lo {
			idx = int((y - lo) / (hi - lo) * float64(len(sparkRunes)-1))
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sparkRunes) {
			idx = len(sparkRunes) - 1
		}
		b.WriteRune(sparkRunes[idx])
	}
	return b.String()
}

// Chart renders an (x, y) series as a fixed-size ASCII scatter chart with
// axis annotations — enough to eyeball the shape of a figure in a
// terminal or a log file.
func Chart(title string, xs, ys []float64, width, height int) string {
	if len(xs) == 0 || len(xs) != len(ys) || width < 8 || height < 3 {
		return title + " (no data)\n"
	}
	xlo, xhi := minMax(xs)
	ylo, yhi := minMax(ys)
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for i := range xs {
		cx, cy := 0, 0
		if xhi > xlo {
			cx = int((xs[i] - xlo) / (xhi - xlo) * float64(width-1))
		}
		if yhi > ylo {
			cy = int((ys[i] - ylo) / (yhi - ylo) * float64(height-1))
		}
		row := height - 1 - cy
		grid[row][cx] = '*'
	}
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	fmt.Fprintf(&b, "%s (y: %s .. %s)\n", strings.Repeat("-", width), FormatFloat(ylo), FormatFloat(yhi))
	for _, row := range grid {
		b.WriteString("|")
		b.Write(row)
		b.WriteString("|\n")
	}
	fmt.Fprintf(&b, "%s (x: %s .. %s)\n", strings.Repeat("-", width), FormatFloat(xlo), FormatFloat(xhi))
	return b.String()
}

func minMax(vs []float64) (float64, float64) {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range vs {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	return lo, hi
}
