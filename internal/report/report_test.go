package report

import (
	"math"
	"strings"
	"testing"
)

func TestTableString(t *testing.T) {
	tb := NewTable("Demo", "name", "watts")
	tb.AddRow("cpu", "112.0")
	tb.AddRow("dram", "116.0")
	out := tb.String()
	if !strings.Contains(out, "Demo") {
		t.Error("missing title")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title, header, rule, two rows.
	if len(lines) != 5 {
		t.Fatalf("line count = %d:\n%s", len(lines), out)
	}
	// Columns align: "name" padded to "dram" width.
	if !strings.HasPrefix(lines[1], "name ") {
		t.Errorf("header row = %q", lines[1])
	}
	if !strings.Contains(lines[2], "----") {
		t.Errorf("rule row = %q", lines[2])
	}
}

func TestTableRaggedRows(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow("1")
	tb.AddRow("1", "2", "3")
	out := tb.String()
	if !strings.Contains(out, "3") {
		t.Error("extra cell dropped")
	}
	// Must not panic and must keep alignment for all three columns.
	for _, line := range strings.Split(out, "\n") {
		_ = line
	}
}

func TestTableEmpty(t *testing.T) {
	tb := &Table{Title: "empty"}
	if got := tb.String(); got != "empty\n" {
		t.Errorf("empty table = %q", got)
	}
}

func TestTableAddRowf(t *testing.T) {
	tb := NewTable("", "v")
	tb.AddRowf(3.14159, 42, "str")
	row := tb.Rows[0]
	if row[0] != "3.142" {
		t.Errorf("float cell = %q", row[0])
	}
	if row[1] != "42" || row[2] != "str" {
		t.Errorf("cells = %v", row)
	}
}

func TestCSVEscaping(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow(`say "hi"`, "x,y")
	csv := tb.CSV()
	if !strings.Contains(csv, `"say ""hi"""`) {
		t.Errorf("quote escaping: %q", csv)
	}
	if !strings.Contains(csv, `"x,y"`) {
		t.Errorf("comma escaping: %q", csv)
	}
	if !strings.HasPrefix(csv, "a,b\n") {
		t.Errorf("header: %q", csv)
	}
}

func TestFormatFloat(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{0, "0"},
		{12345, "12345"},
		{82.3, "82.3"},
		{3.14159, "3.142"},
		{0.000123, "0.000123"},
		{math.NaN(), "NaN"},
		{math.Inf(1), "Inf"},
	}
	for _, c := range cases {
		if got := FormatFloat(c.v); got != c.want {
			t.Errorf("FormatFloat(%v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestSparkline(t *testing.T) {
	if got := Sparkline(nil); got != "" {
		t.Errorf("empty sparkline = %q", got)
	}
	s := Sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7})
	runes := []rune(s)
	if len(runes) != 8 {
		t.Fatalf("length = %d", len(runes))
	}
	if runes[0] != '▁' || runes[7] != '█' {
		t.Errorf("scaling: %q", s)
	}
	// Monotone data renders monotone glyphs.
	for i := 1; i < len(runes); i++ {
		if runes[i] < runes[i-1] {
			t.Errorf("not monotone: %q", s)
		}
	}
	// Constant series stays mid-height and does not panic.
	c := []rune(Sparkline([]float64{5, 5, 5}))
	if len(c) != 3 || c[0] != c[1] || c[1] != c[2] {
		t.Errorf("constant sparkline = %q", string(c))
	}
}

func TestChart(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4}
	ys := []float64{0, 1, 4, 9, 16}
	out := Chart("parabola", xs, ys, 20, 6)
	if !strings.Contains(out, "parabola") {
		t.Error("missing title")
	}
	if strings.Count(out, "*") == 0 {
		t.Error("no points plotted")
	}
	if !strings.Contains(out, "x: 0 .. 4") {
		t.Errorf("x annotation missing:\n%s", out)
	}
	// Degenerate inputs.
	if got := Chart("t", nil, nil, 20, 6); !strings.Contains(got, "no data") {
		t.Errorf("empty chart = %q", got)
	}
	if got := Chart("t", xs, ys[:3], 20, 6); !strings.Contains(got, "no data") {
		t.Error("mismatched lengths accepted")
	}
	if got := Chart("t", xs, ys, 2, 2); !strings.Contains(got, "no data") {
		t.Error("tiny dimensions accepted")
	}
	// Constant y must not panic.
	out = Chart("flat", xs, []float64{2, 2, 2, 2, 2}, 20, 4)
	if strings.Count(out, "*") == 0 {
		t.Error("flat chart lost its points")
	}
}
