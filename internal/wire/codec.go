package wire

import "math"

// Per-shape encoders (append style) and decoders. Encoders append one
// complete frame to dst and return the extended slice; they allocate
// only if dst runs out of capacity, so a pooled buffer makes encoding
// allocation-free in steady state. A value that cannot be represented
// within the frame limits — a string field past 64 KiB, or a frame past
// MaxFrame (a very large schedule round) — fails with ErrFrameTooLarge
// and dst is returned unchanged; encoders never truncate silently.
// Decoders fill a caller-supplied struct, reusing slice capacity, so a
// pooled response struct makes decoding allocation-free too (for
// catalog vocabulary; see intern.go).

// minimum encoded sizes for repeated elements, used to validate counts
// against the bytes actually present.
const (
	minStep      = 2 + 8 + 8 + 8 + 2 + 1 // phase, weight, alloc, status, fellback
	minNode      = 2 + 2                 // id, platform
	minJob       = 2 + 2                 // id, workload
	minPlacement = 2 + 2 + 8 + 8 + 8 + 8 + 8
	minString    = 2
	minTreeNode  = 2 + 2 + 2 + 4         // id, platform, workload, priority
	minTreeRack  = 2 + 8 + 4             // id, cap, node count
	minTreeGrant = 2 + 2 + 4 + 8 + 8 + 8 + 2 + 8 + 8
	minRackGrant = 2 + 8 + 8 + 4 + 4
	minTreeShed  = 2 + 2 + 4 + 8 + 2
)

// AppendCoordRequest appends a TCoordRequest frame.
func AppendCoordRequest(dst []byte, m *CoordRequest) ([]byte, error) {
	e, p := beginEnc(dst, TCoordRequest)
	e.str(m.Platform)
	e.str(m.Workload)
	e.f64(m.Budget)
	e.str(m.Strategy)
	e.u32(clampU32(m.TimeoutMS))
	return e.finish(p)
}

// DecodeCoordRequest decodes a TCoordRequest frame into out.
func DecodeCoordRequest(data []byte, out *CoordRequest) error {
	r, err := openFrame(data, TCoordRequest)
	if err != nil {
		return err
	}
	out.Platform = r.str()
	out.Workload = r.str()
	out.Budget = r.f64()
	out.Strategy = r.str()
	out.TimeoutMS = int(r.u32())
	return r.closeFrame()
}

// AppendCoordResponse appends a TCoordResponse frame.
func AppendCoordResponse(dst []byte, m *CoordResponse) ([]byte, error) {
	e, p := beginEnc(dst, TCoordResponse)
	e.str(m.Platform)
	e.str(m.Workload)
	e.str(m.Kind)
	e.str(m.Strategy)
	e.f64(m.Budget)
	e.str(m.Status)
	e.bool(m.Alloc != nil)
	if m.Alloc != nil {
		e.f64(m.Alloc.ProcWatts)
		e.f64(m.Alloc.MemWatts)
	}
	e.f64(m.SurplusWatts)
	e.f64(m.ExpectedPerf)
	e.str(m.PerfUnit)
	e.f64(m.ExpectedPower)
	return e.finish(p)
}

// DecodeCoordResponse decodes a TCoordResponse frame into out. When
// the frame carries an allocation, out.Alloc is reused if non-nil.
func DecodeCoordResponse(data []byte, out *CoordResponse) error {
	r, err := openFrame(data, TCoordResponse)
	if err != nil {
		return err
	}
	out.Platform = r.str()
	out.Workload = r.str()
	out.Kind = r.str()
	out.Strategy = r.str()
	out.Budget = r.f64()
	out.Status = r.str()
	if r.bool() {
		if out.Alloc == nil {
			out.Alloc = &AllocJSON{}
		}
		out.Alloc.ProcWatts = r.f64()
		out.Alloc.MemWatts = r.f64()
	} else {
		out.Alloc = nil
	}
	out.SurplusWatts = r.f64()
	out.ExpectedPerf = r.f64()
	out.PerfUnit = r.str()
	out.ExpectedPower = r.f64()
	return r.closeFrame()
}

// AppendPlanRequest appends a TPlanRequest frame.
func AppendPlanRequest(dst []byte, m *PlanRequest) ([]byte, error) {
	e, p := beginEnc(dst, TPlanRequest)
	e.str(m.Platform)
	e.str(m.Workload)
	e.f64(m.Budget)
	e.u32(clampU32(m.TimeoutMS))
	return e.finish(p)
}

// DecodePlanRequest decodes a TPlanRequest frame into out.
func DecodePlanRequest(data []byte, out *PlanRequest) error {
	r, err := openFrame(data, TPlanRequest)
	if err != nil {
		return err
	}
	out.Platform = r.str()
	out.Workload = r.str()
	out.Budget = r.f64()
	out.TimeoutMS = int(r.u32())
	return r.closeFrame()
}

// AppendPlanResponse appends a TPlanResponse frame.
func AppendPlanResponse(dst []byte, m *PlanResponse) ([]byte, error) {
	e, p := beginEnc(dst, TPlanResponse)
	e.str(m.Platform)
	e.str(m.Workload)
	e.f64(m.Budget)
	e.u32(uint32(len(m.Steps)))
	for i := range m.Steps {
		st := &m.Steps[i]
		e.str(st.Phase)
		e.f64(st.Weight)
		e.f64(st.Alloc.ProcWatts)
		e.f64(st.Alloc.MemWatts)
		e.str(st.Status)
		e.bool(st.FellBack)
	}
	e.bool(m.Rejected)
	return e.finish(p)
}

// DecodePlanResponse decodes a TPlanResponse frame into out, reusing
// out.Steps' capacity.
func DecodePlanResponse(data []byte, out *PlanResponse) error {
	r, err := openFrame(data, TPlanResponse)
	if err != nil {
		return err
	}
	out.Platform = r.str()
	out.Workload = r.str()
	out.Budget = r.f64()
	n := r.count(minStep)
	out.Steps = out.Steps[:0]
	for i := 0; i < n && r.err == nil; i++ {
		var st PlanStepJSON
		st.Phase = r.str()
		st.Weight = r.f64()
		st.Alloc.ProcWatts = r.f64()
		st.Alloc.MemWatts = r.f64()
		st.Status = r.str()
		st.FellBack = r.bool()
		out.Steps = append(out.Steps, st)
	}
	out.Rejected = r.bool()
	return r.closeFrame()
}

// AppendScheduleRequest appends a TScheduleRequest frame. A request
// over MaxFrame (a cluster round naming tens of thousands of nodes and
// jobs) fails with ErrFrameTooLarge; such rounds must travel as JSON.
func AppendScheduleRequest(dst []byte, m *ScheduleRequest) ([]byte, error) {
	e, p := beginEnc(dst, TScheduleRequest)
	e.f64(m.Budget)
	e.u32(uint32(len(m.Nodes)))
	for i := range m.Nodes {
		e.str(m.Nodes[i].ID)
		e.str(m.Nodes[i].Platform)
	}
	e.u32(uint32(len(m.Jobs)))
	for i := range m.Jobs {
		e.str(m.Jobs[i].ID)
		e.str(m.Jobs[i].Workload)
	}
	e.u32(clampU32(m.TimeoutMS))
	return e.finish(p)
}

// DecodeScheduleRequest decodes a TScheduleRequest frame into out,
// reusing the Nodes and Jobs capacity.
func DecodeScheduleRequest(data []byte, out *ScheduleRequest) error {
	r, err := openFrame(data, TScheduleRequest)
	if err != nil {
		return err
	}
	out.Budget = r.f64()
	nn := r.count(minNode)
	out.Nodes = out.Nodes[:0]
	for i := 0; i < nn && r.err == nil; i++ {
		out.Nodes = append(out.Nodes, NodeJSON{ID: r.str(), Platform: r.str()})
	}
	nj := r.count(minJob)
	out.Jobs = out.Jobs[:0]
	for i := 0; i < nj && r.err == nil; i++ {
		out.Jobs = append(out.Jobs, JobJSON{ID: r.str(), Workload: r.str()})
	}
	out.TimeoutMS = int(r.u32())
	return r.closeFrame()
}

// AppendScheduleResponse appends a TScheduleResponse frame. Like the
// request shape it can legitimately exceed MaxFrame for huge rounds, in
// which case ErrFrameTooLarge tells the server to answer in JSON.
func AppendScheduleResponse(dst []byte, m *ScheduleResponse) ([]byte, error) {
	e, p := beginEnc(dst, TScheduleResponse)
	e.u32(uint32(len(m.Placements)))
	for i := range m.Placements {
		pl := &m.Placements[i]
		e.str(pl.Job)
		e.str(pl.Node)
		e.f64(pl.Budget)
		e.f64(pl.Alloc.ProcWatts)
		e.f64(pl.Alloc.MemWatts)
		e.f64(pl.ExpectedPerf)
		e.f64(pl.ExpectedPower)
	}
	e.u32(uint32(len(m.Deferred)))
	for _, d := range m.Deferred {
		e.str(d)
	}
	e.f64(m.PoolLeft)
	e.f64(m.TotalPower)
	return e.finish(p)
}

// DecodeScheduleResponse decodes a TScheduleResponse frame into out,
// reusing the Placements and Deferred capacity.
func DecodeScheduleResponse(data []byte, out *ScheduleResponse) error {
	r, err := openFrame(data, TScheduleResponse)
	if err != nil {
		return err
	}
	np := r.count(minPlacement)
	out.Placements = out.Placements[:0]
	for i := 0; i < np && r.err == nil; i++ {
		var pl PlacementJSON
		pl.Job = r.str()
		pl.Node = r.str()
		pl.Budget = r.f64()
		pl.Alloc.ProcWatts = r.f64()
		pl.Alloc.MemWatts = r.f64()
		pl.ExpectedPerf = r.f64()
		pl.ExpectedPower = r.f64()
		out.Placements = append(out.Placements, pl)
	}
	nd := r.count(minString)
	out.Deferred = out.Deferred[:0]
	for i := 0; i < nd && r.err == nil; i++ {
		out.Deferred = append(out.Deferred, r.str())
	}
	out.PoolLeft = r.f64()
	out.TotalPower = r.f64()
	return r.closeFrame()
}

// AppendTreeRequest appends a TTreeRequest frame. Like the schedule
// shapes, a request over MaxFrame (thousands of racks) fails with
// ErrFrameTooLarge and must travel as JSON.
func AppendTreeRequest(dst []byte, m *TreeRequest) ([]byte, error) {
	e, p := beginEnc(dst, TTreeRequest)
	e.f64(m.Budget)
	e.u32(uint32(len(m.Racks)))
	for i := range m.Racks {
		r := &m.Racks[i]
		e.str(r.ID)
		e.f64(r.CapWatts)
		e.u32(uint32(len(r.Nodes)))
		for j := range r.Nodes {
			n := &r.Nodes[j]
			e.str(n.ID)
			e.str(n.Platform)
			e.str(n.Workload)
			e.u32(clampU32(n.Priority))
		}
	}
	e.u32(clampU32(m.TimeoutMS))
	return e.finish(p)
}

// DecodeTreeRequest decodes a TTreeRequest frame into out, reusing the
// Racks capacity (per-rack node slices are reallocated).
func DecodeTreeRequest(data []byte, out *TreeRequest) error {
	r, err := openFrame(data, TTreeRequest)
	if err != nil {
		return err
	}
	out.Budget = r.f64()
	nr := r.count(minTreeRack)
	out.Racks = out.Racks[:0]
	for i := 0; i < nr && r.err == nil; i++ {
		var rk TreeRackJSON
		rk.ID = r.str()
		rk.CapWatts = r.f64()
		nn := r.count(minTreeNode)
		for j := 0; j < nn && r.err == nil; j++ {
			rk.Nodes = append(rk.Nodes, TreeNodeJSON{
				ID:       r.str(),
				Platform: r.str(),
				Workload: r.str(),
				Priority: int(r.u32()),
			})
		}
		out.Racks = append(out.Racks, rk)
	}
	out.TimeoutMS = int(r.u32())
	return r.closeFrame()
}

// AppendTreeResponse appends a TTreeResponse frame.
func AppendTreeResponse(dst []byte, m *TreeResponse) ([]byte, error) {
	e, p := beginEnc(dst, TTreeResponse)
	e.f64(m.Budget)
	e.f64(m.Granted)
	e.f64(m.Surplus)
	e.f64(m.TotalPerf)
	e.f64(m.Oversubscription)
	e.u32(uint32(len(m.Grants)))
	for i := range m.Grants {
		g := &m.Grants[i]
		e.str(g.Node)
		e.str(g.Rack)
		e.u32(clampU32(g.Priority))
		e.f64(g.Budget)
		e.f64(g.Alloc.ProcWatts)
		e.f64(g.Alloc.MemWatts)
		e.str(g.Status)
		e.f64(g.SurplusWatts)
		e.f64(g.ExpectedPerf)
	}
	e.u32(uint32(len(m.Racks)))
	for i := range m.Racks {
		rr := &m.Racks[i]
		e.str(rr.Rack)
		e.f64(rr.CapWatts)
		e.f64(rr.Budget)
		e.u32(clampU32(rr.Kept))
		e.u32(clampU32(rr.Shed))
	}
	e.u32(uint32(len(m.Shed)))
	for i := range m.Shed {
		s := &m.Shed[i]
		e.str(s.Node)
		e.str(s.Rack)
		e.u32(clampU32(s.Priority))
		e.f64(s.FloorWatts)
		e.str(s.Reason)
	}
	return e.finish(p)
}

// DecodeTreeResponse decodes a TTreeResponse frame into out, reusing
// the Grants, Racks, and Shed capacity.
func DecodeTreeResponse(data []byte, out *TreeResponse) error {
	r, err := openFrame(data, TTreeResponse)
	if err != nil {
		return err
	}
	out.Budget = r.f64()
	out.Granted = r.f64()
	out.Surplus = r.f64()
	out.TotalPerf = r.f64()
	out.Oversubscription = r.f64()
	ng := r.count(minTreeGrant)
	out.Grants = out.Grants[:0]
	for i := 0; i < ng && r.err == nil; i++ {
		var g TreeGrantJSON
		g.Node = r.str()
		g.Rack = r.str()
		g.Priority = int(r.u32())
		g.Budget = r.f64()
		g.Alloc.ProcWatts = r.f64()
		g.Alloc.MemWatts = r.f64()
		g.Status = r.str()
		g.SurplusWatts = r.f64()
		g.ExpectedPerf = r.f64()
		out.Grants = append(out.Grants, g)
	}
	nr := r.count(minRackGrant)
	out.Racks = out.Racks[:0]
	for i := 0; i < nr && r.err == nil; i++ {
		var rr TreeRackGrantJSON
		rr.Rack = r.str()
		rr.CapWatts = r.f64()
		rr.Budget = r.f64()
		rr.Kept = int(r.u32())
		rr.Shed = int(r.u32())
		out.Racks = append(out.Racks, rr)
	}
	ns := r.count(minTreeShed)
	out.Shed = out.Shed[:0]
	for i := 0; i < ns && r.err == nil; i++ {
		var s TreeShedJSON
		s.Node = r.str()
		s.Rack = r.str()
		s.Priority = int(r.u32())
		s.FloorWatts = r.f64()
		s.Reason = r.str()
		out.Shed = append(out.Shed, s)
	}
	return r.closeFrame()
}

// AppendError appends a TError frame. Error frames must always be
// encodable — they are what the server sends when encoding anything
// else failed — so an over-long message is clamped to the string-field
// cap here, explicitly, rather than ever failing.
func AppendError(dst []byte, code int, msg string) []byte {
	if len(msg) > math.MaxUint16 {
		msg = msg[:math.MaxUint16]
	}
	dst, p := beginFrame(dst, TError)
	dst = appendU16(dst, uint16(code))
	dst = appendU16(dst, uint16(len(msg)))
	dst = append(dst, msg...)
	return endFrame(dst, p)
}

// DecodeError decodes a TError frame.
func DecodeError(data []byte) (Error, error) {
	r, err := openFrame(data, TError)
	if err != nil {
		return Error{}, err
	}
	e := Error{Code: int(r.u16()), Message: r.str()}
	return e, r.closeFrame()
}

func clampU32(v int) uint32 {
	if v < 0 {
		return 0
	}
	if v > 1<<31 {
		return 1 << 31
	}
	return uint32(v)
}
