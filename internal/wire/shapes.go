// Package wire owns the allocation service's wire surface: the three
// request/response shapes (shared by the JSON and binary codecs) and a
// compact length-prefixed binary protocol for them.
//
// The JSON encoding is the compatibility surface — encoding/json over
// the structs below, exactly as allocsvc has always served. The binary
// encoding exists for the hot path: a fixed header, little-endian
// fixed-width numbers, and length-prefixed strings, designed so that
// encoding appends into a caller-supplied (poolable) buffer and
// decoding performs zero heap allocations for catalog vocabulary
// (platform, workload, phase, status, and strategy names are interned
// against the seeded catalog; only unknown strings allocate).
//
// Frame layout (all integers little-endian):
//
//	offset 0: magic "pB" (2 bytes)
//	offset 2: version (1 byte, currently 1)
//	offset 3: shape tag (1 byte, TCoordRequest..TError)
//	offset 4: payload length (uint32)
//	offset 8: payload
//
// Within a payload: bool is 1 byte (0/1), numbers are fixed-width
// little-endian (float64 as IEEE 754 bits), strings are uint16 length +
// bytes, and repeated sections are a uint32 count followed by that many
// elements. A decoder must consume the payload exactly — trailing bytes
// are an error, and every read is bounds-checked so malformed input can
// neither panic nor over-read.
package wire

// AllocJSON is an allocation split on the wire.
type AllocJSON struct {
	ProcWatts float64 `json:"proc_watts"`
	MemWatts  float64 `json:"mem_watts"`
}

// CoordRequest is the body of POST /v1/coord: one single-node
// coordination decision.
type CoordRequest struct {
	Platform string  `json:"platform"`
	Workload string  `json:"workload"`
	Budget   float64 `json:"budget_watts"`
	// Strategy selects the allocation policy; empty means "coord".
	Strategy string `json:"strategy,omitempty"`
	// TimeoutMS bounds this request; 0 means the service default.
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// CoordResponse is the decision for one (platform, workload, budget).
type CoordResponse struct {
	Platform string  `json:"platform"`
	Workload string  `json:"workload"`
	Kind     string  `json:"kind"`
	Strategy string  `json:"strategy"`
	Budget   float64 `json:"budget_watts"`
	// Status is the COORD verdict: "ok", "surplus", or "too-small".
	Status       string     `json:"status"`
	Alloc        *AllocJSON `json:"alloc,omitempty"`
	SurplusWatts float64    `json:"surplus_watts,omitempty"`
	// ExpectedPerf/ExpectedPower are the simulated outcome under the
	// allocation; absent when the budget was rejected.
	ExpectedPerf  float64 `json:"expected_perf,omitempty"`
	PerfUnit      string  `json:"perf_unit,omitempty"`
	ExpectedPower float64 `json:"expected_power_watts,omitempty"`
}

// PlanRequest is the body of POST /v1/plan: a phase-aware dyncoord
// plan for a CPU workload.
type PlanRequest struct {
	Platform  string  `json:"platform"`
	Workload  string  `json:"workload"`
	Budget    float64 `json:"budget_watts"`
	TimeoutMS int     `json:"timeout_ms,omitempty"`
}

// PlanStepJSON is one phase of a plan.
type PlanStepJSON struct {
	Phase    string    `json:"phase"`
	Weight   float64   `json:"weight"`
	Alloc    AllocJSON `json:"alloc"`
	Status   string    `json:"status"`
	FellBack bool      `json:"fell_back,omitempty"`
}

// PlanResponse is a dyncoord plan on the wire.
type PlanResponse struct {
	Platform string         `json:"platform"`
	Workload string         `json:"workload"`
	Budget   float64        `json:"budget_watts"`
	Steps    []PlanStepJSON `json:"steps"`
	// Rejected reports that at least one step has no usable allocation.
	Rejected bool `json:"rejected,omitempty"`
}

// NodeJSON names one cluster node for /v1/schedule.
type NodeJSON struct {
	ID       string `json:"id"`
	Platform string `json:"platform"`
}

// JobJSON names one queued job for /v1/schedule.
type JobJSON struct {
	ID       string `json:"id"`
	Workload string `json:"workload"`
}

// ScheduleRequest is the body of POST /v1/schedule: one scheduling
// round over a cluster and a job queue.
type ScheduleRequest struct {
	Budget    float64    `json:"budget_watts"`
	Nodes     []NodeJSON `json:"nodes"`
	Jobs      []JobJSON  `json:"jobs"`
	TimeoutMS int        `json:"timeout_ms,omitempty"`
}

// PlacementJSON is one admitted job of a round.
type PlacementJSON struct {
	Job           string    `json:"job"`
	Node          string    `json:"node"`
	Budget        float64   `json:"budget_watts"`
	Alloc         AllocJSON `json:"alloc"`
	ExpectedPerf  float64   `json:"expected_perf"`
	ExpectedPower float64   `json:"expected_power_watts"`
}

// ScheduleResponse is a scheduling round's outcome on the wire.
type ScheduleResponse struct {
	Placements []PlacementJSON `json:"placements"`
	Deferred   []string        `json:"deferred,omitempty"`
	PoolLeft   float64         `json:"pool_left_watts"`
	TotalPower float64         `json:"total_expected_power_watts"`
}

// Error is the binary counterpart of allocsvc's {"error": ...} JSON
// body: the HTTP status code and the message, framed as TError.
type Error struct {
	Code    int
	Message string
}
