// Package wire owns the allocation service's wire surface: the
// request/response shapes of its four routes (shared by the JSON and
// binary codecs) and a compact length-prefixed binary protocol for
// them.
//
// The JSON encoding is the compatibility surface — encoding/json over
// the structs below, exactly as allocsvc has always served. The binary
// encoding exists for the hot path: a fixed header, little-endian
// fixed-width numbers, and length-prefixed strings, designed so that
// encoding appends into a caller-supplied (poolable) buffer and
// decoding performs zero heap allocations for catalog vocabulary
// (platform, workload, phase, status, and strategy names are interned
// against the seeded catalog; only unknown strings allocate).
//
// Frame layout (all integers little-endian):
//
//	offset 0: magic "pB" (2 bytes)
//	offset 2: version (1 byte, currently 1)
//	offset 3: shape tag (1 byte, TCoordRequest..TTreeResponse)
//	offset 4: payload length (uint32)
//	offset 8: payload
//
// Within a payload: bool is 1 byte (0/1), numbers are fixed-width
// little-endian (float64 as IEEE 754 bits), strings are uint16 length +
// bytes, and repeated sections are a uint32 count followed by that many
// elements. A decoder must consume the payload exactly — trailing bytes
// are an error, and every read is bounds-checked so malformed input can
// neither panic nor over-read.
package wire

// AllocJSON is an allocation split on the wire.
type AllocJSON struct {
	ProcWatts float64 `json:"proc_watts"`
	MemWatts  float64 `json:"mem_watts"`
}

// CoordRequest is the body of POST /v1/coord: one single-node
// coordination decision.
type CoordRequest struct {
	Platform string  `json:"platform"`
	Workload string  `json:"workload"`
	Budget   float64 `json:"budget_watts"`
	// Strategy selects the allocation policy; empty means "coord".
	Strategy string `json:"strategy,omitempty"`
	// TimeoutMS bounds this request; 0 means the service default.
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// CoordResponse is the decision for one (platform, workload, budget).
type CoordResponse struct {
	Platform string  `json:"platform"`
	Workload string  `json:"workload"`
	Kind     string  `json:"kind"`
	Strategy string  `json:"strategy"`
	Budget   float64 `json:"budget_watts"`
	// Status is the COORD verdict: "ok", "surplus", or "too-small".
	Status       string     `json:"status"`
	Alloc        *AllocJSON `json:"alloc,omitempty"`
	SurplusWatts float64    `json:"surplus_watts,omitempty"`
	// ExpectedPerf/ExpectedPower are the simulated outcome under the
	// allocation; absent when the budget was rejected.
	ExpectedPerf  float64 `json:"expected_perf,omitempty"`
	PerfUnit      string  `json:"perf_unit,omitempty"`
	ExpectedPower float64 `json:"expected_power_watts,omitempty"`
}

// PlanRequest is the body of POST /v1/plan: a phase-aware dyncoord
// plan for a CPU workload.
type PlanRequest struct {
	Platform  string  `json:"platform"`
	Workload  string  `json:"workload"`
	Budget    float64 `json:"budget_watts"`
	TimeoutMS int     `json:"timeout_ms,omitempty"`
}

// PlanStepJSON is one phase of a plan.
type PlanStepJSON struct {
	Phase    string    `json:"phase"`
	Weight   float64   `json:"weight"`
	Alloc    AllocJSON `json:"alloc"`
	Status   string    `json:"status"`
	FellBack bool      `json:"fell_back,omitempty"`
}

// PlanResponse is a dyncoord plan on the wire.
type PlanResponse struct {
	Platform string         `json:"platform"`
	Workload string         `json:"workload"`
	Budget   float64        `json:"budget_watts"`
	Steps    []PlanStepJSON `json:"steps"`
	// Rejected reports that at least one step has no usable allocation.
	Rejected bool `json:"rejected,omitempty"`
}

// RecoordRequest is the body of POST /v1/recoord: one online
// re-coordination run on a phased GPU workload. Exactly one of
// Workload (a catalog name) or PhaseSpec (a custom mix, see
// workload.ParsePhaseSpec) selects the workload. The route is
// JSON-only — a recoord response carries a variable-length phase
// timeline and is not on the binary protocol's hot path.
type RecoordRequest struct {
	Platform string `json:"platform"`
	Workload string `json:"workload,omitempty"`
	// PhaseSpec describes a custom phased ML workload, e.g.
	// "seq=1024,out=512" or "prefill=2,decode=1".
	PhaseSpec string  `json:"phase_spec,omitempty"`
	Budget    float64 `json:"budget_watts"`
	// Rounds is the number of phase cycles to run; 0 means the
	// controller default.
	Rounds    int `json:"rounds,omitempty"`
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// RecoordVisitJSON is one contiguous phase interval of a controller
// run's timeline.
type RecoordVisitJSON struct {
	Phase string `json:"phase"`
	Ticks int    `json:"ticks"`
	// LagTicks counts samples run on the stale setting before the
	// detector fired; Recoordinated whether this visit triggered a
	// re-coordination.
	LagTicks      int       `json:"lag_ticks,omitempty"`
	Recoordinated bool      `json:"recoordinated,omitempty"`
	Alloc         AllocJSON `json:"alloc"`
	OnlinePerf    float64   `json:"online_perf"`
	StaticPerf    float64   `json:"static_perf"`
	GovernorPerf  float64   `json:"governor_perf"`
}

// RecoordResponse is one controller run compared against the static
// COORD split and the default governor on the identical trace.
type RecoordResponse struct {
	Platform string  `json:"platform"`
	Workload string  `json:"workload"`
	Budget   float64 `json:"budget_watts"`
	PerfUnit string  `json:"perf_unit"`

	OnlinePerf   float64 `json:"online_perf"`
	StaticPerf   float64 `json:"static_perf"`
	GovernorPerf float64 `json:"governor_perf"`
	// Gain is the online-over-static improvement as a fraction.
	Gain float64 `json:"gain"`

	Recoordinations int `json:"recoordinations"`
	Switches        int `json:"switches"`

	// StaticAlloc is COORD's opening operating point (cap + mem power).
	StaticAlloc AllocJSON          `json:"static_alloc"`
	Visits      []RecoordVisitJSON `json:"visits"`
}

// NodeJSON names one cluster node for /v1/schedule.
type NodeJSON struct {
	ID       string `json:"id"`
	Platform string `json:"platform"`
}

// JobJSON names one queued job for /v1/schedule.
type JobJSON struct {
	ID       string `json:"id"`
	Workload string `json:"workload"`
}

// ScheduleRequest is the body of POST /v1/schedule: one scheduling
// round over a cluster and a job queue.
type ScheduleRequest struct {
	Budget    float64    `json:"budget_watts"`
	Nodes     []NodeJSON `json:"nodes"`
	Jobs      []JobJSON  `json:"jobs"`
	TimeoutMS int        `json:"timeout_ms,omitempty"`
}

// PlacementJSON is one admitted job of a round.
type PlacementJSON struct {
	Job           string    `json:"job"`
	Node          string    `json:"node"`
	Budget        float64   `json:"budget_watts"`
	Alloc         AllocJSON `json:"alloc"`
	ExpectedPerf  float64   `json:"expected_perf"`
	ExpectedPower float64   `json:"expected_power_watts"`
}

// ScheduleResponse is a scheduling round's outcome on the wire.
type ScheduleResponse struct {
	Placements []PlacementJSON `json:"placements"`
	Deferred   []string        `json:"deferred,omitempty"`
	PoolLeft   float64         `json:"pool_left_watts"`
	TotalPower float64         `json:"total_expected_power_watts"`
}

// TreeNodeJSON names one leaf of a budget tree for /v1/tree.
type TreeNodeJSON struct {
	ID       string `json:"id"`
	Platform string `json:"platform"`
	Workload string `json:"workload"`
	// Priority is the SLA priority (higher is shed later); 0 is the
	// best-effort class.
	Priority int `json:"priority,omitempty"`
}

// TreeRackJSON is one rack of a budget tree: nodes behind an optional
// local cap (0 = uncapped).
type TreeRackJSON struct {
	ID       string         `json:"id"`
	CapWatts float64        `json:"cap_watts,omitempty"`
	Nodes    []TreeNodeJSON `json:"nodes"`
}

// TreeRequest is the body of POST /v1/tree: one hierarchical division
// of a datacenter budget over racks of nodes.
type TreeRequest struct {
	Budget    float64        `json:"budget_watts"`
	Racks     []TreeRackJSON `json:"racks"`
	TimeoutMS int            `json:"timeout_ms,omitempty"`
}

// TreeGrantJSON is one kept leaf's share of a solved tree.
type TreeGrantJSON struct {
	Node     string `json:"node"`
	Rack     string `json:"rack"`
	Priority int    `json:"priority,omitempty"`
	// Budget is the leaf's power grant; Alloc its COORD component
	// split and Status/SurplusWatts the COORD verdict at that grant.
	Budget       float64   `json:"budget_watts"`
	Alloc        AllocJSON `json:"alloc"`
	Status       string    `json:"status"`
	SurplusWatts float64   `json:"surplus_watts,omitempty"`
	ExpectedPerf float64   `json:"expected_perf"`
}

// TreeRackGrantJSON aggregates one rack's share.
type TreeRackGrantJSON struct {
	Rack     string  `json:"rack"`
	CapWatts float64 `json:"cap_watts,omitempty"`
	Budget   float64 `json:"budget_watts"`
	Kept     int     `json:"kept"`
	Shed     int     `json:"shed"`
}

// TreeShedJSON is one leaf dropped by admission control.
type TreeShedJSON struct {
	Node       string  `json:"node"`
	Rack       string  `json:"rack"`
	Priority   int     `json:"priority,omitempty"`
	FloorWatts float64 `json:"floor_watts"`
	// Reason is "budget" or "rack-cap".
	Reason string `json:"reason"`
}

// TreeResponse is a solved budget tree on the wire.
type TreeResponse struct {
	Budget           float64             `json:"budget_watts"`
	Granted          float64             `json:"granted_watts"`
	Surplus          float64             `json:"surplus_watts"`
	TotalPerf        float64             `json:"total_perf"`
	Oversubscription float64             `json:"oversubscription,omitempty"`
	Grants           []TreeGrantJSON     `json:"grants"`
	Racks            []TreeRackGrantJSON `json:"racks"`
	Shed             []TreeShedJSON      `json:"shed,omitempty"`
}

// Error is the binary counterpart of allocsvc's {"error": ...} JSON
// body: the HTTP status code and the message, framed as TError.
type Error struct {
	Code    int
	Message string
}
