package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"
)

// ContentType is the negotiated media type for binary frames. A
// request carrying it is decoded as a binary frame, and its response
// (success or error) is rendered as a binary frame too; every other
// request stays on the JSON surface.
const ContentType = "application/x-pbc-binary"

// Shape tags (frame byte 3).
const (
	TCoordRequest byte = iota + 1
	TCoordResponse
	TPlanRequest
	TPlanResponse
	TScheduleRequest
	TScheduleResponse
	TError
	// Tree shapes were added after TError; appending keeps every
	// pre-existing tag value stable on the wire.
	TTreeRequest
	TTreeResponse
)

// Version is the frame format version (frame byte 2).
const Version byte = 1

// headerLen is magic(2) + version(1) + tag(1) + payload length(4).
const headerLen = 8

// MaxFrame bounds an encoded frame; it matches allocsvc's request body
// cap, so a frame that decodes is also one the service would admit.
const MaxFrame = 1 << 20

// Decode errors. Malformed input always surfaces as ErrMalformed (with
// detail); it never panics and never reads past the buffer.
var (
	ErrMalformed = errors.New("wire: malformed frame")
	errTooShort  = fmt.Errorf("%w: truncated", ErrMalformed)
)

// ErrFrameTooLarge reports that a value cannot be encoded within the
// frame format's limits: the whole frame would exceed MaxFrame, or a
// string field would exceed the 64 KiB length prefix. Encoders return
// it (match with errors.Is) instead of ever truncating silently; the
// caller decides whether to fail the request or fall back to a
// different encoding (allocclient demotes the request to JSON).
var ErrFrameTooLarge = errors.New("wire: frame exceeds encoding limits")

func malformed(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrMalformed, fmt.Sprintf(format, args...))
}

// bufPool recycles encode/read buffers across requests; the hot path
// gets and puts one buffer per direction and allocates nothing once
// the pool is warm.
var bufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 1024)
		return &b
	},
}

// GetBuf returns a pooled buffer with length 0. Append to it, use the
// result, then hand it back with PutBuf.
func GetBuf() *[]byte {
	b := bufPool.Get().(*[]byte)
	*b = (*b)[:0]
	return b
}

// PutBuf recycles a buffer obtained from GetBuf. Oversized buffers
// (a giant schedule round) are dropped instead of pinning their
// backing arrays in the pool.
func PutBuf(b *[]byte) {
	if b == nil || cap(*b) > MaxFrame {
		return
	}
	bufPool.Put(b)
}

// --- encoding primitives (append style, no intermediate buffers) ---

// beginFrame appends the frame header with a zero length and returns
// the offset where the payload begins; endFrame patches the length.
func beginFrame(dst []byte, tag byte) ([]byte, int) {
	dst = append(dst, 'p', 'B', Version, tag, 0, 0, 0, 0)
	return dst, len(dst)
}

func endFrame(dst []byte, payloadStart int) []byte {
	binary.LittleEndian.PutUint32(dst[payloadStart-4:payloadStart], uint32(len(dst)-payloadStart))
	return dst
}

func appendBool(dst []byte, v bool) []byte {
	if v {
		return append(dst, 1)
	}
	return append(dst, 0)
}

func appendU16(dst []byte, v uint16) []byte {
	return append(dst, byte(v), byte(v>>8))
}

func appendU32(dst []byte, v uint32) []byte {
	return append(dst, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func appendF64(dst []byte, v float64) []byte {
	bits := math.Float64bits(v)
	return append(dst,
		byte(bits), byte(bits>>8), byte(bits>>16), byte(bits>>24),
		byte(bits>>32), byte(bits>>40), byte(bits>>48), byte(bits>>56))
}

// enc accumulates one frame with sticky error semantics: the first
// limit violation (oversized string field, frame past MaxFrame) records
// ErrFrameTooLarge and finish rewinds the partial frame, so a failed
// encode never leaves truncated bytes behind. The struct never escapes
// its Append* caller, keeping the hot path allocation-free.
type enc struct {
	b     []byte
	start int // frame header offset, for rewinding on error
	err   error
}

func beginEnc(dst []byte, tag byte) (enc, int) {
	start := len(dst)
	dst, p := beginFrame(dst, tag)
	return enc{b: dst, start: start}, p
}

func (e *enc) bool(v bool) {
	if e.err == nil {
		e.b = appendBool(e.b, v)
	}
}

func (e *enc) u16(v uint16) {
	if e.err == nil {
		e.b = appendU16(e.b, v)
	}
}

func (e *enc) u32(v uint32) {
	if e.err == nil {
		e.b = appendU32(e.b, v)
	}
}

func (e *enc) f64(v float64) {
	if e.err == nil {
		e.b = appendF64(e.b, v)
	}
}

func (e *enc) str(s string) {
	if e.err != nil {
		return
	}
	if len(s) > math.MaxUint16 {
		e.err = fmt.Errorf("%w: string field is %d bytes, cap %d", ErrFrameTooLarge, len(s), math.MaxUint16)
		return
	}
	e.b = appendU16(e.b, uint16(len(s)))
	e.b = append(e.b, s...)
}

// finish validates the frame against MaxFrame, patches the length, and
// returns the extended buffer. On any error the buffer is rewound to
// its pre-frame length: callers get back exactly what they passed in.
func (e *enc) finish(payloadStart int) ([]byte, error) {
	if e.err == nil && len(e.b)-e.start > MaxFrame {
		e.err = fmt.Errorf("%w: encoded frame is %d bytes, cap %d", ErrFrameTooLarge, len(e.b)-e.start, MaxFrame)
	}
	if e.err != nil {
		return e.b[:e.start], e.err
	}
	return endFrame(e.b, payloadStart), nil
}

// --- decoding primitives ---

// reader is a bounds-checked cursor over one frame payload. Every
// accessor reports errTooShort instead of reading past the end, so a
// malformed frame can never panic or over-read.
type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) fail() {
	if r.err == nil {
		r.err = errTooShort
	}
}

func (r *reader) remaining() int { return len(r.b) - r.off }

func (r *reader) bool() bool {
	if r.err != nil || r.off+1 > len(r.b) {
		r.fail()
		return false
	}
	v := r.b[r.off]
	r.off++
	if v > 1 {
		if r.err == nil {
			r.err = malformed("bool byte %d", v)
		}
		return false
	}
	return v == 1
}

func (r *reader) u16() uint16 {
	if r.err != nil || r.off+2 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint16(r.b[r.off:])
	r.off += 2
	return v
}

func (r *reader) u32() uint32 {
	if r.err != nil || r.off+4 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

func (r *reader) f64() float64 {
	if r.err != nil || r.off+8 > len(r.b) {
		r.fail()
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.b[r.off:]))
	r.off += 8
	return v
}

// str decodes a length-prefixed string, interning catalog vocabulary
// so the hot path allocates nothing for known names.
func (r *reader) str() string {
	n := int(r.u16())
	if r.err != nil || r.off+n > len(r.b) {
		r.fail()
		return ""
	}
	s := internBytes(r.b[r.off : r.off+n])
	r.off += n
	return s
}

// count decodes a repeated-section count and validates it against the
// bytes actually remaining (each element occupies at least minElem
// bytes), so a malformed frame cannot force a huge allocation.
func (r *reader) count(minElem int) int {
	n := r.u32()
	if r.err != nil {
		return 0
	}
	if int64(n)*int64(minElem) > int64(r.remaining()) {
		r.err = malformed("count %d exceeds remaining %d bytes", n, r.remaining())
		return 0
	}
	return int(n)
}

// openFrame validates the header against the expected shape tag and
// returns a payload reader.
func openFrame(data []byte, tag byte) (reader, error) {
	if len(data) < headerLen {
		return reader{}, errTooShort
	}
	if data[0] != 'p' || data[1] != 'B' {
		return reader{}, malformed("bad magic %q", data[:2])
	}
	if data[2] != Version {
		return reader{}, malformed("unsupported version %d", data[2])
	}
	if data[3] != tag {
		return reader{}, malformed("shape tag %d, want %d", data[3], tag)
	}
	n := binary.LittleEndian.Uint32(data[4:8])
	if n > MaxFrame {
		return reader{}, malformed("payload length %d exceeds cap", n)
	}
	if int(n) != len(data)-headerLen {
		return reader{}, malformed("payload length %d for %d body bytes", n, len(data)-headerLen)
	}
	return reader{b: data[headerLen:]}, nil
}

// closeFrame asserts the payload was consumed exactly.
func (r *reader) closeFrame() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.b) {
		return malformed("%d trailing payload bytes", len(r.b)-r.off)
	}
	return nil
}

// Tag peeks a frame's shape tag without decoding it.
func Tag(data []byte) (byte, error) {
	if len(data) < headerLen {
		return 0, errTooShort
	}
	if data[0] != 'p' || data[1] != 'B' {
		return 0, malformed("bad magic %q", data[:2])
	}
	if t := data[3]; t >= TCoordRequest && t <= TTreeResponse {
		return t, nil
	}
	return 0, malformed("unknown shape tag %d", data[3])
}
