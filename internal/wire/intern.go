package wire

import (
	"repro/internal/coord"
	"repro/internal/hw"
	"repro/internal/workload"
)

// interned maps catalog vocabulary to canonical string instances. A
// map lookup keyed on string(b) does not allocate (the compiler elides
// the conversion), so decoding a known platform, workload, phase,
// status, strategy, kind, or perf-unit name costs zero heap
// allocations; only strings outside the catalog (arbitrary node/job
// IDs, error text) pay for their bytes.
var interned = buildIntern()

func buildIntern() map[string]string {
	m := map[string]string{"": ""}
	add := func(s string) { m[s] = s }
	for _, p := range hw.AllPlatforms() {
		add(p.Name)
		add(p.Kind.String())
	}
	for _, w := range workload.AllWorkloads() {
		add(w.Name)
		add(w.PerfUnit)
		for _, ph := range w.Phases {
			add(ph.Name)
		}
	}
	for _, st := range []coord.Status{coord.StatusOK, coord.StatusSurplus, coord.StatusTooSmall} {
		add(st.String())
	}
	for _, s := range coord.CPUStrategies() {
		add(s.Name)
	}
	for _, s := range coord.GPUStrategies() {
		add(s.Name)
	}
	return m
}

func internBytes(b []byte) string {
	if s, ok := interned[string(b)]; ok {
		return s
	}
	return string(b)
}
