package wire

import (
	"math"
	"reflect"
	"strings"
	"testing"
)

func coordReqFixture() CoordRequest {
	return CoordRequest{Platform: "ivybridge", Workload: "stream", Budget: 227.5, Strategy: "coord", TimeoutMS: 250}
}

func coordRespFixture() CoordResponse {
	return CoordResponse{
		Platform: "ivybridge", Workload: "stream", Kind: "cpu", Strategy: "coord",
		Budget: 227.5, Status: "ok",
		Alloc:        &AllocJSON{ProcWatts: 150.25, MemWatts: 77.25},
		SurplusWatts: 0, ExpectedPerf: 12.5, PerfUnit: "GB/s", ExpectedPower: 225.1,
	}
}

func planRespFixture() PlanResponse {
	return PlanResponse{
		Platform: "ivybridge", Workload: "bt", Budget: 200,
		Steps: []PlanStepJSON{
			{Phase: "compute", Weight: 0.5, Alloc: AllocJSON{ProcWatts: 160, MemWatts: 40}, Status: "ok"},
			{Phase: "memory", Weight: 0.5, Alloc: AllocJSON{ProcWatts: 120, MemWatts: 80}, Status: "ok", FellBack: true},
		},
	}
}

func schedReqFixture() ScheduleRequest {
	return ScheduleRequest{
		Budget:    900,
		Nodes:     []NodeJSON{{ID: "n0", Platform: "ivybridge"}, {ID: "n1", Platform: "titanv"}},
		Jobs:      []JobJSON{{ID: "j0", Workload: "stream"}, {ID: "j1", Workload: "sgemm"}},
		TimeoutMS: 1000,
	}
}

func schedRespFixture() ScheduleResponse {
	return ScheduleResponse{
		Placements: []PlacementJSON{
			{Job: "j0", Node: "n0", Budget: 250, Alloc: AllocJSON{ProcWatts: 180, MemWatts: 70}, ExpectedPerf: 11, ExpectedPower: 248},
		},
		Deferred:   []string{"j1"},
		PoolLeft:   650,
		TotalPower: 248,
	}
}

func TestCoordRequestRoundTrip(t *testing.T) {
	in := coordReqFixture()
	var out CoordRequest
	if err := DecodeCoordRequest(AppendCoordRequest(nil, &in), &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip: got %+v want %+v", out, in)
	}
}

func TestCoordResponseRoundTrip(t *testing.T) {
	in := coordRespFixture()
	var out CoordResponse
	if err := DecodeCoordResponse(AppendCoordResponse(nil, &in), &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, in) {
		t.Fatalf("round trip: got %+v want %+v", out, in)
	}
}

func TestCoordResponseNilAlloc(t *testing.T) {
	in := coordRespFixture()
	in.Alloc = nil
	in.Status = "too-small"
	out := CoordResponse{Alloc: &AllocJSON{ProcWatts: 1}} // stale reuse must be cleared
	if err := DecodeCoordResponse(AppendCoordResponse(nil, &in), &out); err != nil {
		t.Fatal(err)
	}
	if out.Alloc != nil {
		t.Fatalf("expected nil alloc, got %+v", out.Alloc)
	}
}

func TestPlanRoundTrip(t *testing.T) {
	req := PlanRequest{Platform: "ivybridge", Workload: "bt", Budget: 200, TimeoutMS: 50}
	var gotReq PlanRequest
	if err := DecodePlanRequest(AppendPlanRequest(nil, &req), &gotReq); err != nil {
		t.Fatal(err)
	}
	if gotReq != req {
		t.Fatalf("request round trip: got %+v want %+v", gotReq, req)
	}

	resp := planRespFixture()
	var gotResp PlanResponse
	// seed with stale steps to prove capacity reuse resets the slice
	gotResp.Steps = make([]PlanStepJSON, 5)
	if err := DecodePlanResponse(AppendPlanResponse(nil, &resp), &gotResp); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotResp, resp) {
		t.Fatalf("response round trip: got %+v want %+v", gotResp, resp)
	}
}

func TestScheduleRoundTrip(t *testing.T) {
	req := schedReqFixture()
	var gotReq ScheduleRequest
	if err := DecodeScheduleRequest(AppendScheduleRequest(nil, &req), &gotReq); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotReq, req) {
		t.Fatalf("request round trip: got %+v want %+v", gotReq, req)
	}

	resp := schedRespFixture()
	var gotResp ScheduleResponse
	if err := DecodeScheduleResponse(AppendScheduleResponse(nil, &resp), &gotResp); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotResp, resp) {
		t.Fatalf("response round trip: got %+v want %+v", gotResp, resp)
	}
}

func TestErrorRoundTrip(t *testing.T) {
	frame := AppendError(nil, 429, "busy: queue full")
	e, err := DecodeError(frame)
	if err != nil {
		t.Fatal(err)
	}
	if e.Code != 429 || e.Message != "busy: queue full" {
		t.Fatalf("got %+v", e)
	}
}

func TestSpecialFloats(t *testing.T) {
	in := coordReqFixture()
	in.Budget = math.Inf(1)
	var out CoordRequest
	if err := DecodeCoordRequest(AppendCoordRequest(nil, &in), &out); err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(out.Budget, 1) {
		t.Fatalf("got %v", out.Budget)
	}
	in.Budget = math.NaN()
	if err := DecodeCoordRequest(AppendCoordRequest(nil, &in), &out); err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(out.Budget) {
		t.Fatalf("got %v", out.Budget)
	}
}

func TestTag(t *testing.T) {
	frame := AppendCoordRequest(nil, &CoordRequest{})
	tag, err := Tag(frame)
	if err != nil || tag != TCoordRequest {
		t.Fatalf("tag %d err %v", tag, err)
	}
	if _, err := Tag([]byte("pB")); err == nil {
		t.Fatal("short frame accepted")
	}
	frame[3] = 0
	if _, err := Tag(frame); err == nil {
		t.Fatal("zero tag accepted")
	}
}

func TestMalformedRejected(t *testing.T) {
	good := AppendCoordRequest(nil, &coordReqFixtureVar)
	cases := map[string][]byte{
		"empty":        {},
		"short header": good[:4],
		"bad magic":    append([]byte("XX"), good[2:]...),
		"bad version":  mutate(good, 2, 9),
		"wrong tag":    mutate(good, 3, TPlanRequest),
		"truncated":    good[:len(good)-3],
		"trailing":     append(append([]byte(nil), good...), 0xFF),
		"length lies":  mutate(good, 4, byte(len(good))), // payload length mismatch
	}
	for name, frame := range cases {
		var out CoordRequest
		if err := DecodeCoordRequest(frame, &out); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

var coordReqFixtureVar = coordReqFixture()

func TestCountGuard(t *testing.T) {
	// A plan response claiming 2^31 steps with a tiny payload must be
	// rejected by the count guard, not attempted.
	resp := planRespFixture()
	frame := AppendPlanResponse(nil, &resp)
	// steps count lives right after platform, workload, budget
	off := headerLen + 2 + len(resp.Platform) + 2 + len(resp.Workload) + 8
	frame[off] = 0xFF
	frame[off+1] = 0xFF
	frame[off+2] = 0xFF
	frame[off+3] = 0x7F
	var out PlanResponse
	if err := DecodePlanResponse(frame, &out); err == nil {
		t.Fatal("oversized count accepted")
	} else if !strings.Contains(err.Error(), "count") {
		t.Fatalf("wrong error: %v", err)
	}
}

func TestBoolStrictness(t *testing.T) {
	resp := planRespFixture()
	frame := AppendPlanResponse(nil, &resp)
	frame[len(frame)-1] = 2 // Rejected byte
	var out PlanResponse
	if err := DecodePlanResponse(frame, &out); err == nil {
		t.Fatal("bool byte 2 accepted")
	}
}

func TestInterning(t *testing.T) {
	in := coordRespFixture()
	frame := AppendCoordResponse(nil, &in)
	var out CoordResponse
	if err := DecodeCoordResponse(frame, &out); err != nil {
		t.Fatal(err)
	}
	// Catalog names must come back as the interned instances, i.e. the
	// decode must not have built fresh strings for them.
	if got, ok := interned[out.Platform]; !ok || got != out.Platform {
		t.Fatalf("platform %q not interned", out.Platform)
	}
	if got, ok := interned[out.Status]; !ok || got != out.Status {
		t.Fatalf("status %q not interned", out.Status)
	}
}

func TestBufPool(t *testing.T) {
	b := GetBuf()
	*b = AppendCoordRequest(*b, &coordReqFixtureVar)
	if len(*b) == 0 {
		t.Fatal("empty encode")
	}
	PutBuf(b)
	b2 := GetBuf()
	if len(*b2) != 0 {
		t.Fatal("pooled buffer not reset")
	}
	PutBuf(b2)
	// Oversized buffers are dropped, not pooled.
	big := make([]byte, 0, MaxFrame+1)
	PutBuf(&big)
	PutBuf(nil)
}

func mutate(b []byte, i int, v byte) []byte {
	c := append([]byte(nil), b...)
	c[i] = v
	return c
}
