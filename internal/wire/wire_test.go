package wire

import (
	"errors"
	"math"
	"reflect"
	"strings"
	"testing"
)

// mustAppend* wrap the fallible encoders for fixtures that are known to
// fit the frame limits.
func mustAppendCoordRequest(dst []byte, m *CoordRequest) []byte {
	out, err := AppendCoordRequest(dst, m)
	if err != nil {
		panic(err)
	}
	return out
}

func mustAppendCoordResponse(dst []byte, m *CoordResponse) []byte {
	out, err := AppendCoordResponse(dst, m)
	if err != nil {
		panic(err)
	}
	return out
}

func mustAppendPlanRequest(dst []byte, m *PlanRequest) []byte {
	out, err := AppendPlanRequest(dst, m)
	if err != nil {
		panic(err)
	}
	return out
}

func mustAppendPlanResponse(dst []byte, m *PlanResponse) []byte {
	out, err := AppendPlanResponse(dst, m)
	if err != nil {
		panic(err)
	}
	return out
}

func mustAppendScheduleRequest(dst []byte, m *ScheduleRequest) []byte {
	out, err := AppendScheduleRequest(dst, m)
	if err != nil {
		panic(err)
	}
	return out
}

func mustAppendScheduleResponse(dst []byte, m *ScheduleResponse) []byte {
	out, err := AppendScheduleResponse(dst, m)
	if err != nil {
		panic(err)
	}
	return out
}

func mustAppendTreeRequest(dst []byte, m *TreeRequest) []byte {
	out, err := AppendTreeRequest(dst, m)
	if err != nil {
		panic(err)
	}
	return out
}

func mustAppendTreeResponse(dst []byte, m *TreeResponse) []byte {
	out, err := AppendTreeResponse(dst, m)
	if err != nil {
		panic(err)
	}
	return out
}

func coordReqFixture() CoordRequest {
	return CoordRequest{Platform: "ivybridge", Workload: "stream", Budget: 227.5, Strategy: "coord", TimeoutMS: 250}
}

func coordRespFixture() CoordResponse {
	return CoordResponse{
		Platform: "ivybridge", Workload: "stream", Kind: "cpu", Strategy: "coord",
		Budget: 227.5, Status: "ok",
		Alloc:        &AllocJSON{ProcWatts: 150.25, MemWatts: 77.25},
		SurplusWatts: 0, ExpectedPerf: 12.5, PerfUnit: "GB/s", ExpectedPower: 225.1,
	}
}

func planRespFixture() PlanResponse {
	return PlanResponse{
		Platform: "ivybridge", Workload: "bt", Budget: 200,
		Steps: []PlanStepJSON{
			{Phase: "compute", Weight: 0.5, Alloc: AllocJSON{ProcWatts: 160, MemWatts: 40}, Status: "ok"},
			{Phase: "memory", Weight: 0.5, Alloc: AllocJSON{ProcWatts: 120, MemWatts: 80}, Status: "ok", FellBack: true},
		},
	}
}

func schedReqFixture() ScheduleRequest {
	return ScheduleRequest{
		Budget:    900,
		Nodes:     []NodeJSON{{ID: "n0", Platform: "ivybridge"}, {ID: "n1", Platform: "titanv"}},
		Jobs:      []JobJSON{{ID: "j0", Workload: "stream"}, {ID: "j1", Workload: "sgemm"}},
		TimeoutMS: 1000,
	}
}

func schedRespFixture() ScheduleResponse {
	return ScheduleResponse{
		Placements: []PlacementJSON{
			{Job: "j0", Node: "n0", Budget: 250, Alloc: AllocJSON{ProcWatts: 180, MemWatts: 70}, ExpectedPerf: 11, ExpectedPower: 248},
		},
		Deferred:   []string{"j1"},
		PoolLeft:   650,
		TotalPower: 248,
	}
}

func TestCoordRequestRoundTrip(t *testing.T) {
	in := coordReqFixture()
	var out CoordRequest
	if err := DecodeCoordRequest(mustAppendCoordRequest(nil, &in), &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip: got %+v want %+v", out, in)
	}
}

func TestCoordResponseRoundTrip(t *testing.T) {
	in := coordRespFixture()
	var out CoordResponse
	if err := DecodeCoordResponse(mustAppendCoordResponse(nil, &in), &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, in) {
		t.Fatalf("round trip: got %+v want %+v", out, in)
	}
}

func TestCoordResponseNilAlloc(t *testing.T) {
	in := coordRespFixture()
	in.Alloc = nil
	in.Status = "too-small"
	out := CoordResponse{Alloc: &AllocJSON{ProcWatts: 1}} // stale reuse must be cleared
	if err := DecodeCoordResponse(mustAppendCoordResponse(nil, &in), &out); err != nil {
		t.Fatal(err)
	}
	if out.Alloc != nil {
		t.Fatalf("expected nil alloc, got %+v", out.Alloc)
	}
}

func TestPlanRoundTrip(t *testing.T) {
	req := PlanRequest{Platform: "ivybridge", Workload: "bt", Budget: 200, TimeoutMS: 50}
	var gotReq PlanRequest
	if err := DecodePlanRequest(mustAppendPlanRequest(nil, &req), &gotReq); err != nil {
		t.Fatal(err)
	}
	if gotReq != req {
		t.Fatalf("request round trip: got %+v want %+v", gotReq, req)
	}

	resp := planRespFixture()
	var gotResp PlanResponse
	// seed with stale steps to prove capacity reuse resets the slice
	gotResp.Steps = make([]PlanStepJSON, 5)
	if err := DecodePlanResponse(mustAppendPlanResponse(nil, &resp), &gotResp); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotResp, resp) {
		t.Fatalf("response round trip: got %+v want %+v", gotResp, resp)
	}
}

func TestScheduleRoundTrip(t *testing.T) {
	req := schedReqFixture()
	var gotReq ScheduleRequest
	if err := DecodeScheduleRequest(mustAppendScheduleRequest(nil, &req), &gotReq); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotReq, req) {
		t.Fatalf("request round trip: got %+v want %+v", gotReq, req)
	}

	resp := schedRespFixture()
	var gotResp ScheduleResponse
	if err := DecodeScheduleResponse(mustAppendScheduleResponse(nil, &resp), &gotResp); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotResp, resp) {
		t.Fatalf("response round trip: got %+v want %+v", gotResp, resp)
	}
}

func treeReqFixture() TreeRequest {
	return TreeRequest{
		Budget: 1200,
		Racks: []TreeRackJSON{
			{ID: "cpu", Nodes: []TreeNodeJSON{
				{ID: "cpu/0", Platform: "ivybridge", Workload: "stream", Priority: 2},
				{ID: "cpu/1", Platform: "haswell", Workload: "dgemm", Priority: 1},
			}},
			{ID: "gpu", CapWatts: 450, Nodes: []TreeNodeJSON{
				{ID: "gpu/0", Platform: "titanxp", Workload: "sgemm", Priority: 1},
			}},
		},
		TimeoutMS: 750,
	}
}

func treeRespFixture() TreeResponse {
	return TreeResponse{
		Budget: 1200, Granted: 1100, Surplus: 100, TotalPerf: 42.5, Oversubscription: 1.25,
		Grants: []TreeGrantJSON{
			{Node: "cpu/0", Rack: "cpu", Priority: 2, Budget: 300,
				Alloc: AllocJSON{ProcWatts: 220, MemWatts: 80}, Status: "ok", ExpectedPerf: 20},
			{Node: "gpu/0", Rack: "gpu", Priority: 1, Budget: 250,
				Alloc: AllocJSON{ProcWatts: 200, MemWatts: 50}, Status: "surplus", SurplusWatts: 5, ExpectedPerf: 22.5},
		},
		Racks: []TreeRackGrantJSON{
			{Rack: "cpu", Budget: 850, Kept: 2},
			{Rack: "gpu", CapWatts: 450, Budget: 250, Kept: 1, Shed: 1},
		},
		Shed: []TreeShedJSON{
			{Node: "gpu/1", Rack: "gpu", FloorWatts: 100, Reason: "rack-cap"},
		},
	}
}

func TestTreeRoundTrip(t *testing.T) {
	req := treeReqFixture()
	var gotReq TreeRequest
	if err := DecodeTreeRequest(mustAppendTreeRequest(nil, &req), &gotReq); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotReq, req) {
		t.Fatalf("request round trip: got %+v want %+v", gotReq, req)
	}

	resp := treeRespFixture()
	var gotResp TreeResponse
	// Seed with stale slices to prove capacity reuse resets them.
	gotResp.Grants = make([]TreeGrantJSON, 7)
	gotResp.Racks = make([]TreeRackGrantJSON, 7)
	gotResp.Shed = make([]TreeShedJSON, 7)
	if err := DecodeTreeResponse(mustAppendTreeResponse(nil, &resp), &gotResp); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotResp, resp) {
		t.Fatalf("response round trip: got %+v want %+v", gotResp, resp)
	}
}

func TestTreeTag(t *testing.T) {
	if tag, err := Tag(mustAppendTreeRequest(nil, &TreeRequest{})); err != nil || tag != TTreeRequest {
		t.Fatalf("tree request tag %d err %v", tag, err)
	}
	if tag, err := Tag(mustAppendTreeResponse(nil, &TreeResponse{})); err != nil || tag != TTreeResponse {
		t.Fatalf("tree response tag %d err %v", tag, err)
	}
	// The appended tags must not have renumbered the frozen ones.
	if TError != 7 || TTreeRequest != 8 || TTreeResponse != 9 {
		t.Fatalf("tag values moved: TError=%d TTreeRequest=%d TTreeResponse=%d", TError, TTreeRequest, TTreeResponse)
	}
}

func TestErrorRoundTrip(t *testing.T) {
	frame := AppendError(nil, 429, "busy: queue full")
	e, err := DecodeError(frame)
	if err != nil {
		t.Fatal(err)
	}
	if e.Code != 429 || e.Message != "busy: queue full" {
		t.Fatalf("got %+v", e)
	}
}

func TestSpecialFloats(t *testing.T) {
	in := coordReqFixture()
	in.Budget = math.Inf(1)
	var out CoordRequest
	if err := DecodeCoordRequest(mustAppendCoordRequest(nil, &in), &out); err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(out.Budget, 1) {
		t.Fatalf("got %v", out.Budget)
	}
	in.Budget = math.NaN()
	if err := DecodeCoordRequest(mustAppendCoordRequest(nil, &in), &out); err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(out.Budget) {
		t.Fatalf("got %v", out.Budget)
	}
}

func TestTag(t *testing.T) {
	frame := mustAppendCoordRequest(nil, &CoordRequest{})
	tag, err := Tag(frame)
	if err != nil || tag != TCoordRequest {
		t.Fatalf("tag %d err %v", tag, err)
	}
	if _, err := Tag([]byte("pB")); err == nil {
		t.Fatal("short frame accepted")
	}
	frame[3] = 0
	if _, err := Tag(frame); err == nil {
		t.Fatal("zero tag accepted")
	}
}

func TestMalformedRejected(t *testing.T) {
	good := mustAppendCoordRequest(nil, &coordReqFixtureVar)
	cases := map[string][]byte{
		"empty":        {},
		"short header": good[:4],
		"bad magic":    append([]byte("XX"), good[2:]...),
		"bad version":  mutate(good, 2, 9),
		"wrong tag":    mutate(good, 3, TPlanRequest),
		"truncated":    good[:len(good)-3],
		"trailing":     append(append([]byte(nil), good...), 0xFF),
		"length lies":  mutate(good, 4, byte(len(good))), // payload length mismatch
	}
	for name, frame := range cases {
		var out CoordRequest
		if err := DecodeCoordRequest(frame, &out); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

var coordReqFixtureVar = coordReqFixture()

func TestCountGuard(t *testing.T) {
	// A plan response claiming 2^31 steps with a tiny payload must be
	// rejected by the count guard, not attempted.
	resp := planRespFixture()
	frame := mustAppendPlanResponse(nil, &resp)
	// steps count lives right after platform, workload, budget
	off := headerLen + 2 + len(resp.Platform) + 2 + len(resp.Workload) + 8
	frame[off] = 0xFF
	frame[off+1] = 0xFF
	frame[off+2] = 0xFF
	frame[off+3] = 0x7F
	var out PlanResponse
	if err := DecodePlanResponse(frame, &out); err == nil {
		t.Fatal("oversized count accepted")
	} else if !strings.Contains(err.Error(), "count") {
		t.Fatalf("wrong error: %v", err)
	}
}

func TestBoolStrictness(t *testing.T) {
	resp := planRespFixture()
	frame := mustAppendPlanResponse(nil, &resp)
	frame[len(frame)-1] = 2 // Rejected byte
	var out PlanResponse
	if err := DecodePlanResponse(frame, &out); err == nil {
		t.Fatal("bool byte 2 accepted")
	}
}

func TestInterning(t *testing.T) {
	in := coordRespFixture()
	frame := mustAppendCoordResponse(nil, &in)
	var out CoordResponse
	if err := DecodeCoordResponse(frame, &out); err != nil {
		t.Fatal(err)
	}
	// Catalog names must come back as the interned instances, i.e. the
	// decode must not have built fresh strings for them.
	if got, ok := interned[out.Platform]; !ok || got != out.Platform {
		t.Fatalf("platform %q not interned", out.Platform)
	}
	if got, ok := interned[out.Status]; !ok || got != out.Status {
		t.Fatalf("status %q not interned", out.Status)
	}
}

func TestBufPool(t *testing.T) {
	b := GetBuf()
	*b = mustAppendCoordRequest(*b, &coordReqFixtureVar)
	if len(*b) == 0 {
		t.Fatal("empty encode")
	}
	PutBuf(b)
	b2 := GetBuf()
	if len(*b2) != 0 {
		t.Fatal("pooled buffer not reset")
	}
	PutBuf(b2)
	// Oversized buffers are dropped, not pooled.
	big := make([]byte, 0, MaxFrame+1)
	PutBuf(&big)
	PutBuf(nil)
}

func mutate(b []byte, i int, v byte) []byte {
	c := append([]byte(nil), b...)
	c[i] = v
	return c
}

// scheduleRequestOfSize builds a schedule request whose encoded frame is
// exactly n bytes (header + payload), by padding the last job's ID.
func scheduleRequestOfSize(t *testing.T, n int) *ScheduleRequest {
	t.Helper()
	req := &ScheduleRequest{Budget: 900, TimeoutMS: 100}
	req.Nodes = append(req.Nodes, NodeJSON{ID: "n0", Platform: "ivybridge"})
	// Everything but the job list: header(8) + budget(8) + node count(4)
	// + node(2+2+2+9) + job count(4) + timeout(4).
	const fixed = 8 + 8 + 4 + (2 + 2 + 2 + 9) + 4 + 4
	const jobOverhead = 2 + 2 + 6 // ID prefix, workload prefix, "stream"
	rem := n - fixed
	for rem > 0 {
		id := rem - jobOverhead
		if id > math.MaxUint16 {
			id = math.MaxUint16
		}
		if id < 0 || rem-(jobOverhead+id) < 0 {
			t.Fatalf("cannot pad schedule request to %d bytes (rem %d)", n, rem)
		}
		req.Jobs = append(req.Jobs, JobJSON{ID: strings.Repeat("j", id), Workload: "stream"})
		rem -= jobOverhead + id
	}
	frame, err := AppendScheduleRequest(nil, req)
	if err != nil {
		t.Fatalf("building %d-byte request: %v", n, err)
	}
	if len(frame) != n {
		t.Fatalf("built %d-byte frame, want %d", len(frame), n)
	}
	return req
}

func TestFrameTooLargeBoundary(t *testing.T) {
	// Exactly MaxFrame encodes; one byte over fails with the typed
	// sentinel and leaves dst untouched.
	atCap := scheduleRequestOfSize(t, MaxFrame)
	frame, err := AppendScheduleRequest(nil, atCap)
	if err != nil {
		t.Fatalf("frame at cap rejected: %v", err)
	}
	var out ScheduleRequest
	if err := DecodeScheduleRequest(frame, &out); err != nil {
		t.Fatalf("frame at cap does not decode: %v", err)
	}

	over := &ScheduleRequest{Budget: 900}
	for i := 0; i < MaxFrame/(4+len("ivybridge")+4); i++ {
		over.Nodes = append(over.Nodes, NodeJSON{ID: "n123", Platform: "ivybridge"})
	}
	dst := []byte("prefix")
	got, err := AppendScheduleRequest(dst, over)
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized frame: err=%v, want ErrFrameTooLarge", err)
	}
	if string(got) != "prefix" {
		t.Fatalf("failed encode did not rewind dst: %d bytes left", len(got))
	}
}

func TestOversizedStringFieldRejected(t *testing.T) {
	long := strings.Repeat("x", math.MaxUint16+1)
	cases := map[string]func() ([]byte, error){
		"coord request":  func() ([]byte, error) { return AppendCoordRequest(nil, &CoordRequest{Platform: long}) },
		"coord response": func() ([]byte, error) { return AppendCoordResponse(nil, &CoordResponse{Status: long}) },
		"plan request":   func() ([]byte, error) { return AppendPlanRequest(nil, &PlanRequest{Workload: long}) },
		"plan response": func() ([]byte, error) {
			return AppendPlanResponse(nil, &PlanResponse{Steps: []PlanStepJSON{{Phase: long}}})
		},
		"schedule request": func() ([]byte, error) {
			return AppendScheduleRequest(nil, &ScheduleRequest{Jobs: []JobJSON{{ID: long}}})
		},
		"schedule response": func() ([]byte, error) {
			return AppendScheduleResponse(nil, &ScheduleResponse{Deferred: []string{long}})
		},
	}
	for name, encode := range cases {
		got, err := encode()
		if !errors.Is(err, ErrFrameTooLarge) {
			t.Errorf("%s: err=%v, want ErrFrameTooLarge", name, err)
		}
		if len(got) != 0 {
			t.Errorf("%s: failed encode left %d bytes", name, len(got))
		}
	}
	// The error shape, by contrast, must clamp rather than fail: it is
	// the fallback when nothing else can be encoded.
	frame := AppendError(nil, 500, long)
	e, err := DecodeError(frame)
	if err != nil {
		t.Fatalf("clamped error frame does not decode: %v", err)
	}
	if len(e.Message) != math.MaxUint16 {
		t.Fatalf("error message clamped to %d bytes, want %d", len(e.Message), math.MaxUint16)
	}
}
