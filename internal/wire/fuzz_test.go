package wire

import (
	"errors"
	"math"
	"reflect"
	"testing"
)

// FuzzWireRoundTrip checks decode(encode(x)) == x for all three
// request/response pairs, with the fuzzer driving the field values.
func FuzzWireRoundTrip(f *testing.F) {
	f.Add("ivybridge", "stream", 227.5, "coord", uint16(250), "ok", true, uint8(2))
	f.Add("", "", 0.0, "", uint16(0), "", false, uint8(0))
	f.Add("titanv", "sgemm", math.Inf(1), "nvidia-default", uint16(65535), "too-small", false, uint8(5))
	f.Fuzz(func(t *testing.T, platform, workload string, budget float64, strategy string, timeout uint16, status string, hasAlloc bool, n uint8) {
		// NaN round-trips bit-exactly but breaks == comparison; skip it
		// here (TestSpecialFloats covers it).
		if math.IsNaN(budget) {
			return
		}
		// Strings past the 64 KiB field cap must fail loudly with the
		// typed sentinel, never truncate.
		for _, s := range []string{platform, workload, strategy, status} {
			if len(s) > math.MaxUint16 {
				_, err := AppendCoordRequest(nil, &CoordRequest{Platform: platform, Workload: workload, Strategy: strategy})
				if !errors.Is(err, ErrFrameTooLarge) {
					t.Fatalf("oversized string field: err=%v, want ErrFrameTooLarge", err)
				}
				return
			}
		}

		creq := CoordRequest{Platform: platform, Workload: workload, Budget: budget, Strategy: strategy, TimeoutMS: int(timeout)}
		var creqOut CoordRequest
		if err := DecodeCoordRequest(mustAppendCoordRequest(nil, &creq), &creqOut); err != nil {
			t.Fatalf("coord request: %v", err)
		}
		if creqOut != creq {
			t.Fatalf("coord request: got %+v want %+v", creqOut, creq)
		}

		cresp := CoordResponse{Platform: platform, Workload: workload, Kind: "cpu", Strategy: strategy, Budget: budget, Status: status, ExpectedPerf: budget / 2, PerfUnit: status, ExpectedPower: budget}
		if hasAlloc {
			cresp.Alloc = &AllocJSON{ProcWatts: budget, MemWatts: -budget}
		}
		var crespOut CoordResponse
		if err := DecodeCoordResponse(mustAppendCoordResponse(nil, &cresp), &crespOut); err != nil {
			t.Fatalf("coord response: %v", err)
		}
		if !reflect.DeepEqual(crespOut, cresp) {
			t.Fatalf("coord response: got %+v want %+v", crespOut, cresp)
		}

		presp := PlanResponse{Platform: platform, Workload: workload, Budget: budget, Rejected: hasAlloc}
		for i := 0; i < int(n%8); i++ {
			presp.Steps = append(presp.Steps, PlanStepJSON{
				Phase:  status,
				Weight: float64(i) / 8,
				Alloc:  AllocJSON{ProcWatts: budget, MemWatts: float64(i)},
				Status: strategy, FellBack: i%2 == 0,
			})
		}
		var prespOut PlanResponse
		if err := DecodePlanResponse(mustAppendPlanResponse(nil, &presp), &prespOut); err != nil {
			t.Fatalf("plan response: %v", err)
		}
		if len(presp.Steps) == 0 {
			presp.Steps = prespOut.Steps // both empty; nil vs [] is not a wire distinction
		}
		if !reflect.DeepEqual(prespOut, presp) {
			t.Fatalf("plan response: got %+v want %+v", prespOut, presp)
		}

		sreq := ScheduleRequest{Budget: budget, TimeoutMS: int(timeout)}
		for i := 0; i < int(n%5); i++ {
			sreq.Nodes = append(sreq.Nodes, NodeJSON{ID: platform, Platform: workload})
			sreq.Jobs = append(sreq.Jobs, JobJSON{ID: workload, Workload: strategy})
		}
		var sreqOut ScheduleRequest
		if err := DecodeScheduleRequest(mustAppendScheduleRequest(nil, &sreq), &sreqOut); err != nil {
			t.Fatalf("schedule request: %v", err)
		}
		if len(sreq.Nodes) == 0 {
			sreq.Nodes, sreq.Jobs = sreqOut.Nodes, sreqOut.Jobs
		}
		if !reflect.DeepEqual(sreqOut, sreq) {
			t.Fatalf("schedule request: got %+v want %+v", sreqOut, sreq)
		}

		sresp := ScheduleResponse{PoolLeft: budget, TotalPower: -budget}
		for i := 0; i < int(n%5); i++ {
			sresp.Placements = append(sresp.Placements, PlacementJSON{
				Job: platform, Node: workload, Budget: budget,
				Alloc:        AllocJSON{ProcWatts: budget, MemWatts: budget / 4},
				ExpectedPerf: budget, ExpectedPower: budget,
			})
			sresp.Deferred = append(sresp.Deferred, status)
		}
		var srespOut ScheduleResponse
		if err := DecodeScheduleResponse(mustAppendScheduleResponse(nil, &sresp), &srespOut); err != nil {
			t.Fatalf("schedule response: %v", err)
		}
		if len(sresp.Placements) == 0 {
			sresp.Placements, sresp.Deferred = srespOut.Placements, srespOut.Deferred
		}
		if !reflect.DeepEqual(srespOut, sresp) {
			t.Fatalf("schedule response: got %+v want %+v", srespOut, sresp)
		}

		treq := TreeRequest{Budget: budget, TimeoutMS: int(timeout)}
		for i := 0; i < int(n%4); i++ {
			rack := TreeRackJSON{ID: platform, CapWatts: budget / 2}
			for j := 0; j < int(n%3); j++ {
				rack.Nodes = append(rack.Nodes, TreeNodeJSON{
					ID: workload, Platform: platform, Workload: workload, Priority: int(timeout) % 7,
				})
			}
			treq.Racks = append(treq.Racks, rack)
		}
		var treqOut TreeRequest
		if err := DecodeTreeRequest(mustAppendTreeRequest(nil, &treq), &treqOut); err != nil {
			t.Fatalf("tree request: %v", err)
		}
		if len(treq.Racks) == 0 {
			treq.Racks = treqOut.Racks
		}
		if !reflect.DeepEqual(treqOut, treq) {
			t.Fatalf("tree request: got %+v want %+v", treqOut, treq)
		}

		tresp := TreeResponse{Budget: budget, Granted: budget / 2, Surplus: budget / 4, TotalPerf: -budget, Oversubscription: 1.5}
		for i := 0; i < int(n%4); i++ {
			tresp.Grants = append(tresp.Grants, TreeGrantJSON{
				Node: platform, Rack: workload, Priority: i, Budget: budget,
				Alloc: AllocJSON{ProcWatts: budget, MemWatts: -budget}, Status: status,
				SurplusWatts: float64(i), ExpectedPerf: budget / 3,
			})
			tresp.Racks = append(tresp.Racks, TreeRackGrantJSON{Rack: workload, CapWatts: budget, Budget: budget, Kept: i, Shed: 1})
			tresp.Shed = append(tresp.Shed, TreeShedJSON{Node: strategy, Rack: workload, Priority: i, FloorWatts: budget, Reason: status})
		}
		var trespOut TreeResponse
		if err := DecodeTreeResponse(mustAppendTreeResponse(nil, &tresp), &trespOut); err != nil {
			t.Fatalf("tree response: %v", err)
		}
		if len(tresp.Grants) == 0 {
			tresp.Grants, tresp.Racks, tresp.Shed = trespOut.Grants, trespOut.Racks, trespOut.Shed
		}
		if !reflect.DeepEqual(trespOut, tresp) {
			t.Fatalf("tree response: got %+v want %+v", trespOut, tresp)
		}
	})
}

// FuzzWireMalformed throws arbitrary bytes at every decoder. The
// decoders must never panic and never over-read; any outcome other
// than a clean error or a successful decode is a bug. Successful
// decodes must re-encode to a frame that decodes equal (canonical
// form round-trip).
func FuzzWireMalformed(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("pB"))
	f.Add(mustAppendCoordRequest(nil, &CoordRequest{Platform: "ivybridge", Workload: "stream", Budget: 100}))
	f.Add(mustAppendCoordResponse(nil, &CoordResponse{Alloc: &AllocJSON{}}))
	f.Add(mustAppendPlanResponse(nil, &PlanResponse{Steps: []PlanStepJSON{{Phase: "a"}}}))
	f.Add(mustAppendScheduleRequest(nil, &ScheduleRequest{Nodes: []NodeJSON{{ID: "n"}}, Jobs: []JobJSON{{ID: "j"}}}))
	f.Add(mustAppendScheduleResponse(nil, &ScheduleResponse{Placements: []PlacementJSON{{Job: "j"}}, Deferred: []string{"d"}}))
	f.Add(mustAppendTreeRequest(nil, &TreeRequest{Racks: []TreeRackJSON{{ID: "r", Nodes: []TreeNodeJSON{{ID: "r/0"}}}}}))
	f.Add(mustAppendTreeResponse(nil, &TreeResponse{Grants: []TreeGrantJSON{{Node: "r/0"}}, Shed: []TreeShedJSON{{Node: "r/1"}}}))
	f.Add(AppendError(nil, 500, "boom"))
	f.Fuzz(func(t *testing.T, data []byte) {
		Tag(data)

		var creq CoordRequest
		if DecodeCoordRequest(data, &creq) == nil {
			reencode(t, data, mustAppendCoordRequest(nil, &creq))
		}
		var cresp CoordResponse
		DecodeCoordResponse(data, &cresp)
		var preq PlanRequest
		DecodePlanRequest(data, &preq)
		var presp PlanResponse
		DecodePlanResponse(data, &presp)
		var sreq ScheduleRequest
		DecodeScheduleRequest(data, &sreq)
		var sresp ScheduleResponse
		DecodeScheduleResponse(data, &sresp)
		var treq TreeRequest
		if DecodeTreeRequest(data, &treq) == nil {
			reencode(t, data, mustAppendTreeRequest(nil, &treq))
		}
		var tresp TreeResponse
		DecodeTreeResponse(data, &tresp)
		DecodeError(data)
	})
}

func reencode(t *testing.T, original, again []byte) {
	t.Helper()
	if len(again) != len(original) {
		t.Fatalf("re-encode changed length: %d -> %d", len(original), len(again))
	}
}
