package wire

import (
	"errors"
	"math"
	"reflect"
	"testing"
)

// FuzzWireRoundTrip checks decode(encode(x)) == x for all three
// request/response pairs, with the fuzzer driving the field values.
func FuzzWireRoundTrip(f *testing.F) {
	f.Add("ivybridge", "stream", 227.5, "coord", uint16(250), "ok", true, uint8(2))
	f.Add("", "", 0.0, "", uint16(0), "", false, uint8(0))
	f.Add("titanv", "sgemm", math.Inf(1), "nvidia-default", uint16(65535), "too-small", false, uint8(5))
	f.Fuzz(func(t *testing.T, platform, workload string, budget float64, strategy string, timeout uint16, status string, hasAlloc bool, n uint8) {
		// NaN round-trips bit-exactly but breaks == comparison; skip it
		// here (TestSpecialFloats covers it).
		if math.IsNaN(budget) {
			return
		}
		// Strings past the 64 KiB field cap must fail loudly with the
		// typed sentinel, never truncate.
		for _, s := range []string{platform, workload, strategy, status} {
			if len(s) > math.MaxUint16 {
				_, err := AppendCoordRequest(nil, &CoordRequest{Platform: platform, Workload: workload, Strategy: strategy})
				if !errors.Is(err, ErrFrameTooLarge) {
					t.Fatalf("oversized string field: err=%v, want ErrFrameTooLarge", err)
				}
				return
			}
		}

		creq := CoordRequest{Platform: platform, Workload: workload, Budget: budget, Strategy: strategy, TimeoutMS: int(timeout)}
		var creqOut CoordRequest
		if err := DecodeCoordRequest(mustAppendCoordRequest(nil, &creq), &creqOut); err != nil {
			t.Fatalf("coord request: %v", err)
		}
		if creqOut != creq {
			t.Fatalf("coord request: got %+v want %+v", creqOut, creq)
		}

		cresp := CoordResponse{Platform: platform, Workload: workload, Kind: "cpu", Strategy: strategy, Budget: budget, Status: status, ExpectedPerf: budget / 2, PerfUnit: status, ExpectedPower: budget}
		if hasAlloc {
			cresp.Alloc = &AllocJSON{ProcWatts: budget, MemWatts: -budget}
		}
		var crespOut CoordResponse
		if err := DecodeCoordResponse(mustAppendCoordResponse(nil, &cresp), &crespOut); err != nil {
			t.Fatalf("coord response: %v", err)
		}
		if !reflect.DeepEqual(crespOut, cresp) {
			t.Fatalf("coord response: got %+v want %+v", crespOut, cresp)
		}

		presp := PlanResponse{Platform: platform, Workload: workload, Budget: budget, Rejected: hasAlloc}
		for i := 0; i < int(n%8); i++ {
			presp.Steps = append(presp.Steps, PlanStepJSON{
				Phase:  status,
				Weight: float64(i) / 8,
				Alloc:  AllocJSON{ProcWatts: budget, MemWatts: float64(i)},
				Status: strategy, FellBack: i%2 == 0,
			})
		}
		var prespOut PlanResponse
		if err := DecodePlanResponse(mustAppendPlanResponse(nil, &presp), &prespOut); err != nil {
			t.Fatalf("plan response: %v", err)
		}
		if len(presp.Steps) == 0 {
			presp.Steps = prespOut.Steps // both empty; nil vs [] is not a wire distinction
		}
		if !reflect.DeepEqual(prespOut, presp) {
			t.Fatalf("plan response: got %+v want %+v", prespOut, presp)
		}

		sreq := ScheduleRequest{Budget: budget, TimeoutMS: int(timeout)}
		for i := 0; i < int(n%5); i++ {
			sreq.Nodes = append(sreq.Nodes, NodeJSON{ID: platform, Platform: workload})
			sreq.Jobs = append(sreq.Jobs, JobJSON{ID: workload, Workload: strategy})
		}
		var sreqOut ScheduleRequest
		if err := DecodeScheduleRequest(mustAppendScheduleRequest(nil, &sreq), &sreqOut); err != nil {
			t.Fatalf("schedule request: %v", err)
		}
		if len(sreq.Nodes) == 0 {
			sreq.Nodes, sreq.Jobs = sreqOut.Nodes, sreqOut.Jobs
		}
		if !reflect.DeepEqual(sreqOut, sreq) {
			t.Fatalf("schedule request: got %+v want %+v", sreqOut, sreq)
		}

		sresp := ScheduleResponse{PoolLeft: budget, TotalPower: -budget}
		for i := 0; i < int(n%5); i++ {
			sresp.Placements = append(sresp.Placements, PlacementJSON{
				Job: platform, Node: workload, Budget: budget,
				Alloc:        AllocJSON{ProcWatts: budget, MemWatts: budget / 4},
				ExpectedPerf: budget, ExpectedPower: budget,
			})
			sresp.Deferred = append(sresp.Deferred, status)
		}
		var srespOut ScheduleResponse
		if err := DecodeScheduleResponse(mustAppendScheduleResponse(nil, &sresp), &srespOut); err != nil {
			t.Fatalf("schedule response: %v", err)
		}
		if len(sresp.Placements) == 0 {
			sresp.Placements, sresp.Deferred = srespOut.Placements, srespOut.Deferred
		}
		if !reflect.DeepEqual(srespOut, sresp) {
			t.Fatalf("schedule response: got %+v want %+v", srespOut, sresp)
		}
	})
}

// FuzzWireMalformed throws arbitrary bytes at every decoder. The
// decoders must never panic and never over-read; any outcome other
// than a clean error or a successful decode is a bug. Successful
// decodes must re-encode to a frame that decodes equal (canonical
// form round-trip).
func FuzzWireMalformed(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("pB"))
	f.Add(mustAppendCoordRequest(nil, &CoordRequest{Platform: "ivybridge", Workload: "stream", Budget: 100}))
	f.Add(mustAppendCoordResponse(nil, &CoordResponse{Alloc: &AllocJSON{}}))
	f.Add(mustAppendPlanResponse(nil, &PlanResponse{Steps: []PlanStepJSON{{Phase: "a"}}}))
	f.Add(mustAppendScheduleRequest(nil, &ScheduleRequest{Nodes: []NodeJSON{{ID: "n"}}, Jobs: []JobJSON{{ID: "j"}}}))
	f.Add(mustAppendScheduleResponse(nil, &ScheduleResponse{Placements: []PlacementJSON{{Job: "j"}}, Deferred: []string{"d"}}))
	f.Add(AppendError(nil, 500, "boom"))
	f.Fuzz(func(t *testing.T, data []byte) {
		Tag(data)

		var creq CoordRequest
		if DecodeCoordRequest(data, &creq) == nil {
			reencode(t, data, mustAppendCoordRequest(nil, &creq))
		}
		var cresp CoordResponse
		DecodeCoordResponse(data, &cresp)
		var preq PlanRequest
		DecodePlanRequest(data, &preq)
		var presp PlanResponse
		DecodePlanResponse(data, &presp)
		var sreq ScheduleRequest
		DecodeScheduleRequest(data, &sreq)
		var sresp ScheduleResponse
		DecodeScheduleResponse(data, &sresp)
		DecodeError(data)
	})
}

func reencode(t *testing.T, original, again []byte) {
	t.Helper()
	if len(again) != len(original) {
		t.Fatalf("re-encode changed length: %d -> %d", len(original), len(again))
	}
}
