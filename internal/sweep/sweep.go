// Package sweep provides the experiment harness: reusable sweeps that
// produce the series behind the paper's figures — perf_max versus budget
// curves (Figures 1, 2, 6), fixed-budget allocation splits with actual
// powers and scenario labels (Figures 3, 4, 8), GPU memory-power trends
// (Figure 7), capacity/utilization balance (Figure 5), and the strategy
// comparison of Figure 9.
package sweep

import (
	"context"
	"fmt"

	"repro/internal/category"
	"repro/internal/coord"
	"repro/internal/core"
	"repro/internal/evalpool"
	"repro/internal/hw"
	"repro/internal/profile"
	"repro/internal/units"
	"repro/internal/workload"
)

// Series is a named sequence of (x, y) points ready for plotting or CSV
// emission.
type Series struct {
	Name   string
	XLabel string
	YLabel string
	X, Y   []float64
}

// Append adds one point.
func (s *Series) Append(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.X) }

// BudgetCurve returns the perf_max ~ P_b series for a workload: the upper
// performance bound at each budget in [lo, hi] with n points.
func BudgetCurve(p hw.Platform, w workload.Workload, lo, hi units.Power, n int) (Series, error) {
	pts, err := core.Curve(p, w, core.BudgetRange(lo, hi, n))
	if err != nil {
		return Series{}, err
	}
	s := Series{
		Name:   fmt.Sprintf("%s/%s perf_max", p.Name, w.Name),
		XLabel: "total power budget (W)",
		YLabel: w.PerfUnit,
	}
	for _, pt := range pts {
		s.Append(pt.Budget.Watts(), pt.PerfMax)
	}
	return s, nil
}

// SplitPoint is one allocation of a fixed-budget split sweep, carrying
// both the performance and the actual component powers (the paper plots
// both, Figure 3a/3b) and the scenario label when critical powers are
// supplied.
type SplitPoint struct {
	Alloc      core.Allocation
	Perf       float64
	ProcActual units.Power
	MemActual  units.Power
	Scenario   category.Scenario
}

// CPUSplit sweeps allocations of a fixed budget on a CPU platform and
// labels each point with its scenario from the workload's profile. The
// sweep uses core's default bounds (reaching below both hardware floors,
// as the paper's plots do).
func CPUSplit(p hw.Platform, w workload.Workload, budget units.Power, prof *profile.CPUProfile) ([]SplitPoint, error) {
	pb := core.NewProblem(p, w, budget)
	evals, err := pb.Sweep()
	if err != nil {
		return nil, err
	}
	var out []SplitPoint
	for _, e := range evals {
		sp := SplitPoint{
			Alloc:      e.Alloc,
			Perf:       e.Result.Perf,
			ProcActual: e.Result.ProcPower,
			MemActual:  e.Result.MemPower,
		}
		if prof != nil {
			sp.Scenario = prof.Critical.Classify(e.Alloc.Proc, e.Alloc.Mem)
		}
		out = append(out, sp)
	}
	return out, nil
}

// GPUTrend returns the Figure 7 series for one card, workload, and board
// cap: performance versus the estimated memory power at each settable
// memory clock. The clock points are evaluated as one engine batch.
func GPUTrend(p hw.Platform, w workload.Workload, cap units.Power) ([]category.TrendPoint, error) {
	if p.Kind != hw.KindGPU {
		return nil, fmt.Errorf("sweep: platform %q is not a GPU platform", p.Name)
	}
	clocks := p.GPU.Mem.Clocks()
	reqs := make([]evalpool.Request, len(clocks))
	for i, clock := range clocks {
		reqs[i] = evalpool.Request{Op: evalpool.OpGPUClock, Proc: cap, Clock: clock}
	}
	results, err := evalpool.Default().EvaluateAll(context.Background(),
		evalpool.Problem{Platform: p, Workload: w}, reqs)
	if err != nil {
		return nil, err
	}
	pts := make([]category.TrendPoint, len(clocks))
	for i, clock := range clocks {
		pts[i] = category.TrendPoint{
			MemPower: p.GPU.Mem.Power(clock).Watts(),
			Perf:     results[i].Perf,
		}
	}
	return pts, nil
}

// BalancePoint is one point of the Figure 5 capacity/utilization study:
// for an allocation, each component's capacity — the workload's rate when
// that component is capped and the other is excessively powered, the
// paper's R_max approximation — and the utilization (actual rate over
// capacity) the jointly capped run achieves. At the optimal allocation
// both utilizations approach 1; away from it the under-powered side
// saturates while the other idles.
type BalancePoint struct {
	Alloc           core.Allocation
	ComputeCapacity units.Rate
	MemCapacity     units.Rate
	ComputeUtil     float64
	MemUtil         float64
	Perf            float64
}

// CPUBalance computes Figure 5's capacity-and-utilization data for a
// fixed budget on a CPU platform. The three runs per allocation (each
// component capped alone, then jointly) are batched through the engine,
// so the whole figure is one parallel evaluation.
func CPUBalance(p hw.Platform, w workload.Workload, budget, step units.Power) ([]BalancePoint, error) {
	if p.Kind != hw.KindCPU {
		return nil, fmt.Errorf("sweep: platform %q is not a CPU platform", p.Name)
	}
	if step <= 0 {
		step = core.DefaultStep
	}
	var allocs []core.Allocation
	for proc := core.DefaultProcMin; proc <= budget-core.DefaultMemMin; proc += step {
		allocs = append(allocs, core.Allocation{Proc: proc, Mem: budget - proc})
	}
	reqs := make([]evalpool.Request, 0, 3*len(allocs))
	for _, a := range allocs {
		reqs = append(reqs,
			evalpool.Request{Op: evalpool.OpCPU, Proc: a.Proc}, // compute capacity: memory uncapped
			evalpool.Request{Op: evalpool.OpCPU, Mem: a.Mem},   // memory capacity: CPU uncapped
			evalpool.Request{Op: evalpool.OpCPU, Proc: a.Proc, Mem: a.Mem},
		)
	}
	results, err := evalpool.Default().EvaluateAll(context.Background(),
		evalpool.Problem{Platform: p, Workload: w}, reqs)
	if err != nil {
		return nil, err
	}
	out := make([]BalancePoint, len(allocs))
	for i, a := range allocs {
		procOnly, memOnly, joint := results[3*i], results[3*i+1], results[3*i+2]
		bp := BalancePoint{
			Alloc:           a,
			ComputeCapacity: procOnly.UnitRate,
			MemCapacity:     memOnly.UnitRate,
			Perf:            joint.Perf,
		}
		if procOnly.UnitRate > 0 {
			bp.ComputeUtil = clamp01(joint.UnitRate.OpsPerSecond() / procOnly.UnitRate.OpsPerSecond())
		}
		if memOnly.UnitRate > 0 {
			bp.MemUtil = clamp01(joint.UnitRate.OpsPerSecond() / memOnly.UnitRate.OpsPerSecond())
		}
		out[i] = bp
	}
	return out, nil
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// ComparisonRow is one cell of the Figure 9 comparison: a strategy's
// performance at one budget, normalized to the exhaustive best.
type ComparisonRow struct {
	Workload string
	Budget   units.Power
	Strategy string
	Perf     float64
	// RelToBest is Perf divided by the sweep best's performance (1.0
	// means matching the oracle; 0 means rejected or failed).
	RelToBest float64
	Rejected  bool
}

// CompareCPU evaluates every CPU strategy against the exhaustive best for
// each budget, reproducing one panel of Figure 9.
func CompareCPU(p hw.Platform, w workload.Workload, budgets []units.Power) ([]ComparisonRow, error) {
	prof, err := profile.ProfileCPU(p, w)
	if err != nil {
		return nil, err
	}
	var rows []ComparisonRow
	for _, b := range budgets {
		pb := core.NewProblem(p, w, b)
		best, err := pb.PerfMax()
		if err != nil {
			continue
		}
		rows = append(rows, ComparisonRow{
			Workload: w.Name, Budget: b, Strategy: "best",
			Perf: best.Result.Perf, RelToBest: 1,
		})
		for _, s := range coord.CPUStrategies() {
			d := s.Decide(prof, b)
			row := ComparisonRow{Workload: w.Name, Budget: b, Strategy: s.Name}
			if d.Status == coord.StatusTooSmall {
				row.Rejected = true
			} else {
				ev, err := pb.Evaluate(d.Alloc)
				if err != nil {
					return nil, err
				}
				row.Perf = ev.Result.Perf
				if best.Result.Perf > 0 {
					row.RelToBest = ev.Result.Perf / best.Result.Perf
				}
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// CompareGPU evaluates every GPU strategy against the exhaustive best for
// each board cap, reproducing the GPU panels of Figure 9.
func CompareGPU(p hw.Platform, w workload.Workload, caps []units.Power) ([]ComparisonRow, error) {
	prof, err := profile.ProfileGPU(p, w)
	if err != nil {
		return nil, err
	}
	var rows []ComparisonRow
	for _, b := range caps {
		pb := core.NewProblem(p, w, b)
		best, err := pb.PerfMax()
		if err != nil {
			continue
		}
		rows = append(rows, ComparisonRow{
			Workload: w.Name, Budget: b, Strategy: "best",
			Perf: best.Result.Perf, RelToBest: 1,
		})
		for _, s := range coord.GPUStrategies() {
			d := s.Decide(prof, b)
			row := ComparisonRow{Workload: w.Name, Budget: b, Strategy: s.Name}
			ev, err := pb.Evaluate(d.Alloc)
			if err != nil {
				return nil, err
			}
			row.Perf = ev.Result.Perf
			if best.Result.Perf > 0 {
				row.RelToBest = ev.Result.Perf / best.Result.Perf
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}
