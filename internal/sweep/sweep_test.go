package sweep

import (
	"math"
	"testing"

	"repro/internal/category"
	"repro/internal/hw"
	"repro/internal/profile"
	"repro/internal/units"
	"repro/internal/workload"
)

func mustPlatform(t *testing.T, name string) hw.Platform {
	t.Helper()
	p, err := hw.PlatformByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func mustWorkload(t *testing.T, name string) workload.Workload {
	t.Helper()
	w, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestBudgetCurveShape(t *testing.T) {
	p := mustPlatform(t, "ivybridge")
	w := mustWorkload(t, "dgemm")
	s, err := BudgetCurve(p, w, 130, 300, 18)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 18 {
		t.Fatalf("series length = %d", s.Len())
	}
	// Rising then flattening.
	if s.Y[0] >= s.Y[s.Len()-1] {
		t.Error("curve should rise overall")
	}
	lastDelta := s.Y[s.Len()-1] - s.Y[s.Len()-2]
	firstDelta := s.Y[2] - s.Y[1]
	if lastDelta > firstDelta {
		t.Errorf("curve should flatten: first slope %v, last slope %v", firstDelta, lastDelta)
	}
	if s.XLabel == "" || s.YLabel == "" || s.Name == "" {
		t.Error("series labels missing")
	}
}

func TestSeriesAppend(t *testing.T) {
	var s Series
	s.Append(1, 2)
	s.Append(3, 4)
	if s.Len() != 2 || s.X[1] != 3 || s.Y[1] != 4 {
		t.Errorf("series = %+v", s)
	}
}

func TestCPUSplitScenarioLabels(t *testing.T) {
	p := mustPlatform(t, "ivybridge")
	w := mustWorkload(t, "sra")
	prof, err := profile.ProfileCPU(p, w)
	if err != nil {
		t.Fatal(err)
	}
	pts, err := CPUSplit(p, w, 240, &prof)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) < 20 {
		t.Fatalf("split sweep too coarse: %d", len(pts))
	}
	// All six scenarios appear at 240 W for SRA (paper Figure 3).
	seen := map[category.Scenario]bool{}
	for _, pt := range pts {
		if pt.Scenario == 0 {
			t.Fatal("scenario label missing")
		}
		seen[pt.Scenario] = true
	}
	for s := category.ScenarioI; s <= category.ScenarioVI; s++ {
		if !seen[s] {
			t.Errorf("scenario %v missing from the 240 W SRA sweep", s)
		}
	}
	// Without a profile, labels stay zero.
	pts, err = CPUSplit(p, w, 240, nil)
	if err != nil {
		t.Fatal(err)
	}
	if pts[0].Scenario != 0 {
		t.Error("unexpected scenario label without profile")
	}
}

func TestCPUSplitActualPowersPattern(t *testing.T) {
	// Scenario structure in actual powers (paper Figure 3b): in scenario
	// I the actual powers are flat; in scenario IV memory draws far less
	// than its allocation.
	p := mustPlatform(t, "ivybridge")
	w := mustWorkload(t, "sra")
	prof, err := profile.ProfileCPU(p, w)
	if err != nil {
		t.Fatal(err)
	}
	pts, err := CPUSplit(p, w, 240, &prof)
	if err != nil {
		t.Fatal(err)
	}
	var s1Proc []float64
	for _, pt := range pts {
		switch pt.Scenario {
		case category.ScenarioI:
			s1Proc = append(s1Proc, pt.ProcActual.Watts())
		case category.ScenarioIV:
			if pt.MemActual.Watts() > 0.75*pt.Alloc.Mem.Watts() {
				t.Errorf("scenario IV at %v: memory drew %v of its %v allocation",
					pt.Alloc, pt.MemActual, pt.Alloc.Mem)
			}
		}
	}
	if len(s1Proc) == 0 {
		t.Fatal("no scenario I points")
	}
	for _, v := range s1Proc[1:] {
		if math.Abs(v-s1Proc[0]) > 2 {
			t.Errorf("scenario I actual CPU power varies: %v vs %v", v, s1Proc[0])
		}
	}
}

func TestGPUTrendDirections(t *testing.T) {
	xp := mustPlatform(t, "titanxp")
	// SGEMM at a tight cap: falling trend (category II).
	pts, err := GPUTrend(xp, mustWorkload(t, "sgemm"), 160)
	if err != nil {
		t.Fatal(err)
	}
	cat, _, _ := category.ClassifyGPUSeries(pts)
	if cat != category.GPUCategoryII {
		t.Errorf("SGEMM at 160 W trend = %v, want II", cat)
	}
	// STREAM at a large cap: rising trend (category III).
	pts, err = GPUTrend(xp, mustWorkload(t, "gpustream"), 250)
	if err != nil {
		t.Fatal(err)
	}
	cat, _, _ = category.ClassifyGPUSeries(pts)
	if cat != category.GPUCategoryIII {
		t.Errorf("STREAM at 250 W trend = %v, want III", cat)
	}
	// CPU platform rejected.
	if _, err := GPUTrend(mustPlatform(t, "ivybridge"), mustWorkload(t, "sgemm"), 200); err == nil {
		t.Error("CPU platform accepted by GPUTrend")
	}
}

func TestCPUBalanceOptimumIsBalanced(t *testing.T) {
	p := mustPlatform(t, "ivybridge")
	w := mustWorkload(t, "stream")
	pts, err := CPUBalance(p, w, 208, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) < 5 {
		t.Fatalf("too few balance points: %d", len(pts))
	}
	// At the best-performing point, both utilizations are high (paper:
	// close to 100%).
	best := pts[0]
	for _, pt := range pts[1:] {
		if pt.Perf > best.Perf {
			best = pt
		}
	}
	if best.ComputeUtil < 0.8 || best.MemUtil < 0.8 {
		t.Errorf("optimal point utilizations = (%.2f, %.2f), want both high",
			best.ComputeUtil, best.MemUtil)
	}
	// At a memory-starved point, compute utilization far exceeds memory's
	// counterpart... i.e. memory side saturates (util -> 1) while compute
	// idles.
	for _, pt := range pts {
		if pt.Alloc.Mem.Watts() < 70 && pt.Alloc.Proc.Watts() > 120 {
			if pt.MemUtil < 0.9 {
				t.Errorf("memory-starved point should saturate memory: %+v", pt)
			}
			if pt.ComputeUtil > 0.7 {
				t.Errorf("memory-starved point should idle compute: %+v", pt)
			}
		}
	}
	// CPU platform check.
	if _, err := CPUBalance(mustPlatform(t, "titanxp"), w, 208, 8); err == nil {
		t.Error("GPU platform accepted by CPUBalance")
	}
}

func TestCompareCPUCoordNearBest(t *testing.T) {
	p := mustPlatform(t, "ivybridge")
	w := mustWorkload(t, "stream")
	rows, err := CompareCPU(p, w, []units.Power{180, 210, 240})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no comparison rows")
	}
	strategies := map[string]bool{}
	for _, r := range rows {
		strategies[r.Strategy] = true
		if r.Strategy == "best" && r.RelToBest != 1 {
			t.Errorf("best should be its own reference: %+v", r)
		}
		if !r.Rejected && r.RelToBest > 1.06 {
			t.Errorf("%s at %v: rel-to-best %v implausibly above 1", r.Strategy, r.Budget, r.RelToBest)
		}
		if r.Strategy == "coord" && !r.Rejected && r.RelToBest < 0.7 {
			t.Errorf("coord at %v: rel-to-best %v too low", r.Budget, r.RelToBest)
		}
	}
	for _, want := range []string{"best", "coord", "memory-first", "cpu-first", "even-split"} {
		if !strategies[want] {
			t.Errorf("strategy %q missing from comparison", want)
		}
	}
}

func TestCompareGPUCoordBeatsDefault(t *testing.T) {
	p := mustPlatform(t, "titanxp")
	w := mustWorkload(t, "sgemm")
	rows, err := CompareGPU(p, w, []units.Power{140, 180, 220})
	if err != nil {
		t.Fatal(err)
	}
	perf := map[string]map[float64]float64{}
	for _, r := range rows {
		if perf[r.Strategy] == nil {
			perf[r.Strategy] = map[float64]float64{}
		}
		perf[r.Strategy][r.Budget.Watts()] = r.Perf
	}
	for _, b := range []float64{140, 180, 220} {
		if perf["coord"][b] <= perf["nvidia-default"][b] {
			t.Errorf("cap %v: coord %.0f should beat nvidia-default %.0f",
				b, perf["coord"][b], perf["nvidia-default"][b])
		}
	}
}

func TestBudgetCurveInfeasibleRange(t *testing.T) {
	p := mustPlatform(t, "ivybridge")
	w := mustWorkload(t, "stream")
	if _, err := BudgetCurve(p, w, 30, 60, 4); err == nil {
		t.Error("all-infeasible range accepted")
	}
}

func TestCompareCPURejectedBudgets(t *testing.T) {
	// Budgets below every strategy's threshold still produce rows for the
	// sweep best, with the heuristics marked rejected.
	p := mustPlatform(t, "ivybridge")
	w := mustWorkload(t, "mg")
	rows, err := CompareCPU(p, w, []units.Power{150})
	if err != nil {
		t.Fatal(err)
	}
	sawRejected := false
	for _, r := range rows {
		if r.Strategy == "coord" && r.Rejected {
			sawRejected = true
			if r.Perf != 0 || r.RelToBest != 0 {
				t.Errorf("rejected row carries values: %+v", r)
			}
		}
	}
	if !sawRejected {
		t.Error("COORD should reject a 150 W budget for MG")
	}
}

func TestCompareSkipsInfeasibleBudgets(t *testing.T) {
	p := mustPlatform(t, "ivybridge")
	w := mustWorkload(t, "stream")
	rows, err := CompareCPU(p, w, []units.Power{60, 208})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Budget.Watts() == 60 {
			t.Error("infeasible budget produced rows")
		}
	}
	// GPU comparison skips caps outside the card range the same way.
	xp := mustPlatform(t, "titanxp")
	gw := mustWorkload(t, "minife")
	gRows, err := CompareGPU(xp, gw, []units.Power{50, 200})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range gRows {
		if r.Budget.Watts() == 50 {
			t.Error("out-of-range GPU cap produced rows")
		}
	}
}

func TestCPUBalanceDefaultStep(t *testing.T) {
	p := mustPlatform(t, "ivybridge")
	w := mustWorkload(t, "dgemm")
	pts, err := CPUBalance(p, w, 200, 0) // default step
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) < 10 {
		t.Errorf("default-step balance too coarse: %d", len(pts))
	}
}
