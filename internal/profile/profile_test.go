package profile

import (
	"testing"

	"repro/internal/hw"
	"repro/internal/workload"
)

func profileCPU(t *testing.T, platform, wl string) CPUProfile {
	t.Helper()
	p, err := hw.PlatformByName(platform)
	if err != nil {
		t.Fatal(err)
	}
	w, err := workload.ByName(wl)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := ProfileCPU(p, w)
	if err != nil {
		t.Fatal(err)
	}
	return prof
}

func profileGPU(t *testing.T, platform, wl string) GPUProfile {
	t.Helper()
	p, err := hw.PlatformByName(platform)
	if err != nil {
		t.Fatal(err)
	}
	w, err := workload.ByName(wl)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := ProfileGPU(p, w)
	if err != nil {
		t.Fatal(err)
	}
	return prof
}

func TestProfileCPUKindChecks(t *testing.T) {
	xp, _ := hw.PlatformByName("titanxp")
	w, _ := workload.ByName("stream")
	if _, err := ProfileCPU(xp, w); err == nil {
		t.Error("GPU platform accepted by ProfileCPU")
	}
	ivy, _ := hw.PlatformByName("ivybridge")
	gw, _ := workload.ByName("sgemm")
	if _, err := ProfileCPU(ivy, gw); err == nil {
		t.Error("GPU workload accepted by ProfileCPU")
	}
	if _, err := ProfileGPU(ivy, w); err == nil {
		t.Error("CPU platform accepted by ProfileGPU")
	}
}

func TestProfileCPUSRAMatchesPaperAnchors(t *testing.T) {
	prof := profileCPU(t, "ivybridge", "sra")
	cp := prof.Critical
	// Paper anchors (Section 3.2/5.1 for RandomAccess on IvyBridge):
	// CPU max ~108-112 W, floor 48 W; DRAM max ~116 W, floor ~66 W.
	if cp.CPUMax.Watts() < 100 || cp.CPUMax.Watts() > 118 {
		t.Errorf("P_cpu_L1 = %v, want ~108-112", cp.CPUMax)
	}
	if cp.CPUFloor.Watts() != 48 {
		t.Errorf("P_cpu_L4 = %v, want 48", cp.CPUFloor)
	}
	if cp.MemMax.Watts() < 108 || cp.MemMax.Watts() > 124 {
		t.Errorf("P_mem_L1 = %v, want ~116", cp.MemMax)
	}
	if cp.MemFloor.Watts() != 66 {
		t.Errorf("P_mem_L3 = %v, want 66", cp.MemFloor)
	}
	// Orderings hold by construction.
	if err := cp.Validate(); err != nil {
		t.Error(err)
	}
	// Lightweight: a couple dozen runs at most, far from a full sweep.
	if prof.Runs > 40 {
		t.Errorf("profiling cost %d runs, want lightweight (<40)", prof.Runs)
	}
}

func TestProfileCPUCriticalValuesSeparateWorkloads(t *testing.T) {
	dgemm := profileCPU(t, "ivybridge", "dgemm")
	sra := profileCPU(t, "ivybridge", "sra")
	// DGEMM demands much more CPU power and much less DRAM power.
	if dgemm.Critical.CPUMax <= sra.Critical.CPUMax {
		t.Errorf("DGEMM CPU demand %v should exceed SRA %v",
			dgemm.Critical.CPUMax, sra.Critical.CPUMax)
	}
	if dgemm.Critical.MemMax >= sra.Critical.MemMax {
		t.Errorf("DGEMM DRAM demand %v should sit below SRA %v",
			dgemm.Critical.MemMax, sra.Critical.MemMax)
	}
	// Hardware floors are workload independent.
	if dgemm.Critical.CPUFloor != sra.Critical.CPUFloor {
		t.Error("P_cpu_L4 must be workload independent")
	}
	if dgemm.Critical.MemFloor != sra.Critical.MemFloor {
		t.Error("P_mem_L3 must be workload independent")
	}
}

func TestProfileCPUAllWorkloadsAllPlatforms(t *testing.T) {
	for _, platform := range []string{"ivybridge", "haswell"} {
		for _, w := range workload.CPUWorkloads() {
			prof := profileCPU(t, platform, w.Name)
			if err := prof.Critical.Validate(); err != nil {
				t.Errorf("%s/%s: %v", platform, w.Name, err)
			}
			if prof.UncappedPerf <= 0 {
				t.Errorf("%s/%s: non-positive uncapped perf", platform, w.Name)
			}
			if prof.Critical.ProductiveThreshold() <= 0 {
				t.Errorf("%s/%s: bad productive threshold", platform, w.Name)
			}
		}
	}
}

func TestProfileGPUSGEMMComputeIntensive(t *testing.T) {
	prof := profileGPU(t, "titanxp", "sgemm")
	// SGEMM demands more than the 300 W max: TotMax ~300 and flagged
	// compute intensive (paper Section 5.2).
	if !prof.ComputeIntensive {
		t.Errorf("SGEMM should be compute intensive: TotMax=%v", prof.TotMax)
	}
	if prof.TotMax.Watts() < 280 {
		t.Errorf("SGEMM TotMax = %v, want ~300", prof.TotMax)
	}
	// TotRef (SM at min clock) sits well below TotMax.
	if prof.TotRef >= prof.TotMax {
		t.Errorf("TotRef %v should be below TotMax %v", prof.TotRef, prof.TotMax)
	}
	if prof.Runs != 2 {
		t.Errorf("GPU profile cost %d runs, want 2", prof.Runs)
	}
}

func TestProfileGPUMiniFEMemoryIntensive(t *testing.T) {
	prof := profileGPU(t, "titanxp", "minife")
	if prof.ComputeIntensive {
		t.Errorf("MiniFE should not be compute intensive: TotMax=%v", prof.TotMax)
	}
	// Demand flattens around the paper's ~180 W.
	if prof.TotMax.Watts() < 160 || prof.TotMax.Watts() > 210 {
		t.Errorf("MiniFE TotMax = %v, want ~180", prof.TotMax)
	}
	// Card constants pass through.
	xp, _ := hw.PlatformByName("titanxp")
	if prof.MemMin != xp.GPU.Mem.PowerMin || prof.MemMax != xp.GPU.Mem.PowerMax {
		t.Error("card memory power constants not propagated")
	}
}

func TestProfileGPUAllWorkloadsBothCards(t *testing.T) {
	for _, platform := range []string{"titanxp", "titanv"} {
		for _, w := range workload.GPUWorkloads() {
			prof := profileGPU(t, platform, w.Name)
			if prof.TotMax <= 0 || prof.TotRef <= 0 {
				t.Errorf("%s/%s: non-positive totals", platform, w.Name)
			}
			if prof.UncappedPerf <= 0 {
				t.Errorf("%s/%s: non-positive perf", platform, w.Name)
			}
		}
	}
}

func TestProfileCPUL2BracketsSensible(t *testing.T) {
	prof := profileCPU(t, "ivybridge", "stream")
	cp := prof.Critical
	// L2 (lowest P-state) must sit strictly between the floor and max for
	// a workload with real CPU demand.
	if cp.CPULowPState <= cp.CPUFloor || cp.CPULowPState >= cp.CPUMax {
		t.Errorf("P_cpu_L2 = %v outside (%v, %v)", cp.CPULowPState, cp.CPUFloor, cp.CPUMax)
	}
	// L3 (deepest throttle) between floor and L2.
	if cp.CPULowThrottle < cp.CPUFloor || cp.CPULowThrottle > cp.CPULowPState {
		t.Errorf("P_cpu_L3 = %v outside [%v, %v]", cp.CPULowThrottle, cp.CPUFloor, cp.CPULowPState)
	}
	// Memory at deep throttle sits at or above the floor and below max.
	if cp.MemAtCPULow < cp.MemFloor || cp.MemAtCPULow > cp.MemMax {
		t.Errorf("P_mem_L2 = %v outside [%v, %v]", cp.MemAtCPULow, cp.MemFloor, cp.MemMax)
	}
}
