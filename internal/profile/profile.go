// Package profile implements the lightweight application profiling COORD
// depends on (paper Section 5): a handful of capped runs that extract the
// seven critical power values on CPU platforms (P_cpu_L1..L4 and
// P_mem_L1..L3) and the two per-application parameters on GPUs
// (P_tot_max and P_tot_ref), plus the card constants P_mem_min/max.
//
// This replaces the exhaustive or fine-grained sweeps of prior work: a
// profile costs O(log) capped runs (two anchor runs plus two binary
// searches on actuator-state boundaries) rather than a full
// allocation-space sweep.
package profile

import (
	"fmt"

	"repro/internal/category"
	"repro/internal/evalpool"
	"repro/internal/hw"
	"repro/internal/sim"
	"repro/internal/units"
	"repro/internal/workload"
)

// CPUProfile is the per-application profile COORD's Algorithm 1 consumes.
type CPUProfile struct {
	// Platform and Workload name the profiled pair.
	Platform, Workload string
	// Critical holds the seven critical power values.
	Critical category.CriticalPowers
	// UncappedPerf is the performance with no caps (the budget-surplus
	// reference).
	UncappedPerf float64
	// Runs counts the simulated executions the profile cost.
	Runs int
}

// searchTolerance is the binary-search resolution in watts for locating
// actuator-state boundaries.
const searchTolerance = 0.5

// demandMargin inflates the measured maximum demands by a small
// robustness margin. The paper's Section 6.2 observes that "an ideal
// power budget would be slightly above the upper bound to ensure a robust
// power coordination": capping a domain at exactly its measured demand
// risks losing a P-state to actuator hysteresis.
const demandMargin = 1.02

// ProfileCPU extracts a CPU profile for workload w on platform p.
//
// The measurement plan mirrors what the paper's offline profiling does on
// real RAPL hardware:
//  1. one uncapped run anchors P_cpu_L1 and P_mem_L1 (maximum demands);
//  2. a binary search for the lowest package cap that avoids T-states
//     anchors P_cpu_L2 (lowest P-state power);
//  3. one run capped just below L2 lands in the lowest percentage of
//     clock throttling, anchoring P_cpu_L3 (onset of T-states) and, from
//     the same run, P_mem_L2 (the DRAM power the workload still draws
//     with the processor at L3);
//  4. P_cpu_L4 and P_mem_L3 are the hardware floors, workload
//     independent.
func ProfileCPU(p hw.Platform, w workload.Workload) (CPUProfile, error) {
	return ProfileCPUWithMargin(p, w, demandMargin)
}

// ProfileCPUWithMargin is ProfileCPU with an explicit demand margin
// (1.0 disables the robustness inflation; used by the ablation study).
func ProfileCPUWithMargin(p hw.Platform, w workload.Workload, margin float64) (CPUProfile, error) {
	if p.Kind != hw.KindCPU {
		return CPUProfile{}, fmt.Errorf("profile: platform %q is not a CPU platform", p.Name)
	}
	if margin < 1 {
		return CPUProfile{}, fmt.Errorf("profile: demand margin %v below 1", margin)
	}
	prof := CPUProfile{Platform: p.Name, Workload: w.Name}
	// The probing runs go through the shared evaluation engine: the
	// binary-search sequence is deterministic, so a re-profile of the
	// same pair (every figure profiles its benchmarks independently)
	// costs map lookups instead of simulator runs.
	bound := evalpool.Default().Bind(evalpool.Problem{Platform: p, Workload: w})
	run := func(procCap, memCap units.Power) (sim.Result, error) {
		prof.Runs++
		return bound.Evaluate(evalpool.Request{Op: evalpool.OpCPU, Proc: procCap, Mem: memCap})
	}

	// 1. Maximum demands. The demand that matters for capping is the
	// *peak* across execution phases, not the time-weighted average: a
	// cap at the average throttles the hungriest phase of a multi-phase
	// application.
	uncapped, err := run(0, 0)
	if err != nil {
		return CPUProfile{}, err
	}
	prof.UncappedPerf = uncapped.Perf
	peakProc, peakMem := uncapped.ProcPower, uncapped.MemPower
	for _, ph := range uncapped.Phases {
		if ph.ProcPower > peakProc {
			peakProc = ph.ProcPower
		}
		if ph.MemPower > peakMem {
			peakMem = ph.MemPower
		}
	}
	prof.Critical.CPUMax = units.Power(peakProc.Watts() * margin)
	prof.Critical.MemMax = units.Power(peakMem.Watts() * margin)

	// 2. Lowest P-state power: the smallest cap that does not throttle.
	floor := p.CPU.IdlePower
	lo, hi := floor, prof.Critical.CPUMax
	var lowPState sim.Result
	found := false
	for hi-lo > searchTolerance {
		mid := (lo + hi) / 2
		res, err := run(mid, 0)
		if err != nil {
			return CPUProfile{}, err
		}
		if res.Throttled {
			lo = mid
		} else {
			hi = mid
			lowPState = res
			found = true
		}
	}
	if !found {
		// Even the maximum demand throttles (cannot happen with a
		// consistent spec, but fail loudly rather than fabricate).
		return CPUProfile{}, fmt.Errorf("profile: no unthrottled package state found for %s", w.Name)
	}
	prof.Critical.CPULowPState = lowPState.ProcPower

	// 3. Onset of clock throttling: cap just below the lowest P-state
	// power lands the actuator in the lowest percentage of throttling.
	onset, err := run(prof.Critical.CPULowPState-1, 0)
	if err != nil {
		return CPUProfile{}, err
	}
	if !onset.Throttled {
		return CPUProfile{}, fmt.Errorf("profile: throttle onset not reached for %s", w.Name)
	}
	prof.Critical.CPULowThrottle = onset.ProcPower
	prof.Critical.MemAtCPULow = onset.MemPower

	// 4. Hardware floors (workload independent).
	prof.Critical.CPUFloor = p.CPU.IdlePower
	prof.Critical.MemFloor = p.DRAM.BackgroundPower

	// Guard against measurement inversions before handing the profile to
	// the classifier.
	clampOrdering(&prof.Critical)
	if err := prof.Critical.Validate(); err != nil {
		return CPUProfile{}, err
	}
	return prof, nil
}

// clampOrdering repairs sub-watt inversions that binary-search tolerance
// can introduce between adjacent critical values.
func clampOrdering(cp *category.CriticalPowers) {
	if cp.CPULowThrottle < cp.CPUFloor {
		cp.CPULowThrottle = cp.CPUFloor
	}
	if cp.CPULowPState < cp.CPULowThrottle {
		cp.CPULowPState = cp.CPULowThrottle
	}
	if cp.CPUMax < cp.CPULowPState {
		cp.CPUMax = cp.CPULowPState
	}
	if cp.MemAtCPULow < cp.MemFloor {
		cp.MemAtCPULow = cp.MemFloor
	}
	if cp.MemMax < cp.MemAtCPULow {
		cp.MemMax = cp.MemAtCPULow
	}
}

// GPUProfile is the per-application profile COORD's Algorithm 2 consumes
// (Section 5.2): two application parameters plus two card constants.
type GPUProfile struct {
	// Platform and Workload name the profiled pair.
	Platform, Workload string
	// TotMax (P_tot_max) is the board power with no cap imposed (run at
	// the maximum settable cap). A value close to the hardware maximum
	// marks the application compute intensive.
	TotMax units.Power
	// TotRef (P_tot_ref) is the board power with memory at the nominal
	// clock and the SMs at their minimum pairing clock.
	TotRef units.Power
	// MemMin and MemMax are the card's memory power range (constants for
	// all applications); MemNom is the memory power at the nominal clock
	// the default driver policy always selects.
	MemMin, MemMax, MemNom units.Power
	// ComputeIntensive reports whether TotMax approaches the hardware
	// maximum.
	ComputeIntensive bool
	// UncappedPerf is the performance at the maximum settable cap.
	UncappedPerf float64
	// Runs counts the simulated executions the profile cost.
	Runs int
}

// computeIntensiveFrac is the fraction of the hardware maximum cap above
// which TotMax marks an application compute intensive (paper: "a value
// close to hardware maximum (300 Watts on the Titan XP GPU)").
const computeIntensiveFrac = 0.95

// ProfileGPU extracts a GPU profile for workload w on card platform p
// with two runs: one uncapped (maximum settable cap, nominal clocks) and
// one with the SM clock pinned at its minimum while memory stays nominal.
func ProfileGPU(p hw.Platform, w workload.Workload) (GPUProfile, error) {
	if p.Kind != hw.KindGPU {
		return GPUProfile{}, fmt.Errorf("profile: platform %q is not a GPU platform", p.Name)
	}
	gpu := p.GPU
	prof := GPUProfile{
		Platform: p.Name, Workload: w.Name,
		MemMin: gpu.Mem.PowerMin, MemMax: gpu.Mem.PowerMax,
		MemNom: gpu.Mem.Power(gpu.Mem.ClockNom),
	}

	bound := evalpool.Default().Bind(evalpool.Problem{Platform: p, Workload: w})
	uncapped, err := bound.Evaluate(evalpool.Request{
		Op: evalpool.OpGPUClock, Proc: gpu.MaxCap, Clock: gpu.Mem.ClockNom})
	if err != nil {
		return GPUProfile{}, err
	}
	prof.Runs++
	prof.TotMax = uncapped.TotalPower
	prof.UncappedPerf = uncapped.Perf

	// SM at the minimum pairing clock, memory nominal.
	minSM := gpu.SMClockMin - gpu.SMClockNom // offset to the bottom of the table
	ref, err := bound.Evaluate(evalpool.Request{
		Op: evalpool.OpGPUOffsets, Proc: gpu.MaxCap, SMOffset: minSM})
	if err != nil {
		return GPUProfile{}, err
	}
	prof.Runs++
	prof.TotRef = ref.TotalPower

	prof.ComputeIntensive = prof.TotMax.Watts() >= computeIntensiveFrac*gpu.MaxCap.Watts()
	return prof, nil
}
