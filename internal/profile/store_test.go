package profile

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/hw"
	"repro/internal/workload"
)

func TestStoreRoundTrip(t *testing.T) {
	ivy, _ := hw.PlatformByName("ivybridge")
	xp, _ := hw.PlatformByName("titanxp")
	stream, _ := workload.ByName("stream")
	sgemm, _ := workload.ByName("sgemm")

	cpuProf, err := ProfileCPU(ivy, stream)
	if err != nil {
		t.Fatal(err)
	}
	gpuProf, err := ProfileGPU(xp, sgemm)
	if err != nil {
		t.Fatal(err)
	}

	s := NewStore()
	s.PutCPU(cpuProf)
	s.PutGPU(gpuProf)

	path := filepath.Join(t.TempDir(), "nested", "profiles.json")
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := loaded.GetCPU("ivybridge", "stream")
	if !ok {
		t.Fatal("CPU profile missing after round trip")
	}
	if got.Critical != cpuProf.Critical || got.UncappedPerf != cpuProf.UncappedPerf {
		t.Errorf("CPU profile changed: %+v vs %+v", got, cpuProf)
	}
	gGot, ok := loaded.GetGPU("titanxp", "sgemm")
	if !ok {
		t.Fatal("GPU profile missing after round trip")
	}
	if gGot.TotMax != gpuProf.TotMax || gGot.ComputeIntensive != gpuProf.ComputeIntensive {
		t.Errorf("GPU profile changed: %+v vs %+v", gGot, gpuProf)
	}
	keys := loaded.Keys()
	if len(keys) != 2 || keys[0] != "ivybridge/stream" || keys[1] != "titanxp/sgemm" {
		t.Errorf("keys = %v", keys)
	}
}

func TestStoreMissingLookups(t *testing.T) {
	s := NewStore()
	if _, ok := s.GetCPU("x", "y"); ok {
		t.Error("missing CPU profile found")
	}
	if _, ok := s.GetGPU("x", "y"); ok {
		t.Error("missing GPU profile found")
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(bad); err == nil {
		t.Error("malformed JSON accepted")
	}
	// A store with inverted critical powers must be rejected.
	corrupt := filepath.Join(t.TempDir(), "corrupt.json")
	content := `{"cpu":{"p/w":{"Platform":"p","Workload":"w","Critical":{
		"CPUMax":50,"CPULowPState":90,"CPULowThrottle":60,"CPUFloor":48,
		"MemMax":100,"MemAtCPULow":80,"MemFloor":66}}},"gpu":{}}`
	if err := os.WriteFile(corrupt, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(corrupt); err == nil {
		t.Error("inverted critical powers accepted")
	}
}
