package profile

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// Store is a persistent collection of profiles keyed by platform and
// workload — the artifact an offline profiling campaign produces and a
// batch scheduler (the paper suggests Slurm integration) consumes at job
// submission time, so no profiling runs happen on the critical path.
type Store struct {
	// CPU and GPU map "platform/workload" keys to profiles.
	CPU map[string]CPUProfile `json:"cpu"`
	GPU map[string]GPUProfile `json:"gpu"`
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{CPU: map[string]CPUProfile{}, GPU: map[string]GPUProfile{}}
}

// Key builds the canonical map key.
func Key(platform, workload string) string { return platform + "/" + workload }

// PutCPU records a CPU profile.
func (s *Store) PutCPU(p CPUProfile) {
	s.CPU[Key(p.Platform, p.Workload)] = p
}

// PutGPU records a GPU profile.
func (s *Store) PutGPU(p GPUProfile) {
	s.GPU[Key(p.Platform, p.Workload)] = p
}

// GetCPU looks up a CPU profile.
func (s *Store) GetCPU(platform, workload string) (CPUProfile, bool) {
	p, ok := s.CPU[Key(platform, workload)]
	return p, ok
}

// GetGPU looks up a GPU profile.
func (s *Store) GetGPU(platform, workload string) (GPUProfile, bool) {
	p, ok := s.GPU[Key(platform, workload)]
	return p, ok
}

// Keys returns all stored keys in sorted order.
func (s *Store) Keys() []string {
	var ks []string
	for k := range s.CPU {
		ks = append(ks, k)
	}
	for k := range s.GPU {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// Save writes the store as indented JSON, creating parent directories.
func (s *Store) Save(path string) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return fmt.Errorf("profile: encode store: %w", err)
	}
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("profile: %w", err)
		}
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Load reads a store written by Save and validates every CPU profile's
// critical-power orderings.
func Load(path string) (*Store, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("profile: %w", err)
	}
	s := NewStore()
	if err := json.Unmarshal(data, s); err != nil {
		return nil, fmt.Errorf("profile: decode store %s: %w", path, err)
	}
	for k, p := range s.CPU {
		if err := p.Critical.Validate(); err != nil {
			return nil, fmt.Errorf("profile: store entry %q: %w", k, err)
		}
	}
	return s, nil
}
