package recoord

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/hw"
	"repro/internal/nvgov"
	"repro/internal/telemetry"
	"repro/internal/units"
	"repro/internal/workload"
)

func mustPlatform(t *testing.T, name string) hw.Platform {
	t.Helper()
	p, err := hw.PlatformByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func mustWorkload(t *testing.T, name string) workload.Workload {
	t.Helper()
	w, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// budgetGrid mirrors the experiments runner: four points spanning the
// settable range.
func budgetGrid(gpu *hw.GPUSpec) []units.Power {
	var out []units.Power
	for _, frac := range []float64{0.1, 0.35, 0.6, 0.85} {
		out = append(out, gpu.MinCap+units.Power(frac*float64(gpu.MaxCap-gpu.MinCap)))
	}
	return out
}

// TestOnlineNeverWorseThanStatic is the headline property: across every
// phased ML workload, H100-class platform, and budget point, the online
// controller at least matches static COORD, and beats it strictly
// somewhere. The construction makes "never worse" structural — the
// static setting opens the run and stays in the candidate slate — so a
// failure here means the switch logic regressed.
func TestOnlineNeverWorseThanStatic(t *testing.T) {
	strictly := 0
	for _, pn := range []string{"h100", "h200"} {
		p := mustPlatform(t, pn)
		for _, wn := range []string{"llmserve", "llmchat", "llmbatch"} {
			w := mustWorkload(t, wn)
			for _, budget := range budgetGrid(p.GPU) {
				res, err := Run(Config{Platform: p, Workload: w, Budget: budget})
				if err != nil {
					t.Fatalf("%s/%s@%v: %v", pn, wn, budget, err)
				}
				if res.OnlinePerf < res.StaticPerf*(1-1e-9) {
					t.Errorf("%s/%s@%v: online %.6g worse than static %.6g",
						pn, wn, budget, res.OnlinePerf, res.StaticPerf)
				}
				if res.OnlinePerf > res.StaticPerf*(1+1e-6) {
					strictly++
				}
				if res.GovernorPerf <= 0 || res.StaticPerf <= 0 {
					t.Errorf("%s/%s@%v: non-positive baseline (static %.6g, governor %.6g)",
						pn, wn, budget, res.StaticPerf, res.GovernorPerf)
				}
			}
		}
	}
	if strictly == 0 {
		t.Error("online never strictly beat static COORD on any phased pair")
	}
}

// TestDeterministicRepeat pins the byte-identical guarantee the
// experiments artifact relies on: two runs of the same configuration
// produce identical results, down to formatting.
func TestDeterministicRepeat(t *testing.T) {
	p, w := mustPlatform(t, "h100"), mustWorkload(t, "llmbatch")
	budget := 300 * units.Watt
	a, err := Run(Config{Platform: p, Workload: w, Budget: budget})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Config{Platform: p, Workload: w, Budget: budget})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("repeat run diverged:\n%+v\nvs\n%+v", a, b)
	}
	if fmt.Sprintf("%+v", a) != fmt.Sprintf("%+v", b) {
		t.Fatal("repeat run not byte-identical when rendered")
	}
}

// TestBudgetBelowCapFloorTypedRejection: recoord rejects sub-floor
// budgets with the same typed nvgov error as the allocation service —
// not a silent clamp, not an ad-hoc string.
func TestBudgetBelowCapFloorTypedRejection(t *testing.T) {
	p, w := mustPlatform(t, "h100"), mustWorkload(t, "llmserve")
	_, err := Run(Config{Platform: p, Workload: w, Budget: p.GPU.MinCap - 1*units.Watt})
	if !errors.Is(err, nvgov.ErrCapOutOfRange) {
		t.Fatalf("sub-floor budget got %v, want nvgov.ErrCapOutOfRange", err)
	}
	var cre *nvgov.CapRangeError
	if !errors.As(err, &cre) {
		t.Fatalf("error %v does not unwrap to *nvgov.CapRangeError", err)
	}
	if cre.Min != p.GPU.MinCap || cre.Max != p.GPU.MaxCap {
		t.Fatalf("CapRangeError range [%v, %v], want [%v, %v]", cre.Min, cre.Max, p.GPU.MinCap, p.GPU.MaxCap)
	}
	// The floor itself is settable and must run.
	if _, err := Run(Config{Platform: p, Workload: w, Budget: p.GPU.MinCap}); err != nil {
		t.Fatalf("budget at the exact floor rejected: %v", err)
	}
}

func TestConfigRejections(t *testing.T) {
	h100, llm := mustPlatform(t, "h100"), mustWorkload(t, "llmserve")
	ivy, stream := mustPlatform(t, "ivybridge"), mustWorkload(t, "stream")
	cases := []struct {
		name string
		cfg  Config
		want string
	}{
		{"cpu-platform", Config{Platform: ivy, Workload: llm, Budget: 300 * units.Watt}, "not a GPU platform"},
		{"cpu-workload", Config{Platform: h100, Workload: stream, Budget: 300 * units.Watt}, "not a GPU workload"},
		{"zero-budget", Config{Platform: h100, Workload: llm}, "positive power bound"},
		{"negative-budget", Config{Platform: h100, Workload: llm, Budget: -5 * units.Watt}, "positive power bound"},
		{"invalid-workload", Config{Platform: h100, Workload: workload.Workload{Name: "empty", Kind: hw.KindGPU}, Budget: 300 * units.Watt}, "recoord:"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Run(tc.cfg)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("got %v, want error containing %q", err, tc.want)
			}
		})
	}
}

// TestSinglePhaseStaysStatic: with one phase there is no shift to
// detect, so the controller never re-coordinates and exactly matches
// static COORD.
func TestSinglePhaseStaysStatic(t *testing.T) {
	p, w := mustPlatform(t, "h100"), mustWorkload(t, "sgemm")
	res, err := Run(Config{Platform: p, Workload: w, Budget: 400 * units.Watt})
	if err != nil {
		t.Fatal(err)
	}
	if res.Recoordinations != 0 || res.Switches != 0 {
		t.Fatalf("single-phase run re-coordinated: %d recoords, %d switches",
			res.Recoordinations, res.Switches)
	}
	if rel := res.OnlinePerf/res.StaticPerf - 1; rel > 1e-12 || rel < -1e-12 {
		t.Fatalf("single-phase online %.12g != static %.12g", res.OnlinePerf, res.StaticPerf)
	}
	for _, v := range res.Visits {
		if v.Setting != res.StaticSetting {
			t.Fatalf("visit %q left the static setting: %+v", v.Phase, v.Setting)
		}
	}
}

// TestTelemetryInstruments checks the controller's instruments land in
// the registry, that the counters agree with the result, and that the
// gauges hold the last observed phase state.
func TestTelemetryInstruments(t *testing.T) {
	reg := telemetry.New()
	p, w := mustPlatform(t, "h200"), mustWorkload(t, "llmchat")
	res, err := Run(Config{Platform: p, Workload: w, Budget: 350 * units.Watt, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	if res.Recoordinations == 0 || res.Switches == 0 {
		t.Fatalf("phased run never re-coordinated: %+v", res)
	}
	snap := reg.Snapshot()
	got := map[string]float64{}
	for _, pt := range snap.Points {
		got[pt.Name] = pt.Value
	}
	for name, want := range map[string]float64{
		"recoord_recoordinations_total": float64(res.Recoordinations),
		"recoord_switches_total":        float64(res.Switches),
	} {
		if got[name] != want {
			t.Errorf("%s = %v, want %v (snapshot %v)", name, got[name], want, got)
		}
	}
	for _, name := range []string{"recoord_activity", "recoord_stall_frac"} {
		v, ok := got[name]
		if !ok {
			t.Errorf("gauge %s missing from registry snapshot", name)
		} else if !(v > 0 && v <= 1) {
			t.Errorf("gauge %s = %v, want a fraction in (0, 1]", name, v)
		}
	}
}

// TestVisitsTimeline sanity-checks the reported phase timeline: trace
// order, positive dwell, re-coordination lag bounded by the visit, and
// the per-visit static baseline consistent with the overall number.
func TestVisitsTimeline(t *testing.T) {
	p, w := mustPlatform(t, "h100"), mustWorkload(t, "llmserve")
	cfg := Config{Platform: p, Workload: w, Budget: 320 * units.Watt, Rounds: 2}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantVisits := cfg.Rounds * len(w.Phases)
	if len(res.Visits) != wantVisits {
		t.Fatalf("got %d visits, want %d", len(res.Visits), wantVisits)
	}
	var onlineTime, staticTime float64
	var ticks int
	for i, v := range res.Visits {
		if v.Phase != w.Phases[i%len(w.Phases)].Name {
			t.Fatalf("visit %d is phase %q, want %q", i, v.Phase, w.Phases[i%len(w.Phases)].Name)
		}
		if v.Ticks <= 0 || v.LagTicks < 0 || v.LagTicks > v.Ticks {
			t.Fatalf("visit %d has malformed dwell: %+v", i, v)
		}
		if v.Recoordinated == (v.LagTicks == 0) {
			t.Fatalf("visit %d lag/recoordination mismatch: %+v", i, v)
		}
		onlineTime += v.OnlinePerf * float64(v.Ticks)
		staticTime += v.StaticPerf * float64(v.Ticks)
		ticks += v.Ticks
	}
	if gap := res.OnlinePerf - onlineTime/float64(ticks); gap > 1e-9 || gap < -1e-9 {
		t.Fatalf("overall online perf %.9g inconsistent with visits (%.9g)",
			res.OnlinePerf, onlineTime/float64(ticks))
	}
	if gap := res.StaticPerf - staticTime/float64(ticks); gap > 1e-9 || gap < -1e-9 {
		t.Fatalf("overall static perf %.9g inconsistent with visits (%.9g)",
			res.StaticPerf, staticTime/float64(ticks))
	}
}

func TestGainZeroOnEmptyResult(t *testing.T) {
	var r Result
	if g := r.Gain(); g != 0 {
		t.Fatalf("zero result gain = %v, want 0", g)
	}
}
