// Package recoord closes the coordination loop: an online controller
// that watches workload telemetry (activity and stall gauges) for phase
// shifts and re-runs GPU power coordination through the shared
// evaluation engine whenever the running phase's character changes.
//
// Static COORD (Algorithm 2) picks one split from an aggregate,
// whole-run profile. On a phased ML-inference workload that aggregate
// lies: llmbatch's token-weighted intensity reads compute-bound (most
// tokens are prefill) while most of the wall time is bandwidth-bound
// decode, so the static split starves whichever phase the aggregate
// hides. The controller instead keeps the static decision only as its
// opening setting and its always-available fallback candidate: each
// detected phase shift triggers a re-coordination that evaluates the
// card's settable operating points against the phase actually running
// and switches only for a clear win. The static setting stays in every
// candidate slate and a switch needs a SwitchMargin gain, so online
// performance can trail static COORD only during the detection lag —
// never at steady state.
//
// Everything is driven in virtual time: the trace, the detector, and
// the evaluations are pure functions of the configuration, so two runs
// produce byte-identical results (the property the experiments artifact
// asserts). Nothing here reads wall clocks or random state.
package recoord

import (
	"fmt"

	"repro/internal/coord"
	"repro/internal/evalpool"
	"repro/internal/hw"
	"repro/internal/nvgov"
	"repro/internal/profile"
	"repro/internal/telemetry"
	"repro/internal/units"
	"repro/internal/workload"
)

// Defaults for Config.
const (
	// DefaultRounds is how many full phase cycles the trace runs.
	DefaultRounds = 3
	// DefaultTicksPerRound is the number of virtual telemetry samples in
	// one cycle through the workload's phases.
	DefaultTicksPerRound = 96
	// DefaultDetectSamples is the hysteresis depth: how many consecutive
	// out-of-band samples the detector needs before it declares a phase
	// shift. 1 would re-coordinate on a single noisy sample; large
	// values stretch the lag during which the stale setting keeps
	// running.
	DefaultDetectSamples = 2
	// DefaultActivityDelta and DefaultStallDelta are the detection
	// thresholds on the two watched gauges, as absolute deviations from
	// the values captured at the last coordination.
	DefaultActivityDelta = 0.08
	DefaultStallDelta    = 0.05
	// DefaultSwitchMargin is the minimum relative perf gain a candidate
	// needs over the running setting before the controller switches.
	// Re-programming a cap is not free on real governors, and a margin
	// also keeps the comparison against static COORD one-sided.
	DefaultSwitchMargin = 0.01
)

// Config parameterizes one controller run. Platform, Workload, and
// Budget are required; everything else defaults.
type Config struct {
	Platform hw.Platform
	Workload workload.Workload
	// Budget is the board power bound. Budgets below the card's settable
	// cap floor are rejected with nvgov's typed error, exactly like the
	// allocation service's exact path.
	Budget units.Power

	// Rounds and TicksPerRound shape the virtual-time trace.
	Rounds, TicksPerRound int
	// DetectSamples, ActivityDelta, StallDelta tune the phase-shift
	// detector; SwitchMargin tunes the switch decision.
	DetectSamples             int
	ActivityDelta, StallDelta float64
	SwitchMargin              float64
	// Registry, when set, receives the controller's instruments
	// (activity/stall gauges, switch and re-coordination counters). The
	// detector reads the gauges back through the registry — the
	// controller sees exactly what an operator scraping /metrics sees.
	Registry *telemetry.Registry
	// Engine is the evaluation engine; nil means evalpool.Default().
	Engine *evalpool.Engine
}

func (cfg *Config) normalize() {
	if cfg.Rounds <= 0 {
		cfg.Rounds = DefaultRounds
	}
	if cfg.TicksPerRound <= 0 {
		cfg.TicksPerRound = DefaultTicksPerRound
	}
	if cfg.DetectSamples <= 0 {
		cfg.DetectSamples = DefaultDetectSamples
	}
	if cfg.ActivityDelta <= 0 {
		cfg.ActivityDelta = DefaultActivityDelta
	}
	if cfg.StallDelta <= 0 {
		cfg.StallDelta = DefaultStallDelta
	}
	if cfg.SwitchMargin <= 0 {
		cfg.SwitchMargin = DefaultSwitchMargin
	}
	if cfg.Engine == nil {
		cfg.Engine = evalpool.Default()
	}
}

// Setting is one GPU operating point: a board cap and the memory power
// budget steering the clock choice (the OpGPUMemPower knob pair).
type Setting struct {
	Proc, Mem units.Power
}

// PhaseVisit reports one contiguous phase interval of the trace.
type PhaseVisit struct {
	// Phase names the workload phase that ran.
	Phase string
	// Ticks is the interval length in samples; LagTicks of those ran on
	// the previous interval's setting before the detector fired.
	Ticks, LagTicks int
	// Recoordinated reports whether this visit triggered a
	// re-coordination (the first visit never does: the controller opens
	// on the static decision).
	Recoordinated bool
	// Setting is the operating point in effect at the end of the visit.
	Setting Setting
	// OnlinePerf is the time-weighted performance over the visit;
	// StaticPerf and GovernorPerf are the baselines evaluated on the
	// same phase.
	OnlinePerf, StaticPerf, GovernorPerf float64
}

// Result is one controller run compared against both baselines on the
// identical virtual-time trace.
type Result struct {
	Platform, Workload string
	Budget             units.Power
	PerfUnit           string

	// OnlinePerf, StaticPerf, and GovernorPerf are overall
	// time-weighted performances: online is the controller, static is
	// COORD's single aggregate-profile split held for the whole trace,
	// governor is the default policy (board cap at the budget, memory
	// at its nominal clock).
	OnlinePerf, StaticPerf, GovernorPerf float64

	// Recoordinations counts detector firings; Switches counts how many
	// changed the setting (a re-coordination that confirms the running
	// setting is not a switch).
	Recoordinations, Switches int

	// StaticSetting is COORD's opening operating point.
	StaticSetting Setting
	// Visits is the phase timeline in trace order.
	Visits []PhaseVisit
}

// Gain is the online-over-static improvement as a fraction (0.07 means
// 7% more throughput than static COORD).
func (r *Result) Gain() float64 {
	if r.StaticPerf <= 0 {
		return 0
	}
	return r.OnlinePerf/r.StaticPerf - 1
}

// singlePhase returns a copy of w narrowed to phase i with weight 1 —
// the problem the engine evaluates while that phase is running.
func singlePhase(w workload.Workload, i int) workload.Workload {
	ph := w.Phases[i]
	ph.Weight = 1
	out := w
	out.Name = w.Name + "#" + ph.Name
	out.Phases = []workload.Phase{ph}
	return out
}

// controller holds one run's state.
type controller struct {
	cfg    Config
	gpu    *hw.GPUSpec
	bounds []*evalpool.Bound // one per phase, singlePhase problems
	prof   profile.GPUProfile

	cap        units.Power // enforceable board cap: min(budget, MaxCap)
	static     Setting
	candidates []Setting

	activity, stall *telemetry.Gauge
	recoords        *telemetry.Counter
	switches        *telemetry.Counter

	// refActivity/refStall are the gauge values captured at the last
	// coordination; outOfBand counts consecutive deviating samples.
	refActivity, refStall float64
	outOfBand             int
}

// Run executes one controller run. The error paths mirror the
// allocation service: non-GPU platforms and invalid budgets are
// rejected up front, and a budget below the card's settable cap floor
// returns the typed nvgov rejection.
func Run(cfg Config) (Result, error) {
	cfg.normalize()
	p, w := cfg.Platform, cfg.Workload
	if p.Kind != hw.KindGPU {
		return Result{}, fmt.Errorf("recoord: platform %q is not a GPU platform", p.Name)
	}
	if err := w.Validate(); err != nil {
		return Result{}, fmt.Errorf("recoord: %w", err)
	}
	if w.Kind != hw.KindGPU {
		return Result{}, fmt.Errorf("recoord: workload %q is not a GPU workload", w.Name)
	}
	if !(cfg.Budget.Watts() > 0) {
		return Result{}, fmt.Errorf("recoord: budget must be a positive power bound, got %v", cfg.Budget)
	}
	if cfg.Budget < p.GPU.MinCap {
		return Result{}, nvgov.CheckCap(p.GPU, cfg.Budget)
	}

	c := &controller{cfg: cfg, gpu: p.GPU}
	if err := c.prepare(); err != nil {
		return Result{}, err
	}
	return c.run()
}

// prepare profiles the aggregate workload, derives the static COORD
// decision and the candidate slate, and registers the instruments.
func (c *controller) prepare() error {
	p, w := c.cfg.Platform, c.cfg.Workload
	prof, err := profile.ProfileGPU(p, w)
	if err != nil {
		return err
	}
	c.prof = prof

	c.cap = c.cfg.Budget
	if c.cap > c.gpu.MaxCap {
		c.cap = c.gpu.MaxCap
	}

	d := coord.GPU(prof, c.cfg.Budget, coord.DefaultGamma)
	if d.Status == coord.StatusTooSmall {
		// Unreachable for real cards (the cap floor sits above the
		// memory floor, and sub-floor budgets were rejected above), but
		// a custom platform could get here.
		return fmt.Errorf("recoord: budget %v below the productive threshold (memory floor %v)",
			c.cfg.Budget, prof.MemMin)
	}
	staticCap := d.Alloc.Total()
	if staticCap < c.gpu.MinCap {
		// Surplus decisions pin the application demand, which may sit
		// under the settable floor; the governor would be programmed at
		// its floor then (same clamp the allocation service applies).
		staticCap = c.gpu.MinCap
	}
	if staticCap > c.cap {
		staticCap = c.cap
	}
	c.static = Setting{Proc: staticCap, Mem: d.Alloc.Mem}

	// The candidate slate: one operating point per settable memory
	// clock, all under the enforceable cap, plus the static decision.
	// The slate is fixed up front — re-coordination picks from it by
	// measurement, it does not invent new points.
	for _, f := range c.gpu.Mem.Clocks() {
		c.candidates = append(c.candidates, Setting{Proc: c.cap, Mem: c.gpu.Mem.Power(f)})
	}
	c.candidates = append(c.candidates, c.static)

	for i := range w.Phases {
		c.bounds = append(c.bounds, c.cfg.Engine.Bind(evalpool.Problem{
			Platform: p, Workload: singlePhase(w, i)}))
	}

	reg := c.cfg.Registry
	if reg != nil {
		labels := []string{"platform", p.Name, "workload", w.Name}
		c.activity = reg.Gauge("recoord_activity",
			"Converged processor activity factor of the running phase.", labels...)
		c.stall = reg.Gauge("recoord_stall_frac",
			"Fraction of time the running phase stalls on memory.", labels...)
		c.recoords = reg.Counter("recoord_recoordinations_total",
			"Phase shifts detected and re-coordinated.", labels...)
		c.switches = reg.Counter("recoord_switches_total",
			"Re-coordinations that changed the operating point.", labels...)
	}
	return nil
}

// evalPhase evaluates setting s on phase i and returns the simulated
// steady state.
func (c *controller) evalPhase(i int, s Setting) (perf, activity, stallFrac float64, err error) {
	res, err := c.bounds[i].Evaluate(evalpool.Request{
		Op: evalpool.OpGPUMemPower, Proc: s.Proc, Mem: s.Mem})
	if err != nil {
		return 0, 0, 0, err
	}
	activity = res.ComputeUtil
	if len(res.Phases) == 1 {
		activity = res.Phases[0].Activity
	}
	return res.Perf, activity, res.StallFrac, nil
}

// recoordinate picks the best candidate for phase i by measurement and
// returns the winner — the current setting unless a candidate beats it
// by the switch margin. Ties inside the margin keep the incumbent, and
// equal-perf candidates resolve by slate order, so the choice is
// deterministic.
func (c *controller) recoordinate(i int, current Setting) (Setting, bool, error) {
	c.recoords.Inc()
	curPerf, _, _, err := c.evalPhase(i, current)
	if err != nil {
		return Setting{}, false, err
	}
	best, bestPerf := current, curPerf
	for _, cand := range c.candidates {
		if cand == current {
			continue
		}
		perf, _, _, err := c.evalPhase(i, cand)
		if err != nil {
			return Setting{}, false, err
		}
		if perf > bestPerf {
			best, bestPerf = cand, perf
		}
	}
	if best != current && bestPerf >= curPerf*(1+c.cfg.SwitchMargin) {
		c.switches.Inc()
		return best, true, nil
	}
	return current, false, nil
}

// observe feeds the gauges from the running phase's steady state and
// reports whether the detector fired. The detector reads the values
// back from the gauges (registry-backed when one is attached): the
// controller reacts to the same series the operator scrapes.
func (c *controller) observe(activity, stallFrac float64) bool {
	c.activity.Set(activity)
	c.stall.Set(stallFrac)
	a, s := activity, stallFrac
	if c.activity != nil {
		a, s = c.activity.Value(), c.stall.Value()
	}
	if abs(a-c.refActivity) > c.cfg.ActivityDelta || abs(s-c.refStall) > c.cfg.StallDelta {
		c.outOfBand++
	} else {
		c.outOfBand = 0
	}
	if c.outOfBand >= c.cfg.DetectSamples {
		c.outOfBand = 0
		return true
	}
	return false
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// trace lays out one round of the virtual-time schedule: each phase
// gets ticks proportional to its wall-time share under the static
// setting (what an operator can estimate offline), with at least
// DetectSamples+1 ticks so every phase is detectable at all.
func (c *controller) trace() ([]int, error) {
	w := c.cfg.Workload
	shares := make([]float64, len(w.Phases))
	var total float64
	for i, ph := range w.Phases {
		perf, _, _, err := c.evalPhase(i, c.static)
		if err != nil {
			return nil, err
		}
		if perf <= 0 {
			return nil, fmt.Errorf("recoord: phase %q produced no throughput under the static setting", ph.Name)
		}
		shares[i] = ph.Weight / perf
		total += shares[i]
	}
	ticks := make([]int, len(shares))
	minTicks := c.cfg.DetectSamples + 1
	for i, s := range shares {
		ticks[i] = int(float64(c.cfg.TicksPerRound) * s / total)
		if ticks[i] < minTicks {
			ticks[i] = minTicks
		}
	}
	return ticks, nil
}

// run drives the trace.
func (c *controller) run() (Result, error) {
	cfg := &c.cfg
	w := cfg.Workload
	res := Result{
		Platform: cfg.Platform.Name, Workload: w.Name,
		Budget: cfg.Budget, PerfUnit: w.PerfUnit,
		StaticSetting: c.static,
	}
	governor := func(i int) (float64, error) {
		r, err := c.bounds[i].Evaluate(evalpool.Request{
			Op: evalpool.OpGPUClock, Proc: c.cap, Clock: c.gpu.Mem.ClockNom})
		if err != nil {
			return 0, err
		}
		return r.Perf, nil
	}

	ticks, err := c.trace()
	if err != nil {
		return Result{}, err
	}

	current := c.static
	// The opening reference: the first phase's steady state under the
	// static setting. The controller has just coordinated (statically),
	// so the detector arms against what it is about to see.
	_, a0, s0, err := c.evalPhase(0, current)
	if err != nil {
		return Result{}, err
	}
	c.refActivity, c.refStall = a0, s0

	var onlineTime, staticTime, governorTime float64 // Σ perf·ticks
	var totalTicks int
	for round := 0; round < cfg.Rounds; round++ {
		for i := range w.Phases {
			visit := PhaseVisit{Phase: w.Phases[i].Name, Ticks: ticks[i], Setting: current}
			staticPerf, _, _, err := c.evalPhase(i, c.static)
			if err != nil {
				return Result{}, err
			}
			govPerf, err := governor(i)
			if err != nil {
				return Result{}, err
			}
			visit.StaticPerf, visit.GovernorPerf = staticPerf, govPerf

			var visitPerfTime float64
			for tick := 0; tick < ticks[i]; tick++ {
				perf, act, stall, err := c.evalPhase(i, current)
				if err != nil {
					return Result{}, err
				}
				if c.observe(act, stall) {
					next, switched, err := c.recoordinate(i, current)
					if err != nil {
						return Result{}, err
					}
					visit.Recoordinated = true
					visit.LagTicks = tick + 1
					res.Recoordinations++
					if switched {
						res.Switches++
						current = next
						perf, act, stall, err = c.evalPhase(i, current)
						if err != nil {
							return Result{}, err
						}
					}
					// Re-arm the detector on the post-coordination
					// steady state, switched or not: the shift has been
					// adjudicated.
					c.refActivity, c.refStall = act, stall
				}
				visitPerfTime += perf
			}
			visit.Setting = current
			visit.OnlinePerf = visitPerfTime / float64(ticks[i])
			res.Visits = append(res.Visits, visit)

			onlineTime += visitPerfTime
			staticTime += staticPerf * float64(ticks[i])
			governorTime += govPerf * float64(ticks[i])
			totalTicks += ticks[i]
		}
	}
	res.OnlinePerf = onlineTime / float64(totalTicks)
	res.StaticPerf = staticTime / float64(totalTicks)
	res.GovernorPerf = governorTime / float64(totalTicks)
	return res, nil
}
