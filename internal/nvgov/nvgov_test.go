package nvgov

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/hw"
	"repro/internal/units"
)

func newXP() *Governor {
	p := hw.TitanXP()
	return New(p.GPU)
}

func newTV() *Governor {
	p := hw.TitanV()
	return New(p.GPU)
}

func TestDefaultsMatchDriver(t *testing.T) {
	g := newXP()
	s := g.Settings()
	if s.PowerCap != g.GPU().TDP {
		t.Errorf("default cap = %v, want TDP %v", s.PowerCap, g.GPU().TDP)
	}
	if s.SMOffset != 0 || s.MemOffset != 0 {
		t.Error("default offsets should be zero")
	}
	// Default policy: memory at nominal clock.
	if g.MemClock() != g.GPU().Mem.ClockNom {
		t.Errorf("default mem clock = %v", g.MemClock())
	}
}

func TestSetPowerCapRange(t *testing.T) {
	g := newXP()
	if err := g.SetPowerCap(300); err != nil {
		t.Errorf("300 W should be settable: %v", err)
	}
	if err := g.SetPowerCap(125); err != nil {
		t.Errorf("125 W should be settable: %v", err)
	}
	if err := g.SetPowerCap(100); err == nil {
		t.Error("below MinCap should be rejected (hardware excludes low caps)")
	}
	if err := g.SetPowerCap(350); err == nil {
		t.Error("above MaxCap should be rejected")
	}
}

func TestMemClockOffsets(t *testing.T) {
	g := newXP()
	mem := &g.GPU().Mem
	g.SetMemOffset(-1000 * units.Megahertz)
	want := mem.ClockNom - 1000*units.Megahertz
	if got := g.MemClock(); got != want {
		t.Errorf("mem clock = %v, want %v", got, want)
	}
	// Clamped at the range ends.
	g.SetMemOffset(-100 * units.Gigahertz)
	if got := g.MemClock(); got != mem.ClockMin {
		t.Errorf("clamped low = %v, want %v", got, mem.ClockMin)
	}
	g.SetMemOffset(100 * units.Gigahertz)
	if got := g.MemClock(); got != mem.ClockMax {
		t.Errorf("clamped high = %v, want %v", got, mem.ClockMax)
	}
	// SetMemClock round-trips.
	g.SetMemClock(4500 * units.Megahertz)
	if got := g.MemClock(); got != 4500*units.Megahertz {
		t.Errorf("SetMemClock = %v", got)
	}
}

func TestActuateRespectsCap(t *testing.T) {
	g := newXP()
	f := func(capRaw, actRaw, memRaw float64) bool {
		gpu := g.GPU()
		cap := units.Power(units.Lerp(gpu.MinCap.Watts(), gpu.MaxCap.Watts(),
			math.Abs(math.Mod(capRaw, 1))))
		act := 0.2 + 0.8*math.Abs(math.Mod(actRaw, 1))
		memClk := units.Frequency(units.Lerp(gpu.Mem.ClockMin.Hz(), gpu.Mem.ClockMax.Hz(),
			math.Abs(math.Mod(memRaw, 1))))
		if err := g.SetPowerCap(cap); err != nil {
			return false
		}
		g.SetMemClock(memClk)
		s := g.Actuate(act)
		if s.AtFloor {
			return true // cap not enforceable; flagged
		}
		return g.BoardPower(s, act) <= cap+0.01
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestActuateReclaimsMemoryHeadroom(t *testing.T) {
	// With a tight cap, lowering the memory clock must raise the SM clock:
	// the governor automatically shifts the freed power to the SMs.
	g := newXP()
	if err := g.SetPowerCap(160); err != nil {
		t.Fatal(err)
	}
	act := 1.0
	g.SetMemClock(g.GPU().Mem.ClockNom)
	nomState := g.Actuate(act)
	g.SetMemClock(g.GPU().Mem.ClockMin)
	lowState := g.Actuate(act)
	if lowState.SMClock <= nomState.SMClock {
		t.Errorf("SM clock did not rise when memory power freed: %v -> %v",
			nomState.SMClock, lowState.SMClock)
	}
}

func TestActuateUnlimitedAtHighCap(t *testing.T) {
	// MiniFE-like low activity at a 300 W cap: the card runs at full
	// clocks, unconstrained.
	g := newXP()
	if err := g.SetPowerCap(300); err != nil {
		t.Fatal(err)
	}
	s := g.Actuate(0.36)
	if s.PowerLimited {
		t.Errorf("low-activity app should be unconstrained at 300 W: %+v", s)
	}
	if s.SMClock != g.GPU().SMClockNom {
		t.Errorf("SM clock = %v, want nominal", s.SMClock)
	}
}

func TestActuatePowerLimitedAtTightCap(t *testing.T) {
	// SGEMM-like full activity demands >300 W, so even the max cap
	// throttles the SM clock.
	g := newXP()
	if err := g.SetPowerCap(300); err != nil {
		t.Fatal(err)
	}
	s := g.Actuate(1.0)
	if !s.PowerLimited {
		t.Error("full-activity app should be power limited even at 300 W")
	}
	if s.SMClock >= g.GPU().SMClockNom {
		t.Error("SM clock should be below nominal")
	}
}

func TestActuateMonotoneInCap(t *testing.T) {
	g := newXP()
	prev := units.Frequency(0)
	for cap := g.GPU().MinCap; cap <= g.GPU().MaxCap; cap += 5 {
		if err := g.SetPowerCap(cap); err != nil {
			t.Fatal(err)
		}
		s := g.Actuate(1.0)
		if s.SMClock < prev {
			t.Fatalf("SM clock not monotone in cap at %v", cap)
		}
		prev = s.SMClock
	}
}

func TestSMOffsetLimitsClock(t *testing.T) {
	g := newXP()
	if err := g.SetPowerCap(300); err != nil {
		t.Fatal(err)
	}
	g.SetSMOffset(-400 * units.Megahertz)
	s := g.Actuate(0.3)
	want := g.GPU().SMClockNom - 400*units.Megahertz
	if s.SMClock > want {
		t.Errorf("SM clock %v exceeds offset-adjusted max %v", s.SMClock, want)
	}
}

func TestEstimatedMemPowerTracksClock(t *testing.T) {
	g := newXP()
	mem := &g.GPU().Mem
	g.SetMemClock(mem.ClockMin)
	if got := g.EstimatedMemPower(); got != mem.PowerMin {
		t.Errorf("min clock power = %v, want %v", got, mem.PowerMin)
	}
	g.SetMemClock(mem.ClockMax)
	if got := g.EstimatedMemPower(); got != mem.PowerMax {
		t.Errorf("max clock power = %v, want %v", got, mem.PowerMax)
	}
}

func TestTitanVSmallerMemRange(t *testing.T) {
	xp, tv := newXP(), newTV()
	xpRange := xp.GPU().Mem.PowerMax - xp.GPU().Mem.PowerMin
	tvRange := tv.GPU().Mem.PowerMax - tv.GPU().Mem.PowerMin
	if tvRange >= xpRange {
		t.Errorf("Titan V HBM2 power range %v should be below Titan XP %v", tvRange, xpRange)
	}
}

func TestTitanVLowDemandUnconstrained(t *testing.T) {
	// MiniFE on Titan V: demand sits below even small caps, so the
	// performance bound does not change across the studied cap range.
	tv := newTV()
	var clocks []units.Frequency
	for _, cap := range []units.Power{120, 150, 200, 250} {
		if err := tv.SetPowerCap(cap); err != nil {
			t.Fatal(err)
		}
		s := tv.Actuate(0.3)
		clocks = append(clocks, s.SMClock)
	}
	for i := 1; i < len(clocks); i++ {
		if clocks[i] != clocks[0] {
			t.Errorf("Titan V low-activity SM clock varies with cap: %v", clocks)
		}
	}
}
