package nvgov

import (
	"errors"
	"math"
	"testing"

	"repro/internal/hw"
	"repro/internal/units"
)

// TestRegressCapBelowFloorTypedRejection is the satellite-1 regression:
// a requested power cap below the card's settable floor must surface a
// typed rejection (errors.Is ErrCapOutOfRange, errors.As
// *CapRangeError), not a silent clamp. On H100-class cards the floor is
// 200 W, so budgets coordination can legitimately produce are
// unenforceable and the caller has to find out.
func TestRegressCapBelowFloorTypedRejection(t *testing.T) {
	for _, p := range []hw.Platform{hw.H100(), hw.H200(), hw.TitanXP(), hw.TitanV()} {
		gpu := p.GPU
		g := New(gpu)
		req := gpu.MinCap / 2
		err := g.SetPowerCap(req)
		if err == nil {
			t.Fatalf("%s: SetPowerCap(%v) below floor %v accepted", p.Name, req, gpu.MinCap)
		}
		if !errors.Is(err, ErrCapOutOfRange) {
			t.Fatalf("%s: error %v does not match ErrCapOutOfRange", p.Name, err)
		}
		var cre *CapRangeError
		if !errors.As(err, &cre) {
			t.Fatalf("%s: error %T is not a *CapRangeError", p.Name, err)
		}
		if cre.Cap != req || cre.Min != gpu.MinCap || cre.Max != gpu.MaxCap {
			t.Fatalf("%s: CapRangeError fields = %+v, want cap %v range [%v, %v]",
				p.Name, cre, req, gpu.MinCap, gpu.MaxCap)
		}
		if got := g.Settings().PowerCap; got != gpu.TDP {
			t.Fatalf("%s: rejected cap mutated settings: PowerCap = %v, want untouched default %v",
				p.Name, got, gpu.TDP)
		}
	}
}

// ulpBelow / ulpAbove step a power value by exactly one float64 ulp.
func ulpBelow(p units.Power) units.Power {
	return units.Power(math.Nextafter(float64(p), math.Inf(-1)))
}

func ulpAbove(p units.Power) units.Power {
	return units.Power(math.Nextafter(float64(p), math.Inf(1)))
}

// TestRegressCapRangeEdgesOneUlp probes both edges of the settable
// range at ±1 ulp on every GPU platform: the exact edges and the
// interior-adjacent values must be accepted, the first representable
// value outside each edge must be rejected with the typed error.
func TestRegressCapRangeEdgesOneUlp(t *testing.T) {
	for _, p := range hw.AllPlatforms() {
		if p.Kind != hw.KindGPU {
			continue
		}
		gpu := p.GPU
		cases := []struct {
			name string
			cap  units.Power
			ok   bool
		}{
			{"min", gpu.MinCap, true},
			{"min+1ulp", ulpAbove(gpu.MinCap), true},
			{"min-1ulp", ulpBelow(gpu.MinCap), false},
			{"max", gpu.MaxCap, true},
			{"max-1ulp", ulpBelow(gpu.MaxCap), true},
			{"max+1ulp", ulpAbove(gpu.MaxCap), false},
		}
		for _, tc := range cases {
			g := New(gpu)
			err := g.SetPowerCap(tc.cap)
			if tc.ok && err != nil {
				t.Errorf("%s/%s: SetPowerCap(%v) = %v, want accept", p.Name, tc.name, tc.cap, err)
			}
			if !tc.ok {
				if err == nil {
					t.Errorf("%s/%s: SetPowerCap(%v) accepted, want typed rejection", p.Name, tc.name, tc.cap)
				} else if !errors.Is(err, ErrCapOutOfRange) {
					t.Errorf("%s/%s: error %v does not match ErrCapOutOfRange", p.Name, tc.name, err)
				}
			}
			if cerr := CheckCap(gpu, tc.cap); (cerr == nil) != tc.ok {
				t.Errorf("%s/%s: CheckCap disagrees with SetPowerCap: %v", p.Name, tc.name, cerr)
			}
		}
	}
}
