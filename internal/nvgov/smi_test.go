package nvgov

import (
	"strings"
	"testing"
)

func TestQueryReflectsGovernorState(t *testing.T) {
	g := newXP()
	gpu := g.GPU()
	// Unconstrained, low activity: P0, no throttle, draw below cap.
	q := g.Query(0.3)
	if q.Name != gpu.Name {
		t.Errorf("name = %q", q.Name)
	}
	if q.PerfState != "P0" || q.Throttled {
		t.Errorf("unconstrained query = %+v", q)
	}
	if q.PowerDraw > q.PowerLimit {
		t.Errorf("draw %v over limit %v", q.PowerDraw, q.PowerLimit)
	}
	if q.PowerLimit != gpu.TDP || q.DefaultPowerLimit != gpu.TDP {
		t.Errorf("limits = %+v", q)
	}
	// Tight cap at full activity: throttled, lower P-state, draw ~ cap.
	if err := g.SetPowerCap(gpu.MinCap); err != nil {
		t.Fatal(err)
	}
	q = g.Query(1.0)
	if !q.Throttled {
		t.Error("tight cap should throttle")
	}
	if q.PerfState == "P0" {
		t.Errorf("tight cap perf state = %s", q.PerfState)
	}
	if q.SMClock >= gpu.SMClockNom {
		t.Error("SM clock should be below nominal")
	}
}

func TestQueryString(t *testing.T) {
	g := newTV()
	out := g.Query(0.5).String()
	for _, want := range []string{
		"Product Name", "Titan V", "Performance State", "Power Draw",
		"SM Clock", "Memory Clock", "SW Power Cap",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("query output missing %q:\n%s", want, out)
		}
	}
}

func TestQueryPerfStateLadder(t *testing.T) {
	// Sweep activity at a tight cap: performance states descend as the
	// governor pushes the clock down.
	g := newXP()
	if err := g.SetPowerCap(g.GPU().MinCap); err != nil {
		t.Fatal(err)
	}
	rank := map[string]int{"P0": 0, "P2": 1, "P5": 2, "P8": 3}
	prev := -1
	for _, act := range []float64{0.2, 0.5, 0.8, 1.0} {
		q := g.Query(act)
		r, ok := rank[q.PerfState]
		if !ok {
			t.Fatalf("unknown perf state %q", q.PerfState)
		}
		if r < prev {
			t.Errorf("perf state went up with activity: %s at %v", q.PerfState, act)
		}
		prev = r
	}
}
