// Package nvgov emulates the Nvidia driver's power-management surface as
// the paper uses it: a board power cap programmed through nvidia-smi
// (clamped to the card's settable range) and SM/memory clock offsets
// programmed through nvidia-settings.
//
// The governor implements the behaviour the paper observes in Section 4:
// the board cap is enforced by DVFS-throttling the SM clock, so a power
// budget left unused by the memory (e.g. when the memory clock is lowered)
// is automatically reclaimed by the SMs — unlike host RAPL, where each
// domain's unused budget is simply wasted. The default driver policy runs
// the memory at its nominal clock regardless of cap or application, which
// is exactly the obliviousness COORD exploits (paper Section 6.3).
package nvgov

import (
	"errors"
	"fmt"

	"repro/internal/hw"
	"repro/internal/units"
)

// ErrCapOutOfRange is the sentinel for power caps outside the card's
// settable range. Match with errors.Is; the concrete error is a
// *CapRangeError carrying the offending cap and the valid range.
var ErrCapOutOfRange = errors.New("power cap outside settable range")

// CapRangeError reports a requested board power cap that the card
// cannot enforce. On Titan-era hardware the floor sits well below any
// budget coordination produces, but H100-class cards refuse caps below
// 200 W, so small coordination budgets must surface this rejection
// instead of being silently clamped to a cap the budget cannot fund.
type CapRangeError struct {
	// Cap is the rejected power limit.
	Cap units.Power
	// Min and Max bound the card's settable range.
	Min, Max units.Power
}

// Error formats the rejection like the nvidia-smi diagnostic.
func (e *CapRangeError) Error() string {
	return fmt.Sprintf("nvgov: power cap %v outside settable range [%v, %v]",
		e.Cap, e.Min, e.Max)
}

// Unwrap makes errors.Is(err, ErrCapOutOfRange) work.
func (e *CapRangeError) Unwrap() error { return ErrCapOutOfRange }

// CheckCap reports whether the card can enforce cap, returning a
// *CapRangeError (wrapping ErrCapOutOfRange) if not. Callers that plan
// caps without instantiating a governor use this for early rejection.
func CheckCap(gpu *hw.GPUSpec, cap units.Power) error {
	if cap < gpu.MinCap || cap > gpu.MaxCap {
		return &CapRangeError{Cap: cap, Min: gpu.MinCap, Max: gpu.MaxCap}
	}
	return nil
}

// Settings mirrors the user-visible controls: the nvidia-smi power cap
// and the nvidia-settings clock offsets.
type Settings struct {
	// PowerCap is the board power limit.
	PowerCap units.Power
	// SMOffset shifts the maximum SM boost clock relative to nominal
	// (negative slows the card down).
	SMOffset units.Frequency
	// MemOffset shifts the memory clock relative to nominal.
	MemOffset units.Frequency
}

// State is the operating state the governor selected.
type State struct {
	// SMClock and MemClock are the running clocks.
	SMClock, MemClock units.Frequency
	// PowerLimited reports whether the SM clock was lowered below its
	// offset-adjusted maximum to honor the board cap.
	PowerLimited bool
	// AtFloor reports whether even the lowest SM clock exceeds the cap
	// (the hardware disallows caps low enough for this to persist, but
	// the flag is reported for completeness).
	AtFloor bool
}

// Governor emulates the board power-management firmware for one card.
type Governor struct {
	gpu      *hw.GPUSpec
	settings Settings
}

// New returns a governor for the card with default settings: TDP cap,
// zero offsets (memory at nominal clock — the default driver policy).
func New(gpu *hw.GPUSpec) *Governor {
	return &Governor{gpu: gpu, settings: Settings{PowerCap: gpu.TDP}}
}

// GPU returns the card spec the governor manages.
func (g *Governor) GPU() *hw.GPUSpec { return g.gpu }

// Settings returns the current control settings.
func (g *Governor) Settings() Settings { return g.settings }

// SetPowerCap programs the board power limit. Like nvidia-smi, values
// outside the card's settable range are rejected — with a typed
// *CapRangeError (errors.Is-matchable against ErrCapOutOfRange) so
// coordination layers can distinguish an unenforceable cap from other
// actuation failures rather than silently clamping.
func (g *Governor) SetPowerCap(cap units.Power) error {
	if err := CheckCap(g.gpu, cap); err != nil {
		return err
	}
	g.settings.PowerCap = cap
	return nil
}

// SetMemOffset programs the memory clock offset. The resulting clock is
// clamped to the card's settable range, as the driver does.
func (g *Governor) SetMemOffset(off units.Frequency) {
	g.settings.MemOffset = off
}

// SetSMOffset programs the SM boost clock offset.
func (g *Governor) SetSMOffset(off units.Frequency) {
	g.settings.SMOffset = off
}

// SetMemClock programs the offset so the memory runs at the requested
// clock (clamped to the settable range) — a convenience wrapper COORD
// uses to target a memory power budget.
func (g *Governor) SetMemClock(f units.Frequency) {
	f = f.Clamp(g.gpu.Mem.ClockMin, g.gpu.Mem.ClockMax)
	g.settings.MemOffset = f - g.gpu.Mem.ClockNom
}

// MemClock returns the memory clock the current offset selects.
func (g *Governor) MemClock() units.Frequency {
	return (g.gpu.Mem.ClockNom + g.settings.MemOffset).
		Clamp(g.gpu.Mem.ClockMin, g.gpu.Mem.ClockMax)
}

// smMaxClock returns the highest SM clock the offset allows.
func (g *Governor) smMaxClock() units.Frequency {
	return (g.gpu.SMClockNom + g.settings.SMOffset).
		Clamp(g.gpu.SMClockMin, g.gpu.SMClockNom)
}

// Actuate selects the running clocks for the current settings and the
// workload's SM activity factor: the memory runs at its offset-selected
// clock; the SMs run at the highest DVFS bin, at or below the
// offset-adjusted maximum, whose board power fits under the cap. Because
// the cap constrains the board total, lowering the memory clock frees
// power that the SMs reclaim — the automatic cross-component shifting the
// paper highlights as unique to GPUs.
func (g *Governor) Actuate(act float64) State {
	mem := g.MemClock()
	maxSM := g.smMaxClock()
	cap := g.settings.PowerCap

	clocks := g.gpu.SMClocks()
	for i := len(clocks) - 1; i >= 0; i-- {
		f := clocks[i]
		if f > maxSM {
			continue
		}
		if g.gpu.BoardPower(f, mem, act) <= cap {
			limited := f < maxSM
			return State{SMClock: f, MemClock: mem, PowerLimited: limited}
		}
	}
	return State{SMClock: g.gpu.SMClockMin, MemClock: mem, PowerLimited: true, AtFloor: true}
}

// BoardPower returns the board power in state s at SM activity act.
func (g *Governor) BoardPower(s State, act float64) units.Power {
	return g.gpu.BoardPower(s.SMClock, s.MemClock, act)
}

// EstimatedMemPower returns the empirical-model memory power for the
// currently selected memory clock — the estimate the paper's Figure 7
// x-axis uses.
func (g *Governor) EstimatedMemPower() units.Power {
	return g.gpu.Mem.Power(g.MemClock())
}
