package nvgov

import (
	"fmt"
	"strings"

	"repro/internal/units"
)

// DeviceQuery mirrors the fields `nvidia-smi -q` reports for one card —
// the monitoring surface operators script against. It is produced from a
// governor plus the current workload activity, so tools built on it see
// the same numbers the simulator uses internally.
type DeviceQuery struct {
	// Name is the card model.
	Name string
	// PowerDraw is the current board power.
	PowerDraw units.Power
	// PowerLimit is the programmed board cap; Min/Max/DefaultPowerLimit
	// are the card constants.
	PowerLimit, MinPowerLimit, MaxPowerLimit, DefaultPowerLimit units.Power
	// SMClock and MemClock are the running clocks.
	SMClock, MemClock units.Frequency
	// MaxSMClock and MaxMemClock are the nominal (unconstrained) clocks.
	MaxSMClock, MaxMemClock units.Frequency
	// PerfState approximates the P-state nvidia-smi reports: P0 at full
	// clocks down to P8 near the bottom of the DVFS range.
	PerfState string
	// Throttled reports whether the power cap is limiting the SM clock
	// ("SW Power Cap" active).
	Throttled bool
}

// Query snapshots the device state at the given SM activity factor.
func (g *Governor) Query(act float64) DeviceQuery {
	state := g.Actuate(act)
	gpu := g.gpu
	q := DeviceQuery{
		Name:              gpu.Name,
		PowerDraw:         g.BoardPower(state, act),
		PowerLimit:        g.settings.PowerCap,
		MinPowerLimit:     gpu.MinCap,
		MaxPowerLimit:     gpu.MaxCap,
		DefaultPowerLimit: gpu.TDP,
		SMClock:           state.SMClock,
		MemClock:          state.MemClock,
		MaxSMClock:        gpu.SMClockNom,
		MaxMemClock:       gpu.Mem.ClockMax,
		Throttled:         state.PowerLimited,
	}
	// P-state estimate: P0 at >=95% of nominal, stepping to P8 at the
	// bottom of the range.
	frac := (state.SMClock.Hz() - gpu.SMClockMin.Hz()) /
		(gpu.SMClockNom.Hz() - gpu.SMClockMin.Hz())
	switch {
	case frac >= 0.95:
		q.PerfState = "P0"
	case frac >= 0.7:
		q.PerfState = "P2"
	case frac >= 0.4:
		q.PerfState = "P5"
	default:
		q.PerfState = "P8"
	}
	return q
}

// String renders the query in an nvidia-smi-like block.
func (q DeviceQuery) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Product Name          : %s\n", q.Name)
	fmt.Fprintf(&b, "Performance State     : %s\n", q.PerfState)
	fmt.Fprintf(&b, "Power Draw            : %s\n", q.PowerDraw)
	fmt.Fprintf(&b, "Power Limit           : %s\n", q.PowerLimit)
	fmt.Fprintf(&b, "Default Power Limit   : %s\n", q.DefaultPowerLimit)
	fmt.Fprintf(&b, "Min/Max Power Limit   : %s / %s\n", q.MinPowerLimit, q.MaxPowerLimit)
	fmt.Fprintf(&b, "SM Clock              : %s (max %s)\n", q.SMClock, q.MaxSMClock)
	fmt.Fprintf(&b, "Memory Clock          : %s (max %s)\n", q.MemClock, q.MaxMemClock)
	fmt.Fprintf(&b, "SW Power Cap Active   : %v\n", q.Throttled)
	return b.String()
}
