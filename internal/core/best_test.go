package core

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/units"
)

func eval(proc, mem units.Power, perf float64, actual units.Power) Evaluation {
	return Evaluation{
		Alloc:  Allocation{Proc: proc, Mem: mem},
		Result: sim.Result{Perf: perf, TotalPower: actual},
	}
}

// TestBestTieBreak pins the selection rule: among bound-respecting
// evaluations with equal performance, the one with lower actual power
// wins, regardless of input order.
func TestBestTieBreak(t *testing.T) {
	hungry := eval(120, 88, 50, 200)
	frugal := eval(100, 108, 50, 180)
	worse := eval(140, 68, 40, 150)

	for name, evals := range map[string][]Evaluation{
		"frugal-first": {frugal, hungry, worse},
		"frugal-last":  {worse, hungry, frugal},
		"frugal-mid":   {hungry, frugal, worse},
	} {
		got, ok := Best(evals)
		if !ok {
			t.Fatalf("%s: Best found nothing", name)
		}
		if got.Result.TotalPower != frugal.Result.TotalPower {
			t.Errorf("%s: tie broke to actual power %v, want %v (lower wins)",
				name, got.Result.TotalPower, frugal.Result.TotalPower)
		}
	}

	// BestBy under the default objective applies the same rule.
	got, ok := BestBy([]Evaluation{hungry, frugal}, ObjectivePerf)
	if !ok || got.Result.TotalPower != frugal.Result.TotalPower {
		t.Errorf("BestBy tie broke to %v, want %v", got.Result.TotalPower, frugal.Result.TotalPower)
	}
}

// TestBestSkipsBoundViolations: an allocation whose actual draw exceeds
// its total (beyond the slack tolerance) cannot win even with the
// highest performance — the paper's scenario V/VI allocations are not
// respected by the hardware and are not valid optima.
func TestBestSkipsBoundViolations(t *testing.T) {
	violator := eval(60, 40, 90, 120) // draws 120 W against a 100 W allocation
	honest := eval(120, 88, 70, 190)
	got, ok := Best([]Evaluation{violator, honest})
	if !ok {
		t.Fatal("Best found nothing")
	}
	if got.Result.Perf != honest.Result.Perf {
		t.Errorf("bound violator won with perf %v; want honest point (perf %v)",
			got.Result.Perf, honest.Result.Perf)
	}
}

// TestBestAllViolatingFallback: when every point overdraws, Best still
// returns the highest-performing one rather than nothing.
func TestBestAllViolatingFallback(t *testing.T) {
	a := eval(60, 40, 55, 130)
	b := eval(50, 50, 65, 140)
	got, ok := Best([]Evaluation{a, b})
	if !ok {
		t.Fatal("Best returned nothing on an all-violating set")
	}
	if got.Result.Perf != b.Result.Perf {
		t.Errorf("fallback picked perf %v, want %v (highest perf)", got.Result.Perf, b.Result.Perf)
	}
}

// TestViolatesBoundSlack pins the quantization tolerance: exactly
// boundSlack over the allocation is still respected; beyond it is not.
func TestViolatesBoundSlack(t *testing.T) {
	at := eval(100, 100, 10, 200+boundSlack)
	if violatesBound(at) {
		t.Error("draw exactly at total+slack flagged as violation")
	}
	over := eval(100, 100, 10, 200+boundSlack+0.5)
	if !violatesBound(over) {
		t.Error("draw beyond total+slack not flagged")
	}
}

func TestBestEmpty(t *testing.T) {
	if _, ok := Best(nil); ok {
		t.Error("Best reported success on an empty set")
	}
	if _, ok := BestBy(nil, ObjectivePerf); ok {
		t.Error("BestBy reported success on an empty set")
	}
}
