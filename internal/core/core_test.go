package core

import (
	"math"
	"testing"

	"repro/internal/hw"
	"repro/internal/sim"
	"repro/internal/units"
	"repro/internal/workload"
)

func problem(t *testing.T, platform, wl string, budget units.Power) Problem {
	t.Helper()
	p, err := hw.PlatformByName(platform)
	if err != nil {
		t.Fatal(err)
	}
	w, err := workload.ByName(wl)
	if err != nil {
		t.Fatal(err)
	}
	return NewProblem(p, w, budget)
}

func TestAllocationBasics(t *testing.T) {
	a := Allocation{Proc: 120, Mem: 88}
	if a.Total() != 208 {
		t.Errorf("total = %v", a.Total())
	}
	if a.String() != "(proc 120.0 W, mem 88.0 W)" {
		t.Errorf("string = %q", a.String())
	}
}

func TestSweepCPURespectsBudget(t *testing.T) {
	pb := problem(t, "ivybridge", "sra", 240)
	evals, err := pb.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(evals) < 20 {
		t.Fatalf("sweep too coarse: %d points", len(evals))
	}
	for _, e := range evals {
		if e.Alloc.Total() > 240+0.001 {
			t.Errorf("allocation %v exceeds budget", e.Alloc)
		}
		// Actual power stays under budget except in the cap-not-respected
		// floor scenarios, which the simulator flags.
		if !e.Result.AtFloor && e.Result.TotalPower.Watts() > 240+1 {
			t.Errorf("actual power %v exceeds budget at %v", e.Result.TotalPower, e.Alloc)
		}
	}
}

func TestSweepCPUInfeasibleBudget(t *testing.T) {
	pb := problem(t, "ivybridge", "sra", 60)
	if _, err := pb.Sweep(); err == nil {
		t.Error("60 W budget should be infeasible for the sweep")
	}
}

func TestSweepGPURangeChecks(t *testing.T) {
	pb := problem(t, "titanxp", "sgemm", 90)
	if _, err := pb.Sweep(); err == nil {
		t.Error("budget below MinCap should error")
	}
	pb.Budget = 400
	if _, err := pb.Sweep(); err == nil {
		t.Error("budget above MaxCap should error")
	}
	pb.Budget = 200
	evals, err := pb.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(evals) < 5 {
		t.Errorf("GPU sweep too coarse: %d", len(evals))
	}
}

func TestPerfMaxBeatsArbitraryAllocations(t *testing.T) {
	pb := problem(t, "ivybridge", "mg", 208)
	best, err := pb.PerfMax()
	if err != nil {
		t.Fatal(err)
	}
	for _, proc := range []units.Power{60, 80, 100, 140} {
		e, err := pb.Evaluate(Allocation{Proc: proc, Mem: 208 - proc})
		if err != nil {
			t.Fatal(err)
		}
		if e.Result.Perf > best.Result.Perf*1.0001 {
			t.Errorf("allocation %v beats PerfMax: %v > %v", e.Alloc, e.Result.Perf, best.Result.Perf)
		}
	}
}

func TestCurveMonotoneNonDecreasing(t *testing.T) {
	// The paper's central perf_max ~ P_b property: non-decreasing, then
	// flattening. Check monotonicity for DGEMM and SRA on IvyBridge.
	// Start above the hardware floor sum (~114 W): below it no allocation
	// can respect the bound, and the fallback path makes the curve
	// physically non-monotone there (as on real hardware).
	for _, wl := range []string{"dgemm", "sra"} {
		pb := problem(t, "ivybridge", wl, 0)
		pts, err := Curve(pb.Platform, pb.Workload, BudgetRange(130, 300, 18))
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(pts); i++ {
			if pts[i].PerfMax < pts[i-1].PerfMax*(1-0.01) {
				t.Errorf("%s: perf_max not monotone at %v: %v < %v",
					wl, pts[i].Budget, pts[i].PerfMax, pts[i-1].PerfMax)
			}
		}
		// Flattening: the last two points should be nearly equal (budget
		// beyond max demand).
		n := len(pts)
		if pts[n-1].PerfMax > pts[n-2].PerfMax*1.01 {
			t.Errorf("%s: curve still rising at 300 W", wl)
		}
	}
}

func TestCurveFlattensAtMaxDemand(t *testing.T) {
	pb := problem(t, "ivybridge", "sra", 0)
	demand, err := MaxDemand(pb.Platform, pb.Workload)
	if err != nil {
		t.Fatal(err)
	}
	// SRA demand anchors: ~109 W CPU, ~116 W DRAM (paper Figure 3).
	if demand.Proc.Watts() < 100 || demand.Proc.Watts() > 118 {
		t.Errorf("SRA CPU demand = %v", demand.Proc)
	}
	if demand.Mem.Watts() < 108 || demand.Mem.Watts() > 124 {
		t.Errorf("SRA DRAM demand = %v", demand.Mem)
	}
	// Budgets beyond demand+margin add nothing.
	pts, err := Curve(pb.Platform, pb.Workload,
		[]units.Power{demand.Total() + 12, demand.Total() + 60})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pts[1].PerfMax-pts[0].PerfMax) > 0.01*pts[0].PerfMax {
		t.Errorf("perf grows past max demand: %v vs %v", pts[0].PerfMax, pts[1].PerfMax)
	}
}

func TestKneeDetection(t *testing.T) {
	mk := func(vals ...float64) []CurvePoint {
		pts := make([]CurvePoint, len(vals))
		for i, v := range vals {
			pts[i] = CurvePoint{Budget: units.Power(100 + 10*i), PerfMax: v}
		}
		return pts
	}
	// Slope halves then collapses: knee where marginal return < 20% of
	// the initial slope.
	b, ok := Knee(mk(0, 100, 200, 290, 295, 296), 0.2)
	if !ok {
		t.Fatal("knee not found")
	}
	if b != 130 {
		t.Errorf("knee at %v, want 130 W", b)
	}
	// Never flattens: last budget returned.
	b, ok = Knee(mk(0, 100, 200, 300, 400), 0.2)
	if !ok || b != 140 {
		t.Errorf("non-flattening knee = %v ok=%v", b, ok)
	}
	// Too short.
	if _, ok := Knee(mk(1, 2), 0.2); ok {
		t.Error("two points should not yield a knee")
	}
	// Flat from the start.
	b, ok = Knee(mk(5, 5, 5, 5), 0.2)
	if !ok || b != 100 {
		t.Errorf("flat curve knee = %v ok=%v", b, ok)
	}
}

func TestSpreadMatchesPaperMotivation(t *testing.T) {
	// Figure 1a: ~30x spread for STREAM on the CPU at 208 W.
	pb := problem(t, "ivybridge", "stream", 208)
	evals, err := pb.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if s := Spread(evals); s < 10 || s > 80 {
		t.Errorf("CPU STREAM spread at 208 W = %.1fx, want order ~30x", s)
	}
	// Figure 1b: >30% best-over-worst on the GPU at 140 W.
	pb = problem(t, "titanxp", "gpustream", 140)
	evals, err = pb.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if s := Spread(evals); s < 1.25 {
		t.Errorf("GPU STREAM spread at 140 W = %.2fx, want >1.25x", s)
	}
}

func TestBestWorstEdgeCases(t *testing.T) {
	if _, ok := Best(nil); ok {
		t.Error("Best of empty should report false")
	}
	if _, ok := Worst(nil); ok {
		t.Error("Worst of empty should report false")
	}
	if s := Spread(nil); s != 1 {
		t.Errorf("Spread of empty = %v", s)
	}
	evals := []Evaluation{
		{Alloc: Allocation{Proc: 100, Mem: 100}, Result: sim.Result{Perf: 10, TotalPower: 180}},
		{Alloc: Allocation{Proc: 120, Mem: 80}, Result: sim.Result{Perf: 10, TotalPower: 150}},
		{Alloc: Allocation{Proc: 80, Mem: 120}, Result: sim.Result{Perf: 4, TotalPower: 160}},
	}
	best, _ := Best(evals)
	// Tie on perf broken toward lower power.
	if best.Result.TotalPower != 150 {
		t.Errorf("tie break picked %v", best.Result.TotalPower)
	}
	worst, _ := Worst(evals)
	if worst.Result.Perf != 4 {
		t.Errorf("worst = %v", worst.Result.Perf)
	}
	if s := Spread(evals); math.Abs(s-2.5) > 1e-9 {
		t.Errorf("spread = %v", s)
	}
	// Zero-perf worst yields infinite spread.
	evals = append(evals, Evaluation{Result: sim.Result{Perf: 0}})
	if !math.IsInf(Spread(evals), 1) {
		t.Error("zero worst should give +Inf spread")
	}
}

func TestPerfPerWatt(t *testing.T) {
	e := Evaluation{Result: sim.Result{Perf: 100, TotalPower: 200}}
	if got := e.PerfPerWatt(); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("perf/W = %v", got)
	}
	e = Evaluation{Result: sim.Result{Perf: 100, TotalPower: 0}}
	if e.PerfPerWatt() != 0 {
		t.Error("zero power should give zero efficiency")
	}
}

func TestBudgetRange(t *testing.T) {
	r := BudgetRange(100, 300, 5)
	want := []units.Power{100, 150, 200, 250, 300}
	if len(r) != 5 {
		t.Fatalf("len = %d", len(r))
	}
	for i := range want {
		if math.Abs((r[i] - want[i]).Watts()) > 1e-9 {
			t.Errorf("r[%d] = %v, want %v", i, r[i], want[i])
		}
	}
	if got := BudgetRange(100, 50, 5); len(got) != 1 || got[0] != 100 {
		t.Errorf("degenerate range = %v", got)
	}
}

func TestMaxDemandGPU(t *testing.T) {
	p, _ := hw.PlatformByName("titanxp")
	w, _ := workload.ByName("minife")
	d, err := MaxDemand(p, w)
	if err != nil {
		t.Fatal(err)
	}
	// MiniFE board demand flattens around the paper's ~180 W.
	if d.Total().Watts() < 160 || d.Total().Watts() > 205 {
		t.Errorf("MiniFE Titan XP demand = %v, want ~180 W", d.Total())
	}
}

func TestEvaluateErrorPropagation(t *testing.T) {
	p, _ := hw.PlatformByName("ivybridge")
	w, _ := workload.ByName("sgemm") // GPU workload on CPU platform
	pb := NewProblem(p, w, 208)
	if _, err := pb.Evaluate(Allocation{Proc: 100, Mem: 100}); err == nil {
		t.Error("mismatched workload kind should error")
	}
}

func TestEvaluateGPUAllocation(t *testing.T) {
	pb := problem(t, "titanxp", "minife", 200)
	ev, err := pb.Evaluate(Allocation{Proc: 150, Mem: 50})
	if err != nil {
		t.Fatal(err)
	}
	if ev.Result.Perf <= 0 {
		t.Error("GPU evaluation produced no performance")
	}
	// Unknown platform kind errors.
	bad := pb
	bad.Platform.Kind = hw.Kind(9)
	if _, err := bad.Evaluate(Allocation{Proc: 150, Mem: 50}); err == nil {
		t.Error("unknown kind accepted by Evaluate")
	}
	if _, err := bad.Sweep(); err == nil {
		t.Error("unknown kind accepted by Sweep")
	}
}

func TestProblemNormalizeDefaults(t *testing.T) {
	pb := problem(t, "ivybridge", "stream", 208)
	pb.Step, pb.ProcMin, pb.MemMin = 0, 0, 0
	evals, err := pb.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(evals) == 0 {
		t.Fatal("no evaluations with defaulted parameters")
	}
	// Default step is 4 W.
	if len(evals) > 1 {
		d := (evals[1].Alloc.Proc - evals[0].Alloc.Proc).Watts()
		if math.Abs(d-DefaultStep.Watts()) > 1e-9 {
			t.Errorf("default step = %v", d)
		}
	}
}

func TestPerfMaxInfeasible(t *testing.T) {
	pb := problem(t, "ivybridge", "stream", 50)
	if _, err := pb.PerfMax(); err == nil {
		t.Error("infeasible PerfMax accepted")
	}
}

func TestCurveSkipsInfeasibleBudgets(t *testing.T) {
	pb := problem(t, "ivybridge", "stream", 0)
	pts, err := Curve(pb.Platform, pb.Workload, []units.Power{40, 208})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 1 || pts[0].Budget != 208 {
		t.Errorf("curve points = %+v", pts)
	}
	// All infeasible -> error.
	if _, err := Curve(pb.Platform, pb.Workload, []units.Power{40, 50}); err == nil {
		t.Error("all-infeasible curve accepted")
	}
}

func TestMaxDemandUnknownKind(t *testing.T) {
	pb := problem(t, "ivybridge", "stream", 208)
	bad := pb.Platform
	bad.Kind = hw.Kind(9)
	if _, err := MaxDemand(bad, pb.Workload); err == nil {
		t.Error("unknown kind accepted by MaxDemand")
	}
}

func TestBestFallsBackWhenAllViolate(t *testing.T) {
	evals := []Evaluation{
		{Alloc: Allocation{Proc: 40, Mem: 40}, Result: sim.Result{Perf: 5, TotalPower: 120}},
		{Alloc: Allocation{Proc: 50, Mem: 30}, Result: sim.Result{Perf: 9, TotalPower: 130}},
	}
	best, ok := Best(evals)
	if !ok || best.Result.Perf != 9 {
		t.Errorf("fallback best = %+v", best)
	}
	effBest, ok := BestBy(evals, ObjectiveEfficiency)
	if !ok || effBest.Result.Perf != 9 {
		t.Errorf("fallback efficiency best = %+v", effBest)
	}
}

func TestSlopeDegenerate(t *testing.T) {
	a := CurvePoint{Budget: 100, PerfMax: 10}
	b := CurvePoint{Budget: 100, PerfMax: 20}
	if got := slope(a, b); got != 0 {
		t.Errorf("zero-width slope = %v", got)
	}
}
