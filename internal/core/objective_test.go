package core

import (
	"testing"

	"repro/internal/sim"
)

func TestObjectiveString(t *testing.T) {
	if ObjectivePerf.String() != "perf" || ObjectiveEfficiency.String() != "efficiency" {
		t.Error("objective names")
	}
	if Objective(9).String() == "" {
		t.Error("unknown objective should format")
	}
}

func TestBestByObjectives(t *testing.T) {
	evals := []Evaluation{
		{Alloc: Allocation{Proc: 150, Mem: 100}, Result: sim.Result{Perf: 100, TotalPower: 240}},
		{Alloc: Allocation{Proc: 100, Mem: 100}, Result: sim.Result{Perf: 90, TotalPower: 170}},
		{Alloc: Allocation{Proc: 60, Mem: 80}, Result: sim.Result{Perf: 40, TotalPower: 130}},
	}
	perfBest, ok := BestBy(evals, ObjectivePerf)
	if !ok || perfBest.Result.Perf != 100 {
		t.Errorf("perf best = %+v", perfBest)
	}
	effBest, ok := BestBy(evals, ObjectiveEfficiency)
	if !ok || effBest.Result.Perf != 90 {
		// 90/170 = 0.53 beats 100/240 = 0.42 and 40/130 = 0.31.
		t.Errorf("efficiency best = %+v", effBest)
	}
	if _, ok := BestBy(nil, ObjectivePerf); ok {
		t.Error("empty input accepted")
	}
	// Bound-violating entries are skipped unless all violate.
	bad := []Evaluation{
		{Alloc: Allocation{Proc: 50, Mem: 50}, Result: sim.Result{Perf: 500, TotalPower: 300}},
		{Alloc: Allocation{Proc: 100, Mem: 100}, Result: sim.Result{Perf: 10, TotalPower: 150}},
	}
	got, _ := BestBy(bad, ObjectivePerf)
	if got.Result.Perf != 10 {
		t.Errorf("violating entry selected: %+v", got)
	}
}

func TestSolveEfficiencyUsesLessPower(t *testing.T) {
	// The efficiency optimum of MG at a generous budget consumes less
	// power than the perf optimum while achieving better perf-per-watt —
	// the Section 3.1 "reclaim the excess" insight as an objective.
	pb := problem(t, "ivybridge", "mg", 280)
	perfBest, err := pb.Solve(ObjectivePerf)
	if err != nil {
		t.Fatal(err)
	}
	effBest, err := pb.Solve(ObjectiveEfficiency)
	if err != nil {
		t.Fatal(err)
	}
	if effBest.PerfPerWatt() < perfBest.PerfPerWatt() {
		t.Errorf("efficiency objective %.4f below perf objective %.4f per watt",
			effBest.PerfPerWatt(), perfBest.PerfPerWatt())
	}
	if effBest.Result.TotalPower >= perfBest.Result.TotalPower {
		t.Errorf("efficiency optimum draws %v, perf optimum %v — expected less",
			effBest.Result.TotalPower, perfBest.Result.TotalPower)
	}
	// And it keeps a large fraction of the achievable performance.
	if effBest.Result.Perf < 0.5*perfBest.Result.Perf {
		t.Errorf("efficiency optimum sacrifices too much: %.1f vs %.1f",
			effBest.Result.Perf, perfBest.Result.Perf)
	}
}

func TestSolveInfeasible(t *testing.T) {
	pb := problem(t, "ivybridge", "mg", 60)
	if _, err := pb.Solve(ObjectivePerf); err == nil {
		t.Error("infeasible budget accepted")
	}
}
