package core

import "fmt"

// Objective selects the perf metric the problem optimizes. The paper's
// problem statement (Section 2.2) leaves the metric open: "example
// measures include compute rate, performance-to-power ratio, and system
// throughput".
type Objective int

// Supported objectives.
const (
	// ObjectivePerf maximizes raw performance — the paper's default.
	ObjectivePerf Objective = iota
	// ObjectiveEfficiency maximizes performance per actually-consumed
	// watt; the optimum typically uses less than the full budget.
	ObjectiveEfficiency
)

// String names the objective.
func (o Objective) String() string {
	switch o {
	case ObjectivePerf:
		return "perf"
	case ObjectiveEfficiency:
		return "efficiency"
	default:
		return fmt.Sprintf("Objective(%d)", int(o))
	}
}

// score returns the evaluation's value under the objective.
func (o Objective) score(e Evaluation) float64 {
	switch o {
	case ObjectiveEfficiency:
		return e.PerfPerWatt()
	default:
		return e.Result.Perf
	}
}

// BestBy returns the bound-respecting evaluation with the highest score
// under the objective, with the same fallback semantics as Best.
func BestBy(evals []Evaluation, obj Objective) (Evaluation, bool) {
	if len(evals) == 0 {
		return Evaluation{}, false
	}
	best, found := Evaluation{}, false
	for _, e := range evals {
		if violatesBound(e) {
			continue
		}
		if !found || obj.score(e) > obj.score(best) ||
			(obj.score(e) == obj.score(best) && e.Result.TotalPower < best.Result.TotalPower) {
			best = e
			found = true
		}
	}
	if found {
		return best, true
	}
	best = evals[0]
	for _, e := range evals[1:] {
		if obj.score(e) > obj.score(best) {
			best = e
		}
	}
	return best, true
}

// Solve runs the sweep and picks the best allocation under the given
// objective. With ObjectiveEfficiency the returned evaluation's actual
// power typically sits well below the budget; the difference is power the
// caller can return upstream.
func (pb Problem) Solve(obj Objective) (Evaluation, error) {
	evals, err := pb.Sweep()
	if err != nil {
		return Evaluation{}, err
	}
	best, ok := BestBy(evals, obj)
	if !ok {
		return Evaluation{}, fmt.Errorf("core: empty allocation space for budget %v", pb.Budget)
	}
	return best, nil
}
