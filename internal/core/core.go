// Package core formalizes the paper's power-bounded computing problem at
// the node level (Section 2.2): given a workload W, a machine M with
// power-boundable components, and a total power bound P_b, find the upper
// bound of achievable performance perf_max and the allocation tuple
// alpha* = (P_proc*, P_mem*) that attains it subject to
// P_proc + P_mem <= P_b.
//
// The package provides the allocation space enumeration, the exhaustive
// (oracle) solver used as the "best found in the experimental dataset"
// baseline of Section 6.3, and perf_max-versus-budget curves (Figures 1,
// 2, and 6).
package core

import (
	"context"
	"fmt"
	"math"

	"repro/internal/evalpool"
	"repro/internal/hw"
	"repro/internal/sim"
	"repro/internal/units"
	"repro/internal/workload"
)

// Allocation is a cross-component power allocation tuple alpha =
// (P_proc, P_mem). On CPU platforms both members are independently
// enforced RAPL caps. On GPU platforms Mem is the estimated memory power
// selected through the memory clock and Proc is the remainder of the
// board budget (the governor enforces only the total).
type Allocation struct {
	Proc units.Power
	Mem  units.Power
}

// Total returns P_proc + P_mem.
func (a Allocation) Total() units.Power { return a.Proc + a.Mem }

// String formats the allocation as "(cpu 120.0 W, mem 88.0 W)".
func (a Allocation) String() string {
	return fmt.Sprintf("(proc %s, mem %s)", a.Proc, a.Mem)
}

// Evaluation pairs an allocation with its simulated outcome.
type Evaluation struct {
	Alloc  Allocation
	Result sim.Result
}

// PerfPerWatt returns the power efficiency of the evaluation: performance
// per actually consumed watt. Zero-power results return zero.
func (e Evaluation) PerfPerWatt() float64 {
	w := e.Result.TotalPower.Watts()
	if w <= 0 {
		return 0
	}
	return e.Result.Perf / w
}

// Problem is one instance of the power-bounded computing problem.
type Problem struct {
	// Platform is the machine M.
	Platform hw.Platform
	// Workload is the parallel workload W.
	Workload workload.Workload
	// Budget is the total power bound P_b.
	Budget units.Power
	// Step is the sweep granularity for CPU platforms (default 4 W, the
	// stepping the paper's sweeps use). GPU platforms enumerate memory
	// clocks instead.
	Step units.Power
	// ProcMin and MemMin bound the sweep from below. The defaults extend
	// slightly below the hardware floors so the sweep exposes the
	// cap-not-respected scenarios V and VI, as the paper's Figure 3 does.
	ProcMin, MemMin units.Power
	// Engine evaluates the problem's simulator calls. Nil selects the
	// process-wide shared engine (evalpool.Default), whose memo cache
	// lets independent sweeps reuse each other's points.
	Engine *evalpool.Engine
}

// Default sweep bounds for CPU platforms, chosen to match the span of the
// paper's Figure 3 (P_cpu from 40 W, P_mem from under the DRAM floor).
const (
	DefaultStep    units.Power = 4
	DefaultProcMin units.Power = 40
	DefaultMemMin  units.Power = 40
)

// NewProblem returns a problem with default sweep parameters.
func NewProblem(p hw.Platform, w workload.Workload, budget units.Power) Problem {
	return Problem{
		Platform: p, Workload: w, Budget: budget,
		Step: DefaultStep, ProcMin: DefaultProcMin, MemMin: DefaultMemMin,
	}
}

// normalize fills zero fields with defaults.
func (pb *Problem) normalize() {
	if pb.Step <= 0 {
		pb.Step = DefaultStep
	}
	if pb.ProcMin <= 0 {
		pb.ProcMin = DefaultProcMin
	}
	if pb.MemMin <= 0 {
		pb.MemMin = DefaultMemMin
	}
}

// engine returns the problem's engine, defaulting to the shared one.
func (pb *Problem) engine() *evalpool.Engine {
	if pb.Engine != nil {
		return pb.Engine
	}
	return evalpool.Default()
}

// request translates an allocation into the simulator call for the
// problem's platform kind.
func (pb *Problem) request(a Allocation) (evalpool.Request, error) {
	switch pb.Platform.Kind {
	case hw.KindCPU:
		return evalpool.Request{Op: evalpool.OpCPU, Proc: a.Proc, Mem: a.Mem}, nil
	case hw.KindGPU:
		return evalpool.Request{Op: evalpool.OpGPUMemPower, Proc: a.Total(), Mem: a.Mem}, nil
	default:
		return evalpool.Request{}, fmt.Errorf("core: unknown platform kind %v", pb.Platform.Kind)
	}
}

// Evaluate runs a single allocation and returns its outcome. On CPU
// platforms the allocation members program the two RAPL domains; on GPU
// platforms Mem selects the memory clock and the total allocation is the
// board cap.
func (pb *Problem) Evaluate(a Allocation) (Evaluation, error) {
	req, err := pb.request(a)
	if err != nil {
		return Evaluation{}, err
	}
	res, err := pb.engine().Evaluate(evalpool.Problem{Platform: pb.Platform, Workload: pb.Workload}, req)
	if err != nil {
		return Evaluation{}, err
	}
	return Evaluation{Alloc: a, Result: res}, nil
}

// Sweep enumerates the allocation space A for the problem's budget and
// evaluates every point. CPU platforms step P_proc in Step-watt
// increments, giving memory the remainder; GPU platforms enumerate the
// settable memory clocks under the board cap. Points are evaluated
// through the problem's engine — in parallel when it has more than one
// worker — with results always in enumeration order.
func (pb *Problem) Sweep() ([]Evaluation, error) {
	pb.normalize()
	switch pb.Platform.Kind {
	case hw.KindCPU:
		return pb.sweepCPU()
	case hw.KindGPU:
		return pb.sweepGPU()
	default:
		return nil, fmt.Errorf("core: unknown platform kind %v", pb.Platform.Kind)
	}
}

// evaluateAll batches the allocations through the engine and pairs each
// with its result, preserving order.
func (pb *Problem) evaluateAll(allocs []Allocation) ([]Evaluation, error) {
	reqs := make([]evalpool.Request, len(allocs))
	for i, a := range allocs {
		req, err := pb.request(a)
		if err != nil {
			return nil, err
		}
		reqs[i] = req
	}
	results, err := pb.engine().EvaluateAll(context.Background(),
		evalpool.Problem{Platform: pb.Platform, Workload: pb.Workload}, reqs)
	if err != nil {
		return nil, err
	}
	evals := make([]Evaluation, len(allocs))
	for i := range allocs {
		evals[i] = Evaluation{Alloc: allocs[i], Result: results[i]}
	}
	return evals, nil
}

func (pb *Problem) sweepCPU() ([]Evaluation, error) {
	if pb.Budget < pb.ProcMin+pb.MemMin {
		return nil, fmt.Errorf("core: budget %v below sweep floor %v",
			pb.Budget, pb.ProcMin+pb.MemMin)
	}
	allocs := make([]Allocation, 0, int((pb.Budget-pb.MemMin-pb.ProcMin)/pb.Step)+1)
	for proc := pb.ProcMin; proc <= pb.Budget-pb.MemMin; proc += pb.Step {
		allocs = append(allocs, Allocation{Proc: proc, Mem: pb.Budget - proc})
	}
	return pb.evaluateAll(allocs)
}

func (pb *Problem) sweepGPU() ([]Evaluation, error) {
	gpu := pb.Platform.GPU
	if pb.Budget < gpu.MinCap || pb.Budget > gpu.MaxCap {
		return nil, fmt.Errorf("core: budget %v outside GPU cap range [%v, %v]",
			pb.Budget, gpu.MinCap, gpu.MaxCap)
	}
	clocks := gpu.Mem.Clocks()
	reqs := make([]evalpool.Request, len(clocks))
	for i, clock := range clocks {
		reqs[i] = evalpool.Request{Op: evalpool.OpGPUClock, Proc: pb.Budget, Clock: clock}
	}
	results, err := pb.engine().EvaluateAll(context.Background(),
		evalpool.Problem{Platform: pb.Platform, Workload: pb.Workload}, reqs)
	if err != nil {
		return nil, err
	}
	evals := make([]Evaluation, len(clocks))
	for i, clock := range clocks {
		memPower := gpu.Mem.Power(clock)
		evals[i] = Evaluation{
			Alloc:  Allocation{Proc: pb.Budget - memPower, Mem: memPower},
			Result: results[i],
		}
	}
	return evals, nil
}

// Best returns the evaluation with the highest performance among those
// whose actual power respects the allocation's total (allocations whose
// caps sit below the hardware floors are not respected — the paper's
// scenarios V and VI — and cannot count as valid optima). Ties break
// toward lower actual power. If every evaluation violates its bound,
// Best falls back to the full set. It returns false if evals is empty.
func Best(evals []Evaluation) (Evaluation, bool) {
	if len(evals) == 0 {
		return Evaluation{}, false
	}
	best, found := Evaluation{}, false
	for _, e := range evals {
		if violatesBound(e) {
			continue
		}
		if !found || e.Result.Perf > best.Result.Perf ||
			(e.Result.Perf == best.Result.Perf && e.Result.TotalPower < best.Result.TotalPower) {
			best = e
			found = true
		}
	}
	if found {
		return best, true
	}
	best = evals[0]
	for _, e := range evals[1:] {
		if e.Result.Perf > best.Result.Perf {
			best = e
		}
	}
	return best, true
}

// boundSlack tolerates actuator quantization when checking whether an
// evaluation's actual power stayed within its allocated total.
const boundSlack units.Power = 1

func violatesBound(e Evaluation) bool {
	return e.Result.TotalPower > e.Alloc.Total()+boundSlack
}

// Worst returns the evaluation with the lowest performance (used for the
// best-to-worst spreads the paper reports). It returns false if evals is
// empty.
func Worst(evals []Evaluation) (Evaluation, bool) {
	if len(evals) == 0 {
		return Evaluation{}, false
	}
	worst := evals[0]
	for _, e := range evals[1:] {
		if e.Result.Perf < worst.Result.Perf {
			worst = e
		}
	}
	return worst, true
}

// PerfMax solves the problem exhaustively: the upper performance bound
// for the budget and the allocation that attains it.
func (pb *Problem) PerfMax() (Evaluation, error) {
	evals, err := pb.Sweep()
	if err != nil {
		return Evaluation{}, err
	}
	best, ok := Best(evals)
	if !ok {
		return Evaluation{}, fmt.Errorf("core: empty allocation space for budget %v", pb.Budget)
	}
	return best, nil
}

// CurvePoint is one point of a perf_max ~ P_b curve.
type CurvePoint struct {
	Budget  units.Power
	PerfMax float64
	Best    Allocation
	// ActualPower is the power the best allocation actually consumed —
	// the paper's measure of budget waste when it sits far below Budget.
	ActualPower units.Power
}

// Curve computes perf_max for each budget, reusing the problem's sweep
// parameters. Budgets that are infeasible (below the sweep floor or
// outside the GPU cap range) are skipped.
func Curve(p hw.Platform, w workload.Workload, budgets []units.Power) ([]CurvePoint, error) {
	return CurveOn(nil, p, w, budgets)
}

// CurveOn is Curve with an explicit evaluation engine (nil selects the
// shared default). One engine across every budget means the per-budget
// sweeps share a memo cache — and across figures, curves over the same
// (platform, workload) re-simulate nothing.
func CurveOn(e *evalpool.Engine, p hw.Platform, w workload.Workload, budgets []units.Power) ([]CurvePoint, error) {
	var pts []CurvePoint
	for _, b := range budgets {
		pb := NewProblem(p, w, b)
		pb.Engine = e
		best, err := pb.PerfMax()
		if err != nil {
			continue
		}
		pts = append(pts, CurvePoint{
			Budget:      b,
			PerfMax:     best.Result.Perf,
			Best:        best.Alloc,
			ActualPower: best.Result.TotalPower,
		})
	}
	if len(pts) == 0 {
		return nil, fmt.Errorf("core: no feasible budget in range")
	}
	return pts, nil
}

// BudgetRange returns n budgets evenly spaced over [lo, hi] inclusive.
func BudgetRange(lo, hi units.Power, n int) []units.Power {
	if n < 2 || hi <= lo {
		return []units.Power{lo}
	}
	out := make([]units.Power, n)
	for i := 0; i < n; i++ {
		out[i] = lo + units.Power(float64(i)/float64(n-1)*(hi-lo).Watts())
	}
	return out
}

// Knee returns the budget at which a perf_max curve's marginal return
// drops below frac of its initial slope — the "stop budgeting beyond
// this" point the paper's Section 3.1 insights call for. It returns the
// last budget if the curve never flattens.
func Knee(pts []CurvePoint, frac float64) (units.Power, bool) {
	if len(pts) < 3 {
		return 0, false
	}
	first := slope(pts[0], pts[1])
	if first <= 0 {
		return pts[0].Budget, true
	}
	for i := 1; i < len(pts)-1; i++ {
		if slope(pts[i], pts[i+1]) < frac*first {
			return pts[i].Budget, true
		}
	}
	return pts[len(pts)-1].Budget, true
}

func slope(a, b CurvePoint) float64 {
	dw := (b.Budget - a.Budget).Watts()
	if dw <= 0 {
		return 0
	}
	return (b.PerfMax - a.PerfMax) / dw
}

// MaxDemand returns the actual component powers when the workload runs
// with no caps — the workload's maximum power demand, above which extra
// budget is pure waste (the paper's scenario I discussion). The uncapped
// run goes through the shared engine: profiling and several figures need
// the same point, so it is usually already memoized.
func MaxDemand(p hw.Platform, w workload.Workload) (Allocation, error) {
	pr := evalpool.Problem{Platform: p, Workload: w}
	var req evalpool.Request
	switch p.Kind {
	case hw.KindCPU:
		req = evalpool.Request{Op: evalpool.OpCPU}
	case hw.KindGPU:
		req = evalpool.Request{Op: evalpool.OpGPUClock, Proc: p.GPU.MaxCap, Clock: p.GPU.Mem.ClockNom}
	default:
		return Allocation{}, fmt.Errorf("core: unknown platform kind %v", p.Kind)
	}
	res, err := evalpool.Default().Evaluate(pr, req)
	if err != nil {
		return Allocation{}, err
	}
	return Allocation{Proc: res.ProcPower, Mem: res.MemPower}, nil
}

// Spread returns best-over-worst performance across evaluations — the
// paper's headline motivation numbers (30x for CPU STREAM at 208 W, >30%
// on the GPU at 140 W). It returns +Inf when the worst is zero and 1 for
// fewer than two evaluations.
func Spread(evals []Evaluation) float64 {
	best, ok := Best(evals)
	if !ok {
		return 1
	}
	worst, _ := Worst(evals)
	if worst.Result.Perf <= 0 {
		return math.Inf(1)
	}
	return best.Result.Perf / worst.Result.Perf
}
