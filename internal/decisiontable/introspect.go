package decisiontable

// Introspection for the invariant harness and tests: enough surface to
// drive a table deliberately on and off its grid without exposing the
// segment representation.

// Build synchronously builds (if not yet built) the tables for one
// catalog pair and reports which of the two are available. Unknown
// pairs report false, false.
func (s *Set) Build(platform, wl string) (coordBuilt, planBuilt bool) {
	if m := s.coord[platform]; m != nil {
		if sl := m[wl]; sl != nil {
			coordBuilt = s.ensureCoord(sl) != nil
		}
	}
	if m := s.plan[platform]; m != nil {
		if sl := m[wl]; sl != nil {
			planBuilt = s.ensurePlan(sl) != nil
		}
	}
	return coordBuilt, planBuilt
}

// CoordBoundaries returns the built coord table's segment boundaries
// in ascending order — the first element is the rejection threshold,
// the last the saturation point. nil when the pair has no built table.
func (s *Set) CoordBoundaries(platform, wl string) []float64 {
	m := s.coord[platform]
	if m == nil || m[wl] == nil {
		return nil
	}
	t := m[wl].table.Load()
	if t == nil {
		return nil
	}
	if len(t.segs) == 0 {
		// Degenerate table (saturation at or below the cap floor): the
		// served range is [lo, +inf) with every answer from the
		// saturation row. Report the floor and the saturation point.
		return []float64{t.lo, t.hi}
	}
	out := make([]float64, 0, len(t.segs)+1)
	for i := range t.segs {
		out = append(out, t.segs[i].start)
	}
	return append(out, t.hi)
}

// PlanBoundaries is CoordBoundaries for the pair's plan table.
func (s *Set) PlanBoundaries(platform, wl string) []float64 {
	m := s.plan[platform]
	if m == nil || m[wl] == nil {
		return nil
	}
	t := m[wl].table.Load()
	if t == nil {
		return nil
	}
	out := make([]float64, 0, len(t.segs)+1)
	for i := range t.segs {
		out = append(out, t.segs[i].start)
	}
	return append(out, t.hi)
}

// Eps returns the configured perf/power tolerance.
func (s *Set) Eps() float64 { return s.cfg.Eps }
