// Package decisiontable precomputes the allocation service's coord and
// plan decisions over a quantized budget grid, turning the serving path
// into an O(1) interpolating table lookup.
//
// The exact decision functions (coord.CPU / coord.GPU behind
// allocsvc.ComputeCoord, dyncoord.PlanCPUOrDegrade behind
// allocsvc.ComputePlan) are piecewise linear in the budget: every
// regime boundary is a known breakpoint of the profile (productive
// threshold, component maxima, gamma-balance kinks). A table for one
// (platform, workload) pair therefore splits the budget axis into
// segments whose boundaries are the union of those analytic
// breakpoints and a uniform grid, and stores per segment the sampled
// line for the primary component (proc for CPU, mem for GPU — the
// other component is the remainder, so allocations still sum to the
// budget exactly) plus lines for expected perf and power. Serving
// evaluates two fused multiply-adds and fills the caller's response
// struct in place: no profile run, no evalpool simulation, no heap
// allocation.
//
// The contract with the exact path is verified at build time and again
// by internal/invariant: on every probed budget — on and off the grid
// — the table's allocation matches the exact path within AllocEps, the
// status and surplus match exactly, and perf/power match within
// Config.Eps relative error. Segments that cannot meet the contract
// (e.g. a regime boundary that fell between floats) are subdivided; a
// segment still failing at maximum depth is marked exact-only and
// reports a miss, so the service falls back to the exact path rather
// than serve an out-of-contract answer.
//
// Outside the tabulated range the table is exact by construction:
// budgets at or above the saturation point serve a stored exact row
// with the surplus recomputed (bit-identical to the exact path), and
// budgets below the productive threshold serve the stored rejection
// row. Requests the tables cannot cover — unknown pairs, non-default
// strategies, invalid budgets, pairs whose profiles are degraded —
// report a miss and fall through unchanged.
//
// Tables build lazily on first miss (singleflighted through
// internal/flight so a thundering herd builds each pair once) or
// eagerly via Warm. A pair whose build fails is cached negatively and
// never retried: degraded pairs must keep taking the exact path, which
// is exactly the degradation behaviour dyncoord implements.
package decisiontable

import (
	"math"
	"sync/atomic"

	"repro/internal/allocsvc"
	"repro/internal/flight"
	"repro/internal/hw"
	"repro/internal/wire"
	"repro/internal/workload"
)

// Defaults for Config.
const (
	// DefaultGridPoints is the number of uniform grid cells laid over
	// the tabulated budget range, in addition to the analytic
	// breakpoints.
	DefaultGridPoints = 48
	// DefaultEps is the relative error tolerance for interpolated perf
	// and power values.
	DefaultEps = 0.01
)

// AllocEps bounds the allowed divergence between a table-served
// allocation and the exact one, relative with a 1 W floor. Allocations
// are reconstructed from a sampled line through two exact points of a
// truly linear regime, so the only divergence is float rounding —
// orders of magnitude below this bound.
const AllocEps = 1e-6

// maxSplitDepth bounds recursive segment subdivision when validation
// probes fail; a segment still out of contract at this depth becomes
// exact-only (lookup miss).
const maxSplitDepth = 6

// Config parameterizes a Set. The zero value gets defaults from New.
type Config struct {
	// GridPoints is the uniform grid density per pair (0 means
	// DefaultGridPoints). More points mean tighter perf/power
	// interpolation and more memory per table.
	GridPoints int
	// Eps is the relative tolerance for interpolated perf and power
	// against the exact path (0 means DefaultEps). Allocations, status,
	// and surplus are held to AllocEps/exactness regardless.
	Eps float64
}

// Set holds the decision tables for every catalog (platform, workload)
// pair and implements allocsvc.Tables. Construct with New; safe for
// concurrent use. Lookups on built pairs are allocation-free.
type Set struct {
	cfg Config

	// computeCoord/computePlan are the exact decision paths the tables
	// are built from and validated against. Production Sets point them
	// at allocsvc.ComputeCoord/ComputePlan; tests inject fakes to
	// exercise fault paths.
	computeCoord func(wire.CoordRequest) (wire.CoordResponse, error)
	computePlan  func(wire.PlanRequest) (wire.PlanResponse, error)

	// coord/plan are seeded at construction with one slot per valid
	// catalog pair and never mutated afterwards, so lookups need no
	// lock. A name missing from the maps is not a catalog pair and can
	// never have a table.
	coord map[string]map[string]*slot[coordTable]
	plan  map[string]map[string]*slot[planTable]

	flightC flight.Group[string, *coordTable]
	flightP flight.Group[string, *planTable]
}

// slot is the build-once cell for one pair's table. table stays nil
// until built; built flips true when the build completed, whether it
// produced a table or a (permanent) negative result.
type slot[T any] struct {
	platform, workload string
	built              atomic.Bool
	table              atomic.Pointer[T]
}

// New returns an empty Set for the full hardware/workload catalog.
// Tables build lazily on first lookup; call Warm to build them all up
// front.
func New(cfg Config) *Set {
	if cfg.GridPoints <= 0 {
		cfg.GridPoints = DefaultGridPoints
	}
	if cfg.Eps <= 0 {
		cfg.Eps = DefaultEps
	}
	s := &Set{
		cfg:          cfg,
		computeCoord: allocsvc.ComputeCoord,
		computePlan:  allocsvc.ComputePlan,
		coord:        map[string]map[string]*slot[coordTable]{},
		plan:         map[string]map[string]*slot[planTable]{},
	}
	for _, p := range hw.AllPlatforms() {
		cm := map[string]*slot[coordTable]{}
		var pm map[string]*slot[planTable]
		// Plan slots exist only for CPU platforms: the plan path itself
		// is CPU-only, and a GPU pair must take the exact path so it gets
		// the same actionable rejection — never a built-but-empty table
		// reported as a hit.
		if p.Kind == hw.KindCPU {
			pm = map[string]*slot[planTable]{}
		}
		for _, w := range workload.AllWorkloads() {
			if w.Kind != p.Kind {
				continue
			}
			cm[w.Name] = &slot[coordTable]{platform: p.Name, workload: w.Name}
			if pm != nil {
				pm[w.Name] = &slot[planTable]{platform: p.Name, workload: w.Name}
			}
		}
		s.coord[p.Name] = cm
		if pm != nil {
			s.plan[p.Name] = pm
		}
	}
	return s
}

// line is y = y0 + slope·(x − x0), anchored inside its segment so
// evaluation never subtracts two nearly equal large numbers.
type line struct {
	x0, y0, slope float64
}

func (l line) at(x float64) float64 { return l.y0 + l.slope*(x-l.x0) }

// lineThrough fits the line through (x1, y1) and (x2, y2).
func lineThrough(x1, y1, x2, y2 float64) line {
	return line{x0: x1, y0: y1, slope: (y2 - y1) / (x2 - x1)}
}

// coordSeg is one budget segment of a coord table.
type coordSeg struct {
	start, end float64
	// primary is the proc line (CPU) or mem line (GPU); the other
	// component is budget − primary.
	primary line
	perf    line
	power   line
	// exactOnly marks a segment that failed validation at maximum
	// subdivision depth: lookups inside it miss.
	exactOnly bool
}

// coordTable is the full decision table for one (platform, workload).
type coordTable struct {
	platform, workload, kind, perfUnit string

	// [lo, hi) is the segmented range: lo is the rejection threshold,
	// hi the saturation (surplus) point.
	lo, hi float64
	// strictLo: budgets equal to lo are also rejected (GPU semantics:
	// budget ≤ MemMin leaves nothing for the SMs). CPU accepts lo
	// itself (budget ≥ productive threshold).
	strictLo bool
	// errBelow: budgets below lo are rejected by the exact path with a
	// typed error (GPU cap floor above the memory floor, e.g. H100's
	// 200 W settable minimum), not with a too-small row. The table must
	// miss there so the service falls through and serves the same
	// actionable rejection.
	errBelow bool
	// memPrimary: segment lines model mem (GPU) instead of proc (CPU).
	memPrimary bool

	segs []coordSeg
	// cells is a uniform acceleration index over [lo, hi): cells[i] is
	// the first segment whose end exceeds the cell's start, so a lookup
	// is one division plus a short forward scan.
	cells    []int32
	invCellW float64

	// statuses as the exact path renders them.
	okStatus, surplusStatus, tooSmallStatus string

	// surplus* is the exact decision at hi: above saturation the
	// allocation, perf, and power pin there and only the surplus grows.
	surplusProc, surplusMem, surplusPerf, surplusPower float64
}

// fill writes a complete response. hasAlloc=false renders the
// rejection shape: no alloc, no perf, no power — exactly what the
// exact path returns for a too-small budget.
func (t *coordTable) fill(out *wire.CoordResponse, strategy string, b float64,
	status string, hasAlloc bool, proc, mem, surplus, perf, power float64) {
	out.Platform = t.platform
	out.Workload = t.workload
	out.Kind = t.kind
	out.Strategy = strategy
	out.Budget = b
	out.Status = status
	if !hasAlloc {
		out.Alloc = nil
		out.SurplusWatts = 0
		out.ExpectedPerf = 0
		out.PerfUnit = ""
		out.ExpectedPower = 0
		return
	}
	if out.Alloc == nil {
		out.Alloc = new(wire.AllocJSON)
	}
	out.Alloc.ProcWatts = proc
	out.Alloc.MemWatts = mem
	out.SurplusWatts = surplus
	out.ExpectedPerf = perf
	out.PerfUnit = t.perfUnit
	out.ExpectedPower = power
}

// find locates the segment containing b ∈ [lo, hi).
func (t *coordTable) find(b float64) *coordSeg {
	i := int((b - t.lo) * t.invCellW)
	if i < 0 {
		i = 0
	} else if i >= len(t.cells) {
		i = len(t.cells) - 1
	}
	j := int(t.cells[i])
	for j < len(t.segs)-1 && b >= t.segs[j].end {
		j++
	}
	// The cell index rounds up when (b−lo)·invCellW lands a hair above
	// an integer boundary, so cells[i] can name a segment starting just
	// past b — one ulp below a regime breakpoint would then interpolate
	// on the wrong regime's line. Walk back to the owning segment.
	for j > 0 && b < t.segs[j].start {
		j--
	}
	return &t.segs[j]
}

// serve answers one coord request from the table. It reports false for
// budgets inside an exact-only segment, and for budgets below an
// errBelow table's range, where the exact path rejects with a typed
// error the table cannot reproduce.
func (t *coordTable) serve(strategy string, b float64, out *wire.CoordResponse) bool {
	if t.errBelow && b < t.lo {
		// Checked before the saturation branch: on a degenerate pair
		// (saturation at or below the cap floor, hi <= lo) a budget can
		// satisfy b >= hi and still be unenforceable.
		return false
	}
	switch {
	case b >= t.hi:
		// Saturated: the exact path pins the allocation at the maximum
		// demand and reports the excess. b − hi is the same subtraction
		// the exact path performs, so the row is bit-identical.
		t.fill(out, strategy, b, t.surplusStatus, true,
			t.surplusProc, t.surplusMem, b-t.hi, t.surplusPerf, t.surplusPower)
		return true
	case b < t.lo || (t.strictLo && b == t.lo):
		t.fill(out, strategy, b, t.tooSmallStatus, false, 0, 0, 0, 0, 0)
		return true
	}
	seg := t.find(b)
	if seg.exactOnly {
		return false
	}
	y := seg.primary.at(b)
	var proc, mem float64
	if t.memPrimary {
		mem, proc = y, b-y
	} else {
		proc, mem = y, b-y
	}
	t.fill(out, strategy, b, t.okStatus, true, proc, mem, 0, seg.perf.at(b), seg.power.at(b))
	return true
}

// planStepMode says how one step's allocation varies with budget
// inside a segment.
type planStepMode uint8

const (
	// stepLinear: proc follows the line, mem is budget − proc (the step
	// allocation sums to the budget in every OK regime, phase-aware or
	// memory-first fallback).
	stepLinear planStepMode = iota
	// stepConst: the step pins at its maximum demand (surplus regime).
	stepConst
	// stepZero: the step is rejected (too-small); the alloc is zero.
	stepZero
)

// planStepSeg is one plan step's behaviour over one budget segment.
type planStepSeg struct {
	status   string
	fellBack bool
	mode     planStepMode
	// proc is the line for stepLinear; proc.y0/mem hold the constants
	// for stepConst.
	proc line
	mem  float64
}

// planSeg is one budget segment of a plan table.
type planSeg struct {
	start, end float64
	steps      []planStepSeg
	rejected   bool
	exactOnly  bool
}

// planRow is a fully determined plan (every step constant), stored for
// the regions outside the segmented range.
type planRow struct {
	steps    []planStepSeg // mode stepConst or stepZero only
	rejected bool
}

// planTable is the plan decision table for one CPU pair.
type planTable struct {
	platform, workload string
	phases             []string
	weights            []float64

	lo, hi   float64
	segs     []planSeg
	cells    []int32
	invCellW float64

	// below serves budgets under lo (every step rejected); top serves
	// budgets at or above hi (every step saturated). Either may be nil
	// when validation could not lock the row down, in which case those
	// budgets miss.
	below, top *planRow
}

func (t *planTable) find(b float64) *planSeg {
	i := int((b - t.lo) * t.invCellW)
	if i < 0 {
		i = 0
	} else if i >= len(t.cells) {
		i = len(t.cells) - 1
	}
	j := int(t.cells[i])
	for j < len(t.segs)-1 && b >= t.segs[j].end {
		j++
	}
	// Same rounding guard as coordTable.find: never serve b from a
	// segment that starts past it.
	for j > 0 && b < t.segs[j].start {
		j--
	}
	return &t.segs[j]
}

// emit appends the step allocations for budget b to out.Steps
// (reusing its capacity) and sets the header fields.
func (t *planTable) emit(b float64, steps []planStepSeg, rejected bool, out *wire.PlanResponse) {
	out.Platform = t.platform
	out.Workload = t.workload
	out.Budget = b
	out.Rejected = rejected
	dst := out.Steps[:0]
	for i := range steps {
		st := &steps[i]
		var proc, mem float64
		switch st.mode {
		case stepLinear:
			proc = st.proc.at(b)
			mem = b - proc
		case stepConst:
			proc, mem = st.proc.y0, st.mem
		}
		dst = append(dst, wire.PlanStepJSON{
			Phase:    t.phases[i],
			Weight:   t.weights[i],
			Alloc:    wire.AllocJSON{ProcWatts: proc, MemWatts: mem},
			Status:   st.status,
			FellBack: st.fellBack,
		})
	}
	out.Steps = dst
}

// serve answers one plan request from the table.
func (t *planTable) serve(b float64, out *wire.PlanResponse) bool {
	switch {
	case b >= t.hi:
		if t.top == nil {
			return false
		}
		t.emit(b, t.top.steps, t.top.rejected, out)
		return true
	case b < t.lo:
		if t.below == nil {
			return false
		}
		t.emit(b, t.below.steps, t.below.rejected, out)
		return true
	}
	seg := t.find(b)
	if seg.exactOnly {
		return false
	}
	t.emit(b, seg.steps, seg.rejected, out)
	return true
}

// validBudget mirrors the exact path's budget check: tables only
// answer budgets the exact path would accept.
func validBudget(b float64) bool {
	return b > 0 && !math.IsInf(b, 0) // NaN fails b > 0
}

// Coord answers one /v1/coord request from the tables, reporting
// whether it was covered. A false return means the exact path must
// serve it. The first miss on an unbuilt catalog pair kicks off an
// asynchronous, singleflighted build; until it completes the pair
// keeps missing, so table warm-up never blocks a request.
func (s *Set) Coord(req *wire.CoordRequest, out *wire.CoordResponse) bool {
	if req.Strategy != "coord" || !validBudget(req.Budget) {
		return false
	}
	m := s.coord[req.Platform]
	if m == nil {
		return false
	}
	sl := m[req.Workload]
	if sl == nil {
		return false
	}
	t := sl.table.Load()
	if t == nil {
		if !sl.built.Load() {
			go s.ensureCoord(sl)
		}
		return false
	}
	return t.serve(req.Strategy, req.Budget, out)
}

// Plan is Coord's /v1/plan counterpart.
func (s *Set) Plan(req *wire.PlanRequest, out *wire.PlanResponse) bool {
	if !validBudget(req.Budget) {
		return false
	}
	m := s.plan[req.Platform]
	if m == nil {
		return false
	}
	sl := m[req.Workload]
	if sl == nil {
		return false
	}
	t := sl.table.Load()
	if t == nil {
		if !sl.built.Load() {
			go s.ensurePlan(sl)
		}
		return false
	}
	return t.serve(req.Budget, out)
}

// ensureCoord builds the pair's coord table exactly once (negative
// results included) and returns it, nil when the pair cannot be
// tabulated.
func (s *Set) ensureCoord(sl *slot[coordTable]) *coordTable {
	if sl.built.Load() {
		return sl.table.Load()
	}
	t, _, _ := s.flightC.Do("coord|"+sl.platform+"|"+sl.workload, func() (*coordTable, error) {
		if sl.built.Load() {
			return sl.table.Load(), nil
		}
		t := s.buildCoordTable(sl.platform, sl.workload)
		sl.table.Store(t)
		sl.built.Store(true)
		return t, nil
	})
	return t
}

// ensurePlan is ensureCoord's plan counterpart.
func (s *Set) ensurePlan(sl *slot[planTable]) *planTable {
	if sl.built.Load() {
		return sl.table.Load()
	}
	t, _, _ := s.flightP.Do("plan|"+sl.platform+"|"+sl.workload, func() (*planTable, error) {
		if sl.built.Load() {
			return sl.table.Load(), nil
		}
		t := s.buildPlanTable(sl.platform, sl.workload)
		sl.table.Store(t)
		sl.built.Store(true)
		return t, nil
	})
	return t
}

// WarmStats summarizes a Warm pass.
type WarmStats struct {
	// CoordTables/PlanTables count the pairs now serving from tables.
	CoordTables, PlanTables int
	// CoordSkipped/PlanSkipped count pairs that cannot be tabulated
	// (degraded profiles, non-linearizable segments): they permanently
	// take the exact path.
	CoordSkipped, PlanSkipped int
}

// Warm builds every catalog pair's tables synchronously, so a service
// started with -tables answers its first request from warm tables.
// Building samples the exact path, which also populates the shared
// evalpool memo cache — the same warm-up the schedule route benefits
// from.
func (s *Set) Warm() WarmStats {
	var st WarmStats
	for _, m := range s.coord {
		for _, sl := range m {
			if s.ensureCoord(sl) != nil {
				st.CoordTables++
			} else {
				st.CoordSkipped++
			}
		}
	}
	for _, m := range s.plan {
		for _, sl := range m {
			if s.ensurePlan(sl) != nil {
				st.PlanTables++
			} else {
				st.PlanSkipped++
			}
		}
	}
	return st
}
