package decisiontable

import (
	"errors"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/allocsvc"
	"repro/internal/coord"
	"repro/internal/hw"
	"repro/internal/nvgov"
	"repro/internal/profile"
	"repro/internal/wire"
	"repro/internal/workload"
)

// sweepBudgets returns a budget sweep that deliberately lands below
// the range, on segment boundaries, between grid points, and above
// saturation.
func sweepBudgets(lo, hi float64) []float64 {
	var bs []float64
	bs = append(bs, lo/3, lo/2, lo*0.999, lo, lo+1e-9)
	n := 97 // coprime with the grid so probes fall between grid points
	for i := 1; i < n; i++ {
		bs = append(bs, lo+(hi-lo)*float64(i)/float64(n))
	}
	bs = append(bs, hi-1e-9, hi, hi+1e-9, hi*1.25, hi*10)
	return bs
}

// checkCoordAgainstExact serves b from the set and, on a hit, compares
// against the exact path. Returns whether it hit.
func checkCoordAgainstExact(t *testing.T, s *Set, platform, wl string, b float64) bool {
	t.Helper()
	req := wire.CoordRequest{Platform: platform, Workload: wl, Budget: b, Strategy: "coord"}
	var got wire.CoordResponse
	if !s.Coord(&req, &got) {
		return false
	}
	exact, err := allocsvc.ComputeCoord(req)
	if err != nil {
		t.Fatalf("%s/%s b=%v: exact path errored (%v) but table served", platform, wl, b, err)
	}
	if got.Status != exact.Status {
		t.Fatalf("%s/%s b=%v: table status %q, exact %q", platform, wl, b, got.Status, exact.Status)
	}
	if got.Platform != exact.Platform || got.Workload != exact.Workload ||
		got.Kind != exact.Kind || got.Strategy != exact.Strategy || got.Budget != exact.Budget {
		t.Fatalf("%s/%s b=%v: header mismatch: table %+v exact %+v", platform, wl, b, got, exact)
	}
	if (got.Alloc == nil) != (exact.Alloc == nil) {
		t.Fatalf("%s/%s b=%v: alloc presence mismatch: table %+v exact %+v", platform, wl, b, got, exact)
	}
	if exact.Alloc == nil {
		return true
	}
	if !within(got.Alloc.ProcWatts, exact.Alloc.ProcWatts, AllocEps) ||
		!within(got.Alloc.MemWatts, exact.Alloc.MemWatts, AllocEps) {
		t.Fatalf("%s/%s b=%v: alloc gap: table (%v, %v) exact (%v, %v)", platform, wl, b,
			got.Alloc.ProcWatts, got.Alloc.MemWatts, exact.Alloc.ProcWatts, exact.Alloc.MemWatts)
	}
	if got.SurplusWatts != exact.SurplusWatts {
		t.Fatalf("%s/%s b=%v: surplus gap: table %v exact %v", platform, wl, b,
			got.SurplusWatts, exact.SurplusWatts)
	}
	if !within(got.ExpectedPerf, exact.ExpectedPerf, DefaultEps) ||
		!within(got.ExpectedPower, exact.ExpectedPower, DefaultEps) {
		t.Fatalf("%s/%s b=%v: perf/power out of eps: table (%v, %v) exact (%v, %v)",
			platform, wl, b, got.ExpectedPerf, got.ExpectedPower,
			exact.ExpectedPerf, exact.ExpectedPower)
	}
	if got.PerfUnit != exact.PerfUnit {
		t.Fatalf("%s/%s b=%v: perf unit %q vs %q", platform, wl, b, got.PerfUnit, exact.PerfUnit)
	}
	// The table path must keep the allocation summing to the budget in
	// the ok regime, same as the analytic algorithms.
	if got.Status == "ok" {
		if sum := got.Alloc.ProcWatts + got.Alloc.MemWatts; math.Abs(sum-b) > 1e-9*math.Max(1, b) {
			t.Fatalf("%s/%s b=%v: table alloc sums to %v, not the budget", platform, wl, b, sum)
		}
	}
	return true
}

func TestCoordTableMatchesExact(t *testing.T) {
	pairs := []struct{ platform, wl string }{
		{"ivybridge", "stream"},
		{"ivybridge", "dgemm"},
		{"haswell", "bt"},
		{"titanv", "sgemm"},
		{"titanxp", "sgemm"},
		{"h100", "llmserve"},
	}
	s := New(Config{})
	for _, pair := range pairs {
		sl := s.coord[pair.platform][pair.wl]
		if sl == nil {
			t.Fatalf("no slot for %s/%s", pair.platform, pair.wl)
		}
		tab := s.ensureCoord(sl)
		if tab == nil {
			t.Fatalf("coord table for %s/%s did not build", pair.platform, pair.wl)
		}
		hits, total := 0, 0
		for _, b := range sweepBudgets(tab.lo, tab.hi) {
			total++
			if checkCoordAgainstExact(t, s, pair.platform, pair.wl, b) {
				hits++
			}
		}
		if frac := float64(hits) / float64(total); frac < 0.9 {
			t.Errorf("%s/%s: table hit rate %.2f below 0.9 (%d/%d)",
				pair.platform, pair.wl, frac, hits, total)
		}
	}
}

// TestCoordGridBoundaries serves budgets exactly on every segment
// boundary, where off-by-one segment selection would bite.
func TestCoordGridBoundaries(t *testing.T) {
	s := New(Config{})
	sl := s.coord["ivybridge"]["stream"]
	tab := s.ensureCoord(sl)
	if tab == nil {
		t.Fatal("table did not build")
	}
	for _, seg := range tab.segs {
		checkCoordAgainstExact(t, s, "ivybridge", "stream", seg.start)
	}
	checkCoordAgainstExact(t, s, "ivybridge", "stream", tab.hi)
}

// TestRegressGPUCapFloorBudgetsMissTables is the satellite regression
// for the silent-clamp bug at the table layer: every GPU pair's cap
// floor (MinCap) sits above its memory floor, so budgets below the
// floor are rejected by the exact path with a typed error
// (nvgov.ErrCapOutOfRange). The table must MISS there — never serve a
// too-small row or, on a degenerate pair, a surplus row — so the
// service falls through and the client gets the same actionable
// rejection.
func TestRegressGPUCapFloorBudgetsMissTables(t *testing.T) {
	s := New(Config{})
	sl := s.coord["h100"]["llmserve"]
	tab := s.ensureCoord(sl)
	if tab == nil {
		t.Fatal("h100/llmserve coord table did not build")
	}
	if !tab.errBelow {
		t.Fatal("h100/llmserve table is not marked errBelow (MinCap 200 W > MemMin 60 W)")
	}
	floor, err := hw.PlatformByName("h100")
	if err != nil {
		t.Fatal(err)
	}
	if tab.lo != floor.GPU.MinCap.Watts() {
		t.Fatalf("table lo = %v, want the cap floor %v", tab.lo, floor.GPU.MinCap.Watts())
	}
	for _, b := range []float64{tab.lo / 2, tab.lo * 0.999, math.Nextafter(tab.lo, math.Inf(-1))} {
		req := wire.CoordRequest{Platform: "h100", Workload: "llmserve", Budget: b, Strategy: "coord"}
		var got wire.CoordResponse
		if s.Coord(&req, &got) {
			t.Fatalf("b=%v below the cap floor: table served %+v, must miss", b, got)
		}
		if _, err := allocsvc.ComputeCoord(req); !errors.Is(err, nvgov.ErrCapOutOfRange) {
			t.Fatalf("b=%v: exact path error = %v, want nvgov.ErrCapOutOfRange", b, err)
		}
	}
	// The floor itself is enforceable: the table serves it and matches
	// the exact path.
	if !checkCoordAgainstExact(t, s, "h100", "llmserve", tab.lo) {
		t.Fatalf("b=%v (the cap floor): expected table hit", tab.lo)
	}
}

// TestDegenerateGPUPairAllSurplus: on titanv/gpustream the saturation
// point (TotMax 82.4 W) sits below the cap floor (100 W), so every
// enforceable budget is saturated. The table must still build (the
// pair profiles cleanly), serve every budget at or above the floor
// from the saturation row, and miss below it.
func TestDegenerateGPUPairAllSurplus(t *testing.T) {
	s := New(Config{})
	tab := s.ensureCoord(s.coord["titanv"]["gpustream"])
	if tab == nil {
		t.Fatal("titanv/gpustream coord table did not build")
	}
	if !(tab.hi < tab.lo) || !tab.errBelow || len(tab.segs) != 0 {
		t.Fatalf("expected degenerate errBelow table (hi < lo, no segments); lo=%v hi=%v segs=%d",
			tab.lo, tab.hi, len(tab.segs))
	}
	for _, b := range []float64{tab.lo, tab.lo + 1e-9, tab.lo * 1.25, tab.lo * 10} {
		if !checkCoordAgainstExact(t, s, "titanv", "gpustream", b) {
			t.Fatalf("b=%v: expected table hit", b)
		}
		req := wire.CoordRequest{Platform: "titanv", Workload: "gpustream", Budget: b, Strategy: "coord"}
		var got wire.CoordResponse
		s.Coord(&req, &got)
		if got.Status != "surplus" {
			t.Fatalf("b=%v: want surplus, got %+v", b, got)
		}
	}
	// Below the floor: miss, even though b >= hi (the saturation branch
	// must not fire for unenforceable budgets).
	for _, b := range []float64{tab.hi, (tab.hi + tab.lo) / 2, math.Nextafter(tab.lo, math.Inf(-1))} {
		req := wire.CoordRequest{Platform: "titanv", Workload: "gpustream", Budget: b, Strategy: "coord"}
		var got wire.CoordResponse
		if s.Coord(&req, &got) {
			t.Fatalf("b=%v below the cap floor: table served %+v, must miss", b, got)
		}
		if _, err := allocsvc.ComputeCoord(req); !errors.Is(err, nvgov.ErrCapOutOfRange) {
			t.Fatalf("b=%v: exact path error = %v, want nvgov.ErrCapOutOfRange", b, err)
		}
	}
	bounds := s.CoordBoundaries("titanv", "gpustream")
	if len(bounds) != 2 || bounds[0] != tab.lo || bounds[1] != tab.hi {
		t.Fatalf("degenerate CoordBoundaries = %v, want [%v %v]", bounds, tab.lo, tab.hi)
	}
}

// TestRegressGPUPlanRequestsNeverHitTables is the satellite regression
// for the built-but-empty plan table: the plan path is CPU-only, so a
// GPU pair must have no plan slot at all — requests miss and the exact
// path returns its actionable rejection, identical with or without
// tables in front.
func TestRegressGPUPlanRequestsNeverHitTables(t *testing.T) {
	s := New(Config{})
	for _, platform := range []string{"titanv", "titanxp", "h100", "h200"} {
		if s.plan[platform] != nil {
			t.Fatalf("GPU platform %s has plan slots: %v", platform, s.plan[platform])
		}
		if _, planBuilt := s.Build(platform, "gpustream"); planBuilt {
			t.Fatalf("GPU pair %s/gpustream reports a built plan table", platform)
		}
		req := wire.PlanRequest{Platform: platform, Workload: "gpustream", Budget: 150}
		var out wire.PlanResponse
		if s.Plan(&req, &out) {
			t.Fatalf("GPU plan request on %s hit a table: %+v", platform, out)
		}
		if _, err := allocsvc.ComputePlan(req); err == nil {
			t.Fatalf("exact plan path accepted GPU platform %s", platform)
		}
	}
}

// breakpointPairs is the platform × workload matrix the breakpoint
// edge tests probe: every platform kind, memory-bound and compute-bound
// workloads on each.
var breakpointPairs = []struct{ platform, wl string }{
	{"ivybridge", "stream"},
	{"ivybridge", "dgemm"},
	{"ivybridge", "ep"},
	{"haswell", "stream"},
	{"haswell", "bt"},
	{"titanv", "gpustream"},
	{"titanv", "hpcg"},
	{"titanxp", "sgemm"},
	{"h100", "llmserve"},
	{"h100", "gpustream"},
}

// regimeBreakpoints returns the analytic regime boundaries for one
// pair, in watts — the budgets where the coordination algorithm changes
// formula and a mis-selected table segment would interpolate on the
// wrong regime's line.
func regimeBreakpoints(t *testing.T, platform, wl string) []float64 {
	t.Helper()
	p, err := hw.PlatformByName(platform)
	if err != nil {
		t.Fatalf("platform %s: %v", platform, err)
	}
	w, err := workload.ByName(wl)
	if err != nil {
		t.Fatalf("workload %s: %v", wl, err)
	}
	var breaks []float64
	switch p.Kind {
	case hw.KindCPU:
		prof, err := profile.ProfileCPU(p, w)
		if err != nil {
			t.Fatalf("%s/%s: profile: %v", platform, wl, err)
		}
		for _, b := range coord.CPUBreakpoints(prof) {
			breaks = append(breaks, b.Watts())
		}
	case hw.KindGPU:
		prof, err := profile.ProfileGPU(p, w)
		if err != nil {
			t.Fatalf("%s/%s: profile: %v", platform, wl, err)
		}
		for _, b := range coord.GPUBreakpoints(prof, coord.DefaultGamma) {
			breaks = append(breaks, b.Watts())
		}
	default:
		t.Fatalf("platform %s: unknown kind %v", platform, p.Kind)
	}
	return breaks
}

// TestBreakpointEdgesMatchExact probes every regime breakpoint, per
// platform × workload, at the breakpoint itself and one ulp to either
// side. A query one ulp below a breakpoint belongs to the regime on
// the left; serving it from the right regime's segment (the
// edge-straddling lookup bug) interpolates across the regime change
// and diverges from the exact path.
func TestBreakpointEdgesMatchExact(t *testing.T) {
	s := New(Config{})
	for _, pair := range breakpointPairs {
		sl := s.coord[pair.platform][pair.wl]
		if sl == nil {
			t.Fatalf("no slot for %s/%s", pair.platform, pair.wl)
		}
		if s.ensureCoord(sl) == nil {
			t.Fatalf("coord table for %s/%s did not build", pair.platform, pair.wl)
		}
		for _, bp := range regimeBreakpoints(t, pair.platform, pair.wl) {
			for _, b := range []float64{
				math.Nextafter(bp, math.Inf(-1)),
				bp,
				math.Nextafter(bp, math.Inf(1)),
			} {
				checkCoordAgainstExact(t, s, pair.platform, pair.wl, b)
			}
		}
	}
}

// TestFindNeverStraddlesEdge is the white-box half of the breakpoint
// audit: the cell index int((b−lo)·invCellW) can round one cell high
// when b sits one ulp below a cell boundary, and the forward-only scan
// could then return a segment starting past b. find must always return
// the segment that contains b.
func TestFindNeverStraddlesEdge(t *testing.T) {
	s := New(Config{})
	for _, pair := range breakpointPairs {
		tab := s.ensureCoord(s.coord[pair.platform][pair.wl])
		if tab == nil {
			t.Fatalf("coord table for %s/%s did not build", pair.platform, pair.wl)
		}
		probe := func(b float64) {
			if b < tab.lo || b >= tab.hi {
				return // serve() answers these before find runs
			}
			seg := tab.find(b)
			if b < seg.start || b >= seg.end {
				t.Errorf("%s/%s: find(%v) returned segment [%v, %v)",
					pair.platform, pair.wl, b, seg.start, seg.end)
			}
		}
		for _, seg := range tab.segs {
			probe(math.Nextafter(seg.start, math.Inf(-1)))
			probe(seg.start)
			probe(math.Nextafter(seg.start, math.Inf(1)))
			probe(math.Nextafter(seg.end, math.Inf(-1)))
		}
	}
	// Same audit for the plan tables' find.
	for _, pair := range []struct{ platform, wl string }{
		{"ivybridge", "bt"}, {"haswell", "stream"},
	} {
		tab := s.ensurePlan(s.plan[pair.platform][pair.wl])
		if tab == nil {
			t.Fatalf("plan table for %s/%s did not build", pair.platform, pair.wl)
		}
		probe := func(b float64) {
			if b < tab.lo || b >= tab.hi {
				return
			}
			seg := tab.find(b)
			if b < seg.start || b >= seg.end {
				t.Errorf("%s/%s: plan find(%v) returned segment [%v, %v)",
					pair.platform, pair.wl, b, seg.start, seg.end)
			}
		}
		for _, seg := range tab.segs {
			probe(math.Nextafter(seg.start, math.Inf(-1)))
			probe(seg.start)
			probe(math.Nextafter(seg.start, math.Inf(1)))
			probe(math.Nextafter(seg.end, math.Inf(-1)))
		}
	}
}

// TestCoordStaleAllocReuse: a pooled response with a stale Alloc must
// be overwritten, and one with a nil Alloc populated.
func TestCoordStaleAllocReuse(t *testing.T) {
	s := New(Config{})
	sl := s.coord["ivybridge"]["stream"]
	tab := s.ensureCoord(sl)
	if tab == nil {
		t.Fatal("table did not build")
	}
	mid := (tab.lo + tab.hi) / 2
	req := wire.CoordRequest{Platform: "ivybridge", Workload: "stream", Budget: mid, Strategy: "coord"}
	stale := wire.AllocJSON{ProcWatts: -1, MemWatts: -1}
	out := wire.CoordResponse{Alloc: &stale}
	if !s.Coord(&req, &out) {
		t.Fatal("expected hit")
	}
	if out.Alloc != &stale {
		t.Fatal("hit replaced the caller's Alloc instead of reusing it")
	}
	if stale.ProcWatts == -1 {
		t.Fatal("stale alloc not overwritten")
	}
	// Rejection must clear the alloc.
	req.Budget = tab.lo / 2
	if !s.Coord(&req, &out) {
		t.Fatal("expected rejection hit")
	}
	if out.Alloc != nil {
		t.Fatalf("rejection kept an alloc: %+v", out.Alloc)
	}
}

func TestPlanTableMatchesExact(t *testing.T) {
	pairs := []struct{ platform, wl string }{
		{"ivybridge", "bt"},
		{"haswell", "stream"},
	}
	s := New(Config{})
	for _, pair := range pairs {
		sl := s.plan[pair.platform][pair.wl]
		if sl == nil {
			t.Fatalf("no plan slot for %s/%s", pair.platform, pair.wl)
		}
		tab := s.ensurePlan(sl)
		if tab == nil {
			t.Fatalf("plan table for %s/%s did not build", pair.platform, pair.wl)
		}
		hits, total := 0, 0
		for _, b := range sweepBudgets(tab.lo, tab.hi) {
			total++
			req := wire.PlanRequest{Platform: pair.platform, Workload: pair.wl, Budget: b}
			var got wire.PlanResponse
			if !s.Plan(&req, &got) {
				continue
			}
			hits++
			exact, err := allocsvc.ComputePlan(req)
			if err != nil {
				t.Fatalf("%s/%s b=%v: exact plan errored: %v", pair.platform, pair.wl, b, err)
			}
			if got.Rejected != exact.Rejected || len(got.Steps) != len(exact.Steps) ||
				got.Platform != exact.Platform || got.Workload != exact.Workload ||
				got.Budget != exact.Budget {
				t.Fatalf("%s/%s b=%v: plan header mismatch:\n table %+v\n exact %+v",
					pair.platform, pair.wl, b, got, exact)
			}
			for i := range exact.Steps {
				e, g := &exact.Steps[i], &got.Steps[i]
				if g.Phase != e.Phase || g.Weight != e.Weight ||
					g.Status != e.Status || g.FellBack != e.FellBack {
					t.Fatalf("%s/%s b=%v step %d: mismatch table %+v exact %+v",
						pair.platform, pair.wl, b, i, g, e)
				}
				if !within(g.Alloc.ProcWatts, e.Alloc.ProcWatts, AllocEps) ||
					!within(g.Alloc.MemWatts, e.Alloc.MemWatts, AllocEps) {
					t.Fatalf("%s/%s b=%v step %d: alloc gap table %+v exact %+v",
						pair.platform, pair.wl, b, i, g.Alloc, e.Alloc)
				}
			}
		}
		if frac := float64(hits) / float64(total); frac < 0.9 {
			t.Errorf("%s/%s: plan hit rate %.2f below 0.9 (%d/%d)",
				pair.platform, pair.wl, frac, hits, total)
		}
	}
}

// TestPlanStepsReuse: the lookup must reuse the caller's Steps backing
// array (the binary fast path pools the response).
func TestPlanStepsReuse(t *testing.T) {
	s := New(Config{})
	tab := s.ensurePlan(s.plan["ivybridge"]["bt"])
	if tab == nil {
		t.Fatal("plan table did not build")
	}
	req := wire.PlanRequest{Platform: "ivybridge", Workload: "bt", Budget: (tab.lo + tab.hi) / 2}
	var out wire.PlanResponse
	if !s.Plan(&req, &out) {
		t.Fatal("expected hit")
	}
	first := &out.Steps[0]
	if !s.Plan(&req, &out) {
		t.Fatal("expected second hit")
	}
	if &out.Steps[0] != first {
		t.Fatal("second lookup reallocated Steps")
	}
}

// TestUncoveredRequestsMiss: strategies, budgets, and names the tables
// must not answer.
func TestUncoveredRequestsMiss(t *testing.T) {
	s := New(Config{})
	tab := s.ensureCoord(s.coord["ivybridge"]["stream"])
	if tab == nil {
		t.Fatal("table did not build")
	}
	mid := (tab.lo + tab.hi) / 2
	var out wire.CoordResponse
	cases := []wire.CoordRequest{
		{Platform: "ivybridge", Workload: "stream", Budget: mid, Strategy: "memory-first"},
		{Platform: "ivybridge", Workload: "stream", Budget: 0, Strategy: "coord"},
		{Platform: "ivybridge", Workload: "stream", Budget: -5, Strategy: "coord"},
		{Platform: "ivybridge", Workload: "stream", Budget: math.NaN(), Strategy: "coord"},
		{Platform: "ivybridge", Workload: "stream", Budget: math.Inf(1), Strategy: "coord"},
		{Platform: "nosuch", Workload: "stream", Budget: mid, Strategy: "coord"},
		{Platform: "ivybridge", Workload: "nosuch", Budget: mid, Strategy: "coord"},
		{Platform: "titanv", Workload: "stream", Budget: mid, Strategy: "coord"}, // kind mismatch
	}
	for _, req := range cases {
		if s.Coord(&req, &out) {
			t.Errorf("request %+v should miss", req)
		}
	}
	var pout wire.PlanResponse
	planCases := []wire.PlanRequest{
		{Platform: "titanv", Workload: "gpustream", Budget: mid}, // plan is CPU-only
		{Platform: "ivybridge", Workload: "bt", Budget: math.NaN()},
	}
	for _, req := range planCases {
		if s.Plan(&req, &pout) {
			t.Errorf("plan request %+v should miss", req)
		}
	}
}

// TestDegradedPairBypassesTables: when the exact path fails (degraded
// profiles, faulted sensors), the build must cache a negative result
// and every lookup must keep taking the exact path.
func TestDegradedPairBypassesTables(t *testing.T) {
	s := New(Config{})
	fault := errors.New("sensor fault")
	s.computeCoord = func(req wire.CoordRequest) (wire.CoordResponse, error) {
		return wire.CoordResponse{}, fault
	}
	s.computePlan = func(req wire.PlanRequest) (wire.PlanResponse, error) {
		return wire.PlanResponse{}, fault
	}
	if tab := s.ensureCoord(s.coord["ivybridge"]["stream"]); tab != nil {
		t.Fatal("coord table built from a faulting exact path")
	}
	if tab := s.ensurePlan(s.plan["ivybridge"]["bt"]); tab != nil {
		t.Fatal("plan table built from a faulting exact path")
	}
	var out wire.CoordResponse
	req := wire.CoordRequest{Platform: "ivybridge", Workload: "stream", Budget: 100, Strategy: "coord"}
	if s.Coord(&req, &out) {
		t.Fatal("degraded pair served from table")
	}
	// The negative result is cached: the slot is built, no rebuild.
	if !s.coord["ivybridge"]["stream"].built.Load() {
		t.Fatal("negative result not cached")
	}
}

// TestRegressHTTPRejectionsIdenticalWithTables: the service's
// actionable rejections — a GPU coord budget below the cap floor, a
// plan request for a GPU platform — must be byte-identical whether or
// not warmed tables sit in front of the exact path. A table that
// intercepted these (serving a clamped answer, or an empty plan from a
// built-but-vacuous table) changed the wire contract under a flag.
func TestRegressHTTPRejectionsIdenticalWithTables(t *testing.T) {
	s := New(Config{})
	prune(s, map[string][]string{
		"h100":   {"llmserve"},
		"titanv": {"gpustream"},
	})
	s.Warm()
	bare := httptest.NewServer(allocsvc.New(allocsvc.Config{Workers: 2}).Handler())
	defer bare.Close()
	tabled := httptest.NewServer(allocsvc.New(allocsvc.Config{Workers: 2, Tables: s}).Handler())
	defer tabled.Close()

	cases := []struct{ route, body string }{
		{allocsvc.RouteCoord, `{"platform":"h100","workload":"llmserve","budget_watts":150}`},
		{allocsvc.RouteCoord, `{"platform":"titanv","workload":"gpustream","budget_watts":90}`},
		{allocsvc.RoutePlan, `{"platform":"h100","workload":"llmserve","budget_watts":300}`},
		{allocsvc.RoutePlan, `{"platform":"titanv","workload":"gpustream","budget_watts":150}`},
	}
	for _, tc := range cases {
		post := func(srv *httptest.Server) (int, string) {
			resp, err := http.Post(srv.URL+tc.route, "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatalf("POST %s: %v", tc.route, err)
			}
			defer resp.Body.Close()
			b, err := io.ReadAll(resp.Body)
			if err != nil {
				t.Fatal(err)
			}
			return resp.StatusCode, string(b)
		}
		bcode, bbody := post(bare)
		tcode, tbody := post(tabled)
		if bcode != http.StatusBadRequest {
			t.Fatalf("%s %s: bare service answered %d (%s), want 400", tc.route, tc.body, bcode, bbody)
		}
		if tcode != bcode || tbody != bbody {
			t.Fatalf("%s %s: tables changed the rejection:\nbare   %d %s\ntabled %d %s",
				tc.route, tc.body, bcode, bbody, tcode, tbody)
		}
	}
}

// prune shrinks the set's seeded catalog to the named pairs so tests
// can warm a sub-catalog in bounded time (the full catalog warms in
// tens of seconds — a startup cost for pbc serve -tables, not for unit
// tests).
func prune(s *Set, keep map[string][]string) {
	for platform, cm := range s.coord {
		kept, ok := keep[platform]
		if !ok {
			delete(s.coord, platform)
			delete(s.plan, platform)
			continue
		}
		for wl := range cm {
			found := false
			for _, k := range kept {
				found = found || k == wl
			}
			if !found {
				delete(cm, wl)
				if pm := s.plan[platform]; pm != nil {
					delete(pm, wl)
				}
			}
		}
	}
}

// TestWarmSubCatalog builds a pruned catalog eagerly and checks the
// warm stats and that warmed pairs serve through the allocsvc.Tables
// interface the service consumes.
func TestWarmSubCatalog(t *testing.T) {
	s := New(Config{})
	prune(s, map[string][]string{
		"ivybridge": {"stream", "ep"},
		"titanv":    {"hpcg"},
	})
	st := s.Warm()
	if st.CoordTables+st.CoordSkipped != 3 {
		t.Errorf("warm visited %d coord pairs, pruned catalog has 3", st.CoordTables+st.CoordSkipped)
	}
	if st.PlanTables+st.PlanSkipped != 2 {
		t.Errorf("warm visited %d plan pairs, pruned catalog has 2", st.PlanTables+st.PlanSkipped)
	}
	if st.CoordTables == 0 {
		t.Fatalf("warm built no coord tables: %+v", st)
	}
	var tables allocsvc.Tables = s
	req := wire.CoordRequest{Platform: "ivybridge", Workload: "stream", Budget: 200, Strategy: "coord"}
	var out wire.CoordResponse
	tables.Coord(&req, &out) // hit or miss, must not panic on warm tables
	// A warmed slot must never kick a rebuild.
	if !s.coord["ivybridge"]["stream"].built.Load() {
		t.Fatal("warmed slot not marked built")
	}
}
