package decisiontable

import (
	"context"
	"net/http"
	"testing"

	"repro/internal/allocsvc"
	"repro/internal/wire"
)

// BenchmarkBinaryFastPath is the hot path the Makefile's fastpath-alloc
// gate pins at zero allocs/op: a binary coord frame decoded, served
// from a warm decision table, and encoded into a caller-provided
// buffer. Only table-hit budgets are benchmarked — a miss falls
// through to the exact path, which allocates by design.
func BenchmarkBinaryFastPath(b *testing.B) {
	s := New(Config{})
	prune(s, map[string][]string{
		"ivybridge": {"stream", "dgemm"},
		"haswell":   {"stream"},
		"titanxp":   {"gpustream"},
	})
	svc := allocsvc.New(allocsvc.Config{Workers: 1, Tables: s, Binary: true})
	defer svc.Close(context.Background())

	mix := []struct {
		platform, workload string
		budget             float64
	}{
		{"ivybridge", "stream", 208},
		{"ivybridge", "dgemm", 170},
		{"haswell", "stream", 190},
		{"titanxp", "gpustream", 180},
	}
	var frames [][]byte
	for _, m := range mix {
		if coordBuilt, _ := s.Build(m.platform, m.workload); !coordBuilt {
			b.Fatalf("no coord table for %s/%s", m.platform, m.workload)
		}
		// Perturb each base budget across the interpolated range and
		// keep only budgets the table actually serves, so the gate
		// measures the hit path rather than exact-only slivers.
		for i := 0; i < 64; i++ {
			req := wire.CoordRequest{Platform: m.platform, Workload: m.workload,
				Budget: m.budget - 8 + float64(i)*0.25, Strategy: "coord"}
			var out wire.CoordResponse
			if !s.Coord(&req, &out) {
				continue
			}
			frame, err := wire.AppendCoordRequest(nil, &req)
			if err != nil {
				b.Fatalf("encoding request frame: %v", err)
			}
			frames = append(frames, frame)
		}
	}
	if len(frames) < len(mix) {
		b.Fatalf("only %d table-hit frames across %d pairs", len(frames), len(mix))
	}

	buf := wire.GetBuf()
	defer wire.PutBuf(buf)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		code, _, out := svc.ServeBinary(ctx, frames[i%len(frames)], (*buf)[:0])
		if code != http.StatusOK {
			b.Fatalf("status %d", code)
		}
		*buf = out
	}
}
