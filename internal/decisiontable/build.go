package decisiontable

import (
	"math"
	"sort"

	"repro/internal/coord"
	"repro/internal/dyncoord"
	"repro/internal/hw"
	"repro/internal/profile"
	"repro/internal/wire"
	"repro/internal/workload"
)

// probeFracs are the validation probe positions within a segment, as
// fractions of its width. The simulated perf curve is quantized (the
// RAPL actuator picks discrete P-states, the GPU governor discrete
// memory clocks), so a jump can hide anywhere between samples: probes
// are spread across the whole segment — including position 0, where
// the previous regime's value leaks in if a discontinuity sits exactly
// on the boundary — and validated against half the configured
// tolerance, leaving margin for budgets between probes. The line's two
// anchor points (1/4 and 3/4) are exact by construction.
var probeFracs = [...]float64{
	0, 1.0 / 16, 1.0 / 8, 3.0 / 16, 3.0 / 8, 1.0 / 2, 5.0 / 8,
	13.0 / 16, 7.0 / 8, 15.0 / 16, 1 - 1.0/1024,
}

// probeMargin is the fraction of the tolerance probes are held to.
const probeMargin = 0.5

// within reports |a−b| ≤ eps relative to the larger magnitude, with a
// 1 W (or 1 unit) floor so near-zero values compare absolutely.
func within(a, b, eps float64) bool {
	m := math.Max(math.Abs(a), math.Abs(b))
	if m < 1 {
		m = 1
	}
	return math.Abs(a-b) <= eps*m
}

// gridBounds merges the analytic breakpoints with n uniform grid
// points over [lo, hi], sorted and deduplicated. The result always
// starts at lo and ends at hi.
func gridBounds(lo, hi float64, breaks []float64, n int) []float64 {
	pts := make([]float64, 0, n+len(breaks)+2)
	pts = append(pts, lo, hi)
	for _, b := range breaks {
		if b > lo && b < hi {
			pts = append(pts, b)
		}
	}
	step := (hi - lo) / float64(n)
	for i := 1; i < n; i++ {
		pts = append(pts, lo+float64(i)*step)
	}
	sort.Float64s(pts)
	minGap := (hi - lo) * 1e-9
	out := pts[:1]
	for _, p := range pts[1:] {
		if p-out[len(out)-1] > minGap {
			out = append(out, p)
		}
	}
	// Zero-width tails collapse onto hi, never drop it.
	out[len(out)-1] = hi
	return out
}

// exactCoord samples the exact path at budget b.
func (s *Set) exactCoord(platform, wl string, b float64) (wire.CoordResponse, error) {
	return s.computeCoord(wire.CoordRequest{
		Platform: platform, Workload: wl, Budget: b, Strategy: "coord",
	})
}

// buildCoordTable constructs the coord table for one catalog pair, or
// nil when the pair cannot be tabulated (degraded profile, exact path
// erroring, statuses out of shape). nil is cached as a permanent
// negative: those pairs keep taking the exact path.
func (s *Set) buildCoordTable(pname, wname string) *coordTable {
	p, err := hw.PlatformByName(pname)
	if err != nil {
		return nil
	}
	wl, err := workload.ByName(wname)
	if err != nil {
		return nil
	}

	t := &coordTable{
		platform: pname, workload: wname, kind: p.Kind.String(),
		perfUnit:       wl.PerfUnit,
		okStatus:       coord.StatusOK.String(),
		surplusStatus:  coord.StatusSurplus.String(),
		tooSmallStatus: coord.StatusTooSmall.String(),
	}
	var breaks []float64
	switch p.Kind {
	case hw.KindCPU:
		prof, err := profile.ProfileCPU(p, wl)
		if err != nil {
			return nil
		}
		cp := prof.Critical
		t.lo = cp.ProductiveThreshold().Watts()
		t.hi = (cp.CPUMax + cp.MemMax).Watts()
		for _, b := range coord.CPUBreakpoints(prof) {
			breaks = append(breaks, b.Watts())
		}
	case hw.KindGPU:
		prof, err := profile.ProfileGPU(p, wl)
		if err != nil {
			return nil
		}
		t.lo = prof.MemMin.Watts()
		t.hi = prof.TotMax.Watts()
		t.strictLo = true
		t.memPrimary = true
		if floor := p.GPU.MinCap.Watts(); floor > t.lo {
			// The exact path rejects budgets below the settable cap
			// floor with a typed error (nvgov.ErrCapOutOfRange), so the
			// tabulated range starts at the floor — which itself is a
			// valid budget — and everything below it must miss.
			t.lo = floor
			t.strictLo = false
			t.errBelow = true
		}
		for _, b := range coord.GPUBreakpoints(prof, coord.DefaultGamma) {
			breaks = append(breaks, b.Watts())
		}
		// The evaluator cannot cap the board below its floor, so the
		// simulated perf/power kink at MinCap even though the
		// allocation does not.
		breaks = append(breaks, p.GPU.MinCap.Watts())
	default:
		return nil
	}
	if !(t.lo > 0) {
		return nil
	}
	if !(t.hi > t.lo) && !t.errBelow {
		return nil
	}

	// The rejection row: any budget below lo must reject — with a
	// too-small row the table reproduces, or (errBelow) with an error
	// the table must fall through to. Probe well below and one ulp
	// below the range edge.
	if t.errBelow {
		for _, b := range []float64{t.lo / 2, math.Nextafter(t.lo, math.Inf(-1))} {
			if _, err := s.exactCoord(pname, wname, b); err == nil {
				return nil
			}
		}
	} else {
		below, err := s.exactCoord(pname, wname, t.lo/2)
		if err != nil || below.Status != t.tooSmallStatus || below.Alloc != nil {
			return nil
		}
	}
	// The saturation row: where the allocation pins and only the
	// surplus grows. On a degenerate pair the saturation point sits at
	// or below the cap floor (hi <= lo) and every enforceable budget is
	// saturated, so the row is sampled at the floor instead.
	satB := t.hi
	if satB < t.lo {
		satB = t.lo
	}
	sat, err := s.exactCoord(pname, wname, satB)
	if err != nil || sat.Status != t.surplusStatus || sat.Alloc == nil || sat.SurplusWatts != satB-t.hi {
		return nil
	}
	t.surplusProc = sat.Alloc.ProcWatts
	t.surplusMem = sat.Alloc.MemWatts
	t.surplusPerf = sat.ExpectedPerf
	t.surplusPower = sat.ExpectedPower

	if !(t.hi > t.lo) {
		// Degenerate range: no segments, no index; serve answers every
		// enforceable budget from the saturation row and misses below
		// the floor. Confirm the row is budget-independent at a second
		// point before trusting it everywhere.
		again, err := s.exactCoord(pname, wname, t.lo*1.5)
		if err != nil || again.Status != t.surplusStatus || again.Alloc == nil ||
			*again.Alloc != *sat.Alloc || again.SurplusWatts != t.lo*1.5-t.hi ||
			again.ExpectedPerf != sat.ExpectedPerf || again.ExpectedPower != sat.ExpectedPower {
			return nil
		}
		return t
	}

	bounds := gridBounds(t.lo, t.hi, breaks, s.cfg.GridPoints)
	for i := 0; i+1 < len(bounds); i++ {
		t.segs = append(t.segs, s.buildCoordSegs(t, bounds[i], bounds[i+1], 0)...)
	}
	if len(t.segs) == 0 {
		return nil
	}
	t.index()
	return t
}

// buildCoordSegs builds the segment(s) covering [start, end),
// subdividing when validation probes find the interpolation out of
// contract, and degrading to a single exact-only segment at maximum
// depth (the sliver around a simulator discontinuity).
func (s *Set) buildCoordSegs(t *coordTable, start, end float64, depth int) []coordSeg {
	bad := []coordSeg{{start: start, end: end, exactOnly: true}}
	w := end - start
	if w <= 0 {
		return nil
	}
	split := func() []coordSeg {
		if depth >= maxSplitDepth {
			return bad
		}
		mid := start + w/2
		return append(s.buildCoordSegs(t, start, mid, depth+1),
			s.buildCoordSegs(t, mid, end, depth+1)...)
	}

	t1, t2 := start+0.25*w, start+0.75*w
	if t2-t1 <= 0 {
		return bad
	}
	r1, err1 := s.exactCoord(t.platform, t.workload, t1)
	r2, err2 := s.exactCoord(t.platform, t.workload, t2)
	if err1 != nil || err2 != nil {
		return bad
	}
	if r1.Status != t.okStatus || r2.Status != t.okStatus || r1.Alloc == nil || r2.Alloc == nil {
		return split()
	}
	y1, y2 := r1.Alloc.ProcWatts, r2.Alloc.ProcWatts
	if t.memPrimary {
		y1, y2 = r1.Alloc.MemWatts, r2.Alloc.MemWatts
	}
	seg := coordSeg{
		start: start, end: end,
		primary: lineThrough(t1, y1, t2, y2),
		perf:    lineThrough(t1, r1.ExpectedPerf, t2, r2.ExpectedPerf),
		power:   lineThrough(t1, r1.ExpectedPower, t2, r2.ExpectedPower),
	}
	for _, f := range probeFracs {
		if !s.checkCoordProbe(t, &seg, start+f*w) {
			return split()
		}
	}
	for _, pb := range edgeProbes(start, end) {
		if !s.checkCoordProbe(t, &seg, pb) {
			return split()
		}
	}
	return []coordSeg{seg}
}

// edgeProbes returns the last representable budgets inside [start, end)
// at each rim. Segment boundaries sit on analytic regime breakpoints,
// but the exact path's own regime comparison can flip one ulp before
// the analytic value — a jump the fractional probes (coarsest rim
// probe: 1/1024 of the width) cannot see. Probing the exact rim forces
// such a segment to subdivide down to an exact-only sliver instead of
// interpolating across the regime change.
func edgeProbes(start, end float64) [2]float64 {
	return [2]float64{
		math.Nextafter(start, math.Inf(1)),
		math.Nextafter(end, math.Inf(-1)),
	}
}

// checkCoordProbe verifies the segment's interpolated answer at budget
// b against the exact path: status and zero surplus exactly, the
// allocation within AllocEps, perf and power within cfg.Eps.
func (s *Set) checkCoordProbe(t *coordTable, seg *coordSeg, b float64) bool {
	exact, err := s.exactCoord(t.platform, t.workload, b)
	if err != nil || exact.Status != t.okStatus || exact.Alloc == nil || exact.SurplusWatts != 0 {
		return false
	}
	y := seg.primary.at(b)
	proc, mem := y, b-y
	if t.memPrimary {
		mem, proc = y, b-y
	}
	return within(proc, exact.Alloc.ProcWatts, AllocEps) &&
		within(mem, exact.Alloc.MemWatts, AllocEps) &&
		within(seg.perf.at(b), exact.ExpectedPerf, s.cfg.Eps*probeMargin) &&
		within(seg.power.at(b), exact.ExpectedPower, s.cfg.Eps*probeMargin)
}

// index builds the uniform acceleration index over the segments.
func (t *coordTable) index() {
	n := 4 * len(t.segs)
	cellW := (t.hi - t.lo) / float64(n)
	t.invCellW = 1 / cellW
	t.cells = make([]int32, n)
	j := 0
	for i := range t.cells {
		cs := t.lo + float64(i)*cellW
		for j < len(t.segs)-1 && t.segs[j].end <= cs {
			j++
		}
		t.cells[i] = int32(j)
	}
}

func (t *planTable) index() {
	n := 4 * len(t.segs)
	cellW := (t.hi - t.lo) / float64(n)
	t.invCellW = 1 / cellW
	t.cells = make([]int32, n)
	j := 0
	for i := range t.cells {
		cs := t.lo + float64(i)*cellW
		for j < len(t.segs)-1 && t.segs[j].end <= cs {
			j++
		}
		t.cells[i] = int32(j)
	}
}

// exactPlan samples the exact plan path at budget b.
func (s *Set) exactPlan(platform, wl string, b float64) (wire.PlanResponse, error) {
	return s.computePlan(wire.PlanRequest{Platform: platform, Workload: wl, Budget: b})
}

// buildPlanTable constructs the plan table for one CPU pair, or nil
// when the pair is degraded (missing phase or whole-workload profiles
// — exactly the condition under which dyncoord falls back, so degraded
// pairs always take the exact, fallback-aware path).
func (s *Set) buildPlanTable(pname, wname string) *planTable {
	p, err := hw.PlatformByName(pname)
	if err != nil {
		return nil
	}
	wl, err := workload.ByName(wname)
	if err != nil {
		return nil
	}
	breakPts, healthy, err := dyncoord.PlanTableInputs(p, wl)
	if err != nil || !healthy || len(breakPts) == 0 {
		return nil
	}
	breaks := make([]float64, len(breakPts))
	lo, hi := math.Inf(1), math.Inf(-1)
	for i, b := range breakPts {
		breaks[i] = b.Watts()
		lo = math.Min(lo, breaks[i])
		hi = math.Max(hi, breaks[i])
	}
	if !(hi > lo) || !(lo > 0) {
		return nil
	}

	t := &planTable{platform: pname, workload: wname, lo: lo, hi: hi}
	ref, err := s.exactPlan(pname, wname, hi)
	if err != nil || len(ref.Steps) == 0 {
		return nil
	}
	for _, st := range ref.Steps {
		t.phases = append(t.phases, st.Phase)
		t.weights = append(t.weights, st.Weight)
	}

	// Constant rows for the unsegmented regions: below lo every step is
	// rejected, at and above hi every step is saturated. Each row is
	// kept only if a second sample reproduces it exactly.
	t.below = s.constPlanRow(t, lo/2, lo/4)
	t.top = s.constPlanRow(t, hi, hi*1.5+1)

	bounds := gridBounds(lo, hi, breaks, s.cfg.GridPoints)
	for i := 0; i+1 < len(bounds); i++ {
		t.segs = append(t.segs, s.buildPlanSegs(t, bounds[i], bounds[i+1], 0)...)
	}
	if len(t.segs) == 0 {
		return nil
	}
	t.index()
	return t
}

// constPlanRow samples the plan at b1 and confirms at b2 that every
// step is budget-independent there (rejected or saturated). It returns
// nil when any step still varies with the budget.
func (s *Set) constPlanRow(t *planTable, b1, b2 float64) *planRow {
	r1, err1 := s.exactPlan(t.platform, t.workload, b1)
	r2, err2 := s.exactPlan(t.platform, t.workload, b2)
	if err1 != nil || err2 != nil ||
		len(r1.Steps) != len(t.phases) || len(r2.Steps) != len(t.phases) {
		return nil
	}
	row := &planRow{rejected: r1.Rejected}
	if r2.Rejected != r1.Rejected {
		return nil
	}
	for i := range r1.Steps {
		a, b := &r1.Steps[i], &r2.Steps[i]
		if a.Status != b.Status || a.FellBack != b.FellBack ||
			a.Alloc != b.Alloc || a.Phase != t.phases[i] {
			return nil
		}
		st := planStepSeg{status: a.Status, fellBack: a.FellBack}
		switch a.Status {
		case coord.StatusTooSmall.String():
			st.mode = stepZero
			if a.Alloc != (wire.AllocJSON{}) {
				return nil
			}
		default:
			st.mode = stepConst
			st.proc = line{y0: a.Alloc.ProcWatts}
			st.mem = a.Alloc.MemWatts
		}
		row.steps = append(row.steps, st)
	}
	return row
}

// buildPlanSegs builds the plan segment(s) covering [start, end) with
// the same subdivide-or-degrade discipline as buildCoordSegs.
func (s *Set) buildPlanSegs(t *planTable, start, end float64, depth int) []planSeg {
	bad := []planSeg{{start: start, end: end, exactOnly: true}}
	w := end - start
	if w <= 0 {
		return nil
	}
	split := func() []planSeg {
		if depth >= maxSplitDepth {
			return bad
		}
		mid := start + w/2
		return append(s.buildPlanSegs(t, start, mid, depth+1),
			s.buildPlanSegs(t, mid, end, depth+1)...)
	}

	t1, t2 := start+0.25*w, start+0.75*w
	if t2-t1 <= 0 {
		return bad
	}
	r1, err1 := s.exactPlan(t.platform, t.workload, t1)
	r2, err2 := s.exactPlan(t.platform, t.workload, t2)
	if err1 != nil || err2 != nil ||
		len(r1.Steps) != len(t.phases) || len(r2.Steps) != len(t.phases) {
		return bad
	}
	seg := planSeg{start: start, end: end, rejected: r1.Rejected}
	if r2.Rejected != r1.Rejected {
		return split()
	}
	tooSmall := coord.StatusTooSmall.String()
	surplus := coord.StatusSurplus.String()
	for i := range r1.Steps {
		a, b := &r1.Steps[i], &r2.Steps[i]
		if a.Status != b.Status || a.FellBack != b.FellBack {
			return split()
		}
		st := planStepSeg{status: a.Status, fellBack: a.FellBack}
		switch a.Status {
		case tooSmall:
			st.mode = stepZero
			if a.Alloc != (wire.AllocJSON{}) || b.Alloc != (wire.AllocJSON{}) {
				return split()
			}
		case surplus:
			st.mode = stepConst
			if a.Alloc != b.Alloc {
				return split()
			}
			st.proc = line{y0: a.Alloc.ProcWatts}
			st.mem = a.Alloc.MemWatts
		default: // "ok": the allocation sums to the budget
			st.mode = stepLinear
			st.proc = lineThrough(t1, a.Alloc.ProcWatts, t2, b.Alloc.ProcWatts)
		}
		seg.steps = append(seg.steps, st)
	}
	for _, f := range probeFracs {
		if !s.checkPlanProbe(t, &seg, start+f*w) {
			return split()
		}
	}
	for _, pb := range edgeProbes(start, end) {
		if !s.checkPlanProbe(t, &seg, pb) {
			return split()
		}
	}
	return []planSeg{seg}
}

// checkPlanProbe verifies the segment's emitted plan at budget b
// against the exact path.
func (s *Set) checkPlanProbe(t *planTable, seg *planSeg, b float64) bool {
	exact, err := s.exactPlan(t.platform, t.workload, b)
	if err != nil || len(exact.Steps) != len(seg.steps) || exact.Rejected != seg.rejected {
		return false
	}
	var got wire.PlanResponse
	t.emit(b, seg.steps, seg.rejected, &got)
	for i := range exact.Steps {
		e, g := &exact.Steps[i], &got.Steps[i]
		if e.Status != g.Status || e.FellBack != g.FellBack ||
			e.Phase != g.Phase || e.Weight != g.Weight ||
			!within(g.Alloc.ProcWatts, e.Alloc.ProcWatts, AllocEps) ||
			!within(g.Alloc.MemWatts, e.Alloc.MemWatts, AllocEps) {
			return false
		}
	}
	return true
}
