// Package flight is a minimal generic singleflight: concurrent callers
// asking for the same key share one execution of the underlying
// function instead of stampeding it. It backs the two layers of the
// serving stack that deduplicate concurrent work:
//
//   - the cluster scheduler's lazily populated profile cache, where the
//     first concurrent rounds would otherwise all run the profiler for
//     the same (platform, workload) key;
//   - the allocation service's request coalescing, where identical
//     in-flight API requests share one computation and one rendered
//     response body.
//
// Unlike a memo cache, a flight group holds nothing after the call
// completes: it deduplicates *concurrent* work only, so callers layer
// it under their own cache when results should persist.
package flight

import "sync"

// Result carries a completed call's outcome to every waiter.
type Result[V any] struct {
	// Val and Err are the function's return values.
	Val V
	Err error
	// Shared reports whether the result was delivered to more than one
	// caller.
	Shared bool
}

// call is one in-flight execution.
type call[V any] struct {
	done    chan struct{}
	val     V
	err     error
	waiters int
}

// Group deduplicates concurrent function calls by key. The zero value
// is ready to use. K must be a comparable content key — the same
// content-key discipline as a memo cache, minus the retention.
type Group[K comparable, V any] struct {
	mu    sync.Mutex
	calls map[K]*call[V]
}

// Do executes fn for key, or waits for an identical in-flight call and
// shares its result. shared reports whether the returned value was (or
// will be) delivered to more than one caller. Errors are shared with
// every waiter and never retained: the next call after completion
// re-executes fn.
func (g *Group[K, V]) Do(key K, fn func() (V, error)) (v V, err error, shared bool) {
	ch, leader := g.DoChan(key, fn)
	r := <-ch
	return r.Val, r.Err, r.Shared || !leader
}

// DoChan is the non-blocking variant: it returns a channel that will
// receive exactly one Result, and whether this caller became the leader
// (the one whose fn runs). The leader's fn executes on a new goroutine,
// so an abandoned waiter (e.g. a request whose deadline expired) never
// blocks the computation other waiters still want.
func (g *Group[K, V]) DoChan(key K, fn func() (V, error)) (<-chan Result[V], bool) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = make(map[K]*call[V])
	}
	if c, ok := g.calls[key]; ok {
		c.waiters++
		g.mu.Unlock()
		return waitChan(c), false
	}
	c := &call[V]{done: make(chan struct{}), waiters: 1}
	g.calls[key] = c
	g.mu.Unlock()

	go func() {
		c.val, c.err = fn()
		g.mu.Lock()
		// Guard against Forget having replaced this call: only remove
		// the map entry if it is still ours.
		if g.calls[key] == c {
			delete(g.calls, key)
		}
		g.mu.Unlock()
		close(c.done)
	}()
	return waitChan(c), true
}

// waitChan adapts a call's completion into a buffered one-shot channel.
func waitChan[V any](c *call[V]) <-chan Result[V] {
	ch := make(chan Result[V], 1)
	go func() {
		<-c.done
		ch <- Result[V]{Val: c.val, Err: c.err, Shared: c.waiters > 1}
	}()
	return ch
}

// Forget drops any in-flight call for key: future callers start a fresh
// execution instead of joining it. Current waiters still receive the
// old call's result.
func (g *Group[K, V]) Forget(key K) {
	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
}
