package flight

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestDoDeduplicatesConcurrentCalls pins the core guarantee: N
// concurrent callers for one key execute fn exactly once and all see
// its result, marked shared.
func TestDoDeduplicatesConcurrentCalls(t *testing.T) {
	var g Group[string, int]
	var calls atomic.Int32
	release := make(chan struct{})

	const n = 16
	var wg sync.WaitGroup
	vals := make([]int, n)
	shared := make([]bool, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err, sh := g.Do("k", func() (int, error) {
				calls.Add(1)
				<-release
				return 42, nil
			})
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
			}
			vals[i], shared[i] = v, sh
		}(i)
	}
	// Let every caller reach the group before the call completes.
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()

	if got := calls.Load(); got != 1 {
		t.Fatalf("fn ran %d times, want 1", got)
	}
	for i := 0; i < n; i++ {
		if vals[i] != 42 {
			t.Errorf("caller %d got %d, want 42", i, vals[i])
		}
		if !shared[i] {
			t.Errorf("caller %d not marked shared", i)
		}
	}
}

// TestDoDistinctKeysRunIndependently checks different keys never share.
func TestDoDistinctKeysRunIndependently(t *testing.T) {
	var g Group[int, int]
	var calls atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err, _ := g.Do(i, func() (int, error) {
				calls.Add(1)
				return i * i, nil
			})
			if err != nil || v != i*i {
				t.Errorf("key %d: got (%d, %v)", i, v, err)
			}
		}(i)
	}
	wg.Wait()
	if got := calls.Load(); got != 8 {
		t.Fatalf("fn ran %d times, want 8", got)
	}
}

// TestErrorsSharedNotRetained: waiters share the leader's error, and the
// next call after completion re-executes instead of replaying it.
func TestErrorsSharedNotRetained(t *testing.T) {
	var g Group[string, int]
	boom := errors.New("boom")
	_, err, _ := g.Do("k", func() (int, error) { return 0, boom })
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want boom", err)
	}
	v, err, _ := g.Do("k", func() (int, error) { return 7, nil })
	if err != nil || v != 7 {
		t.Fatalf("retry got (%d, %v), want (7, nil)", v, err)
	}
}

// TestSingleCallerNotShared: an uncontended call reports Shared=false.
func TestSingleCallerNotShared(t *testing.T) {
	var g Group[string, int]
	_, _, shared := g.Do("solo", func() (int, error) { return 1, nil })
	if shared {
		t.Fatal("uncontended call marked shared")
	}
}

// TestDoChanLeaderElection: exactly one of N concurrent DoChan callers
// is the leader.
func TestDoChanLeaderElection(t *testing.T) {
	var g Group[string, int]
	release := make(chan struct{})
	var leaders atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ch, leader := g.DoChan("k", func() (int, error) {
				<-release
				return 1, nil
			})
			if leader {
				leaders.Add(1)
			}
			<-ch
		}()
	}
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()
	if got := leaders.Load(); got != 1 {
		t.Fatalf("%d leaders, want 1", got)
	}
}

// TestForgetStartsFreshCall: after Forget, a new caller re-executes
// while old waiters still get the original result.
func TestForgetStartsFreshCall(t *testing.T) {
	var g Group[string, int]
	release := make(chan struct{})
	ch, _ := g.DoChan("k", func() (int, error) {
		<-release
		return 1, nil
	})
	g.Forget("k")
	v2, err, _ := g.Do("k", func() (int, error) { return 2, nil })
	if err != nil || v2 != 2 {
		t.Fatalf("post-forget call got (%d, %v), want (2, nil)", v2, err)
	}
	close(release)
	if r := <-ch; r.Err != nil || r.Val != 1 {
		t.Fatalf("original waiter got (%d, %v), want (1, nil)", r.Val, r.Err)
	}
}
