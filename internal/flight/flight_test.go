package flight

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestDoDeduplicatesConcurrentCalls pins the core guarantee: N
// concurrent callers for one key execute fn exactly once and all see
// its result, marked shared.
func TestDoDeduplicatesConcurrentCalls(t *testing.T) {
	var g Group[string, int]
	var calls atomic.Int32
	release := make(chan struct{})

	const n = 16
	var wg sync.WaitGroup
	vals := make([]int, n)
	shared := make([]bool, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err, sh := g.Do("k", func() (int, error) {
				calls.Add(1)
				<-release
				return 42, nil
			})
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
			}
			vals[i], shared[i] = v, sh
		}(i)
	}
	// Let every caller reach the group before the call completes.
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()

	if got := calls.Load(); got != 1 {
		t.Fatalf("fn ran %d times, want 1", got)
	}
	for i := 0; i < n; i++ {
		if vals[i] != 42 {
			t.Errorf("caller %d got %d, want 42", i, vals[i])
		}
		if !shared[i] {
			t.Errorf("caller %d not marked shared", i)
		}
	}
}

// TestDoDistinctKeysRunIndependently checks different keys never share.
func TestDoDistinctKeysRunIndependently(t *testing.T) {
	var g Group[int, int]
	var calls atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err, _ := g.Do(i, func() (int, error) {
				calls.Add(1)
				return i * i, nil
			})
			if err != nil || v != i*i {
				t.Errorf("key %d: got (%d, %v)", i, v, err)
			}
		}(i)
	}
	wg.Wait()
	if got := calls.Load(); got != 8 {
		t.Fatalf("fn ran %d times, want 8", got)
	}
}

// TestErrorsSharedNotRetained: waiters share the leader's error, and the
// next call after completion re-executes instead of replaying it.
func TestErrorsSharedNotRetained(t *testing.T) {
	var g Group[string, int]
	boom := errors.New("boom")
	_, err, _ := g.Do("k", func() (int, error) { return 0, boom })
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want boom", err)
	}
	v, err, _ := g.Do("k", func() (int, error) { return 7, nil })
	if err != nil || v != 7 {
		t.Fatalf("retry got (%d, %v), want (7, nil)", v, err)
	}
}

// TestSingleCallerNotShared: an uncontended call reports Shared=false.
func TestSingleCallerNotShared(t *testing.T) {
	var g Group[string, int]
	_, _, shared := g.Do("solo", func() (int, error) { return 1, nil })
	if shared {
		t.Fatal("uncontended call marked shared")
	}
}

// TestDoChanLeaderElection: exactly one of N concurrent DoChan callers
// is the leader.
func TestDoChanLeaderElection(t *testing.T) {
	var g Group[string, int]
	release := make(chan struct{})
	var leaders atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ch, leader := g.DoChan("k", func() (int, error) {
				<-release
				return 1, nil
			})
			if leader {
				leaders.Add(1)
			}
			<-ch
		}()
	}
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()
	if got := leaders.Load(); got != 1 {
		t.Fatalf("%d leaders, want 1", got)
	}
}

// TestForgetStartsFreshCall: after Forget, a new caller re-executes
// while old waiters still get the original result.
func TestForgetStartsFreshCall(t *testing.T) {
	var g Group[string, int]
	release := make(chan struct{})
	ch, _ := g.DoChan("k", func() (int, error) {
		<-release
		return 1, nil
	})
	g.Forget("k")
	v2, err, _ := g.Do("k", func() (int, error) { return 2, nil })
	if err != nil || v2 != 2 {
		t.Fatalf("post-forget call got (%d, %v), want (2, nil)", v2, err)
	}
	close(release)
	if r := <-ch; r.Err != nil || r.Val != 1 {
		t.Fatalf("original waiter got (%d, %v), want (1, nil)", r.Val, r.Err)
	}
}

// TestForgetDuringInflightDo pins the Forget race the allocation
// service's shard restarts depend on: Forget while the leader is still
// computing detaches the in-flight call, a subsequent Do starts a
// fresh execution immediately, and the original waiters still receive
// the old call's result.
func TestForgetDuringInflightDo(t *testing.T) {
	var g Group[string, int]
	started := make(chan struct{})
	release := make(chan struct{})

	type outcome struct {
		v      int
		shared bool
	}
	firstDone := make(chan outcome, 1)
	go func() {
		v, err, shared := g.Do("k", func() (int, error) {
			close(started)
			<-release
			return 1, nil
		})
		if err != nil {
			t.Errorf("first Do: %v", err)
		}
		firstDone <- outcome{v, shared}
	}()
	<-started // the leader is inside fn

	g.Forget("k")

	// A post-Forget Do must not join the detached call: its fn runs
	// fresh and completes even though the old leader is still blocked.
	v, err, _ := g.Do("k", func() (int, error) { return 2, nil })
	if err != nil || v != 2 {
		t.Fatalf("post-Forget Do = (%d, %v), want (2, nil)", v, err)
	}

	close(release)
	got := <-firstDone
	if got.v != 1 {
		t.Errorf("original waiter got %d, want the detached call's 1", got.v)
	}
}

// TestConcurrentForgetHammer interleaves Do and Forget on one key from
// many goroutines; under -race this pins the map-guard in DoChan's
// completion path (only the call that is still current is removed).
func TestConcurrentForgetHammer(t *testing.T) {
	var g Group[string, int]
	var calls atomic.Int32
	const loops = 200
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < loops; i++ {
				v, err, _ := g.Do("k", func() (int, error) {
					calls.Add(1)
					return 7, nil
				})
				if err != nil || v != 7 {
					t.Errorf("Do = (%d, %v), want (7, nil)", v, err)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < loops; i++ {
			g.Forget("k")
		}
	}()
	wg.Wait()
	if n := calls.Load(); n == 0 {
		t.Error("fn never executed")
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if len(g.calls) != 0 {
		t.Errorf("%d calls retained after quiescence, want 0", len(g.calls))
	}
}

// TestDoChanReceiverAbandonment pins the contract the allocation
// service's deadline path relies on: a waiter that never reads its
// channel must not block the leader's computation or the other
// waiters, and the group must not retain the completed call.
func TestDoChanReceiverAbandonment(t *testing.T) {
	var g Group[string, int]
	release := make(chan struct{})

	// Leader: abandoned — nobody ever reads ch1.
	ch1, leader := g.DoChan("k", func() (int, error) {
		<-release
		return 42, nil
	})
	if !leader {
		t.Fatal("first DoChan did not lead")
	}
	_ = ch1 // deliberately never received from

	// Follower joins the same call and does wait.
	ch2, leader2 := g.DoChan("k", func() (int, error) {
		t.Error("follower fn must not run")
		return 0, nil
	})
	if leader2 {
		t.Fatal("second DoChan led; want join")
	}

	close(release)
	select {
	case r := <-ch2:
		if r.Err != nil || r.Val != 42 {
			t.Fatalf("follower got (%d, %v), want (42, nil)", r.Val, r.Err)
		}
		if !r.Shared {
			t.Error("follower result not marked shared")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("abandoned leader blocked the follower")
	}

	// The completed call must not be retained: the next Do re-executes.
	deadline := time.Now().Add(5 * time.Second)
	for {
		g.mu.Lock()
		n := len(g.calls)
		g.mu.Unlock()
		if n == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d calls retained after completion, want 0", n)
		}
		time.Sleep(time.Millisecond)
	}
	v, err, _ := g.Do("k", func() (int, error) { return 7, nil })
	if err != nil || v != 7 {
		t.Fatalf("post-completion Do = (%d, %v), want (7, nil)", v, err)
	}
}
