package sim

import (
	"math"
	"testing"

	"repro/internal/hw"
	"repro/internal/units"
	"repro/internal/workload"
)

func mustWorkload(t *testing.T, name string) *workload.Workload {
	t.Helper()
	w, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return &w
}

func runCPU(t *testing.T, platform, wl string, proc, mem units.Power) Result {
	t.Helper()
	p, err := hw.PlatformByName(platform)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunCPU(p, mustWorkload(t, wl), proc, mem)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func runGPU(t *testing.T, platform, wl string, cap units.Power, memClock units.Frequency) Result {
	t.Helper()
	p, err := hw.PlatformByName(platform)
	if err != nil {
		t.Fatal(err)
	}
	if memClock == 0 {
		memClock = p.GPU.Mem.ClockNom
	}
	res, err := RunGPU(p, mustWorkload(t, wl), cap, memClock)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRunCPUInputValidation(t *testing.T) {
	ivy, _ := hw.PlatformByName("ivybridge")
	xp, _ := hw.PlatformByName("titanxp")
	cpuW := mustWorkload(t, "stream")
	gpuW := mustWorkload(t, "sgemm")
	if _, err := RunCPU(xp, cpuW, 100, 100); err == nil {
		t.Error("GPU platform accepted by RunCPU")
	}
	if _, err := RunCPU(ivy, gpuW, 100, 100); err == nil {
		t.Error("GPU workload accepted by RunCPU")
	}
	if _, err := RunGPU(ivy, gpuW, 250, 5*units.Gigahertz); err == nil {
		t.Error("CPU platform accepted by RunGPU")
	}
	if _, err := RunGPU(xp, cpuW, 250, 5*units.Gigahertz); err == nil {
		t.Error("CPU workload accepted by RunGPU")
	}
	if _, err := RunGPU(xp, gpuW, 50, 5*units.Gigahertz); err == nil {
		t.Error("cap below MinCap accepted by RunGPU")
	}
}

func TestRunCPUDeterministic(t *testing.T) {
	a := runCPU(t, "ivybridge", "mg", 120, 100)
	b := runCPU(t, "ivybridge", "mg", 120, 100)
	if a.Perf != b.Perf || a.ProcPower != b.ProcPower || a.MemPower != b.MemPower {
		t.Errorf("simulator not deterministic: %+v vs %+v", a, b)
	}
}

func TestRunCPUUncapped(t *testing.T) {
	// Uncapped STREAM should reach near its pattern-limited bandwidth:
	// 0.8 * 102.4 GB/s ~ 82 GB/s.
	res := runCPU(t, "ivybridge", "stream", 0, 0)
	if res.Perf < 75 || res.Perf > 85 {
		t.Errorf("uncapped STREAM = %.1f GB/s, want ~82", res.Perf)
	}
	if res.Throttled || res.AtFloor {
		t.Error("uncapped run should not throttle")
	}
	// Per-core bandwidth ~4 GB/s, matching Figure 1a's magnitude.
	perCore := res.Perf / 20
	if perCore < 3.5 || perCore > 4.5 {
		t.Errorf("per-core bandwidth = %.2f GB/s, want ~4", perCore)
	}
}

func TestRunCPUUncappedDGEMM(t *testing.T) {
	// Uncapped DGEMM approaches 0.9 * 400 = 360 GFLOP/s.
	res := runCPU(t, "ivybridge", "dgemm", 0, 0)
	if res.Perf < 300 || res.Perf > 365 {
		t.Errorf("uncapped DGEMM = %.1f GFLOP/s, want 300-365", res.Perf)
	}
	// DGEMM is compute bound: high compute utilization, low stall.
	if res.ComputeUtil < 0.9 {
		t.Errorf("DGEMM compute util = %.2f, want >0.9", res.ComputeUtil)
	}
	if res.StallFrac > 0.2 {
		t.Errorf("DGEMM stall = %.2f, want low", res.StallFrac)
	}
}

func TestRunCPUSRACalibration(t *testing.T) {
	// Uncapped SRA actual powers should match the paper's scenario-I
	// anchors: ~108-112 W CPU, ~112-120 W DRAM.
	res := runCPU(t, "ivybridge", "sra", 0, 0)
	if res.ProcPower.Watts() < 100 || res.ProcPower.Watts() > 118 {
		t.Errorf("SRA CPU power = %v, want 100-118 W", res.ProcPower)
	}
	if res.MemPower.Watts() < 108 || res.MemPower.Watts() > 124 {
		t.Errorf("SRA DRAM power = %v, want 108-124 W", res.MemPower)
	}
	// SRA is heavily memory bound.
	if res.StallFrac < 0.8 {
		t.Errorf("SRA stall = %.2f, want ~1", res.StallFrac)
	}
}

func TestRunCPURespectsCapsInPStateRegion(t *testing.T) {
	// Allocation in the DVFS region: both actual powers stay at or under
	// their caps.
	for _, wl := range []string{"sra", "stream", "dgemm", "mg", "bt"} {
		for _, procCap := range []units.Power{80, 100, 130} {
			for _, memCap := range []units.Power{80, 100, 120} {
				res := runCPU(t, "ivybridge", wl, procCap, memCap)
				if res.AtFloor {
					continue // cap below floor: explicitly flagged as not respected
				}
				if res.ProcPower > procCap+1 {
					t.Errorf("%s proc=%v mem=%v: CPU power %v over cap", wl, procCap, memCap, res.ProcPower)
				}
				if res.MemPower > memCap+1 {
					t.Errorf("%s proc=%v mem=%v: DRAM power %v over cap", wl, procCap, memCap, res.MemPower)
				}
			}
		}
	}
}

func TestRunCPUPerfMonotoneInProcCap(t *testing.T) {
	// With plentiful memory power, performance must be non-decreasing in
	// the CPU cap.
	prev := -1.0
	for cap := units.Power(50); cap <= 200; cap += 5 {
		res := runCPU(t, "ivybridge", "dgemm", cap, 0)
		if res.Perf < prev-1e-6 {
			t.Fatalf("DGEMM perf not monotone at proc cap %v: %v < %v", cap, res.Perf, prev)
		}
		prev = res.Perf
	}
}

func TestRunCPUPerfMonotoneInMemCap(t *testing.T) {
	prev := -1.0
	for cap := units.Power(60); cap <= 130; cap += 2 {
		res := runCPU(t, "ivybridge", "stream", 0, cap)
		if res.Perf < prev-1e-6 {
			t.Fatalf("STREAM perf not monotone at mem cap %v: %v < %v", cap, res.Perf, prev)
		}
		prev = res.Perf
	}
}

func TestRunCPUScenarioIVMemoryUnderConsumes(t *testing.T) {
	// Scenario IV: CPU seriously constrained (T-states), memory
	// over-budgeted. DRAM must draw far less than its allocation because
	// the throttled CPU issues few requests.
	res := runCPU(t, "ivybridge", "sra", 56, 184)
	if !res.Throttled {
		t.Fatalf("56 W CPU cap should engage T-states: %+v", res)
	}
	if res.MemPower.Watts() > 0.8*184 {
		t.Errorf("throttled CPU: DRAM power %v should be well under its 184 W budget", res.MemPower)
	}
}

func TestRunCPUScenarioIIICPUUnderConsumes(t *testing.T) {
	// Scenario III: memory constrained, CPU over-budgeted. The stalled
	// CPU draws less than its generous cap.
	res := runCPU(t, "ivybridge", "stream", 170, 75)
	if res.ProcPower.Watts() > 150 {
		t.Errorf("memory-starved CPU power = %v, should sit below its cap", res.ProcPower)
	}
	// Memory draws close to its 75 W cap.
	if res.MemPower.Watts() < 70 || res.MemPower.Watts() > 76 {
		t.Errorf("constrained DRAM power = %v, want ~75", res.MemPower)
	}
}

func TestRunCPUStreamSplitSpreadAt208W(t *testing.T) {
	// Figure 1a: with a 208 W budget, the best split beats the worst by
	// a large factor (paper reports up to ~30x).
	best, worst := 0.0, math.Inf(1)
	for procCap := units.Power(52); procCap <= 140; procCap += 4 {
		res := runCPU(t, "ivybridge", "stream", procCap, 208-procCap)
		if res.Perf > best {
			best = res.Perf
		}
		if res.Perf < worst {
			worst = res.Perf
		}
	}
	if spread := best / worst; spread < 10 {
		t.Errorf("STREAM 208 W split spread = %.1fx, want >10x (paper ~30x)", spread)
	}
}

func TestRunCPUMultiPhaseAggregation(t *testing.T) {
	res := runCPU(t, "ivybridge", "bt", 150, 100)
	if len(res.Phases) != 4 {
		t.Fatalf("BT should have 4 phase results, got %d", len(res.Phases))
	}
	// Aggregate rate is the weighted harmonic mean: it lies between the
	// slowest and fastest phase rates.
	lo, hi := math.Inf(1), 0.0
	for _, pr := range res.Phases {
		r := pr.Rate.OpsPerSecond()
		lo = math.Min(lo, r)
		hi = math.Max(hi, r)
	}
	got := res.UnitRate.OpsPerSecond()
	if got < lo || got > hi {
		t.Errorf("aggregate rate %v outside phase range [%v, %v]", got, lo, hi)
	}
}

func TestRunGPUUncappedSGEMM(t *testing.T) {
	// SGEMM at the 300 W max cap is still power limited (paper: demand
	// exceeds 300 W) but delivers most of the card's 12.1 TFLOP/s.
	res := runGPU(t, "titanxp", "sgemm", 300, 0)
	if !res.Throttled {
		t.Error("SGEMM at 300 W should still be power limited")
	}
	if res.Perf < 8000 || res.Perf > 11500 {
		t.Errorf("SGEMM at 300 W = %.0f GFLOP/s, want 8000-11500", res.Perf)
	}
}

func TestRunGPUStreamBandwidth(t *testing.T) {
	// GPU STREAM at a roomy cap reaches its pattern-limited bandwidth:
	// 0.82 * 548 ~ 449 GB/s.
	res := runGPU(t, "titanxp", "gpustream", 250, 0)
	if res.Perf < 400 || res.Perf > 460 {
		t.Errorf("GPU STREAM = %.0f GB/s, want ~449", res.Perf)
	}
}

func TestRunGPUTotalTracksCap(t *testing.T) {
	// Paper Section 4: on GPUs the actual total power matches the cap
	// (automatic reclaim) unless the cap exceeds the demand.
	res := runGPU(t, "titanxp", "sgemm", 200, 0)
	if math.Abs(res.TotalPower.Watts()-200) > 12 {
		t.Errorf("SGEMM at 200 W cap drew %v, want ~cap (reclaim)", res.TotalPower)
	}
	// MiniFE demand ~175 W: at a 250 W cap the draw stays at demand.
	res = runGPU(t, "titanxp", "minife", 250, 0)
	if res.TotalPower.Watts() > 210 {
		t.Errorf("MiniFE at 250 W drew %v, want under demand ~200", res.TotalPower)
	}
}

func TestRunGPUMemClockTradeoffSGEMM(t *testing.T) {
	// Compute-intensive SGEMM under a tight cap: lowering the memory
	// clock frees power for the SMs and raises performance (category II).
	p, _ := hw.PlatformByName("titanxp")
	low := runGPU(t, "titanxp", "sgemm", 160, p.GPU.Mem.ClockMin)
	nom := runGPU(t, "titanxp", "sgemm", 160, p.GPU.Mem.ClockNom)
	if low.Perf <= nom.Perf {
		t.Errorf("SGEMM at 160 W: min mem clock %.0f should beat nominal %.0f", low.Perf, nom.Perf)
	}
}

func TestRunGPUMemClockTradeoffStream(t *testing.T) {
	// Memory-intensive STREAM at a large cap: higher memory clock wins
	// (category III).
	p, _ := hw.PlatformByName("titanxp")
	low := runGPU(t, "titanxp", "gpustream", 250, p.GPU.Mem.ClockMin)
	high := runGPU(t, "titanxp", "gpustream", 250, p.GPU.Mem.ClockMax)
	if high.Perf <= low.Perf {
		t.Errorf("STREAM at 250 W: max mem clock %.0f should beat min %.0f", high.Perf, low.Perf)
	}
}

func TestRunGPUPerfMonotoneInCap(t *testing.T) {
	prev := -1.0
	for cap := units.Power(125); cap <= 300; cap += 5 {
		res := runGPU(t, "titanxp", "sgemm", cap, 0)
		if res.Perf < prev-1e-6 {
			t.Fatalf("SGEMM perf not monotone at cap %v", cap)
		}
		prev = res.Perf
	}
}

func TestRunGPUMemPowerBudgetKnob(t *testing.T) {
	p, _ := hw.PlatformByName("titanxp")
	w := mustWorkload(t, "gpustream")
	res, err := RunGPUMemPower(p, w, 250, p.GPU.Mem.PowerMax)
	if err != nil {
		t.Fatal(err)
	}
	// Full memory budget selects the max clock.
	if res.Phases[0].MemBandwidth < 400*units.GBps {
		t.Errorf("full mem budget bandwidth = %v", res.Phases[0].MemBandwidth)
	}
	resLow, err := RunGPUMemPower(p, w, 250, p.GPU.Mem.PowerMin)
	if err != nil {
		t.Fatal(err)
	}
	if resLow.Perf >= res.Perf {
		t.Error("min memory budget should slow STREAM down")
	}
	if _, err := RunGPUMemPower(hw.IvyBridge(), w, 250, 50); err == nil {
		t.Error("CPU platform accepted")
	}
}

func TestRunGPUTitanVMemoryBound(t *testing.T) {
	// Paper: on Titan V applications are generally memory bounded and
	// performance increases with memory power allocation.
	p, _ := hw.PlatformByName("titanv")
	low := runGPU(t, "titanv", "minife", 200, p.GPU.Mem.ClockMin)
	high := runGPU(t, "titanv", "minife", 200, p.GPU.Mem.ClockMax)
	if high.Perf <= low.Perf {
		t.Errorf("Titan V MiniFE should gain from memory clock: %v vs %v", low.Perf, high.Perf)
	}
	// And the performance bound does not change with the cap in the
	// studied range.
	a := runGPU(t, "titanv", "minife", 150, 0)
	b := runGPU(t, "titanv", "minife", 250, 0)
	if math.Abs(a.Perf-b.Perf) > 0.01*a.Perf {
		t.Errorf("Titan V MiniFE perf varies with cap: %v vs %v", a.Perf, b.Perf)
	}
}

func TestAggregateZeroRate(t *testing.T) {
	w := mustWorkload(t, "stream")
	res := aggregate(w, []PhaseResult{{Weight: 1, Rate: 0}})
	if res.Perf != 0 || res.UnitRate != 0 {
		t.Errorf("zero-rate aggregate = %+v", res)
	}
}

func TestResultUtilizationsInRange(t *testing.T) {
	for _, wl := range []string{"sra", "stream", "dgemm", "mg"} {
		res := runCPU(t, "ivybridge", wl, 120, 100)
		if res.ComputeUtil < 0 || res.ComputeUtil > 1 || res.MemUtil < 0 || res.MemUtil > 1 {
			t.Errorf("%s: utilizations out of range: %+v", wl, res)
		}
		if res.StallFrac < 0 || res.StallFrac > 1 {
			t.Errorf("%s: stall out of range", wl)
		}
	}
}

func TestRunGPUOffsets(t *testing.T) {
	p, _ := hw.PlatformByName("titanxp")
	w := mustWorkload(t, "gpustream")
	// Negative SM offset slows the card down for memory-bound STREAM
	// (issue limits bite at deep downclocks).
	slow, err := RunGPUOffsets(p, w, 250, -(p.GPU.SMClockNom - p.GPU.SMClockMin), 0)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := RunGPUOffsets(p, w, 250, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if slow.Perf >= fast.Perf {
		t.Errorf("min SM clock %v should slow STREAM below nominal %v", slow.Perf, fast.Perf)
	}
	// Negative memory offset lowers bandwidth directly.
	lowMem, err := RunGPUOffsets(p, w, 250, 0, -(p.GPU.Mem.ClockNom - p.GPU.Mem.ClockMin))
	if err != nil {
		t.Fatal(err)
	}
	if lowMem.Perf >= fast.Perf {
		t.Error("min memory clock should reduce STREAM bandwidth")
	}
	// Kind checks.
	ivy, _ := hw.PlatformByName("ivybridge")
	if _, err := RunGPUOffsets(ivy, w, 250, 0, 0); err == nil {
		t.Error("CPU platform accepted")
	}
	cw := mustWorkload(t, "stream")
	if _, err := RunGPUOffsets(p, cw, 250, 0, 0); err == nil {
		t.Error("CPU workload accepted")
	}
	if _, err := RunGPUOffsets(p, w, 10, 0, 0); err == nil {
		t.Error("cap below MinCap accepted")
	}
}

func TestRunCPUOptsAblationSwitches(t *testing.T) {
	p, _ := hw.PlatformByName("ivybridge")
	w := mustWorkload(t, "sra")
	// Duty gating off: a throttled CPU no longer suppresses DRAM traffic.
	full, err := RunCPU(p, w, 56, 184)
	if err != nil {
		t.Fatal(err)
	}
	ungated, err := RunCPUOpts(p, w, 56, 184, Options{DisableDutyGating: true})
	if err != nil {
		t.Fatal(err)
	}
	if ungated.MemPower <= full.MemPower {
		t.Errorf("gating off should raise DRAM power: %v vs %v", ungated.MemPower, full.MemPower)
	}
	// ForceOverlap to roofline: performance can only improve.
	base, err := RunCPU(p, w, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	roof, err := RunCPUOpts(p, w, 0, 0, Options{ForceOverlap: 64})
	if err != nil {
		t.Fatal(err)
	}
	if roof.Perf < base.Perf {
		t.Errorf("roofline %v below calibrated %v", roof.Perf, base.Perf)
	}
	// Invalid platform propagates.
	bad := p
	bad.CPU = nil
	if _, err := RunCPUOpts(bad, w, 0, 0, Options{}); err == nil {
		t.Error("invalid platform accepted")
	}
}
