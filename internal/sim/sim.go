// Package sim implements the node-level simulator: it couples the power
// actuators (RAPL on CPU nodes, the board governor on GPUs) with the
// roofline performance model and iterates to a fixed point.
//
// The coupling is the essential physics behind the paper's allocation
// scenarios. Performance depends on the frequency/duty state the actuator
// picks; the actuator's pick depends on package power; package power
// depends on the activity factor; and activity depends on how much of the
// time the processor is stalled on memory — which is set by performance.
// Iterating this loop reproduces, by construction, the scenario behaviours
// the paper observes: a memory-starved CPU draws less than its cap
// (scenario III), and a duty-cycled CPU issues fewer memory requests so
// DRAM draws far less than its allocation (scenario IV).
package sim

import (
	"fmt"
	"math"

	"repro/internal/hw"
	"repro/internal/nvgov"
	"repro/internal/perfmodel"
	"repro/internal/rapl"
	"repro/internal/units"
	"repro/internal/workload"
)

// Fixed-point iteration parameters. The damped activity update converges
// geometrically; the iteration count is a safety bound.
const (
	maxIterations = 80
	damping       = 0.5
	convergeEps   = 1e-4
)

// mlpFloor is the fraction of pattern bandwidth the memory system
// sustains even at the lowest core frequency (prefetch and MLP keep most
// requests in flight); the remainder scales with frequency.
const mlpFloor = 0.7

// PhaseResult is the solved steady state of one workload phase.
type PhaseResult struct {
	// Phase names the workload phase.
	Phase string
	// Weight is the phase's share of total work.
	Weight float64
	// Rate is the phase's work-unit completion rate.
	Rate units.Rate
	// ProcPower and MemPower are the actual component draws during the
	// phase.
	ProcPower, MemPower units.Power
	// Freq and Duty are the processor state the actuator settled on
	// (for GPUs, Freq is the SM clock and Duty is always 1).
	Freq units.Frequency
	Duty float64
	// MemBandwidth is the achieved memory traffic.
	MemBandwidth units.Bandwidth
	// ComputeUtil and MemUtil are capacity utilizations (Figure 5).
	ComputeUtil, MemUtil float64
	// StallFrac is the fraction of time stalled on memory.
	StallFrac float64
	// Throttled and AtFloor report T-state engagement and cap violation.
	Throttled, AtFloor bool
	// Activity is the converged processor activity factor.
	Activity float64
}

// Result is the solved steady state of a whole workload run under a given
// allocation.
type Result struct {
	// Perf is performance in the workload's reported unit (e.g. GB/s for
	// STREAM, GFLOP/s for DGEMM).
	Perf float64
	// UnitRate is the aggregate work-unit rate across phases (harmonic
	// combination weighted by work share).
	UnitRate units.Rate
	// ProcPower, MemPower and TotalPower are time-weighted actual draws.
	ProcPower, MemPower, TotalPower units.Power
	// ComputeUtil, MemUtil and StallFrac are time-weighted averages.
	ComputeUtil, MemUtil, StallFrac float64
	// Throttled reports whether any phase engaged T-states; AtFloor
	// whether any phase ran at the floor with its cap not respected.
	Throttled, AtFloor bool
	// Phases holds the per-phase detail.
	Phases []PhaseResult
}

// Options are model switches used by the ablation studies; the zero value
// is the full model.
type Options struct {
	// DisableDutyGating removes the coupling between the T-state duty
	// cycle and the achievable memory bandwidth. With it set, a
	// throttled CPU keeps DRAM traffic flowing — scenario IV's
	// "memory under-consumes its allocation" behaviour disappears.
	DisableDutyGating bool
	// ForceOverlap overrides every phase's overlap exponent when > 0
	// (e.g. 64 turns the model into a pure roofline: T = max(Tc, Tm)).
	ForceOverlap float64
}

// RunCPU simulates workload w on a CPU platform with the package capped
// at procCap and DRAM capped at memCap (zero or negative disables a cap).
func RunCPU(p hw.Platform, w *workload.Workload, procCap, memCap units.Power) (Result, error) {
	return RunCPUOpts(p, w, procCap, memCap, Options{})
}

// RunCPUOpts is RunCPU with explicit model options.
func RunCPUOpts(p hw.Platform, w *workload.Workload, procCap, memCap units.Power, opts Options) (Result, error) {
	if p.Kind != hw.KindCPU {
		return Result{}, fmt.Errorf("sim: platform %q is not a CPU platform", p.Name)
	}
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	if err := w.Validate(); err != nil {
		return Result{}, err
	}
	if w.Kind != hw.KindCPU {
		return Result{}, fmt.Errorf("sim: workload %q is not a CPU workload", w.Name)
	}
	ctrl := rapl.NewController(p.CPU, p.DRAM)
	if err := ctrl.SetLimit(rapl.DomainPackage, procCap); err != nil {
		return Result{}, err
	}
	if err := ctrl.SetLimit(rapl.DomainDRAM, memCap); err != nil {
		return Result{}, err
	}

	var phases []PhaseResult
	for i := range w.Phases {
		ph := w.Phases[i]
		if opts.ForceOverlap > 0 {
			ph.Overlap = opts.ForceOverlap
		}
		phases = append(phases, solveCPUPhase(ctrl, p, &ph, opts))
	}
	return aggregate(w, phases), nil
}

// solveCPUPhase iterates the activity/actuator/performance loop for one
// phase until the activity factor stops moving.
func solveCPUPhase(ctrl *rapl.Controller, p hw.Platform, ph *workload.Phase, opts Options) PhaseResult {
	act := ph.Activity(0.5)
	var state rapl.PackageState
	var op perfmodel.OperatingPoint
	for i := 0; i < maxIterations; i++ {
		state = ctrl.ActuatePackage(act)
		op = solveCPUPoint(ctrl, p, ph, state, opts)
		next := ph.Activity(op.StallFrac)
		if math.Abs(next-act) < convergeEps {
			act = next
			break
		}
		act += damping * (next - act)
	}
	// Final consistent pass with the converged activity.
	state = ctrl.ActuatePackage(act)
	op = solveCPUPoint(ctrl, p, ph, state, opts)
	act = ph.Activity(op.StallFrac)

	return PhaseResult{
		Phase:        ph.Name,
		Weight:       ph.Weight,
		Rate:         op.Rate,
		ProcPower:    ctrl.PackagePower(state, act),
		MemPower:     ctrl.DRAMPower(op.BandwidthUsed, ph.RandomFrac),
		Freq:         state.Freq,
		Duty:         state.Duty,
		MemBandwidth: op.BandwidthUsed,
		ComputeUtil:  op.ComputeUtil,
		MemUtil:      op.MemUtil,
		StallFrac:    op.StallFrac,
		Throttled:    state.Throttled,
		AtFloor:      state.AtFloor,
		Activity:     act,
	}
}

// solveCPUPoint computes the operating point for a given package state:
// the compute capacity follows the P/T state, and the memory capacity is
// the lower of the pattern limit and the throttling ceiling.
func solveCPUPoint(ctrl *rapl.Controller, p hw.Platform, ph *workload.Phase, state rapl.PackageState, opts Options) perfmodel.OperatingPoint {
	computeCap := units.Rate(p.CPU.PeakComputeRate(state.Freq, state.Duty).OpsPerSecond() * ph.ComputeEff)
	// Memory requests are issued by instructions: clock throttling gates
	// the cores' ability to keep requests outstanding, so the achievable
	// bandwidth scales with the duty cycle (this is why DRAM draws far
	// less than its allocation in the paper's scenario IV — "CPUs make
	// less frequent memory request"). DVFS affects it only weakly —
	// prefetchers and memory-level parallelism sustain most of the
	// bandwidth across the P-state range — which is why performance
	// declines gradually, not proportionally, through scenario II.
	fRatio := state.Freq.Hz() / p.CPU.FNom.Hz()
	issue := state.Duty * (mlpFloor + (1-mlpFloor)*fRatio)
	if opts.DisableDutyGating {
		issue = 1
	}
	patternBW := units.Bandwidth(p.DRAM.PeakBandwidth().BytesPerSecond() * ph.BandwidthEff * issue)
	throttleBW := ctrl.DRAMBandwidthCeiling(ph.RandomFrac)
	return perfmodel.SolveThrottled(ph, computeCap, patternBW, throttleBW)
}

// RunGPU simulates workload w on a GPU platform with the board capped at
// totalCap and the memory clock pinned at memClock (the nvidia-settings
// knob). Pass the card's nominal memory clock for the default driver
// policy.
func RunGPU(p hw.Platform, w *workload.Workload, totalCap units.Power, memClock units.Frequency) (Result, error) {
	if p.Kind != hw.KindGPU {
		return Result{}, fmt.Errorf("sim: platform %q is not a GPU platform", p.Name)
	}
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	if err := w.Validate(); err != nil {
		return Result{}, err
	}
	if w.Kind != hw.KindGPU {
		return Result{}, fmt.Errorf("sim: workload %q is not a GPU workload", w.Name)
	}
	gov := nvgov.New(p.GPU)
	if err := gov.SetPowerCap(totalCap); err != nil {
		return Result{}, err
	}
	gov.SetMemClock(memClock)

	var phases []PhaseResult
	for i := range w.Phases {
		phases = append(phases, solveGPUPhase(gov, p, &w.Phases[i]))
	}
	return aggregate(w, phases), nil
}

// RunGPUOffsets simulates workload w with explicit nvidia-settings clock
// offsets on both domains, the raw control surface the paper's GPU
// experiments sweep. smOffset and memOffset shift the SM boost limit and
// memory clock relative to nominal.
func RunGPUOffsets(p hw.Platform, w *workload.Workload, totalCap units.Power, smOffset, memOffset units.Frequency) (Result, error) {
	if p.Kind != hw.KindGPU {
		return Result{}, fmt.Errorf("sim: platform %q is not a GPU platform", p.Name)
	}
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	if err := w.Validate(); err != nil {
		return Result{}, err
	}
	if w.Kind != hw.KindGPU {
		return Result{}, fmt.Errorf("sim: workload %q is not a GPU workload", w.Name)
	}
	gov := nvgov.New(p.GPU)
	if err := gov.SetPowerCap(totalCap); err != nil {
		return Result{}, err
	}
	gov.SetSMOffset(smOffset)
	gov.SetMemOffset(memOffset)

	var phases []PhaseResult
	for i := range w.Phases {
		phases = append(phases, solveGPUPhase(gov, p, &w.Phases[i]))
	}
	return aggregate(w, phases), nil
}

// RunGPUMemPower is RunGPU with the allocation expressed as a memory
// power budget: the memory clock is set to the highest value whose
// estimated power fits the budget, mirroring how COORD programs the card.
func RunGPUMemPower(p hw.Platform, w *workload.Workload, totalCap, memBudget units.Power) (Result, error) {
	if p.Kind != hw.KindGPU {
		return Result{}, fmt.Errorf("sim: platform %q is not a GPU platform", p.Name)
	}
	clock := p.GPU.Mem.ClockForPower(memBudget)
	return RunGPU(p, w, totalCap, clock)
}

func solveGPUPhase(gov *nvgov.Governor, p hw.Platform, ph *workload.Phase) PhaseResult {
	act := ph.Activity(0.5)
	var state nvgov.State
	var op perfmodel.OperatingPoint
	for i := 0; i < maxIterations; i++ {
		state = gov.Actuate(act)
		op = solveGPUPoint(p, ph, state)
		next := ph.Activity(op.StallFrac)
		if math.Abs(next-act) < convergeEps {
			act = next
			break
		}
		act += damping * (next - act)
	}
	state = gov.Actuate(act)
	op = solveGPUPoint(p, ph, state)
	act = ph.Activity(op.StallFrac)

	memPower := p.GPU.Mem.Power(state.MemClock)
	return PhaseResult{
		Phase:        ph.Name,
		Weight:       ph.Weight,
		Rate:         op.Rate,
		ProcPower:    p.GPU.IdleBoard + p.GPU.SMPower(state.SMClock, act),
		MemPower:     memPower,
		Freq:         state.SMClock,
		Duty:         1,
		MemBandwidth: op.BandwidthUsed,
		ComputeUtil:  op.ComputeUtil,
		MemUtil:      op.MemUtil,
		StallFrac:    op.StallFrac,
		Throttled:    state.PowerLimited,
		AtFloor:      state.AtFloor,
		Activity:     act,
	}
}

// gpuMLPFloor is the fraction of pattern bandwidth the memory system
// sustains with the SMs at their minimum clock: memory requests are
// issued by warps, so a deeply down-clocked SM array cannot keep the full
// request stream in flight. This is what bends memory-intensive
// applications into the paper's category II at small board caps — pushing
// power to memory starves the SMs that feed it.
const gpuMLPFloor = 0.5

func solveGPUPoint(p hw.Platform, ph *workload.Phase, state nvgov.State) perfmodel.OperatingPoint {
	computeCap := units.Rate(p.GPU.PeakComputeRate(state.SMClock).OpsPerSecond() * ph.ComputeEff)
	smRatio := state.SMClock.Hz() / p.GPU.SMClockNom.Hz()
	issue := gpuMLPFloor + (1-gpuMLPFloor)*smRatio
	memCap := units.Bandwidth(p.GPU.Mem.PeakBandwidth(state.MemClock).BytesPerSecond() * ph.BandwidthEff * issue)
	return perfmodel.Solve(ph, computeCap, memCap)
}

// aggregate combines per-phase results into a workload result. Phases run
// sequentially; with weight w_i of the total work at rate R_i, the
// aggregate rate is the weighted harmonic mean and powers are
// time-weighted.
func aggregate(w *workload.Workload, phases []PhaseResult) Result {
	var res Result
	res.Phases = phases
	totalTime := 0.0
	for _, pr := range phases {
		if pr.Rate <= 0 {
			totalTime = math.Inf(1)
			break
		}
		totalTime += pr.Weight / pr.Rate.OpsPerSecond()
	}
	if totalTime <= 0 || math.IsInf(totalTime, 0) {
		return res
	}
	res.UnitRate = units.Rate(1 / totalTime)
	res.Perf = res.UnitRate.OpsPerSecond() * w.PerfPerUnitRate
	for _, pr := range phases {
		share := (pr.Weight / pr.Rate.OpsPerSecond()) / totalTime
		res.ProcPower += units.Power(share * pr.ProcPower.Watts())
		res.MemPower += units.Power(share * pr.MemPower.Watts())
		res.ComputeUtil += share * pr.ComputeUtil
		res.MemUtil += share * pr.MemUtil
		res.StallFrac += share * pr.StallFrac
		res.Throttled = res.Throttled || pr.Throttled
		res.AtFloor = res.AtFloor || pr.AtFloor
	}
	res.TotalPower = res.ProcPower + res.MemPower
	return res
}
