package corun

import (
	"math"
	"testing"

	"repro/internal/hw"
	"repro/internal/units"
	"repro/internal/workload"
)

func ivy(t *testing.T) hw.Platform {
	t.Helper()
	p, err := hw.PlatformByName("ivybridge")
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func wl(t *testing.T, name string) workload.Workload {
	t.Helper()
	w, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestRunInputValidation(t *testing.T) {
	p := ivy(t)
	a := Job{Workload: wl(t, "dgemm"), CoreFrac: 0.5}
	b := Job{Workload: wl(t, "stream"), CoreFrac: 0.5}

	xp, _ := hw.PlatformByName("titanxp")
	if _, err := Run(xp, a, b, 200, 110); err == nil {
		t.Error("GPU platform accepted")
	}
	bad := a
	bad.CoreFrac = 0
	if _, err := Run(p, bad, b, 200, 110); err == nil {
		t.Error("zero core fraction accepted")
	}
	bad = a
	bad.CoreFrac = 0.8
	if _, err := Run(p, bad, b, 200, 110); err == nil {
		t.Error("over-committed cores accepted")
	}
	gw := Job{Workload: wl(t, "sgemm"), CoreFrac: 0.5}
	if _, err := Run(p, gw, b, 200, 110); err == nil {
		t.Error("GPU workload accepted")
	}
}

func TestCoRunSlowdownsBounded(t *testing.T) {
	// Each tenant on half the cores cannot beat itself on the whole node,
	// and weighted speedup stays within [0, 2].
	p := ivy(t)
	a := Job{Workload: wl(t, "dgemm"), CoreFrac: 0.5}
	b := Job{Workload: wl(t, "stream"), CoreFrac: 0.5}
	res, err := Run(p, a, b, 200, 110)
	if err != nil {
		t.Fatal(err)
	}
	if res.SlowdownA > 1.001 || res.SlowdownB > 1.001 {
		t.Errorf("co-run tenant beat its solo run: %+v", res)
	}
	if res.SlowdownA <= 0 || res.SlowdownB <= 0 {
		t.Errorf("zero slowdowns: %+v", res)
	}
	if res.WeightedSpeedup <= 0 || res.WeightedSpeedup > 2 {
		t.Errorf("weighted speedup %v out of range", res.WeightedSpeedup)
	}
}

func TestComplementaryPairCoRunsWell(t *testing.T) {
	// DGEMM (compute bound) + STREAM (memory bound) are complementary:
	// co-running them should preserve most of each one's solo
	// performance, giving a weighted speedup well above 1 (better than
	// time slicing). Two STREAMs fight for the same bandwidth and land
	// near 1.
	p := ivy(t)
	mix, err := Run(p,
		Job{Workload: wl(t, "dgemm"), CoreFrac: 0.5},
		Job{Workload: wl(t, "stream"), CoreFrac: 0.5},
		220, 120)
	if err != nil {
		t.Fatal(err)
	}
	same, err := Run(p,
		Job{Workload: wl(t, "stream"), CoreFrac: 0.5},
		Job{Workload: wl(t, "stream"), CoreFrac: 0.5},
		220, 120)
	if err != nil {
		t.Fatal(err)
	}
	if mix.WeightedSpeedup <= same.WeightedSpeedup {
		t.Errorf("complementary pair %v should beat same-pair %v",
			mix.WeightedSpeedup, same.WeightedSpeedup)
	}
	if mix.WeightedSpeedup < 1.1 {
		t.Errorf("complementary co-run speedup %v, want > 1.1", mix.WeightedSpeedup)
	}
	// Two identical tenants split the node symmetrically.
	if math.Abs(same.SlowdownA-same.SlowdownB) > 0.02 {
		t.Errorf("identical tenants asymmetric: %v vs %v", same.SlowdownA, same.SlowdownB)
	}
}

func TestSharedCapsRespected(t *testing.T) {
	p := ivy(t)
	for _, procCap := range []units.Power{120, 160, 200} {
		for _, memCap := range []units.Power{90, 110} {
			res, err := Run(p,
				Job{Workload: wl(t, "dgemm"), CoreFrac: 0.6},
				Job{Workload: wl(t, "mg"), CoreFrac: 0.4},
				procCap, memCap)
			if err != nil {
				t.Fatal(err)
			}
			if res.ProcPower > procCap+1 {
				t.Errorf("proc=%v mem=%v: package power %v over shared cap", procCap, memCap, res.ProcPower)
			}
			if res.MemPower > memCap+1 {
				t.Errorf("proc=%v mem=%v: DRAM power %v over shared cap", procCap, memCap, res.MemPower)
			}
		}
	}
}

func TestMoreCoresMoreComputePerf(t *testing.T) {
	// DGEMM's performance grows with its core share when power is ample.
	p := ivy(t)
	stream := wl(t, "stream")
	dgemm := wl(t, "dgemm")
	prev := -1.0
	for _, frac := range []float64{0.3, 0.5, 0.7} {
		res, err := Run(p,
			Job{Workload: dgemm, CoreFrac: frac},
			Job{Workload: stream, CoreFrac: 1 - frac},
			0, 0)
		if err != nil {
			t.Fatal(err)
		}
		if res.PerfA < prev {
			t.Fatalf("DGEMM perf not growing with cores at %v", frac)
		}
		prev = res.PerfA
	}
}

func TestBestPartitionFavorsComputeBoundTenant(t *testing.T) {
	// Pairing compute-bound DGEMM with memory-bound STREAM: the best
	// partition gives DGEMM the larger core share (STREAM cannot feed
	// more cores anyway).
	p := ivy(t)
	parts, best, err := BestPartition(p, wl(t, "dgemm"), wl(t, "stream"), 220, 120, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) < 5 {
		t.Fatalf("partition sweep too coarse: %d", len(parts))
	}
	if parts[best].FracA < 0.5 {
		t.Errorf("best DGEMM share = %v, want >= 0.5", parts[best].FracA)
	}
	// The best beats the naive even split.
	evenIdx := -1
	for i, pt := range parts {
		if math.Abs(pt.FracA-0.5) < 0.01 {
			evenIdx = i
		}
	}
	if evenIdx >= 0 && parts[best].WeightedSpeedup < parts[evenIdx].WeightedSpeedup-1e-9 {
		t.Error("best partition below the even split")
	}
	// Degenerate step falls back to the default.
	if _, _, err := BestPartition(p, wl(t, "dgemm"), wl(t, "stream"), 220, 120, -1); err != nil {
		t.Error(err)
	}
}

func TestAvgPhaseCollapsesMultiPhase(t *testing.T) {
	w := wl(t, "bt")
	ph := avgPhase(&w)
	if ph.Weight != 1 {
		t.Error("average phase weight")
	}
	if ph.OpsPerUnit <= 0 || ph.BytesPerUnit <= 0 {
		t.Error("average phase lost its work")
	}
	if err := ph.Validate(); err != nil {
		t.Errorf("average phase invalid: %v", err)
	}
	// Averages stay within the per-phase extremes.
	lo, hi := math.Inf(1), 0.0
	for _, p := range w.Phases {
		lo = math.Min(lo, p.BytesPerUnit)
		hi = math.Max(hi, p.BytesPerUnit)
	}
	if ph.BytesPerUnit < lo || ph.BytesPerUnit > hi {
		t.Errorf("average bytes %v outside [%v, %v]", ph.BytesPerUnit, lo, hi)
	}
}
