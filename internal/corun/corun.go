// Package corun extends the power-bounded node model to two co-running
// jobs — the multi-task setting the paper's conclusion defers to future
// work. The node's cores are partitioned between the jobs, the memory
// system's bandwidth is shared, and — crucially — the package power cap
// is shared too: RAPL caps the package as a whole, so one job's activity
// eats the other's frequency headroom.
//
// The interesting coordination question is the partition: how many cores
// (and implicitly how much of the package power) each job should get. A
// memory-bound job wastes cores it cannot feed; pairing it with a
// compute-bound neighbour and shifting cores toward the latter raises
// combined throughput — the co-run analogue of the paper's
// cross-component balance.
package corun

import (
	"fmt"
	"math"

	"repro/internal/hw"
	"repro/internal/perfmodel"
	"repro/internal/rapl"
	"repro/internal/sim"
	"repro/internal/units"
	"repro/internal/workload"
)

// Job is one co-running tenant: a workload restricted to a share of the
// node's cores.
type Job struct {
	// Workload is the tenant's benchmark. Multi-phase workloads use
	// their work-weighted average characteristics for co-running (phases
	// of different tenants interleave arbitrarily, so only averages are
	// meaningful).
	Workload workload.Workload
	// CoreFrac is the fraction of cores assigned, in (0, 1).
	CoreFrac float64
}

// Result is the co-run outcome.
type Result struct {
	// PerfA and PerfB are each tenant's performance in its own unit.
	PerfA, PerfB float64
	// SlowdownA and SlowdownB are each tenant's performance relative to
	// running alone on the whole node under the same caps.
	SlowdownA, SlowdownB float64
	// WeightedSpeedup is the co-scheduling figure of merit:
	// (PerfA/aloneA + PerfB/aloneB) — above 1 means co-running beats
	// time-slicing the node.
	WeightedSpeedup float64
	// ProcPower and MemPower are the shared actual draws.
	ProcPower, MemPower units.Power
	// Freq and Duty are the shared package state.
	Freq units.Frequency
	Duty float64
}

// avgPhase collapses a workload to its work-weighted average phase.
func avgPhase(w *workload.Workload) workload.Phase {
	var ph workload.Phase
	ph.Name = w.Name + "-avg"
	ph.Weight = 1
	var overlap, bwEff, compEff, actBase, actStall float64
	for _, p := range w.Phases {
		ph.OpsPerUnit += p.Weight * p.OpsPerUnit
		ph.BytesPerUnit += p.Weight * p.BytesPerUnit
		ph.RandomFrac += p.Weight * p.RandomFrac
		overlap += p.Weight * p.Overlap
		bwEff += p.Weight * p.BandwidthEff
		compEff += p.Weight * p.ComputeEff
		actBase += p.Weight * p.ActivityBase
		actStall += p.Weight * p.StallActivity
	}
	ph.Overlap = overlap
	ph.BandwidthEff = bwEff
	ph.ComputeEff = compEff
	ph.ActivityBase = actBase
	ph.StallActivity = actStall
	return ph
}

// Run simulates jobs a and b co-running on CPU platform p under shared
// package and DRAM caps. CoreFrac values must be positive and sum to at
// most 1.
func Run(p hw.Platform, a, b Job, procCap, memCap units.Power) (Result, error) {
	if p.Kind != hw.KindCPU {
		return Result{}, fmt.Errorf("corun: platform %q is not a CPU platform", p.Name)
	}
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	for _, j := range []Job{a, b} {
		if err := j.Workload.Validate(); err != nil {
			return Result{}, err
		}
		if j.Workload.Kind != hw.KindCPU {
			return Result{}, fmt.Errorf("corun: workload %q is not a CPU workload", j.Workload.Name)
		}
		if j.CoreFrac <= 0 {
			return Result{}, fmt.Errorf("corun: non-positive core fraction for %q", j.Workload.Name)
		}
	}
	if a.CoreFrac+b.CoreFrac > 1.0001 {
		return Result{}, fmt.Errorf("corun: core fractions sum to %v > 1", a.CoreFrac+b.CoreFrac)
	}

	ctrl := rapl.NewController(p.CPU, p.DRAM)
	if err := ctrl.SetLimit(rapl.DomainPackage, procCap); err != nil {
		return Result{}, err
	}
	if err := ctrl.SetLimit(rapl.DomainDRAM, memCap); err != nil {
		return Result{}, err
	}

	phA, phB := avgPhase(&a.Workload), avgPhase(&b.Workload)
	res, err := solveCoRun(ctrl, p, a, b, &phA, &phB)
	if err != nil {
		return Result{}, err
	}

	// Baselines: each tenant alone on the whole node under the same caps.
	aloneA, err := sim.RunCPU(p, &a.Workload, procCap, memCap)
	if err != nil {
		return Result{}, err
	}
	aloneB, err := sim.RunCPU(p, &b.Workload, procCap, memCap)
	if err != nil {
		return Result{}, err
	}
	if aloneA.Perf > 0 {
		res.SlowdownA = res.PerfA / aloneA.Perf
	}
	if aloneB.Perf > 0 {
		res.SlowdownB = res.PerfB / aloneB.Perf
	}
	res.WeightedSpeedup = res.SlowdownA + res.SlowdownB
	return res, nil
}

// mlpFloor mirrors the homogeneous simulator.
const mlpFloor = 0.7

// solveCoRun iterates the shared fixed point: one package state serves
// both tenants; memory bandwidth splits by demand.
func solveCoRun(ctrl *rapl.Controller, p hw.Platform, a, b Job, phA, phB *workload.Phase) (Result, error) {
	actA, actB := phA.Activity(0.5), phB.Activity(0.5)
	var res Result
	for i := 0; i < 80; i++ {
		// Package activity is the core-weighted blend of the tenants'.
		blended := a.CoreFrac*actA + b.CoreFrac*actB +
			(1-a.CoreFrac-b.CoreFrac)*0 // unassigned cores idle
		state := ctrl.ActuatePackage(blended)

		fRatio := state.Freq.Hz() / p.CPU.FNom.Hz()
		issue := state.Duty * (mlpFloor + (1-mlpFloor)*fRatio)
		ceiling := ctrl.DRAMBandwidthCeiling(blendFrac(phA, phB, a, b))

		opA, opB := solveTenants(p, a, b, phA, phB, state, issue, ceiling)

		nextA, nextB := phA.Activity(opA.StallFrac), phB.Activity(opB.StallFrac)
		doneA := math.Abs(nextA-actA) < 1e-4
		doneB := math.Abs(nextB-actB) < 1e-4
		actA += 0.5 * (nextA - actA)
		actB += 0.5 * (nextB - actB)

		res.PerfA = opA.Rate.OpsPerSecond() * a.Workload.PerfPerUnitRate
		res.PerfB = opB.Rate.OpsPerSecond() * b.Workload.PerfPerUnitRate
		res.Freq, res.Duty = state.Freq, state.Duty
		res.ProcPower = ctrl.PackagePower(state, blended)
		totalBW := opA.BandwidthUsed + opB.BandwidthUsed
		res.MemPower = ctrl.DRAMPower(totalBW, blendFrac(phA, phB, a, b))
		if doneA && doneB {
			break
		}
	}
	return res, nil
}

// solveTenants computes both tenants' operating points under a shared
// package state. Memory bandwidth is allocated by proportional demand:
// each tenant first solves against the full remaining capacity, and when
// the combined demand exceeds the ceiling both are scaled back
// proportionally (bandwidth-fair arbitration).
func solveTenants(p hw.Platform, a, b Job, phA, phB *workload.Phase, state rapl.PackageState, issue float64, ceiling units.Bandwidth) (perfmodel.OperatingPoint, perfmodel.OperatingPoint) {
	computeA := units.Rate(p.CPU.PeakComputeRate(state.Freq, state.Duty).OpsPerSecond() * a.CoreFrac * phA.ComputeEff)
	computeB := units.Rate(p.CPU.PeakComputeRate(state.Freq, state.Duty).OpsPerSecond() * b.CoreFrac * phB.ComputeEff)
	peak := p.DRAM.PeakBandwidth().BytesPerSecond() * issue
	patternA := units.Bandwidth(peak * phA.BandwidthEff)
	patternB := units.Bandwidth(peak * phB.BandwidthEff)

	// Unconstrained demands.
	opA := perfmodel.Solve(phA, computeA, patternA)
	opB := perfmodel.Solve(phB, computeB, patternB)
	demand := opA.BandwidthUsed + opB.BandwidthUsed
	shared := units.Bandwidth(math.Min(peak, ceiling.BytesPerSecond()))
	if demand <= shared {
		return opA, opB
	}
	// Contended: scale each tenant's effective capacity by the fair
	// share of its demand.
	scale := shared.BytesPerSecond() / demand.BytesPerSecond()
	capA := units.Bandwidth(opA.BandwidthUsed.BytesPerSecond() * scale)
	capB := units.Bandwidth(opB.BandwidthUsed.BytesPerSecond() * scale)
	opA = perfmodel.SolveThrottled(phA, computeA, patternA, capA)
	opB = perfmodel.SolveThrottled(phB, computeB, patternB, capB)
	return opA, opB
}

// blendFrac returns the demand-weighted random-access fraction of the
// two tenants (approximated with byte weights).
func blendFrac(phA, phB *workload.Phase, a, b Job) float64 {
	wa := phA.BytesPerUnit * a.CoreFrac
	wb := phB.BytesPerUnit * b.CoreFrac
	if wa+wb == 0 {
		return 0
	}
	return (phA.RandomFrac*wa + phB.RandomFrac*wb) / (wa + wb)
}

// Partition is a candidate core split evaluated by BestPartition.
type Partition struct {
	FracA           float64
	Result          Result
	WeightedSpeedup float64
}

// BestPartition sweeps core splits between the two workloads under the
// given caps and returns every candidate plus the index of the best by
// weighted speedup — the co-run coordination decision.
func BestPartition(p hw.Platform, wa, wb workload.Workload, procCap, memCap units.Power, step float64) ([]Partition, int, error) {
	if step <= 0 || step >= 0.5 {
		step = 0.1
	}
	var parts []Partition
	bestIdx := -1
	for frac := step; frac < 1-step/2; frac += step {
		res, err := Run(p, Job{Workload: wa, CoreFrac: frac},
			Job{Workload: wb, CoreFrac: 1 - frac}, procCap, memCap)
		if err != nil {
			return nil, -1, err
		}
		parts = append(parts, Partition{FracA: frac, Result: res, WeightedSpeedup: res.WeightedSpeedup})
		if bestIdx < 0 || res.WeightedSpeedup > parts[bestIdx].WeightedSpeedup {
			bestIdx = len(parts) - 1
		}
	}
	if bestIdx < 0 {
		return nil, -1, fmt.Errorf("corun: empty partition sweep")
	}
	return parts, bestIdx, nil
}
