// Package allocclient is a resilient client for the allocsvc HTTP API.
//
// The client spreads requests over N shards with a consistent-hash
// ring keyed by the same content fingerprint allocsvc uses for request
// coalescing (platform + workload + quantized budget), so each shard's
// memo and profile caches stay hot for its slice of the key space. A
// per-shard circuit breaker trips on consecutive transport errors,
// timeouts, and 5xx responses; tripped shards are skipped and requests
// fail over to the next live shard on the ring. Retries use capped
// exponential backoff with full jitter and honor the server's
// Retry-After hint on 429. When every shard is unreachable the client
// degrades to computing coordination answers in-process — a degraded
// answer is content-identical to a served one, and responses carry a
// Meta tag so callers can tell served-fresh from served-local.
package allocclient

import (
	"sort"
	"strconv"
)

// fnv1a is the 64-bit FNV-1a hash, the same cheap non-cryptographic
// hash the faults package uses for stream forking. The ring only needs
// a stable, well-spread placement function, not collision resistance.
func fnv1a(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// ringPoint is one virtual node: a hash position owned by a shard.
type ringPoint struct {
	hash  uint64
	shard int
}

// ring is a consistent-hash ring over shard indexes. Each shard owns
// Replicas virtual points; a key is served by the shard owning the
// first point clockwise from the key's hash, and fails over by
// continuing clockwise to the next distinct shard.
type ring struct {
	points []ringPoint
	shards int
}

// newRing places shards on the ring by name so the mapping is a pure
// function of the configured shard list — every client instance with
// the same shard URLs routes identically.
func newRing(names []string, replicas int) *ring {
	if replicas < 1 {
		replicas = 1
	}
	r := &ring{shards: len(names)}
	for i, name := range names {
		for v := 0; v < replicas; v++ {
			r.points = append(r.points, ringPoint{
				hash:  fnv1a(name + "#" + strconv.Itoa(v)),
				shard: i,
			})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		return r.points[a].shard < r.points[b].shard
	})
	return r
}

// order returns every shard index exactly once, in the failover order
// for key: the key's home shard first, then each subsequent distinct
// shard walking clockwise. Walking this list is how the client fails
// over — the next entry is the next-best cache locality for the key.
func (r *ring) order(key string) []int {
	if r.shards == 0 {
		return nil
	}
	h := fnv1a(key)
	start := sort.Search(len(r.points), func(i int) bool {
		return r.points[i].hash >= h
	})
	out := make([]int, 0, r.shards)
	seen := make([]bool, r.shards)
	for i := 0; i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.shard] {
			seen[p.shard] = true
			out = append(out, p.shard)
			if len(out) == r.shards {
				break
			}
		}
	}
	return out
}
