package allocclient

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/allocsvc"
	"repro/internal/faults"
)

var update = flag.Bool("update", false, "rewrite golden files")

// rewriteTransport maps logical shard hosts to real httptest
// listeners. The client's ring hashes shard URLs, and httptest ports
// vary per run — routing on stable logical names ("shard-0") is what
// makes the chaos traces byte-identical across runs.
type rewriteTransport struct {
	hosts map[string]string
	inner http.RoundTripper
}

func (t *rewriteTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	r2 := r.Clone(r.Context())
	if real, ok := t.hosts[r2.URL.Host]; ok {
		r2.URL.Host = real
	}
	return t.inner.RoundTrip(r2)
}

// chaosHarness is a 3-shard allocsvc topology behind seeded chaos
// proxies, driven sequentially with a fake clock so every run of a
// seed reproduces the same fates, breaker transitions, and trace.
type chaosHarness struct {
	t        *testing.T
	proxies  []*faults.ChaosProxy
	client   *Client
	clk      *fakeClock
	trace    []string
	shardIdx map[string]int // logical URL -> shard index
}

const chaosShards = 3

func newChaosHarness(t *testing.T, seed uint64, spec faults.ProxySpec) *chaosHarness {
	t.Helper()
	h := &chaosHarness{t: t, clk: &fakeClock{}, shardIdx: map[string]int{}}
	hosts := map[string]string{}
	urls := make([]string, chaosShards)
	for i := 0; i < chaosShards; i++ {
		svc := allocsvc.New(allocsvc.Config{Workers: 2})
		proxy := faults.NewChaosProxy(svc.Handler(), spec, seed, strconv.Itoa(i))
		srv := httptest.NewServer(proxy)
		t.Cleanup(srv.Close)
		h.proxies = append(h.proxies, proxy)
		urls[i] = "http://shard-" + strconv.Itoa(i)
		hosts["shard-"+strconv.Itoa(i)] = strings.TrimPrefix(srv.URL, "http://")
		h.shardIdx[urls[i]] = i
	}
	jitter := faults.NewRNG(seed).Fork("client.jitter")
	c, err := New(Config{
		Shards:  urls,
		Breaker: BreakerConfig{Threshold: 2, Cooldown: 50 * time.Millisecond},
		Timeout: 2 * time.Second,
		Now:     h.clk.now,
		Rand:    jitter.Float64,
		Sleep:   func(ctx context.Context, d time.Duration) error { return nil },
		Transport: &rewriteTransport{
			hosts: hosts,
			// Keep-alive pools would make "does this request reuse a
			// connection the last fate severed?" depend on timing; one
			// connection per request keeps fates independent.
			inner: &http.Transport{DisableKeepAlives: true},
		},
		OnTransition: func(shard string, from, to BreakerState) {
			h.trace = append(h.trace,
				fmt.Sprintf("breaker shard=%d %s->%s", h.shardIdx[shard], from, to))
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	h.client = c
	return h
}

type chaosStats struct {
	total, fresh, degraded, failed int
}

func (s chaosStats) availability() float64 {
	if s.total == 0 {
		return 0
	}
	return float64(s.fresh+s.degraded) / float64(s.total)
}

// drive issues n sequential coord/plan requests, applying the outage
// schedule by global request number, advancing the fake clock 10ms per
// request (breaker cooldown 50ms = 5 requests).
func (h *chaosHarness) drive(n int, outages []faults.ShardOutage) chaosStats {
	h.t.Helper()
	killAt := map[uint64][]int{}
	restartAt := map[uint64][]int{}
	for _, o := range outages {
		killAt[o.At] = append(killAt[o.At], o.Shard)
		restartAt[o.At+o.For] = append(restartAt[o.At+o.For], o.Shard)
	}
	mix := []struct {
		platform, workload string
	}{
		{"haswell", "stream"},
		{"ivybridge", "dgemm"},
		{"haswell", "ft"},
		{"ivybridge", "mg"},
	}
	var stats chaosStats
	ctx := context.Background()
	for i := 0; i < n; i++ {
		// Restarts apply before kills so a kill and a restart landing
		// on the same request number leave the shard down.
		for _, s := range restartAt[uint64(i)] {
			h.proxies[s].Restart()
			h.trace = append(h.trace, fmt.Sprintf("start shard=%d at=%03d", s, i))
		}
		for _, s := range killAt[uint64(i)] {
			h.proxies[s].Kill()
			h.trace = append(h.trace, fmt.Sprintf("kill  shard=%d at=%03d", s, i))
		}
		h.clk.advance(10 * time.Millisecond)

		m := mix[i%len(mix)]
		budget := 120 + float64((i*7)%140)
		var meta Meta
		var err error
		route := allocsvc.RouteCoord
		if i%5 == 4 {
			route = allocsvc.RoutePlan
			_, meta, err = h.client.Plan(ctx, allocsvc.PlanRequest{
				Platform: m.platform, Workload: m.workload, Budget: budget,
			})
		} else {
			_, meta, err = h.client.Coord(ctx, allocsvc.CoordRequest{
				Platform: m.platform, Workload: m.workload, Budget: budget,
			})
		}
		stats.total++
		shard := "-"
		if idx, ok := h.shardIdx[meta.Shard]; ok {
			shard = strconv.Itoa(idx)
		}
		outcome := meta.Source
		switch {
		case err != nil:
			outcome = "error"
			stats.failed++
		case meta.Source == SourceLocal:
			stats.degraded++
		default:
			stats.fresh++
		}
		h.trace = append(h.trace, fmt.Sprintf(
			"req %03d route=%s shard=%s source=%s attempts=%d failovers=%d",
			i, strings.TrimPrefix(route, "/v1/"), shard, outcome, meta.Attempts, meta.Failovers))
	}
	return stats
}

// TestChaosSingleShardDeathZeroLoss is the chaossmoke availability
// gate: with one of three shards killed mid-run, every request must be
// served fresh via ring failover — zero degraded, zero errors.
func TestChaosSingleShardDeathZeroLoss(t *testing.T) {
	h := newChaosHarness(t, 7, faults.ProxySpec{})
	stats := h.drive(100, []faults.ShardOutage{{Shard: 0, At: 20, For: 40}})

	if avail := stats.availability(); avail < 0.99 {
		t.Fatalf("availability %.4f during single-shard death, gate requires >= 0.99", avail)
	}
	if stats.failed != 0 || stats.degraded != 0 || stats.fresh != stats.total {
		t.Fatalf("stats %+v: want every request served fresh (two shards stayed live)", stats)
	}

	// The dead shard's breaker must have tripped, cycled probes while
	// down, and closed again after restart; the live shards' breakers
	// must never have moved.
	var transitions []string
	for _, line := range h.trace {
		if strings.HasPrefix(line, "breaker ") {
			transitions = append(transitions, line)
		}
	}
	if len(transitions) < 3 {
		t.Fatalf("breaker transitions %v: want trip, probe cycles, recovery", transitions)
	}
	for _, tr := range transitions {
		if !strings.Contains(tr, "shard=0") {
			t.Fatalf("live shard breaker moved: %q", tr)
		}
	}
	if want := "breaker shard=0 closed->open"; transitions[0] != want {
		t.Fatalf("first transition %q, want %q", transitions[0], want)
	}
	if want := "breaker shard=0 half-open->closed"; transitions[len(transitions)-1] != want {
		t.Fatalf("last transition %q, want %q (recovery probe)", transitions[len(transitions)-1], want)
	}
	for _, tr := range transitions[1 : len(transitions)-1] {
		if tr != "breaker shard=0 open->half-open" && tr != "breaker shard=0 half-open->open" {
			t.Fatalf("mid-outage transition %q, want probe cycling", tr)
		}
	}
}

// TestChaosTreeBlackoutTypedRefusal pins /v1/tree's degraded-mode
// contract: with every shard down, Coord degrades to a local answer
// but Tree must refuse with the typed ErrNoLocalFallback (wrapping
// ErrUnavailable) — never a silent local solve, never an untyped
// error. After the fleet restarts, the same tree request is served
// fresh again.
func TestChaosTreeBlackoutTypedRefusal(t *testing.T) {
	h := newChaosHarness(t, 11, faults.ProxySpec{})
	ctx := context.Background()
	treq := allocsvc.TreeRequest{
		Budget: 700,
		Racks: []allocsvc.TreeRackJSON{
			{ID: "cpu", Nodes: []allocsvc.TreeNodeJSON{
				{ID: "cpu/0", Platform: "ivybridge", Workload: "stream", Priority: 1},
				{ID: "cpu/1", Platform: "haswell", Workload: "dgemm"},
			}},
			{ID: "gpu", CapWatts: 300, Nodes: []allocsvc.TreeNodeJSON{
				{ID: "gpu/0", Platform: "titanv", Workload: "gpustream"},
			}},
		},
	}

	// Fleet up: the tree solves fresh from a shard.
	h.clk.advance(10 * time.Millisecond)
	resp, meta, err := h.client.Tree(ctx, treq)
	if err != nil {
		t.Fatalf("tree with live fleet: %v", err)
	}
	if meta.Source != SourceShard || len(resp.Grants)+len(resp.Shed) != 3 {
		t.Fatalf("meta %+v, grants %d shed %d: want a fresh 3-leaf answer",
			meta, len(resp.Grants), len(resp.Shed))
	}

	// Blackout: every shard dies.
	for _, p := range h.proxies {
		p.Kill()
	}
	h.clk.advance(10 * time.Millisecond)

	// Coord still answers, degraded-local.
	if _, m, err := h.client.Coord(ctx, allocsvc.CoordRequest{
		Platform: "haswell", Workload: "stream", Budget: 150,
	}); err != nil || m.Source != SourceLocal {
		t.Fatalf("coord during blackout: err=%v source=%q, want degraded-local", err, m.Source)
	}

	// Tree must refuse with the typed sentinel, matchable both ways.
	_, _, err = h.client.Tree(ctx, treq)
	if err == nil {
		t.Fatal("tree during blackout: got an answer, want a typed refusal")
	}
	if !errors.Is(err, ErrNoLocalFallback) {
		t.Fatalf("tree during blackout: %v, want errors.Is ErrNoLocalFallback", err)
	}
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("tree during blackout: %v, want errors.Is ErrUnavailable too", err)
	}

	// Schedule's refusal stays untyped — ErrNoLocalFallback is Tree's.
	if _, _, err := h.client.Schedule(ctx, allocsvc.ScheduleRequest{
		Budget: 300,
		Nodes:  []allocsvc.NodeJSON{{ID: "n1", Platform: "haswell"}},
		Jobs:   []allocsvc.JobJSON{{ID: "j1", Workload: "stream"}},
	}); !errors.Is(err, ErrUnavailable) || errors.Is(err, ErrNoLocalFallback) {
		t.Fatalf("schedule during blackout: %v, want plain ErrUnavailable", err)
	}

	// Fleet restarts; wait out the breaker cooldown and solve again.
	for _, p := range h.proxies {
		p.Restart()
	}
	h.clk.advance(100 * time.Millisecond)
	resp2, meta2, err := h.client.Tree(ctx, treq)
	if err != nil {
		t.Fatalf("tree after restart: %v", err)
	}
	if meta2.Source != SourceShard {
		t.Fatalf("meta after restart %+v, want a fresh shard answer", meta2)
	}
	if resp2.Granted != resp.Granted || resp2.TotalPerf != resp.TotalPerf {
		t.Fatalf("tree answer drifted across the blackout: %+v vs %+v", resp2, resp)
	}
}

// TestChaosSeededGoldenTrace runs the full chaos gauntlet — 429
// storms, dropped connections, stalls, a seeded kill schedule, and a
// forced all-shard blackout — and pins the complete request/breaker
// trace against a golden file. Two runs of the same seed must be
// byte-identical, and availability must be 100%: every request is
// served fresh or degraded-local, never an error.
func TestChaosSeededGoldenTrace(t *testing.T) {
	const (
		seed = 42
		n    = 240
	)
	spec := faults.ProxySpec{
		Busy: 0.08, Drop: 0.05, Stall: 0.03,
		StallFor:       20 * time.Millisecond,
		RetryAfterSecs: 1,
	}
	// The seeded schedule covers the first 140 requests; a forced
	// all-shard blackout at 150–170 then guarantees the golden trace
	// covers degraded-local serving, whatever the seed drew.
	outages := faults.ShardKillSchedule(seed, chaosShards, 140, 70, 18)
	outages = append(outages,
		faults.ShardOutage{Shard: 0, At: 150, For: 20},
		faults.ShardOutage{Shard: 1, At: 150, For: 20},
		faults.ShardOutage{Shard: 2, At: 150, For: 20})

	run := func() ([]string, chaosStats) {
		h := newChaosHarness(t, seed, spec)
		stats := h.drive(n, outages)
		return h.trace, stats
	}
	trace1, stats := run()
	trace2, _ := run()

	got := strings.Join(trace1, "\n") + "\n"
	if again := strings.Join(trace2, "\n") + "\n"; again != got {
		t.Fatalf("same seed produced different traces:\nrun1:\n%s\nrun2:\n%s", got, again)
	}

	if stats.failed != 0 {
		t.Fatalf("stats %+v: %d requests surfaced errors; chaos availability must be 100%%", stats, stats.failed)
	}
	if stats.degraded == 0 {
		t.Fatalf("stats %+v: blackout window should have forced degraded-local serving", stats)
	}
	if avail := stats.availability(); avail != 1.0 {
		t.Fatalf("availability %.4f, want 1.0 (fresh or degraded, never an error)", avail)
	}

	golden := filepath.Join("testdata", "chaos_trace.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (rerun with -update to regenerate): %v", err)
	}
	if string(want) != got {
		t.Fatalf("trace diverged from golden (rerun with -update if intended)\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestChaosRecoordShardDeathFailover pins /v1/recoord's availability
// contract on phased ML workloads: the route fails over between shards
// exactly like coord, and under total shard loss it is allowed to
// degrade to a content-identical local answer (the controller is a
// pure function of the request). The storm kills precisely the shard
// the ring pinned the phased requests to, mid-run.
func TestChaosRecoordShardDeathFailover(t *testing.T) {
	h := newChaosHarness(t, 13, faults.ProxySpec{})
	ctx := context.Background()
	reqs := []allocsvc.RecoordRequest{
		{Platform: "h100", Workload: "llmserve", Budget: 350, Rounds: 1},
		{Platform: "h200", Workload: "llmbatch", Budget: 300, Rounds: 1},
		{Platform: "h100", PhaseSpec: "seq=1024,out=512", Budget: 400, Rounds: 1},
	}

	// Fleet up: every phased request answers fresh; remember which
	// shard the ring pinned each to, and the answers themselves.
	h.clk.advance(10 * time.Millisecond)
	baseline := make([]allocsvc.RecoordResponse, len(reqs))
	pinned := make([]int, len(reqs))
	for i, req := range reqs {
		resp, meta, err := h.client.Recoord(ctx, req)
		if err != nil {
			t.Fatalf("recoord %d with live fleet: %v", i, err)
		}
		if meta.Source != SourceShard {
			t.Fatalf("recoord %d source %q, want fresh shard answer", i, meta.Source)
		}
		if resp.OnlinePerf < resp.StaticPerf*(1-1e-9) {
			t.Fatalf("recoord %d: online %.6g worse than static %.6g",
				i, resp.OnlinePerf, resp.StaticPerf)
		}
		baseline[i] = resp
		pinned[i] = h.shardIdx[meta.Shard]
	}

	// Kill the shard serving the first phased request, mid-storm. The
	// ring must fail the route over to a live shard with no error and
	// no degradation — two shards are still up.
	h.proxies[pinned[0]].Kill()
	h.trace = append(h.trace, fmt.Sprintf("kill  shard=%d", pinned[0]))
	h.clk.advance(10 * time.Millisecond)
	for i, req := range reqs {
		resp, meta, err := h.client.Recoord(ctx, req)
		if err != nil {
			t.Fatalf("recoord %d after shard death: %v", i, err)
		}
		if meta.Source != SourceShard {
			t.Fatalf("recoord %d after shard death: source %q, want failover to a live shard", i, meta.Source)
		}
		if got := h.shardIdx[meta.Shard]; got == pinned[0] {
			t.Fatalf("recoord %d served by the dead shard %d", i, got)
		}
		if pinned[i] == pinned[0] && meta.Failovers == 0 && meta.Attempts < 2 {
			t.Fatalf("recoord %d was pinned to the dead shard but reported no failover: %+v", i, meta)
		}
		if !reflect.DeepEqual(resp, baseline[i]) {
			t.Fatalf("recoord %d answer drifted across failover:\n%+v\nvs\n%+v", i, resp, baseline[i])
		}
	}

	// Blackout: the remaining shards die too. Unlike tree, recoord is
	// allowed to degrade — the local answer must be content-identical
	// to the served one.
	for _, p := range h.proxies {
		p.Kill()
	}
	h.clk.advance(10 * time.Millisecond)
	for i, req := range reqs {
		resp, meta, err := h.client.Recoord(ctx, req)
		if err != nil {
			t.Fatalf("recoord %d during blackout: %v", i, err)
		}
		if meta.Source != SourceLocal {
			t.Fatalf("recoord %d during blackout: source %q, want degraded-local", i, meta.Source)
		}
		if !reflect.DeepEqual(resp, baseline[i]) {
			t.Fatalf("recoord %d degraded answer differs from served:\n%+v\nvs\n%+v", i, resp, baseline[i])
		}
	}

	// Fleet restarts; after the breaker cooldown the route serves
	// fresh again, still byte-stable.
	for _, p := range h.proxies {
		p.Restart()
	}
	h.clk.advance(100 * time.Millisecond)
	resp, meta, err := h.client.Recoord(ctx, reqs[0])
	if err != nil {
		t.Fatalf("recoord after restart: %v", err)
	}
	if meta.Source != SourceShard {
		t.Fatalf("recoord after restart: source %q, want fresh", meta.Source)
	}
	if !reflect.DeepEqual(resp, baseline[0]) {
		t.Fatalf("recoord answer drifted across the blackout:\n%+v\nvs\n%+v", resp, baseline[0])
	}
}
