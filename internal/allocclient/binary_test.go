package allocclient

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"repro/internal/allocsvc"
	"repro/internal/wire"
)

// TestBinaryRoundTrip drives a binary-enabled client against a real
// binary-enabled allocsvc and checks the answers are content-identical
// to the JSON path across all three routes.
func TestBinaryRoundTrip(t *testing.T) {
	svc := allocsvc.New(allocsvc.Config{Workers: 2, Binary: true})
	defer svc.Close(context.Background())
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	bc := newTestClient(t, []string{srv.URL}, nil, func(cfg *Config) { cfg.Binary = true })
	jc := newTestClient(t, []string{srv.URL}, nil, nil)

	ctx := context.Background()
	creq := allocsvc.CoordRequest{Platform: "haswell", Workload: "stream", Budget: 180}
	bresp, bmeta, err := bc.Coord(ctx, creq)
	if err != nil {
		t.Fatalf("binary coord: %v", err)
	}
	if !bmeta.Binary {
		t.Fatal("binary client got a JSON coord answer from a binary-enabled shard")
	}
	jresp, jmeta, err := jc.Coord(ctx, creq)
	if err != nil {
		t.Fatalf("json coord: %v", err)
	}
	if jmeta.Binary {
		t.Fatal("json client reported a binary answer")
	}
	if !reflect.DeepEqual(bresp, jresp) {
		t.Fatalf("binary and JSON coord answers differ:\n  bin:  %+v\n  json: %+v", bresp, jresp)
	}

	preq := allocsvc.PlanRequest{Platform: "haswell", Workload: "bt", Budget: 160}
	bplan, bmeta, err := bc.Plan(ctx, preq)
	if err != nil {
		t.Fatalf("binary plan: %v", err)
	}
	if !bmeta.Binary {
		t.Fatal("plan did not use the binary protocol")
	}
	jplan, _, err := jc.Plan(ctx, preq)
	if err != nil {
		t.Fatalf("json plan: %v", err)
	}
	if !reflect.DeepEqual(bplan, jplan) {
		t.Fatalf("binary and JSON plans differ:\n  bin:  %+v\n  json: %+v", bplan, jplan)
	}

	sreq := allocsvc.ScheduleRequest{
		Budget: 500,
		Nodes:  []allocsvc.NodeJSON{{ID: "n0", Platform: "haswell"}},
		Jobs:   []allocsvc.JobJSON{{ID: "j0", Workload: "stream"}},
	}
	bsched, bmeta, err := bc.Schedule(ctx, sreq)
	if err != nil {
		t.Fatalf("binary schedule: %v", err)
	}
	if !bmeta.Binary {
		t.Fatal("schedule did not use the binary protocol")
	}
	if len(bsched.Placements) == 0 {
		t.Fatal("binary schedule placed no jobs")
	}
}

// TestBinaryErrorDecoded checks that terminal errors arriving as binary
// frames surface the server's message, not frame bytes.
func TestBinaryErrorDecoded(t *testing.T) {
	svc := allocsvc.New(allocsvc.Config{Workers: 2, Binary: true})
	defer svc.Close(context.Background())
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	c := newTestClient(t, []string{srv.URL}, nil, func(cfg *Config) { cfg.Binary = true })
	_, _, err := c.Coord(context.Background(), allocsvc.CoordRequest{
		Platform: "haswell", Workload: "no-such-workload", Budget: 100,
	})
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusBadRequest {
		t.Fatalf("err = %v, want a 400 StatusError", err)
	}
	if !strings.Contains(se.Msg, "no-such-workload") {
		t.Fatalf("error message lost the server detail: %q", se.Msg)
	}
}

// TestBinaryDemotionOn415 checks the mixed-fleet path: a shard without
// the binary surface answers 415 once, is demoted, and every request —
// including the demoting one — completes over JSON.
func TestBinaryDemotionOn415(t *testing.T) {
	svc := allocsvc.New(allocsvc.Config{Workers: 2}) // Binary NOT enabled
	defer svc.Close(context.Background())
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	c := newTestClient(t, []string{srv.URL}, nil, func(cfg *Config) { cfg.Binary = true })
	req := allocsvc.CoordRequest{Platform: "haswell", Workload: "stream", Budget: 180}
	resp, meta, err := c.Coord(context.Background(), req)
	if err != nil {
		t.Fatalf("coord against a JSON-only shard: %v", err)
	}
	if meta.Binary {
		t.Fatal("JSON-only shard cannot have answered in binary")
	}
	if meta.Source != SourceShard {
		t.Fatalf("source = %q; the 415 must demote, not degrade to local", meta.Source)
	}
	if resp.Status != "ok" {
		t.Fatalf("status = %q, want ok", resp.Status)
	}
	if c.binaryOK[0].Load() {
		t.Fatal("shard still marked binary-capable after a 415")
	}
	// The demotion sticks: the next request goes straight to JSON with
	// a single attempt.
	_, meta, err = c.Coord(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Attempts != 1 {
		t.Fatalf("post-demotion attempts = %d, want 1", meta.Attempts)
	}
}

// TestBinaryPerRequestDemotionOn413 checks the frame-cap path: a shard
// that answers 413 to a binary request (the response outgrew the frame
// format) gets the same request again in JSON immediately — but unlike
// 415, the shard keeps its binary capability for future requests.
func TestBinaryPerRequestDemotionOn413(t *testing.T) {
	svc := allocsvc.New(allocsvc.Config{Workers: 2, Binary: true})
	defer svc.Close(context.Background())
	inner := svc.Handler()
	var binaryHits int
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.Header.Get("Content-Type"), allocsvc.BinaryContentType) {
			binaryHits++
			w.Header().Set("Content-Type", allocsvc.BinaryContentType)
			w.WriteHeader(http.StatusRequestEntityTooLarge)
			w.Write(wire.AppendError(nil, http.StatusRequestEntityTooLarge,
				"binary response exceeds frame cap; retry as JSON"))
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer srv.Close()

	c := newTestClient(t, []string{srv.URL}, nil, func(cfg *Config) { cfg.Binary = true })
	req := allocsvc.CoordRequest{Platform: "haswell", Workload: "stream", Budget: 180}
	resp, meta, err := c.Coord(context.Background(), req)
	if err != nil {
		t.Fatalf("coord through a 413ing shard: %v", err)
	}
	if meta.Binary {
		t.Fatal("the 413 answer cannot have been accepted as binary")
	}
	if meta.Source != SourceShard || resp.Status != "ok" {
		t.Fatalf("want a fresh shard answer, got source=%q status=%q", meta.Source, resp.Status)
	}
	if meta.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (binary 413, then JSON)", meta.Attempts)
	}
	if !c.binaryOK[0].Load() {
		t.Fatal("413 must not demote the shard for the client's lifetime")
	}
	// The next request tries binary again: 413 demotion is per-request.
	before := binaryHits
	if _, _, err := c.Coord(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	if binaryHits != before+1 {
		t.Fatalf("second request made %d binary attempts, want 1", binaryHits-before)
	}
}

// TestPreflightDemotionOnOversizeRequest: a request too large for the
// binary frame format never leaves the client as binary — the encoder's
// ErrFrameTooLarge preflight sends it as JSON on the first attempt.
func TestPreflightDemotionOnOversizeRequest(t *testing.T) {
	svc := allocsvc.New(allocsvc.Config{Workers: 2, Binary: true})
	defer svc.Close(context.Background())
	var binaryAttempts int
	inner := svc.Handler()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.Header.Get("Content-Type"), allocsvc.BinaryContentType) {
			binaryAttempts++
		}
		inner.ServeHTTP(w, r)
	}))
	defer srv.Close()

	c := newTestClient(t, []string{srv.URL}, nil, func(cfg *Config) { cfg.Binary = true })
	// A workload name past the 64 KiB string-field cap cannot encode;
	// the server rejects it on its merits (unknown workload) over JSON,
	// proving the request traveled and failed validation, not encoding.
	req := allocsvc.CoordRequest{
		Platform: "haswell", Workload: strings.Repeat("w", 1<<16+1), Budget: 180,
	}
	_, _, err := c.Coord(context.Background(), req)
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusBadRequest {
		t.Fatalf("err = %v, want the server's 400 StatusError", err)
	}
	if binaryAttempts != 0 {
		t.Fatalf("oversized request attempted binary %d times, want 0", binaryAttempts)
	}
	if !c.binaryOK[0].Load() {
		t.Fatal("preflight fallback must not demote the shard")
	}
}
