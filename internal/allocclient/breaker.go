package allocclient

import (
	"sync"
	"time"
)

// BreakerState is a circuit breaker's position.
type BreakerState int

// Breaker states: Closed passes requests, Open rejects them without
// trying, HalfOpen admits a single probe to test recovery.
const (
	BreakerClosed BreakerState = iota
	BreakerOpen
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// BreakerConfig tunes a per-shard circuit breaker. Zero values take
// the documented defaults.
type BreakerConfig struct {
	// Threshold is the consecutive-failure count that trips the breaker
	// open (default 3).
	Threshold int
	// Cooldown is how long an open breaker waits before admitting a
	// half-open probe (default 2s).
	Cooldown time.Duration
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Threshold < 1 {
		c.Threshold = 3
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 2 * time.Second
	}
	return c
}

// breaker is one shard's circuit breaker: closed → open after
// Threshold consecutive failures, open → half-open after Cooldown,
// half-open → closed on a successful probe or back to open on a failed
// one. Only one probe is admitted per half-open episode; concurrent
// callers see the shard as unavailable until the probe resolves.
type breaker struct {
	cfg BreakerConfig
	now func() time.Time
	// onTransition observes every state change; called with the
	// breaker's mutex held, so hooks must not call back into it.
	onTransition func(from, to BreakerState)

	mu       sync.Mutex
	state    BreakerState
	fails    int
	openedAt time.Time
	probing  bool
}

func newBreaker(cfg BreakerConfig, now func() time.Time, onTransition func(from, to BreakerState)) *breaker {
	return &breaker{cfg: cfg.withDefaults(), now: now, onTransition: onTransition}
}

func (b *breaker) transition(to BreakerState) {
	from := b.state
	if from == to {
		return
	}
	b.state = to
	if b.onTransition != nil {
		b.onTransition(from, to)
	}
}

// allow reports whether a request may be sent to this shard, moving an
// open breaker to half-open once its cooldown has elapsed.
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.now().Sub(b.openedAt) < b.cfg.Cooldown {
			return false
		}
		b.transition(BreakerHalfOpen)
		b.probing = true
		return true
	case BreakerHalfOpen:
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
	return false
}

// success records a request the shard answered sensibly (any HTTP
// response, including 429 — a shard shedding load is alive).
func (b *breaker) success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails = 0
	b.probing = false
	if b.state != BreakerClosed {
		b.transition(BreakerClosed)
	}
}

// failure records a timeout, connect error, or 5xx. A half-open probe
// failure reopens immediately; closed-state failures trip the breaker
// at Threshold.
func (b *breaker) failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
	switch b.state {
	case BreakerHalfOpen:
		b.openedAt = b.now()
		b.transition(BreakerOpen)
	case BreakerClosed:
		b.fails++
		if b.fails >= b.cfg.Threshold {
			b.fails = 0
			b.openedAt = b.now()
			b.transition(BreakerOpen)
		}
	case BreakerOpen:
		// A late failure from a request admitted before the trip;
		// nothing to update.
	}
}

// snapshot returns the current state for gauges and tests.
func (b *breaker) snapshot() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
