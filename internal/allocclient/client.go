package allocclient

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/allocsvc"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

// Response sources reported in Meta.Source.
const (
	// SourceShard: the answer came fresh from an allocsvc shard.
	SourceShard = "shard"
	// SourceLocal: every shard was unavailable and the answer was
	// computed in-process (degraded mode).
	SourceLocal = "degraded-local"
)

// ErrUnavailable reports that no shard could serve the request: every
// breaker was open, or the retry budget was exhausted without a usable
// response. Coord and Plan convert it into a degraded-local answer
// unless Config.DisableDegraded is set.
var ErrUnavailable = errors.New("allocclient: no shard available")

// ErrNoLocalFallback marks routes that cannot be served degraded-local
// even when degraded mode is on: Tree wraps ErrUnavailable in it (match
// either with errors.Is). A tree solve depends on server-side curve
// profiles and admission state, so a local answer would silently
// diverge from the fleet's.
var ErrNoLocalFallback = errors.New("allocclient: route has no degraded-local fallback")

// StatusError is a terminal HTTP error from a shard: the shard is
// healthy but rejected this request (4xx other than 429). It is never
// retried and never triggers degraded mode — a bad request is bad
// everywhere, including locally.
type StatusError struct {
	Code int
	Msg  string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("allocclient: shard returned %d: %s", e.Code, e.Msg)
}

// Config configures a Client. Shards is required; every other field
// has a usable default.
type Config struct {
	// Shards is the allocsvc base URLs forming the ring, e.g.
	// ["http://10.0.0.1:8080", "http://10.0.0.2:8080"]. Order does not
	// affect placement (the ring hashes names), but every client must
	// use the same URL strings to route identically.
	Shards []string
	// Replicas is the virtual points per shard on the ring (default 64).
	Replicas int
	// MaxAttempts bounds total HTTP attempts per request, counting
	// retries and failovers (default max(4, 2*len(Shards))).
	MaxAttempts int
	// Timeout bounds each individual attempt (default 5s). The caller's
	// context bounds the whole call.
	Timeout time.Duration
	// RetryBase / RetryMax shape the capped exponential backoff with
	// full jitter (defaults 50ms / 2s). The server's Retry-After hint
	// overrides the computed backoff on 429.
	RetryBase time.Duration
	RetryMax  time.Duration
	// BudgetQuantum buckets budgets for ring placement (default 1.0
	// watts): nearby budgets share a shard so its profile and memo
	// caches stay hot, the same content-fingerprint discipline allocsvc
	// uses for coalescing. This affects placement only — requests carry
	// the exact budget.
	BudgetQuantum float64
	// Breaker tunes the per-shard circuit breakers.
	Breaker BreakerConfig
	// DisableDegraded turns off the in-process fallback; Coord and Plan
	// then surface ErrUnavailable like Schedule does.
	DisableDegraded bool
	// Binary speaks the compact binary protocol
	// (application/x-pbc-binary) to shards that accept it. A shard that
	// answers 415 is demoted to JSON for the client's lifetime — mixed
	// fleets mid-rollout work without configuration. The two encodings
	// are content-identical, so demotion never changes an answer.
	Binary bool
	// Registry receives client metrics; nil means uninstrumented.
	Registry *telemetry.Registry
	// Transport overrides the per-shard pooled transports (tests).
	Transport http.RoundTripper
	// Now, Rand, and Sleep are injectable for deterministic tests:
	// breaker clocks, backoff jitter, and retry waits. Nil means the
	// real time.Now, a seeded math/rand-free default is NOT provided —
	// nil Rand uses a fixed 0.5 multiplier, keeping production behavior
	// dependency-free and tests explicit.
	Now   func() time.Time
	Rand  func() float64
	Sleep func(ctx context.Context, d time.Duration) error
	// OnTransition observes breaker state changes per shard URL; called
	// synchronously from the breaker, so keep it fast.
	OnTransition func(shard string, from, to BreakerState)
}

func (c Config) withDefaults() Config {
	if c.Replicas < 1 {
		c.Replicas = 64
	}
	if c.MaxAttempts < 1 {
		c.MaxAttempts = 2 * len(c.Shards)
		if c.MaxAttempts < 4 {
			c.MaxAttempts = 4
		}
	}
	if c.Timeout <= 0 {
		c.Timeout = 5 * time.Second
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 50 * time.Millisecond
	}
	if c.RetryMax <= 0 {
		c.RetryMax = 2 * time.Second
	}
	if c.BudgetQuantum <= 0 {
		c.BudgetQuantum = 1.0
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	if c.Rand == nil {
		c.Rand = func() float64 { return 0.5 }
	}
	if c.Sleep == nil {
		c.Sleep = func(ctx context.Context, d time.Duration) error {
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-t.C:
				return nil
			}
		}
	}
	return c
}

// Meta describes how a response was obtained.
type Meta struct {
	// Source is SourceShard or SourceLocal.
	Source string
	// Shard is the base URL that served the response (empty for
	// degraded-local answers).
	Shard string
	// Attempts is the number of HTTP attempts issued; Retries is
	// attempts beyond the first; Failovers counts moves to a different
	// shard than the previous attempt.
	Attempts, Retries, Failovers int
	// Binary reports that the serving shard answered over the binary
	// protocol (always false for degraded-local answers).
	Binary bool
}

// Client is a sharded, breaker-guarded allocsvc client. It is safe for
// concurrent use.
type Client struct {
	cfg      Config
	ring     *ring
	breakers []*breaker
	clients  []*http.Client
	owned    []*http.Transport
	met      clientMetrics
	// binaryOK[i] is whether shard i still accepts the binary protocol;
	// all-true when Config.Binary, cleared per shard on a 415.
	binaryOK []atomic.Bool
}

// New builds a client over the configured shard set.
func New(cfg Config) (*Client, error) {
	if len(cfg.Shards) == 0 {
		return nil, errors.New("allocclient: at least one shard URL is required")
	}
	cfg = cfg.withDefaults()
	shards := make([]string, len(cfg.Shards))
	for i, s := range cfg.Shards {
		s = strings.TrimRight(s, "/")
		if s == "" {
			return nil, fmt.Errorf("allocclient: shard %d has an empty URL", i)
		}
		shards[i] = s
	}
	cfg.Shards = shards
	c := &Client{
		cfg:      cfg,
		ring:     newRing(shards, cfg.Replicas),
		binaryOK: make([]atomic.Bool, len(shards)),
	}
	if cfg.Binary {
		for i := range c.binaryOK {
			c.binaryOK[i].Store(true)
		}
	}
	c.met.init(cfg.Registry)
	for i, url := range shards {
		url := url
		rt := cfg.Transport
		if rt == nil {
			t := &http.Transport{
				MaxIdleConns:        64,
				MaxIdleConnsPerHost: 16,
				IdleConnTimeout:     90 * time.Second,
			}
			c.owned = append(c.owned, t)
			rt = t
		}
		c.clients = append(c.clients, &http.Client{Transport: rt})
		c.breakers = append(c.breakers, newBreaker(cfg.Breaker, cfg.Now, func(from, to BreakerState) {
			c.met.breakerState(url).Set(float64(breakerGaugeValue(to)))
			if cfg.OnTransition != nil {
				cfg.OnTransition(url, from, to)
			}
		}))
		_ = i
	}
	return c, nil
}

// Close releases idle connections on transports the client created.
func (c *Client) Close() {
	for _, t := range c.owned {
		t.CloseIdleConnections()
	}
}

// BreakerStates snapshots every shard's breaker, keyed by base URL.
func (c *Client) BreakerStates() map[string]BreakerState {
	out := make(map[string]BreakerState, len(c.cfg.Shards))
	for i, url := range c.cfg.Shards {
		out[url] = c.breakers[i].snapshot()
	}
	return out
}

// quantizeBudget buckets a budget for ring placement.
func (c *Client) quantizeBudget(watts float64) string {
	return strconv.FormatInt(int64(math.Round(watts/c.cfg.BudgetQuantum)), 10)
}

// coordShardKey is the ring key for coord and plan requests: the
// content fingerprint allocsvc coalesces on, with the budget quantized
// so nearby budgets share a shard's warm caches.
func (c *Client) coordShardKey(platform, wl string, budget float64) string {
	return strings.Join([]string{platform, wl, c.quantizeBudget(budget)}, "|")
}

// scheduleShardKey mirrors allocsvc's cluster cache key: budget plus
// the node list, so rounds against one cluster hit the shard holding
// that cluster's warm scheduler.
func (c *Client) scheduleShardKey(req allocsvc.ScheduleRequest) string {
	var b strings.Builder
	b.WriteString(c.quantizeBudget(req.Budget))
	for _, n := range req.Nodes {
		b.WriteByte('|')
		b.WriteString(n.ID)
		b.WriteByte('=')
		b.WriteString(n.Platform)
	}
	return b.String()
}

// backoff computes the full-jitter wait before retry pass n (0-based):
// a uniform draw from [0, min(RetryMax, RetryBase·2ⁿ)].
func (c *Client) backoff(pass int) time.Duration {
	d := c.cfg.RetryBase << uint(pass)
	if d <= 0 || d > c.cfg.RetryMax {
		d = c.cfg.RetryMax
	}
	return time.Duration(c.cfg.Rand() * float64(d))
}

// retryAfter extracts the server's Retry-After hint in seconds, or 0.
func retryAfter(resp *http.Response) time.Duration {
	secs, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || secs < 1 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// errorMessage extracts allocsvc's {"error": ...} body, falling back
// to the raw body.
func errorMessage(body []byte) string {
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		return e.Error
	}
	return strings.TrimSpace(string(body))
}

// respIsBinary reports whether a shard answered with a binary frame.
func respIsBinary(resp *http.Response) bool {
	ct := resp.Header.Get("Content-Type")
	if i := strings.IndexByte(ct, ';'); i >= 0 {
		ct = strings.TrimSpace(ct[:i])
	}
	return ct == wire.ContentType
}

// respMessage extracts the error message from either encoding.
func respMessage(resp *http.Response, body []byte) string {
	if respIsBinary(resp) {
		if e, err := wire.DecodeError(body); err == nil {
			return e.Message
		}
		return fmt.Sprintf("undecodable binary error frame (%d bytes)", len(body))
	}
	return errorMessage(body)
}

// attempt issues one POST to one shard and classifies the outcome.
func (c *Client) attempt(ctx context.Context, shard int, route string, body []byte, binary bool) (*http.Response, []byte, error) {
	actx, cancel := context.WithTimeout(ctx, c.cfg.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(actx, http.MethodPost,
		c.cfg.Shards[shard]+route, bytes.NewReader(body))
	if err != nil {
		return nil, nil, err
	}
	if binary {
		req.Header.Set("Content-Type", wire.ContentType)
	} else {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.clients[shard].Do(req)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	// The read cap must exceed the JSON body a huge schedule round can
	// legitimately produce — JSON is the designated fallback when a
	// round outgrows the binary frame cap, so it cannot share that cap.
	b, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, nil, err
	}
	return resp, b, nil
}

// do drives one request to completion: walk the key's ring order
// skipping open breakers, retry transient failures with backoff,
// honor Retry-After on 429, fail over on transport errors and 5xx,
// and wrap total exhaustion in ErrUnavailable. When binBody is
// non-nil it is preferred over the JSON body on shards still marked
// binary-capable; a 415 demotes the shard and the attempt repeats
// there in JSON.
func (c *Client) do(ctx context.Context, route, key string, body, binBody []byte) ([]byte, Meta, error) {
	meta := Meta{Source: SourceShard}
	order := c.ring.order(key)
	var lastErr error
	cursor := 0      // index into order of the shard to try next
	prev := -1       // shard index of the previous attempt
	consecutive := 0 // failures since the last successful shard pick
	pass := 0        // completed sweeps of the ring, drives backoff growth

	for meta.Attempts < c.cfg.MaxAttempts {
		if err := ctx.Err(); err != nil {
			return nil, meta, err
		}
		// Pick the next shard on the ring whose breaker admits us.
		shard := -1
		for i := 0; i < len(order); i++ {
			s := order[(cursor+i)%len(order)]
			if c.breakers[s].allow() {
				cursor = (cursor + i) % len(order)
				shard = s
				break
			}
		}
		if shard == -1 {
			if lastErr == nil {
				lastErr = errors.New("every shard breaker is open")
			}
			return nil, meta, fmt.Errorf("%w: %v", ErrUnavailable, lastErr)
		}
		meta.Attempts++
		if meta.Attempts > 1 {
			meta.Retries++
			c.met.retries.Inc()
		}
		if prev >= 0 && shard != prev {
			meta.Failovers++
			c.met.failovers.Inc()
		}
		prev = shard

		useBinary := binBody != nil && c.binaryOK[shard].Load()
		sendBody := body
		if useBinary {
			sendBody = binBody
		}
		resp, respBody, err := c.attempt(ctx, shard, route, sendBody, useBinary)
		if err != nil {
			// Transport error, timeout, or severed connection: the
			// shard is suspect. Trip toward open and move on.
			c.breakers[shard].failure()
			lastErr = err
			cursor = (cursor + 1) % len(order)
			consecutive++
			if consecutive >= len(order) {
				consecutive = 0
				if serr := c.cfg.Sleep(ctx, c.backoff(pass)); serr != nil {
					return nil, meta, serr
				}
				pass++
			}
			continue
		}
		switch {
		case resp.StatusCode < 300:
			c.breakers[shard].success()
			meta.Shard = c.cfg.Shards[shard]
			meta.Binary = respIsBinary(resp)
			return respBody, meta, nil
		case resp.StatusCode == http.StatusUnsupportedMediaType && useBinary:
			// The shard does not speak binary: demote it to JSON for
			// the client's lifetime and retry it immediately. The shard
			// is healthy — no breaker failure, no cursor advance.
			c.breakers[shard].success()
			c.binaryOK[shard].Store(false)
			c.met.binaryDemotions.Inc()
			lastErr = &StatusError{Code: resp.StatusCode, Msg: respMessage(resp, respBody)}
		case resp.StatusCode == http.StatusRequestEntityTooLarge && useBinary:
			// This request outgrew the binary frame format — the request
			// frame, or the response the shard tried to encode. The shard
			// still speaks binary (no lifetime demotion); only this
			// request falls back to JSON, retrying the same shard
			// immediately. The shard is healthy: no breaker failure, no
			// cursor advance.
			c.breakers[shard].success()
			binBody = nil
			c.met.binaryDemotions.Inc()
			lastErr = &StatusError{Code: resp.StatusCode, Msg: respMessage(resp, respBody)}
		case resp.StatusCode == http.StatusTooManyRequests:
			// The shard is alive and shedding load: not a breaker
			// failure. Honor its hint, then spread to the next shard.
			c.breakers[shard].success()
			lastErr = &StatusError{Code: resp.StatusCode, Msg: respMessage(resp, respBody)}
			wait := retryAfter(resp)
			if wait == 0 {
				wait = c.backoff(pass)
			}
			if serr := c.cfg.Sleep(ctx, wait); serr != nil {
				return nil, meta, serr
			}
			cursor = (cursor + 1) % len(order)
			consecutive = 0
		case resp.StatusCode >= 500:
			// 5xx includes allocsvc's 503 drain and 504 deadline
			// responses: the shard answered, but can't do the work.
			c.breakers[shard].failure()
			lastErr = &StatusError{Code: resp.StatusCode, Msg: respMessage(resp, respBody)}
			cursor = (cursor + 1) % len(order)
			consecutive++
			if consecutive >= len(order) {
				consecutive = 0
				if serr := c.cfg.Sleep(ctx, c.backoff(pass)); serr != nil {
					return nil, meta, serr
				}
				pass++
			}
		default:
			// Terminal 4xx: the shard is healthy, the request is not.
			// Retrying elsewhere cannot help.
			c.breakers[shard].success()
			meta.Shard = c.cfg.Shards[shard]
			return nil, meta, &StatusError{Code: resp.StatusCode, Msg: respMessage(resp, respBody)}
		}
	}
	return nil, meta, fmt.Errorf("%w: %d attempts exhausted, last error: %v",
		ErrUnavailable, meta.Attempts, lastErr)
}

// Coord requests one coordination decision. When every shard is
// unavailable (and degraded mode is enabled) the answer is computed
// in-process — content-identical to a served one — and Meta.Source is
// SourceLocal.
func (c *Client) Coord(ctx context.Context, req allocsvc.CoordRequest) (allocsvc.CoordResponse, Meta, error) {
	if req.Strategy == "" {
		req.Strategy = "coord"
	}
	body, err := json.Marshal(req)
	if err != nil {
		return allocsvc.CoordResponse{}, Meta{}, err
	}
	var binBody []byte
	if c.cfg.Binary {
		binBody, err = wire.AppendCoordRequest(nil, &req)
		if err != nil {
			// The request does not fit a binary frame; send JSON instead.
			binBody = nil
			c.met.binaryDemotions.Inc()
		}
	}
	key := c.coordShardKey(req.Platform, req.Workload, req.Budget)
	raw, meta, err := c.do(ctx, allocsvc.RouteCoord, key, body, binBody)
	if err != nil {
		if errors.Is(err, ErrUnavailable) && !c.cfg.DisableDegraded {
			resp, lerr := allocsvc.ComputeCoord(req)
			if lerr != nil {
				return allocsvc.CoordResponse{}, meta, lerr
			}
			meta.Source = SourceLocal
			meta.Shard = ""
			c.met.degraded.Inc()
			c.met.requests(allocsvc.RouteCoord, SourceLocal).Inc()
			return resp, meta, nil
		}
		return allocsvc.CoordResponse{}, meta, err
	}
	var resp allocsvc.CoordResponse
	if meta.Binary {
		err = wire.DecodeCoordResponse(raw, &resp)
	} else {
		err = json.Unmarshal(raw, &resp)
	}
	if err != nil {
		return allocsvc.CoordResponse{}, meta, fmt.Errorf("allocclient: decoding coord response: %w", err)
	}
	c.met.requests(allocsvc.RouteCoord, SourceShard).Inc()
	return resp, meta, nil
}

// Plan requests a phase-aware plan, with the same degraded-local
// fallback as Coord.
func (c *Client) Plan(ctx context.Context, req allocsvc.PlanRequest) (allocsvc.PlanResponse, Meta, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return allocsvc.PlanResponse{}, Meta{}, err
	}
	var binBody []byte
	if c.cfg.Binary {
		binBody, err = wire.AppendPlanRequest(nil, &req)
		if err != nil {
			binBody = nil
			c.met.binaryDemotions.Inc()
		}
	}
	key := c.coordShardKey(req.Platform, req.Workload, req.Budget)
	raw, meta, err := c.do(ctx, allocsvc.RoutePlan, key, body, binBody)
	if err != nil {
		if errors.Is(err, ErrUnavailable) && !c.cfg.DisableDegraded {
			resp, lerr := allocsvc.ComputePlan(req)
			if lerr != nil {
				return allocsvc.PlanResponse{}, meta, lerr
			}
			meta.Source = SourceLocal
			meta.Shard = ""
			c.met.degraded.Inc()
			c.met.requests(allocsvc.RoutePlan, SourceLocal).Inc()
			return resp, meta, nil
		}
		return allocsvc.PlanResponse{}, meta, err
	}
	var resp allocsvc.PlanResponse
	if meta.Binary {
		err = wire.DecodePlanResponse(raw, &resp)
	} else {
		err = json.Unmarshal(raw, &resp)
	}
	if err != nil {
		return allocsvc.PlanResponse{}, meta, fmt.Errorf("allocclient: decoding plan response: %w", err)
	}
	c.met.requests(allocsvc.RoutePlan, SourceShard).Inc()
	return resp, meta, nil
}

// Recoord requests one online re-coordination run on a phased GPU
// workload, with the same shard failover and degraded-local fallback
// as Coord: the controller is a pure function of the request, so a
// locally computed run is content-identical to a served one. The
// route is JSON-only — no binary body is attempted.
func (c *Client) Recoord(ctx context.Context, req allocsvc.RecoordRequest) (allocsvc.RecoordResponse, Meta, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return allocsvc.RecoordResponse{}, Meta{}, err
	}
	// Phase-spec requests carry the workload in the spec; fold both
	// into the ring key so a custom mix pins to one shard too.
	key := c.coordShardKey(req.Platform, req.Workload+"#"+req.PhaseSpec, req.Budget)
	raw, meta, err := c.do(ctx, allocsvc.RouteRecoord, key, body, nil)
	if err != nil {
		if errors.Is(err, ErrUnavailable) && !c.cfg.DisableDegraded {
			resp, lerr := allocsvc.ComputeRecoord(req)
			if lerr != nil {
				return allocsvc.RecoordResponse{}, meta, lerr
			}
			meta.Source = SourceLocal
			meta.Shard = ""
			c.met.degraded.Inc()
			c.met.requests(allocsvc.RouteRecoord, SourceLocal).Inc()
			return resp, meta, nil
		}
		return allocsvc.RecoordResponse{}, meta, err
	}
	var resp allocsvc.RecoordResponse
	if err := json.Unmarshal(raw, &resp); err != nil {
		return allocsvc.RecoordResponse{}, meta, fmt.Errorf("allocclient: decoding recoord response: %w", err)
	}
	c.met.requests(allocsvc.RouteRecoord, SourceShard).Inc()
	return resp, meta, nil
}

// Schedule requests one scheduling round. There is no degraded-local
// fallback: a scheduling round mutates shard-side scheduler state
// (admitted jobs consume pool budget), so a locally computed round
// would silently fork that state.
func (c *Client) Schedule(ctx context.Context, req allocsvc.ScheduleRequest) (allocsvc.ScheduleResponse, Meta, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return allocsvc.ScheduleResponse{}, Meta{}, err
	}
	var binBody []byte
	if c.cfg.Binary {
		// A round too large for the frame format is not an error: it is
		// exactly what the JSON fallback is for.
		binBody, err = wire.AppendScheduleRequest(nil, &req)
		if err != nil {
			binBody = nil
			c.met.binaryDemotions.Inc()
		}
	}
	raw, meta, err := c.do(ctx, allocsvc.RouteSchedule, c.scheduleShardKey(req), body, binBody)
	if err != nil {
		return allocsvc.ScheduleResponse{}, meta, err
	}
	var resp allocsvc.ScheduleResponse
	if meta.Binary {
		err = wire.DecodeScheduleResponse(raw, &resp)
	} else {
		err = json.Unmarshal(raw, &resp)
	}
	if err != nil {
		return allocsvc.ScheduleResponse{}, meta, fmt.Errorf("allocclient: decoding schedule response: %w", err)
	}
	c.met.requests(allocsvc.RouteSchedule, SourceShard).Inc()
	return resp, meta, nil
}

// Tree requests one hierarchical budget division. Like Schedule there
// is no degraded-local fallback — the tree solve needs the shard's
// curve profiles — but unlike Schedule the refusal is typed: total
// shard loss surfaces as ErrNoLocalFallback wrapping ErrUnavailable,
// so callers can distinguish "the fleet is down and this route cannot
// degrade" from an ordinary outage.
func (c *Client) Tree(ctx context.Context, req allocsvc.TreeRequest) (allocsvc.TreeResponse, Meta, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return allocsvc.TreeResponse{}, Meta{}, err
	}
	var binBody []byte
	if c.cfg.Binary {
		binBody, err = wire.AppendTreeRequest(nil, &req)
		if err != nil {
			binBody = nil
			c.met.binaryDemotions.Inc()
		}
	}
	raw, meta, err := c.do(ctx, allocsvc.RouteTree, c.treeShardKey(req), body, binBody)
	if err != nil {
		if errors.Is(err, ErrUnavailable) {
			return allocsvc.TreeResponse{}, meta, fmt.Errorf("%w: %w", ErrNoLocalFallback, err)
		}
		return allocsvc.TreeResponse{}, meta, err
	}
	var resp allocsvc.TreeResponse
	if meta.Binary {
		err = wire.DecodeTreeResponse(raw, &resp)
	} else {
		err = json.Unmarshal(raw, &resp)
	}
	if err != nil {
		return allocsvc.TreeResponse{}, meta, fmt.Errorf("allocclient: decoding tree response: %w", err)
	}
	c.met.requests(allocsvc.RouteTree, SourceShard).Inc()
	return resp, meta, nil
}

// treeShardKey pins one tree topology to one shard: the rack and leaf
// structure with the root budget quantized, so repeated solves of a
// datacenter under a moving budget hit the shard holding that tree's
// warm curve profiles.
func (c *Client) treeShardKey(req allocsvc.TreeRequest) string {
	var b strings.Builder
	b.WriteString(c.quantizeBudget(req.Budget))
	for _, rack := range req.Racks {
		b.WriteString("|r:")
		b.WriteString(rack.ID)
		for _, n := range rack.Nodes {
			b.WriteByte('|')
			b.WriteString(n.ID)
			b.WriteByte('=')
			b.WriteString(n.Platform)
			b.WriteByte('/')
			b.WriteString(n.Workload)
		}
	}
	return b.String()
}

// Peers is the body of GET /v1/peers on a pbc serve instance.
type Peers struct {
	Self  string   `json:"self"`
	Peers []string `json:"peers,omitempty"`
}

// Discover asks one serve instance for its shard topology and returns
// the full shard list to hand to New: the asked base URL (the address
// that demonstrably works from this vantage point) plus every peer the
// instance advertises, minus the instance's own advertised self address
// so it is not listed twice. An instance with no configured peers
// yields just the asked base URL.
func Discover(ctx context.Context, base string) ([]string, error) {
	base = strings.TrimRight(base, "/")
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/peers", nil)
	if err != nil {
		return nil, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		return nil, fmt.Errorf("allocclient: discover %s: %d: %s", base, resp.StatusCode, errorMessage(body))
	}
	var p Peers
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&p); err != nil {
		return nil, fmt.Errorf("allocclient: decoding peers from %s: %w", base, err)
	}
	shards := []string{base}
	for _, peer := range p.Peers {
		if peer = strings.TrimRight(peer, "/"); peer != base && peer != p.Self && peer != "" {
			shards = append(shards, peer)
		}
	}
	return shards, nil
}
