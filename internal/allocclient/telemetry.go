package allocclient

import "repro/internal/telemetry"

// breakerGaugeValue maps breaker states onto a monotone severity scale
// for the allocclient_breaker_state gauge: 0 closed, 1 half-open,
// 2 open.
func breakerGaugeValue(s BreakerState) int {
	switch s {
	case BreakerHalfOpen:
		return 1
	case BreakerOpen:
		return 2
	default:
		return 0
	}
}

// clientMetrics holds the client's registry handles. A nil registry
// yields nil-safe no-op handles, per the telemetry package contract.
type clientMetrics struct {
	reg             *telemetry.Registry
	retries         *telemetry.Counter
	failovers       *telemetry.Counter
	degraded        *telemetry.Counter
	binaryDemotions *telemetry.Counter
}

func (m *clientMetrics) init(reg *telemetry.Registry) {
	m.reg = reg
	m.retries = reg.Counter("allocclient_retries_total",
		"HTTP attempts beyond the first for a request (retries and failover re-sends).")
	m.failovers = reg.Counter("allocclient_failovers_total",
		"Attempts moved to a different shard than the previous attempt.")
	m.degraded = reg.Counter("allocclient_degraded_total",
		"Requests answered by the in-process degraded-local fallback.")
	m.binaryDemotions = reg.Counter("allocclient_binary_demotions_total",
		"Shards demoted from the binary protocol to JSON after a 415 response.")
}

// requests returns the counter for one (route, source) pair.
func (m *clientMetrics) requests(route, source string) *telemetry.Counter {
	return m.reg.Counter("allocclient_requests_total",
		"Client requests answered, by route and source (shard or degraded-local).",
		"route", route, "source", source)
}

// breakerState returns the per-shard breaker position gauge
// (0 closed, 1 half-open, 2 open).
func (m *clientMetrics) breakerState(shard string) *telemetry.Gauge {
	return m.reg.Gauge("allocclient_breaker_state",
		"Circuit breaker position per shard: 0 closed, 1 half-open, 2 open.",
		"shard", shard)
}
