package allocclient

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/allocsvc"
	"repro/internal/telemetry"
)

func TestRingDeterministicAndCoversAllShards(t *testing.T) {
	names := []string{"http://a:1", "http://b:1", "http://c:1"}
	r1 := newRing(names, 64)
	r2 := newRing(names, 64)
	keys := []string{"haswell|stream|100", "titanxp|gpustream|150", "epyc|dgemm|200", "x", ""}
	for _, k := range keys {
		a, b := r1.order(k), r2.order(k)
		if len(a) != len(names) {
			t.Fatalf("order(%q) = %v, want every shard exactly once", k, a)
		}
		seen := map[int]bool{}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("order(%q) differs across identical rings: %v vs %v", k, a, b)
			}
			if seen[a[i]] {
				t.Fatalf("order(%q) = %v repeats shard %d", k, a, a[i])
			}
			seen[a[i]] = true
		}
	}
}

func TestRingSpreadsKeys(t *testing.T) {
	names := []string{"http://a:1", "http://b:1", "http://c:1"}
	r := newRing(names, 64)
	counts := make([]int, len(names))
	const n = 3000
	for i := 0; i < n; i++ {
		counts[r.order("key-" + strconv.Itoa(i))[0]]++
	}
	for s, c := range counts {
		// With 64 virtual points per shard the heaviest shard should
		// stay well under double its fair share.
		if c == 0 || c > 2*n/len(names) {
			t.Fatalf("shard %d owns %d/%d keys; spread too skewed: %v", s, c, n, counts)
		}
	}
}

func TestShardKeyQuantization(t *testing.T) {
	c, err := New(Config{Shards: []string{"http://a:1"}})
	if err != nil {
		t.Fatal(err)
	}
	a := c.coordShardKey("haswell", "stream", 207.6)
	b := c.coordShardKey("haswell", "stream", 208.4)
	if a != b {
		t.Fatalf("budgets 207.6 and 208.4 should share a shard key at quantum 1: %q vs %q", a, b)
	}
	d := c.coordShardKey("haswell", "stream", 150)
	if a == d {
		t.Fatalf("budgets 208 and 150 should not share a shard key: both %q", a)
	}
}

// fakeClock is a manually advanced clock for breaker tests.
type fakeClock struct{ t atomic.Int64 }

func (f *fakeClock) now() time.Time          { return time.Unix(0, f.t.Load()) }
func (f *fakeClock) advance(d time.Duration) { f.t.Add(int64(d)) }

func TestBreakerStateMachine(t *testing.T) {
	clk := &fakeClock{}
	var trace []string
	b := newBreaker(BreakerConfig{Threshold: 3, Cooldown: time.Second}, clk.now,
		func(from, to BreakerState) { trace = append(trace, from.String()+"->"+to.String()) })

	for i := 0; i < 2; i++ {
		if !b.allow() {
			t.Fatalf("closed breaker refused request %d", i)
		}
		b.failure()
	}
	if got := b.snapshot(); got != BreakerClosed {
		t.Fatalf("after 2 failures: state %v, want closed (threshold 3)", got)
	}
	b.allow()
	b.failure()
	if got := b.snapshot(); got != BreakerOpen {
		t.Fatalf("after 3 consecutive failures: state %v, want open", got)
	}
	if b.allow() {
		t.Fatal("open breaker admitted a request before cooldown")
	}

	clk.advance(time.Second)
	if !b.allow() {
		t.Fatal("open breaker refused the half-open probe after cooldown")
	}
	if got := b.snapshot(); got != BreakerHalfOpen {
		t.Fatalf("after cooldown allow: state %v, want half-open", got)
	}
	if b.allow() {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}
	b.failure()
	if got := b.snapshot(); got != BreakerOpen {
		t.Fatalf("after failed probe: state %v, want open", got)
	}

	clk.advance(time.Second)
	if !b.allow() {
		t.Fatal("no second probe after another cooldown")
	}
	b.success()
	if got := b.snapshot(); got != BreakerClosed {
		t.Fatalf("after successful probe: state %v, want closed", got)
	}
	want := []string{
		"closed->open", "open->half-open", "half-open->open",
		"open->half-open", "half-open->closed",
	}
	if len(trace) != len(want) {
		t.Fatalf("transition trace %v, want %v", trace, want)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("transition %d = %q, want %q (full: %v)", i, trace[i], want[i], trace)
		}
	}
}

// coordOK is a minimal healthy /v1/coord handler for client tests that
// don't need real allocation content.
func coordOK(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	w.Write([]byte(`{"platform":"haswell","workload":"stream","status":"ok"}` + "\n"))
}

// newTestClient builds a client over the given servers with instant
// injected sleeps (recorded into slept) and a fake clock.
func newTestClient(t *testing.T, urls []string, slept *[]time.Duration, mutate func(*Config)) *Client {
	t.Helper()
	cfg := Config{
		Shards:  urls,
		Breaker: BreakerConfig{Threshold: 2, Cooldown: time.Second},
		Now:     (&fakeClock{}).now,
		Sleep: func(ctx context.Context, d time.Duration) error {
			if slept != nil {
				*slept = append(*slept, d)
			}
			return nil
		},
	}
	if mutate != nil {
		mutate(&cfg)
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestRetryAfterHonored(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "7")
			w.WriteHeader(http.StatusTooManyRequests)
			w.Write([]byte(`{"error":"busy"}`))
			return
		}
		coordOK(w, r)
	}))
	defer srv.Close()

	var slept []time.Duration
	c := newTestClient(t, []string{srv.URL}, &slept, nil)
	resp, meta, err := c.Coord(context.Background(), allocsvc.CoordRequest{
		Platform: "haswell", Workload: "stream", Budget: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != "ok" || meta.Source != SourceShard || meta.Attempts != 2 || meta.Retries != 1 {
		t.Fatalf("resp.Status=%q meta=%+v, want ok after one retry", resp.Status, meta)
	}
	if len(slept) != 1 || slept[0] != 7*time.Second {
		t.Fatalf("slept %v, want exactly the server's 7s Retry-After hint", slept)
	}
}

func TestFailoverOnDeadShard(t *testing.T) {
	live := httptest.NewServer(http.HandlerFunc(coordOK))
	defer live.Close()
	dead := httptest.NewServer(http.HandlerFunc(coordOK))
	dead.Close() // connection refused from now on

	c := newTestClient(t, []string{dead.URL, live.URL}, nil, nil)
	// Find a key whose home shard is the dead one, so the request must
	// fail over.
	req := allocsvc.CoordRequest{Platform: "haswell", Workload: "stream", Budget: 100}
	for b := 100.0; b < 200; b++ {
		req.Budget = b
		if c.ring.order(c.coordShardKey(req.Platform, req.Workload, req.Budget))[0] == 0 {
			break
		}
	}
	if c.ring.order(c.coordShardKey(req.Platform, req.Workload, req.Budget))[0] != 0 {
		t.Skip("no budget in [100,200) maps to shard 0; ring hash changed")
	}

	resp, meta, err := c.Coord(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != "ok" || meta.Source != SourceShard || meta.Shard != live.URL {
		t.Fatalf("resp.Status=%q meta=%+v, want fresh answer from the live shard", resp.Status, meta)
	}
	if meta.Failovers < 1 {
		t.Fatalf("meta=%+v, want at least one failover", meta)
	}

	// A second identical request fails over again, tripping the dead
	// shard's breaker (threshold 2); the third goes straight to the
	// live shard with no failover.
	if _, _, err := c.Coord(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	if got := c.BreakerStates()[dead.URL]; got != BreakerOpen {
		t.Fatalf("dead shard breaker %v after %d consecutive failures, want open", got, 2)
	}
	_, meta, err = c.Coord(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Failovers != 0 || meta.Attempts != 1 {
		t.Fatalf("meta=%+v, want direct hit on live shard once breaker is open", meta)
	}
}

func TestDegradedLocalWhenAllShardsDown(t *testing.T) {
	a := httptest.NewServer(http.HandlerFunc(coordOK))
	b := httptest.NewServer(http.HandlerFunc(coordOK))
	a.Close()
	b.Close()

	reg := telemetry.New()
	c := newTestClient(t, []string{a.URL, b.URL}, nil, func(cfg *Config) {
		cfg.Registry = reg
		cfg.MaxAttempts = 4
	})
	req := allocsvc.CoordRequest{Platform: "haswell", Workload: "stream", Budget: 300}
	resp, meta, err := c.Coord(context.Background(), req)
	if err != nil {
		t.Fatalf("degraded mode should absorb total shard loss: %v", err)
	}
	if meta.Source != SourceLocal || meta.Shard != "" {
		t.Fatalf("meta=%+v, want degraded-local with no shard", meta)
	}
	direct, err := allocsvc.ComputeCoord(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Alloc == nil || !reflect.DeepEqual(resp, direct) {
		t.Fatalf("degraded answer %+v differs from direct computation %+v", resp, direct)
	}
	if got := reg.Counter("allocclient_degraded_total", "").Value(); got != 1 {
		t.Fatalf("allocclient_degraded_total = %v, want 1", got)
	}

	// Plan degrades the same way; Schedule must not.
	plan, pmeta, err := c.Plan(context.Background(), allocsvc.PlanRequest{
		Platform: "haswell", Workload: "stream", Budget: 100,
	})
	if err != nil || pmeta.Source != SourceLocal || len(plan.Steps) == 0 {
		t.Fatalf("plan degraded err=%v meta=%+v steps=%d", err, pmeta, len(plan.Steps))
	}
	_, _, err = c.Schedule(context.Background(), allocsvc.ScheduleRequest{
		Budget: 200,
		Nodes:  []allocsvc.NodeJSON{{ID: "n0", Platform: "haswell"}},
		Jobs:   []allocsvc.JobJSON{{ID: "j0", Workload: "stream"}},
	})
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("schedule with all shards down: err=%v, want ErrUnavailable (no local fallback)", err)
	}
}

func TestDisableDegraded(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(coordOK))
	srv.Close()
	c := newTestClient(t, []string{srv.URL}, nil, func(cfg *Config) {
		cfg.DisableDegraded = true
		cfg.MaxAttempts = 2
	})
	_, _, err := c.Coord(context.Background(), allocsvc.CoordRequest{
		Platform: "haswell", Workload: "stream", Budget: 100,
	})
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("err=%v, want ErrUnavailable with degraded mode disabled", err)
	}
}

func TestTerminalBadRequestNotRetriedNotDegraded(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		w.Write([]byte(`{"error":"unknown workload \"nope\""}`))
	}))
	defer srv.Close()
	c := newTestClient(t, []string{srv.URL}, nil, nil)
	_, meta, err := c.Coord(context.Background(), allocsvc.CoordRequest{
		Platform: "haswell", Workload: "nope", Budget: 100,
	})
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusBadRequest {
		t.Fatalf("err=%v, want terminal StatusError 400", err)
	}
	if meta.Source == SourceLocal {
		t.Fatal("terminal 400 must not fall back to degraded-local")
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("server saw %d calls, want 1 (no retry of terminal 4xx)", got)
	}
}

func TestServerErrorsTripBreakerThenDegrade(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
		w.Write([]byte(`{"error":"boom"}`))
	}))
	defer srv.Close()
	reg := telemetry.New()
	c := newTestClient(t, []string{srv.URL}, nil, func(cfg *Config) {
		cfg.Registry = reg
		cfg.MaxAttempts = 5
	})
	resp, meta, err := c.Coord(context.Background(), allocsvc.CoordRequest{
		Platform: "haswell", Workload: "stream", Budget: 100,
	})
	if err != nil || meta.Source != SourceLocal {
		t.Fatalf("err=%v meta=%+v, want degraded-local after 5xx storm", err, meta)
	}
	if resp.Status == "" {
		t.Fatal("degraded answer is empty")
	}
	if got := c.BreakerStates()[srv.URL]; got != BreakerOpen {
		t.Fatalf("breaker %v after consecutive 5xx, want open", got)
	}
	if got := reg.Gauge("allocclient_breaker_state", "", "shard", srv.URL).Value(); got != 2 {
		t.Fatalf("allocclient_breaker_state = %v, want 2 (open)", got)
	}
}

func TestDiscover(t *testing.T) {
	var peers []string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/peers" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		b, _ := json.Marshal(Peers{Self: "self", Peers: peers})
		w.Write(b)
	}))
	defer srv.Close()

	got, err := Discover(context.Background(), srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != srv.URL {
		t.Fatalf("peerless discover = %v, want [%s]", got, srv.URL)
	}
	// With peers advertised, the list is the asked base URL plus every
	// peer, minus the instance's own self address ("self" here) and any
	// duplicate of the base — the client must end up with a ring that
	// includes the instance it discovered through.
	peers = []string{"http://a:1", "self", srv.URL, "http://b:1/"}
	got, err = Discover(context.Background(), srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{srv.URL, "http://a:1", "http://b:1"}
	if len(got) != len(want) {
		t.Fatalf("discover = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("discover = %v, want %v", got, want)
		}
	}
}
