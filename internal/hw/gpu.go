package hw

import (
	"fmt"

	"repro/internal/units"
)

// GPUMemSpec models a discrete GPU's global memory (GDDR5X or HBM2). The
// user-visible knob is the memory clock (set through frequency offsets in
// nvidia-settings, as in the paper); memory power is estimated from the
// clock with an empirical linear model, exactly as the paper does for
// Figure 7 ("memory power is estimated using memory frequency setting and
// empirical power models built from experiment data on the card").
type GPUMemSpec struct {
	// Name identifies the memory technology, e.g. "12 GB GDDR5X".
	Name string
	// ClockMin, ClockNom and ClockMax bound the settable memory clock.
	// ClockNom is the clock the default driver policy always uses.
	ClockMin, ClockNom, ClockMax units.Frequency
	// ClockStep is the offset granularity.
	ClockStep units.Frequency
	// BytesPerClock is the effective bus width: peak bandwidth is
	// BytesPerClock * clock.
	BytesPerClock float64
	// PowerMin and PowerMax anchor the empirical linear clock-to-power
	// model at ClockMin and ClockMax.
	PowerMin, PowerMax units.Power
}

// Validate reports a descriptive error if the spec is internally
// inconsistent.
func (m *GPUMemSpec) Validate() error {
	switch {
	case m.ClockMin <= 0 || m.ClockNom < m.ClockMin || m.ClockMax < m.ClockNom:
		return fmt.Errorf("gpumem %q: invalid clock range", m.Name)
	case m.ClockStep <= 0:
		return fmt.Errorf("gpumem %q: non-positive clock step", m.Name)
	case m.BytesPerClock <= 0:
		return fmt.Errorf("gpumem %q: non-positive bus width", m.Name)
	case m.PowerMin <= 0 || m.PowerMax < m.PowerMin:
		return fmt.Errorf("gpumem %q: invalid power range", m.Name)
	}
	return nil
}

// Power returns the empirical memory power at clock f.
func (m *GPUMemSpec) Power(f units.Frequency) units.Power {
	t := units.InvLerp(m.ClockMin.Hz(), m.ClockMax.Hz(), f.Clamp(m.ClockMin, m.ClockMax).Hz())
	return units.Power(units.Lerp(m.PowerMin.Watts(), m.PowerMax.Watts(), t))
}

// ClockForPower inverts Power: the highest memory clock whose estimated
// power does not exceed budget, clamped to the settable range.
func (m *GPUMemSpec) ClockForPower(budget units.Power) units.Frequency {
	t := units.InvLerp(m.PowerMin.Watts(), m.PowerMax.Watts(), budget.Watts())
	f := units.Frequency(units.Lerp(m.ClockMin.Hz(), m.ClockMax.Hz(), t))
	return quantizeDown(f, m.ClockMin, m.ClockStep).Clamp(m.ClockMin, m.ClockMax)
}

// PeakBandwidth returns the peak bandwidth at clock f.
func (m *GPUMemSpec) PeakBandwidth(f units.Frequency) units.Bandwidth {
	f = f.Clamp(m.ClockMin, m.ClockMax)
	return units.Bandwidth(m.BytesPerClock * f.Hz())
}

// Clocks returns the settable memory clocks in ascending order.
func (m *GPUMemSpec) Clocks() []units.Frequency {
	var cs []units.Frequency
	for f := m.ClockMin; f <= m.ClockMax+m.ClockStep/2; f += m.ClockStep {
		if f > m.ClockMax {
			f = m.ClockMax
		}
		cs = append(cs, f)
	}
	if len(cs) == 0 || cs[len(cs)-1] != m.ClockMax {
		cs = append(cs, m.ClockMax)
	}
	return cs
}

// GPUSpec models a discrete GPU accelerator: streaming multiprocessors
// with a DVFS clock range managed by the board power governor, plus global
// memory. The board-level power cap (nvidia-smi) and the clock offsets
// (nvidia-settings) are the two control surfaces the paper uses.
type GPUSpec struct {
	// Name identifies the card, e.g. "Nvidia Titan XP".
	Name string
	// SMs and LanesPerSM describe the compute configuration.
	SMs        int
	LanesPerSM int
	// OpsPerCyclePerLane is the peak per-lane throughput (2 for FMA).
	OpsPerCyclePerLane float64
	// SMClockMin and SMClockNom bound the SM DVFS range the governor uses.
	SMClockMin, SMClockNom units.Frequency
	// SMClockStep is the DVFS bin granularity (~13 MHz on Pascal/Volta).
	SMClockStep units.Frequency
	// VMin and VNom are SM voltages at the clock range ends.
	VMin, VNom float64
	// IdleBoard is the fixed board power (fans, VRM loss, I/O) excluded
	// from the SM and memory terms.
	IdleBoard units.Power
	// SMIdlePower is the SM-domain static power.
	SMIdlePower units.Power
	// SMMaxDynPower is the SM dynamic power at nominal clock and 100%
	// activity.
	SMMaxDynPower units.Power
	// Mem is the global memory.
	Mem GPUMemSpec
	// TDP is the default board power cap; MinCap and MaxCap bound the
	// range a user can set with nvidia-smi (125–300 W on Titan XP).
	TDP, MinCap, MaxCap units.Power
}

// Validate reports a descriptive error if the spec is internally
// inconsistent.
func (g *GPUSpec) Validate() error {
	switch {
	case g.SMs <= 0 || g.LanesPerSM <= 0 || g.OpsPerCyclePerLane <= 0:
		return fmt.Errorf("gpu %q: invalid compute configuration", g.Name)
	case g.SMClockMin <= 0 || g.SMClockNom < g.SMClockMin:
		return fmt.Errorf("gpu %q: invalid SM clock range", g.Name)
	case g.SMClockStep <= 0:
		return fmt.Errorf("gpu %q: non-positive SM clock step", g.Name)
	case g.VMin <= 0 || g.VNom < g.VMin:
		return fmt.Errorf("gpu %q: invalid voltage range", g.Name)
	case g.IdleBoard < 0 || g.SMIdlePower < 0 || g.SMMaxDynPower <= 0:
		return fmt.Errorf("gpu %q: invalid power parameters", g.Name)
	case g.MinCap <= 0 || g.TDP < g.MinCap || g.MaxCap < g.TDP:
		return fmt.Errorf("gpu %q: invalid cap range", g.Name)
	}
	return g.Mem.Validate()
}

// Voltage returns the SM voltage at clock f, interpolated linearly.
func (g *GPUSpec) Voltage(f units.Frequency) float64 {
	t := units.InvLerp(g.SMClockMin.Hz(), g.SMClockNom.Hz(), f.Hz())
	return units.Lerp(g.VMin, g.VNom, t)
}

// SMPower returns the SM-domain power at clock f and activity act.
func (g *GPUSpec) SMPower(f units.Frequency, act float64) units.Power {
	f = f.Clamp(g.SMClockMin, g.SMClockNom)
	act = clamp01(act)
	v := g.Voltage(f)
	freqRatio := f.Hz() / g.SMClockNom.Hz()
	voltRatio := v / g.VNom
	return g.SMIdlePower + units.Power(g.SMMaxDynPower.Watts()*freqRatio*voltRatio*voltRatio*act)
}

// BoardPower returns the total board power at the given SM clock, memory
// clock and SM activity.
func (g *GPUSpec) BoardPower(smClock, memClock units.Frequency, act float64) units.Power {
	return g.IdleBoard + g.SMPower(smClock, act) + g.Mem.Power(memClock)
}

// PeakComputeRate returns the aggregate SM throughput at clock f.
func (g *GPUSpec) PeakComputeRate(f units.Frequency) units.Rate {
	f = f.Clamp(g.SMClockMin, g.SMClockNom)
	return units.Rate(float64(g.SMs*g.LanesPerSM) * g.OpsPerCyclePerLane * f.Hz())
}

// SMClocks returns the SM DVFS clocks in ascending order.
func (g *GPUSpec) SMClocks() []units.Frequency {
	var cs []units.Frequency
	for f := g.SMClockMin; f <= g.SMClockNom+g.SMClockStep/2; f += g.SMClockStep {
		if f > g.SMClockNom {
			f = g.SMClockNom
		}
		cs = append(cs, f)
	}
	if len(cs) == 0 || cs[len(cs)-1] != g.SMClockNom {
		cs = append(cs, g.SMClockNom)
	}
	return cs
}

// quantizeDown snaps f down to the grid base + k*step.
func quantizeDown(f, base units.Frequency, step units.Frequency) units.Frequency {
	if f <= base {
		return base
	}
	k := int((f - base) / step)
	return base + units.Frequency(k)*step
}
