package hw

import (
	"math"
	"testing"

	"repro/internal/units"
)

func xpGPU() *GPUSpec { p := TitanXP(); return p.GPU }
func tvGPU() *GPUSpec { p := TitanV(); return p.GPU }

func TestGPUValidateRejectsBadSpecs(t *testing.T) {
	base := *xpGPU()
	mutations := []struct {
		name string
		mut  func(g *GPUSpec)
	}{
		{"zero SMs", func(g *GPUSpec) { g.SMs = 0 }},
		{"zero lanes", func(g *GPUSpec) { g.LanesPerSM = 0 }},
		{"bad clock range", func(g *GPUSpec) { g.SMClockNom = g.SMClockMin - 1 }},
		{"zero clock step", func(g *GPUSpec) { g.SMClockStep = 0 }},
		{"bad voltage", func(g *GPUSpec) { g.VNom = g.VMin / 2 }},
		{"zero dyn power", func(g *GPUSpec) { g.SMMaxDynPower = 0 }},
		{"bad caps", func(g *GPUSpec) { g.MaxCap = g.MinCap - 1; g.TDP = g.MinCap }},
		{"bad mem", func(g *GPUSpec) { g.Mem.BytesPerClock = 0 }},
	}
	for _, m := range mutations {
		g := base
		m.mut(&g)
		if err := g.Validate(); err == nil {
			t.Errorf("%s: Validate() accepted invalid spec", m.name)
		}
	}
}

func TestGPUPeakComputeRate(t *testing.T) {
	g := xpGPU()
	got := g.PeakComputeRate(g.SMClockNom).OpsPerSecond() / 1e12
	want := 30 * 128 * 2 * 1.582 / 1000 // ~12.1 TFLOPS
	if math.Abs(got-want) > 0.1 {
		t.Errorf("Titan XP peak = %.2f TFLOPS, want %.2f", got, want)
	}
	v := tvGPU()
	got = v.PeakComputeRate(v.SMClockNom).OpsPerSecond() / 1e12
	want = 80 * 64 * 2 * 1.455 / 1000 // ~14.9 TFLOPS
	if math.Abs(got-want) > 0.1 {
		t.Errorf("Titan V peak = %.2f TFLOPS, want %.2f", got, want)
	}
}

func TestGPUMemBandwidth(t *testing.T) {
	g := xpGPU()
	got := g.Mem.PeakBandwidth(g.Mem.ClockNom).GBPerSecond()
	if got < 540 || got > 555 { // GDDR5X spec: 547.7 GB/s
		t.Errorf("Titan XP bandwidth = %.1f GB/s, want ~548", got)
	}
	v := tvGPU()
	got = v.Mem.PeakBandwidth(v.Mem.ClockNom).GBPerSecond()
	if got < 645 || got > 660 { // HBM2 spec: 652.8 GB/s
		t.Errorf("Titan V bandwidth = %.1f GB/s, want ~653", got)
	}
}

func TestGPUMemPowerModel(t *testing.T) {
	m := &xpGPU().Mem
	if got := m.Power(m.ClockMin); got != m.PowerMin {
		t.Errorf("power at min clock = %v, want %v", got, m.PowerMin)
	}
	if got := m.Power(m.ClockMax); got != m.PowerMax {
		t.Errorf("power at max clock = %v, want %v", got, m.PowerMax)
	}
	// Monotone over the clock range.
	prev := units.Power(-1)
	for _, c := range m.Clocks() {
		p := m.Power(c)
		if p < prev {
			t.Errorf("memory power not monotone at %v", c)
		}
		prev = p
	}
	// Clamping outside the range.
	if m.Power(0) != m.PowerMin || m.Power(100*units.Gigahertz) != m.PowerMax {
		t.Error("clock not clamped in Power")
	}
}

func TestGPUMemClockForPowerInverse(t *testing.T) {
	m := &xpGPU().Mem
	for budget := m.PowerMin; budget <= m.PowerMax; budget += 2 {
		c := m.ClockForPower(budget)
		if c < m.ClockMin || c > m.ClockMax {
			t.Fatalf("clock %v out of range for budget %v", c, budget)
		}
		if p := m.Power(c); p > budget+0.01 {
			t.Errorf("ClockForPower(%v) = %v has power %v over budget", budget, c, p)
		}
	}
	// Budgets below the floor saturate at ClockMin.
	if got := m.ClockForPower(m.PowerMin / 2); got != m.ClockMin {
		t.Errorf("low budget clock = %v, want min", got)
	}
	// Budgets above the ceiling saturate at ClockMax.
	if got := m.ClockForPower(m.PowerMax * 2); got != m.ClockMax {
		t.Errorf("high budget clock = %v, want max", got)
	}
}

func TestGPUSMPowerMonotone(t *testing.T) {
	g := xpGPU()
	prev := units.Power(-1)
	for _, c := range g.SMClocks() {
		p := g.SMPower(c, 0.8)
		if p <= prev {
			t.Errorf("SM power not increasing at %v", c)
		}
		prev = p
	}
	if g.SMPower(g.SMClockNom, 0.2) >= g.SMPower(g.SMClockNom, 0.9) {
		t.Error("SM power not increasing in activity")
	}
}

func TestGPUBoardPowerCalibration(t *testing.T) {
	g := xpGPU()
	// Full-tilt SGEMM-like load must exceed the 300 W maximum settable cap
	// (the paper observes SGEMM's performance keeps rising through 300 W).
	full := g.BoardPower(g.SMClockNom, g.Mem.ClockNom, 1.0)
	if full.Watts() <= 300 {
		t.Errorf("Titan XP full board power = %v, want > 300 W", full)
	}
	// A memory-bound MiniFE-like load (SM activity ~0.36) should flatten
	// around the paper's 180 W.
	mini := g.BoardPower(g.SMClockNom, g.Mem.ClockNom, 0.36)
	if mini.Watts() < 168 || mini.Watts() > 192 {
		t.Errorf("Titan XP MiniFE-like power = %v, want 168-192 W", mini)
	}
	v := tvGPU()
	// Titan V SGEMM flattens near 180 W per the paper.
	fullV := v.BoardPower(v.SMClockNom, v.Mem.ClockNom, 1.0)
	if fullV.Watts() < 165 || fullV.Watts() > 195 {
		t.Errorf("Titan V full board power = %v, want 165-195 W", fullV)
	}
	// HBM2 power range is much smaller than GDDR5X (paper Section 4).
	xpRange := g.Mem.PowerMax - g.Mem.PowerMin
	vRange := v.Mem.PowerMax - v.Mem.PowerMin
	if vRange >= xpRange {
		t.Errorf("HBM2 range %v should be below GDDR5X range %v", vRange, xpRange)
	}
}

func TestGPUClockTables(t *testing.T) {
	g := xpGPU()
	cs := g.SMClocks()
	if cs[0] != g.SMClockMin || cs[len(cs)-1] != g.SMClockNom {
		t.Errorf("SM clock table ends = %v..%v", cs[0], cs[len(cs)-1])
	}
	for i := 1; i < len(cs); i++ {
		if cs[i] <= cs[i-1] {
			t.Fatalf("SM clocks not ascending at %d", i)
		}
	}
	ms := g.Mem.Clocks()
	if ms[0] != g.Mem.ClockMin || ms[len(ms)-1] != g.Mem.ClockMax {
		t.Errorf("mem clock table ends = %v..%v", ms[0], ms[len(ms)-1])
	}
}

func TestPlatformByName(t *testing.T) {
	for _, name := range []string{"ivybridge", "haswell", "titanxp", "titanv"} {
		p, err := PlatformByName(name)
		if err != nil {
			t.Errorf("PlatformByName(%q): %v", name, err)
			continue
		}
		if p.Name != name {
			t.Errorf("got %q, want %q", p.Name, name)
		}
	}
	if _, err := PlatformByName("epyc"); err == nil {
		t.Error("expected error for unknown platform")
	}
}

func TestPlatformKinds(t *testing.T) {
	kinds := map[string]Kind{
		"ivybridge": KindCPU, "haswell": KindCPU,
		"titanxp": KindGPU, "titanv": KindGPU,
	}
	for _, p := range Platforms() {
		if p.Kind != kinds[p.Name] {
			t.Errorf("%s kind = %v", p.Name, p.Kind)
		}
	}
	if KindCPU.String() != "cpu" || KindGPU.String() != "gpu" {
		t.Error("Kind.String")
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind should still format")
	}
}

func TestPlatformValidateDetectsMissingSpecs(t *testing.T) {
	p := IvyBridge()
	p.DRAM = nil
	if err := p.Validate(); err == nil {
		t.Error("CPU platform without DRAM should fail validation")
	}
	g := TitanXP()
	g.GPU = nil
	if err := g.Validate(); err == nil {
		t.Error("GPU platform without GPU should fail validation")
	}
	bad := Platform{Name: "x", Kind: Kind(42)}
	if err := bad.Validate(); err == nil {
		t.Error("unknown kind should fail validation")
	}
}

func TestGPUValidateMoreMutations(t *testing.T) {
	base := *xpGPU()
	mutations := []struct {
		name string
		mut  func(g *GPUSpec)
	}{
		{"zero ops per lane", func(g *GPUSpec) { g.OpsPerCyclePerLane = 0 }},
		{"zero sm clock min", func(g *GPUSpec) { g.SMClockMin = 0 }},
		{"zero vmin", func(g *GPUSpec) { g.VMin = 0 }},
		{"negative idle", func(g *GPUSpec) { g.IdleBoard = -1 }},
		{"negative sm idle", func(g *GPUSpec) { g.SMIdlePower = -1 }},
		{"zero min cap", func(g *GPUSpec) { g.MinCap = 0 }},
		{"tdp below min", func(g *GPUSpec) { g.TDP = g.MinCap - 1 }},
		{"mem clock order", func(g *GPUSpec) { g.Mem.ClockNom = g.Mem.ClockMin - 1 }},
		{"mem clock step", func(g *GPUSpec) { g.Mem.ClockStep = 0 }},
		{"mem power order", func(g *GPUSpec) { g.Mem.PowerMax = g.Mem.PowerMin - 1 }},
		{"mem power zero", func(g *GPUSpec) { g.Mem.PowerMin = 0; g.Mem.PowerMax = 0 }},
	}
	for _, m := range mutations {
		g := base
		m.mut(&g)
		if err := g.Validate(); err == nil {
			t.Errorf("%s accepted", m.name)
		}
	}
}

func TestClockTablesDegenerate(t *testing.T) {
	// A clock range narrower than the step still yields both endpoints.
	g := *xpGPU()
	g.SMClockStep = 2 * (g.SMClockNom - g.SMClockMin)
	cs := g.SMClocks()
	if len(cs) < 2 || cs[0] != g.SMClockMin || cs[len(cs)-1] != g.SMClockNom {
		t.Errorf("degenerate SM table = %v", cs)
	}
	m := g.Mem
	m.ClockStep = 2 * (m.ClockMax - m.ClockMin)
	ms := m.Clocks()
	if len(ms) < 2 || ms[len(ms)-1] != m.ClockMax {
		t.Errorf("degenerate mem table = %v", ms)
	}
}

func TestCPUPStatesDegenerate(t *testing.T) {
	c := *ivyCPU()
	c.PStateStep = 2 * (c.FNom - c.FMin)
	ps := c.PStates()
	if len(ps) < 2 || ps[len(ps)-1] != c.FNom {
		t.Errorf("degenerate P-state table = %v", ps)
	}
	// Zero T-state steps leave only full duty.
	c2 := *ivyCPU()
	c2.TStateSteps = 0
	if ds := c2.Duties(); len(ds) != 1 || ds[0] != 1.0 {
		t.Errorf("no-throttle duties = %v", ds)
	}
}

func TestClampRangeNaN(t *testing.T) {
	c := ivyCPU()
	// NaN duty falls back to the low bound rather than propagating.
	p := c.Power(c.FNom, math.NaN(), 0.5)
	if math.IsNaN(p.Watts()) {
		t.Error("NaN duty propagated into power")
	}
}
