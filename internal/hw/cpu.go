// Package hw defines the hardware component models used by the
// power-bounded computing simulator: CPU packages with P-states (DVFS),
// T-states (clock/duty throttling) and a C-state power floor; DRAM with a
// background-plus-access-energy power model and bandwidth throttling; and
// discrete GPUs with SM and memory clock tables plus a board power
// governor. The four concrete platforms correspond to Table 2 of the paper
// (two Xeon server nodes, Titan XP, Titan V).
//
// The models are calibrated so that the critical power values the paper
// reports (e.g. a 48 W processor floor and roughly 112 W / 116 W
// CPU / DRAM maximum demand for RandomAccess on the IvyBridge node) fall
// in the right ranges; see the calibration tests.
package hw

import (
	"fmt"
	"math"

	"repro/internal/units"
)

// CPUSpec models the aggregate processor component of a compute node (all
// sockets combined, matching the paper's simplification that the CPU power
// budget is evenly distributed across cores).
type CPUSpec struct {
	// Name identifies the processor, e.g. "2x Xeon E5-2670v2 (IvyBridge)".
	Name string
	// Sockets and CoresPerSocket describe the core count.
	Sockets        int
	CoresPerSocket int
	// FMin and FNom bound the P-state (DVFS) frequency range. Turbo is
	// disabled, as in the paper's experiments, so FNom is the highest
	// stable operating frequency.
	FMin, FNom units.Frequency
	// PStateStep is the DVFS granularity (typically 100 MHz).
	PStateStep units.Frequency
	// VMin and VNom are the core voltages at FMin and FNom; voltage is
	// interpolated linearly between them.
	VMin, VNom float64
	// OpsPerCyclePerCore is the peak per-core throughput in operations per
	// cycle (e.g. 8 double-precision FLOPs on IvyBridge with AVX).
	OpsPerCyclePerCore float64
	// IdlePower is the minimum package power while the node runs — the
	// hardware-determined floor the paper calls P_cpu_L4 (48 W on the
	// IvyBridge node). RAPL cannot push the package below this.
	IdlePower units.Power
	// UncorePower is the fixed active-uncore adder (ring, LLC, memory
	// controllers) that scales with duty cycle but not with frequency.
	UncorePower units.Power
	// MaxDynPower is the core dynamic power at FNom, nominal voltage, and
	// 100% activity across all cores.
	MaxDynPower units.Power
	// TStateSteps is the number of clock-throttling duty steps below 100%
	// (8 steps gives duties 87.5%, 75%, ..., 12.5%).
	TStateSteps int
	// MinDuty is the lowest duty cycle T-states can impose.
	MinDuty float64
}

// Validate reports a descriptive error if the spec is internally
// inconsistent.
func (c *CPUSpec) Validate() error {
	switch {
	case c.Sockets <= 0 || c.CoresPerSocket <= 0:
		return fmt.Errorf("cpu %q: non-positive core counts", c.Name)
	case c.FMin <= 0 || c.FNom < c.FMin:
		return fmt.Errorf("cpu %q: invalid frequency range [%v, %v]", c.Name, c.FMin, c.FNom)
	case c.PStateStep <= 0:
		return fmt.Errorf("cpu %q: non-positive P-state step", c.Name)
	case c.VMin <= 0 || c.VNom < c.VMin:
		return fmt.Errorf("cpu %q: invalid voltage range [%v, %v]", c.Name, c.VMin, c.VNom)
	case c.OpsPerCyclePerCore <= 0:
		return fmt.Errorf("cpu %q: non-positive ops/cycle", c.Name)
	case c.IdlePower <= 0 || c.MaxDynPower <= 0 || c.UncorePower < 0:
		return fmt.Errorf("cpu %q: invalid power parameters", c.Name)
	case c.TStateSteps < 1 || c.MinDuty <= 0 || c.MinDuty > 1:
		return fmt.Errorf("cpu %q: invalid T-state configuration", c.Name)
	}
	return nil
}

// Cores returns the total number of physical cores.
func (c *CPUSpec) Cores() int { return c.Sockets * c.CoresPerSocket }

// PStates returns the available P-state frequencies in ascending order,
// from FMin to FNom inclusive.
func (c *CPUSpec) PStates() []units.Frequency {
	var states []units.Frequency
	for f := c.FMin; f < c.FNom+c.PStateStep/2; f += c.PStateStep {
		if f > c.FNom {
			f = c.FNom
		}
		states = append(states, f)
	}
	if len(states) == 0 || states[len(states)-1] != c.FNom {
		states = append(states, c.FNom)
	}
	return states
}

// Duties returns the available T-state duty cycles in descending order,
// starting at 1.0 (no throttling) down to MinDuty.
func (c *CPUSpec) Duties() []float64 {
	duties := []float64{1.0}
	if c.TStateSteps <= 0 {
		return duties
	}
	step := (1.0 - c.MinDuty) / float64(c.TStateSteps)
	for i := 1; i <= c.TStateSteps; i++ {
		d := 1.0 - float64(i)*step
		if d < c.MinDuty {
			d = c.MinDuty
		}
		duties = append(duties, d)
	}
	return duties
}

// Voltage returns the core voltage at frequency f, interpolated linearly
// over the P-state range and clamped outside it.
func (c *CPUSpec) Voltage(f units.Frequency) float64 {
	t := units.InvLerp(c.FMin.Hz(), c.FNom.Hz(), f.Hz())
	return units.Lerp(c.VMin, c.VNom, t)
}

// Power returns the package power at frequency f, duty cycle duty, and
// workload activity factor act in [0,1]. Activity folds in both the
// workload's intrinsic switching intensity and the fraction of time cores
// are stalled on memory (stalled cores burn much less dynamic power).
//
// The model is the standard CMOS decomposition: a hardware idle floor,
// plus an uncore adder and a core-dynamic term f*V^2 that both gate with
// the duty cycle.
func (c *CPUSpec) Power(f units.Frequency, duty, act float64) units.Power {
	f = f.Clamp(c.FMin, c.FNom)
	duty = clamp01Range(duty, c.MinDuty, 1)
	act = clamp01(act)
	v := c.Voltage(f)
	freqRatio := f.Hz() / c.FNom.Hz()
	voltRatio := v / c.VNom
	dyn := c.MaxDynPower.Watts() * freqRatio * voltRatio * voltRatio * act
	return c.IdlePower + units.Power((c.UncorePower.Watts()+dyn)*duty)
}

// MaxPower returns the package power at the highest P-state with no
// throttling for the given activity factor. For act==1 this is the
// absolute package maximum.
func (c *CPUSpec) MaxPower(act float64) units.Power {
	return c.Power(c.FNom, 1, act)
}

// MinActivePower returns the lowest power the package can be driven to by
// capping (lowest P-state, deepest T-state) for the given activity. The
// hardware floor IdlePower is the limit as activity goes to zero.
func (c *CPUSpec) MinActivePower(act float64) units.Power {
	return c.Power(c.FMin, c.MinDuty, act)
}

// PeakComputeRate returns the aggregate peak instruction throughput at
// frequency f and duty cycle duty.
func (c *CPUSpec) PeakComputeRate(f units.Frequency, duty float64) units.Rate {
	f = f.Clamp(c.FMin, c.FNom)
	duty = clamp01Range(duty, c.MinDuty, 1)
	return units.Rate(float64(c.Cores()) * c.OpsPerCyclePerCore * f.Hz() * duty)
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

func clamp01Range(x, lo, hi float64) float64 {
	if math.IsNaN(x) {
		return lo
	}
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
