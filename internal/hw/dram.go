package hw

import (
	"fmt"

	"repro/internal/units"
)

// DRAMSpec models the aggregate main-memory component of a compute node
// (all DIMMs combined, matching the paper's simplification that the memory
// power budget is evenly distributed across modules).
//
// Power decomposes into a background term (refresh, I/O termination,
// standby — present whenever the system is on; the paper's P_mem_L3 floor)
// and an access term proportional to the achieved bandwidth, with a much
// higher per-byte energy for random access (row activations dominate) than
// for streaming.
type DRAMSpec struct {
	// Name identifies the memory configuration, e.g. "256 GB DDR3-1600".
	Name string
	// TotalGB is the installed capacity.
	TotalGB int
	// Channels is the total number of memory channels across sockets.
	Channels int
	// TransferRate is the per-channel transfer rate (MT/s expressed as a
	// frequency).
	TransferRate units.Frequency
	// BytesPerTransfer is the channel width in bytes (8 for DDR).
	BytesPerTransfer float64
	// BackgroundPower is the hardware minimum memory power for a running
	// system (the paper's P_mem_L3): refresh and standby for the full
	// capacity. RAPL budgets below this are disregarded by the hardware.
	BackgroundPower units.Power
	// EnergyPerByteStream and EnergyPerByteRandom are the incremental
	// energies per byte moved for sequential and random access patterns,
	// in joules per byte.
	EnergyPerByteStream float64
	EnergyPerByteRandom float64
	// MinThrottleHeadroom is the smallest dynamic (above-background) power
	// that bandwidth throttling can force; throttling cannot block memory
	// traffic entirely (the OS must keep running), so the corresponding
	// trickle of bandwidth — MinThrottleHeadroom divided by the pattern's
	// per-byte energy — always flows.
	MinThrottleHeadroom units.Power
}

// Validate reports a descriptive error if the spec is internally
// inconsistent.
func (d *DRAMSpec) Validate() error {
	switch {
	case d.TotalGB <= 0 || d.Channels <= 0:
		return fmt.Errorf("dram %q: non-positive capacity or channels", d.Name)
	case d.TransferRate <= 0 || d.BytesPerTransfer <= 0:
		return fmt.Errorf("dram %q: invalid transfer parameters", d.Name)
	case d.BackgroundPower <= 0:
		return fmt.Errorf("dram %q: non-positive background power", d.Name)
	case d.EnergyPerByteStream <= 0 || d.EnergyPerByteRandom < d.EnergyPerByteStream:
		return fmt.Errorf("dram %q: invalid per-byte energies", d.Name)
	case d.MinThrottleHeadroom <= 0:
		return fmt.Errorf("dram %q: non-positive min throttle headroom", d.Name)
	}
	return nil
}

// PeakBandwidth returns the theoretical peak bandwidth across all
// channels.
func (d *DRAMSpec) PeakBandwidth() units.Bandwidth {
	return units.Bandwidth(float64(d.Channels) * d.TransferRate.Hz() * d.BytesPerTransfer)
}

// EnergyPerByte returns the blended incremental energy per byte for a
// workload whose fraction randomFrac of traffic is random access.
func (d *DRAMSpec) EnergyPerByte(randomFrac float64) float64 {
	randomFrac = clamp01(randomFrac)
	return units.Lerp(d.EnergyPerByteStream, d.EnergyPerByteRandom, randomFrac)
}

// Power returns the memory power when moving data at bandwidth bw with the
// given random-access fraction. It never drops below the background floor.
func (d *DRAMSpec) Power(bw units.Bandwidth, randomFrac float64) units.Power {
	if bw < 0 {
		bw = 0
	}
	return d.BackgroundPower + units.Power(bw.BytesPerSecond()*d.EnergyPerByte(randomFrac))
}

// BandwidthForPower inverts Power: the highest bandwidth the memory system
// can sustain under power cap while serving traffic with the given
// random-access fraction. The result is clamped to the throttling floor
// (throttling cannot stop traffic entirely) and to the physical peak.
// Caps at or below the background floor yield the throttling floor.
func (d *DRAMSpec) BandwidthForPower(cap units.Power, randomFrac float64) units.Bandwidth {
	peak := d.PeakBandwidth()
	floor := units.Bandwidth(d.MinThrottleHeadroom.Watts() / d.EnergyPerByte(randomFrac))
	headroom := cap - d.BackgroundPower
	if headroom <= 0 {
		return floor
	}
	bw := units.Bandwidth(headroom.Watts() / d.EnergyPerByte(randomFrac))
	if bw < floor {
		return floor
	}
	if bw > peak {
		return peak
	}
	return bw
}

// MaxPower returns the memory power at peak bandwidth for the given
// random-access fraction — the most the component can draw.
func (d *DRAMSpec) MaxPower(randomFrac float64) units.Power {
	return d.Power(d.PeakBandwidth(), randomFrac)
}
