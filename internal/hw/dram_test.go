package hw

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/units"
)

func ivyDRAM() *DRAMSpec { p := IvyBridge(); return p.DRAM }

func TestDRAMValidateRejectsBadSpecs(t *testing.T) {
	base := *ivyDRAM()
	mutations := []struct {
		name string
		mut  func(d *DRAMSpec)
	}{
		{"zero capacity", func(d *DRAMSpec) { d.TotalGB = 0 }},
		{"zero channels", func(d *DRAMSpec) { d.Channels = 0 }},
		{"zero rate", func(d *DRAMSpec) { d.TransferRate = 0 }},
		{"zero width", func(d *DRAMSpec) { d.BytesPerTransfer = 0 }},
		{"zero background", func(d *DRAMSpec) { d.BackgroundPower = 0 }},
		{"zero stream energy", func(d *DRAMSpec) { d.EnergyPerByteStream = 0 }},
		{"random below stream", func(d *DRAMSpec) { d.EnergyPerByteRandom = d.EnergyPerByteStream / 2 }},
		{"zero throttle headroom", func(d *DRAMSpec) { d.MinThrottleHeadroom = 0 }},
	}
	for _, m := range mutations {
		d := base
		m.mut(&d)
		if err := d.Validate(); err == nil {
			t.Errorf("%s: Validate() accepted invalid spec", m.name)
		}
	}
}

func TestDRAMPeakBandwidth(t *testing.T) {
	d := ivyDRAM()
	got := d.PeakBandwidth().GBPerSecond()
	want := 8 * 1.6 * 8.0 // channels * GT/s * bytes = 102.4 GB/s
	if math.Abs(got-want) > 0.1 {
		t.Errorf("DDR3 peak = %.1f GB/s, want %.1f", got, want)
	}
	h := Haswell()
	got = h.DRAM.PeakBandwidth().GBPerSecond()
	want = 8 * 2.133 * 8.0
	if math.Abs(got-want) > 0.1 {
		t.Errorf("DDR4 peak = %.1f GB/s, want %.1f", got, want)
	}
}

func TestDRAMEnergyPerByteBlending(t *testing.T) {
	d := ivyDRAM()
	if got := d.EnergyPerByte(0); got != d.EnergyPerByteStream {
		t.Errorf("stream energy = %v", got)
	}
	if got := d.EnergyPerByte(1); got != d.EnergyPerByteRandom {
		t.Errorf("random energy = %v", got)
	}
	mid := d.EnergyPerByte(0.5)
	if mid <= d.EnergyPerByteStream || mid >= d.EnergyPerByteRandom {
		t.Errorf("blend %v outside (%v, %v)", mid, d.EnergyPerByteStream, d.EnergyPerByteRandom)
	}
	// Out-of-range fractions are clamped.
	if d.EnergyPerByte(-2) != d.EnergyPerByteStream || d.EnergyPerByte(5) != d.EnergyPerByteRandom {
		t.Error("random fraction not clamped")
	}
}

func TestDRAMPowerFloorsAtBackground(t *testing.T) {
	d := ivyDRAM()
	if got := d.Power(0, 0); got != d.BackgroundPower {
		t.Errorf("idle memory power = %v, want background %v", got, d.BackgroundPower)
	}
	if got := d.Power(-5*units.GBps, 0); got != d.BackgroundPower {
		t.Errorf("negative bandwidth not clamped: %v", got)
	}
}

func TestDRAMPowerBandwidthRoundTrip(t *testing.T) {
	d := ivyDRAM()
	f := func(capW, randRaw float64) bool {
		cap := units.Power(math.Abs(math.Mod(capW, 200)))
		rf := math.Abs(math.Mod(randRaw, 1))
		bw := d.BandwidthForPower(cap, rf)
		peak := d.PeakBandwidth()
		floor := units.Bandwidth(d.MinThrottleHeadroom.Watts() / d.EnergyPerByte(rf))
		if bw < floor-1 || bw > peak+1 {
			return false
		}
		// If the cap is achievable above the floor and below peak, power at
		// that bandwidth matches the cap.
		if bw > floor && bw < peak {
			p := d.Power(bw, rf)
			return units.AlmostEqual(p.Watts(), cap.Watts(), 1e-6)
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDRAMCalibrationIvyBridge(t *testing.T) {
	d := ivyDRAM()
	// Streaming at full bandwidth should land near the paper's ~116 W
	// maximum DRAM demand.
	p := d.Power(d.PeakBandwidth(), 0).Watts()
	if p < 110 || p > 135 {
		t.Errorf("max stream DRAM power = %.1f W, want 110-135 W", p)
	}
	// Random access at a GUPS-like ~8 GB/s effective rate also lands near
	// the same maximum (activations dominate).
	p = d.Power(8.3*units.GBps, 1).Watts()
	if p < 105 || p > 125 {
		t.Errorf("random 5 GB/s DRAM power = %.1f W, want 105-125 W", p)
	}
	// Background floor is the paper's scenario-V/VI boundary (~66-68 W for
	// the DDR3 node).
	if d.BackgroundPower < 60 || d.BackgroundPower > 70 {
		t.Errorf("DDR3 background = %v, want 60-70 W", d.BackgroundPower)
	}
	h := Haswell()
	if h.DRAM.BackgroundPower >= d.BackgroundPower {
		t.Error("DDR4 background should be below DDR3 (paper: DDR4 consumes less)")
	}
}

func TestDRAMBandwidthForPowerMonotone(t *testing.T) {
	d := ivyDRAM()
	prev := units.Bandwidth(-1)
	for cap := units.Power(0); cap <= 160; cap += 4 {
		bw := d.BandwidthForPower(cap, 0)
		if bw < prev {
			t.Errorf("bandwidth not monotone at cap %v", cap)
		}
		prev = bw
	}
	// Far above max power -> peak bandwidth.
	if got := d.BandwidthForPower(1000, 0); got != d.PeakBandwidth() {
		t.Errorf("uncapped bandwidth = %v, want peak", got)
	}
	// At or below background -> throttle floor, never zero.
	got := d.BandwidthForPower(d.BackgroundPower, 0)
	if got <= 0 {
		t.Error("throttle floor must be positive")
	}
}

func TestDRAMMaxPowerOrdering(t *testing.T) {
	d := ivyDRAM()
	if d.MaxPower(0) <= d.BackgroundPower {
		t.Error("max stream power must exceed background")
	}
	// Random max at peak bandwidth is (much) higher per byte, but random
	// workloads never reach peak bandwidth; this is just the model bound.
	if d.MaxPower(1) <= d.MaxPower(0) {
		t.Error("random per-byte energy should exceed streaming")
	}
}
