package hw

import (
	"fmt"
	"sort"

	"repro/internal/units"
)

// Kind distinguishes host (CPU+DRAM) platforms from discrete GPU
// platforms; the two have different capping mechanisms and therefore
// different allocation-scenario structure in the paper.
type Kind int

// Platform kinds.
const (
	KindCPU Kind = iota
	KindGPU
)

// String returns "cpu" or "gpu".
func (k Kind) String() string {
	switch k {
	case KindCPU:
		return "cpu"
	case KindGPU:
		return "gpu"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Platform is one of the experimental platforms of Table 2: a CPU node
// (processor package + DRAM, power-capped through RAPL) or a discrete GPU
// card (SMs + global memory, controlled through clock offsets and the
// board power governor).
type Platform struct {
	// Name is the short identifier used on the command line, e.g.
	// "ivybridge" or "titanxp".
	Name string
	// Paper is the platform's designation in Table 2 of the paper.
	Paper string
	// Kind selects the control model.
	Kind Kind
	// CPU and DRAM are set for KindCPU platforms.
	CPU  *CPUSpec
	DRAM *DRAMSpec
	// GPU is set for KindGPU platforms.
	GPU *GPUSpec
}

// Validate reports a descriptive error if the platform is incomplete or
// its component specs are inconsistent.
func (p *Platform) Validate() error {
	switch p.Kind {
	case KindCPU:
		if p.CPU == nil || p.DRAM == nil {
			return fmt.Errorf("platform %q: CPU platform missing CPU or DRAM spec", p.Name)
		}
		if err := p.CPU.Validate(); err != nil {
			return fmt.Errorf("platform %q: %w", p.Name, err)
		}
		if err := p.DRAM.Validate(); err != nil {
			return fmt.Errorf("platform %q: %w", p.Name, err)
		}
	case KindGPU:
		if p.GPU == nil {
			return fmt.Errorf("platform %q: GPU platform missing GPU spec", p.Name)
		}
		if err := p.GPU.Validate(); err != nil {
			return fmt.Errorf("platform %q: %w", p.Name, err)
		}
	default:
		return fmt.Errorf("platform %q: unknown kind %v", p.Name, p.Kind)
	}
	return nil
}

// IvyBridge returns CPU Platform I of Table 2: a dual-socket 10-core Xeon
// IvyBridge node (1.2–2.5 GHz per-processor DVFS) with 256 GB DDR3-1600.
// Calibration anchors from the paper: 48 W processor floor (P_cpu_L4),
// ~112 W CPU and ~116 W DRAM maximum demand for RandomAccess at 240 W,
// ~68 W DRAM background floor.
func IvyBridge() Platform {
	return Platform{
		Name:  "ivybridge",
		Paper: "CPU Platform I",
		Kind:  KindCPU,
		CPU: &CPUSpec{
			Name:               "2x Xeon 10-core IvyBridge",
			Sockets:            2,
			CoresPerSocket:     10,
			FMin:               1.2 * units.Gigahertz,
			FNom:               2.5 * units.Gigahertz,
			PStateStep:         100 * units.Megahertz,
			VMin:               0.78,
			VNom:               1.05,
			OpsPerCyclePerCore: 8, // AVX double-precision
			IdlePower:          48,
			UncorePower:        14,
			MaxDynPower:        118,
			TStateSteps:        8,
			MinDuty:            0.125,
		},
		DRAM: &DRAMSpec{
			Name:                "256 GB DDR3-1600",
			TotalGB:             256,
			Channels:            8, // 4 per socket
			TransferRate:        1600 * units.Megahertz,
			BytesPerTransfer:    8,
			BackgroundPower:     66,
			EnergyPerByteStream: 0.61e-9,
			EnergyPerByteRandom: 6.0e-9,
			MinThrottleHeadroom: 2,
		},
	}
}

// Haswell returns CPU Platform II of Table 2: a dual-socket 12-core Xeon
// Haswell node (1.2–2.3 GHz per-core DVFS) with 256 GB DDR4-2133. DDR4's
// lower background power (less frequent refresh) gives better performance
// at small budgets, while total power at maximum performance stays similar
// to the IvyBridge node, as the paper observes.
func Haswell() Platform {
	return Platform{
		Name:  "haswell",
		Paper: "CPU Platform II",
		Kind:  KindCPU,
		CPU: &CPUSpec{
			Name:               "2x Xeon 12-core Haswell",
			Sockets:            2,
			CoresPerSocket:     12,
			FMin:               1.2 * units.Gigahertz,
			FNom:               2.3 * units.Gigahertz,
			PStateStep:         100 * units.Megahertz,
			VMin:               0.75,
			VNom:               1.02,
			OpsPerCyclePerCore: 16, // AVX2 FMA double-precision
			IdlePower:          42,
			UncorePower:        16,
			MaxDynPower:        132,
			TStateSteps:        8,
			MinDuty:            0.125,
		},
		DRAM: &DRAMSpec{
			Name:                "256 GB DDR4-2133",
			TotalGB:             256,
			Channels:            8,
			TransferRate:        2133 * units.Megahertz,
			BytesPerTransfer:    8,
			BackgroundPower:     46,
			EnergyPerByteStream: 0.55e-9,
			EnergyPerByteRandom: 5.0e-9,
			MinThrottleHeadroom: 2,
		},
	}
}

// TitanXP returns GPU Platform I of Table 2: an Nvidia Titan XP (Pascal,
// 30 SMs, 12 GB GDDR5X). The board cap is settable from 125 W to 300 W
// with a 250 W default, matching the paper's description.
func TitanXP() Platform {
	return Platform{
		Name:  "titanxp",
		Paper: "GPU Platform I",
		Kind:  KindGPU,
		GPU: &GPUSpec{
			Name:               "Nvidia Titan XP",
			SMs:                30,
			LanesPerSM:         128,
			OpsPerCyclePerLane: 2, // FMA
			SMClockMin:         582 * units.Megahertz,
			SMClockNom:         1582 * units.Megahertz,
			SMClockStep:        12.5 * units.Megahertz,
			VMin:               0.65,
			VNom:               1.06,
			IdleBoard:          14,
			SMIdlePower:        12,
			SMMaxDynPower:      232,
			Mem: GPUMemSpec{
				Name:          "12 GB GDDR5X",
				ClockMin:      4000 * units.Megahertz,
				ClockNom:      5705 * units.Megahertz,
				ClockMax:      6000 * units.Megahertz,
				ClockStep:     100 * units.Megahertz,
				BytesPerClock: 96, // 384-bit bus
				PowerMin:      30,
				PowerMax:      78,
			},
			TDP:    250,
			MinCap: 125,
			MaxCap: 300,
		},
	}
}

// TitanV returns GPU Platform II of Table 2: an Nvidia Titan V (Volta,
// 80 SMs, 12 GB HBM2). HBM2 has a much smaller memory power range than
// GDDR5X, which the paper notes shrinks the allocation space and leaves
// most applications memory bounded.
func TitanV() Platform {
	return Platform{
		Name:  "titanv",
		Paper: "GPU Platform II",
		Kind:  KindGPU,
		GPU: &GPUSpec{
			Name:               "Nvidia Titan V",
			SMs:                80,
			LanesPerSM:         64,
			OpsPerCyclePerLane: 2,
			SMClockMin:         405 * units.Megahertz,
			SMClockNom:         1455 * units.Megahertz,
			SMClockStep:        12.5 * units.Megahertz,
			VMin:               0.62,
			VNom:               1.0,
			IdleBoard:          16,
			SMIdlePower:        14,
			SMMaxDynPower:      126,
			Mem: GPUMemSpec{
				Name:          "12 GB HBM2",
				ClockMin:      600 * units.Megahertz,
				ClockNom:      850 * units.Megahertz,
				ClockMax:      900 * units.Megahertz,
				ClockStep:     25 * units.Megahertz,
				BytesPerClock: 768, // 3072-bit bus
				PowerMin:      13,
				PowerMax:      27,
			},
			TDP:    250,
			MinCap: 100,
			MaxCap: 300,
		},
	}
}

// H100 returns a modern datacenter GPU platform: an Nvidia H100
// SXM-class card (Hopper, 132 SMs, HBM3). Unlike the Titan-era boards
// of Table 2, the settable cap range has a high floor — nvidia-smi
// rejects caps below 200 W — so coordination budgets can fall below the
// smallest enforceable cap, a regime the paper-era platforms never hit.
// HBM3's wide bus gives a large memory power range, so memory-clock
// coordination has real leverage again (unlike Titan V's narrow HBM2
// band).
func H100() Platform {
	return Platform{
		Name:  "h100",
		Paper: "Modern GPU Platform I (post-paper)",
		Kind:  KindGPU,
		GPU: &GPUSpec{
			Name:               "Nvidia H100 SXM",
			SMs:                132,
			LanesPerSM:         128,
			OpsPerCyclePerLane: 2, // FMA
			SMClockMin:         345 * units.Megahertz,
			SMClockNom:         1980 * units.Megahertz,
			SMClockStep:        15 * units.Megahertz,
			VMin:               0.62,
			VNom:               1.05,
			IdleBoard:          30,
			SMIdlePower:        40,
			SMMaxDynPower:      500,
			Mem: GPUMemSpec{
				Name: "80 GB HBM3",
				// HBM3 exposes a narrow clock range: unlike GDDR boards
				// the stacks never halve their clock, so even the 60 W
				// floor sustains ~70% of peak bandwidth. A lower floor
				// would starve compute-bound kernels whenever Algorithm 2
				// pins memory at P_mem_min.
				ClockMin:      1200 * units.Megahertz,
				ClockNom:      1600 * units.Megahertz,
				ClockMax:      1700 * units.Megahertz,
				ClockStep:     25 * units.Megahertz,
				BytesPerClock: 1280, // 5120-bit bus
				PowerMin:      60,
				PowerMax:      120,
			},
			TDP:    700,
			MinCap: 200,
			MaxCap: 700,
		},
	}
}

// H200 returns the H100's HBM3e refresh: the same GH100 compute die
// behind a wider, faster memory system (141 GB HBM3e). The cap range is
// unchanged, so the 200 W floor applies here too.
func H200() Platform {
	return Platform{
		Name:  "h200",
		Paper: "Modern GPU Platform II (post-paper)",
		Kind:  KindGPU,
		GPU: &GPUSpec{
			Name:               "Nvidia H200 SXM",
			SMs:                132,
			LanesPerSM:         128,
			OpsPerCyclePerLane: 2,
			SMClockMin:         345 * units.Megahertz,
			SMClockNom:         1980 * units.Megahertz,
			SMClockStep:        15 * units.Megahertz,
			VMin:               0.62,
			VNom:               1.05,
			IdleBoard:          30,
			SMIdlePower:        40,
			SMMaxDynPower:      500,
			Mem: GPUMemSpec{
				Name: "141 GB HBM3e",
				// Same narrow HBM clock range as the H100's stacks.
				ClockMin:      1250 * units.Megahertz,
				ClockNom:      1650 * units.Megahertz,
				ClockMax:      1750 * units.Megahertz,
				ClockStep:     25 * units.Megahertz,
				BytesPerClock: 1536, // 6144-bit bus
				PowerMin:      70,
				PowerMax:      145,
			},
			TDP:    700,
			MinCap: 200,
			MaxCap: 700,
		},
	}
}

// Platforms returns all four experimental platforms of Table 2 in paper
// order.
func Platforms() []Platform {
	return []Platform{IvyBridge(), Haswell(), TitanXP(), TitanV()}
}

// Modern returns the post-paper platforms: H100-class cards whose cap
// floors and memory systems differ qualitatively from Table 2 hardware.
func Modern() []Platform {
	return []Platform{H100(), H200()}
}

// AllPlatforms returns every modeled platform: the four Table 2
// platforms followed by the modern additions. Lookup paths (CLI, wire,
// decision tables) use this superset; figure reproductions stay on
// Platforms() so the paper artifacts keep their exact platform set.
func AllPlatforms() []Platform {
	return append(Platforms(), Modern()...)
}

// PlatformByName looks up a platform by its short name. The error lists
// the valid names.
func PlatformByName(name string) (Platform, error) {
	for _, p := range AllPlatforms() {
		if p.Name == name {
			return p, nil
		}
	}
	var names []string
	for _, p := range AllPlatforms() {
		names = append(names, p.Name)
	}
	sort.Strings(names)
	return Platform{}, fmt.Errorf("unknown platform %q (valid: %v)", name, names)
}
