package hw

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/units"
)

func ivyCPU() *CPUSpec { p := IvyBridge(); return p.CPU }

func TestCPUValidateAllPlatforms(t *testing.T) {
	for _, p := range Platforms() {
		if err := p.Validate(); err != nil {
			t.Errorf("platform %s: %v", p.Name, err)
		}
	}
}

func TestCPUValidateRejectsBadSpecs(t *testing.T) {
	base := *ivyCPU()
	mutations := []struct {
		name string
		mut  func(c *CPUSpec)
	}{
		{"zero sockets", func(c *CPUSpec) { c.Sockets = 0 }},
		{"zero cores", func(c *CPUSpec) { c.CoresPerSocket = 0 }},
		{"negative fmin", func(c *CPUSpec) { c.FMin = -1 }},
		{"fnom below fmin", func(c *CPUSpec) { c.FNom = c.FMin - 1 }},
		{"zero pstate step", func(c *CPUSpec) { c.PStateStep = 0 }},
		{"zero vmin", func(c *CPUSpec) { c.VMin = 0 }},
		{"vnom below vmin", func(c *CPUSpec) { c.VNom = c.VMin / 2 }},
		{"zero ops", func(c *CPUSpec) { c.OpsPerCyclePerCore = 0 }},
		{"zero idle", func(c *CPUSpec) { c.IdlePower = 0 }},
		{"zero dyn", func(c *CPUSpec) { c.MaxDynPower = 0 }},
		{"negative uncore", func(c *CPUSpec) { c.UncorePower = -1 }},
		{"zero tstates", func(c *CPUSpec) { c.TStateSteps = 0 }},
		{"bad duty", func(c *CPUSpec) { c.MinDuty = 1.5 }},
	}
	for _, m := range mutations {
		c := base
		m.mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: Validate() accepted invalid spec", m.name)
		}
	}
}

func TestCPUCores(t *testing.T) {
	if got := ivyCPU().Cores(); got != 20 {
		t.Errorf("IvyBridge cores = %d, want 20", got)
	}
	hp := Haswell()
	if got := hp.CPU.Cores(); got != 24 {
		t.Errorf("Haswell cores = %d, want 24", got)
	}
}

func TestCPUPStatesCoverRange(t *testing.T) {
	c := ivyCPU()
	ps := c.PStates()
	if len(ps) < 2 {
		t.Fatalf("too few P-states: %d", len(ps))
	}
	if ps[0] != c.FMin {
		t.Errorf("first P-state %v, want %v", ps[0], c.FMin)
	}
	if ps[len(ps)-1] != c.FNom {
		t.Errorf("last P-state %v, want %v", ps[len(ps)-1], c.FNom)
	}
	for i := 1; i < len(ps); i++ {
		if ps[i] <= ps[i-1] {
			t.Errorf("P-states not strictly ascending at %d: %v, %v", i, ps[i-1], ps[i])
		}
	}
	// 1.2..2.5 GHz in 100 MHz steps = 14 states.
	if len(ps) != 14 {
		t.Errorf("IvyBridge P-state count = %d, want 14", len(ps))
	}
}

func TestCPUDuties(t *testing.T) {
	c := ivyCPU()
	ds := c.Duties()
	if ds[0] != 1.0 {
		t.Errorf("first duty %v, want 1.0", ds[0])
	}
	last := ds[len(ds)-1]
	if math.Abs(last-c.MinDuty) > 1e-9 {
		t.Errorf("last duty %v, want %v", last, c.MinDuty)
	}
	for i := 1; i < len(ds); i++ {
		if ds[i] >= ds[i-1] {
			t.Errorf("duties not strictly descending at %d", i)
		}
	}
	if len(ds) != 9 { // 100% plus 8 throttle steps
		t.Errorf("duty count = %d, want 9", len(ds))
	}
}

func TestCPUVoltageMonotone(t *testing.T) {
	c := ivyCPU()
	prev := -1.0
	for _, f := range c.PStates() {
		v := c.Voltage(f)
		if v <= prev {
			t.Errorf("voltage not increasing at %v", f)
		}
		prev = v
	}
	if got := c.Voltage(c.FMin); got != c.VMin {
		t.Errorf("V(FMin) = %v, want %v", got, c.VMin)
	}
	if got := c.Voltage(c.FNom); got != c.VNom {
		t.Errorf("V(FNom) = %v, want %v", got, c.VNom)
	}
}

func TestCPUPowerMonotoneInEachArg(t *testing.T) {
	c := ivyCPU()
	// Monotone in frequency.
	prev := units.Power(0)
	for _, f := range c.PStates() {
		p := c.Power(f, 1, 0.8)
		if p <= prev {
			t.Errorf("power not increasing in frequency at %v", f)
		}
		prev = p
	}
	// Monotone in duty.
	pLow := c.Power(c.FNom, 0.5, 0.8)
	pHigh := c.Power(c.FNom, 1.0, 0.8)
	if pLow >= pHigh {
		t.Errorf("power not increasing in duty: %v vs %v", pLow, pHigh)
	}
	// Monotone in activity.
	aLow := c.Power(c.FNom, 1, 0.2)
	aHigh := c.Power(c.FNom, 1, 0.9)
	if aLow >= aHigh {
		t.Errorf("power not increasing in activity: %v vs %v", aLow, aHigh)
	}
}

func TestCPUPowerFloorAndBounds(t *testing.T) {
	c := ivyCPU()
	f := func(fGHz, duty, act float64) bool {
		freq := units.Frequency(math.Abs(math.Mod(fGHz, 3)) * 1e9)
		d := math.Abs(math.Mod(duty, 1))
		a := math.Abs(math.Mod(act, 1))
		p := c.Power(freq, d, a)
		return p >= c.IdlePower && p <= c.MaxPower(1)+0.001
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCPUCalibrationIvyBridge(t *testing.T) {
	c := ivyCPU()
	// Hardware floor is the paper's P_cpu_L4 = 48 W.
	if c.IdlePower != 48 {
		t.Errorf("IdlePower = %v, want 48 W (paper P_cpu_L4)", c.IdlePower)
	}
	// RandomAccess-like activity (~0.43) should land near the paper's
	// ~108-112 W maximum CPU demand.
	p := c.MaxPower(0.43).Watts()
	if p < 105 || p > 118 {
		t.Errorf("SRA-like max CPU power = %.1f W, want 105-118 W", p)
	}
	// DGEMM-like activity (~0.9) should exceed 150 W.
	if p := c.MaxPower(0.9).Watts(); p < 150 {
		t.Errorf("DGEMM-like max CPU power = %.1f W, want >150 W", p)
	}
	// Absolute package max should stay under a plausible 2-socket TDP.
	if p := c.MaxPower(1).Watts(); p > 230 {
		t.Errorf("absolute max %.1f W implausibly high", p)
	}
}

func TestCPUPeakComputeRate(t *testing.T) {
	c := ivyCPU()
	got := c.PeakComputeRate(c.FNom, 1).GOPSValue()
	want := 20 * 8 * 2.5 // cores * ops/cycle * GHz = 400 GFLOPS
	if math.Abs(got-want) > 0.5 {
		t.Errorf("IvyBridge peak = %.1f GFLOPS, want %.1f", got, want)
	}
	// Duty scales linearly.
	half := c.PeakComputeRate(c.FNom, 0.5).GOPSValue()
	if math.Abs(half-want/2) > 0.5 {
		t.Errorf("half duty peak = %.1f, want %.1f", half, want/2)
	}
}

func TestCPUMinActivePowerBelowMaxPower(t *testing.T) {
	for _, p := range Platforms() {
		if p.Kind != KindCPU {
			continue
		}
		c := p.CPU
		for _, act := range []float64{0.1, 0.5, 1.0} {
			lo := c.MinActivePower(act)
			hi := c.MaxPower(act)
			if lo >= hi {
				t.Errorf("%s act=%.1f: MinActivePower %v >= MaxPower %v", p.Name, act, lo, hi)
			}
			if lo < c.IdlePower {
				t.Errorf("%s: MinActivePower below hardware floor", p.Name)
			}
		}
	}
}
