package dyncoord

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/sim"
	"repro/internal/units"
	"repro/internal/workload"
)

func ivy(t *testing.T) hw.Platform {
	t.Helper()
	p, err := hw.PlatformByName("ivybridge")
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func wl(t *testing.T, name string) workload.Workload {
	t.Helper()
	w, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestPhaseProfilesPerPhase(t *testing.T) {
	p := ivy(t)
	w := wl(t, "ft") // fft (compute-lean) + transpose (memory-heavy)
	profs, err := PhaseProfiles(p, w)
	if err != nil {
		t.Fatal(err)
	}
	if len(profs) != 2 {
		t.Fatalf("profiles = %d, want 2", len(profs))
	}
	// The transpose phase demands a larger memory share than the FFT
	// phase — that difference is what dynamic coordination exploits.
	fftShare := profs[0].Critical.MemMax.Watts() /
		(profs[0].Critical.MemMax + profs[0].Critical.CPUMax).Watts()
	trShare := profs[1].Critical.MemMax.Watts() /
		(profs[1].Critical.MemMax + profs[1].Critical.CPUMax).Watts()
	if trShare <= fftShare {
		t.Errorf("transpose memory share %.2f should exceed fft %.2f", trShare, fftShare)
	}
	// GPU platform rejected.
	xp, _ := hw.PlatformByName("titanxp")
	if _, err := PhaseProfiles(xp, w); err == nil {
		t.Error("GPU platform accepted")
	}
}

func TestPlanRespectsBudget(t *testing.T) {
	p := ivy(t)
	for _, name := range []string{"bt", "sp", "ft", "mg", "lu"} {
		w := wl(t, name)
		for _, budget := range []units.Power{180, 210, 240} {
			plan, err := PlanCPU(p, w, budget)
			if err != nil {
				t.Fatal(err)
			}
			if plan.Rejected() {
				continue
			}
			if got := plan.MaxAllocated(); got > budget+0.01 {
				t.Errorf("%s at %v: plan allocates %v", name, budget, got)
			}
			if len(plan.Steps) != len(w.Phases) {
				t.Errorf("%s: %d steps for %d phases", name, len(plan.Steps), len(w.Phases))
			}
		}
	}
}

func TestExecuteMatchesStaticForSinglePhase(t *testing.T) {
	// For a single-phase workload, per-phase coordination IS static
	// coordination: identical allocation, identical performance.
	p := ivy(t)
	w := wl(t, "dgemm")
	cmp, err := Compare(p, w, 230)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.StaticPerf <= 0 || cmp.DynamicPerf <= 0 {
		t.Fatalf("both policies should run: %+v", cmp)
	}
	if math.Abs(cmp.Gain) > 0.001 {
		t.Errorf("single-phase gain should be ~0, got %.3f", cmp.Gain)
	}
}

func TestDynamicNeverLosesToStatic(t *testing.T) {
	// Per-phase allocations are tailored to each phase; aggregate
	// performance must not fall below the static whole-run allocation
	// (beyond actuator-quantization noise).
	p := ivy(t)
	for _, name := range []string{"bt", "sp", "ft", "mg", "lu"} {
		w := wl(t, name)
		for _, budget := range []units.Power{200, 230, 260} {
			cmp, err := Compare(p, w, budget)
			if err != nil {
				t.Fatal(err)
			}
			if cmp.StaticPerf == 0 || cmp.DynamicPerf == 0 {
				continue
			}
			if cmp.Gain < -0.02 {
				t.Errorf("%s at %v: dynamic loses %.1f%% to static", name, budget, -cmp.Gain*100)
			}
		}
	}
}

func TestDynamicGainsOnPhaseHeterogeneousWorkloads(t *testing.T) {
	// FT's fft and transpose phases have very different memory demand;
	// at a budget that pinches the whole-run profile, per-phase
	// reallocation must buy measurable performance somewhere.
	p := ivy(t)
	bestGain := 0.0
	for _, name := range []string{"ft", "bt", "sp", "mg", "lu"} {
		w := wl(t, name)
		for _, budget := range []units.Power{185, 200, 215, 230} {
			cmp, err := Compare(p, w, budget)
			if err != nil {
				t.Fatal(err)
			}
			if cmp.StaticPerf > 0 && cmp.DynamicPerf > 0 && cmp.Gain > bestGain {
				bestGain = cmp.Gain
			}
		}
	}
	if bestGain < 0.02 {
		t.Errorf("dynamic coordination should gain >2%% somewhere, best was %.2f%%", bestGain*100)
	}
}

func TestExecutionPowersBoundedByBudget(t *testing.T) {
	p := ivy(t)
	w := wl(t, "ft")
	budget := units.Power(220)
	plan, err := PlanCPU(p, w, budget)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Rejected() {
		t.Skip("budget rejected")
	}
	ex, err := plan.Execute(p, w)
	if err != nil {
		t.Fatal(err)
	}
	if ex.PeakTotalPower > budget+1 {
		t.Errorf("peak power %v exceeds budget %v", ex.PeakTotalPower, budget)
	}
	if ex.AvgProcPower <= 0 || ex.AvgMemPower <= 0 {
		t.Error("average powers missing")
	}
	if len(ex.PhasePerfs) != len(w.Phases) {
		t.Error("per-phase rates missing")
	}
}

func TestExecuteStepMismatch(t *testing.T) {
	p := ivy(t)
	w := wl(t, "ft")
	plan := Plan{Workload: "ft", Budget: 220, Steps: []Step{{Phase: "only-one", Weight: 1}}}
	if _, err := plan.Execute(p, w); err == nil {
		t.Error("step/phase mismatch accepted")
	}
}

func TestDynamicConsistentWithDirectSim(t *testing.T) {
	// If every step uses the same allocation, Execute must agree with the
	// one-shot simulator on aggregate performance.
	p := ivy(t)
	w := wl(t, "mg")
	alloc := struct{ proc, mem units.Power }{120, 110}
	var plan Plan
	for _, ph := range w.Phases {
		plan.Steps = append(plan.Steps, Step{
			Phase: ph.Name, Weight: ph.Weight,
			Alloc: core.Allocation{Proc: alloc.proc, Mem: alloc.mem},
		})
	}
	ex, err := plan.Execute(p, w)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := sim.RunCPU(p, &w, alloc.proc, alloc.mem)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ex.Perf-direct.Perf) > 0.01*direct.Perf {
		t.Errorf("uniform plan perf %.2f vs direct sim %.2f", ex.Perf, direct.Perf)
	}
}
