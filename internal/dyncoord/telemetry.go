package dyncoord

import "repro/internal/telemetry"

// Planner instrument handles; nil (no-op) until Instrument is called.
var (
	mPlans           *telemetry.Counter
	mSteps           *telemetry.Counter
	mStaticFallback  *telemetry.Counter
	mDegradeFallback *telemetry.Counter
)

// Instrument registers the dynamic-planner metrics on r. Passing nil
// disables them. Call before planning concurrently.
func Instrument(r *telemetry.Registry) {
	mPlans = r.Counter("dyncoord_plans_total",
		"Dynamic plans built (phase-aware or degraded).")
	mSteps = r.Counter("dyncoord_steps_total",
		"Plan steps emitted across all plans.")
	const fbHelp = "Phases that could not use phase-aware COORD, by fallback kind."
	mStaticFallback = r.Counter("dyncoord_fallbacks_total", fbHelp, "kind", "static")
	mDegradeFallback = r.Counter("dyncoord_fallbacks_total", fbHelp, "kind", "degraded")
}
