// Package dyncoord implements dynamic, phase-aware power coordination —
// the paper's stated future work ("online dynamic power budgeting and
// distribution") and the remedy its Section 6.2 suggests for multi-phase
// applications whose irregular profiles "suggest the need of adaptive
// scheduling inside the application for best performance".
//
// Static COORD picks one allocation for a whole run from the workload's
// aggregate profile. Dynamic COORD profiles each execution phase
// separately and re-runs the coordination at every phase boundary, so a
// memory-heavy transpose phase and a compute-heavy FFT phase each get an
// allocation matched to their own critical power values — under the same
// node budget throughout.
package dyncoord

import (
	"fmt"

	"repro/internal/coord"
	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/profile"
	"repro/internal/sim"
	"repro/internal/units"
	"repro/internal/workload"
)

// Step is one phase of a dynamic plan: the allocation COORD chose for it.
type Step struct {
	// Phase names the workload phase.
	Phase string
	// Weight is the phase's share of total work.
	Weight float64
	// Alloc is the allocation in force while the phase runs.
	Alloc core.Allocation
	// Status is COORD's verdict for this phase.
	Status coord.Status
}

// Plan is a per-phase allocation schedule for one workload and budget.
type Plan struct {
	Workload string
	Budget   units.Power
	Steps    []Step
}

// phaseWorkload wraps one phase as a standalone single-phase workload so
// the profiler and simulator can treat it independently.
func phaseWorkload(w *workload.Workload, i int) workload.Workload {
	ph := w.Phases[i]
	ph.Weight = 1
	return workload.Workload{
		Name:            fmt.Sprintf("%s/%s", w.Name, ph.Name),
		Suite:           w.Suite,
		Desc:            w.Desc,
		Kind:            w.Kind,
		PerfUnit:        w.PerfUnit,
		PerfPerUnitRate: w.PerfPerUnitRate,
		Phases:          []workload.Phase{ph},
	}
}

// PhaseProfiles extracts a critical-power profile for every phase of a
// CPU workload. The cost is one lightweight profile per distinct phase —
// still far below a full allocation sweep.
func PhaseProfiles(p hw.Platform, w workload.Workload) ([]profile.CPUProfile, error) {
	if p.Kind != hw.KindCPU {
		return nil, fmt.Errorf("dyncoord: platform %q is not a CPU platform", p.Name)
	}
	profs := make([]profile.CPUProfile, len(w.Phases))
	for i := range w.Phases {
		pw := phaseWorkload(&w, i)
		prof, err := profile.ProfileCPU(p, pw)
		if err != nil {
			return nil, fmt.Errorf("dyncoord: phase %q: %w", w.Phases[i].Name, err)
		}
		profs[i] = prof
	}
	return profs, nil
}

// PlanCPU builds a dynamic plan: COORD runs once per phase against that
// phase's own profile, always under the same node budget. Phases whose
// budget falls below their productive threshold inherit the static
// allocation for the whole workload instead of stalling the run.
func PlanCPU(p hw.Platform, w workload.Workload, budget units.Power) (Plan, error) {
	profs, err := PhaseProfiles(p, w)
	if err != nil {
		return Plan{}, err
	}
	staticProf, err := profile.ProfileCPU(p, w)
	if err != nil {
		return Plan{}, err
	}
	staticDecision := coord.CPU(staticProf, budget)

	plan := Plan{Workload: w.Name, Budget: budget}
	for i, ph := range w.Phases {
		d := coord.CPU(profs[i], budget)
		if d.Status == coord.StatusTooSmall {
			// Fall back to the whole-workload decision; if that too is
			// rejected the plan reports it.
			d = staticDecision
		}
		plan.Steps = append(plan.Steps, Step{
			Phase:  ph.Name,
			Weight: ph.Weight,
			Alloc:  d.Alloc,
			Status: d.Status,
		})
	}
	return plan, nil
}

// Rejected reports whether any step has no usable allocation (the budget
// is below both the phase and whole-workload thresholds).
func (pl *Plan) Rejected() bool {
	for _, s := range pl.Steps {
		if s.Status == coord.StatusTooSmall {
			return true
		}
	}
	return false
}

// MaxAllocated returns the largest total allocation across steps — the
// node power bound the plan actually needs.
func (pl *Plan) MaxAllocated() units.Power {
	var m units.Power
	for _, s := range pl.Steps {
		if t := s.Alloc.Total(); t > m {
			m = t
		}
	}
	return m
}

// Execution is the outcome of running a plan.
type Execution struct {
	// Perf is the aggregate performance in the workload's unit.
	Perf float64
	// AvgProcPower and AvgMemPower are time-weighted actual draws.
	AvgProcPower, AvgMemPower units.Power
	// PeakTotalPower is the highest per-phase actual draw — the value a
	// node power bound must cover.
	PeakTotalPower units.Power
	// PhasePerfs records each phase's own rate (work units/s).
	PhasePerfs []float64
}

// Execute runs each phase under its step's allocation and aggregates
// exactly like a sequential execution: total time is the weighted sum of
// per-phase times, powers are time-weighted.
func (pl *Plan) Execute(p hw.Platform, w workload.Workload) (Execution, error) {
	if len(pl.Steps) != len(w.Phases) {
		return Execution{}, fmt.Errorf("dyncoord: plan has %d steps for %d phases",
			len(pl.Steps), len(w.Phases))
	}
	var ex Execution
	totalTime := 0.0
	type phaseRun struct {
		time      float64
		proc, mem units.Power
	}
	var runs []phaseRun
	for i := range w.Phases {
		pw := phaseWorkload(&w, i)
		res, err := sim.RunCPU(p, &pw, pl.Steps[i].Alloc.Proc, pl.Steps[i].Alloc.Mem)
		if err != nil {
			return Execution{}, err
		}
		rate := res.UnitRate.OpsPerSecond()
		if rate <= 0 {
			return Execution{}, fmt.Errorf("dyncoord: phase %q made no progress", w.Phases[i].Name)
		}
		ex.PhasePerfs = append(ex.PhasePerfs, rate)
		t := pl.Steps[i].Weight / rate
		totalTime += t
		runs = append(runs, phaseRun{time: t, proc: res.ProcPower, mem: res.MemPower})
		if tp := res.ProcPower + res.MemPower; tp > ex.PeakTotalPower {
			ex.PeakTotalPower = tp
		}
	}
	if totalTime <= 0 {
		return Execution{}, fmt.Errorf("dyncoord: zero total time")
	}
	ex.Perf = w.PerfPerUnitRate / totalTime
	for _, r := range runs {
		share := r.time / totalTime
		ex.AvgProcPower += units.Power(share * r.proc.Watts())
		ex.AvgMemPower += units.Power(share * r.mem.Watts())
	}
	return ex, nil
}

// Comparison contrasts dynamic per-phase coordination against the static
// whole-run COORD allocation for one workload and budget.
type Comparison struct {
	Workload string
	Budget   units.Power
	// StaticPerf and DynamicPerf are the aggregate performances; either
	// is zero when the corresponding policy rejected the budget.
	StaticPerf, DynamicPerf float64
	// Gain is DynamicPerf/StaticPerf - 1.
	Gain float64
}

// Compare evaluates both policies under the same budget.
func Compare(p hw.Platform, w workload.Workload, budget units.Power) (Comparison, error) {
	cmp := Comparison{Workload: w.Name, Budget: budget}

	prof, err := profile.ProfileCPU(p, w)
	if err != nil {
		return cmp, err
	}
	if d := coord.CPU(prof, budget); d.Status != coord.StatusTooSmall {
		res, err := sim.RunCPU(p, &w, d.Alloc.Proc, d.Alloc.Mem)
		if err != nil {
			return cmp, err
		}
		cmp.StaticPerf = res.Perf
	}

	plan, err := PlanCPU(p, w, budget)
	if err != nil {
		return cmp, err
	}
	if !plan.Rejected() {
		ex, err := plan.Execute(p, w)
		if err != nil {
			return cmp, err
		}
		cmp.DynamicPerf = ex.Perf
	}
	if cmp.StaticPerf > 0 && cmp.DynamicPerf > 0 {
		cmp.Gain = cmp.DynamicPerf/cmp.StaticPerf - 1
	}
	return cmp, nil
}
