// Package dyncoord implements dynamic, phase-aware power coordination —
// the paper's stated future work ("online dynamic power budgeting and
// distribution") and the remedy its Section 6.2 suggests for multi-phase
// applications whose irregular profiles "suggest the need of adaptive
// scheduling inside the application for best performance".
//
// Static COORD picks one allocation for a whole run from the workload's
// aggregate profile. Dynamic COORD profiles each execution phase
// separately and re-runs the coordination at every phase boundary, so a
// memory-heavy transpose phase and a compute-heavy FFT phase each get an
// allocation matched to their own critical power values — under the same
// node budget throughout.
package dyncoord

import (
	"fmt"

	"repro/internal/coord"
	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/profile"
	"repro/internal/sim"
	"repro/internal/units"
	"repro/internal/workload"
)

// Step is one phase of a dynamic plan: the allocation COORD chose for it.
type Step struct {
	// Phase names the workload phase.
	Phase string
	// Weight is the phase's share of total work.
	Weight float64
	// Alloc is the allocation in force while the phase runs.
	Alloc core.Allocation
	// Status is COORD's verdict for this phase.
	Status coord.Status
	// FellBack reports that the phase's own profile was missing or
	// unreliable and a degraded policy produced the allocation instead
	// of phase-aware COORD.
	FellBack bool
}

// Plan is a per-phase allocation schedule for one workload and budget.
type Plan struct {
	Workload string
	Budget   units.Power
	Steps    []Step
}

// phaseWorkload wraps one phase as a standalone single-phase workload so
// the profiler and simulator can treat it independently.
func phaseWorkload(w *workload.Workload, i int) workload.Workload {
	ph := w.Phases[i]
	ph.Weight = 1
	return workload.Workload{
		Name:            fmt.Sprintf("%s/%s", w.Name, ph.Name),
		Suite:           w.Suite,
		Desc:            w.Desc,
		Kind:            w.Kind,
		PerfUnit:        w.PerfUnit,
		PerfPerUnitRate: w.PerfPerUnitRate,
		Phases:          []workload.Phase{ph},
	}
}

// PhaseProfiles extracts a critical-power profile for every phase of a
// CPU workload. The cost is one lightweight profile per distinct phase —
// still far below a full allocation sweep.
func PhaseProfiles(p hw.Platform, w workload.Workload) ([]profile.CPUProfile, error) {
	if p.Kind != hw.KindCPU {
		return nil, fmt.Errorf("dyncoord: platform %q is not a CPU platform", p.Name)
	}
	profs := make([]profile.CPUProfile, len(w.Phases))
	for i := range w.Phases {
		pw := phaseWorkload(&w, i)
		prof, err := profile.ProfileCPU(p, pw)
		if err != nil {
			return nil, fmt.Errorf("dyncoord: phase %q: %w", w.Phases[i].Name, err)
		}
		profs[i] = prof
	}
	return profs, nil
}

// PlanCPU builds a dynamic plan: COORD runs once per phase against that
// phase's own profile, always under the same node budget. Phases whose
// budget falls below their productive threshold inherit the static
// allocation for the whole workload instead of stalling the run.
func PlanCPU(p hw.Platform, w workload.Workload, budget units.Power) (Plan, error) {
	profs, err := PhaseProfiles(p, w)
	if err != nil {
		return Plan{}, err
	}
	staticProf, err := profile.ProfileCPU(p, w)
	if err != nil {
		return Plan{}, err
	}
	staticDecision := coord.CPU(staticProf, budget)

	mPlans.Inc()
	plan := Plan{Workload: w.Name, Budget: budget}
	for i, ph := range w.Phases {
		d := coord.CPU(profs[i], budget)
		if d.Status == coord.StatusTooSmall {
			// Fall back to the whole-workload decision; if that too is
			// rejected the plan reports it.
			d = staticDecision
			mStaticFallback.Inc()
		}
		mSteps.Inc()
		plan.Steps = append(plan.Steps, Step{
			Phase:  ph.Name,
			Weight: ph.Weight,
			Alloc:  d.Alloc,
			Status: d.Status,
		})
	}
	return plan, nil
}

// ProfileHealth marks whether a phase profile can be trusted by the
// planner.
type ProfileHealth int

// Profile health states.
const (
	// ProfileGood: the profile is present and trusted.
	ProfileGood ProfileHealth = iota
	// ProfileUnreliable: the profile exists but its measurements are
	// suspect (taken through a faulty sensor, stale after migration, ...).
	ProfileUnreliable
	// ProfileMissing: no profile could be taken at all.
	ProfileMissing
)

// String names the health state.
func (h ProfileHealth) String() string {
	switch h {
	case ProfileGood:
		return "good"
	case ProfileUnreliable:
		return "unreliable"
	case ProfileMissing:
		return "missing"
	default:
		return fmt.Sprintf("ProfileHealth(%d)", int(h))
	}
}

// PhaseProfile is a per-phase profile together with its health.
type PhaseProfile struct {
	Prof   profile.CPUProfile
	Health ProfileHealth
}

// conservativeProfile builds a critical-power profile from hardware
// constants alone — no measurement, nothing to trust. Maximum demands
// are the component physical maxima (stream-pattern peak for DRAM), so a
// memory-first split over it warrants memory generously and can never
// under-provision: the safe direction, per Section 3.4.2.
func conservativeProfile(p hw.Platform) profile.CPUProfile {
	cpu, dram := p.CPU, p.DRAM
	prof := profile.CPUProfile{Platform: p.Name, Workload: "(hardware-conservative)"}
	prof.Critical.CPUFloor = cpu.IdlePower
	prof.Critical.CPULowThrottle = cpu.MinActivePower(1)
	prof.Critical.CPULowPState = cpu.Power(cpu.FMin, 1, 1)
	prof.Critical.CPUMax = cpu.MaxPower(1)
	prof.Critical.MemFloor = dram.BackgroundPower
	prof.Critical.MemAtCPULow = dram.BackgroundPower + dram.MinThrottleHeadroom
	prof.Critical.MemMax = dram.MaxPower(0)
	return prof
}

// PlanCPUDegraded builds a dynamic plan when some (or all) phase
// profiles are missing or unreliable, instead of erroring: phases with a
// good profile get phase-aware COORD as usual; damaged phases fall back
// to the memory-first baseline — the conservative policy of the paper's
// reference [19], which over-provisions memory but avoids the
// catastrophic memory-under-budget cliff — computed over the
// whole-workload profile when it is trusted, or over a hardware-derived
// conservative profile when it is not. static may be nil when no
// whole-workload profile is available.
func PlanCPUDegraded(p hw.Platform, w workload.Workload, budget units.Power, phases []PhaseProfile, static *profile.CPUProfile) (Plan, error) {
	if p.Kind != hw.KindCPU {
		return Plan{}, fmt.Errorf("dyncoord: platform %q is not a CPU platform", p.Name)
	}
	if len(phases) != len(w.Phases) {
		return Plan{}, fmt.Errorf("dyncoord: %d phase profiles for %d phases", len(phases), len(w.Phases))
	}
	fallbackProf := conservativeProfile(p)
	if static != nil {
		fallbackProf = *static
	}
	fallback := coord.MemoryFirst(fallbackProf, budget)

	mPlans.Inc()
	plan := Plan{Workload: w.Name, Budget: budget}
	for i, ph := range w.Phases {
		mSteps.Inc()
		step := Step{Phase: ph.Name, Weight: ph.Weight}
		if phases[i].Health == ProfileGood {
			d := coord.CPU(phases[i].Prof, budget)
			if d.Status != coord.StatusTooSmall {
				step.Alloc, step.Status = d.Alloc, d.Status
				plan.Steps = append(plan.Steps, step)
				continue
			}
		}
		step.FellBack = true
		mDegradeFallback.Inc()
		step.Alloc, step.Status = fallback.Alloc, fallback.Status
		plan.Steps = append(plan.Steps, step)
	}
	return plan, nil
}

// PlanCPUOrDegrade is the resilient entry point: it profiles each phase
// individually, marks phases whose profiling failed as missing rather
// than aborting the plan, and degrades those to the memory-first
// fallback. Only platform-level misuse still errors.
func PlanCPUOrDegrade(p hw.Platform, w workload.Workload, budget units.Power) (Plan, error) {
	if p.Kind != hw.KindCPU {
		return Plan{}, fmt.Errorf("dyncoord: platform %q is not a CPU platform", p.Name)
	}
	phases := make([]PhaseProfile, len(w.Phases))
	for i := range w.Phases {
		pw := phaseWorkload(&w, i)
		prof, err := profile.ProfileCPU(p, pw)
		if err != nil {
			phases[i] = PhaseProfile{Health: ProfileMissing}
			continue
		}
		phases[i] = PhaseProfile{Prof: prof, Health: ProfileGood}
	}
	var static *profile.CPUProfile
	if prof, err := profile.ProfileCPU(p, w); err == nil {
		static = &prof
	}
	return PlanCPUDegraded(p, w, budget, phases, static)
}

// Fallbacks counts the steps that could not use phase-aware COORD.
func (pl *Plan) Fallbacks() int {
	n := 0
	for _, s := range pl.Steps {
		if s.FellBack {
			n++
		}
	}
	return n
}

// Rejected reports whether any step has no usable allocation (the budget
// is below both the phase and whole-workload thresholds).
func (pl *Plan) Rejected() bool {
	for _, s := range pl.Steps {
		if s.Status == coord.StatusTooSmall {
			return true
		}
	}
	return false
}

// MaxAllocated returns the largest total allocation across steps — the
// node power bound the plan actually needs.
func (pl *Plan) MaxAllocated() units.Power {
	var m units.Power
	for _, s := range pl.Steps {
		if t := s.Alloc.Total(); t > m {
			m = t
		}
	}
	return m
}

// Execution is the outcome of running a plan.
type Execution struct {
	// Perf is the aggregate performance in the workload's unit.
	Perf float64
	// AvgProcPower and AvgMemPower are time-weighted actual draws.
	AvgProcPower, AvgMemPower units.Power
	// PeakTotalPower is the highest per-phase actual draw — the value a
	// node power bound must cover.
	PeakTotalPower units.Power
	// PhasePerfs records each phase's own rate (work units/s).
	PhasePerfs []float64
}

// Execute runs each phase under its step's allocation and aggregates
// exactly like a sequential execution: total time is the weighted sum of
// per-phase times, powers are time-weighted.
func (pl *Plan) Execute(p hw.Platform, w workload.Workload) (Execution, error) {
	if len(pl.Steps) != len(w.Phases) {
		return Execution{}, fmt.Errorf("dyncoord: plan has %d steps for %d phases",
			len(pl.Steps), len(w.Phases))
	}
	var ex Execution
	totalTime := 0.0
	type phaseRun struct {
		time      float64
		proc, mem units.Power
	}
	var runs []phaseRun
	for i := range w.Phases {
		pw := phaseWorkload(&w, i)
		res, err := sim.RunCPU(p, &pw, pl.Steps[i].Alloc.Proc, pl.Steps[i].Alloc.Mem)
		if err != nil {
			return Execution{}, err
		}
		rate := res.UnitRate.OpsPerSecond()
		if rate <= 0 {
			return Execution{}, fmt.Errorf("dyncoord: phase %q made no progress", w.Phases[i].Name)
		}
		ex.PhasePerfs = append(ex.PhasePerfs, rate)
		t := pl.Steps[i].Weight / rate
		totalTime += t
		runs = append(runs, phaseRun{time: t, proc: res.ProcPower, mem: res.MemPower})
		if tp := res.ProcPower + res.MemPower; tp > ex.PeakTotalPower {
			ex.PeakTotalPower = tp
		}
	}
	if totalTime <= 0 {
		return Execution{}, fmt.Errorf("dyncoord: zero total time")
	}
	ex.Perf = w.PerfPerUnitRate / totalTime
	for _, r := range runs {
		share := r.time / totalTime
		ex.AvgProcPower += units.Power(share * r.proc.Watts())
		ex.AvgMemPower += units.Power(share * r.mem.Watts())
	}
	return ex, nil
}

// Comparison contrasts dynamic per-phase coordination against the static
// whole-run COORD allocation for one workload and budget.
type Comparison struct {
	Workload string
	Budget   units.Power
	// StaticPerf and DynamicPerf are the aggregate performances; either
	// is zero when the corresponding policy rejected the budget.
	StaticPerf, DynamicPerf float64
	// Gain is DynamicPerf/StaticPerf - 1.
	Gain float64
}

// Compare evaluates both policies under the same budget.
func Compare(p hw.Platform, w workload.Workload, budget units.Power) (Comparison, error) {
	cmp := Comparison{Workload: w.Name, Budget: budget}

	prof, err := profile.ProfileCPU(p, w)
	if err != nil {
		return cmp, err
	}
	if d := coord.CPU(prof, budget); d.Status != coord.StatusTooSmall {
		res, err := sim.RunCPU(p, &w, d.Alloc.Proc, d.Alloc.Mem)
		if err != nil {
			return cmp, err
		}
		cmp.StaticPerf = res.Perf
	}

	plan, err := PlanCPU(p, w, budget)
	if err != nil {
		return cmp, err
	}
	if !plan.Rejected() {
		ex, err := plan.Execute(p, w)
		if err != nil {
			return cmp, err
		}
		cmp.DynamicPerf = ex.Perf
	}
	if cmp.StaticPerf > 0 && cmp.DynamicPerf > 0 {
		cmp.Gain = cmp.DynamicPerf/cmp.StaticPerf - 1
	}
	return cmp, nil
}
