package dyncoord

import (
	"fmt"

	"repro/internal/coord"
	"repro/internal/hw"
	"repro/internal/profile"
	"repro/internal/units"
	"repro/internal/workload"
)

// PlanTableInputs is the table-builder hook for PlanCPUOrDegrade: it
// reports the budget breakpoints a precomputed plan table must place on
// its grid, and whether every profile the planner needs is available.
//
// Between two adjacent breakpoints every step of a plan is linear in
// the budget: each step is either phase-aware COORD (kinks at the
// phase profile's Algorithm 1 boundaries) or, when the phase budget is
// below its productive threshold, the memory-first fallback over the
// whole-workload profile (kinks at that baseline's clamp points). The
// returned set is the union of both, so a grid containing it makes
// interpolated plans exact.
//
// healthy is false when any phase profile or the whole-workload profile
// is missing — exactly the conditions under which PlanCPUOrDegrade
// degrades. Degraded pairs must not be table-served: the degraded path
// bypasses precomputed state the same way fault-mode execution bypasses
// the evalpool cache.
func PlanTableInputs(p hw.Platform, w workload.Workload) (breaks []units.Power, healthy bool, err error) {
	if p.Kind != hw.KindCPU {
		return nil, false, fmt.Errorf("dyncoord: platform %q is not a CPU platform", p.Name)
	}
	profs, err := PhaseProfiles(p, w)
	if err != nil {
		return nil, false, nil
	}
	static, err := profile.ProfileCPU(p, w)
	if err != nil {
		return nil, false, nil
	}
	for _, prof := range profs {
		breaks = append(breaks, coord.CPUBreakpoints(prof)...)
	}
	breaks = append(breaks, coord.CPUBreakpoints(static)...)
	breaks = append(breaks, coord.MemoryFirstBreakpoints(static)...)
	return breaks, true, nil
}
