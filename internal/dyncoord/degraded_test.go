package dyncoord

import (
	"testing"

	"repro/internal/coord"
	"repro/internal/hw"
	"repro/internal/profile"
	"repro/internal/units"
)

func TestPlanCPUDegradedAllGoodMatchesPlanCPU(t *testing.T) {
	p := ivy(t)
	w := wl(t, "bt")
	budget := units.Power(208)
	profs, err := PhaseProfiles(p, w)
	if err != nil {
		t.Fatal(err)
	}
	phases := make([]PhaseProfile, len(profs))
	for i, pr := range profs {
		phases[i] = PhaseProfile{Prof: pr, Health: ProfileGood}
	}
	static, err := profile.ProfileCPU(p, w)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := PlanCPUDegraded(p, w, budget, phases, &static)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Fallbacks() != 0 {
		t.Fatalf("%d fallbacks with all-good profiles", plan.Fallbacks())
	}
	ref, err := PlanCPU(p, w, budget)
	if err != nil {
		t.Fatal(err)
	}
	for i := range plan.Steps {
		if plan.Steps[i].Alloc != ref.Steps[i].Alloc {
			t.Fatalf("step %d alloc %v != PlanCPU's %v", i, plan.Steps[i].Alloc, ref.Steps[i].Alloc)
		}
	}
}

func TestPlanCPUDegradedFallsBackPerPhase(t *testing.T) {
	p := ivy(t)
	w := wl(t, "bt")
	budget := units.Power(208)
	profs, err := PhaseProfiles(p, w)
	if err != nil {
		t.Fatal(err)
	}
	static, err := profile.ProfileCPU(p, w)
	if err != nil {
		t.Fatal(err)
	}
	for _, health := range []ProfileHealth{ProfileUnreliable, ProfileMissing} {
		phases := make([]PhaseProfile, len(profs))
		for i, pr := range profs {
			phases[i] = PhaseProfile{Prof: pr, Health: ProfileGood}
		}
		// Damage phase 1 only.
		phases[1].Health = health
		plan, err := PlanCPUDegraded(p, w, budget, phases, &static)
		if err != nil {
			t.Fatalf("health %v: %v", health, err)
		}
		if plan.Fallbacks() != 1 {
			t.Fatalf("health %v: %d fallbacks, want 1", health, plan.Fallbacks())
		}
		if !plan.Steps[1].FellBack {
			t.Fatalf("health %v: damaged phase did not fall back", health)
		}
		if plan.Steps[0].FellBack || plan.Steps[2].FellBack {
			t.Fatalf("health %v: healthy phases fell back", health)
		}
		// The fallback is the memory-first baseline over the static
		// profile: memory gets its full demand first.
		want := coord.MemoryFirst(static, budget)
		if plan.Steps[1].Alloc != want.Alloc {
			t.Fatalf("health %v: fallback alloc %v, want memory-first %v", health, plan.Steps[1].Alloc, want.Alloc)
		}
		// A degraded plan still executes.
		if _, err := plan.Execute(p, w); err != nil {
			t.Fatalf("health %v: degraded plan does not execute: %v", health, err)
		}
	}
}

func TestPlanCPUDegradedNoProfilesAtAll(t *testing.T) {
	// Every phase missing and no static profile: the hardware-derived
	// conservative profile must still produce a runnable plan instead of
	// an error.
	p := ivy(t)
	w := wl(t, "stream")
	phases := make([]PhaseProfile, len(w.Phases))
	for i := range phases {
		phases[i] = PhaseProfile{Health: ProfileMissing}
	}
	plan, err := PlanCPUDegraded(p, w, units.Power(208), phases, nil)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Fallbacks() != len(w.Phases) {
		t.Fatalf("%d fallbacks for %d phases", plan.Fallbacks(), len(w.Phases))
	}
	for _, s := range plan.Steps {
		if s.Alloc.Total() <= 0 {
			t.Fatalf("fallback step %q has empty allocation", s.Phase)
		}
		if s.Alloc.Total() > units.Power(208) {
			t.Fatalf("fallback step %q allocation %v exceeds budget", s.Phase, s.Alloc.Total())
		}
	}
	if _, err := plan.Execute(p, w); err != nil {
		t.Fatalf("conservative plan does not execute: %v", err)
	}
}

func TestPlanCPUDegradedValidatesInput(t *testing.T) {
	p := ivy(t)
	w := wl(t, "bt")
	if _, err := PlanCPUDegraded(p, w, units.Power(208), nil, nil); err == nil {
		t.Error("mismatched phase count accepted")
	}
	gpu, _ := hw.PlatformByName("titanxp")
	phases := make([]PhaseProfile, len(w.Phases))
	if _, err := PlanCPUDegraded(gpu, w, units.Power(208), phases, nil); err == nil {
		t.Error("GPU platform accepted")
	}
}

func TestPlanCPUOrDegradeNeverErrorsOnHealthyInput(t *testing.T) {
	p := ivy(t)
	for _, name := range []string{"stream", "dgemm", "bt"} {
		w := wl(t, name)
		plan, err := PlanCPUOrDegrade(p, w, units.Power(208))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(plan.Steps) != len(w.Phases) {
			t.Fatalf("%s: %d steps for %d phases", name, len(plan.Steps), len(w.Phases))
		}
		// With a working profiler every phase should plan phase-aware.
		if plan.Fallbacks() != 0 {
			t.Fatalf("%s: %d unexpected fallbacks", name, plan.Fallbacks())
		}
	}
}
