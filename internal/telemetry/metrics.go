package telemetry

import (
	"math"
	"sort"
	"sync/atomic"
)

// atomicFloat is a lock-free float64 cell (bits in a uint64).
type atomicFloat struct {
	bits atomic.Uint64
}

func (f *atomicFloat) load() float64 { return math.Float64frombits(f.bits.Load()) }

func (f *atomicFloat) store(v float64) { f.bits.Store(math.Float64bits(v)) }

func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Counter is a monotone cumulative metric. The nil *Counter is a no-op,
// so uninstrumented hot paths cost one predicted branch and zero
// allocations.
type Counter struct {
	v atomicFloat
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter by v. Negative and NaN deltas are dropped —
// a counter only goes up.
func (c *Counter) Add(v float64) {
	if c == nil || !(v >= 0) {
		return
	}
	c.v.add(v)
}

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return c.v.load()
}

// Gauge is a metric that can go up and down. NaN and infinities are
// legal values (a sensor fault may well produce them); the encoders
// render them explicitly. The nil *Gauge is a no-op.
type Gauge struct {
	v atomicFloat
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.v.store(v)
}

// Add adjusts the gauge by v (negative to decrease).
func (g *Gauge) Add(v float64) {
	if g == nil {
		return
	}
	g.v.add(v)
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value (0 for a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v.load()
}

// Histogram is a bounded histogram over a fixed bucket layout declared
// at registration. Fixed layouts are a determinism rule, not a
// convenience: two runs that observe the same values always render the
// same buckets. Observations use one atomic add per bucket; the nil
// *Histogram is a no-op.
type Histogram struct {
	upper  []float64       // ascending upper bounds; +Inf implicit
	counts []atomic.Uint64 // len(upper)+1, last is the +Inf bucket
	sum    atomicFloat
	count  atomic.Uint64
}

func newHistogram(upper []float64) *Histogram {
	return &Histogram{
		upper:  append([]float64(nil), upper...),
		counts: make([]atomic.Uint64, len(upper)+1),
	}
}

// Observe records one value. NaN observations are dropped (they would
// poison the sum and land in no meaningful bucket).
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	i := sort.SearchFloat64s(h.upper, v) // first bucket with upper >= v (le semantics)
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.add(v)
}

// Bucket is one cumulative histogram bucket of a snapshot.
type Bucket struct {
	// Upper is the bucket's inclusive upper bound; +Inf for the last.
	Upper float64
	// Count is the cumulative count of observations <= Upper.
	Count uint64
}

// snapshot returns cumulative buckets, total count, and sum. Counts are
// read bucket by bucket; under concurrent writers the view may be
// mid-update, which monitoring tolerates — determinism tests only ever
// snapshot quiescent histograms.
func (h *Histogram) snapshot() (buckets []Bucket, count uint64, sum float64) {
	if h == nil {
		return nil, 0, 0
	}
	buckets = make([]Bucket, len(h.counts))
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		upper := math.Inf(1)
		if i < len(h.upper) {
			upper = h.upper[i]
		}
		buckets[i] = Bucket{Upper: upper, Count: cum}
	}
	return buckets, h.count.Load(), h.sum.load()
}

// Fixed bucket layouts shared by the stack's instruments. Reusing these
// keeps snapshots comparable across packages and runs.
var (
	// DurationBuckets covers control-loop and backoff durations in
	// seconds, from 100 ns to ten seconds. The sub-microsecond buckets
	// exist for the binary serving fast path, whose table hits complete
	// in well under 2 µs: with a 1 µs bottom bucket every hit collapsed
	// into it and the p50 was unreadable in BENCH_serve runs.
	DurationBuckets = []float64{1e-7, 5e-7, 1e-6, 1e-5, 1e-4, 1e-3, 5e-3, 0.01, 0.05, 0.1, 0.5, 1, 5, 10}

	// RatioBuckets covers achieved-over-best performance ratios; the
	// dense region near 1.0 is where COORD's envelope lives.
	RatioBuckets = []float64{0.5, 0.6, 0.7, 0.75, 0.8, 0.85, 0.9, 0.925, 0.95, 0.975, 0.99, 1.0}

	// PowerBuckets covers power amounts in watts, from a single watt to
	// a facility-scale kilowatt.
	PowerBuckets = []float64{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000}
)
