package telemetry

import (
	"context"
	"errors"
	"net"
	"net/http"
	"sync"
	"time"
)

// MetricsHandler serves the registry's metrics in Prometheus text
// exposition format; "?format=json" and "?format=text" select the
// snapshot's JSON and line-text encodings instead. A nil registry
// serves empty snapshots.
func MetricsHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		snap := r.Snapshot()
		switch req.URL.Query().Get("format") {
		case "json":
			w.Header().Set("Content-Type", "application/json")
			_, _ = w.Write([]byte(snap.JSON()))
		case "text":
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			_, _ = w.Write([]byte(snap.Text()))
		default:
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			_, _ = w.Write([]byte(snap.Prometheus()))
		}
	})
}

// Health is a concurrent-safe health flag for a /healthz endpoint: OK
// until marked unhealthy, with a reason string served alongside the 503.
type Health struct {
	mu     sync.Mutex
	bad    bool
	reason string
}

// SetHealthy marks the service healthy.
func (h *Health) SetHealthy() {
	h.mu.Lock()
	h.bad, h.reason = false, ""
	h.mu.Unlock()
}

// SetUnhealthy marks the service unhealthy with a reason.
func (h *Health) SetUnhealthy(reason string) {
	h.mu.Lock()
	h.bad, h.reason = true, reason
	h.mu.Unlock()
}

// OK reports the current state.
func (h *Health) OK() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return !h.bad
}

// Reason returns the unhealthy reason ("" when healthy).
func (h *Health) Reason() string {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.reason
}

// Handler serves 200 "ok" while healthy and 503 with the reason while
// not.
func (h *Health) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		h.mu.Lock()
		bad, reason := h.bad, h.reason
		h.mu.Unlock()
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if bad {
			w.WriteHeader(http.StatusServiceUnavailable)
			_, _ = w.Write([]byte("unhealthy: " + reason + "\n"))
			return
		}
		_, _ = w.Write([]byte("ok\n"))
	})
}

// ServeUntil serves h on ln until ctx is cancelled, then shuts the
// server down gracefully: new connections are refused while in-flight
// requests (e.g. a scrape racing the shutdown) are given up to drain to
// complete. It returns nil on a clean drain, the drain context's error
// if requests were still running at the deadline, or the serve error if
// the listener failed first.
func ServeUntil(ctx context.Context, ln net.Listener, h http.Handler, drain time.Duration) error {
	srv := &http.Server{Handler: h}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case <-ctx.Done():
		dctx, cancel := context.WithTimeout(context.Background(), drain)
		defer cancel()
		err := srv.Shutdown(dctx)
		<-errc // Serve has returned ErrServerClosed by now
		return err
	}
}
