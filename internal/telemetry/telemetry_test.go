package telemetry

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func assertValidJSON(t *testing.T, s string) {
	t.Helper()
	var v any
	if err := json.Unmarshal([]byte(s), &v); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, s)
	}
}

func TestCounterBasics(t *testing.T) {
	r := New()
	c := r.Counter("test_total", "help")
	c.Inc()
	c.Add(2.5)
	if got := c.Value(); got != 3.5 {
		t.Fatalf("counter = %v, want 3.5", got)
	}
	c.Add(-1)         // dropped: counters only go up
	c.Add(math.NaN()) // dropped
	if got := c.Value(); got != 3.5 {
		t.Fatalf("counter after bad adds = %v, want 3.5", got)
	}
	if r.Counter("test_total", "help") != c {
		t.Fatalf("re-registering returned a different handle")
	}
}

func TestGaugeBasics(t *testing.T) {
	r := New()
	g := r.Gauge("g", "help")
	g.Set(10)
	g.Dec()
	g.Add(0.5)
	if got := g.Value(); got != 9.5 {
		t.Fatalf("gauge = %v, want 9.5", got)
	}
	g.Set(math.Inf(1))
	if !math.IsInf(g.Value(), 1) {
		t.Fatalf("gauge should accept +Inf")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := New()
	h := r.Histogram("h", "help", []float64{1, 2, 5})
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 100} {
		h.Observe(v)
	}
	h.Observe(math.NaN()) // dropped
	buckets, count, sum := h.snapshot()
	if count != 6 {
		t.Fatalf("count = %d, want 6", count)
	}
	if sum != 0.5+1+1.5+2+3+100 {
		t.Fatalf("sum = %v", sum)
	}
	// le semantics: observations equal to an upper bound land inside it.
	want := []uint64{2, 4, 5, 6} // <=1, <=2, <=5, +Inf (cumulative)
	for i, bk := range buckets {
		if bk.Count != want[i] {
			t.Fatalf("bucket %d (le %v) = %d, want %d", i, bk.Upper, bk.Count, want[i])
		}
	}
	if !math.IsInf(buckets[len(buckets)-1].Upper, 1) {
		t.Fatalf("last bucket should be +Inf")
	}
}

func TestLabelsSortedAndDeduped(t *testing.T) {
	r := New()
	a := r.Counter("c", "h", "zeta", "1", "alpha", "2")
	b := r.Counter("c", "h", "alpha", "2", "zeta", "1")
	if a != b {
		t.Fatalf("label order should not distinguish series")
	}
	mustPanic(t, func() { r.Counter("c", "h", "odd") })
	mustPanic(t, func() { r.Counter("c", "h", "dup", "1", "dup", "2") })
	mustPanic(t, func() { r.Counter("c", "h", "bad-name", "1") })
	mustPanic(t, func() { r.Counter("0bad", "h") })
	mustPanic(t, func() { r.Gauge("c", "h") }) // type conflict
	mustPanic(t, func() { r.Histogram("hist", "h", nil) })
	mustPanic(t, func() { r.Histogram("hist", "h", []float64{2, 1}) })
}

func mustPanic(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	fn()
}

func TestNilRegistryAndHandles(t *testing.T) {
	var r *Registry
	c := r.Counter("x", "h")
	g := r.Gauge("x", "h")
	h := r.Histogram("x", "h", []float64{1})
	r.CounterFunc("x", "h", func() float64 { return 1 })
	r.GaugeFunc("x", "h", func() float64 { return 1 })
	r.AttachTracer(nil)
	c.Inc()
	c.Add(1)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 {
		t.Fatalf("nil handles should read zero")
	}
	snap := r.Snapshot()
	if len(snap.Points) != 0 || len(snap.Spans) != 0 {
		t.Fatalf("nil registry snapshot should be empty")
	}
	tr := r.Tracer()
	tr.Event("e", "s", "n") // no-op, no panic
	if tr.Len() != 0 {
		t.Fatalf("nil tracer should be empty")
	}
}

func TestSnapshotStableSorted(t *testing.T) {
	r := New()
	r.Counter("zzz_total", "z").Inc()
	r.Gauge("aaa", "a").Set(1)
	r.Counter("mmm_total", "m", "k", "b").Inc()
	r.Counter("mmm_total", "m", "k", "a").Add(2)
	snap := r.Snapshot()
	var got []string
	for _, p := range snap.Points {
		got = append(got, p.Name+signature(p.Labels))
	}
	want := []string{"aaa", `mmm_total{k="a"}`, `mmm_total{k="b"}`, "zzz_total"}
	if len(got) != len(want) {
		t.Fatalf("points = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("point %d = %q, want %q", i, got[i], want[i])
		}
	}
	if snap.Text() != r.Snapshot().Text() {
		t.Fatalf("quiescent snapshots should be byte-identical")
	}
}

func TestFuncBackedSeries(t *testing.T) {
	r := New()
	v := 41.0
	r.CounterFunc("fn_total", "h", func() float64 { v++; return v })
	s1 := r.Snapshot()
	s2 := r.Snapshot()
	if s1.Points[0].Value != 42 || s2.Points[0].Value != 43 {
		t.Fatalf("fn-backed series should be read at snapshot time: %v, %v",
			s1.Points[0].Value, s2.Points[0].Value)
	}
}

func TestTracerFakeClockDeterminism(t *testing.T) {
	run := func() string {
		base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
		tick := 0
		r := New(WithClock(func() time.Time {
			tick++
			return base.Add(time.Duration(tick) * time.Millisecond)
		}))
		tr := r.Tracer()
		tr.Event("boot", "node", "up")
		sp := tr.Start("solve", "engine")
		sp.End("done")
		tr.EventAt(1.5, "shock", "facility", "bound drop")
		return r.Snapshot().Text()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("fake-clock snapshots differ:\n%s\nvs\n%s", a, b)
	}
	if !strings.Contains(a, "span 0 boot") || !strings.Contains(a, "span 1 solve") {
		t.Fatalf("unexpected span text:\n%s", a)
	}
	if !strings.Contains(a, "sim=1.500s") {
		t.Fatalf("EventAt sim time missing:\n%s", a)
	}
}

func TestTracerSeqGapFree(t *testing.T) {
	var tr Tracer
	const workers, per = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				tr.Event("e", "s", "")
			}
		}()
	}
	wg.Wait()
	spans := tr.Spans()
	if len(spans) != workers*per {
		t.Fatalf("len = %d, want %d", len(spans), workers*per)
	}
	for i, sp := range spans {
		if sp.Seq != uint64(i) {
			t.Fatalf("span %d has seq %d: sequence not gap-free", i, sp.Seq)
		}
	}
}

func TestAttachTracer(t *testing.T) {
	r := New()
	var ext Tracer
	r.AttachTracer(&ext)
	r.Tracer().Event("own", "", "")
	ext.Event("attached", "", "")
	snap := r.Snapshot()
	if len(snap.Spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(snap.Spans))
	}
	if snap.Spans[0].Name != "own" || snap.Spans[1].Name != "attached" {
		t.Fatalf("span order wrong: %v", snap.Spans)
	}
}

func TestJSONDeterministicAndParseable(t *testing.T) {
	r := New()
	r.Gauge("weird", "h", "k", "a\"b\\c\nd").Set(math.NaN())
	r.Histogram("h", "h", []float64{1}).Observe(0.5)
	r.Tracer().EventAt(2, "ev", "scope", "note \"quoted\"")
	s := r.Snapshot()
	if s.JSON() != r.Snapshot().JSON() {
		t.Fatalf("JSON not deterministic")
	}
	assertValidJSON(t, s.JSON())
}

// TestDisabledTelemetryZeroAlloc pins the "disabled means free" rule:
// nil-handle updates must not allocate.
func TestDisabledTelemetryZeroAlloc(t *testing.T) {
	var (
		c  *Counter
		g  *Gauge
		h  *Histogram
		tr *Tracer
	)
	n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(2)
		g.Set(3)
		g.Add(1)
		h.Observe(0.5)
		tr.Event("e", "s", "n")
	})
	if n != 0 {
		t.Fatalf("disabled telemetry allocated %v allocs/op, want 0", n)
	}
}

// BenchmarkTelemetryDisabled is the perf gate for the nil fast path;
// `make check` runs it and the b.ReportAllocs figure must stay at 0.
func BenchmarkTelemetryDisabled(b *testing.B) {
	var (
		c *Counter
		g *Gauge
		h *Histogram
	)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
		g.Set(float64(i))
		h.Observe(float64(i))
	}
}

func BenchmarkCounterEnabled(b *testing.B) {
	c := New().Counter("bench_total", "h")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}
