package telemetry

import (
	"strings"
	"testing"
)

// TestRegressDurationBucketsResolveSubMicrosecond is the satellite-4
// regression: the binary serving fast path completes table hits in well
// under 2 µs, and with a 1 µs bottom bucket every hit collapsed into it
// — the histogram carried no information below the median. The layout
// now extends to 100 ns: observations at ~150 ns, ~300 ns, and ~800 ns
// must land in three distinct non-cumulative buckets.
func TestRegressDurationBucketsResolveSubMicrosecond(t *testing.T) {
	if DurationBuckets[0] != 1e-7 || DurationBuckets[1] != 5e-7 {
		t.Fatalf("DurationBuckets must start 1e-7, 5e-7; got %v", DurationBuckets[:2])
	}
	for i := 1; i < len(DurationBuckets); i++ {
		if !(DurationBuckets[i] > DurationBuckets[i-1]) {
			t.Fatalf("DurationBuckets not strictly ascending at %d: %v", i, DurationBuckets)
		}
	}

	r := New()
	h := r.Histogram("fastpath_seconds", "Fast-path latency.", DurationBuckets)
	h.Observe(1.5e-7) // typical decode+lookup+encode hit
	h.Observe(3e-7)
	h.Observe(8e-7)

	var pt *Point
	snap := r.Snapshot()
	for i := range snap.Points {
		if snap.Points[i].Name == "fastpath_seconds" {
			pt = &snap.Points[i]
		}
	}
	if pt == nil {
		t.Fatalf("histogram missing from snapshot")
	}
	// Buckets are cumulative; difference out the per-bucket counts for
	// the first three bins (<=1e-7, <=5e-7, <=1e-6).
	if len(pt.Buckets) < 3 {
		t.Fatalf("only %d buckets", len(pt.Buckets))
	}
	got := []uint64{
		pt.Buckets[0].Count,
		pt.Buckets[1].Count - pt.Buckets[0].Count,
		pt.Buckets[2].Count - pt.Buckets[1].Count,
	}
	want := []uint64{0, 2, 1} // 150 ns and 300 ns in (1e-7,5e-7], 800 ns in (5e-7,1e-6]
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("per-bucket counts = %v, want %v (sub-2µs hits collapsed)", got, want)
		}
	}

	// The exposition stays valid with the new layout.
	text := snap.Prometheus()
	if err := ValidateExposition(text); err != nil {
		t.Fatalf("exposition rejected: %v\n%s", err, text)
	}
	for _, wantLine := range []string{`le="1e-07"`, `le="5e-07"`} {
		if !strings.Contains(text, wantLine) {
			t.Fatalf("missing %s in exposition:\n%s", wantLine, text)
		}
	}
}
