package telemetry

import (
	"sync"
	"time"
)

// Span is one recorded trace span: either an instant event (Dur == 0,
// the common case for control-plane transitions) or a closed duration
// span. Sequence numbers are assigned at record time under the tracer
// lock, so within one tracer they are ordered and gap-free — Spans()[i]
// always has Seq == i, even under concurrent writers.
type Span struct {
	// Seq is the span's position in the tracer's record order.
	Seq uint64
	// Name classifies the span (e.g. "node-fail", "fault-round").
	Name string
	// Scope names the affected entity (node ID, job ID, round, ...).
	Scope string
	// Note is free-form context.
	Note string
	// SimTime is the simulation time in seconds for events raised from
	// simulated runs, or -1 when the span has no simulation time.
	SimTime float64
	// Start is the injected-clock wall time at record (End - Dur for
	// duration spans). The zero time means no clock was injected.
	Start time.Time
	// Dur is the span duration; 0 for instant events.
	Dur time.Duration
}

// Tracer records spans with an explicitly injected clock; it never
// reads the wall clock on its own, so traced output is a pure function
// of the recorded calls and the clock. The zero Tracer is ready to use;
// the nil *Tracer is a no-op.
type Tracer struct {
	mu    sync.Mutex
	clock func() time.Time
	spans []Span
}

// NewTracer returns a tracer stamping spans with the given clock (nil
// stamps the zero time).
func NewTracer(clock func() time.Time) *Tracer {
	return &Tracer{clock: clock}
}

// SetClock injects (or replaces) the tracer's clock.
func (t *Tracer) SetClock(fn func() time.Time) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.clock = fn
	t.mu.Unlock()
}

// record appends a span under the lock, assigning the next sequence
// number and stamping the clock on spans that do not carry their own
// start time. Holding the lock across both steps is what makes
// sequences gap-free and ordered.
func (t *Tracer) record(sp Span) {
	t.mu.Lock()
	sp.Seq = uint64(len(t.spans))
	if sp.Start.IsZero() && t.clock != nil {
		sp.Start = t.clock()
	}
	t.spans = append(t.spans, sp)
	t.mu.Unlock()
}

// Event records an instant span with no simulation time.
func (t *Tracer) Event(name, scope, note string) {
	if t == nil {
		return
	}
	t.record(Span{Name: name, Scope: scope, Note: note, SimTime: -1})
}

// EventAt records an instant span at the given simulation time.
func (t *Tracer) EventAt(sim float64, name, scope, note string) {
	if t == nil {
		return
	}
	t.record(Span{Name: name, Scope: scope, Note: note, SimTime: sim})
}

// ActiveSpan is an open duration span; End closes and records it.
type ActiveSpan struct {
	t           *Tracer
	name, scope string
	start       time.Time
}

// Start opens a duration span. Nothing is recorded until End, so an
// abandoned span leaves no gap in the sequence.
func (t *Tracer) Start(name, scope string) *ActiveSpan {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	var start time.Time
	if t.clock != nil {
		start = t.clock()
	}
	t.mu.Unlock()
	return &ActiveSpan{t: t, name: name, scope: scope, start: start}
}

// End closes the span with a note and records it.
func (s *ActiveSpan) End(note string) {
	if s == nil {
		return
	}
	var end time.Time
	s.t.mu.Lock()
	if s.t.clock != nil {
		end = s.t.clock()
	}
	s.t.mu.Unlock()
	var dur time.Duration
	if !end.IsZero() && !s.start.IsZero() {
		dur = end.Sub(s.start)
	}
	s.t.record(Span{Name: s.name, Scope: s.scope, Note: note, SimTime: -1, Start: s.start, Dur: dur})
}

// Spans returns a copy of the recorded spans in sequence order.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.spans...)
}

// Len returns the number of recorded spans.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Count returns the number of spans with the given name.
func (t *Tracer) Count(name string) int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for i := range t.spans {
		if t.spans[i].Name == name {
			n++
		}
	}
	return n
}
