package telemetry

import (
	"sync"
	"testing"
)

// TestRegistryRaceStress hammers the registry from many goroutines —
// registration, updates, tracing, and snapshots concurrently — so the
// race detector can prove the synchronization story. Run via `go test
// -race` (part of `make check`).
func TestRegistryRaceStress(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	const writers, iters = 8, 500

	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			names := []string{"shared_total", "other_total"}
			for i := 0; i < iters; i++ {
				c := r.Counter(names[i%2], "h", "w", []string{"a", "b", "c"}[w%3])
				c.Add(0.5)
				r.Gauge("depth", "h").Set(float64(i))
				r.Histogram("lat", "h", DurationBuckets).Observe(float64(i) * 1e-4)
				r.Tracer().Event("tick", "race", "")
			}
		}()
	}
	// Concurrent readers: snapshots and encoders while writes are in flight.
	for rd := 0; rd < 3; rd++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				snap := r.Snapshot()
				_ = snap.Text()
				_ = snap.JSON()
				if err := ValidateExposition(snap.Prometheus()); err != nil {
					t.Errorf("mid-flight snapshot invalid: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()

	snap := r.Snapshot()
	var shared, other float64
	for _, p := range snap.Points {
		switch p.Name {
		case "shared_total":
			shared += p.Value
		case "other_total":
			other += p.Value
		}
	}
	want := float64(writers*iters) * 0.5
	if shared+other != want {
		t.Fatalf("counter total = %v, want %v (lost updates)", shared+other, want)
	}
	if got := r.Tracer().Len(); got != writers*iters {
		t.Fatalf("spans = %d, want %d", got, writers*iters)
	}
}
