package telemetry

import (
	"context"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestMetricsHandlerFormats(t *testing.T) {
	r := New()
	r.Counter("hits_total", "Hits.").Add(5)
	h := MetricsHandler(r)

	get := func(url string) (*http.Response, string) {
		req := httptest.NewRequest("GET", url, nil)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		res := rec.Result()
		body, _ := io.ReadAll(res.Body)
		return res, string(body)
	}

	res, body := get("/metrics")
	if ct := res.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type = %q", ct)
	}
	if err := ValidateExposition(body); err != nil {
		t.Fatalf("/metrics not valid exposition format: %v\n%s", err, body)
	}
	if !strings.Contains(body, "hits_total 5") {
		t.Fatalf("missing sample:\n%s", body)
	}

	res, body = get("/metrics?format=json")
	if ct := res.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("json content type = %q", ct)
	}
	assertValidJSON(t, body)

	_, body = get("/metrics?format=text")
	if !strings.HasPrefix(body, "# telemetry snapshot\n") {
		t.Fatalf("text format missing header:\n%s", body)
	}
}

func TestMetricsHandlerNilRegistry(t *testing.T) {
	rec := httptest.NewRecorder()
	MetricsHandler(nil).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
	if err := ValidateExposition(rec.Body.String()); err != nil {
		t.Fatalf("empty exposition invalid: %v", err)
	}
}

func TestHealthFlips(t *testing.T) {
	var h Health
	get := func() (int, string) {
		rec := httptest.NewRecorder()
		h.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
		return rec.Code, rec.Body.String()
	}
	if code, body := get(); code != 200 || body != "ok\n" {
		t.Fatalf("fresh health = %d %q", code, body)
	}
	h.SetUnhealthy("watchdog engaged")
	if code, body := get(); code != http.StatusServiceUnavailable || !strings.Contains(body, "watchdog engaged") {
		t.Fatalf("unhealthy = %d %q", code, body)
	}
	if h.OK() || h.Reason() != "watchdog engaged" {
		t.Fatalf("state accessors wrong: %v %q", h.OK(), h.Reason())
	}
	h.SetHealthy()
	if code, _ := get(); code != 200 {
		t.Fatalf("recovered health = %d", code)
	}
}

// TestServeUntilDrainsInFlight pins graceful shutdown: a scrape that is
// mid-flight when the context is cancelled must complete with 200, and
// ServeUntil must return nil (clean drain) afterwards.
func TestServeUntilDrainsInFlight(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	inHandler := make(chan struct{})
	release := make(chan struct{})
	h := http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		close(inHandler)
		<-release
		_, _ = w.Write([]byte("slow ok"))
	})

	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- ServeUntil(ctx, ln, h, 5*time.Second) }()

	resc := make(chan *http.Response, 1)
	errc := make(chan error, 1)
	go func() {
		res, err := http.Get("http://" + ln.Addr().String() + "/metrics")
		if err != nil {
			errc <- err
			return
		}
		resc <- res
	}()

	<-inHandler // request is in flight
	cancel()    // begin shutdown while the handler is still working
	time.Sleep(10 * time.Millisecond)
	close(release)

	select {
	case res := <-resc:
		body, _ := io.ReadAll(res.Body)
		if res.StatusCode != 200 || string(body) != "slow ok" {
			t.Fatalf("in-flight request got %d %q", res.StatusCode, body)
		}
	case err := <-errc:
		t.Fatalf("in-flight request failed during drain: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight request never completed")
	}
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("ServeUntil = %v, want nil (clean drain)", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ServeUntil never returned")
	}

	// New connections must be refused after shutdown.
	if _, err := http.Get("http://" + ln.Addr().String() + "/metrics"); err == nil {
		t.Fatal("server still accepting after shutdown")
	}
}
