// Package wire connects the telemetry registry to every instrumented
// layer of the repository in one call, so commands do not need to know
// which packages expose metrics. It exists below cmd/ and above the
// instrumented packages; internal/telemetry itself stays import-free of
// the rest of the tree.
package wire

import (
	"repro/internal/cluster"
	"repro/internal/coord"
	"repro/internal/dyncoord"
	"repro/internal/evalpool"
	"repro/internal/faults"
	"repro/internal/rapl"
	"repro/internal/telemetry"
)

// Instrument points the deterministic control-stack layers (coord,
// dyncoord, cluster, rapl, faults) at r. These counters depend only on
// the simulated decisions, which are byte-identical across worker
// counts, so a registry wired this way snapshots reproducibly — the
// golden tests rely on that. Passing nil disables instrumentation.
//
// Not safe to call concurrently with instrumented code: wire first,
// then run.
func Instrument(r *telemetry.Registry) {
	coord.Instrument(r)
	dyncoord.Instrument(r)
	cluster.Instrument(r)
	rapl.Instrument(r)
	faults.Instrument(r)
}

// InstrumentEngine additionally exposes the shared evalpool engine's
// cache and worker statistics on r. They are kept out of Instrument
// because cache hit/miss/sim-run counts are racy under parallel workers
// (concurrent duplicate computation), which would break byte-identical
// golden snapshots. Long-running servers want them; golden tests do not.
func InstrumentEngine(r *telemetry.Registry) {
	evalpool.RegisterDefaultMetrics(r)
}
