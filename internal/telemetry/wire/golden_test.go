package wire

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/dyncoord"
	"repro/internal/evalpool"
	"repro/internal/faults"
	"repro/internal/hw"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/units"
	"repro/internal/workload"
)

// goldenSpec mirrors the representative mixed-fault scenario `pbc
// faults` uses by default.
const goldenSpec = "sensor.drop=0.05,sensor.noise=0.02,cap.fail=0.1,cap.stuck=0.05," +
	"node.mtbf=45,node.mttr=30,shock.mtbs=60,shock.frac=0.25,shock.len=10"

// captureGolden wires a fresh registry into the deterministic stack,
// replays the seeded fault scenario (a resilient node run, a faulty
// cluster queue, and a degraded dynamic plan) with the given engine
// worker count, and returns the snapshot text.
func captureGolden(t *testing.T, workers int) string {
	t.Helper()
	p, err := hw.PlatformByName("ivybridge")
	if err != nil {
		t.Fatal(err)
	}
	w, err := workload.ByName("stream")
	if err != nil {
		t.Fatal(err)
	}
	sp, err := faults.ParseSpec(goldenSpec)
	if err != nil {
		t.Fatal(err)
	}

	prev := evalpool.SetDefault(evalpool.New(evalpool.Options{Workers: workers}))
	defer evalpool.SetDefault(prev)

	reg := telemetry.New()
	Instrument(reg)
	defer Instrument(nil)

	// The transition log's spans join the snapshot through the attached
	// tracer; a fake clock stamps them with deterministic wall times.
	log := &trace.EventLog{}
	base := time.Date(2026, 8, 1, 12, 0, 0, 0, time.UTC)
	tick := 0
	log.Tracer().SetClock(func() time.Time {
		tick++
		return base.Add(time.Duration(tick) * time.Millisecond)
	})
	reg.AttachTracer(log.Tracer())

	const bound = units.Power(208)
	if _, err := faults.RunNode(p, w, bound, 2e12, 250*time.Millisecond,
		faults.NewInjector(sp, 1), log); err != nil {
		t.Fatal(err)
	}

	nodes := make([]cluster.Node, 3)
	for i := range nodes {
		nodes[i] = cluster.Node{ID: fmt.Sprintf("node%02d", i), Platform: p}
	}
	sched, err := cluster.NewScheduler(units.Power(bound.Watts()*3), nodes)
	if err != nil {
		t.Fatal(err)
	}
	var jobs []cluster.TimedJob
	for i := 0; i < 6; i++ {
		jobs = append(jobs, cluster.TimedJob{
			Job:   cluster.Job{ID: fmt.Sprintf("job%02d", i), Workload: w},
			Units: 2e12,
		})
	}
	if _, err := sched.RunQueueFaulty(jobs, cluster.PolicyCoord,
		cluster.DisciplineBackfill, faults.NewInjector(sp, 1), log); err != nil {
		t.Fatal(err)
	}

	if _, err := dyncoord.PlanCPUOrDegrade(p, w, 150); err != nil {
		t.Fatal(err)
	}

	return reg.Snapshot().Text()
}

// TestGoldenSnapshotByteIdentical is the acceptance gate for the
// telemetry layer's determinism rules: the same seeded fault scenario
// must produce byte-identical snapshot text run over run AND across
// engine worker counts (serial vs. 8 workers). Only the deterministic
// tier (wire.Instrument) is registered — engine cache metrics are
// excluded by design, because concurrent duplicate computation makes
// hit/miss counts worker-dependent.
func TestGoldenSnapshotByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("replays fault scenarios three times; skipped with -short")
	}
	serial1 := captureGolden(t, 1)
	serial2 := captureGolden(t, 1)
	if serial1 != serial2 {
		t.Fatalf("snapshot not reproducible run-over-run:\n--- run 1 ---\n%s\n--- run 2 ---\n%s",
			serial1, serial2)
	}
	parallel := captureGolden(t, 8)
	if serial1 != parallel {
		t.Fatalf("snapshot differs between workers=1 and workers=8:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serial1, parallel)
	}
	if len(serial1) == 0 || serial1 == "# telemetry snapshot\n" {
		t.Fatal("golden snapshot is empty — instrumentation not wired")
	}
}

// TestInstrumentNilResets checks that wiring nil after a run leaves the
// stack with free no-op handles (the disabled state tests rely on).
func TestInstrumentNilResets(t *testing.T) {
	reg := telemetry.New()
	Instrument(reg)
	Instrument(nil)
	InstrumentEngine(nil)
	// A decision after disabling must not affect the old registry.
	before := reg.Snapshot().Text()
	p, err := hw.PlatformByName("ivybridge")
	if err != nil {
		t.Fatal(err)
	}
	w, err := workload.ByName("stream")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dyncoord.PlanCPUOrDegrade(p, w, 150); err != nil {
		t.Fatal(err)
	}
	if after := reg.Snapshot().Text(); after != before {
		t.Fatalf("disabled instrumentation still wrote to the registry:\n%s\nvs\n%s", before, after)
	}
}
