package telemetry

import (
	"math"
	"strings"
	"testing"
)

func TestPrometheusEncodingValidates(t *testing.T) {
	r := New()
	r.Counter("jobs_total", "Jobs processed.", "queue", "batch").Add(3)
	r.Counter("jobs_total", "Jobs processed.", "queue", "interactive").Add(1)
	r.Gauge("depth", "Queue depth.").Set(7)
	h := r.Histogram("latency_seconds", "Latency.", DurationBuckets, "op", "solve")
	h.Observe(0.002)
	h.Observe(0.2)
	h.Observe(30) // +Inf bucket
	text := r.Snapshot().Prometheus()
	if err := ValidateExposition(text); err != nil {
		t.Fatalf("encoder output rejected: %v\n%s", err, text)
	}
	for _, want := range []string{
		"# HELP jobs_total Jobs processed.",
		"# TYPE jobs_total counter",
		`jobs_total{queue="batch"} 3`,
		`latency_seconds_bucket{op="solve",le="+Inf"} 3`,
		`latency_seconds_count{op="solve"} 3`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("missing %q in:\n%s", want, text)
		}
	}
	// One TYPE header per family even with several series.
	if strings.Count(text, "# TYPE jobs_total") != 1 {
		t.Fatalf("TYPE header repeated:\n%s", text)
	}
}

func TestPrometheusNonFiniteGauges(t *testing.T) {
	r := New()
	r.Gauge("a", "h").Set(math.NaN())
	r.Gauge("b", "h").Set(math.Inf(1))
	r.Gauge("c", "h").Set(math.Inf(-1))
	text := r.Snapshot().Prometheus()
	if err := ValidateExposition(text); err != nil {
		t.Fatalf("non-finite gauges rejected: %v\n%s", err, text)
	}
	for _, want := range []string{"a NaN", "b +Inf", "c -Inf"} {
		if !strings.Contains(text, want) {
			t.Fatalf("missing %q in:\n%s", want, text)
		}
	}
}

func TestLabelValueEscaping(t *testing.T) {
	cases := []string{
		`plain`, `with"quote`, `back\slash`, "new\nline", `mixed\"x` + "\n",
		`trailing\`, "", "unicode ✓",
	}
	for _, v := range cases {
		r := New()
		r.Counter("m_total", "h", "k", v).Inc()
		text := r.Snapshot().Prometheus()
		if err := ValidateExposition(text); err != nil {
			t.Fatalf("value %q: encoder output rejected: %v\n%s", v, err, text)
		}
		// Round-trip: the parser must recover the original value.
		var sample string
		for _, line := range strings.Split(text, "\n") {
			if strings.HasPrefix(line, "m_total{") {
				sample = line
			}
		}
		if sample == "" {
			t.Fatalf("value %q: no sample line in:\n%s", v, text)
		}
		_, labels, _, err := parseSample(sample)
		if err != nil {
			t.Fatalf("value %q: parse: %v", v, err)
		}
		if labels["k"] != v {
			t.Fatalf("round-trip %q -> %q", v, labels["k"])
		}
	}
}

func TestValidateExpositionRejectsMalformed(t *testing.T) {
	bad := []string{
		"no_value_here",
		`m{k="unterminated} 1`,
		`m{k="v} 1`,
		`m{bad-label="v"} 1`,
		`0leading 1`,
		"m 1 notatimestamp",
		"# TYPE m bogus\nm 1",
		"# TYPE m counter\n# TYPE m counter\nm 1",
		"# TYPE m histogram\nm 1",        // histogram sample without suffix
		"# TYPE m histogram\nm_bucket 1", // bucket without le
		"# TYPE m histogram\nm_bucket{le=\"2\"} 1\nm_bucket{le=\"1\"} 2", // le not ascending
		"# TYPE m histogram\nm_bucket{le=\"1\"} 5\nm_bucket{le=\"2\"} 3", // count not cumulative
		"# TYPE m histogram\nm_bucket{le=\"1\"} 1.5",                     // non-integer bucket count
	}
	for _, text := range bad {
		if err := ValidateExposition(text); err == nil {
			t.Fatalf("validator accepted malformed input:\n%s", text)
		}
	}
	good := []string{
		"",
		"# free-form comment",
		"m 1",
		"m 1 1234567890", // trailing timestamp
		"m{a=\"x\",b=\"y\"} -0.5",
		"# TYPE m histogram\nm_bucket{le=\"1\"} 1\nm_bucket{le=\"+Inf\"} 2\nm_sum 1.5\nm_count 2",
		"# TYPE m_sum counter\nm_sum 3", // _sum as a real counter name
	}
	for _, text := range good {
		if err := ValidateExposition(text); err != nil {
			t.Fatalf("validator rejected valid input: %v\n%s", err, text)
		}
	}
}

// FuzzPromText drives arbitrary label values and gauge values through
// the encoder and checks the hand-rolled validator accepts the output
// and the parser round-trips the label value.
func FuzzPromText(f *testing.F) {
	f.Add("plain", 1.0)
	f.Add(`q"u\o`+"\nte", math.NaN())
	f.Add("", math.Inf(-1))
	f.Add("\\", 0.0)
	f.Add("\x00control", 1e300)
	f.Fuzz(func(t *testing.T, labelVal string, v float64) {
		r := New()
		r.Gauge("fuzz_metric", "Fuzzed gauge.", "k", labelVal).Set(v)
		r.Histogram("fuzz_hist", "Fuzzed histogram.", RatioBuckets, "k", labelVal).Observe(v)
		text := r.Snapshot().Prometheus()
		if err := ValidateExposition(text); err != nil {
			t.Fatalf("validator rejected encoder output for label %q value %v: %v\n%s",
				labelVal, v, err, text)
		}
		var sample string
		for _, line := range strings.Split(text, "\n") {
			if strings.HasPrefix(line, "fuzz_metric{") {
				sample = line
			}
		}
		if sample == "" {
			t.Fatalf("no gauge sample for label %q:\n%s", labelVal, text)
		}
		_, labels, got, err := parseSample(sample)
		if err != nil {
			t.Fatalf("parse %q: %v", sample, err)
		}
		if labels["k"] != labelVal {
			t.Fatalf("label round-trip %q -> %q", labelVal, labels["k"])
		}
		parsed, err := parseFloat(got)
		if err != nil {
			t.Fatalf("value %q: %v", got, err)
		}
		if !(parsed == v || (math.IsNaN(parsed) && math.IsNaN(v))) {
			t.Fatalf("value round-trip %v -> %v", v, parsed)
		}
		// The JSON encoding must stay parseable too.
		assertValidJSON(t, r.Snapshot().JSON())
	})
}
