package telemetry

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// escapeLabelValue escapes a label value per the Prometheus text
// exposition format: backslash, double quote, and newline.
func escapeLabelValue(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	// Byte-wise on purpose: label values are arbitrary byte strings, and
	// rune iteration would rewrite invalid UTF-8 as U+FFFD instead of
	// round-tripping it.
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(s[i])
		}
	}
	return b.String()
}

// escapeHelp escapes a HELP string: backslash and newline (quotes are
// legal there).
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// withLabel renders a label set extended by one extra pair (used for
// histogram "le" labels), keeping the base signature's escaping.
func withLabel(labels []Label, key, value string) string {
	var b strings.Builder
	b.WriteByte('{')
	for _, l := range labels {
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteString(`",`)
	}
	b.WriteString(key)
	b.WriteString(`="`)
	b.WriteString(escapeLabelValue(value))
	b.WriteString(`"}`)
	return b.String()
}

// Prometheus renders the snapshot's metrics in the Prometheus text
// exposition format (version 0.0.4). Spans are not part of the format
// and are omitted. Families appear in sorted name order with one
// HELP/TYPE header each; histogram series expand into cumulative
// _bucket/_sum/_count samples.
func (s Snapshot) Prometheus() string {
	var b strings.Builder
	lastName := ""
	for _, p := range s.Points {
		if p.Name != lastName {
			lastName = p.Name
			if p.Help != "" {
				fmt.Fprintf(&b, "# HELP %s %s\n", p.Name, escapeHelp(p.Help))
			}
			fmt.Fprintf(&b, "# TYPE %s %s\n", p.Name, p.Type)
		}
		switch p.Type {
		case TypeHistogram:
			for _, bk := range p.Buckets {
				fmt.Fprintf(&b, "%s_bucket%s %d\n", p.Name, withLabel(p.Labels, "le", formatValue(bk.Upper)), bk.Count)
			}
			fmt.Fprintf(&b, "%s_sum%s %s\n", p.Name, signature(p.Labels), formatValue(p.Sum))
			fmt.Fprintf(&b, "%s_count%s %d\n", p.Name, signature(p.Labels), p.Count)
		default:
			fmt.Fprintf(&b, "%s%s %s\n", p.Name, signature(p.Labels), formatValue(p.Value))
		}
	}
	return b.String()
}

// ValidateExposition checks that text is well-formed Prometheus text
// exposition format: every line is a HELP/TYPE comment or a sample with
// a valid metric name, well-escaped label values, and a parseable
// value; sample names agree with the preceding TYPE declaration
// (histogram samples may carry the _bucket/_sum/_count suffixes); and
// histogram bucket counts are cumulative with ascending le bounds. It
// is the test-side oracle for the Prometheus encoder, including under
// fuzzing.
func ValidateExposition(text string) error {
	types := map[string]string{}
	type histState struct {
		lastLe  float64
		lastCum uint64
		started bool
	}
	hists := map[string]*histState{}
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		lineNo := ln + 1
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			fields := strings.SplitN(line[2:], " ", 3)
			if len(fields) < 3 {
				return fmt.Errorf("line %d: truncated comment %q", lineNo, line)
			}
			if !validName(fields[1]) {
				return fmt.Errorf("line %d: invalid metric name %q", lineNo, fields[1])
			}
			if fields[0] == "TYPE" {
				switch fields[2] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return fmt.Errorf("line %d: unknown type %q", lineNo, fields[2])
				}
				if _, dup := types[fields[1]]; dup {
					return fmt.Errorf("line %d: duplicate TYPE for %q", lineNo, fields[1])
				}
				types[fields[1]] = fields[2]
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // free-form comment
		}
		name, labels, value, err := parseSample(line)
		if err != nil {
			return fmt.Errorf("line %d: %w", lineNo, err)
		}
		base, suffix := name, ""
		for _, sfx := range []string{"_bucket", "_sum", "_count"} {
			if t, ok := types[strings.TrimSuffix(name, sfx)]; ok && t == "histogram" && strings.HasSuffix(name, sfx) {
				base, suffix = strings.TrimSuffix(name, sfx), sfx
				break
			}
		}
		typ, declared := types[base]
		if !declared {
			continue // untyped samples are legal
		}
		if typ == "histogram" && suffix == "" {
			return fmt.Errorf("line %d: histogram %q sample without _bucket/_sum/_count suffix", lineNo, name)
		}
		if typ != "histogram" && suffix != "" {
			base, suffix = name, "" // the suffix was part of the metric's own name
		}
		if suffix == "_bucket" {
			leStr, ok := labels["le"]
			if !ok {
				return fmt.Errorf("line %d: histogram bucket without le label", lineNo)
			}
			le, err := parseFloat(leStr)
			if err != nil {
				return fmt.Errorf("line %d: bad le %q: %w", lineNo, leStr, err)
			}
			cum, err := strconv.ParseUint(strings.TrimSpace(value), 10, 64)
			if err != nil {
				return fmt.Errorf("line %d: bucket count %q not a uint: %w", lineNo, value, err)
			}
			st := hists[base+"|"+labelsKey(labels)]
			if st == nil {
				st = &histState{}
				hists[base+"|"+labelsKey(labels)] = st
			}
			if st.started {
				if !(le > st.lastLe) {
					return fmt.Errorf("line %d: le %v not ascending after %v", lineNo, le, st.lastLe)
				}
				if cum < st.lastCum {
					return fmt.Errorf("line %d: bucket count %d below previous %d", lineNo, cum, st.lastCum)
				}
			}
			st.started, st.lastLe, st.lastCum = true, le, cum
			continue
		}
		if _, err := parseFloat(value); err != nil {
			return fmt.Errorf("line %d: bad value %q: %w", lineNo, value, err)
		}
	}
	return nil
}

// labelsKey renders a parsed label map (minus le) into a series key.
func labelsKey(labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if k != "le" {
			keys = append(keys, k)
		}
	}
	// Insertion sort: tiny maps, no import needed beyond what we have.
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(labels[k])
		b.WriteByte(';')
	}
	return b.String()
}

// parseFloat parses an exposition-format float, accepting the explicit
// NaN/+Inf/-Inf spellings.
func parseFloat(s string) (float64, error) {
	switch s {
	case "NaN":
		return math.NaN(), nil
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	}
	return strconv.ParseFloat(s, 64)
}

// parseSample splits one sample line into name, labels, and value,
// unescaping label values (the inverse of the encoder's escaping).
func parseSample(line string) (name string, labels map[string]string, value string, err error) {
	labels = map[string]string{}
	i := strings.IndexAny(line, "{ ")
	if i < 0 {
		return "", nil, "", fmt.Errorf("no value in sample %q", line)
	}
	name = line[:i]
	if !validName(name) {
		return "", nil, "", fmt.Errorf("invalid sample name %q", name)
	}
	rest := line[i:]
	if rest[0] == '{' {
		rest = rest[1:]
		for {
			if rest == "" {
				return "", nil, "", fmt.Errorf("unterminated label set")
			}
			if rest[0] == '}' {
				rest = rest[1:]
				break
			}
			eq := strings.IndexByte(rest, '=')
			if eq < 0 {
				return "", nil, "", fmt.Errorf("label without '='")
			}
			lname := rest[:eq]
			if !validLabelName(lname) {
				return "", nil, "", fmt.Errorf("invalid label name %q", lname)
			}
			rest = rest[eq+1:]
			if rest == "" || rest[0] != '"' {
				return "", nil, "", fmt.Errorf("label %q value not quoted", lname)
			}
			rest = rest[1:]
			var v strings.Builder
			for {
				if rest == "" {
					return "", nil, "", fmt.Errorf("unterminated label value")
				}
				c := rest[0]
				if c == '"' {
					rest = rest[1:]
					break
				}
				if c == '\n' {
					return "", nil, "", fmt.Errorf("raw newline in label value")
				}
				if c == '\\' {
					if len(rest) < 2 {
						return "", nil, "", fmt.Errorf("dangling escape")
					}
					switch rest[1] {
					case '\\':
						v.WriteByte('\\')
					case '"':
						v.WriteByte('"')
					case 'n':
						v.WriteByte('\n')
					default:
						return "", nil, "", fmt.Errorf("invalid escape \\%c", rest[1])
					}
					rest = rest[2:]
					continue
				}
				v.WriteByte(c)
				rest = rest[1:]
			}
			labels[lname] = v.String()
			if rest != "" && rest[0] == ',' {
				rest = rest[1:]
			}
		}
	}
	value = strings.TrimSpace(rest)
	if value == "" {
		return "", nil, "", fmt.Errorf("sample %q has no value", line)
	}
	// A timestamp may follow the value; we never emit one, but accept it.
	if sp := strings.IndexByte(value, ' '); sp >= 0 {
		if _, terr := strconv.ParseInt(value[sp+1:], 10, 64); terr != nil {
			return "", nil, "", fmt.Errorf("trailing garbage %q", value[sp+1:])
		}
		value = value[:sp]
	}
	return name, labels, value, nil
}
