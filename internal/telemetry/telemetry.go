// Package telemetry is the observability layer of the coordination
// stack: a dependency-free, race-safe metrics registry (counters,
// gauges, bounded histograms with fixed bucket layouts) plus
// lightweight span tracing with explicit clock injection.
//
// Design rules, in force everywhere the package is used:
//
//   - Determinism first. Histograms use fixed bucket layouts declared at
//     registration, snapshots are stable-sorted, float rendering uses
//     shortest-round-trip formatting, and no code path reads the wall
//     clock implicitly — tracers only see the clock they are given, so a
//     fake clock makes whole snapshots byte-reproducible.
//   - Disabled means free. Every instrument handle and the tracer are
//     nil-safe no-ops: an uninstrumented package holds nil handles and
//     its hot paths do not allocate (verified by
//     BenchmarkTelemetryDisabled and TestDisabledTelemetryZeroAlloc).
//   - No dependencies. Standard library only; the Prometheus exposition
//     encoder is hand-rolled and pinned by a fuzzed validator.
//
// Producers obtain long-lived handles once (at Instrument time) and
// update them on hot paths with atomic operations; consumers call
// Registry.Snapshot for a consistent-enough view and encode it as
// sorted text, JSON, or Prometheus exposition format.
package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// MetricType classifies a registered metric.
type MetricType int

// Metric types, mirroring the Prometheus exposition TYPE keywords.
const (
	TypeCounter MetricType = iota
	TypeGauge
	TypeHistogram
)

// String returns the exposition-format type keyword.
func (t MetricType) String() string {
	switch t {
	case TypeCounter:
		return "counter"
	case TypeGauge:
		return "gauge"
	case TypeHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("MetricType(%d)", int(t))
	}
}

// Label is one name/value pair attached to a metric.
type Label struct {
	Key, Value string
}

// Option configures a Registry.
type Option func(*Registry)

// WithClock injects the clock the registry's tracer stamps spans with.
// Tests inject a fake clock to make span output byte-reproducible; nil
// (the default) stamps the zero time, which is equally deterministic.
func WithClock(fn func() time.Time) Option {
	return func(r *Registry) { r.tracer.SetClock(fn) }
}

// Registry holds registered metrics and an attached set of tracers. The
// nil *Registry is a valid no-op: every getter returns a nil handle
// whose methods do nothing, so instrumentation can be compiled in
// unconditionally and enabled by swapping one pointer.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	names    []string // registration-independent sorted family names
	tracer   Tracer
	extra    []*Tracer
}

// family groups every label variant of one metric name under a single
// help string, type, and (for histograms) bucket layout.
type family struct {
	name    string
	help    string
	typ     MetricType
	buckets []float64
	entries map[string]*entry // keyed by rendered label signature
	order   []string          // signatures sorted
}

// entry is one (name, labels) series. Exactly one of the handle fields
// is set, matching the family type; fn-backed series are read at
// snapshot time (the collector pattern for pre-existing counters).
type entry struct {
	labels []Label
	ctr    *Counter
	gauge  *Gauge
	hist   *Histogram
	fn     func() float64
}

// New returns an empty registry.
func New(opts ...Option) *Registry {
	r := &Registry{families: map[string]*family{}}
	for _, o := range opts {
		o(r)
	}
	return r
}

// Tracer returns the registry's own tracer (nil for a nil registry; the
// nil tracer is a no-op).
func (r *Registry) Tracer() *Tracer {
	if r == nil {
		return nil
	}
	return &r.tracer
}

// AttachTracer adds an externally owned tracer (e.g. a trace.EventLog's)
// whose spans should appear in this registry's snapshots, after the
// registry's own. A nil registry or nil tracer ignores the call.
func (r *Registry) AttachTracer(t *Tracer) {
	if r == nil || t == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.extra = append(r.extra, t)
}

// validName reports whether s is a legal metric name
// ([a-zA-Z_:][a-zA-Z0-9_:]*).
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// validLabelName reports whether s is a legal label name
// ([a-zA-Z_][a-zA-Z0-9_]*).
func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// parseLabels converts a flat k,v,k,v,... list into sorted labels,
// panicking on malformed input — label sets are compile-time constants
// at instrumentation sites, so a bad one is a programmer error.
func parseLabels(name string, kv []string) []Label {
	if len(kv)%2 != 0 {
		panic(fmt.Sprintf("telemetry: metric %q: odd label list %q", name, kv))
	}
	labels := make([]Label, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		if !validLabelName(kv[i]) {
			panic(fmt.Sprintf("telemetry: metric %q: invalid label name %q", name, kv[i]))
		}
		labels = append(labels, Label{Key: kv[i], Value: kv[i+1]})
	}
	sort.Slice(labels, func(i, j int) bool { return labels[i].Key < labels[j].Key })
	for i := 1; i < len(labels); i++ {
		if labels[i].Key == labels[i-1].Key {
			panic(fmt.Sprintf("telemetry: metric %q: duplicate label %q", name, labels[i].Key))
		}
	}
	return labels
}

// signature renders sorted labels into the canonical series key, also
// used verbatim by the encoders: `{k="v",k2="v2"}` or "" when unlabeled.
func signature(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// series resolves (or creates) the entry for (name, labels), enforcing
// family-level consistency of type, help, and buckets.
func (r *Registry) series(name, help string, typ MetricType, buckets []float64, kv []string) *entry {
	if !validName(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	labels := parseLabels(name, kv)
	sig := signature(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	fam, ok := r.families[name]
	if !ok {
		fam = &family{name: name, help: help, typ: typ,
			buckets: append([]float64(nil), buckets...), entries: map[string]*entry{}}
		r.families[name] = fam
		i := sort.SearchStrings(r.names, name)
		r.names = append(r.names, "")
		copy(r.names[i+1:], r.names[i:])
		r.names[i] = name
	} else if fam.typ != typ {
		panic(fmt.Sprintf("telemetry: metric %q re-registered as %v (was %v)", name, typ, fam.typ))
	}
	e, ok := fam.entries[sig]
	if !ok {
		e = &entry{labels: labels}
		switch typ {
		case TypeCounter:
			e.ctr = &Counter{}
		case TypeGauge:
			e.gauge = &Gauge{}
		case TypeHistogram:
			e.hist = newHistogram(fam.buckets)
		}
		fam.entries[sig] = e
		i := sort.SearchStrings(fam.order, sig)
		fam.order = append(fam.order, "")
		copy(fam.order[i+1:], fam.order[i:])
		fam.order[i] = sig
	}
	return e
}

// Counter returns the counter for (name, labels), creating it on first
// use. labels is a flat k,v list. A nil registry returns a nil handle.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	return r.series(name, help, TypeCounter, nil, labels).ctr
}

// Gauge returns the gauge for (name, labels), creating it on first use.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	return r.series(name, help, TypeGauge, nil, labels).gauge
}

// Histogram returns the histogram for (name, labels), creating it on
// first use with the given fixed bucket upper bounds (ascending; an
// implicit +Inf bucket is always appended). Buckets are fixed per
// family: later calls for the same name reuse the first layout.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	if len(buckets) == 0 {
		panic(fmt.Sprintf("telemetry: histogram %q needs at least one bucket", name))
	}
	for i := 1; i < len(buckets); i++ {
		if !(buckets[i] > buckets[i-1]) {
			panic(fmt.Sprintf("telemetry: histogram %q buckets not ascending: %v", name, buckets))
		}
	}
	return r.series(name, help, TypeHistogram, buckets, labels).hist
}

// CounterFunc registers a counter whose value is read from fn at
// snapshot time — the collector pattern for pre-existing monotone
// counters (e.g. the evaluation engine's request counts).
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...string) {
	if r == nil {
		return
	}
	e := r.series(name, help, TypeCounter, nil, labels)
	r.mu.Lock()
	e.fn = fn
	r.mu.Unlock()
}

// GaugeFunc registers a gauge read from fn at snapshot time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...string) {
	if r == nil {
		return
	}
	e := r.series(name, help, TypeGauge, nil, labels)
	r.mu.Lock()
	e.fn = fn
	r.mu.Unlock()
}
