package telemetry

import (
	"encoding/json"
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// Point is one metric series in a snapshot.
type Point struct {
	// Name and Help identify the series' family; Type its kind.
	Name string
	Help string
	Type MetricType
	// Labels are the series labels, sorted by key.
	Labels []Label
	// Value is the counter or gauge value (unused for histograms).
	Value float64
	// Count, Sum, and Buckets describe a histogram series.
	Count   uint64
	Sum     float64
	Buckets []Bucket
}

// Snapshot is a point-in-time view of a registry: every metric series
// sorted by (name, label signature), then every span of the registry's
// tracer and attached tracers in attachment and sequence order. All of
// its encoders are deterministic functions of the snapshot content.
type Snapshot struct {
	Points []Point
	Spans  []Span
}

// Snapshot collects the registry's current state. A nil registry yields
// an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	// Collect handles under the lock, read values outside it: fn-backed
	// series may take other locks (e.g. the evaluation engine's), and
	// holding the registry lock across them invites deadlocks.
	type pending struct {
		fam *family
		e   *entry
	}
	r.mu.Lock()
	var todo []pending
	for _, name := range r.names {
		fam := r.families[name]
		for _, sig := range fam.order {
			todo = append(todo, pending{fam: fam, e: fam.entries[sig]})
		}
	}
	tracers := append([]*Tracer{&r.tracer}, r.extra...)
	r.mu.Unlock()

	for _, p := range todo {
		pt := Point{Name: p.fam.name, Help: p.fam.help, Type: p.fam.typ, Labels: p.e.labels}
		switch {
		case p.e.fn != nil:
			pt.Value = p.e.fn()
		case p.e.ctr != nil:
			pt.Value = p.e.ctr.Value()
		case p.e.gauge != nil:
			pt.Value = p.e.gauge.Value()
		case p.e.hist != nil:
			pt.Buckets, pt.Count, pt.Sum = p.e.hist.snapshot()
		}
		s.Points = append(s.Points, pt)
	}
	for _, t := range tracers {
		s.Spans = append(s.Spans, t.Spans()...)
	}
	return s
}

// formatValue renders a float deterministically: shortest round-trip
// form, with explicit NaN/+Inf/-Inf spellings shared by every encoder.
func formatValue(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	default:
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
}

// Text renders the snapshot as a stable, line-oriented text form — the
// format the golden byte-identity tests pin. One line per counter or
// gauge, one per histogram (buckets inline), one per span.
func (s Snapshot) Text() string {
	var b strings.Builder
	b.WriteString("# telemetry snapshot\n")
	for _, p := range s.Points {
		switch p.Type {
		case TypeHistogram:
			fmt.Fprintf(&b, "%s%s histogram count=%d sum=%s",
				p.Name, signature(p.Labels), p.Count, formatValue(p.Sum))
			for _, bk := range p.Buckets {
				fmt.Fprintf(&b, " le(%s)=%d", formatValue(bk.Upper), bk.Count)
			}
			b.WriteByte('\n')
		default:
			fmt.Fprintf(&b, "%s%s %s %s\n",
				p.Name, signature(p.Labels), p.Type, formatValue(p.Value))
		}
	}
	for _, sp := range s.Spans {
		fmt.Fprintf(&b, "span %d %s", sp.Seq, sp.Name)
		if sp.Scope != "" {
			fmt.Fprintf(&b, " scope=%q", sp.Scope)
		}
		if sp.SimTime >= 0 {
			fmt.Fprintf(&b, " sim=%.3fs", sp.SimTime)
		}
		if !sp.Start.IsZero() {
			fmt.Fprintf(&b, " at=%s", sp.Start.UTC().Format(time.RFC3339Nano))
		}
		if sp.Dur > 0 {
			fmt.Fprintf(&b, " dur=%s", sp.Dur)
		}
		if sp.Note != "" {
			fmt.Fprintf(&b, " note=%q", sp.Note)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// JSON renders the snapshot as deterministic JSON. Non-finite floats —
// legal gauge values — are encoded as the strings "NaN", "+Inf", and
// "-Inf", which encoding/json would otherwise reject.
func (s Snapshot) JSON() string {
	var b strings.Builder
	b.WriteString("{\n  \"metrics\": [")
	for i, p := range s.Points {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString("\n    {")
		fmt.Fprintf(&b, "\"name\": %s, \"type\": %q", jsonString(p.Name), p.Type)
		if len(p.Labels) > 0 {
			b.WriteString(", \"labels\": {")
			for j, l := range p.Labels {
				if j > 0 {
					b.WriteString(", ")
				}
				fmt.Fprintf(&b, "%s: %s", jsonString(l.Key), jsonString(l.Value))
			}
			b.WriteByte('}')
		}
		if p.Type == TypeHistogram {
			fmt.Fprintf(&b, ", \"count\": %d, \"sum\": %s, \"buckets\": [", p.Count, jsonFloat(p.Sum))
			for j, bk := range p.Buckets {
				if j > 0 {
					b.WriteString(", ")
				}
				fmt.Fprintf(&b, "{\"le\": %s, \"count\": %d}", jsonFloat(bk.Upper), bk.Count)
			}
			b.WriteByte(']')
		} else {
			fmt.Fprintf(&b, ", \"value\": %s", jsonFloat(p.Value))
		}
		b.WriteByte('}')
	}
	b.WriteString("\n  ],\n  \"spans\": [")
	for i, sp := range s.Spans {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "\n    {\"seq\": %d, \"name\": %s", sp.Seq, jsonString(sp.Name))
		if sp.Scope != "" {
			fmt.Fprintf(&b, ", \"scope\": %s", jsonString(sp.Scope))
		}
		if sp.SimTime >= 0 {
			fmt.Fprintf(&b, ", \"sim_seconds\": %s", jsonFloat(sp.SimTime))
		}
		if !sp.Start.IsZero() {
			fmt.Fprintf(&b, ", \"start\": %q", sp.Start.UTC().Format(time.RFC3339Nano))
		}
		if sp.Dur > 0 {
			fmt.Fprintf(&b, ", \"dur_seconds\": %s", jsonFloat(sp.Dur.Seconds()))
		}
		if sp.Note != "" {
			fmt.Fprintf(&b, ", \"note\": %s", jsonString(sp.Note))
		}
		b.WriteByte('}')
	}
	b.WriteString("\n  ]\n}\n")
	return b.String()
}

// jsonFloat renders a float as a JSON value, quoting non-finite values.
func jsonFloat(v float64) string {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return `"` + formatValue(v) + `"`
	}
	return formatValue(v)
}

// jsonString renders a JSON string literal via encoding/json, which
// (unlike strconv.Quote) escapes control characters in JSON-legal form.
func jsonString(s string) string {
	out, err := json.Marshal(s)
	if err != nil { // cannot happen for a string
		return strconv.Quote(s)
	}
	return string(out)
}
