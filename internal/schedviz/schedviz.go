// Package schedviz renders cluster schedules as SVG Gantt charts: one row
// per node, one bar per job execution span, with suspensions visible as
// gaps. It consumes the event logs the cluster simulations produce.
package schedviz

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cluster"
)

// span is one contiguous execution of a job on a node.
type span struct {
	job, node  string
	start, end float64
}

// Gantt renders the queue result as an SVG Gantt chart. Suspensions
// split a job into multiple bars on its node's row.
func Gantt(title string, res *cluster.QueueResult) string {
	spans, nodes := spansFromEvents(res.Events, res.Makespan)
	const (
		rowH     = 28
		leftPad  = 90
		rightPad = 20
		topPad   = 40
		width    = 760
	)
	height := topPad + rowH*len(nodes) + 40
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		width, height, width, height)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	fmt.Fprintf(&b, `<text x="%d" y="22" font-family="sans-serif" font-size="14" font-weight="bold">%s</text>`+"\n",
		leftPad, escape(title))
	if len(spans) == 0 || res.Makespan <= 0 {
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="12">(no schedule)</text>`+"\n",
			leftPad, height/2)
		b.WriteString("</svg>\n")
		return b.String()
	}

	plotW := float64(width - leftPad - rightPad)
	px := func(t float64) float64 { return float64(leftPad) + t/res.Makespan*plotW }
	rowOf := map[string]int{}
	for i, n := range nodes {
		rowOf[n] = i
		y := topPad + i*rowH
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="11" text-anchor="end" dominant-baseline="middle">%s</text>`+"\n",
			leftPad-8, y+rowH/2, escape(n))
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#ddd"/>`+"\n",
			leftPad, y+rowH, width-rightPad, y+rowH)
	}

	colors := []string{"#0072b2", "#d55e00", "#009e73", "#cc79a7", "#e69f00", "#56b4e9", "#8172b2", "#937860"}
	colorOf := map[string]string{}
	nextColor := 0
	for _, sp := range spans {
		c, ok := colorOf[sp.job]
		if !ok {
			c = colors[nextColor%len(colors)]
			colorOf[sp.job] = c
			nextColor++
		}
		y := topPad + rowOf[sp.node]*rowH + 4
		x0, x1 := px(sp.start), px(sp.end)
		if x1-x0 < 1 {
			x1 = x0 + 1
		}
		fmt.Fprintf(&b, `<rect x="%.1f" y="%d" width="%.1f" height="%d" fill="%s" opacity="0.85"><title>%s: %.1fs-%.1fs</title></rect>`+"\n",
			x0, y, x1-x0, rowH-8, c, escape(sp.job), sp.start, sp.end)
		if x1-x0 > 40 {
			fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-family="sans-serif" font-size="10" fill="white" dominant-baseline="middle">%s</text>`+"\n",
				x0+4, y+(rowH-8)/2, escape(sp.job))
		}
	}
	// Time axis.
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="11">0 s</text>`+"\n",
		leftPad, height-12)
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="sans-serif" font-size="11" text-anchor="end">%.1f s</text>`+"\n",
		width-rightPad, height-12, res.Makespan)
	b.WriteString("</svg>\n")
	return b.String()
}

// spansFromEvents reconstructs execution spans from start/suspend/finish
// events and returns them plus the sorted node list.
func spansFromEvents(events []cluster.Event, makespan float64) ([]span, []string) {
	type open struct {
		node  string
		start float64
	}
	running := map[string]open{}
	var spans []span
	nodeSet := map[string]bool{}
	for _, e := range events {
		nodeSet[e.NodeID] = true
		switch e.Kind {
		case "start":
			running[e.JobID] = open{node: e.NodeID, start: e.Time}
		case "suspend", "finish":
			if o, ok := running[e.JobID]; ok {
				spans = append(spans, span{job: e.JobID, node: o.node, start: o.start, end: e.Time})
				delete(running, e.JobID)
			}
		}
	}
	// Any still-open span runs to the makespan. Iterate in sorted job
	// order so the rendered SVG is byte-for-byte reproducible.
	var openJobs []string
	for job := range running {
		openJobs = append(openJobs, job)
	}
	sort.Strings(openJobs)
	for _, job := range openJobs {
		o := running[job]
		spans = append(spans, span{job: job, node: o.node, start: o.start, end: makespan})
	}
	var nodes []string
	for n := range nodeSet {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	sort.SliceStable(spans, func(i, j int) bool {
		if spans[i].start != spans[j].start {
			return spans[i].start < spans[j].start
		}
		return spans[i].job < spans[j].job
	})
	return spans, nodes
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
