package schedviz

import (
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/hw"
	"repro/internal/workload"
)

func queueResult(t *testing.T) *cluster.QueueResult {
	t.Helper()
	p, err := hw.PlatformByName("ivybridge")
	if err != nil {
		t.Fatal(err)
	}
	s, err := cluster.NewScheduler(500, []cluster.Node{
		{ID: "node00", Platform: p},
		{ID: "node01", Platform: p},
	})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(id, wl string, units float64) cluster.TimedJob {
		w, err := workload.ByName(wl)
		if err != nil {
			t.Fatal(err)
		}
		return cluster.TimedJob{Job: cluster.Job{ID: id, Workload: w}, Units: units}
	}
	res, err := s.RunQueue([]cluster.TimedJob{
		mk("alpha", "dgemm", 5e13),
		mk("beta", "stream", 3e12),
		mk("gamma", "mg", 3e12),
	}, cluster.PolicyCoord)
	if err != nil {
		t.Fatal(err)
	}
	return &res
}

func TestGanttRendersSchedule(t *testing.T) {
	res := queueResult(t)
	svg := Gantt("Queue under 500 W", res)
	for _, want := range []string{"<svg", "</svg>", "Queue under 500 W",
		"node00", "node01", "alpha", "<rect"} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	// One bar per uninterrupted execution: three jobs, no suspensions.
	if got := strings.Count(svg, "<title>"); got != 3 {
		t.Errorf("bar count = %d, want 3", got)
	}
	// Time axis ends at the makespan.
	if !strings.Contains(svg, "0 s") {
		t.Error("time axis missing")
	}
}

func TestGanttEmpty(t *testing.T) {
	var res cluster.QueueResult
	svg := Gantt("empty", &res)
	if !strings.Contains(svg, "no schedule") {
		t.Error("empty result should render a placeholder")
	}
}

func TestGanttSuspensionsSplitBars(t *testing.T) {
	res := &cluster.QueueResult{
		Makespan: 100,
		Events: []cluster.Event{
			{Time: 0, Kind: "start", JobID: "j", NodeID: "n0"},
			{Time: 30, Kind: "suspend", JobID: "j", NodeID: "n0"},
			{Time: 60, Kind: "start", JobID: "j", NodeID: "n0"},
			{Time: 100, Kind: "finish", JobID: "j", NodeID: "n0"},
		},
	}
	svg := Gantt("suspended", res)
	if got := strings.Count(svg, "<title>"); got != 2 {
		t.Errorf("suspended job should render 2 bars, got %d", got)
	}
}

func TestGanttOpenSpanRunsToMakespan(t *testing.T) {
	res := &cluster.QueueResult{
		Makespan: 50,
		Events: []cluster.Event{
			{Time: 0, Kind: "start", JobID: "j", NodeID: "n0"},
		},
	}
	svg := Gantt("open", res)
	if !strings.Contains(svg, "0.0s-50.0s") {
		t.Errorf("open span should extend to makespan: %s", svg)
	}
}

func TestGanttEscapesNames(t *testing.T) {
	res := &cluster.QueueResult{
		Makespan: 10,
		Events: []cluster.Event{
			{Time: 0, Kind: "start", JobID: `j<1>&"x"`, NodeID: "n<0>"},
			{Time: 10, Kind: "finish", JobID: `j<1>&"x"`, NodeID: "n<0>"},
		},
	}
	svg := Gantt(`t<itle>`, res)
	if strings.Contains(svg, "j<1>") || strings.Contains(svg, "n<0>") || strings.Contains(svg, "t<itle>") {
		t.Error("names not escaped")
	}
}
