package experiments

import (
	"testing"

	"repro/internal/evalpool"
)

// TestEngineGoldenOutput is the engine's acceptance gate: regenerating
// paper artifacts through the parallel, memoized evaluation engine must
// produce byte-identical rendered text, CSV, and SVG output to the
// serial, uncached reference path — cold cache and warm.
func TestEngineGoldenOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerates several figures; skipped with -short")
	}
	// fig9 drives the COORD comparison (profile + heuristic + sweep per
	// strategy), extending the identity gate to the coordination path.
	ids := []string{"fig1", "fig2", "fig7", "fig9", "table1"}

	prev := evalpool.SetDefault(evalpool.Serial())
	defer evalpool.SetDefault(prev)

	type artifact struct {
		text string
		csv  []string
		svg  []string
	}
	capture := func(t *testing.T) map[string]artifact {
		t.Helper()
		got := make(map[string]artifact, len(ids))
		for _, id := range ids {
			r, err := ByID(id)
			if err != nil {
				t.Fatal(err)
			}
			out, err := r.Run()
			if err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			a := artifact{text: out.Render()}
			for _, tb := range out.Tables {
				a.csv = append(a.csv, tb.CSV())
			}
			for _, fig := range out.Figures {
				a.svg = append(a.svg, fig.SVG())
			}
			got[id] = a
		}
		return got
	}

	golden := capture(t)

	evalpool.SetDefault(evalpool.New(evalpool.Options{Workers: 8}))
	for pass, label := range []string{"cold cache", "warm cache"} {
		got := capture(t)
		for _, id := range ids {
			g, p := golden[id], got[id]
			if p.text != g.text {
				t.Errorf("%s (%s, pass %d): rendered text differs from serial path", id, label, pass)
			}
			if len(p.csv) != len(g.csv) {
				t.Fatalf("%s (%s): table count %d != %d", id, label, len(p.csv), len(g.csv))
			}
			for i := range g.csv {
				if p.csv[i] != g.csv[i] {
					t.Errorf("%s (%s): CSV table %d differs from serial path", id, label, i)
				}
			}
			if len(p.svg) != len(g.svg) {
				t.Fatalf("%s (%s): figure count %d != %d", id, label, len(p.svg), len(g.svg))
			}
			for i := range g.svg {
				if p.svg[i] != g.svg[i] {
					t.Errorf("%s (%s): SVG figure %d differs from serial path", id, label, i)
				}
			}
		}
		if t.Failed() {
			t.FailNow()
		}
	}

	if s := evalpool.Default().Stats(); s.Hits == 0 {
		t.Error("second parallel pass recorded no cache hits; memoization is not engaged")
	}
}

// TestRunAllMatchesSequential verifies the concurrent artifact driver
// returns outputs in runner order with content identical to direct
// sequential invocation.
func TestRunAllMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerates several figures; skipped with -short")
	}
	var runners []Runner
	for _, id := range []string{"table2", "table3", "fig7"} {
		r, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		runners = append(runners, r)
	}
	want := make([]string, len(runners))
	for i, r := range runners {
		out, err := r.Run()
		if err != nil {
			t.Fatal(err)
		}
		want[i] = out.Render()
	}
	results := RunAll(runners, 3)
	if len(results) != len(runners) {
		t.Fatalf("RunAll returned %d results, want %d", len(results), len(runners))
	}
	for i, rr := range results {
		if rr.Err != nil {
			t.Fatalf("%s: %v", rr.Runner.ID, rr.Err)
		}
		if rr.Runner.ID != runners[i].ID {
			t.Fatalf("slot %d holds %s, want %s (order must be preserved)", i, rr.Runner.ID, runners[i].ID)
		}
		if rr.Output.Render() != want[i] {
			t.Errorf("%s: concurrent output differs from sequential", rr.Runner.ID)
		}
	}
}
