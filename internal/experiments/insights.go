package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/profile"
	"repro/internal/report"
	"repro/internal/workload"
)

// Insights computes answers to the paper's four research questions
// (Section 2.1) for every CPU benchmark on the IvyBridge node:
//
//	Q1 what is perf_max for a budget, and how does it grow with P_b?
//	Q2 what distribution of P_b attains it?
//	Q3 why do poor allocations waste power?
//	Q4 what budget range is acceptable?
func Insights() (Output, error) {
	out := Output{ID: "insights", Title: "The four research questions, answered per benchmark"}
	p, err := hw.PlatformByName("ivybridge")
	if err != nil {
		return out, err
	}

	tb := report.NewTable("Q1/Q2/Q4 per benchmark (IvyBridge)",
		"benchmark", "acceptable range (W)", "perf_max at knee", "optimal split at knee (cpu/mem)",
		"perf_max at demand", "optimal split at demand")
	waste := report.NewTable("Q3: power waste of a poor allocation (budget = max demand)",
		"benchmark", "best perf", "poor perf", "poor actual power (W)", "watts per unit perf (poor/best)")

	var rangesOK, wasteOK int
	n := 0
	for _, w := range workload.CPUWorkloads() {
		n++
		prof, err := profile.ProfileCPU(p, w)
		if err != nil {
			return out, err
		}
		thresh := prof.Critical.ProductiveThreshold()
		demand := prof.Critical.CPUMax + prof.Critical.MemMax
		if thresh < demand {
			rangesOK++
		}

		knee := (thresh + demand) / 2
		kneePb := core.NewProblem(p, w, knee)
		kneeBest, err := kneePb.PerfMax()
		if err != nil {
			return out, err
		}
		demandPb := core.NewProblem(p, w, demand+4)
		demandBest, err := demandPb.PerfMax()
		if err != nil {
			return out, err
		}
		tb.AddRow(
			w.Name,
			fmt.Sprintf("[%.0f, %.0f]", thresh.Watts(), demand.Watts()),
			report.FormatFloat(kneeBest.Result.Perf)+" "+w.PerfUnit,
			fmt.Sprintf("%.0f/%.0f", kneeBest.Alloc.Proc.Watts(), kneeBest.Alloc.Mem.Watts()),
			report.FormatFloat(demandBest.Result.Perf)+" "+w.PerfUnit,
			fmt.Sprintf("%.0f/%.0f", demandBest.Alloc.Proc.Watts(), demandBest.Alloc.Mem.Watts()),
		)

		// Q3: a poor allocation at the same budget — shift most power to
		// the wrong side and measure watts per unit of performance.
		pb := core.NewProblem(p, w, demand)
		evals, err := pb.Sweep()
		if err != nil {
			return out, err
		}
		best, _ := core.Best(evals)
		worst, _ := core.Worst(evals)
		if best.Result.Perf <= 0 || worst.Result.Perf <= 0 {
			continue
		}
		bestWPP := best.Result.TotalPower.Watts() / best.Result.Perf
		poorWPP := worst.Result.TotalPower.Watts() / worst.Result.Perf
		if poorWPP > 1.5*bestWPP && worst.Result.TotalPower.Watts() > 0.4*demand.Watts() {
			wasteOK++
		}
		waste.AddRow(
			w.Name,
			report.FormatFloat(best.Result.Perf),
			report.FormatFloat(worst.Result.Perf),
			report.FormatFloat(worst.Result.TotalPower.Watts()),
			fmt.Sprintf("%.1fx", poorWPP/bestWPP),
		)
	}
	out.Tables = append(out.Tables, tb, waste)

	out.Findings = append(out.Findings, Finding{
		Claim:    "Q4: every benchmark has a non-empty acceptable budget range [threshold, demand]",
		Measured: fmt.Sprintf("%d of %d benchmarks", rangesOK, n),
		Pass:     rangesOK == n,
	})
	out.Findings = append(out.Findings, Finding{
		Claim:    "Q3: poor allocations consume substantial power while delivering poor performance (power waste)",
		Measured: fmt.Sprintf("%d of %d benchmarks burn >1.5x the watts per unit of performance at the worst split", wasteOK, n),
		Pass:     wasteOK >= n*3/4,
	})

	// Q1 growth-shape check on one representative benchmark.
	w, err := workload.ByName("mg")
	if err != nil {
		return out, err
	}
	pts, err := core.Curve(p, w, core.BudgetRange(170, 280, 12))
	if err != nil {
		return out, err
	}
	mono := true
	for i := 1; i < len(pts); i++ {
		if pts[i].PerfMax < pts[i-1].PerfMax*(1-0.01) {
			mono = false
		}
	}
	kneeB, _ := core.Knee(pts, 0.2)
	out.Findings = append(out.Findings, Finding{
		Claim:    "Q1: perf_max grows monotonically with P_b and the growth has a knee",
		Measured: fmt.Sprintf("monotone=%v, knee at %v for MG", mono, kneeB),
		Pass:     mono && kneeB > 170 && kneeB.Watts() < 280,
	})

	// Q2: the optimal split is application-specific — compare DGEMM's and
	// MG's optimal CPU share at matching relative budgets.
	share := func(name string) (float64, error) {
		w, err := workload.ByName(name)
		if err != nil {
			return 0, err
		}
		prof, err := profile.ProfileCPU(p, w)
		if err != nil {
			return 0, err
		}
		budget := (prof.Critical.ProductiveThreshold() + prof.Critical.CPUMax + prof.Critical.MemMax) / 2
		pb := core.NewProblem(p, w, budget)
		best, err := pb.PerfMax()
		if err != nil {
			return 0, err
		}
		return best.Alloc.Proc.Watts() / best.Alloc.Total().Watts(), nil
	}
	dgemmShare, err := share("dgemm")
	if err != nil {
		return out, err
	}
	mgShare, err := share("mg")
	if err != nil {
		return out, err
	}
	out.Findings = append(out.Findings, Finding{
		Claim:    "Q2: the optimal distribution is application-specific (compute-bound favors CPU, memory-bound favors DRAM)",
		Measured: fmt.Sprintf("optimal CPU share at mid budget: dgemm %.2f, mg %.2f", dgemmShare, mgShare),
		Pass:     dgemmShare > mgShare+0.05,
	})
	return out, nil
}
