package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/report"
	"repro/internal/svgplot"
	"repro/internal/sweep"
	"repro/internal/units"
	"repro/internal/workload"
)

// Fig1 reproduces Figure 1: STREAM under power bounds on the IvyBridge
// CPU node and the Titan XP GPU. Left panels: performance versus total
// budget; right panels: performance versus cross-component allocation at
// a fixed budget (208 W CPU, 140 W GPU).
func Fig1() (Output, error) {
	out := Output{ID: "fig1", Title: "STREAM: performance under power bounds (CPU and GPU)"}

	ivy, err := hw.PlatformByName("ivybridge")
	if err != nil {
		return out, err
	}
	xp, err := hw.PlatformByName("titanxp")
	if err != nil {
		return out, err
	}
	cpuW, err := workload.ByName("stream")
	if err != nil {
		return out, err
	}
	gpuW, err := workload.ByName("gpustream")
	if err != nil {
		return out, err
	}

	// (a) left: CPU perf_max vs budget (reported per core, as the paper
	// does).
	curve, err := sweep.BudgetCurve(ivy, cpuW, 130, 280, 16)
	if err != nil {
		return out, err
	}
	cores := float64(ivy.CPU.Cores())
	tb := report.NewTable("Fig 1a-left: CPU STREAM perf_max vs budget (per core)",
		"budget (W)", "GB/s per core")
	var perCore []float64
	for i := range curve.X {
		perCore = append(perCore, curve.Y[i]/cores)
		tb.AddRowf(curve.X[i], curve.Y[i]/cores)
	}
	out.Tables = append(out.Tables, tb)
	out.Charts = append(out.Charts,
		report.Chart("Fig 1a-left (shape)", curve.X, perCore, 48, 10))

	// (a) right: CPU split at 208 W.
	splits, err := sweep.CPUSplit(ivy, cpuW, 208, nil)
	if err != nil {
		return out, err
	}
	tb = report.NewTable("Fig 1a-right: CPU STREAM at 208 W vs allocation",
		"P_cpu (W)", "P_mem (W)", "GB/s per core", "actual total (W)")
	var best, worst float64
	worst = 1e18
	var totalsUnder int
	for _, sp := range splits {
		perf := sp.Perf / cores
		best = maxf(best, perf)
		worst = minf(worst, perf)
		total := (sp.ProcActual + sp.MemActual).Watts()
		if total <= 208+1 {
			totalsUnder++
		}
		tb.AddRowf(sp.Alloc.Proc.Watts(), sp.Alloc.Mem.Watts(), perf, total)
	}
	out.Tables = append(out.Tables, tb)
	spread := best / worst
	out.Findings = append(out.Findings, Finding{
		Claim:    "CPU STREAM at 208 W: optimal allocation up to ~30x better than the poorest",
		Measured: fmt.Sprintf("best/worst = %.1fx", spread),
		Pass:     spread > 10,
	})
	out.Findings = append(out.Findings, Finding{
		Claim:    "power capping keeps actual total power under the 208 W budget",
		Measured: fmt.Sprintf("%d of %d allocations under budget", totalsUnder, len(splits)),
		Pass:     totalsUnder >= len(splits)*9/10,
	})

	// (b) left: GPU perf_max vs cap.
	gcurve, err := sweep.BudgetCurve(xp, gpuW, xp.GPU.MinCap, xp.GPU.MaxCap, 8)
	if err != nil {
		return out, err
	}
	tb = report.NewTable("Fig 1b-left: GPU STREAM perf_max vs cap (total)",
		"cap (W)", "GB/s")
	for i := range gcurve.X {
		tb.AddRowf(gcurve.X[i], gcurve.Y[i])
	}
	out.Tables = append(out.Tables, tb)
	out.Charts = append(out.Charts,
		report.Chart("Fig 1b-left (shape)", gcurve.X, gcurve.Y, 48, 10))

	// (b) right: GPU split at 140 W.
	pb := core.NewProblem(xp, gpuW, 140)
	evals, err := pb.Sweep()
	if err != nil {
		return out, err
	}
	tb = report.NewTable("Fig 1b-right: GPU STREAM at 140 W vs allocation",
		"P_mem est (W)", "P_SM est (W)", "GB/s", "actual total (W)")
	gBest, gWorst := 0.0, 1e18
	for _, e := range evals {
		gBest = maxf(gBest, e.Result.Perf)
		gWorst = minf(gWorst, e.Result.Perf)
		tb.AddRowf(e.Alloc.Mem.Watts(), e.Alloc.Proc.Watts(), e.Result.Perf,
			e.Result.TotalPower.Watts())
	}
	out.Tables = append(out.Tables, tb)

	// SVG panels: the two perf-vs-budget curves and the two fixed-budget
	// allocation splits.
	curveFig := svgplot.Chart{
		Title:  "Fig 1 left: STREAM perf_max vs budget (normalized)",
		XLabel: "total power budget / cap (W)", YLabel: "fraction of peak", Markers: true,
	}
	addNormalized(&curveFig, "cpu stream (per core)", curve.X, perCore)
	addNormalized(&curveFig, "gpu stream", gcurve.X, gcurve.Y)
	splitFig := svgplot.Chart{
		Title:  "Fig 1 right: STREAM perf vs allocation at a fixed budget (normalized)",
		XLabel: "memory allocation share of the budget", YLabel: "fraction of best", Markers: true,
	}
	var cpuX, cpuY, gpuX, gpuY []float64
	for _, sp := range splits {
		cpuX = append(cpuX, sp.Alloc.Mem.Watts()/208)
		cpuY = append(cpuY, sp.Perf/cores)
	}
	for _, e := range evals {
		gpuX = append(gpuX, e.Alloc.Mem.Watts()/140)
		gpuY = append(gpuY, e.Result.Perf)
	}
	addNormalized(&splitFig, "cpu stream @ 208 W", cpuX, cpuY)
	addNormalized(&splitFig, "gpu stream @ 140 W", gpuX, gpuY)
	out.Figures = append(out.Figures, curveFig, splitFig)

	gSpread := gBest / gWorst
	out.Findings = append(out.Findings, Finding{
		Claim:    "GPU STREAM at 140 W: best allocation over 30% higher than the poorest",
		Measured: fmt.Sprintf("best/worst = %.2fx", gSpread),
		Pass:     gSpread > 1.3,
	})
	out.Findings = append(out.Findings, Finding{
		Claim:    "upper performance bound flattens sooner on the GPU than on the CPU",
		Measured: fmt.Sprintf("GPU curve flat over last half: %v", flatTail(gcurve.Y)),
		Pass:     flatTail(gcurve.Y),
	})
	return out, nil
}

// addNormalized adds a series scaled to its own maximum, so panels with
// different units share one set of axes.
func addNormalized(fig *svgplot.Chart, name string, xs, ys []float64) {
	peak := 0.0
	for _, y := range ys {
		peak = maxf(peak, y)
	}
	norm := make([]float64, len(ys))
	for i, y := range ys {
		if peak > 0 {
			norm[i] = y / peak
		}
	}
	// Errors are impossible here: xs and ys always match in length.
	_ = fig.Add(name, xs, norm)
}

// flatTail reports whether the last quarter of a series is within 2% of
// its final value — the curve has stopped growing by the end of the
// studied budget range.
func flatTail(ys []float64) bool {
	if len(ys) < 4 {
		return false
	}
	last := ys[len(ys)-1]
	for _, y := range ys[len(ys)*3/4:] {
		if last == 0 || absf(y-last)/last > 0.02 {
			return false
		}
	}
	return true
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func absf(a float64) float64 {
	if a < 0 {
		return -a
	}
	return a
}

// budgetsBetween returns budgets from lo to hi inclusive in the given
// step (shared helper for several figures).
func budgetsBetween(lo, hi, step units.Power) []units.Power {
	var out []units.Power
	for b := lo; b <= hi; b += step {
		out = append(out, b)
	}
	return out
}
