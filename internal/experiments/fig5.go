package experiments

import (
	"fmt"

	"repro/internal/hw"
	"repro/internal/report"
	"repro/internal/sweep"
	"repro/internal/workload"
)

// Fig5 reproduces Figure 5: the allocated capacity and utilization of
// compute and memory access for DGEMM and STREAM at a 208 W budget on
// IvyBridge. At the optimal allocation both utilizations approach 100%;
// away from it the under-powered component saturates while the other
// sits idle.
func Fig5() (Output, error) {
	out := Output{ID: "fig5", Title: "Balanced compute and memory access at 208 W (IvyBridge)"}

	p, err := hw.PlatformByName("ivybridge")
	if err != nil {
		return out, err
	}
	for _, wl := range []string{"dgemm", "stream"} {
		w, err := workload.ByName(wl)
		if err != nil {
			return out, err
		}
		pts, err := sweep.CPUBalance(p, w, 208, 8)
		if err != nil {
			return out, err
		}
		tb := report.NewTable(
			fmt.Sprintf("Fig 5: %s capacity and utilization at 208 W", wl),
			"P_cpu (W)", "P_mem (W)", "compute util", "memory util", w.PerfUnit)
		best := pts[0]
		for _, bp := range pts {
			tb.AddRowf(bp.Alloc.Proc.Watts(), bp.Alloc.Mem.Watts(),
				bp.ComputeUtil, bp.MemUtil, bp.Perf)
			if bp.Perf > best.Perf {
				best = bp
			}
		}
		out.Tables = append(out.Tables, tb)

		out.Findings = append(out.Findings, Finding{
			Claim:    fmt.Sprintf("%s: at the optimal allocation both utilizations are high (close to 100%%)", wl),
			Measured: fmt.Sprintf("best point %v: compute %.2f, memory %.2f", best.Alloc, best.ComputeUtil, best.MemUtil),
			Pass:     best.ComputeUtil > 0.75 && best.MemUtil > 0.75,
		})

		// Away from the optimum execution is bounded by the starved side:
		// the sweep's extremes (memory starved on one end, processor
		// starved on the other) must be far less balanced than the
		// optimum, with the starved component saturated.
		memStarved := pts[len(pts)-1] // highest P_cpu, lowest P_mem
		procStarved := pts[0]         // lowest P_cpu, highest P_mem
		bestBal := balance(best.ComputeUtil, best.MemUtil)
		memBal := balance(memStarved.ComputeUtil, memStarved.MemUtil)
		procBal := balance(procStarved.ComputeUtil, procStarved.MemUtil)
		out.Findings = append(out.Findings, Finding{
			Claim:    fmt.Sprintf("%s: away from the optimum, execution is bounded by the starved component", wl),
			Measured: fmt.Sprintf("balance at optimum %.2f vs mem-starved %.2f (mem util %.2f) and proc-starved %.2f (compute util %.2f)", bestBal, memBal, memStarved.MemUtil, procBal, procStarved.ComputeUtil),
			Pass: bestBal > memBal && bestBal > procBal &&
				memStarved.MemUtil > 0.9 && procStarved.ComputeUtil > 0.9,
		})
	}
	return out, nil
}

// balance is the min/max ratio of the two utilizations — 1 when
// perfectly balanced, 0 when one side idles.
func balance(a, b float64) float64 {
	hi, lo := maxf(a, b), minf(a, b)
	if hi == 0 {
		return 0
	}
	return lo / hi
}
