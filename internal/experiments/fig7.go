package experiments

import (
	"fmt"

	"repro/internal/category"
	"repro/internal/hw"
	"repro/internal/report"
	"repro/internal/sweep"
	"repro/internal/units"
	"repro/internal/workload"
)

// Fig7 reproduces Figure 7: GPU performance trends as the memory power
// allocation increases under various total power caps, for
// compute-intensive (SGEMM), memory-intensive (GPU STREAM, MiniFE), and
// in-between (Cloverleaf) applications on both cards. Each series is
// classified into the paper's GPU trend categories.
func Fig7() (Output, error) {
	out := Output{ID: "fig7", Title: "GPU performance vs memory power allocation under various caps"}

	type spec struct {
		platform string
		wl       string
		caps     []units.Power
	}
	specs := []spec{
		{"titanxp", "sgemm", []units.Power{140, 180, 220, 260, 300}},
		{"titanxp", "gpustream", []units.Power{130, 150, 180, 220}},
		{"titanxp", "cloverleaf", []units.Power{140, 180, 220, 260}},
		{"titanv", "sgemm", []units.Power{120, 150, 180, 220}},
		{"titanv", "minife", []units.Power{110, 140, 180, 220}},
	}

	cats := map[string][]category.GPUCategory{}
	for _, sp := range specs {
		p, err := hw.PlatformByName(sp.platform)
		if err != nil {
			return out, err
		}
		w, err := workload.ByName(sp.wl)
		if err != nil {
			return out, err
		}
		key := sp.platform + "/" + sp.wl
		tb := report.NewTable(
			fmt.Sprintf("Fig 7: %s — perf vs estimated memory power", key),
			"cap (W)", "trend over rising P_mem", "category")
		for _, cap := range sp.caps {
			pts, err := sweep.GPUTrend(p, w, cap)
			if err != nil {
				return out, err
			}
			cat, _, _ := category.ClassifyGPUSeries(pts)
			cats[key] = append(cats[key], cat)
			var perfs []float64
			for _, pt := range pts {
				perfs = append(perfs, pt.Perf)
			}
			tb.AddRow(report.FormatFloat(cap.Watts()), report.Sparkline(perfs), cat.String())
		}
		out.Tables = append(out.Tables, tb)
	}

	// SGEMM on XP: performance constrained by SM power — flat at large
	// caps (I) or decreasing (II) as memory allocation rises; never
	// memory bound.
	sgemmOK := true
	for _, c := range cats["titanxp/sgemm"] {
		if c == category.GPUCategoryIII {
			sgemmOK = false
		}
	}
	out.Findings = append(out.Findings, Finding{
		Claim:    "compute-intensive SGEMM shows categories I & II: best at minimum memory power",
		Measured: fmt.Sprintf("categories %v", cats["titanxp/sgemm"]),
		Pass:     sgemmOK,
	})

	// STREAM on XP: rising with memory power at large caps (III), may
	// fall at small caps (II).
	streamCats := cats["titanxp/gpustream"]
	largeRising := len(streamCats) > 0 && streamCats[len(streamCats)-1] == category.GPUCategoryIII
	out.Findings = append(out.Findings, Finding{
		Claim:    "memory-intensive STREAM shows categories III & II: rising with memory power at large caps",
		Measured: fmt.Sprintf("categories %v", streamCats),
		Pass:     largeRising,
	})

	// Cloverleaf sits in between: not every cap gives the same direction,
	// or it rises with a diminishing rate; at minimum it must be
	// sensitive to the split at small caps.
	cloverCats := cats["titanxp/cloverleaf"]
	out.Findings = append(out.Findings, Finding{
		Claim:    "in-between Cloverleaf needs balanced allocation (trend direction depends on the cap)",
		Measured: fmt.Sprintf("categories %v", cloverCats),
		Pass:     len(cloverCats) > 0 && hasMixedOrBalanced(cloverCats),
	})

	// Titan V: generally memory bounded — performance increases with
	// memory power allocation.
	vMiniCats := cats["titanv/minife"]
	vRising := 0
	for _, c := range vMiniCats {
		if c == category.GPUCategoryIII {
			vRising++
		}
	}
	out.Findings = append(out.Findings, Finding{
		Claim:    "on Titan V performance is generally memory bounded (category III dominates)",
		Measured: fmt.Sprintf("minife categories %v", vMiniCats),
		Pass:     vRising >= len(vMiniCats)/2,
	})
	return out, nil
}

// hasMixedOrBalanced reports whether the category sequence over rising
// caps shows the in-between signature: direction differs across caps, or
// at least one small-cap series falls (II) while a large-cap one rises
// or flattens.
func hasMixedOrBalanced(cats []category.GPUCategory) bool {
	seen := map[category.GPUCategory]bool{}
	for _, c := range cats {
		seen[c] = true
	}
	return len(seen) >= 2 || seen[category.GPUCategoryIII]
}
