// Package experiments reproduces every table and figure of the paper's
// evaluation. Each experiment is a named runner that regenerates the
// corresponding data — the same rows and series the paper reports — and
// checks the paper's headline claims against the simulated results,
// recording each check as a finding.
//
// The experiment index in DESIGN.md maps each runner to the paper
// artifact it reproduces; EXPERIMENTS.md records paper-vs-measured for
// each one.
package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/report"
	"repro/internal/svgplot"
)

// Finding is one checked claim: what the paper reports versus what the
// reproduction measured.
type Finding struct {
	// Claim restates the paper's assertion.
	Claim string
	// Measured is the reproduced value or observation.
	Measured string
	// Pass reports whether the reproduction supports the claim.
	Pass bool
}

// String renders "[ok|MISS] claim — measured".
func (f Finding) String() string {
	tag := "ok  "
	if !f.Pass {
		tag = "MISS"
	}
	return fmt.Sprintf("[%s] %s — %s", tag, f.Claim, f.Measured)
}

// Output is the result of one experiment.
type Output struct {
	// ID is the artifact identifier, e.g. "fig3" or "table1".
	ID string
	// Title describes the artifact.
	Title string
	// Tables holds the regenerated data.
	Tables []*report.Table
	// Charts holds pre-rendered text charts.
	Charts []string
	// Figures holds SVG charts regenerating the paper's plots; the
	// experiments runner writes them next to the text artifacts.
	Figures []svgplot.Chart
	// Findings holds the checked claims.
	Findings []Finding
}

// Passed reports whether every finding passed.
func (o *Output) Passed() bool {
	for _, f := range o.Findings {
		if !f.Pass {
			return false
		}
	}
	return true
}

// Render prints the full experiment output as text.
func (o *Output) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n\n", o.ID, o.Title)
	for _, t := range o.Tables {
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	for _, c := range o.Charts {
		b.WriteString(c)
		b.WriteByte('\n')
	}
	if len(o.Findings) > 0 {
		b.WriteString("Findings:\n")
		for _, f := range o.Findings {
			b.WriteString("  " + f.String() + "\n")
		}
	}
	return b.String()
}

// Runner regenerates one paper artifact.
type Runner struct {
	ID    string
	Title string
	Run   func() (Output, error)
}

// All returns every experiment in paper order.
func All() []Runner {
	return []Runner{
		{ID: "fig1", Title: "STREAM under power bounds: perf vs budget and vs allocation (CPU and GPU)", Run: Fig1},
		{ID: "fig2", Title: "Upper performance bound perf_max vs total budget (DGEMM, RandomAccess; IvyBridge, Haswell)", Run: Fig2},
		{ID: "fig3", Title: "Categorization of power allocation scenarios (SRA at 240 W on IvyBridge)", Run: Fig3},
		{ID: "fig4", Title: "Scenario patterns across total budgets (SRA, EP-DGEMM on IvyBridge)", Run: Fig4},
		{ID: "fig5", Title: "Balanced compute and memory access at 208 W (DGEMM, STREAM on IvyBridge)", Run: Fig5},
		{ID: "table1", Title: "Optimal allocation and critical component vs power budget", Run: Table1},
		{ID: "table2", Title: "CPU and GPU platforms used in experiments", Run: Table2},
		{ID: "table3", Title: "Benchmarks used in this study", Run: Table3},
		{ID: "fig6", Title: "GPU upper performance bound vs power cap (SGEMM, MiniFE on Titan XP and Titan V)", Run: Fig6},
		{ID: "fig7", Title: "GPU performance trends vs memory power allocation under various caps", Run: Fig7},
		{ID: "fig8", Title: "Performance profiles of all benchmarks on the experimental platforms", Run: Fig8},
		{ID: "fig9", Title: "COORD vs best vs baselines (CPU and GPU)", Run: Fig9},
		{ID: "recoord", Title: "Online re-coordination vs static COORD vs default governor (phased ML on H100-class)", Run: Recoord},
		{ID: "insights", Title: "The four research questions of Section 2.1, answered per benchmark", Run: Insights},
	}
}

// RunResult pairs a runner with its outcome.
type RunResult struct {
	Runner Runner
	Output Output
	Err    error
}

// RunAll regenerates the given artifacts concurrently on up to workers
// goroutines (0 or negative means GOMAXPROCS) and returns results in
// runner order regardless of completion order. The artifacts are
// independent of each other, and they share the process-wide evaluation
// engine, so points one figure simulates are memo hits for the next —
// running them together is strictly cheaper than running them apart.
func RunAll(runners []Runner, workers int) []RunResult {
	out := make([]RunResult, len(runners))
	if len(runners) == 0 {
		return out
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(runners) {
		workers = len(runners)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(runners) {
					return
				}
				r := runners[i]
				o, err := r.Run()
				out[i] = RunResult{Runner: r, Output: o, Err: err}
			}
		}()
	}
	wg.Wait()
	return out
}

// ByID returns the runner for an artifact ID.
func ByID(id string) (Runner, error) {
	for _, r := range All() {
		if r.ID == id {
			return r, nil
		}
	}
	var ids []string
	for _, r := range All() {
		ids = append(ids, r.ID)
	}
	sort.Strings(ids)
	return Runner{}, fmt.Errorf("experiments: unknown id %q (valid: %v)", id, ids)
}
