package experiments

import (
	"fmt"

	"repro/internal/category"
	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/profile"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/units"
	"repro/internal/workload"
)

// Table1 reproduces Table 1: the location of the optimal allocation (the
// scenario intersection) and the critical component as the power budget
// decreases, derived from the SRA profile on IvyBridge, and verifies the
// asymmetric-shift claim of Section 3.4.2 (shifting power away from the
// critical component hurts far more).
func Table1() (Output, error) {
	out := Output{ID: "table1", Title: "Optimal allocation and critical component vs power budget"}

	p, err := hw.PlatformByName("ivybridge")
	if err != nil {
		return out, err
	}
	w, err := workload.ByName("sra")
	if err != nil {
		return out, err
	}
	prof, err := profile.ProfileCPU(p, w)
	if err != nil {
		return out, err
	}
	cp := prof.Critical

	tb := report.NewTable("Table 1 (SRA on IvyBridge)",
		"P_b", "valid scenarios", "intersection", "critical component")
	// Budgets chosen to hit each of the five regimes of the table.
	budgets := []units.Power{
		cp.CPUMax + cp.MemMax + 20,
		cp.CPULowPState + cp.MemMax + 10,
		cp.CPULowPState + cp.MemAtCPULow + 5,
		cp.CPUFloor + cp.MemFloor + 10,
		cp.CPUFloor + cp.MemFloor - 10,
	}
	labels := []string{"large", "", "", "", "small"}
	var rows []category.OptimalLocation
	for i, b := range budgets {
		loc := cp.Locate(b)
		rows = append(rows, loc)
		inter := loc.IntersectionLo.String()
		if loc.IntersectionHi != loc.IntersectionLo {
			inter += "|" + loc.IntersectionHi.String()
		}
		label := labels[i]
		if label == "" {
			label = fmt.Sprintf("%.0f W", b.Watts())
		}
		tb.AddRow(label, scenarioSliceList(loc.ValidScenarios), inter, loc.Critical.String())
	}
	out.Tables = append(out.Tables, tb)

	// Verify the paper's row structure.
	wantInter := [][2]category.Scenario{
		{category.ScenarioI, category.ScenarioI},
		{category.ScenarioII, category.ScenarioIII},
		{category.ScenarioIII, category.ScenarioIV},
		{category.ScenarioIV, category.ScenarioVI},
		{category.ScenarioV, category.ScenarioVI},
	}
	wantCrit := []category.Component{
		category.ComponentNone, category.ComponentDRAM, category.ComponentCPU,
		category.ComponentDRAM, category.ComponentCPU,
	}
	structureOK := true
	for i, loc := range rows {
		if loc.IntersectionLo != wantInter[i][0] || loc.IntersectionHi != wantInter[i][1] ||
			loc.Critical != wantCrit[i] {
			structureOK = false
		}
	}
	out.Findings = append(out.Findings, Finding{
		Claim:    "the intersection/critical-component progression matches Table 1 row for row",
		Measured: fmt.Sprintf("5 rows checked, structure match = %v", structureOK),
		Pass:     structureOK,
	})

	// Section 3.4.2: from the optimum at 224 W, shifting 24 W away from
	// DRAM costs ~50%, shifting 24 W away from processors ~10%.
	budget := units.Power(224)
	pb := core.NewProblem(p, w, budget)
	best, err := pb.PerfMax()
	if err != nil {
		return out, err
	}
	toCPU, err := sim.RunCPU(p, &w, best.Alloc.Proc+24, best.Alloc.Mem-24)
	if err != nil {
		return out, err
	}
	toMem, err := sim.RunCPU(p, &w, best.Alloc.Proc-24, best.Alloc.Mem+24)
	if err != nil {
		return out, err
	}
	dropToCPU := 1 - toCPU.Perf/best.Result.Perf
	dropToMem := 1 - toMem.Perf/best.Result.Perf
	out.Findings = append(out.Findings, Finding{
		Claim:    "at 224 W, shifting 24 W from DRAM to CPUs hurts far more than the reverse (paper: ~50% vs ~10%)",
		Measured: fmt.Sprintf("optimum %v: -24W mem -> -%.0f%%, -24W cpu -> -%.0f%%", best.Alloc, dropToCPU*100, dropToMem*100),
		Pass:     dropToCPU > 2*dropToMem && dropToCPU > 0.25,
	})
	return out, nil
}

func scenarioSliceList(ss []category.Scenario) string {
	var s string
	for _, sc := range ss {
		if s != "" {
			s += ","
		}
		s += sc.String()
	}
	return s
}

// Table2 reproduces Table 2: the experimental platforms.
func Table2() (Output, error) {
	out := Output{ID: "table2", Title: "CPU and GPU platforms used in experiments"}
	tb := report.NewTable("Table 2", "Platform", "Processor", "Memory")
	for _, p := range hw.Platforms() {
		switch p.Kind {
		case hw.KindCPU:
			tb.AddRow(p.Paper, p.CPU.Name, p.DRAM.Name)
		case hw.KindGPU:
			tb.AddRow(p.Paper, p.GPU.Name, p.GPU.Mem.Name)
		}
	}
	out.Tables = append(out.Tables, tb)
	out.Findings = append(out.Findings, Finding{
		Claim:    "four platforms: two Xeon server nodes, Titan XP, Titan V",
		Measured: fmt.Sprintf("%d platforms encoded", len(hw.Platforms())),
		Pass:     len(hw.Platforms()) == 4,
	})
	return out, nil
}

// Table3 reproduces Table 3: the benchmark list with workload patterns.
func Table3() (Output, error) {
	out := Output{ID: "table3", Title: "Benchmarks used in this study"}
	tb := report.NewTable("Table 3", "Benchmark", "Suite", "Kind", "Description", "ops/byte")
	for _, w := range workload.Catalog() {
		tb.AddRow(w.Name, w.Suite, w.Kind.String(), w.Desc,
			report.FormatFloat(w.ComputeIntensity()))
	}
	out.Tables = append(out.Tables, tb)
	nCPU, nGPU := len(workload.CPUWorkloads()), len(workload.GPUWorkloads())
	out.Findings = append(out.Findings, Finding{
		Claim:    "11 CPU parallel benchmarks and 6 GPU programs",
		Measured: fmt.Sprintf("%d CPU, %d GPU", nCPU, nGPU),
		Pass:     nCPU == 11 && nGPU == 6,
	})
	return out, nil
}
