package experiments

import (
	"fmt"

	"repro/internal/category"
	"repro/internal/hw"
	"repro/internal/profile"
	"repro/internal/report"
	"repro/internal/svgplot"
	"repro/internal/sweep"
	"repro/internal/workload"
)

// Fig3 reproduces Figure 3: the six-way categorization of power
// allocation scenarios for RandomAccess at a 240 W budget on IvyBridge —
// (a) performance and (b) actual component powers versus the allocation,
// with each point labeled by scenario.
func Fig3() (Output, error) {
	out := Output{ID: "fig3", Title: "Scenario categorization: SRA at 240 W on IvyBridge"}

	p, err := hw.PlatformByName("ivybridge")
	if err != nil {
		return out, err
	}
	w, err := workload.ByName("sra")
	if err != nil {
		return out, err
	}
	prof, err := profile.ProfileCPU(p, w)
	if err != nil {
		return out, err
	}
	splits, err := sweep.CPUSplit(p, w, 240, &prof)
	if err != nil {
		return out, err
	}

	tb := report.NewTable("Fig 3: SRA at 240 W — performance and actual power by allocation",
		"P_mem alloc (W)", "P_cpu alloc (W)", "scenario", "GUP/s", "actual CPU (W)", "actual DRAM (W)")
	var perfs []float64
	for _, sp := range splits {
		tb.AddRowf(sp.Alloc.Mem.Watts(), sp.Alloc.Proc.Watts(), sp.Scenario,
			sp.Perf, sp.ProcActual.Watts(), sp.MemActual.Watts())
		perfs = append(perfs, sp.Perf)
	}
	out.Tables = append(out.Tables, tb)
	out.Charts = append(out.Charts, "perf by rising P_mem: "+report.Sparkline(perfs)+"\n")

	// SVG figures mirroring the paper's two panels: performance and
	// actual component powers versus the memory allocation.
	var memX, procActY, memActY []float64
	for _, sp := range splits {
		memX = append(memX, sp.Alloc.Mem.Watts())
		procActY = append(procActY, sp.ProcActual.Watts())
		memActY = append(memActY, sp.MemActual.Watts())
	}
	perfFig := svgplot.Chart{
		Title:  "Fig 3a: SRA performance vs memory allocation (240 W budget)",
		XLabel: "P_mem allocation (W)", YLabel: "GUP/s", Markers: true,
	}
	if err := perfFig.Add("sra", memX, perfs); err != nil {
		return out, err
	}
	powerFig := svgplot.Chart{
		Title:  "Fig 3b: actual component power vs memory allocation (240 W budget)",
		XLabel: "P_mem allocation (W)", YLabel: "actual power (W)", Markers: true,
	}
	if err := powerFig.Add("CPU actual", memX, procActY); err != nil {
		return out, err
	}
	if err := powerFig.Add("DRAM actual", memX, memActY); err != nil {
		return out, err
	}
	out.Figures = append(out.Figures, perfFig, powerFig)

	// Span table (the scenario bands of the figure).
	spans := prof.Critical.Spans(240, 40, 40, 4)
	sb := report.NewTable("Fig 3: scenario spans along the memory-allocation axis",
		"scenario", "P_mem span (W)", "P_cpu span (W)", "description")
	for _, s := range spans {
		sb.AddRow(s.Scenario.String(),
			fmt.Sprintf("[%.0f, %.0f]", s.MemLo.Watts(), s.MemHi.Watts()),
			fmt.Sprintf("[%.0f, %.0f]", s.ProcLo.Watts(), s.ProcHi.Watts()),
			s.Scenario.Describe())
	}
	out.Tables = append(out.Tables, sb)

	// Claim: all six scenarios appear at 240 W.
	seen := map[category.Scenario]bool{}
	for _, sp := range splits {
		seen[sp.Scenario] = true
	}
	out.Findings = append(out.Findings, Finding{
		Claim:    "six scenario categories appear for SRA at a 240 W budget",
		Measured: fmt.Sprintf("%d distinct scenarios", len(seen)),
		Pass:     len(seen) == 6,
	})

	// Claim: in scenario I both actual powers stay constant (~112 W CPU,
	// ~116 W DRAM in the paper).
	var iCPU, iMem []float64
	for _, sp := range splits {
		if sp.Scenario == category.ScenarioI {
			iCPU = append(iCPU, sp.ProcActual.Watts())
			iMem = append(iMem, sp.MemActual.Watts())
		}
	}
	constOK := len(iCPU) > 0 && rangeOf(iCPU) < 3 && rangeOf(iMem) < 3
	msg := "no scenario I points"
	if len(iCPU) > 0 {
		msg = fmt.Sprintf("scenario I actual: CPU %.0f W (±%.1f), DRAM %.0f W (±%.1f)",
			meanOf(iCPU), rangeOf(iCPU)/2, meanOf(iMem), rangeOf(iMem)/2)
	}
	out.Findings = append(out.Findings, Finding{
		Claim:    "scenario I: actual component powers are constant (~112 W CPU, ~116 W DRAM)",
		Measured: msg,
		Pass: constOK && len(iCPU) > 0 &&
			meanOf(iCPU) > 100 && meanOf(iCPU) < 120 &&
			meanOf(iMem) > 108 && meanOf(iMem) < 124,
	})

	// Claim: scenario IV — memory consumes much less than its allocation.
	worstUse := 1.0
	for _, sp := range splits {
		if sp.Scenario == category.ScenarioIV && sp.Alloc.Mem > 0 {
			worstUse = minf(worstUse, sp.MemActual.Watts()/sp.Alloc.Mem.Watts())
		}
	}
	out.Findings = append(out.Findings, Finding{
		Claim:    "scenario IV: memory consumes much less power than its allocation",
		Measured: fmt.Sprintf("lowest DRAM usage ratio = %.2f", worstUse),
		Pass:     worstUse < 0.75,
	})

	// Claim: scenario II degrades gradually, scenario IV sharply.
	gradual, sharp := scenarioDrop(splits, category.ScenarioII), scenarioDrop(splits, category.ScenarioIV)
	out.Findings = append(out.Findings, Finding{
		Claim:    "performance declines gradually in scenario II and sharply in scenario IV",
		Measured: fmt.Sprintf("relative perf span: II %.2f, IV %.2f", gradual, sharp),
		Pass:     sharp > gradual,
	})
	return out, nil
}

// scenarioDrop returns the relative performance span within a scenario's
// points (max-min over max).
func scenarioDrop(splits []sweep.SplitPoint, s category.Scenario) float64 {
	lo, hi := 1e18, 0.0
	for _, sp := range splits {
		if sp.Scenario == s {
			lo = minf(lo, sp.Perf)
			hi = maxf(hi, sp.Perf)
		}
	}
	if hi <= 0 || lo > hi {
		return 0
	}
	return (hi - lo) / hi
}

func rangeOf(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	lo, hi := vs[0], vs[0]
	for _, v := range vs {
		lo = minf(lo, v)
		hi = maxf(hi, v)
	}
	return hi - lo
}

func meanOf(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	var sum float64
	for _, v := range vs {
		sum += v
	}
	return sum / float64(len(vs))
}
