package experiments

import (
	"fmt"

	"repro/internal/hw"
	"repro/internal/report"
	"repro/internal/svgplot"
	"repro/internal/sweep"
	"repro/internal/workload"
)

// Fig6 reproduces Figure 6: the GPU upper performance bound versus the
// board power cap for SGEMM and MiniFE on the Titan XP and Titan V.
func Fig6() (Output, error) {
	out := Output{ID: "fig6", Title: "GPU perf_max vs power cap (SGEMM, MiniFE; Titan XP, Titan V)"}

	type panel struct{ platform, wl string }
	panels := []panel{
		{"titanxp", "sgemm"}, {"titanxp", "minife"},
		{"titanv", "sgemm"}, {"titanv", "minife"},
	}
	curves := map[panel]sweep.Series{}
	for _, pn := range panels {
		p, err := hw.PlatformByName(pn.platform)
		if err != nil {
			return out, err
		}
		w, err := workload.ByName(pn.wl)
		if err != nil {
			return out, err
		}
		s, err := sweep.BudgetCurve(p, w, p.GPU.MinCap, p.GPU.MaxCap, 8)
		if err != nil {
			return out, err
		}
		curves[pn] = s
		tb := report.NewTable(
			fmt.Sprintf("Fig 6: %s on %s", pn.wl, pn.platform),
			"cap (W)", w.PerfUnit)
		for i := range s.X {
			tb.AddRowf(s.X[i], s.Y[i])
		}
		out.Tables = append(out.Tables, tb)
		out.Charts = append(out.Charts, report.Chart(
			fmt.Sprintf("Fig 6 shape: %s/%s", pn.platform, pn.wl), s.X, s.Y, 48, 8))
	}

	fig := svgplot.Chart{
		Title:  "Fig 6: GPU perf_max vs power cap",
		XLabel: "board power cap (W)", YLabel: "GFLOP/s", Markers: true,
	}
	for _, pn := range panels {
		sers := curves[pn]
		if err := fig.Add(pn.platform+"/"+pn.wl, sers.X, sers.Y); err != nil {
			return out, err
		}
	}
	out.Figures = append(out.Figures, fig)

	// SGEMM on Titan XP keeps rising through the 300 W maximum cap.
	xpSgemm := curves[panel{"titanxp", "sgemm"}]
	n := xpSgemm.Len()
	risingAtMax := xpSgemm.Y[n-1] > xpSgemm.Y[n-2]*1.005
	out.Findings = append(out.Findings, Finding{
		Claim:    "Titan XP SGEMM's bound keeps increasing through 300 W (demands more than the card allows)",
		Measured: fmt.Sprintf("last step gain %.1f%%", 100*(xpSgemm.Y[n-1]/xpSgemm.Y[n-2]-1)),
		Pass:     risingAtMax,
	})

	// MiniFE on Titan XP flattens once the cap exceeds ~180 W.
	xpMini := curves[panel{"titanxp", "minife"}]
	knee := kneeOf(xpMini)
	out.Findings = append(out.Findings, Finding{
		Claim:    "Titan XP MiniFE's bound stops increasing once the cap exceeds ~180 W",
		Measured: fmt.Sprintf("flattening at ~%.0f W", knee),
		Pass:     knee > 140 && knee < 220,
	})

	// Titan V SGEMM flattens around 180 W.
	vSgemm := curves[panel{"titanv", "sgemm"}]
	vKnee := kneeOf(vSgemm)
	out.Findings = append(out.Findings, Finding{
		Claim:    "Titan V SGEMM's bound increases until the cap reaches ~180 W",
		Measured: fmt.Sprintf("flattening at ~%.0f W", vKnee),
		Pass:     vKnee > 140 && vKnee < 220,
	})

	// Titan V MiniFE does not change across the studied cap range.
	vMini := curves[panel{"titanv", "minife"}]
	flat := rangeOf(vMini.Y)/maxf(lastOf(vMini.Y), 1e-9) < 0.02
	out.Findings = append(out.Findings, Finding{
		Claim:    "Titan V MiniFE's bound does not change in the studied power range",
		Measured: fmt.Sprintf("relative variation %.1f%%", 100*rangeOf(vMini.Y)/maxf(lastOf(vMini.Y), 1e-9)),
		Pass:     flat,
	})
	return out, nil
}
