package experiments

import (
	"fmt"

	"repro/internal/category"
	"repro/internal/hw"
	"repro/internal/profile"
	"repro/internal/report"
	"repro/internal/sweep"
	"repro/internal/units"
	"repro/internal/workload"
)

// Fig8 reproduces Figure 8: the performance profiles of all benchmarks on
// the experimental platforms. Every CPU benchmark is swept at a fixed
// budget on IvyBridge and Haswell; every GPU benchmark on the Titan XP.
// The paper's claim: all benchmarks share the same categorical patterns
// while differing in sensitivity, spans, magnitudes, and optimal points.
func Fig8() (Output, error) {
	out := Output{ID: "fig8", Title: "Profiles of all benchmarks on the experimental platforms"}

	const cpuBudget = units.Power(208)
	for _, platform := range []string{"ivybridge", "haswell"} {
		p, err := hw.PlatformByName(platform)
		if err != nil {
			return out, err
		}
		tb := report.NewTable(
			fmt.Sprintf("Fig 8: CPU benchmarks on %s at %v", platform, cpuBudget),
			"benchmark", "perf trend over rising P_mem", "scenarios", "best alloc", "best perf", "spread")
		allShareCategories := true
		for _, w := range workload.CPUWorkloads() {
			prof, err := profile.ProfileCPU(p, w)
			if err != nil {
				return out, err
			}
			splits, err := sweep.CPUSplit(p, w, cpuBudget, &prof)
			if err != nil {
				return out, err
			}
			present := map[category.Scenario]bool{}
			var perfs []float64
			best, worst := splits[0], splits[0]
			for _, sp := range splits {
				present[sp.Scenario] = true
				perfs = append(perfs, sp.Perf)
				if sp.Perf > best.Perf {
					best = sp
				}
				if sp.Perf < worst.Perf {
					worst = sp
				}
			}
			// Every benchmark must show several scenario categories (the
			// shared pattern), even though spans differ.
			if len(present) < 3 {
				allShareCategories = false
			}
			tb.AddRow(
				w.Name,
				report.Sparkline(perfs),
				scenarioList(present),
				fmt.Sprintf("(%.0f, %.0f)", best.Alloc.Proc.Watts(), best.Alloc.Mem.Watts()),
				report.FormatFloat(best.Perf),
				fmt.Sprintf("%.1fx", best.Perf/maxf(worst.Perf, 1e-12)),
			)
		}
		out.Tables = append(out.Tables, tb)
		out.Findings = append(out.Findings, Finding{
			Claim:    fmt.Sprintf("all CPU benchmarks on %s share the categorical patterns", platform),
			Measured: fmt.Sprintf("every benchmark shows >=3 scenarios at %v", cpuBudget),
			Pass:     allShareCategories,
		})
	}

	// GPU benchmarks on Titan XP at the default 250 W cap.
	xp, err := hw.PlatformByName("titanxp")
	if err != nil {
		return out, err
	}
	tb := report.NewTable("Fig 8: GPU benchmarks on titanxp at 200 W",
		"benchmark", "perf trend over rising P_mem", "category", "compute intensive")
	for _, w := range workload.GPUWorkloads() {
		pts, err := sweep.GPUTrend(xp, w, 200)
		if err != nil {
			return out, err
		}
		prof, err := profile.ProfileGPU(xp, w)
		if err != nil {
			return out, err
		}
		cat, _, _ := category.ClassifyGPUSeries(pts)
		var perfs []float64
		for _, pt := range pts {
			perfs = append(perfs, pt.Perf)
		}
		tb.AddRow(w.Name, report.Sparkline(perfs), cat.String(),
			fmt.Sprintf("%v", prof.ComputeIntensive))
	}
	out.Tables = append(out.Tables, tb)

	// Workload-dependent variation: optimal allocations must differ
	// between a memory-intensive and a compute-intensive benchmark.
	ivy, _ := hw.PlatformByName("ivybridge")
	mgProf, err := profile.ProfileCPU(ivy, mustW("mg"))
	if err != nil {
		return out, err
	}
	btProf, err := profile.ProfileCPU(ivy, mustW("bt"))
	if err != nil {
		return out, err
	}
	mgMemShare := mgProf.Critical.MemMax.Watts() / (mgProf.Critical.MemMax + mgProf.Critical.CPUMax).Watts()
	btMemShare := btProf.Critical.MemMax.Watts() / (btProf.Critical.MemMax + btProf.Critical.CPUMax).Watts()
	out.Findings = append(out.Findings, Finding{
		Claim:    "memory-intensive MG demands a larger memory share than compute-intensive BT",
		Measured: fmt.Sprintf("memory demand share: mg %.2f, bt %.2f", mgMemShare, btMemShare),
		Pass:     mgMemShare > btMemShare,
	})

	// Multi-phase benchmarks produce less regular curves than kernels:
	// compare curvature roughness of BT vs EP.
	rough := func(name string) (float64, error) {
		w := mustW(name)
		prof, err := profile.ProfileCPU(ivy, w)
		if err != nil {
			return 0, err
		}
		splits, err := sweep.CPUSplit(ivy, w, cpuBudget, &prof)
		if err != nil {
			return 0, err
		}
		var perfs []float64
		for _, sp := range splits {
			perfs = append(perfs, sp.Perf)
		}
		return roughness(perfs), nil
	}
	btRough, err := rough("bt")
	if err != nil {
		return out, err
	}
	epRough, err := rough("ep")
	if err != nil {
		return out, err
	}
	out.Findings = append(out.Findings, Finding{
		Claim:    "multi-phase pseudo-applications (BT) have less regular curves than single-phase kernels (EP)",
		Measured: fmt.Sprintf("curve roughness: bt %.3f, ep %.3f", btRough, epRough),
		Pass:     btRough >= epRough,
	})
	return out, nil
}

func mustW(name string) workload.Workload {
	w, err := workload.ByName(name)
	if err != nil {
		panic(err)
	}
	return w
}

// roughness measures normalized second-difference energy of a series —
// zero for straight-line segments, higher for kinked curves.
func roughness(ys []float64) float64 {
	if len(ys) < 3 {
		return 0
	}
	peak := 0.0
	for _, y := range ys {
		peak = maxf(peak, absf(y))
	}
	if peak == 0 {
		return 0
	}
	var sum float64
	for i := 2; i < len(ys); i++ {
		d2 := (ys[i] - 2*ys[i-1] + ys[i-2]) / peak
		sum += d2 * d2
	}
	return sum
}
