package experiments

import (
	"strings"
	"testing"
)

func TestAllRunnersRegistered(t *testing.T) {
	runners := All()
	if len(runners) != 14 {
		t.Fatalf("runner count = %d, want 14 (9 figures + 3 tables + recoord + insights)", len(runners))
	}
	wantOrder := []string{"fig1", "fig2", "fig3", "fig4", "fig5",
		"table1", "table2", "table3", "fig6", "fig7", "fig8", "fig9", "recoord", "insights"}
	for i, r := range runners {
		if r.ID != wantOrder[i] {
			t.Errorf("runner %d = %s, want %s", i, r.ID, wantOrder[i])
		}
		if r.Run == nil || r.Title == "" {
			t.Errorf("runner %s incomplete", r.ID)
		}
	}
}

func TestByID(t *testing.T) {
	r, err := ByID("fig3")
	if err != nil || r.ID != "fig3" {
		t.Errorf("ByID(fig3) = %v, %v", r.ID, err)
	}
	if _, err := ByID("fig99"); err == nil {
		t.Error("unknown id accepted")
	}
}

// TestEveryExperimentReproducesItsClaims runs the full evaluation: every
// figure and table regenerates, and every checked claim from the paper
// holds in the reproduction.
func TestEveryExperimentReproducesItsClaims(t *testing.T) {
	for _, r := range All() {
		r := r
		t.Run(r.ID, func(t *testing.T) {
			out, err := r.Run()
			if err != nil {
				t.Fatalf("%s failed: %v", r.ID, err)
			}
			if out.ID != r.ID {
				t.Errorf("output id %q, want %q", out.ID, r.ID)
			}
			if len(out.Tables) == 0 {
				t.Errorf("%s produced no tables", r.ID)
			}
			if len(out.Findings) == 0 {
				t.Errorf("%s checked no claims", r.ID)
			}
			for _, f := range out.Findings {
				if !f.Pass {
					t.Errorf("%s claim failed: %s", r.ID, f)
				}
			}
			// Render must produce parseable text with the findings block.
			text := out.Render()
			if !strings.Contains(text, r.ID) || !strings.Contains(text, "Findings:") {
				t.Errorf("%s render incomplete", r.ID)
			}
		})
	}
}

func TestFindingString(t *testing.T) {
	f := Finding{Claim: "c", Measured: "m", Pass: true}
	if got := f.String(); !strings.Contains(got, "ok") || !strings.Contains(got, "c — m") {
		t.Errorf("finding string = %q", got)
	}
	f.Pass = false
	if got := f.String(); !strings.Contains(got, "MISS") {
		t.Errorf("failed finding string = %q", got)
	}
}

func TestOutputPassed(t *testing.T) {
	o := Output{Findings: []Finding{{Pass: true}, {Pass: true}}}
	if !o.Passed() {
		t.Error("all-pass output reported failure")
	}
	o.Findings = append(o.Findings, Finding{Pass: false})
	if o.Passed() {
		t.Error("failing output reported success")
	}
}

func TestFigureArtifactsCarrySVGs(t *testing.T) {
	// The figure artifacts that plot curves must also emit SVG figures.
	for _, id := range []string{"fig1", "fig2", "fig3", "fig4", "fig6", "fig9"} {
		r, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		out, err := r.Run()
		if err != nil {
			t.Fatal(err)
		}
		if len(out.Figures) == 0 {
			t.Errorf("%s has no SVG figures", id)
		}
		for i, f := range out.Figures {
			svg := f.SVG()
			if !strings.Contains(svg, "<svg") || !strings.Contains(svg, "polyline") {
				t.Errorf("%s figure %d renders no lines", id, i)
			}
		}
	}
}
