package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/report"
	"repro/internal/svgplot"
	"repro/internal/sweep"
	"repro/internal/units"
	"repro/internal/workload"
)

// Fig2 reproduces Figure 2: the upper performance bound perf_max versus
// the total budget P_b for DGEMM and RandomAccess on both CPU platforms,
// with the segmented growth (slow, fast, slow, flat) the paper describes.
func Fig2() (Output, error) {
	out := Output{ID: "fig2", Title: "perf_max vs P_b (DGEMM, SRA; IvyBridge, Haswell)"}

	type panel struct{ platform, wl string }
	panels := []panel{
		{"ivybridge", "dgemm"}, {"ivybridge", "sra"},
		{"haswell", "dgemm"}, {"haswell", "sra"},
	}
	curves := map[panel]sweep.Series{}
	for _, pn := range panels {
		p, err := hw.PlatformByName(pn.platform)
		if err != nil {
			return out, err
		}
		w, err := workload.ByName(pn.wl)
		if err != nil {
			return out, err
		}
		s, err := sweep.BudgetCurve(p, w, 125, 300, 26)
		if err != nil {
			return out, err
		}
		curves[pn] = s
		tb := report.NewTable(
			fmt.Sprintf("Fig 2: %s on %s", pn.wl, pn.platform),
			"budget (W)", w.PerfUnit)
		for i := range s.X {
			tb.AddRowf(s.X[i], s.Y[i])
		}
		out.Tables = append(out.Tables, tb)
		out.Charts = append(out.Charts, report.Chart(
			fmt.Sprintf("Fig 2 shape: %s/%s", pn.platform, pn.wl), s.X, s.Y, 48, 8))
	}

	// SVG figure with all four curves (normalized per panel so they share
	// one set of axes, as the paper uses separate subplots).
	fig := svgplot.Chart{
		Title:   "Fig 2: perf_max vs total power budget (normalized to each panel's peak)",
		XLabel:  "total power budget (W)",
		YLabel:  "fraction of peak perf_max",
		Markers: true,
	}
	for _, pn := range panels {
		sers := curves[pn]
		peak := lastOf(sers.Y)
		norm := make([]float64, len(sers.Y))
		for i, y := range sers.Y {
			if peak > 0 {
				norm[i] = y / peak
			}
		}
		if err := fig.Add(pn.platform+"/"+pn.wl, sers.X, norm); err != nil {
			return out, err
		}
	}
	out.Figures = append(out.Figures, fig)

	// Claim: monotone rise then flattening at an application-specific
	// inflection (diminishing returns).
	for _, pn := range panels {
		s := curves[pn]
		mono := true
		for i := 1; i < s.Len(); i++ {
			if s.Y[i] < s.Y[i-1]*(1-0.01) {
				mono = false
			}
		}
		out.Findings = append(out.Findings, Finding{
			Claim:    fmt.Sprintf("%s/%s: perf_max rises monotonically then flattens", pn.platform, pn.wl),
			Measured: fmt.Sprintf("monotone=%v flat-tail=%v", mono, flatTail(s.Y)),
			Pass:     mono && flatTail(s.Y),
		})
	}

	// Claim: DGEMM has the larger max power demand (later flattening).
	dgemmKnee := kneeOf(curves[panel{"ivybridge", "dgemm"}])
	sraKnee := kneeOf(curves[panel{"ivybridge", "sra"}])
	out.Findings = append(out.Findings, Finding{
		Claim:    "DGEMM gains performance more quickly and has a larger max power demand than SRA",
		Measured: fmt.Sprintf("flattening budgets: dgemm %.0f W, sra %.0f W", dgemmKnee, sraKnee),
		Pass:     dgemmKnee > sraKnee,
	})

	// Claim: Haswell delivers better performance at small budgets; both
	// systems consume similar power at the maximum.
	hwSmall := curves[panel{"haswell", "dgemm"}].Y[1]
	ivySmall := curves[panel{"ivybridge", "dgemm"}].Y[1]
	// Compare normalized to each platform's own peak: DDR4's lower
	// background power buys a larger fraction of peak at a small budget.
	hwFrac := hwSmall / lastOf(curves[panel{"haswell", "dgemm"}].Y)
	ivyFrac := ivySmall / lastOf(curves[panel{"ivybridge", "dgemm"}].Y)
	out.Findings = append(out.Findings, Finding{
		Claim:    "the Haswell/DDR4 node delivers better performance at small budgets (normalized)",
		Measured: fmt.Sprintf("fraction of own peak at ~132 W: haswell %.2f, ivybridge %.2f", hwFrac, ivyFrac),
		Pass:     hwFrac > ivyFrac,
	})
	return out, nil
}

// kneeOf locates the flattening budget of a series.
func kneeOf(s sweep.Series) float64 {
	pts := make([]core.CurvePoint, s.Len())
	for i := range s.X {
		pts[i] = core.CurvePoint{Budget: power(s.X[i]), PerfMax: s.Y[i]}
	}
	b, ok := core.Knee(pts, 0.1)
	if !ok {
		return 0
	}
	return b.Watts()
}

func lastOf(ys []float64) float64 {
	if len(ys) == 0 {
		return 0
	}
	return ys[len(ys)-1]
}

// power converts plain watts to the typed quantity.
func power(w float64) units.Power { return units.Power(w) }
