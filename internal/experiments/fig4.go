package experiments

import (
	"fmt"

	"repro/internal/category"
	"repro/internal/hw"
	"repro/internal/profile"
	"repro/internal/report"
	"repro/internal/svgplot"
	"repro/internal/sweep"
	"repro/internal/units"
	"repro/internal/workload"
)

// Fig4 reproduces Figure 4: the scenario patterns for (a) star
// RandomAccess and (b) EP-DGEMM across a range of total budgets on the
// IvyBridge system, showing how the number of categories and the span of
// each scenario vary with the budget — in particular, scenario I
// disappears once the budget drops below the sum of the components'
// maximum demands.
func Fig4() (Output, error) {
	out := Output{ID: "fig4", Title: "Scenario patterns across budgets (SRA, EP-DGEMM on IvyBridge)"}

	p, err := hw.PlatformByName("ivybridge")
	if err != nil {
		return out, err
	}
	budgets := budgetsBetween(170, 260, 30)

	for _, wl := range []string{"sra", "dgemm"} {
		w, err := workload.ByName(wl)
		if err != nil {
			return out, err
		}
		prof, err := profile.ProfileCPU(p, w)
		if err != nil {
			return out, err
		}
		demand := prof.Critical.CPUMax + prof.Critical.MemMax

		tb := report.NewTable(
			fmt.Sprintf("Fig 4: %s scenario presence by budget (demand %.0f W)", wl, demand.Watts()),
			"budget (W)", "scenarios present", "best alloc", "best perf", "spread")
		var sawIBelow, sawIAbove bool
		for _, b := range budgets {
			splits, err := sweep.CPUSplit(p, w, b, &prof)
			if err != nil {
				return out, err
			}
			present := map[category.Scenario]bool{}
			bestPerf, worstPerf := 0.0, 1e18
			var bestAlloc string
			for _, sp := range splits {
				present[sp.Scenario] = true
				if sp.Perf > bestPerf {
					bestPerf = sp.Perf
					bestAlloc = fmt.Sprintf("(%.0f, %.0f)", sp.Alloc.Proc.Watts(), sp.Alloc.Mem.Watts())
				}
				worstPerf = minf(worstPerf, sp.Perf)
			}
			if present[category.ScenarioI] {
				if b < demand {
					sawIBelow = true
				} else {
					sawIAbove = true
				}
			}
			tb.AddRow(
				report.FormatFloat(b.Watts()),
				scenarioList(present),
				bestAlloc,
				report.FormatFloat(bestPerf),
				fmt.Sprintf("%.1fx", bestPerf/maxf(worstPerf, 1e-12)),
			)
		}
		out.Tables = append(out.Tables, tb)

		fig := svgplot.Chart{
			Title:  fmt.Sprintf("Fig 4: %s performance vs memory allocation, one curve per budget", wl),
			XLabel: "P_mem allocation (W)", YLabel: w.PerfUnit, Markers: true,
		}
		for _, b := range budgets {
			splits, err := sweep.CPUSplit(p, w, b, &prof)
			if err != nil {
				return out, err
			}
			var xs, ys []float64
			for _, sp := range splits {
				xs = append(xs, sp.Alloc.Mem.Watts())
				ys = append(ys, sp.Perf)
			}
			if err := fig.Add(fmt.Sprintf("P_b = %.0f W", b.Watts()), xs, ys); err != nil {
				return out, err
			}
		}
		out.Figures = append(out.Figures, fig)

		out.Findings = append(out.Findings, Finding{
			Claim:    fmt.Sprintf("%s: scenario I appears only when the budget covers both components' max demands", wl),
			Measured: fmt.Sprintf("I below demand: %v, I above demand: %v", sawIBelow, sawIAbove),
			Pass:     !sawIBelow && (sawIAbove || budgetsAllBelow(budgets, demand)),
		})
	}
	return out, nil
}

func scenarioList(present map[category.Scenario]bool) string {
	var s string
	for sc := category.ScenarioI; sc <= category.ScenarioVI; sc++ {
		if present[sc] {
			if s != "" {
				s += ","
			}
			s += sc.String()
		}
	}
	return s
}

func budgetsAllBelow(budgets []units.Power, demand units.Power) bool {
	for _, b := range budgets {
		if b >= demand {
			return false
		}
	}
	return true
}
