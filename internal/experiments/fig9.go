package experiments

import (
	"fmt"

	"repro/internal/hw"
	"repro/internal/profile"
	"repro/internal/report"
	"repro/internal/svgplot"
	"repro/internal/sweep"
	"repro/internal/units"
	"repro/internal/workload"
)

// Fig9 reproduces Figure 9: the accuracy of the COORD heuristic against
// the best allocation found by exhaustive sweeping, the memory-first
// strategy (CPU), and the default Nvidia capping policy (GPU), across all
// benchmarks of Table 3.
func Fig9() (Output, error) {
	out := Output{ID: "fig9", Title: "COORD vs best vs baselines"}

	// ----- CPU panel: all 11 benchmarks on IvyBridge -----
	ivy, err := hw.PlatformByName("ivybridge")
	if err != nil {
		return out, err
	}
	tb := report.NewTable("Fig 9 (CPU): performance relative to the sweep best, IvyBridge",
		"benchmark", "budget (W)", "coord", "memory-first", "cpu-first", "even-split")
	var coordGaps, largeCapGaps []float64
	coordBeatsMemFirst, comparisons := 0, 0
	midTier := map[string]map[string]float64{}
	for _, w := range workload.CPUWorkloads() {
		prof, err := profile.ProfileCPU(ivy, w)
		if err != nil {
			return out, err
		}
		thresh := prof.Critical.ProductiveThreshold()
		demand := prof.Critical.CPUMax + prof.Critical.MemMax
		budgets := []units.Power{
			thresh + 8,
			(thresh + demand) / 2,
			demand + 10,
		}
		rows, err := sweep.CompareCPU(ivy, w, budgets)
		if err != nil {
			return out, err
		}
		rel := map[units.Power]map[string]float64{}
		for _, r := range rows {
			if rel[r.Budget] == nil {
				rel[r.Budget] = map[string]float64{}
			}
			rel[r.Budget][r.Strategy] = r.RelToBest
		}
		if m := rel[budgets[1]]; m != nil {
			midTier[w.Name] = m
		} else {
			midTier[w.Name] = map[string]float64{}
		}
		for _, b := range budgets {
			m := rel[b]
			if m == nil {
				continue
			}
			tb.AddRow(w.Name, report.FormatFloat(b.Watts()),
				report.FormatFloat(m["coord"]), report.FormatFloat(m["memory-first"]),
				report.FormatFloat(m["cpu-first"]), report.FormatFloat(m["even-split"]))
			if c, ok := m["coord"]; ok && c > 0 {
				gap := 1 - minf(c, 1)
				coordGaps = append(coordGaps, gap)
				if b >= demand {
					largeCapGaps = append(largeCapGaps, gap)
				}
				if mf, ok := m["memory-first"]; ok {
					comparisons++
					if c >= mf-1e-9 {
						coordBeatsMemFirst++
					}
				}
			}
		}
	}
	out.Tables = append(out.Tables, tb)

	// SVG: relative-to-best per benchmark at each sampled budget tier
	// (x = benchmark index, series = strategy), mirroring Figure 9's bar
	// groups.
	cpuFig := svgplot.Chart{
		Title:  "Fig 9 (CPU): performance relative to the sweep best (mid-budget tier)",
		XLabel: "benchmark index (Table 3 order)", YLabel: "fraction of best", Markers: true,
	}
	strategies := []string{"coord", "memory-first", "cpu-first", "even-split"}
	seriesY := map[string][]float64{}
	var seriesX []float64
	for i, w := range workload.CPUWorkloads() {
		seriesX = append(seriesX, float64(i+1))
		for _, st := range strategies {
			seriesY[st] = append(seriesY[st], midTier[w.Name][st])
		}
	}
	for _, st := range strategies {
		if err := cpuFig.Add(st, seriesX, seriesY[st]); err != nil {
			return out, err
		}
	}
	out.Figures = append(out.Figures, cpuFig)

	avgGap := meanOf(coordGaps)
	out.Findings = append(out.Findings, Finding{
		Claim:    "COORD differs from the best by ~9.6% on average across all CPU benchmarks and caps",
		Measured: fmt.Sprintf("average gap %.1f%% over %d cases", avgGap*100, len(coordGaps)),
		Pass:     avgGap <= 0.12,
	})
	out.Findings = append(out.Findings, Finding{
		Claim:    "COORD differs from the best by less than 5% for large power caps",
		Measured: fmt.Sprintf("average large-cap gap %.1f%%", meanOf(largeCapGaps)*100),
		Pass:     meanOf(largeCapGaps) <= 0.05,
	})
	out.Findings = append(out.Findings, Finding{
		Claim:    "COORD generally outperforms the memory-first strategy",
		Measured: fmt.Sprintf("COORD >= memory-first in %d of %d cases", coordBeatsMemFirst, comparisons),
		Pass:     coordBeatsMemFirst*3 >= comparisons*2,
	})

	// ----- GPU panel: all 6 benchmarks on Titan XP -----
	xp, err := hw.PlatformByName("titanxp")
	if err != nil {
		return out, err
	}
	gb := report.NewTable("Fig 9 (GPU): performance relative to the sweep best, Titan XP",
		"benchmark", "cap (W)", "coord", "nvidia-default")
	var gpuGaps []float64
	maxGainOverDefault := 0.0
	for _, w := range workload.GPUWorkloads() {
		caps := []units.Power{140, 180, 220, 260}
		rows, err := sweep.CompareGPU(xp, w, caps)
		if err != nil {
			return out, err
		}
		rel := map[units.Power]map[string]float64{}
		perf := map[units.Power]map[string]float64{}
		for _, r := range rows {
			if rel[r.Budget] == nil {
				rel[r.Budget] = map[string]float64{}
				perf[r.Budget] = map[string]float64{}
			}
			rel[r.Budget][r.Strategy] = r.RelToBest
			perf[r.Budget][r.Strategy] = r.Perf
		}
		for _, b := range caps {
			m := rel[b]
			if m == nil {
				continue
			}
			gb.AddRow(w.Name, report.FormatFloat(b.Watts()),
				report.FormatFloat(m["coord"]), report.FormatFloat(m["nvidia-default"]))
			if c, ok := m["coord"]; ok && c > 0 {
				gpuGaps = append(gpuGaps, 1-minf(c, 1))
			}
			if pc, pd := perf[b]["coord"], perf[b]["nvidia-default"]; pd > 0 {
				maxGainOverDefault = maxf(maxGainOverDefault, pc/pd-1)
			}
		}
	}
	out.Tables = append(out.Tables, gb)

	out.Findings = append(out.Findings, Finding{
		Claim:    "COORD differs from the best by less than 2% for GPU benchmarks",
		Measured: fmt.Sprintf("average GPU gap %.2f%%", meanOf(gpuGaps)*100),
		Pass:     meanOf(gpuGaps) <= 0.02,
	})
	out.Findings = append(out.Findings, Finding{
		Claim:    "COORD outperforms the default Nvidia power capping by up to ~33%",
		Measured: fmt.Sprintf("max gain over default %.0f%%", maxGainOverDefault*100),
		Pass:     maxGainOverDefault >= 0.15,
	})
	return out, nil
}
