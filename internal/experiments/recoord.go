package experiments

import (
	"fmt"
	"reflect"

	"repro/internal/hw"
	"repro/internal/recoord"
	"repro/internal/report"
	"repro/internal/svgplot"
	"repro/internal/units"
	"repro/internal/workload"
)

// recoordBudgets samples the settable cap range of a card the way the
// paper's figure-9 sweeps do: four budgets spanning floor to near-TDP.
func recoordBudgets(gpu *hw.GPUSpec) []units.Power {
	var out []units.Power
	for _, frac := range []float64{0.1, 0.35, 0.6, 0.85} {
		out = append(out, gpu.MinCap+units.Power(frac*float64(gpu.MaxCap-gpu.MinCap)))
	}
	return out
}

// Recoord evaluates the online re-coordination controller in a
// figure-9-style comparison: phased ML-inference serving mixes on the
// H100-class platforms across the settable budget range, online
// controller vs static COORD vs the default governor on the identical
// virtual-time trace. The static aggregate profile misreads phased
// workloads (prefill dominates the token count, decode the wall time),
// so this is where static coordination leaves the most performance on
// the table — the gap the controller exists to close.
func Recoord() (Output, error) {
	out := Output{ID: "recoord", Title: "Online re-coordination vs static COORD vs default governor"}

	tb := report.NewTable(
		"Online re-coordination on phased ML inference (perf in ktok/s)",
		"platform", "workload", "budget (W)", "online", "static", "governor",
		"gain vs static", "switches")

	type series struct{ x, gain []float64 }
	curves := map[string]*series{}
	var order []string

	points, notWorse, strictlyBetter := 0, 0, 0
	maxGain, maxGainLabel := 0.0, ""
	for _, pn := range []string{"h100", "h200"} {
		p, err := hw.PlatformByName(pn)
		if err != nil {
			return out, err
		}
		for _, w := range workload.PhasedWorkloads() {
			key := pn + "/" + w.Name
			curves[key] = &series{}
			order = append(order, key)
			for _, budget := range recoordBudgets(p.GPU) {
				res, err := recoord.Run(recoord.Config{Platform: p, Workload: w, Budget: budget})
				if err != nil {
					return out, err
				}
				points++
				if res.OnlinePerf >= res.StaticPerf*(1-1e-9) {
					notWorse++
				}
				if res.OnlinePerf > res.StaticPerf*(1+1e-6) {
					strictlyBetter++
				}
				gain := res.Gain()
				if gain > maxGain {
					maxGain, maxGainLabel = gain, fmt.Sprintf("%s at %s", key, budget)
				}
				curves[key].x = append(curves[key].x, budget.Watts())
				curves[key].gain = append(curves[key].gain, gain*100)
				tb.AddRow(pn, w.Name, report.FormatFloat(budget.Watts()),
					report.FormatFloat(res.OnlinePerf),
					report.FormatFloat(res.StaticPerf),
					report.FormatFloat(res.GovernorPerf),
					fmt.Sprintf("%+.1f%%", gain*100),
					fmt.Sprint(res.Switches))
			}
		}
	}
	out.Tables = append(out.Tables, tb)

	fig := svgplot.Chart{
		Title:  "Online re-coordination gain over static COORD",
		XLabel: "board power budget (W)", YLabel: "throughput gain (%)", Markers: true,
	}
	for _, key := range order {
		if err := fig.Add(key, curves[key].x, curves[key].gain); err != nil {
			return out, err
		}
	}
	out.Figures = append(out.Figures, fig)

	out.Findings = append(out.Findings, Finding{
		Claim:    "Online re-coordination never loses to static COORD (static stays in the candidate slate)",
		Measured: fmt.Sprintf("online >= static on %d of %d platform x workload x budget points", notWorse, points),
		Pass:     notWorse == points,
	})
	out.Findings = append(out.Findings, Finding{
		Claim:    "Phase-shift detection finds strict improvements static coordination cannot express",
		Measured: fmt.Sprintf("strictly better on %d of %d points; max gain %+.1f%% (%s)", strictlyBetter, points, maxGain*100, maxGainLabel),
		Pass:     strictlyBetter >= 1 && maxGain >= 0.10,
	})

	// Determinism: the whole comparison must be a pure function of the
	// configuration — repeat one full run and demand identical output.
	p, err := hw.PlatformByName("h100")
	if err != nil {
		return out, err
	}
	w, err := workload.ByName("llmbatch")
	if err != nil {
		return out, err
	}
	cfg := recoord.Config{Platform: p, Workload: w, Budget: recoordBudgets(p.GPU)[0]}
	a, err := recoord.Run(cfg)
	if err != nil {
		return out, err
	}
	b, err := recoord.Run(cfg)
	if err != nil {
		return out, err
	}
	identical := reflect.DeepEqual(a, b) && fmt.Sprintf("%+v", a) == fmt.Sprintf("%+v", b)
	out.Findings = append(out.Findings, Finding{
		Claim:    "Controller runs are seed-free deterministic (byte-identical on repeat)",
		Measured: fmt.Sprintf("repeat run identical: %v", identical),
		Pass:     identical,
	})
	return out, nil
}
