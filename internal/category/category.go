// Package category implements the paper's categorization of
// cross-component power allocation scenarios (Section 3.2): six scenarios
// on CPU platforms, defined by where each component's cap falls relative
// to the workload's critical power values, and three trend categories on
// GPUs (Section 4), defined by how performance responds to shifting power
// toward memory.
package category

import (
	"fmt"

	"repro/internal/units"
)

// Scenario is one of the paper's six CPU allocation scenarios.
type Scenario int

// The six scenarios of Section 3.2.
const (
	// ScenarioI: adequate power for both CPUs and memory; both run at
	// their highest performance state and actual powers are constant.
	ScenarioI Scenario = iota + 1
	// ScenarioII: adequate memory power, lightly constrained CPU power
	// (DVFS region); performance degrades gradually as CPU power drops.
	ScenarioII
	// ScenarioIII: adequate CPU power, constrained memory power
	// (bandwidth throttling); performance tracks the memory allocation.
	ScenarioIII
	// ScenarioIV: adequate memory power, seriously constrained CPU power
	// (clock throttling); performance drops sharply and memory
	// under-consumes its allocation.
	ScenarioIV
	// ScenarioV: adequate CPU power, minimum memory power; the memory cap
	// sits below the hardware floor and is not respected.
	ScenarioV
	// ScenarioVI: minimum CPU power; the CPU cap sits below the hardware
	// floor, the node bound cannot be ensured, and performance is worst.
	ScenarioVI
)

// String returns the paper's Roman-numeral name.
func (s Scenario) String() string {
	switch s {
	case ScenarioI:
		return "I"
	case ScenarioII:
		return "II"
	case ScenarioIII:
		return "III"
	case ScenarioIV:
		return "IV"
	case ScenarioV:
		return "V"
	case ScenarioVI:
		return "VI"
	default:
		return fmt.Sprintf("Scenario(%d)", int(s))
	}
}

// Describe returns the paper's one-line description of the scenario.
func (s Scenario) Describe() string {
	switch s {
	case ScenarioI:
		return "adequate power for both CPUs and memory"
	case ScenarioII:
		return "adequate memory power, lightly constrained CPU power"
	case ScenarioIII:
		return "adequate CPU power, constrained memory power"
	case ScenarioIV:
		return "adequate memory power, seriously constrained CPU power"
	case ScenarioV:
		return "adequate CPU power, minimum memory power"
	case ScenarioVI:
		return "adequate memory power, minimum CPU power"
	default:
		return "unknown scenario"
	}
}

// CriticalPowers holds the paper's seven application-specific critical
// power values for a CPU platform (Section 5.1). They mark the
// transitions between RAPL's power-limiting mechanisms and bound the
// allocation scenarios.
type CriticalPowers struct {
	// CPUMax (P_cpu_L1) is the maximum processor power demand: the draw
	// at the highest P-state.
	CPUMax units.Power
	// CPULowPState (P_cpu_L2) is the draw at the lowest P-state;
	// [CPULowPState, CPUMax] is the DVFS range.
	CPULowPState units.Power
	// CPULowThrottle (P_cpu_L3) is the draw at the deepest T-state.
	CPULowThrottle units.Power
	// CPUFloor (P_cpu_L4) is the hardware minimum package power,
	// workload independent.
	CPUFloor units.Power
	// MemMax (P_mem_L1) is the maximum DRAM power demand when both
	// components run at their highest state.
	MemMax units.Power
	// MemAtCPULow (P_mem_L2) is the DRAM power when the processor sits
	// at its deepest throttle state.
	MemAtCPULow units.Power
	// MemFloor (P_mem_L3) is the hardware minimum DRAM power,
	// workload independent.
	MemFloor units.Power
}

// Validate checks the orderings the definitions imply.
func (cp *CriticalPowers) Validate() error {
	if !(cp.CPUFloor <= cp.CPULowThrottle && cp.CPULowThrottle <= cp.CPULowPState &&
		cp.CPULowPState <= cp.CPUMax) {
		return fmt.Errorf("category: CPU critical powers out of order: L4=%v L3=%v L2=%v L1=%v",
			cp.CPUFloor, cp.CPULowThrottle, cp.CPULowPState, cp.CPUMax)
	}
	if !(cp.MemFloor <= cp.MemAtCPULow && cp.MemAtCPULow <= cp.MemMax) {
		return fmt.Errorf("category: memory critical powers out of order: L3=%v L2=%v L1=%v",
			cp.MemFloor, cp.MemAtCPULow, cp.MemMax)
	}
	if cp.CPUFloor <= 0 || cp.MemFloor <= 0 {
		return fmt.Errorf("category: non-positive floors")
	}
	return nil
}

// ProductiveThreshold returns P_cpu_L2 + P_mem_L2, the budget below which
// the paper says a system cannot operate in a productive manner
// (Section 5.1's first heuristic).
func (cp *CriticalPowers) ProductiveThreshold() units.Power {
	return cp.CPULowPState + cp.MemAtCPULow
}

// Classify maps an allocation (procCap, memCap) to its scenario. The
// checks follow the paper's definitions; when both components are
// moderately constrained (possible at small budgets where scenario I
// vanishes), the proportionally more-constrained component decides
// between II and III.
func (cp *CriticalPowers) Classify(procCap, memCap units.Power) Scenario {
	switch {
	case procCap < cp.CPUFloor:
		return ScenarioVI
	case memCap < cp.MemFloor:
		return ScenarioV
	case procCap >= cp.CPUMax && memCap >= cp.MemMax:
		return ScenarioI
	case procCap < cp.CPULowPState:
		return ScenarioIV
	case memCap >= cp.MemMax: // CPU in DVFS range, memory adequate
		return ScenarioII
	case procCap >= cp.CPUMax: // memory constrained, CPU adequate
		return ScenarioIII
	}
	// Both moderately constrained: the more-deficient side labels it.
	procDef := deficit(procCap, cp.CPULowPState, cp.CPUMax)
	memDef := deficit(memCap, cp.MemFloor, cp.MemMax)
	if memDef > procDef {
		return ScenarioIII
	}
	return ScenarioII
}

// deficit returns how far v sits below hi, normalized by the [lo, hi]
// range, clamped to [0, 1].
func deficit(v, lo, hi units.Power) float64 {
	if hi <= lo {
		return 0
	}
	d := (hi - v).Watts() / (hi - lo).Watts()
	if d < 0 {
		return 0
	}
	if d > 1 {
		return 1
	}
	return d
}

// Span is a contiguous run of one scenario along a fixed-budget
// allocation sweep, reported in memory-allocation coordinates as the
// paper's Figure 3 does.
type Span struct {
	Scenario       Scenario
	MemLo, MemHi   units.Power
	ProcLo, ProcHi units.Power
}

// Spans sweeps memory allocations from memLo to budget-procMin in step
// increments at a fixed total budget and returns the contiguous scenario
// runs in ascending memory order.
func (cp *CriticalPowers) Spans(budget, memLo, procMin, step units.Power) []Span {
	if step <= 0 {
		step = 4
	}
	var spans []Span
	for mem := memLo; mem <= budget-procMin; mem += step {
		proc := budget - mem
		s := cp.Classify(proc, mem)
		if n := len(spans); n > 0 && spans[n-1].Scenario == s {
			spans[n-1].MemHi = mem
			spans[n-1].ProcLo = proc
			continue
		}
		spans = append(spans, Span{
			Scenario: s,
			MemLo:    mem, MemHi: mem,
			ProcLo: proc, ProcHi: proc,
		})
	}
	return spans
}

// Component identifies which side of the node an observation concerns.
type Component int

// The components of the simplified two-component problem.
const (
	ComponentNone Component = iota
	ComponentCPU
	ComponentDRAM
)

// String returns "none", "cpu", or "dram".
func (c Component) String() string {
	switch c {
	case ComponentNone:
		return "none"
	case ComponentCPU:
		return "cpu"
	case ComponentDRAM:
		return "dram"
	default:
		return fmt.Sprintf("Component(%d)", int(c))
	}
}

// OptimalLocation is one row of the paper's Table 1: for a budget regime,
// the scenario intersection where the optimal allocation sits and the
// critical component that must not be under-powered.
type OptimalLocation struct {
	// ValidScenarios lists the scenarios that appear at this budget.
	ValidScenarios []Scenario
	// IntersectionLo and IntersectionHi are the neighboring scenarios
	// whose boundary hosts the optimum (equal for scenario I).
	IntersectionLo, IntersectionHi Scenario
	// Critical is the component that drastically degrades performance if
	// under-powered at this budget.
	Critical Component
}

// Locate reproduces Table 1: the optimal-allocation location for a
// budget, derived from the workload's critical power values.
func (cp *CriticalPowers) Locate(budget units.Power) OptimalLocation {
	switch {
	case budget >= cp.CPUMax+cp.MemMax:
		return OptimalLocation{
			ValidScenarios: []Scenario{ScenarioI, ScenarioII, ScenarioIII, ScenarioIV, ScenarioV, ScenarioVI},
			IntersectionLo: ScenarioI, IntersectionHi: ScenarioI,
			Critical: ComponentNone,
		}
	case budget >= cp.CPULowPState+cp.MemMax:
		return OptimalLocation{
			ValidScenarios: []Scenario{ScenarioII, ScenarioIII, ScenarioIV, ScenarioV, ScenarioVI},
			IntersectionLo: ScenarioII, IntersectionHi: ScenarioIII,
			Critical: ComponentDRAM,
		}
	case budget >= cp.CPULowPState+cp.MemAtCPULow:
		return OptimalLocation{
			ValidScenarios: []Scenario{ScenarioIII, ScenarioIV, ScenarioV, ScenarioVI},
			IntersectionLo: ScenarioIII, IntersectionHi: ScenarioIV,
			Critical: ComponentCPU,
		}
	case budget >= cp.CPUFloor+cp.MemFloor:
		return OptimalLocation{
			ValidScenarios: []Scenario{ScenarioIV, ScenarioV, ScenarioVI},
			IntersectionLo: ScenarioIV, IntersectionHi: ScenarioVI,
			Critical: ComponentDRAM,
		}
	default:
		return OptimalLocation{
			ValidScenarios: []Scenario{ScenarioV, ScenarioVI},
			IntersectionLo: ScenarioV, IntersectionHi: ScenarioVI,
			Critical: ComponentCPU,
		}
	}
}
