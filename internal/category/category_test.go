package category

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/units"
)

// sraCritical approximates the paper's RandomAccess critical powers on
// the IvyBridge node (Section 3.2: CPU max ~112 W, floor 48 W, DVFS low
// ~68 W; DRAM max ~116 W, floor ~66 W).
func sraCritical() CriticalPowers {
	return CriticalPowers{
		CPUMax:         112,
		CPULowPState:   70,
		CPULowThrottle: 52,
		CPUFloor:       48,
		MemMax:         116,
		MemAtCPULow:    70,
		MemFloor:       66,
	}
}

func TestCriticalPowersValidate(t *testing.T) {
	cp := sraCritical()
	if err := cp.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := cp
	bad.CPULowPState = bad.CPUMax + 10
	if err := bad.Validate(); err == nil {
		t.Error("L2 > L1 accepted")
	}
	bad = cp
	bad.MemAtCPULow = bad.MemFloor - 10
	if err := bad.Validate(); err == nil {
		t.Error("mem L2 < L3 accepted")
	}
	bad = cp
	bad.CPUFloor = 0
	bad.CPULowThrottle = 0
	bad.CPULowPState = 0
	bad.CPUMax = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero floors accepted")
	}
}

func TestClassifyPaperScenarios(t *testing.T) {
	// The paper's Section 3.2 example: SRA on IvyBridge at P_b = 240 W.
	cp := sraCritical()
	budget := units.Power(240)
	cases := []struct {
		mem  units.Power
		want Scenario
	}{
		{126, ScenarioI},   // P_mem in [120,132]: both adequate
		{150, ScenarioII},  // P_cpu = 90, DVFS range, mem adequate
		{100, ScenarioIII}, // P_cpu = 140 adequate, mem constrained
		{185, ScenarioIV},  // P_cpu = 55: T-state region
		{50, ScenarioV},    // mem below its floor
		{200, ScenarioVI},  // P_cpu = 40 below the 48 W floor
	}
	for _, c := range cases {
		got := cp.Classify(budget-c.mem, c.mem)
		if got != c.want {
			t.Errorf("mem=%v (cpu=%v): scenario %v, want %v", c.mem, budget-c.mem, got, c.want)
		}
	}
}

func TestClassifyCoversAllAllocations(t *testing.T) {
	cp := sraCritical()
	f := func(procRaw, memRaw float64) bool {
		proc := units.Power(30 + mod(procRaw, 250))
		mem := units.Power(30 + mod(memRaw, 250))
		s := cp.Classify(proc, mem)
		return s >= ScenarioI && s <= ScenarioVI
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func mod(x, m float64) float64 {
	v := math.Abs(math.Mod(x, m))
	if math.IsNaN(v) {
		return 0
	}
	return v
}

func TestClassifyBothConstrainedTieBreak(t *testing.T) {
	cp := sraCritical()
	// Budget too small for scenario I: both below max. Memory nearly at
	// floor -> III; CPU nearly at L2 with memory close to max -> II.
	if got := cp.Classify(100, 70); got != ScenarioIII {
		t.Errorf("deep memory deficit classified %v, want III", got)
	}
	if got := cp.Classify(72, 112); got != ScenarioII {
		t.Errorf("deep CPU deficit classified %v, want II", got)
	}
}

func TestSpansOrderingAt240W(t *testing.T) {
	cp := sraCritical()
	spans := cp.Spans(240, 40, 40, 2)
	if len(spans) < 5 {
		t.Fatalf("expected at least 5 scenario spans, got %d: %+v", len(spans), spans)
	}
	// Ascending memory allocation passes through V, III, I, II, IV, VI in
	// the paper's Figure 3 layout.
	want := []Scenario{ScenarioV, ScenarioIII, ScenarioI, ScenarioII, ScenarioIV, ScenarioVI}
	var got []Scenario
	for _, s := range spans {
		got = append(got, s.Scenario)
	}
	if len(got) != len(want) {
		t.Fatalf("spans = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("spans = %v, want %v", got, want)
		}
	}
	// Scenario I must sit in a narrow band around the paper's [120,132]
	// (exact edges depend on the calibrated critical values).
	for _, s := range spans {
		if s.Scenario == ScenarioI {
			if s.MemLo < 110 || s.MemLo > 124 || s.MemHi < 124 || s.MemHi > 136 {
				t.Errorf("scenario I span [%v,%v], want roughly [116..132]", s.MemLo, s.MemHi)
			}
		}
	}
}

func TestSpansScenarioIVanishesAtSmallBudget(t *testing.T) {
	cp := sraCritical()
	// Budget below CPUMax+MemMax: scenario I cannot appear.
	spans := cp.Spans(200, 40, 40, 2)
	for _, s := range spans {
		if s.Scenario == ScenarioI {
			t.Errorf("scenario I appeared at 200 W budget: %+v", s)
		}
	}
}

func TestSpansDefaultStep(t *testing.T) {
	cp := sraCritical()
	spans := cp.Spans(240, 40, 40, 0)
	if len(spans) == 0 {
		t.Error("default step produced no spans")
	}
}

func TestLocateReproducesTable1(t *testing.T) {
	cp := sraCritical()
	cases := []struct {
		budget   units.Power
		lo, hi   Scenario
		critical Component
		nValid   int
	}{
		{250, ScenarioI, ScenarioI, ComponentNone, 6},    // large
		{200, ScenarioII, ScenarioIII, ComponentDRAM, 5}, // I gone
		{160, ScenarioIII, ScenarioIV, ComponentCPU, 4},  // II gone
		{125, ScenarioIV, ScenarioVI, ComponentDRAM, 3},  // III gone
		{100, ScenarioV, ScenarioVI, ComponentCPU, 2},    // smallest
	}
	for _, c := range cases {
		loc := cp.Locate(c.budget)
		if loc.IntersectionLo != c.lo || loc.IntersectionHi != c.hi {
			t.Errorf("budget %v: intersection %v|%v, want %v|%v",
				c.budget, loc.IntersectionLo, loc.IntersectionHi, c.lo, c.hi)
		}
		if loc.Critical != c.critical {
			t.Errorf("budget %v: critical %v, want %v", c.budget, loc.Critical, c.critical)
		}
		if len(loc.ValidScenarios) != c.nValid {
			t.Errorf("budget %v: %d valid scenarios, want %d",
				c.budget, len(loc.ValidScenarios), c.nValid)
		}
	}
}

func TestProductiveThreshold(t *testing.T) {
	cp := sraCritical()
	if got := cp.ProductiveThreshold(); got != 140 {
		t.Errorf("threshold = %v, want 140 W (L2c+L2m)", got)
	}
}

func TestScenarioStrings(t *testing.T) {
	names := map[Scenario]string{
		ScenarioI: "I", ScenarioII: "II", ScenarioIII: "III",
		ScenarioIV: "IV", ScenarioV: "V", ScenarioVI: "VI",
	}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("%d.String() = %q", s, s.String())
		}
		if s.Describe() == "unknown scenario" {
			t.Errorf("%v has no description", s)
		}
	}
	if Scenario(0).String() == "" || Scenario(0).Describe() != "unknown scenario" {
		t.Error("zero scenario formatting")
	}
	if ComponentCPU.String() != "cpu" || ComponentDRAM.String() != "dram" || ComponentNone.String() != "none" {
		t.Error("component names")
	}
	if Component(9).String() == "" {
		t.Error("unknown component should format")
	}
}

func TestClassifyGPUSeries(t *testing.T) {
	flat := []TrendPoint{{30, 100}, {50, 100.2}, {70, 100.1}}
	if cat, _, _ := ClassifyGPUSeries(flat); cat != GPUCategoryI {
		t.Errorf("flat series = %v, want I", cat)
	}
	falling := []TrendPoint{{30, 100}, {50, 90}, {70, 75}}
	if cat, _, _ := ClassifyGPUSeries(falling); cat != GPUCategoryII {
		t.Errorf("falling series = %v, want II", cat)
	}
	rising := []TrendPoint{{30, 60}, {50, 80}, {70, 100}}
	if cat, _, _ := ClassifyGPUSeries(rising); cat != GPUCategoryIII {
		t.Errorf("rising series = %v, want III", cat)
	}
	// Rise-then-fall with a bigger rise: III, but both components present.
	mixed := []TrendPoint{{30, 60}, {50, 100}, {70, 90}}
	cat, rise, fall := ClassifyGPUSeries(mixed)
	if cat != GPUCategoryIII || rise <= 0 || fall <= 0 {
		t.Errorf("mixed series = %v rise=%v fall=%v", cat, rise, fall)
	}
	// Degenerate inputs.
	if cat, _, _ := ClassifyGPUSeries(nil); cat != GPUCategoryI {
		t.Error("nil series should be I")
	}
	if cat, _, _ := ClassifyGPUSeries([]TrendPoint{{30, 0}, {40, 0}}); cat != GPUCategoryI {
		t.Error("zero-perf series should be I")
	}
}

func TestGPUCategoryString(t *testing.T) {
	if GPUCategoryI.String() != "I" || GPUCategoryII.String() != "II" || GPUCategoryIII.String() != "III" {
		t.Error("GPU category names")
	}
	if GPUCategory(0).String() == "" {
		t.Error("unknown GPU category should format")
	}
}

func TestPeakMemPower(t *testing.T) {
	pts := []TrendPoint{{30, 60}, {50, 100}, {70, 90}}
	p, ok := PeakMemPower(pts)
	if !ok || p != 50 {
		t.Errorf("peak = %v ok=%v", p, ok)
	}
	if _, ok := PeakMemPower(nil); ok {
		t.Error("empty series should report false")
	}
}
