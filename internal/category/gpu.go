package category

import "fmt"

// GPUCategory is one of the three GPU allocation categories the paper
// identifies in Section 4. GPU hardware excludes the caps that would
// produce CPU scenarios IV-VI, so only three trends remain, defined by
// how performance responds as the memory power allocation increases under
// a fixed board cap.
type GPUCategory int

// The three GPU categories.
const (
	// GPUCategoryI: performance roughly constant — the cap exceeds the
	// application's demand, so shifting power changes nothing.
	GPUCategoryI GPUCategory = iota + 1
	// GPUCategoryII: performance decreases as memory allocation grows —
	// the SMs are power constrained and memory steals their budget
	// (compute-intensive applications, small caps).
	GPUCategoryII
	// GPUCategoryIII: performance increases with memory allocation —
	// the application is memory bound.
	GPUCategoryIII
)

// String returns the Roman-numeral name.
func (c GPUCategory) String() string {
	switch c {
	case GPUCategoryI:
		return "I"
	case GPUCategoryII:
		return "II"
	case GPUCategoryIII:
		return "III"
	default:
		return fmt.Sprintf("GPUCategory(%d)", int(c))
	}
}

// TrendPoint is one point of a fixed-cap GPU series: performance at an
// (estimated) memory power allocation.
type TrendPoint struct {
	MemPower float64 // watts
	Perf     float64
}

// flatTol is the relative change below which a series segment counts as
// flat (category I).
const flatTol = 0.01

// ClassifyGPUSeries labels a fixed-cap series of performance versus
// memory power allocation with the dominant category, using the total
// rise and fall across the series: mostly-flat series are category I,
// rising series category III, falling series category II. Mixed series
// (rise then fall, the paper's "balanced" pattern at small caps) report
// the side with the larger magnitude; Rise and Fall are returned so
// callers can detect the mix.
func ClassifyGPUSeries(pts []TrendPoint) (cat GPUCategory, rise, fall float64) {
	if len(pts) < 2 {
		return GPUCategoryI, 0, 0
	}
	base := pts[0].Perf
	if base <= 0 {
		base = 1
	}
	for i := 1; i < len(pts); i++ {
		d := pts[i].Perf - pts[i-1].Perf
		if d > 0 {
			rise += d
		} else {
			fall -= d
		}
	}
	riseRel, fallRel := rise/base, fall/base
	switch {
	case riseRel < flatTol && fallRel < flatTol:
		return GPUCategoryI, rise, fall
	case riseRel >= fallRel:
		return GPUCategoryIII, rise, fall
	default:
		return GPUCategoryII, rise, fall
	}
}

// PeakMemPower returns the memory power at which the series peaks — the
// balanced allocation for in-between applications (paper Section 4,
// pattern 3).
func PeakMemPower(pts []TrendPoint) (float64, bool) {
	if len(pts) == 0 {
		return 0, false
	}
	best := pts[0]
	for _, p := range pts[1:] {
		if p.Perf > best.Perf {
			best = p
		}
	}
	return best.MemPower, true
}
