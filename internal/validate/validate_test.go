package validate

import (
	"strings"
	"testing"

	"repro/internal/hw"
	"repro/internal/workload"
)

func TestBuiltInPlatformsClean(t *testing.T) {
	for _, p := range hw.Platforms() {
		if issues := Platform(p); len(issues) != 0 {
			t.Errorf("%s: %v", p.Name, issues)
		}
	}
}

func TestCatalogClean(t *testing.T) {
	if issues := Catalog(); len(issues) != 0 {
		for _, i := range issues {
			t.Errorf("%s", i)
		}
	}
}

func TestPairDetectsKindMismatch(t *testing.T) {
	p, _ := hw.PlatformByName("ivybridge")
	w, _ := workload.ByName("sgemm")
	issues := Pair(p, w)
	if len(issues) != 1 || issues[0].Check != "kind" {
		t.Errorf("issues = %v", issues)
	}
}

func TestPairDetectsBrokenSpecs(t *testing.T) {
	p, _ := hw.PlatformByName("ivybridge")
	bad := p
	badCPU := *p.CPU
	badCPU.Sockets = 0
	bad.CPU = &badCPU
	w, _ := workload.ByName("stream")
	issues := Pair(bad, w)
	if len(issues) == 0 || issues[0].Check != "platform-spec" {
		t.Errorf("broken platform not flagged: %v", issues)
	}
	badW := w
	badW.Phases = nil
	issues = Pair(p, badW)
	if len(issues) == 0 || issues[0].Check != "workload-spec" {
		t.Errorf("broken workload not flagged: %v", issues)
	}
}

func TestPlatformDetectsMiscalibration(t *testing.T) {
	// A DRAM spec whose background power exceeds its maximum access power
	// makes memory capping meaningless; the battery must notice that the
	// workload cannot respond to memory caps (monotone check trivially
	// passes) but must flag the spec if it breaks validation outright.
	p := hw.IvyBridge()
	badDRAM := *p.DRAM
	badDRAM.EnergyPerByteStream = -1
	p.DRAM = &badDRAM
	issues := Platform(p)
	if len(issues) == 0 {
		t.Error("invalid DRAM energy accepted")
	}
}

func TestSyntheticWorkloadPassesBattery(t *testing.T) {
	// A user-defined synthetic workload should be battery-clean out of
	// the box — the advertised workflow for custom models.
	spec := workload.SyntheticSpec{
		Name: "custom", Kind: hw.KindCPU,
		OpsPerByte: 0.5, Randomness: 0.2, Vectorized: 0.7,
		OverlapQuality: 0.6, PhaseImbalance: 0.3,
	}
	w, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	p, _ := hw.PlatformByName("haswell")
	if issues := Pair(p, w); len(issues) != 0 {
		t.Errorf("synthetic workload flagged: %v", issues)
	}
}

func TestIssueString(t *testing.T) {
	i := Issue{Check: "cpu-cap", Detail: "cap 100.0 W drew 120.0 W"}
	if !strings.Contains(i.String(), "cpu-cap:") {
		t.Errorf("issue string = %q", i.String())
	}
}
