// Package validate runs consistency batteries over platforms and
// workloads — the checks a user should run after defining a custom
// hw.Platform or workload model before trusting simulation results. Each
// check mirrors an invariant the paper's analysis depends on: caps are
// respected, performance responds monotonically to power, the simulator
// is deterministic, and the critical power values are well ordered.
package validate

import (
	"fmt"

	"repro/internal/hw"
	"repro/internal/profile"
	"repro/internal/sim"
	"repro/internal/units"
	"repro/internal/workload"
)

// Issue is one failed check.
type Issue struct {
	// Check names the violated invariant.
	Check string
	// Detail describes the specific violation.
	Detail string
}

// String renders "check: detail".
func (i Issue) String() string { return i.Check + ": " + i.Detail }

// Platform runs the platform-level battery against a reference workload
// of the matching kind and returns every violation found (empty means the
// platform is consistent).
func Platform(p hw.Platform) []Issue {
	var issues []Issue
	if err := p.Validate(); err != nil {
		return []Issue{{Check: "spec", Detail: err.Error()}}
	}
	var w workload.Workload
	var err error
	switch p.Kind {
	case hw.KindCPU:
		w, err = workload.ByName("stream")
	case hw.KindGPU:
		w, err = workload.ByName("gpustream")
	}
	if err != nil {
		return []Issue{{Check: "reference-workload", Detail: err.Error()}}
	}
	issues = append(issues, Pair(p, w)...)
	return issues
}

// Pair runs the full battery for one platform/workload combination.
func Pair(p hw.Platform, w workload.Workload) []Issue {
	var issues []Issue
	if err := p.Validate(); err != nil {
		return []Issue{{Check: "platform-spec", Detail: err.Error()}}
	}
	if err := w.Validate(); err != nil {
		return []Issue{{Check: "workload-spec", Detail: err.Error()}}
	}
	if w.Kind != p.Kind {
		return []Issue{{Check: "kind", Detail: fmt.Sprintf(
			"workload %q is %v but platform %q is %v", w.Name, w.Kind, p.Name, p.Kind)}}
	}
	switch p.Kind {
	case hw.KindCPU:
		issues = append(issues, cpuBattery(p, w)...)
	case hw.KindGPU:
		issues = append(issues, gpuBattery(p, w)...)
	}
	return issues
}

func cpuBattery(p hw.Platform, w workload.Workload) []Issue {
	var issues []Issue
	run := func(proc, mem units.Power) (sim.Result, bool) {
		res, err := sim.RunCPU(p, &w, proc, mem)
		if err != nil {
			issues = append(issues, Issue{Check: "simulate", Detail: err.Error()})
			return sim.Result{}, false
		}
		return res, true
	}

	free, ok := run(0, 0)
	if !ok {
		return issues
	}
	if free.Perf <= 0 {
		issues = append(issues, Issue{Check: "progress",
			Detail: "uncapped run delivered zero performance"})
	}

	// Determinism.
	again, ok := run(0, 0)
	if ok && (again.Perf != free.Perf || again.TotalPower != free.TotalPower) {
		issues = append(issues, Issue{Check: "determinism",
			Detail: fmt.Sprintf("repeat run differs: %v vs %v", again.Perf, free.Perf)})
	}

	// Caps respected across a grid (above the hardware floors).
	floorP := p.CPU.IdlePower + 10
	floorM := p.DRAM.BackgroundPower + 4
	for _, proc := range []units.Power{floorP, floorP + 30, free.ProcPower + 10} {
		for _, mem := range []units.Power{floorM, floorM + 20, free.MemPower + 10} {
			res, ok := run(proc, mem)
			if !ok {
				continue
			}
			if !res.AtFloor && res.ProcPower > proc+1 {
				issues = append(issues, Issue{Check: "cpu-cap",
					Detail: fmt.Sprintf("cap %v drew %v", proc, res.ProcPower)})
			}
			if res.MemPower > mem+1 && mem > p.DRAM.BackgroundPower+p.DRAM.MinThrottleHeadroom {
				issues = append(issues, Issue{Check: "mem-cap",
					Detail: fmt.Sprintf("cap %v drew %v", mem, res.MemPower)})
			}
		}
	}

	// Monotonicity in each cap.
	prev := -1.0
	for cap := floorP; cap <= free.ProcPower+20; cap += 10 {
		res, ok := run(cap, 0)
		if !ok {
			break
		}
		if res.Perf < prev*(1-0.01) {
			issues = append(issues, Issue{Check: "cpu-monotone",
				Detail: fmt.Sprintf("perf dropped at cap %v", cap)})
			break
		}
		prev = res.Perf
	}
	prev = -1.0
	for cap := floorM; cap <= free.MemPower+20; cap += 6 {
		res, ok := run(0, cap)
		if !ok {
			break
		}
		if res.Perf < prev*(1-0.01) {
			issues = append(issues, Issue{Check: "mem-monotone",
				Detail: fmt.Sprintf("perf dropped at cap %v", cap)})
			break
		}
		prev = res.Perf
	}

	// Profile sanity.
	prof, err := profile.ProfileCPU(p, w)
	if err != nil {
		issues = append(issues, Issue{Check: "profile", Detail: err.Error()})
		return issues
	}
	if err := prof.Critical.Validate(); err != nil {
		issues = append(issues, Issue{Check: "critical-powers", Detail: err.Error()})
	}
	if prof.Critical.ProductiveThreshold() >= prof.Critical.CPUMax+prof.Critical.MemMax {
		issues = append(issues, Issue{Check: "threshold",
			Detail: "productive threshold at or above max demand"})
	}
	return issues
}

func gpuBattery(p hw.Platform, w workload.Workload) []Issue {
	var issues []Issue
	gpu := p.GPU
	prev := -1.0
	for cap := gpu.MinCap; cap <= gpu.MaxCap; cap += 25 {
		res, err := sim.RunGPU(p, &w, cap, gpu.Mem.ClockNom)
		if err != nil {
			issues = append(issues, Issue{Check: "simulate", Detail: err.Error()})
			return issues
		}
		if res.Perf <= 0 {
			issues = append(issues, Issue{Check: "progress",
				Detail: fmt.Sprintf("zero performance at cap %v", cap)})
		}
		if !res.AtFloor && res.TotalPower.Watts() > cap.Watts()+12 {
			issues = append(issues, Issue{Check: "board-cap",
				Detail: fmt.Sprintf("cap %v drew %v", cap, res.TotalPower)})
		}
		if res.Perf < prev*(1-0.01) {
			issues = append(issues, Issue{Check: "cap-monotone",
				Detail: fmt.Sprintf("perf dropped at cap %v", cap)})
		}
		prev = res.Perf
	}
	if _, err := profile.ProfileGPU(p, w); err != nil {
		issues = append(issues, Issue{Check: "profile", Detail: err.Error()})
	}
	return issues
}

// Catalog validates every built-in platform against every matching
// catalog workload; it backs the repository's own self-check and serves
// as an example of a full campaign.
func Catalog() []Issue {
	var issues []Issue
	for _, p := range hw.AllPlatforms() {
		for _, w := range workload.AllWorkloads() {
			if w.Kind != p.Kind {
				continue
			}
			for _, i := range Pair(p, w) {
				issues = append(issues, Issue{
					Check:  p.Name + "/" + w.Name + "/" + i.Check,
					Detail: i.Detail,
				})
			}
		}
	}
	return issues
}
