package workload

import (
	"fmt"

	"repro/internal/hw"
)

// SyntheticSpec describes a custom workload in application-level terms so
// users can model their own codes without hand-tuning phase parameters.
// The builder maps these to the simulator's phase model.
type SyntheticSpec struct {
	// Name identifies the workload.
	Name string
	// Kind selects CPU or GPU execution.
	Kind hw.Kind
	// OpsPerByte is the arithmetic intensity (FLOPs per DRAM byte). Use
	// small values (<0.5) for bandwidth-bound codes, large (>5) for
	// compute-bound ones.
	OpsPerByte float64
	// Randomness in [0,1] is the fraction of irregular memory traffic;
	// it lowers the reachable bandwidth and raises per-byte DRAM energy.
	Randomness float64
	// Vectorized in [0,1] scales how much of the peak instruction
	// throughput the inner loops reach.
	Vectorized float64
	// OverlapQuality in [0,1] maps to the compute/memory overlap
	// exponent: 0 means strictly serialized phases of work, 1 means
	// software-pipelined perfect overlap.
	OverlapQuality float64
	// PhaseImbalance in [0,1] splits the work into two phases whose
	// memory traffic differs by the given factor; 0 keeps a single
	// phase.
	PhaseImbalance float64
}

// Validate reports descriptive errors for out-of-range parameters.
func (s *SyntheticSpec) Validate() error {
	switch {
	case s.Name == "":
		return fmt.Errorf("synthetic: empty name")
	case s.OpsPerByte <= 0:
		return fmt.Errorf("synthetic %q: non-positive intensity", s.Name)
	case s.Randomness < 0 || s.Randomness > 1:
		return fmt.Errorf("synthetic %q: randomness %v out of [0,1]", s.Name, s.Randomness)
	case s.Vectorized < 0 || s.Vectorized > 1:
		return fmt.Errorf("synthetic %q: vectorized %v out of [0,1]", s.Name, s.Vectorized)
	case s.OverlapQuality < 0 || s.OverlapQuality > 1:
		return fmt.Errorf("synthetic %q: overlap %v out of [0,1]", s.Name, s.OverlapQuality)
	case s.PhaseImbalance < 0 || s.PhaseImbalance > 1:
		return fmt.Errorf("synthetic %q: imbalance %v out of [0,1]", s.Name, s.PhaseImbalance)
	}
	return nil
}

// Build materializes the spec into a simulator workload. Work units are
// operations, so performance reports as GFLOP/s.
func (s *SyntheticSpec) Build() (Workload, error) {
	if err := s.Validate(); err != nil {
		return Workload{}, err
	}
	bytesPerOp := 1 / s.OpsPerByte

	// Pattern efficiency: streaming reaches 80% of peak, heavy
	// randomness only a few percent (latency bound).
	bwEff := 0.8*(1-s.Randomness) + 0.06*s.Randomness
	computeEff := 0.25 + 0.65*s.Vectorized
	overlap := 1 + 3*s.OverlapQuality
	// Busy activity rises with vectorization; stalled activity is the
	// usual fraction of it.
	actBase := 0.5 + 0.4*s.Vectorized
	actStall := 0.45 * actBase / 0.9

	mk := func(name string, weight, traffic float64) Phase {
		return Phase{
			Name: name, Weight: weight,
			OpsPerUnit: 1, BytesPerUnit: traffic,
			RandomFrac:   s.Randomness,
			BandwidthEff: bwEff, ComputeEff: computeEff,
			Overlap:      overlap,
			ActivityBase: actBase, StallActivity: actStall,
		}
	}

	w := Workload{
		Name:            s.Name,
		Suite:           "synthetic",
		Desc:            fmt.Sprintf("synthetic: %.2g ops/byte, %.0f%% random", s.OpsPerByte, 100*s.Randomness),
		Kind:            s.Kind,
		PerfUnit:        "GFLOP/s",
		PerfPerUnitRate: 1e-9,
	}
	if s.PhaseImbalance == 0 {
		w.Phases = []Phase{mk("steady", 1, bytesPerOp)}
	} else {
		// Two phases around the mean traffic: one lighter, one heavier,
		// keeping the average intensity equal to the spec.
		lighter := bytesPerOp * (1 - s.PhaseImbalance)
		heavier := bytesPerOp * (1 + s.PhaseImbalance)
		w.Phases = []Phase{
			mk("light", 0.5, lighter),
			mk("heavy", 0.5, heavier),
		}
	}
	if err := w.Validate(); err != nil {
		return Workload{}, err
	}
	return w, nil
}

// Scaled returns a copy of w with every phase's memory traffic multiplied
// by factor — the first-order effect of growing the problem size past the
// cache capacity (cache hit rates drop, DRAM bytes per operation rise) or
// shrinking it to fit (factor < 1). Factors must be positive.
func Scaled(w Workload, factor float64) (Workload, error) {
	if factor <= 0 {
		return Workload{}, fmt.Errorf("workload: non-positive traffic factor %v", factor)
	}
	out := w
	out.Name = fmt.Sprintf("%s(x%.2g)", w.Name, factor)
	out.Phases = append([]Phase(nil), w.Phases...)
	for i := range out.Phases {
		out.Phases[i].BytesPerUnit *= factor
	}
	if err := out.Validate(); err != nil {
		return Workload{}, err
	}
	return out, nil
}
